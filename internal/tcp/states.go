package tcp

import (
	"errors"
	"fmt"
)

// This file models the complete TCP connection state diagram that the
// paper reproduces as its Figure 1 (normal connection establishment
// and teardown, after Stevens): eleven states and the transitions
// among them, as a pure transition system. The handshake endpoints in
// tcp.go embed the subset they need; this machine exists so the
// substrate covers the whole lifecycle (the last-mile SYN-FIN pairing
// depends on teardown behaving like Figure 1) and so tests can assert
// the diagram edge by edge.

// State is a TCP connection state (RFC 793 / Figure 1 of the paper).
type State uint8

// The eleven TCP states.
const (
	Closed State = iota
	Listen
	SynSent
	SynRcvd
	Established
	FinWait1
	FinWait2
	CloseWait
	Closing
	LastAck
	TimeWait
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
	"FIN_WAIT_1", "FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK",
	"TIME_WAIT",
}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Event is a state-machine input: an application call, an arriving
// segment, or a timer expiry.
type Event uint8

// Events.
const (
	// EvPassiveOpen is the application's listen().
	EvPassiveOpen Event = iota + 1
	// EvActiveOpen is the application's connect(); sends SYN.
	EvActiveOpen
	// EvClose is the application's close(); sends FIN from synchronized
	// states.
	EvClose
	// EvRcvSyn is an arriving SYN.
	EvRcvSyn
	// EvRcvSynAck is an arriving SYN/ACK.
	EvRcvSynAck
	// EvRcvAckOfSyn is an ACK completing our SYN/ACK (3rd handshake leg).
	EvRcvAckOfSyn
	// EvRcvFin is an arriving FIN.
	EvRcvFin
	// EvRcvAckOfFin is an ACK acknowledging our FIN.
	EvRcvAckOfFin
	// EvRcvRst is an arriving RST.
	EvRcvRst
	// Ev2MSLTimeout is the TIME_WAIT 2MSL timer expiry.
	Ev2MSLTimeout
)

var eventNames = map[Event]string{
	EvPassiveOpen: "passive-open",
	EvActiveOpen:  "active-open",
	EvClose:       "close",
	EvRcvSyn:      "rcv-syn",
	EvRcvSynAck:   "rcv-syn-ack",
	EvRcvAckOfSyn: "rcv-ack-of-syn",
	EvRcvFin:      "rcv-fin",
	EvRcvAckOfFin: "rcv-ack-of-fin",
	EvRcvRst:      "rcv-rst",
	Ev2MSLTimeout: "2msl-timeout",
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Output is what the machine emits on a transition.
type Output uint8

// Outputs.
const (
	// OutNone emits nothing.
	OutNone Output = iota
	// OutSyn sends a SYN.
	OutSyn
	// OutSynAck sends a SYN/ACK.
	OutSynAck
	// OutAck sends an ACK.
	OutAck
	// OutFin sends a FIN.
	OutFin
	// OutFinAck sends ACK then FIN (CLOSE in CLOSE_WAIT collapses to
	// the FIN; kept distinct for observability in tests).
	OutFinAck
)

// ErrInvalidTransition reports an event that is not legal in the
// current state per Figure 1.
var ErrInvalidTransition = errors.New("tcp: invalid transition")

// transitionKey indexes the transition table.
type transitionKey struct {
	state State
	event Event
}

type transitionValue struct {
	next State
	out  Output
}

// transitions is Figure 1 of the paper, edge by edge. RST from any
// synchronized or handshaking state returns to CLOSED and is handled
// in Step (not tabulated per-state).
var transitions = map[transitionKey]transitionValue{
	// Opening.
	{Closed, EvPassiveOpen}: {Listen, OutNone},
	{Closed, EvActiveOpen}:  {SynSent, OutSyn},
	{Listen, EvRcvSyn}:      {SynRcvd, OutSynAck},
	// LISTEN can also actively open (rare but in RFC 793).
	{Listen, EvActiveOpen}: {SynSent, OutSyn},

	{SynSent, EvRcvSynAck}: {Established, OutAck},
	// Simultaneous open: both sides sent SYN; each answers SYN/ACK.
	{SynSent, EvRcvSyn}: {SynRcvd, OutSynAck},
	{SynSent, EvClose}:  {Closed, OutNone},

	{SynRcvd, EvRcvAckOfSyn}: {Established, OutNone},
	// Active close straight from SYN_RCVD (application closed early).
	{SynRcvd, EvClose}: {FinWait1, OutFin},

	// Active close.
	{Established, EvClose}:    {FinWait1, OutFin},
	{FinWait1, EvRcvAckOfFin}: {FinWait2, OutNone},
	// Simultaneous close: FIN crosses ours.
	{FinWait1, EvRcvFin}:      {Closing, OutAck},
	{FinWait2, EvRcvFin}:      {TimeWait, OutAck},
	{Closing, EvRcvAckOfFin}:  {TimeWait, OutNone},
	{TimeWait, Ev2MSLTimeout}: {Closed, OutNone},

	// Passive close.
	{Established, EvRcvFin}:  {CloseWait, OutAck},
	{CloseWait, EvClose}:     {LastAck, OutFin},
	{LastAck, EvRcvAckOfFin}: {Closed, OutNone},
}

// Machine is one connection's state machine. The zero value starts in
// CLOSED, as a fresh connection should.
type Machine struct {
	state State
	trace []string // transition log for diagnostics
}

// State returns the current state.
func (m *Machine) State() State { return m.state }

// Step applies one event. It returns the emitted output, or
// ErrInvalidTransition when Figure 1 has no such edge (the state does
// not change in that case).
func (m *Machine) Step(ev Event) (Output, error) {
	// RST tears down everything except CLOSED/LISTEN (a listener
	// survives RSTs; per RFC 793 a RST to LISTEN is ignored).
	if ev == EvRcvRst {
		switch m.state {
		case Closed, Listen:
			return OutNone, nil
		default:
			m.record(m.state, ev, Closed)
			m.state = Closed
			return OutNone, nil
		}
	}
	tv, ok := transitions[transitionKey{m.state, ev}]
	if !ok {
		return OutNone, fmt.Errorf("%w: %v in %v", ErrInvalidTransition, ev, m.state)
	}
	m.record(m.state, ev, tv.next)
	m.state = tv.next
	return tv.out, nil
}

func (m *Machine) record(from State, ev Event, to State) {
	m.trace = append(m.trace, fmt.Sprintf("%v --%v--> %v", from, ev, to))
}

// Trace returns the human-readable transition log.
func (m *Machine) Trace() []string {
	out := make([]string, len(m.trace))
	copy(out, m.trace)
	return out
}

// Synchronized reports whether the connection has completed its
// handshake and not yet fully closed (the states in which data flows).
func (s State) Synchronized() bool {
	switch s {
	case Established, FinWait1, FinWait2, CloseWait, Closing, LastAck, TimeWait:
		return true
	default:
		return false
	}
}

// HalfOpenState reports whether the state is one the victim's backlog
// tracks (the resource SYN floods exhaust).
func (s State) HalfOpenState() bool { return s == SynRcvd }
