package tcp

import (
	"fmt"
	"net/netip"
	"time"
)

// This file is the two-queue half of the server model: the kernel
// keeps SYN_RCVD entries in a SYN queue (sized by tcp_max_syn_backlog)
// and moves each connection into a separate bounded accept queue
// (sized by the listen() backlog) when the final ACK lands; the
// application drains the accept queue with accept(2). Each queue fails
// independently — a flood fills the SYN queue and starves new
// handshakes, a stalled application fills the accept queue and drops
// completed ones — and each failure is a distinct SRE-visible symptom
// (SYN_RECV counts, ListenOverflows, cookie activations). QueueStats
// and QueueObserver expose exactly those observables so experiments
// can score detection time against the moment real clients start
// failing.

// QueueEvent is one queue transition worth observing.
type QueueEvent uint8

const (
	// EventSynOverflow: a SYN arrived to a full SYN queue and was
	// dropped (cookies off).
	EventSynOverflow QueueEvent = iota
	// EventCookieActivated: a SYN arrived to a full SYN queue and was
	// answered with a stateless cookie (CookieOnOverflow).
	EventCookieActivated
	// EventAcceptOverflow: a completed handshake was dropped because
	// the accept queue was full.
	EventAcceptOverflow
	// EventAccepted: the application drained one connection from the
	// accept queue.
	EventAccepted
)

// String implements fmt.Stringer.
func (e QueueEvent) String() string {
	switch e {
	case EventSynOverflow:
		return "syn-overflow"
	case EventCookieActivated:
		return "cookie-activated"
	case EventAcceptOverflow:
		return "accept-overflow"
	case EventAccepted:
		return "accepted"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// QueueObserver receives queue transitions as they happen.
type QueueObserver func(now time.Duration, ev QueueEvent, peer netip.Addr, peerPort uint16)

// QueueStats is a point-in-time snapshot of both queues.
type QueueStats struct {
	// SynQueueLen / SynQueueCap are the half-open (SYN_RCVD) queue's
	// occupancy and capacity.
	SynQueueLen, SynQueueCap int
	// AcceptQueueLen / AcceptQueueCap are the accept queue's occupancy
	// and capacity; cap is 0 in the flat (legacy) model.
	AcceptQueueLen, AcceptQueueCap int
	// SynOverflows counts SYNs dropped at a full SYN queue (the
	// ServerStats.SynDropped counter under its kernel name).
	SynOverflows uint64
	// ListenOverflows counts completed handshakes dropped at a full
	// accept queue.
	ListenOverflows uint64
	// CookieActivations counts overflow SYNs answered with cookies.
	CookieActivations uint64
	// Accepted counts connections drained by the application.
	Accepted uint64
}

// Queues returns a snapshot of both queues.
func (s *Server) Queues() QueueStats {
	return QueueStats{
		SynQueueLen:       len(s.backlog),
		SynQueueCap:       s.cfg.Backlog,
		AcceptQueueLen:    len(s.acceptQ),
		AcceptQueueCap:    s.cfg.AcceptBacklog,
		SynOverflows:      s.stats.SynDropped,
		ListenOverflows:   s.stats.ListenOverflows,
		CookieActivations: s.stats.CookieActivations,
		Accepted:          s.stats.Accepted,
	}
}

// queueEvent notifies the observer, if any.
func (s *Server) queueEvent(now time.Duration, ev QueueEvent, key connKey) {
	if s.OnQueueEvent != nil {
		s.OnQueueEvent(now, ev, key.addr, key.port)
	}
}

// armAccept schedules the application's next accept(2). One timer is
// outstanding at a time; it re-arms itself while the queue is
// non-empty, draining one connection per AcceptInterval.
func (s *Server) armAccept() {
	if s.acceptArmed || len(s.acceptQ) == 0 {
		return
	}
	s.acceptArmed = true
	s.sim.After(s.cfg.AcceptInterval, s.acceptOne)
}

// acceptOne is the application draining the head of the accept queue.
func (s *Server) acceptOne(now time.Duration) {
	s.acceptArmed = false
	if len(s.acceptQ) == 0 {
		return
	}
	key := s.acceptQ[0]
	s.acceptQ = s.acceptQ[1:]
	s.stats.Accepted++
	s.queueEvent(now, EventAccepted, key)
	if s.OnAccepted != nil {
		s.OnAccepted(now, key.addr, key.port)
	}
	s.armAccept()
}
