// Package tcp implements the TCP connection-establishment substrate
// the paper's attack narrative depends on: a listening server with a
// finite backlog of half-open connections, SYN/ACK retransmission, the
// 75-second half-open give-up timer, RST handling, and the SYN-cookie
// defense used as a stateful-mitigation baseline.
//
// Only the parts of TCP relevant to SYN flooding are modeled — the
// three-way handshake, its timers, and reset semantics. There is no
// data transfer, flow control or congestion control: the detector
// under study never looks past the handshake.
//
// Endpoints plug into internal/netsim hosts: wire Server.Deliver (or
// Client.Deliver) into Host.OnPacket, and give the endpoint the host's
// Send func as its transmit path.
package tcp

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

// Defaults mirroring the classic BSD behavior described in the paper:
// a half-open connection is kept "for a period of up to the TCP
// connection timeout", dropped after the failure of two
// retransmissions, typically 75 seconds in total.
const (
	// DefaultBacklog is the default half-open queue capacity.
	DefaultBacklog = 128
	// DefaultSynAckRetries is how many times the server retransmits an
	// unacknowledged SYN/ACK before giving up.
	DefaultSynAckRetries = 2
	// DefaultHalfOpenTimeout is the total lifetime of a half-open
	// connection.
	DefaultHalfOpenTimeout = 75 * time.Second
	// DefaultSynRetries is how many times a client retransmits its SYN.
	DefaultSynRetries = 2
	// DefaultRTOBase is the initial retransmission timeout; it doubles
	// per retry (3s, 6s, 12s...).
	DefaultRTOBase = 3 * time.Second
	// DefaultAcceptInterval is the default pace at which the modeled
	// application drains the accept queue when AcceptBacklog is set —
	// one accept per interval, a busy-but-healthy server.
	DefaultAcceptInterval = 10 * time.Millisecond
)

// SendFunc transmits a segment into the network.
type SendFunc func(seg packet.Segment)

// connKey identifies a connection attempt from the server's view.
type connKey struct {
	addr netip.Addr
	port uint16
}

// halfOpen is one backlog entry: a connection in SYN_RCVD.
type halfOpen struct {
	key       connKey
	serverISN uint32
	clientISN uint32
	retries   int
	rto       eventsim.Timer
	expiry    eventsim.Timer
}

// ServerConfig parameterizes a Server. Zero fields take the package
// defaults.
type ServerConfig struct {
	Backlog         int
	SynAckRetries   int
	HalfOpenTimeout time.Duration
	RTOBase         time.Duration
	// SynCookies enables the stateless SYN-cookie defense: no backlog
	// entry is created; the connection state is encoded in the server
	// ISN and validated on the final ACK.
	SynCookies bool
	// CookieSecret keys the cookie MAC when SynCookies or
	// CookieOnOverflow is on.
	CookieSecret uint64
	// AcceptBacklog, when positive, enables the kernel's second queue:
	// a completed handshake moves the connection into a bounded accept
	// queue drained by the application at AcceptInterval. A full accept
	// queue drops the connection (ListenOverflows) — the symptom SREs
	// read off `netstat -s` as "times the listen queue of a socket
	// overflowed". Zero keeps the original flat model where the final
	// ACK establishes immediately.
	AcceptBacklog int
	// AcceptInterval is how often the modeled application accepts one
	// queued connection; zero takes DefaultAcceptInterval. Only
	// meaningful with AcceptBacklog > 0.
	AcceptInterval time.Duration
	// CookieOnOverflow models tcp_syncookies=1: the server runs
	// stateful until the SYN queue fills, then answers overflow SYNs
	// with stateless cookies instead of dropping them — each send
	// counted as a cookie activation.
	CookieOnOverflow bool
}

func (c *ServerConfig) applyDefaults() {
	if c.Backlog == 0 {
		c.Backlog = DefaultBacklog
	}
	if c.SynAckRetries == 0 {
		c.SynAckRetries = DefaultSynAckRetries
	}
	if c.HalfOpenTimeout == 0 {
		c.HalfOpenTimeout = DefaultHalfOpenTimeout
	}
	if c.RTOBase == 0 {
		c.RTOBase = DefaultRTOBase
	}
	if c.AcceptBacklog > 0 && c.AcceptInterval == 0 {
		c.AcceptInterval = DefaultAcceptInterval
	}
}

// ServerStats are the server's externally observable counters.
type ServerStats struct {
	// SynReceived counts all SYNs that arrived.
	SynReceived uint64
	// SynDropped counts SYNs rejected because the backlog was full —
	// the denial-of-service the flood aims for.
	SynDropped uint64
	// Established counts completed handshakes.
	Established uint64
	// HalfOpenExpired counts backlog entries reaped by the 75 s timer.
	HalfOpenExpired uint64
	// Resets counts RSTs received for half-open entries.
	Resets uint64
	// BadAcks counts final ACKs that matched no half-open entry and no
	// valid cookie.
	BadAcks uint64
	// Accepted counts connections the application drained from the
	// accept queue (two-queue mode only).
	Accepted uint64
	// ListenOverflows counts completed handshakes dropped because the
	// accept queue was full — the kernel's ListenOverflows counter.
	ListenOverflows uint64
	// CookieActivations counts overflow SYNs answered with a stateless
	// cookie under CookieOnOverflow — the kernel's SyncookiesSent.
	CookieActivations uint64
}

// Server is a passive TCP endpoint in LISTEN on one port.
type Server struct {
	sim  *eventsim.Sim
	addr netip.Addr
	port uint16
	send SendFunc
	cfg  ServerConfig

	backlog map[connKey]*halfOpen
	isn     uint32
	stats   ServerStats

	acceptQ     []connKey
	acceptArmed bool

	// OnEstablished, if set, fires when a handshake completes.
	OnEstablished func(now time.Duration, peer netip.Addr, peerPort uint16)
	// OnAccepted, if set, fires when the application drains a
	// connection from the accept queue (two-queue mode only).
	OnAccepted func(now time.Duration, peer netip.Addr, peerPort uint16)
	// OnQueueEvent, if set, observes every queue transition — SYN-queue
	// overflow, cookie activation, accept-queue overflow, accept.
	OnQueueEvent QueueObserver
}

// NewServer builds a listening endpoint.
func NewServer(sim *eventsim.Sim, addr netip.Addr, port uint16, send SendFunc, cfg ServerConfig) (*Server, error) {
	if sim == nil || send == nil {
		return nil, errors.New("tcp: server needs a simulation and a send path")
	}
	if !addr.IsValid() {
		return nil, errors.New("tcp: invalid server address")
	}
	cfg.applyDefaults()
	return &Server{
		sim:     sim,
		addr:    addr,
		port:    port,
		send:    send,
		cfg:     cfg,
		backlog: make(map[connKey]*halfOpen, cfg.Backlog),
		isn:     1,
	}, nil
}

// Stats returns a copy of the server counters.
func (s *Server) Stats() ServerStats { return s.stats }

// BacklogLen returns the number of half-open connections currently
// queued (always 0 with SYN cookies on).
func (s *Server) BacklogLen() int { return len(s.backlog) }

// BacklogFull reports whether a new SYN would be dropped.
func (s *Server) BacklogFull() bool { return len(s.backlog) >= s.cfg.Backlog }

// Deliver feeds one received segment to the server. Segments not
// addressed to the listening port are ignored.
func (s *Server) Deliver(now time.Duration, seg packet.Segment) {
	if seg.TCP.DstPort != s.port || seg.IP.Dst != s.addr {
		return
	}
	switch seg.Kind() {
	case packet.KindSYN:
		s.onSyn(now, seg)
	case packet.KindRST:
		s.onRst(seg)
	case packet.KindOther:
		if seg.TCP.Flags&packet.FlagACK != 0 {
			s.onAck(now, seg)
		}
	default:
		// FIN/SYN-ACK to a listener: ignored in this model.
	}
}

func (s *Server) onSyn(now time.Duration, seg packet.Segment) {
	s.stats.SynReceived++
	key := connKey{addr: seg.IP.Src, port: seg.TCP.SrcPort}

	if s.cfg.SynCookies {
		// Stateless path: encode everything in the ISN, keep nothing.
		cookie := MakeCookie(s.cfg.CookieSecret, seg.IP.Src, s.addr,
			seg.TCP.SrcPort, s.port, seg.TCP.Seq)
		s.send(packet.Build(s.addr, seg.IP.Src, s.port, seg.TCP.SrcPort,
			cookie, seg.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
		return
	}

	if ho, dup := s.backlog[key]; dup {
		// SYN retransmission for an existing attempt: re-send SYN/ACK.
		s.sendSynAck(ho)
		return
	}
	if len(s.backlog) >= s.cfg.Backlog {
		if s.cfg.CookieOnOverflow {
			// tcp_syncookies=1: the SYN queue is full, fall back to a
			// stateless cookie instead of dropping — service degrades
			// (no retransmission state) but survives.
			s.stats.CookieActivations++
			s.queueEvent(now, EventCookieActivated, key)
			cookie := MakeCookie(s.cfg.CookieSecret, seg.IP.Src, s.addr,
				seg.TCP.SrcPort, s.port, seg.TCP.Seq)
			s.send(packet.Build(s.addr, seg.IP.Src, s.port, seg.TCP.SrcPort,
				cookie, seg.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
			return
		}
		// The queue is exhausted: this is the victim's failure mode.
		s.stats.SynDropped++
		s.queueEvent(now, EventSynOverflow, key)
		return
	}
	ho := &halfOpen{key: key, serverISN: s.nextISN(), clientISN: seg.TCP.Seq}
	s.backlog[key] = ho
	s.sendSynAck(ho)
	s.armTimers(ho)
}

func (s *Server) sendSynAck(ho *halfOpen) {
	s.send(packet.Build(s.addr, ho.key.addr, s.port, ho.key.port,
		ho.serverISN, ho.clientISN+1, packet.FlagSYN|packet.FlagACK))
}

func (s *Server) armTimers(ho *halfOpen) {
	// Absolute give-up timer.
	ho.expiry = s.sim.After(s.cfg.HalfOpenTimeout, func(time.Duration) {
		if s.backlog[ho.key] == ho {
			s.dropHalfOpen(ho)
			s.stats.HalfOpenExpired++
		}
	})
	s.armRTO(ho, s.cfg.RTOBase)
}

func (s *Server) armRTO(ho *halfOpen, rto time.Duration) {
	ho.rto = s.sim.After(rto, func(time.Duration) {
		if s.backlog[ho.key] != ho {
			return
		}
		if ho.retries >= s.cfg.SynAckRetries {
			// "not closed until the failure of two retransmissions" —
			// the expiry timer will reap it; stop retransmitting.
			return
		}
		ho.retries++
		s.sendSynAck(ho)
		s.armRTO(ho, rto*2)
	})
}

func (s *Server) dropHalfOpen(ho *halfOpen) {
	ho.rto.Cancel()
	ho.expiry.Cancel()
	delete(s.backlog, ho.key)
}

func (s *Server) onRst(seg packet.Segment) {
	key := connKey{addr: seg.IP.Src, port: seg.TCP.SrcPort}
	if ho, ok := s.backlog[key]; ok {
		// "The arrival of RST causes the connection to be reset,
		// foiling the flooding attack."
		s.dropHalfOpen(ho)
		s.stats.Resets++
	}
}

func (s *Server) onAck(now time.Duration, seg packet.Segment) {
	key := connKey{addr: seg.IP.Src, port: seg.TCP.SrcPort}

	if s.cfg.SynCookies {
		want := MakeCookie(s.cfg.CookieSecret, seg.IP.Src, s.addr,
			seg.TCP.SrcPort, s.port, seg.TCP.Seq-1)
		if seg.TCP.Ack-1 == want {
			s.handshakeComplete(now, key)
		} else {
			s.stats.BadAcks++
		}
		return
	}

	if ho, ok := s.backlog[key]; ok {
		if seg.TCP.Ack != ho.serverISN+1 {
			s.stats.BadAcks++
			return
		}
		s.dropHalfOpen(ho)
		s.handshakeComplete(now, key)
		return
	}
	if s.cfg.CookieOnOverflow {
		// No half-open entry: this ACK may answer a cookie SYN/ACK sent
		// while the SYN queue was full.
		want := MakeCookie(s.cfg.CookieSecret, seg.IP.Src, s.addr,
			seg.TCP.SrcPort, s.port, seg.TCP.Seq-1)
		if seg.TCP.Ack-1 == want {
			s.handshakeComplete(now, key)
			return
		}
	}
	s.stats.BadAcks++
}

// handshakeComplete routes a finished three-way handshake: straight to
// ESTABLISHED in the flat model, through the bounded accept queue in
// two-queue mode.
func (s *Server) handshakeComplete(now time.Duration, key connKey) {
	if s.cfg.AcceptBacklog <= 0 {
		s.established(now, key)
		return
	}
	if len(s.acceptQ) >= s.cfg.AcceptBacklog {
		// The application is not draining fast enough: the kernel
		// drops the fully established connection. This — not SYN-queue
		// pressure — is the moment a legitimate client with a completed
		// handshake loses service.
		s.stats.ListenOverflows++
		s.queueEvent(now, EventAcceptOverflow, key)
		return
	}
	s.established(now, key)
	s.acceptQ = append(s.acceptQ, key)
	s.armAccept()
}

func (s *Server) established(now time.Duration, key connKey) {
	s.stats.Established++
	if s.OnEstablished != nil {
		s.OnEstablished(now, key.addr, key.port)
	}
}

func (s *Server) nextISN() uint32 {
	s.isn += 64000 // RFC-793-style coarse ISN advance; value is arbitrary
	return s.isn
}

// MakeCookie computes a SYN cookie: a deterministic MAC over the
// 4-tuple and the client ISN under a secret. The real Linux
// implementation also encodes MSS bits and a timestamp; this model
// keeps the essential property — the server can validate the final ACK
// without having stored any state.
func MakeCookie(secret uint64, src, dst netip.Addr, srcPort, dstPort uint16, clientISN uint32) uint32 {
	h := secret ^ 0x9e3779b97f4a7c15
	mix := func(v uint64) {
		h ^= v
		h *= 0x100000001b3
		h ^= h >> 29
	}
	s4, d4 := src.As4(), dst.As4()
	mix(uint64(s4[0])<<24 | uint64(s4[1])<<16 | uint64(s4[2])<<8 | uint64(s4[3]))
	mix(uint64(d4[0])<<24 | uint64(d4[1])<<16 | uint64(d4[2])<<8 | uint64(d4[3]))
	mix(uint64(srcPort)<<16 | uint64(dstPort))
	mix(uint64(clientISN))
	return uint32(h ^ h>>32)
}

// ClientState is the client endpoint's connection state.
type ClientState uint8

// Client states (subset of Figure 1 relevant to establishment).
const (
	StateClosed ClientState = iota
	StateSynSent
	StateEstablished
	StateFailed
)

// String implements fmt.Stringer.
func (s ClientState) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN_SENT"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFailed:
		return "FAILED"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	SynRetries int
	RTOBase    time.Duration
}

func (c *ClientConfig) applyDefaults() {
	if c.SynRetries == 0 {
		c.SynRetries = DefaultSynRetries
	}
	if c.RTOBase == 0 {
		c.RTOBase = DefaultRTOBase
	}
}

// Client is an active opener: one Client per connection attempt.
type Client struct {
	sim      *eventsim.Sim
	addr     netip.Addr
	port     uint16
	peer     netip.Addr
	peerPort uint16
	send     SendFunc
	cfg      ClientConfig

	state   ClientState
	isn     uint32
	retries int
	rto     eventsim.Timer

	// OnEstablished and OnFailed report the outcome, if set.
	OnEstablished func(now time.Duration)
	OnFailed      func(now time.Duration)
}

// NewClient builds a client for one connection attempt; call Connect
// to start the handshake.
func NewClient(sim *eventsim.Sim, addr netip.Addr, port uint16, peer netip.Addr, peerPort uint16, isn uint32, send SendFunc, cfg ClientConfig) (*Client, error) {
	if sim == nil || send == nil {
		return nil, errors.New("tcp: client needs a simulation and a send path")
	}
	cfg.applyDefaults()
	return &Client{
		sim: sim, addr: addr, port: port,
		peer: peer, peerPort: peerPort,
		send: send, cfg: cfg, isn: isn,
	}, nil
}

// State returns the current connection state.
func (c *Client) State() ClientState { return c.state }

// Connect sends the initial SYN and arms the retransmission timer.
// Calling Connect twice is an error.
func (c *Client) Connect() error {
	if c.state != StateClosed {
		return fmt.Errorf("tcp: Connect in state %v", c.state)
	}
	c.state = StateSynSent
	c.sendSyn()
	c.armRTO(c.cfg.RTOBase)
	return nil
}

func (c *Client) sendSyn() {
	c.send(packet.Build(c.addr, c.peer, c.port, c.peerPort, c.isn, 0, packet.FlagSYN))
}

func (c *Client) armRTO(rto time.Duration) {
	c.rto = c.sim.After(rto, func(now time.Duration) {
		if c.state != StateSynSent {
			return
		}
		if c.retries >= c.cfg.SynRetries {
			c.state = StateFailed
			if c.OnFailed != nil {
				c.OnFailed(now)
			}
			return
		}
		c.retries++
		c.sendSyn()
		c.armRTO(rto * 2)
	})
}

// Deliver feeds one received segment to the client.
func (c *Client) Deliver(now time.Duration, seg packet.Segment) {
	if seg.TCP.DstPort != c.port || seg.IP.Src != c.peer || seg.TCP.SrcPort != c.peerPort {
		// Not for this connection. A SYN/ACK for a connection this
		// host never initiated gets a RST — the behavior that makes
		// reachable spoofed sources foil the attack.
		if seg.Kind() == packet.KindSYNACK && seg.IP.Dst == c.addr {
			c.send(packet.Build(c.addr, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
				seg.TCP.Ack, 0, packet.FlagRST))
		}
		return
	}
	switch seg.Kind() {
	case packet.KindSYNACK:
		if c.state != StateSynSent || seg.TCP.Ack != c.isn+1 {
			return
		}
		c.rto.Cancel()
		c.state = StateEstablished
		c.send(packet.Build(c.addr, c.peer, c.port, c.peerPort,
			c.isn+1, seg.TCP.Seq+1, packet.FlagACK))
		if c.OnEstablished != nil {
			c.OnEstablished(now)
		}
	case packet.KindRST:
		if c.state == StateSynSent {
			c.rto.Cancel()
			c.state = StateFailed
			if c.OnFailed != nil {
				c.OnFailed(now)
			}
		}
	}
}

// RSTResponder is a standalone endpoint modeling an innocent host
// whose address was spoofed: any SYN/ACK it receives is answered with
// a RST, resetting the victim's half-open connection.
type RSTResponder struct {
	Addr netip.Addr
	send SendFunc
	// Sent counts emitted RSTs.
	Sent uint64
}

// NewRSTResponder builds a responder for addr.
func NewRSTResponder(addr netip.Addr, send SendFunc) *RSTResponder {
	return &RSTResponder{Addr: addr, send: send}
}

// Deliver implements the netsim delivery callback.
func (r *RSTResponder) Deliver(_ time.Duration, seg packet.Segment) {
	if seg.IP.Dst != r.Addr || seg.Kind() != packet.KindSYNACK {
		return
	}
	r.Sent++
	r.send(packet.Build(r.Addr, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
		seg.TCP.Ack, 0, packet.FlagRST))
}
