package tcp

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

// synFrom builds one SYN from the numbered peer.
func synFrom(i int, isn uint32) packet.Segment {
	a4 := spoofBase.As4()
	a4[3] = byte(i)
	return packet.Build(netip.AddrFrom4(a4), serverAddr, uint16(40000+i), 80, isn, 0, packet.FlagSYN)
}

// newQueueServer builds a server whose sends are captured into sent.
func newQueueServer(t *testing.T, sim *eventsim.Sim, cfg ServerConfig, sent *[]packet.Segment) *Server {
	t.Helper()
	srv, err := NewServer(sim, serverAddr, 80,
		func(seg packet.Segment) { *sent = append(*sent, seg) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// runHandshake drives peer i through SYN → SYN/ACK → ACK against srv,
// reading the SYN/ACK the server just sent out of the capture slice.
func runHandshake(t *testing.T, srv *Server, sent *[]packet.Segment, now time.Duration, i int) {
	t.Helper()
	syn := synFrom(i, 100)
	before := len(*sent)
	srv.Deliver(now, syn)
	if len(*sent) == before {
		t.Fatalf("peer %d: server sent nothing for SYN", i)
	}
	synAck := (*sent)[len(*sent)-1]
	if synAck.Kind() != packet.KindSYNACK {
		t.Fatalf("peer %d: reply was %v, want SYN/ACK", i, synAck.Kind())
	}
	srv.Deliver(now, packet.Build(syn.IP.Src, serverAddr, syn.TCP.SrcPort, 80,
		101, synAck.TCP.Seq+1, packet.FlagACK))
}

// TestAcceptQueueOverflowCounts: with the application stalled,
// completed handshakes beyond the accept backlog are dropped and
// counted as listen overflows — the two-queue failure the flat model
// cannot see.
func TestAcceptQueueOverflowCounts(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv := newQueueServer(t, sim, ServerConfig{
		AcceptBacklog:  2,
		AcceptInterval: time.Hour, // stalled application
	}, &sent)

	var events []QueueEvent
	srv.OnQueueEvent = func(_ time.Duration, ev QueueEvent, _ netip.Addr, _ uint16) {
		events = append(events, ev)
	}

	for i := 1; i <= 3; i++ {
		runHandshake(t, srv, &sent, 0, i)
	}

	st := srv.Stats()
	if st.Established != 2 {
		t.Errorf("Established = %d, want 2", st.Established)
	}
	if st.ListenOverflows != 1 {
		t.Errorf("ListenOverflows = %d, want 1", st.ListenOverflows)
	}
	q := srv.Queues()
	if q.AcceptQueueLen != 2 || q.AcceptQueueCap != 2 {
		t.Errorf("accept queue = %d/%d, want 2/2", q.AcceptQueueLen, q.AcceptQueueCap)
	}
	if q.ListenOverflows != 1 {
		t.Errorf("Queues().ListenOverflows = %d, want 1", q.ListenOverflows)
	}
	if len(events) != 1 || events[0] != EventAcceptOverflow {
		t.Errorf("events = %v, want [accept-overflow]", events)
	}
}

// TestAcceptDrainPacing: the modeled application accepts one
// connection per interval; accepted callbacks land on that schedule
// and empty the queue.
func TestAcceptDrainPacing(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv := newQueueServer(t, sim, ServerConfig{
		AcceptBacklog:  4,
		AcceptInterval: 10 * time.Millisecond,
	}, &sent)

	var acceptTimes []time.Duration
	srv.OnAccepted = func(now time.Duration, _ netip.Addr, _ uint16) {
		acceptTimes = append(acceptTimes, now)
	}

	for i := 1; i <= 3; i++ {
		runHandshake(t, srv, &sent, 0, i)
	}
	sim.Run()

	if got := srv.Stats().Accepted; got != 3 {
		t.Fatalf("Accepted = %d, want 3", got)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i, ts := range acceptTimes {
		if ts != want[i] {
			t.Errorf("accept %d at %v, want %v", i, ts, want[i])
		}
	}
	if q := srv.Queues(); q.AcceptQueueLen != 0 {
		t.Errorf("accept queue not drained: %d", q.AcceptQueueLen)
	}
}

// TestCookieOnOverflow: a full SYN queue under tcp_syncookies=1
// answers overflow SYNs statelessly; the cookie ACK still establishes,
// and nothing is dropped.
func TestCookieOnOverflow(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv := newQueueServer(t, sim, ServerConfig{
		Backlog:          1,
		CookieOnOverflow: true,
		CookieSecret:     42,
	}, &sent)

	var events []QueueEvent
	srv.OnQueueEvent = func(_ time.Duration, ev QueueEvent, _ netip.Addr, _ uint16) {
		events = append(events, ev)
	}

	// Peer 1 fills the single-slot SYN queue.
	srv.Deliver(0, synFrom(1, 100))
	if srv.BacklogLen() != 1 {
		t.Fatalf("backlog = %d, want 1", srv.BacklogLen())
	}

	// Peer 2 overflows: answered with a cookie, not dropped.
	syn2 := synFrom(2, 200)
	srv.Deliver(0, syn2)
	st := srv.Stats()
	if st.SynDropped != 0 {
		t.Errorf("SynDropped = %d, want 0 under cookies", st.SynDropped)
	}
	if st.CookieActivations != 1 {
		t.Errorf("CookieActivations = %d, want 1", st.CookieActivations)
	}
	cookieSynAck := sent[len(sent)-1]
	if cookieSynAck.Kind() != packet.KindSYNACK {
		t.Fatalf("overflow reply was %v, want SYN/ACK", cookieSynAck.Kind())
	}
	wantCookie := MakeCookie(42, syn2.IP.Src, serverAddr, syn2.TCP.SrcPort, 80, 200)
	if cookieSynAck.TCP.Seq != wantCookie {
		t.Errorf("cookie ISN = %d, want %d", cookieSynAck.TCP.Seq, wantCookie)
	}

	// Peer 2's ACK validates against the cookie and establishes with
	// no backlog entry ever created.
	srv.Deliver(0, packet.Build(syn2.IP.Src, serverAddr, syn2.TCP.SrcPort, 80,
		201, cookieSynAck.TCP.Seq+1, packet.FlagACK))
	if got := srv.Stats().Established; got != 1 {
		t.Errorf("Established = %d, want 1", got)
	}
	if got := srv.Stats().BadAcks; got != 0 {
		t.Errorf("BadAcks = %d, want 0", got)
	}

	// A forged ACK (wrong cookie) is still rejected.
	srv.Deliver(0, packet.Build(syn2.IP.Src, serverAddr, 41999, 80,
		201, 12345, packet.FlagACK))
	if got := srv.Stats().BadAcks; got != 1 {
		t.Errorf("BadAcks after forged ACK = %d, want 1", got)
	}

	if len(events) != 1 || events[0] != EventCookieActivated {
		t.Errorf("events = %v, want [cookie-activated]", events)
	}
}

// TestSynOverflowEvent: cookies off, a full SYN queue drops and
// reports the overflow.
func TestSynOverflowEvent(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv := newQueueServer(t, sim, ServerConfig{Backlog: 1}, &sent)

	var overflowPeer netip.Addr
	srv.OnQueueEvent = func(_ time.Duration, ev QueueEvent, peer netip.Addr, _ uint16) {
		if ev == EventSynOverflow {
			overflowPeer = peer
		}
	}
	srv.Deliver(0, synFrom(1, 100))
	syn2 := synFrom(2, 200)
	srv.Deliver(0, syn2)

	if got := srv.Stats().SynDropped; got != 1 {
		t.Errorf("SynDropped = %d, want 1", got)
	}
	if q := srv.Queues(); q.SynOverflows != 1 || q.SynQueueLen != 1 || q.SynQueueCap != 1 {
		t.Errorf("Queues() = %+v", q)
	}
	if overflowPeer != syn2.IP.Src {
		t.Errorf("overflow peer = %v, want %v", overflowPeer, syn2.IP.Src)
	}
}

// TestFlatModelUnchanged: AcceptBacklog zero keeps the original
// semantics — immediate establishment, no accept-queue accounting.
func TestFlatModelUnchanged(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv := newQueueServer(t, sim, ServerConfig{}, &sent)

	runHandshake(t, srv, &sent, 0, 1)
	sim.Run()

	st := srv.Stats()
	if st.Established != 1 {
		t.Errorf("Established = %d, want 1", st.Established)
	}
	if st.Accepted != 0 || st.ListenOverflows != 0 || st.CookieActivations != 0 {
		t.Errorf("two-queue counters moved in flat mode: %+v", st)
	}
	if q := srv.Queues(); q.AcceptQueueCap != 0 || q.AcceptQueueLen != 0 {
		t.Errorf("accept queue present in flat mode: %+v", q)
	}
}

func TestQueueEventString(t *testing.T) {
	for ev, want := range map[QueueEvent]string{
		EventSynOverflow:     "syn-overflow",
		EventCookieActivated: "cookie-activated",
		EventAcceptOverflow:  "accept-overflow",
		EventAccepted:        "accepted",
		QueueEvent(99):       "event(99)",
	} {
		if got := ev.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ev, got, want)
		}
	}
}
