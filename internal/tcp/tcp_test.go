package tcp

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

var (
	clientAddr = netip.MustParseAddr("10.1.0.5")
	serverAddr = netip.MustParseAddr("10.2.0.1")
	spoofBase  = netip.MustParseAddr("203.0.113.0")
)

// wire connects endpoints through a fixed one-way delay, optionally
// dropping packets selected by the drop func.
type wire struct {
	sim   *eventsim.Sim
	delay time.Duration
	drop  func(seg packet.Segment) bool
}

func (w *wire) sendTo(deliver func(time.Duration, packet.Segment)) SendFunc {
	return func(seg packet.Segment) {
		if w.drop != nil && w.drop(seg) {
			return
		}
		w.sim.After(w.delay, func(now time.Duration) {
			deliver(now, seg)
		})
	}
}

func TestHandshakeSuccess(t *testing.T) {
	sim := eventsim.New()
	w := &wire{sim: sim, delay: 10 * time.Millisecond}

	var srv *Server
	var cli *Client
	var err error

	srv, err = NewServer(sim, serverAddr, 80,
		w.sendTo(func(now time.Duration, s packet.Segment) { cli.Deliver(now, s) }),
		ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err = NewClient(sim, clientAddr, 40000, serverAddr, 80, 7777,
		w.sendTo(func(now time.Duration, s packet.Segment) { srv.Deliver(now, s) }),
		ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var clientDone, serverDone time.Duration
	cli.OnEstablished = func(now time.Duration) { clientDone = now }
	srv.OnEstablished = func(now time.Duration, peer netip.Addr, port uint16) {
		serverDone = now
		if peer != clientAddr || port != 40000 {
			t.Errorf("established with %v:%d", peer, port)
		}
	}
	if err := cli.Connect(); err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if cli.State() != StateEstablished {
		t.Fatalf("client state = %v", cli.State())
	}
	if srv.Stats().Established != 1 {
		t.Fatalf("server established = %d", srv.Stats().Established)
	}
	// Client completes at 1 RTT (20ms), server at 1.5 RTT (30ms).
	if clientDone != 20*time.Millisecond {
		t.Errorf("client done at %v, want 20ms", clientDone)
	}
	if serverDone != 30*time.Millisecond {
		t.Errorf("server done at %v, want 30ms", serverDone)
	}
	if srv.BacklogLen() != 0 {
		t.Errorf("backlog not drained: %d", srv.BacklogLen())
	}
}

func TestClientSynRetransmissionRecovers(t *testing.T) {
	sim := eventsim.New()
	dropped := 0
	w := &wire{sim: sim, delay: time.Millisecond}
	w.drop = func(seg packet.Segment) bool {
		// Drop the first SYN only.
		if seg.Kind() == packet.KindSYN && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	var srv *Server
	var cli *Client
	srv, _ = NewServer(sim, serverAddr, 80,
		w.sendTo(func(now time.Duration, s packet.Segment) { cli.Deliver(now, s) }),
		ServerConfig{})
	cli, _ = NewClient(sim, clientAddr, 40000, serverAddr, 80, 1,
		w.sendTo(func(now time.Duration, s packet.Segment) { srv.Deliver(now, s) }),
		ClientConfig{})
	if err := cli.Connect(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if cli.State() != StateEstablished {
		t.Fatalf("client state = %v after retransmit", cli.State())
	}
	if dropped != 1 {
		t.Fatalf("drop hook fired %d times", dropped)
	}
}

func TestClientGivesUpAfterRetries(t *testing.T) {
	sim := eventsim.New()
	w := &wire{sim: sim, delay: time.Millisecond}
	w.drop = func(packet.Segment) bool { return true } // black hole
	cli, _ := NewClient(sim, clientAddr, 40000, serverAddr, 80, 1,
		w.sendTo(func(time.Duration, packet.Segment) {}),
		ClientConfig{SynRetries: 2, RTOBase: 3 * time.Second})
	var failedAt time.Duration
	cli.OnFailed = func(now time.Duration) { failedAt = now }
	if err := cli.Connect(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if cli.State() != StateFailed {
		t.Fatalf("state = %v, want FAILED", cli.State())
	}
	// RTO schedule: 3s (retry 1), +6s (retry 2), +12s (give up) = 21s.
	if failedAt != 21*time.Second {
		t.Errorf("failed at %v, want 21s", failedAt)
	}
}

func TestConnectTwiceFails(t *testing.T) {
	sim := eventsim.New()
	cli, _ := NewClient(sim, clientAddr, 1, serverAddr, 80, 1,
		func(packet.Segment) {}, ClientConfig{})
	if err := cli.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Connect(); err == nil {
		t.Error("second Connect should fail")
	}
}

// spoofSyn sends one spoofed SYN from a distinct unreachable source.
func spoofSyn(srv *Server, now time.Duration, i int) {
	src := spoofBase
	for j := 0; j <= i; j++ {
		src = src.Next()
	}
	srv.Deliver(now, packet.Build(src, serverAddr, 1000, 80, uint32(i), 0, packet.FlagSYN))
}

func TestBacklogExhaustion(t *testing.T) {
	sim := eventsim.New()
	var sent []packet.Segment
	srv, err := NewServer(sim, serverAddr, 80,
		func(seg packet.Segment) { sent = append(sent, seg) },
		ServerConfig{Backlog: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		spoofSyn(srv, sim.Now(), i)
	}
	st := srv.Stats()
	if st.SynReceived != 10 {
		t.Errorf("SynReceived = %d, want 10", st.SynReceived)
	}
	if st.SynDropped != 6 {
		t.Errorf("SynDropped = %d, want 6 (backlog 4)", st.SynDropped)
	}
	if srv.BacklogLen() != 4 || !srv.BacklogFull() {
		t.Errorf("backlog = %d full=%v, want 4/true", srv.BacklogLen(), srv.BacklogFull())
	}
	// Each accepted SYN got exactly one immediate SYN/ACK.
	if len(sent) != 4 {
		t.Errorf("SYN/ACKs sent = %d, want 4", len(sent))
	}
}

func TestHalfOpenExpiryFreesBacklog(t *testing.T) {
	sim := eventsim.New()
	synacks := 0
	srv, _ := NewServer(sim, serverAddr, 80,
		func(seg packet.Segment) {
			if seg.Kind() == packet.KindSYNACK {
				synacks++
			}
		},
		ServerConfig{Backlog: 8})
	spoofSyn(srv, 0, 0)
	if srv.BacklogLen() != 1 {
		t.Fatal("half-open not queued")
	}
	sim.RunUntil(74 * time.Second)
	if srv.BacklogLen() != 1 {
		t.Error("half-open reaped before 75s")
	}
	sim.RunUntil(76 * time.Second)
	if srv.BacklogLen() != 0 {
		t.Error("half-open not reaped after 75s")
	}
	if srv.Stats().HalfOpenExpired != 1 {
		t.Errorf("HalfOpenExpired = %d, want 1", srv.Stats().HalfOpenExpired)
	}
	// Initial SYN/ACK + 2 retransmissions (at 3s and 9s).
	if synacks != 3 {
		t.Errorf("SYN/ACK transmissions = %d, want 3", synacks)
	}
}

func TestDuplicateSynResendsWithoutNewEntry(t *testing.T) {
	sim := eventsim.New()
	synacks := 0
	srv, _ := NewServer(sim, serverAddr, 80,
		func(seg packet.Segment) { synacks++ },
		ServerConfig{Backlog: 8})
	syn := packet.Build(clientAddr, serverAddr, 999, 80, 5, 0, packet.FlagSYN)
	srv.Deliver(0, syn)
	srv.Deliver(0, syn) // retransmitted SYN
	if srv.BacklogLen() != 1 {
		t.Errorf("backlog = %d, want 1", srv.BacklogLen())
	}
	if synacks != 2 {
		t.Errorf("SYN/ACKs = %d, want 2", synacks)
	}
}

func TestRstClearsHalfOpen(t *testing.T) {
	sim := eventsim.New()
	srv, _ := NewServer(sim, serverAddr, 80,
		func(packet.Segment) {}, ServerConfig{Backlog: 8})
	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 80, 5, 0, packet.FlagSYN))
	if srv.BacklogLen() != 1 {
		t.Fatal("no half-open created")
	}
	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 80, 0, 0, packet.FlagRST))
	if srv.BacklogLen() != 0 {
		t.Error("RST did not clear the half-open entry")
	}
	if srv.Stats().Resets != 1 {
		t.Errorf("Resets = %d, want 1", srv.Stats().Resets)
	}
}

func TestRSTResponderFoilsSpoofedFlood(t *testing.T) {
	// A spoofed source that is actually reachable answers the victim's
	// SYN/ACK with RST, clearing the backlog entry (Section 1).
	sim := eventsim.New()
	w := &wire{sim: sim, delay: time.Millisecond}

	var srv *Server
	var resp *RSTResponder
	srv, _ = NewServer(sim, serverAddr, 80,
		w.sendTo(func(now time.Duration, s packet.Segment) { resp.Deliver(now, s) }),
		ServerConfig{Backlog: 8})
	resp = NewRSTResponder(clientAddr,
		w.sendTo(func(now time.Duration, s packet.Segment) { srv.Deliver(now, s) }))

	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 80, 5, 0, packet.FlagSYN))
	sim.Run()
	if srv.BacklogLen() != 0 {
		t.Error("backlog entry survived the RST")
	}
	if resp.Sent != 1 {
		t.Errorf("responder sent %d RSTs, want 1", resp.Sent)
	}
	if srv.Stats().Resets != 1 {
		t.Errorf("server Resets = %d, want 1", srv.Stats().Resets)
	}
}

func TestClientRstsUnexpectedSynAck(t *testing.T) {
	sim := eventsim.New()
	var out []packet.Segment
	cli, _ := NewClient(sim, clientAddr, 40000, serverAddr, 80, 1,
		func(seg packet.Segment) { out = append(out, seg) }, ClientConfig{})
	// SYN/ACK from an unrelated peer (client never contacted it).
	other := netip.MustParseAddr("192.0.2.9")
	cli.Deliver(0, packet.Build(other, clientAddr, 80, 50000, 1, 2, packet.FlagSYN|packet.FlagACK))
	if len(out) != 1 || out[0].Kind() != packet.KindRST {
		t.Fatalf("expected one RST, got %v", out)
	}
	if out[0].IP.Dst != other {
		t.Errorf("RST sent to %v, want %v", out[0].IP.Dst, other)
	}
}

func TestSynCookiesKeepBacklogEmpty(t *testing.T) {
	sim := eventsim.New()
	var out []packet.Segment
	srv, _ := NewServer(sim, serverAddr, 80,
		func(seg packet.Segment) { out = append(out, seg) },
		ServerConfig{Backlog: 2, SynCookies: true, CookieSecret: 99})
	for i := 0; i < 100; i++ {
		spoofSyn(srv, 0, i)
	}
	if srv.BacklogLen() != 0 {
		t.Errorf("cookie server queued %d entries, want 0", srv.BacklogLen())
	}
	if srv.Stats().SynDropped != 0 {
		t.Errorf("cookie server dropped %d SYNs, want 0", srv.Stats().SynDropped)
	}
	if len(out) != 100 {
		t.Errorf("SYN/ACKs = %d, want 100", len(out))
	}
}

func TestSynCookieHandshakeCompletes(t *testing.T) {
	sim := eventsim.New()
	w := &wire{sim: sim, delay: time.Millisecond}
	var srv *Server
	var cli *Client
	srv, _ = NewServer(sim, serverAddr, 80,
		w.sendTo(func(now time.Duration, s packet.Segment) { cli.Deliver(now, s) }),
		ServerConfig{SynCookies: true, CookieSecret: 424242})
	cli, _ = NewClient(sim, clientAddr, 40000, serverAddr, 80, 31337,
		w.sendTo(func(now time.Duration, s packet.Segment) { srv.Deliver(now, s) }),
		ClientConfig{})
	if err := cli.Connect(); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if cli.State() != StateEstablished {
		t.Fatalf("client state = %v", cli.State())
	}
	if srv.Stats().Established != 1 {
		t.Errorf("server established = %d, want 1", srv.Stats().Established)
	}
	if srv.Stats().BadAcks != 0 {
		t.Errorf("BadAcks = %d, want 0", srv.Stats().BadAcks)
	}
}

func TestSynCookieRejectsForgedAck(t *testing.T) {
	sim := eventsim.New()
	srv, _ := NewServer(sim, serverAddr, 80, func(packet.Segment) {},
		ServerConfig{SynCookies: true, CookieSecret: 7})
	// ACK with a made-up acknowledgment number: no valid cookie.
	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 80, 6, 12345, packet.FlagACK))
	if srv.Stats().Established != 0 {
		t.Error("forged ACK established a connection")
	}
	if srv.Stats().BadAcks != 1 {
		t.Errorf("BadAcks = %d, want 1", srv.Stats().BadAcks)
	}
}

func TestServerIgnoresOtherPorts(t *testing.T) {
	sim := eventsim.New()
	srv, _ := NewServer(sim, serverAddr, 80, func(packet.Segment) {}, ServerConfig{})
	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 8080, 5, 0, packet.FlagSYN))
	if srv.Stats().SynReceived != 0 {
		t.Error("SYN to a different port was counted")
	}
}

func TestStaleAckCounted(t *testing.T) {
	sim := eventsim.New()
	srv, _ := NewServer(sim, serverAddr, 80, func(packet.Segment) {}, ServerConfig{})
	srv.Deliver(0, packet.Build(clientAddr, serverAddr, 999, 80, 5, 99, packet.FlagACK))
	if srv.Stats().BadAcks != 1 {
		t.Errorf("BadAcks = %d, want 1", srv.Stats().BadAcks)
	}
}

func TestNewEndpointValidation(t *testing.T) {
	sim := eventsim.New()
	if _, err := NewServer(nil, serverAddr, 80, func(packet.Segment) {}, ServerConfig{}); err == nil {
		t.Error("nil sim should fail")
	}
	if _, err := NewServer(sim, serverAddr, 80, nil, ServerConfig{}); err == nil {
		t.Error("nil send should fail")
	}
	if _, err := NewServer(sim, netip.Addr{}, 80, func(packet.Segment) {}, ServerConfig{}); err == nil {
		t.Error("invalid addr should fail")
	}
	if _, err := NewClient(nil, clientAddr, 1, serverAddr, 80, 1, func(packet.Segment) {}, ClientConfig{}); err == nil {
		t.Error("nil sim client should fail")
	}
}

func TestClientStateString(t *testing.T) {
	want := map[ClientState]string{
		StateClosed:      "CLOSED",
		StateSynSent:     "SYN_SENT",
		StateEstablished: "ESTABLISHED",
		StateFailed:      "FAILED",
		ClientState(77):  "state(77)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

// Property: the cookie validates for the exact 4-tuple+ISN and fails
// for any perturbation of the client ISN.
func TestCookieProperty(t *testing.T) {
	f := func(secret uint64, srcRaw, dstRaw [4]byte, sp, dp uint16, isn uint32, fuzz uint32) bool {
		src := netip.AddrFrom4(srcRaw)
		dst := netip.AddrFrom4(dstRaw)
		c1 := MakeCookie(secret, src, dst, sp, dp, isn)
		c2 := MakeCookie(secret, src, dst, sp, dp, isn)
		if c1 != c2 {
			return false // must be deterministic
		}
		if fuzz == 0 {
			return true
		}
		return MakeCookie(secret, src, dst, sp, dp, isn+fuzz) != c1 ||
			MakeCookie(secret^0x1, src, dst, sp, dp, isn) != c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
