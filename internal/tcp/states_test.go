package tcp

import (
	"errors"
	"testing"
)

// step asserts one legal transition and its output.
func step(t *testing.T, m *Machine, ev Event, wantState State, wantOut Output) {
	t.Helper()
	out, err := m.Step(ev)
	if err != nil {
		t.Fatalf("Step(%v) in %v: %v", ev, m.State(), err)
	}
	if m.State() != wantState {
		t.Fatalf("after %v: state = %v, want %v", ev, m.State(), wantState)
	}
	if out != wantOut {
		t.Fatalf("after %v: output = %d, want %d", ev, out, wantOut)
	}
}

func TestStateStrings(t *testing.T) {
	if Closed.String() != "CLOSED" || TimeWait.String() != "TIME_WAIT" {
		t.Error("state names wrong")
	}
	if State(99).String() != "state(99)" {
		t.Error("unknown state name wrong")
	}
	if EvRcvSyn.String() != "rcv-syn" || Event(99).String() != "event(99)" {
		t.Error("event names wrong")
	}
}

// TestFigure1ClientPath walks the client-side (active) path of the
// paper's Figure 1: active open -> ESTABLISHED -> active close ->
// TIME_WAIT -> CLOSED.
func TestFigure1ClientPath(t *testing.T) {
	var m Machine
	if m.State() != Closed {
		t.Fatal("fresh machine not CLOSED")
	}
	step(t, &m, EvActiveOpen, SynSent, OutSyn)
	step(t, &m, EvRcvSynAck, Established, OutAck)
	step(t, &m, EvClose, FinWait1, OutFin)
	step(t, &m, EvRcvAckOfFin, FinWait2, OutNone)
	step(t, &m, EvRcvFin, TimeWait, OutAck)
	step(t, &m, Ev2MSLTimeout, Closed, OutNone)
	if len(m.Trace()) != 6 {
		t.Errorf("trace length = %d, want 6", len(m.Trace()))
	}
}

// TestFigure1ServerPath walks the server-side (passive) path: passive
// open -> SYN_RCVD -> ESTABLISHED -> passive close -> CLOSED.
func TestFigure1ServerPath(t *testing.T) {
	var m Machine
	step(t, &m, EvPassiveOpen, Listen, OutNone)
	step(t, &m, EvRcvSyn, SynRcvd, OutSynAck)
	step(t, &m, EvRcvAckOfSyn, Established, OutNone)
	step(t, &m, EvRcvFin, CloseWait, OutAck)
	step(t, &m, EvClose, LastAck, OutFin)
	step(t, &m, EvRcvAckOfFin, Closed, OutNone)
}

// TestSimultaneousOpen: both ends in SYN_SENT receive the peer SYN.
func TestSimultaneousOpen(t *testing.T) {
	var m Machine
	step(t, &m, EvActiveOpen, SynSent, OutSyn)
	step(t, &m, EvRcvSyn, SynRcvd, OutSynAck)
	step(t, &m, EvRcvAckOfSyn, Established, OutNone)
}

// TestSimultaneousClose: FINs cross on the wire.
func TestSimultaneousClose(t *testing.T) {
	var m Machine
	step(t, &m, EvActiveOpen, SynSent, OutSyn)
	step(t, &m, EvRcvSynAck, Established, OutAck)
	step(t, &m, EvClose, FinWait1, OutFin)
	step(t, &m, EvRcvFin, Closing, OutAck)
	step(t, &m, EvRcvAckOfFin, TimeWait, OutNone)
	step(t, &m, Ev2MSLTimeout, Closed, OutNone)
}

// TestEarlyCloseFromSynRcvd: a server whose application closes before
// the handshake completes goes straight to FIN_WAIT_1.
func TestEarlyCloseFromSynRcvd(t *testing.T) {
	var m Machine
	step(t, &m, EvPassiveOpen, Listen, OutNone)
	step(t, &m, EvRcvSyn, SynRcvd, OutSynAck)
	step(t, &m, EvClose, FinWait1, OutFin)
}

// TestAbortBeforeHandshake: close() in SYN_SENT abandons quietly.
func TestAbortBeforeHandshake(t *testing.T) {
	var m Machine
	step(t, &m, EvActiveOpen, SynSent, OutSyn)
	step(t, &m, EvClose, Closed, OutNone)
}

func TestRstSemantics(t *testing.T) {
	// RST in a synchronized state kills the connection.
	var m Machine
	step(t, &m, EvActiveOpen, SynSent, OutSyn)
	step(t, &m, EvRcvSynAck, Established, OutAck)
	if _, err := m.Step(EvRcvRst); err != nil {
		t.Fatal(err)
	}
	if m.State() != Closed {
		t.Errorf("after RST: %v, want CLOSED", m.State())
	}
	// RST to a listener is ignored: the server keeps listening. This
	// is why the victim's listening socket survives the flood even as
	// its backlog dies.
	var srv Machine
	step(t, &srv, EvPassiveOpen, Listen, OutNone)
	if _, err := srv.Step(EvRcvRst); err != nil {
		t.Fatal(err)
	}
	if srv.State() != Listen {
		t.Errorf("listener after RST: %v, want LISTEN", srv.State())
	}
	// RST in CLOSED is a no-op.
	var idle Machine
	if _, err := idle.Step(EvRcvRst); err != nil {
		t.Fatal(err)
	}
	if idle.State() != Closed {
		t.Error("CLOSED moved on RST")
	}
}

func TestInvalidTransitionsRejected(t *testing.T) {
	cases := []struct {
		name  string
		setup []Event
		ev    Event
	}{
		{"fin in closed", nil, EvRcvFin},
		{"synack in listen", []Event{EvPassiveOpen}, EvRcvSynAck},
		{"2msl in established", []Event{EvActiveOpen, EvRcvSynAck}, Ev2MSLTimeout},
		{"close after close", []Event{EvActiveOpen, EvRcvSynAck, EvClose}, EvClose},
		{"ack-of-syn in closed", nil, EvRcvAckOfSyn},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m Machine
			for _, ev := range tc.setup {
				if _, err := m.Step(ev); err != nil {
					t.Fatal(err)
				}
			}
			before := m.State()
			if _, err := m.Step(tc.ev); !errors.Is(err, ErrInvalidTransition) {
				t.Fatalf("error = %v, want ErrInvalidTransition", err)
			}
			if m.State() != before {
				t.Error("failed transition changed state")
			}
		})
	}
}

func TestSynchronizedClassification(t *testing.T) {
	sync := []State{Established, FinWait1, FinWait2, CloseWait, Closing, LastAck, TimeWait}
	unsync := []State{Closed, Listen, SynSent, SynRcvd}
	for _, s := range sync {
		if !s.Synchronized() {
			t.Errorf("%v should be synchronized", s)
		}
	}
	for _, s := range unsync {
		if s.Synchronized() {
			t.Errorf("%v should not be synchronized", s)
		}
	}
	if !SynRcvd.HalfOpenState() || Established.HalfOpenState() {
		t.Error("half-open classification wrong")
	}
}

// TestHalfOpenNeverCloses is the flood's essence expressed on the
// state machine: a spoofed handshake parks the server in SYN_RCVD and,
// absent the final ACK, only RST or timeout (modeled by the endpoint's
// reaper, not the machine) ever moves it — Figure 1 has no spontaneous
// SYN_RCVD exit.
func TestHalfOpenNeverCloses(t *testing.T) {
	var m Machine
	step(t, &m, EvPassiveOpen, Listen, OutNone)
	step(t, &m, EvRcvSyn, SynRcvd, OutSynAck)
	for _, ev := range []Event{EvRcvFin, EvRcvSynAck, Ev2MSLTimeout, EvRcvAckOfFin} {
		if _, err := m.Step(ev); err == nil {
			t.Fatalf("%v should not move SYN_RCVD", ev)
		}
	}
	if m.State() != SynRcvd {
		t.Error("half-open state drifted")
	}
}

// TestEveryTabledTransitionReachable exercises each tabled edge at
// least once by brute force from its source state.
func TestEveryTabledTransitionReachable(t *testing.T) {
	for key, val := range transitions {
		m := Machine{state: key.state}
		out, err := m.Step(key.event)
		if err != nil {
			t.Errorf("tabled edge %v --%v--> rejected: %v", key.state, key.event, err)
			continue
		}
		if m.State() != val.next || out != val.out {
			t.Errorf("edge %v --%v--> got (%v,%d), want (%v,%d)",
				key.state, key.event, m.State(), out, val.next, val.out)
		}
	}
}
