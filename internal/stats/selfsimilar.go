package stats

import (
	"math"
)

// VarianceTimeHurst estimates the Hurst exponent with the
// variance-time method, the classic complement to R/S: the series is
// aggregated at geometrically increasing block sizes m, and for a
// self-similar process Var(X^(m)) ~ m^(2H-2), so the slope β of
// log Var against log m gives H = 1 + β/2.
//
// Together with HurstRS it lets trace tests cross-check that the
// synthetic background exhibits the long-range dependence measured in
// real wide-area TCP arrivals (H ≈ 0.7-0.9) rather than Poisson
// smoothness (H = 0.5). Needs at least 64 points.
func VarianceTimeHurst(xs []float64) (float64, error) {
	n := len(xs)
	if n < 64 {
		return 0, ErrShortSeries
	}
	var logM, logVar []float64
	for m := 1; m <= n/8; m *= 2 {
		agg := aggregateMeans(xs, m)
		v := Variance(agg)
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log(float64(m)))
		logVar = append(logVar, math.Log(v))
	}
	if len(logM) < 3 {
		return 0, ErrShortSeries
	}
	slope, _ := linearFit(logM, logVar)
	h := 1 + slope/2
	return h, nil
}

// aggregateMeans averages non-overlapping blocks of size m.
func aggregateMeans(xs []float64, m int) []float64 {
	blocks := len(xs) / m
	out := make([]float64, blocks)
	for b := 0; b < blocks; b++ {
		sum := 0.0
		for i := b * m; i < (b+1)*m; i++ {
			sum += xs[i]
		}
		out[b] = sum / float64(m)
	}
	return out
}

// IndexOfDispersion returns Var/Mean of the series — 1 for Poisson
// counts, > 1 for bursty (overdispersed) counts. Returns 0 for a
// zero-mean series.
func IndexOfDispersion(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Variance(xs) / m
}
