package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestVarianceTimeHurstWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := VarianceTimeHurst(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.35 || h > 0.62 {
		t.Errorf("white-noise variance-time H = %v, want ≈0.5", h)
	}
}

func TestVarianceTimeHurstPersistentSeries(t *testing.T) {
	// Sum of a slowly-varying regime signal and noise: strong positive
	// correlation across aggregation levels -> H well above 0.5.
	rng := rand.New(rand.NewSource(22))
	xs := make([]float64, 8192)
	level := 0.0
	for i := range xs {
		if i%64 == 0 {
			level = 3 * rng.NormFloat64()
		}
		xs[i] = level + 0.3*rng.NormFloat64()
	}
	h, err := VarianceTimeHurst(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.7 {
		t.Errorf("persistent-series H = %v, want > 0.7", h)
	}
}

func TestVarianceTimeHurstShortSeries(t *testing.T) {
	if _, err := VarianceTimeHurst(make([]float64, 10)); err != ErrShortSeries {
		t.Errorf("error = %v, want ErrShortSeries", err)
	}
	// Constant series: zero variance at every level.
	if _, err := VarianceTimeHurst(make([]float64, 128)); err != ErrShortSeries {
		t.Errorf("constant series error = %v, want ErrShortSeries", err)
	}
}

func TestAggregateMeans(t *testing.T) {
	xs := []float64{1, 3, 5, 7, 9, 11}
	got := aggregateMeans(xs, 2)
	want := []float64{2, 6, 10}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("agg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Partial trailing block is dropped.
	if got := aggregateMeans(xs, 4); len(got) != 1 || got[0] != 4 {
		t.Errorf("m=4 agg = %v, want [4]", got)
	}
}

func TestIndexOfDispersion(t *testing.T) {
	// Poisson-like counts: IoD ≈ 1.
	rng := rand.New(rand.NewSource(23))
	xs := make([]float64, 4096)
	for i := range xs {
		// Sum of 100 Bernoulli(0.5) ≈ binomial: IoD = 1-p = 0.5.
		c := 0.0
		for j := 0; j < 100; j++ {
			if rng.Float64() < 0.5 {
				c++
			}
		}
		xs[i] = c
	}
	iod := IndexOfDispersion(xs)
	if iod < 0.4 || iod > 0.6 {
		t.Errorf("binomial IoD = %v, want ≈0.5", iod)
	}
	if IndexOfDispersion(make([]float64, 10)) != 0 {
		t.Error("zero-mean IoD should be 0")
	}
}
