package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates observations into fixed-width bins over a
// half-open range [Lo, Hi). Observations below Lo land in an underflow
// counter and observations at or above Hi in an overflow counter, so no
// observation is ever silently dropped. The zero value is not usable;
// construct with NewHistogram.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []uint64
	underflow uint64
	overflow  uint64
	total     uint64
}

// NewHistogram returns a histogram with the given number of equal-width
// bins covering [lo, hi). It panics if bins < 1 or hi <= lo, which are
// programming errors rather than runtime conditions.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must satisfy lo < hi")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]uint64, bins),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int((x - h.lo) / h.width)
		if idx >= len(h.counts) { // float round-off at the upper edge
			idx = len(h.counts) - 1
		}
		h.counts[idx]++
	}
}

// Total returns the number of observations recorded, including
// under- and overflow.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the count of bin i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Bins returns the number of in-range bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Underflow returns how many observations fell below the range.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow returns how many observations fell at or above the range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// BinEdges returns the [lo, hi) edges of bin i.
func (h *Histogram) BinEdges(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}

// Fraction returns the share of all observations that landed in bin i,
// or 0 when the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// String renders a compact ASCII bar chart, one line per bin, suitable
// for terminal reports.
func (h *Histogram) String() string {
	var peak uint64
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for i, c := range h.counts {
		lo, hi := h.BinEdges(i)
		bar := 0
		if peak > 0 {
			bar = int(math.Round(float64(c) / float64(peak) * 40))
		}
		fmt.Fprintf(&sb, "[%10.3f, %10.3f) %8d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	if h.underflow > 0 {
		fmt.Fprintf(&sb, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&sb, "overflow %d\n", h.overflow)
	}
	return sb.String()
}
