// Package stats provides the small statistical toolkit used across the
// SYN-dog reproduction: summary statistics, quantiles, autocorrelation,
// histograms and a rescaled-range (R/S) Hurst-exponent estimator.
//
// All functions are pure and operate on float64 slices. They never
// mutate their inputs unless explicitly documented (Quantile sorts a
// private copy). The package has no dependencies beyond the standard
// library and is safe for concurrent use.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful
// result from an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns ErrEmpty for an empty slice.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for an empty slice.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (type-7 estimator, the default
// in R and NumPy). The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range [0,1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Summary bundles the common descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P25    float64
	Median float64
	P75    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	p25, _ := Quantile(xs, 0.25)
	med, _ := Quantile(xs, 0.5)
	p75, _ := Quantile(xs, 0.75)
	p99, _ := Quantile(xs, 0.99)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    mn,
		Max:    mx,
		P25:    p25,
		Median: med,
		P75:    p75,
		P99:    p99,
	}, nil
}

// Autocorrelation returns the lag-k sample autocorrelation of xs,
// normalized by the lag-0 autocovariance. It returns 0 when the series
// is too short for the requested lag or has zero variance.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// CrossCorrelation returns the zero-lag Pearson correlation coefficient
// between xs and ys. Both series must have equal length and at least
// two points; otherwise 0 is returned. A value near +1 indicates the
// strong positive SYN-SYN/ACK coupling the paper relies on.
func CrossCorrelation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := 0; i < n; i++ {
		a := xs[i] - mx
		b := ys[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}
