package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{42}, 42},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, -6}, -4},
		{"mixed", []float64{-1, 0, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance (n-1 denominator) of this classic set is 4.571428...
	wantVar := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, wantVar, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, wantVar)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(wantVar), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(wantVar))
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) error = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4}, // interpolated
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(q=1.5) should fail")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	if _, err := Quantile(in, 0.5); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", in)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Errorf("N = %d, want 10", s.N)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Errorf("Mean = %v, want 5.5", s.Mean)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 5.5, 1e-12) {
		t.Errorf("Median = %v, want 5.5", s.Median)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant series has zero variance: autocorrelation defined as 0.
	if got := Autocorrelation([]float64{5, 5, 5, 5}, 1); got != 0 {
		t.Errorf("constant series lag-1 = %v, want 0", got)
	}
	// Lag 0 is identically 1 for any non-constant series.
	xs := []float64{1, 2, 1, 2, 1, 2, 1, 2}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 = %v, want 1", got)
	}
	// Perfectly alternating series has strongly negative lag-1.
	if got := Autocorrelation(xs, 1); got >= 0 {
		t.Errorf("alternating lag-1 = %v, want negative", got)
	}
	// Out-of-range lags are defined as 0.
	if got := Autocorrelation(xs, 99); got != 0 {
		t.Errorf("overlong lag = %v, want 0", got)
	}
	if got := Autocorrelation(xs, -1); got != 0 {
		t.Errorf("negative lag = %v, want 0", got)
	}
}

func TestCrossCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	// Identical series correlate at exactly +1.
	if got := CrossCorrelation(xs, xs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self correlation = %v, want 1", got)
	}
	// A negated copy correlates at exactly -1.
	neg := []float64{-1, -2, -3, -4, -5}
	if got := CrossCorrelation(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("negated correlation = %v, want -1", got)
	}
	// Mismatched lengths and constant series yield 0.
	if got := CrossCorrelation(xs, xs[:3]); got != 0 {
		t.Errorf("length mismatch = %v, want 0", got)
	}
	if got := CrossCorrelation([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant left series = %v, want 0", got)
	}
}

func TestHurstRSWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := HurstRS(xs)
	if err != nil {
		t.Fatal(err)
	}
	// White noise has H = 0.5; R/S on finite samples is biased upward,
	// so accept a generous band.
	if h < 0.4 || h > 0.68 {
		t.Errorf("white-noise Hurst = %v, want ~0.5", h)
	}
}

func TestHurstRSTrendingSeries(t *testing.T) {
	// A strongly persistent (integrated) series should report a higher
	// Hurst exponent than white noise.
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 4096)
	level := 0.0
	for i := range xs {
		level += rng.NormFloat64()
		xs[i] = level
	}
	h, err := HurstRS(xs)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.8 {
		t.Errorf("random-walk Hurst = %v, want > 0.8", h)
	}
}

func TestHurstRSShortSeries(t *testing.T) {
	if _, err := HurstRS(make([]float64, 10)); err != ErrShortSeries {
		t.Errorf("short series error = %v, want ErrShortSeries", err)
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := linearFit(x, y)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Errorf("fit = (%v, %v), want (2, 1)", slope, intercept)
	}
	// Degenerate x (zero spread) must not divide by zero.
	slope, intercept = linearFit([]float64{2, 2}, []float64{1, 3})
	if slope != 0 || !almostEqual(intercept, 2, 1e-12) {
		t.Errorf("degenerate fit = (%v, %v), want (0, 2)", slope, intercept)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.999, -1, 10, 11} {
		h.Observe(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Count(0) != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Count(1))
	}
	if h.Count(2) != 1 { // 5
		t.Errorf("bin2 = %d, want 1", h.Count(2))
	}
	if h.Count(4) != 1 { // 9.999
		t.Errorf("bin4 = %d, want 1", h.Count(4))
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	lo, hi := h.BinEdges(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinEdges(1) = %v,%v; want 2,4", lo, hi)
	}
	if got := h.Fraction(0); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("Fraction(0) = %v, want 0.25", got)
	}
	if h.String() == "" {
		t.Error("String() should render something")
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero bins", func() { NewHistogram(0, 1, 0) })
	assertPanics("inverted range", func() { NewHistogram(1, 0, 4) })
}

// Property: mean of any sample lies within [min, max].
func TestMeanWithinBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		mn, _ := Min(clean)
		mx, _ := Max(clean)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is never negative and is translation invariant.
func TestVarianceProperties(t *testing.T) {
	f := func(xs []float64, shiftRaw int8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e8 {
				clean = append(clean, x)
			}
		}
		v := Variance(clean)
		if v < 0 {
			return false
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(clean))
		for i, x := range clean {
			shifted[i] = x + shift
		}
		v2 := Variance(shifted)
		return almostEqual(v, v2, 1e-6*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qa, qb uint8) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(clean, q1)
		v2, err2 := Quantile(clean, q2)
		if err1 != nil || err2 != nil {
			return false
		}
		return v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram never loses observations.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		var inRange uint64
		for i := 0; i < h.Bins(); i++ {
			inRange += h.Count(i)
		}
		return h.Total() == uint64(n) &&
			inRange+h.Underflow()+h.Overflow() == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
