package stats

import (
	"errors"
	"math"
)

// ErrShortSeries is returned when a series is too short for the
// requested estimator.
var ErrShortSeries = errors.New("stats: series too short")

// HurstRS estimates the Hurst exponent of xs with the classical
// rescaled-range (R/S) method: the series is cut into non-overlapping
// blocks of geometrically increasing sizes, E[R/S](n) is computed per
// size, and H is the slope of log(R/S) against log(n) by least squares.
//
// H ≈ 0.5 indicates short-range dependence (Poisson-like); H in
// (0.5, 1) indicates long-range dependence / self-similar burstiness
// as reported for wide-area TCP arrivals (Paxson & Floyd). The
// estimator needs at least 32 points.
func HurstRS(xs []float64) (float64, error) {
	n := len(xs)
	if n < 32 {
		return 0, ErrShortSeries
	}
	var logN, logRS []float64
	for size := 8; size <= n/4; size *= 2 {
		rs := averageRS(xs, size)
		if rs <= 0 {
			continue
		}
		logN = append(logN, math.Log(float64(size)))
		logRS = append(logRS, math.Log(rs))
	}
	if len(logN) < 2 {
		return 0, ErrShortSeries
	}
	slope, _ := linearFit(logN, logRS)
	return slope, nil
}

// averageRS returns mean R/S over all complete blocks of the given size.
func averageRS(xs []float64, size int) float64 {
	blocks := len(xs) / size
	if blocks == 0 {
		return 0
	}
	total := 0.0
	counted := 0
	for b := 0; b < blocks; b++ {
		block := xs[b*size : (b+1)*size]
		if rs, ok := rescaledRange(block); ok {
			total += rs
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// rescaledRange computes R/S of one block: range of the mean-adjusted
// cumulative sum divided by the block standard deviation.
func rescaledRange(block []float64) (float64, bool) {
	m := Mean(block)
	var cum, minCum, maxCum, ss float64
	for _, x := range block {
		d := x - m
		cum += d
		if cum < minCum {
			minCum = cum
		}
		if cum > maxCum {
			maxCum = cum
		}
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(block)))
	if sd == 0 {
		return 0, false
	}
	return (maxCum - minCum) / sd, true
}

// linearFit returns the least-squares slope and intercept of y on x.
// Both slices must have equal, nonzero length (the caller guarantees
// this); degenerate inputs yield slope 0.
func linearFit(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	if n == 0 {
		return 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0, my
	}
	slope = num / den
	return slope, my - slope*mx
}
