package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Snapshot is the agent's complete persistable state: enough to stop
// a SYN-dog daemon and resume it (e.g. across a router reboot) without
// losing the K̄ baseline, the accumulated CUSUM evidence, or the
// period history. Counts inside the current (unfinished) observation
// period are intentionally NOT persisted — the paper's statelessness
// means losing a partial period costs at most one t0 of evidence.
type Snapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Config is the agent's effective configuration.
	Config Config `json:"config"`
	// KBar and KBarPrimed capture the EWMA estimator.
	KBar       float64 `json:"kBar"`
	KBarPrimed bool    `json:"kBarPrimed"`
	// Y, AlarmLatched, Observations and OnsetIndex capture the CUSUM
	// detector.
	Y            float64 `json:"y"`
	AlarmLatched bool    `json:"alarmLatched"`
	Observations uint64  `json:"observations"`
	OnsetIndex   uint64  `json:"onsetIndex"`
	// Reports is the period history.
	Reports []Report `json:"reports"`
	// Alarm is the first alarm, if any.
	Alarm *Alarm `json:"alarm,omitempty"`
}

// snapshotVersion is the current format version.
const snapshotVersion = 1

// ErrBadSnapshot reports an unusable snapshot.
var ErrBadSnapshot = errors.New("core: invalid snapshot")

// Snapshot captures the agent's state.
func (a *Agent) Snapshot() Snapshot {
	s := Snapshot{
		Version:      snapshotVersion,
		Config:       a.cfg,
		KBar:         a.kBar.Value(),
		KBarPrimed:   a.kBar.Primed(),
		Y:            a.det.Statistic(),
		AlarmLatched: a.det.Alarmed(),
		Observations: a.det.Observations(),
		OnsetIndex:   a.det.OnsetIndex(),
		Reports:      append([]Report(nil), a.reports...),
	}
	if a.alarm != nil {
		al := *a.alarm
		s.Alarm = &al
	}
	return s
}

// RestoreAgent rebuilds an agent from a snapshot.
func RestoreAgent(s Snapshot) (*Agent, error) {
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, s.Version, snapshotVersion)
	}
	a, err := NewAgent(s.Config)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if err := a.kBar.Restore(s.KBar, s.KBarPrimed); err != nil {
		return nil, fmt.Errorf("%w: kBar: %v", ErrBadSnapshot, err)
	}
	if err := a.det.Restore(s.Y, s.AlarmLatched, s.Observations, s.OnsetIndex); err != nil {
		return nil, fmt.Errorf("%w: detector: %v", ErrBadSnapshot, err)
	}
	a.reports = append([]Report(nil), s.Reports...)
	if s.Alarm != nil {
		al := *s.Alarm
		a.alarm = &al
	}
	return a, nil
}

// Write serializes the snapshot as indented JSON — the on-disk format
// ReadSnapshot accepts. Exposed separately from Agent.WriteSnapshot so
// callers can capture a Snapshot value under their own locking and
// persist it without holding the agent.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteSnapshot serializes the agent's state as JSON.
func (a *Agent) WriteSnapshot(w io.Writer) error {
	return a.Snapshot().Write(w)
}

// ReadSnapshot deserializes and restores an agent.
func ReadSnapshot(r io.Reader) (*Agent, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return RestoreAgent(s)
}
