package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// ExampleAgent shows the minimal detection loop: count packets per
// interface, close observation periods, read the alarm.
func ExampleAgent() {
	agent, err := core.NewAgent(core.Config{}) // paper defaults: t0=20s, a=0.35, N=1.05
	if err != nil {
		panic(err)
	}

	// Ten benign periods: 100 outgoing SYNs matched by 100 incoming
	// SYN/ACKs each.
	now := time.Duration(0)
	for p := 0; p < 10; p++ {
		for i := 0; i < 100; i++ {
			agent.Observe(netsim.Outbound, packet.KindSYN)
			agent.Observe(netsim.Inbound, packet.KindSYNACK)
		}
		now += 20 * time.Second
		agent.EndPeriod(now)
	}
	fmt.Println("after benign traffic, alarmed:", agent.Alarmed())

	// A spoofed flood adds 70 unanswered SYNs per period (drift = 2a).
	for p := 0; p < 4; p++ {
		for i := 0; i < 100; i++ {
			agent.Observe(netsim.Outbound, packet.KindSYN)
			agent.Observe(netsim.Inbound, packet.KindSYNACK)
		}
		for i := 0; i < 70; i++ {
			agent.Observe(netsim.Outbound, packet.KindSYN)
		}
		now += 20 * time.Second
		agent.EndPeriod(now)
	}
	alarm := agent.FirstAlarm()
	fmt.Println("after flood, alarmed:", agent.Alarmed())
	fmt.Println("detection delay (periods):", alarm.Period-10)

	// Output:
	// after benign traffic, alarmed: false
	// after flood, alarmed: true
	// detection delay (periods): 3
}
