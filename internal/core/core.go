// Package core implements SYN-dog itself: the stateless software agent
// installed at a leaf router that sniffs SYN flooding sources
// (Sections 2-3 of the paper).
//
// An Agent owns two Sniffers — one per router interface. The outbound
// Sniffer counts outgoing SYNs, the inbound Sniffer counts incoming
// SYN/ACKs. At the end of every observation period t0 (default 20 s)
// the agent:
//
//  1. collects Δn = #outgoing SYN − #incoming SYN/ACK,
//  2. updates K̄ with the EWMA of Eq. 1 and normalizes Xn = Δn/K̄,
//  3. feeds Xn to the non-parametric CUSUM detector (Eqs. 2-4).
//
// When the test statistic yn exceeds the threshold N the agent raises
// an alarm: the flooding source is inside this stub network, so no IP
// traceback is needed — that is the paper's headline property.
//
// The agent is stateless in the paper's sense: its memory is two
// packet counters, one EWMA scalar and one CUSUM scalar, independent
// of connection count, which is what makes it immune to flooding.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/cusum"
	"repro/internal/eventsim"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

// DefaultObservationPeriod is t0 from Section 3.1.
const DefaultObservationPeriod = 20 * time.Second

// DefaultAlpha is the EWMA memory used for the K̄ estimate of Eq. 1.
// The paper leaves α unspecified ("a constant lying strictly between
// 0 and 1"); 0.9 gives a ~10-period memory.
const DefaultAlpha = 0.9

// Sniffer counts classified TCP control packets at one router
// interface. It is the per-interface half of SYN-dog (Figure 2); two
// sniffers share their counts with the agent at each period boundary.
type Sniffer struct {
	dir netsim.Direction

	// Per-kind running counters for the current observation period.
	syn    uint64
	synAck uint64
	fin    uint64
	rst    uint64

	// Lifetime totals (not reset at period boundaries).
	totalSeen uint64
}

// NewSniffer builds a sniffer for the given interface direction.
func NewSniffer(dir netsim.Direction) *Sniffer {
	return &Sniffer{dir: dir}
}

// Direction returns the interface this sniffer watches.
func (s *Sniffer) Direction() netsim.Direction { return s.dir }

// Count records one packet of the given kind.
func (s *Sniffer) Count(kind packet.Kind) {
	s.totalSeen++
	switch kind {
	case packet.KindSYN:
		s.syn++
	case packet.KindSYNACK:
		s.synAck++
	case packet.KindFIN:
		s.fin++
	case packet.KindRST:
		s.rst++
	}
}

// PeriodCounts is the snapshot a sniffer reports at a period boundary.
type PeriodCounts struct {
	SYN    uint64
	SYNACK uint64
	FIN    uint64
	RST    uint64
}

// Drain returns the current period's counts and resets them.
func (s *Sniffer) Drain() PeriodCounts {
	pc := PeriodCounts{SYN: s.syn, SYNACK: s.synAck, FIN: s.fin, RST: s.rst}
	s.syn, s.synAck, s.fin, s.rst = 0, 0, 0, 0
	return pc
}

// TotalSeen returns the lifetime packet count.
func (s *Sniffer) TotalSeen() uint64 { return s.totalSeen }

// Load replaces the sniffer's current-period counters with aggregated
// counts, as if it had observed that many packets this period. It is
// the counts-level twin of calling Count once per packet: any counts
// from individual Observe calls inside the current partial period are
// discarded, because aggregated inputs are authoritative for the whole
// period.
func (s *Sniffer) Load(pc PeriodCounts) {
	s.totalSeen += pc.SYN + pc.SYNACK + pc.FIN + pc.RST
	s.syn, s.synAck, s.fin, s.rst = pc.SYN, pc.SYNACK, pc.FIN, pc.RST
}

// Config parameterizes an Agent. Zero fields take defaults.
type Config struct {
	// T0 is the observation period (default 20 s).
	T0 time.Duration
	// Alpha is the EWMA memory for K̄ (default 0.9).
	Alpha float64
	// Offset is the CUSUM offset a (default 0.35).
	Offset float64
	// Threshold is the CUSUM flooding threshold N (default 1.05).
	Threshold float64
	// MinK floors the K̄ normalizer to avoid division by ~0 on idle
	// links (default 1 SYN/ACK per period).
	MinK float64
	// WarmupPeriods, if positive, lets the agent observe that many
	// initial periods without feeding the CUSUM detector: K̄ primes
	// and the traffic pipeline fills before decisions start. The
	// first-mile SYN-SYN/ACK pairing settles within one RTT and needs
	// no warm-up (default 0); the last-mile SYN-FIN pairing lags by a
	// connection lifetime and benefits from a few periods.
	WarmupPeriods int
}

// Normalized returns the configuration with defaults applied — the
// effective parameters an agent built from c would run with. Two
// configurations are interchangeable exactly when their normalized
// forms are equal; the daemon uses this to refuse resuming a snapshot
// whose parameters disagree with the command line.
func (c Config) Normalized() Config {
	c.applyDefaults()
	return c
}

func (c *Config) applyDefaults() {
	if c.T0 == 0 {
		c.T0 = DefaultObservationPeriod
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Offset == 0 {
		c.Offset = cusum.DefaultOffset
	}
	if c.Threshold == 0 {
		c.Threshold = cusum.DefaultThreshold
	}
	if c.MinK == 0 {
		c.MinK = 1
	}
}

// Report is the agent's record of one observation period.
type Report struct {
	// Index is the 0-based observation period number.
	Index int
	// End is the simulation/trace time at which the period closed.
	End time.Duration
	// OutSYN and InSYNACK are the period's packet counts.
	OutSYN   uint64
	InSYNACK uint64
	// K is the EWMA estimate K̄ after folding in this period.
	K float64
	// X is the normalized observation Xn = Δn/K̄.
	X float64
	// Y is the CUSUM statistic yn after this observation.
	Y float64
	// Alarmed reports dN(yn), the detector decision.
	Alarmed bool
}

// Alarm describes the first threshold crossing.
type Alarm struct {
	// Period is the observation-period index at which yn first
	// exceeded N.
	Period int
	// At is the period-end time of the crossing.
	At time.Duration
	// Y is the statistic value at the crossing.
	Y float64
}

// Agent is one SYN-dog instance at a leaf router.
type Agent struct {
	cfg      Config
	outbound *Sniffer
	inbound  *Sniffer
	kBar     *cusum.EWMA
	det      *cusum.Detector

	reports []Report
	alarm   *Alarm

	// OnAlarm, if set, fires once at the first threshold crossing —
	// the hook where source location (internal/mitigate) is triggered.
	OnAlarm func(a Alarm)
}

// NewAgent builds a SYN-dog agent.
func NewAgent(cfg Config) (*Agent, error) {
	cfg.applyDefaults()
	if cfg.T0 <= 0 {
		return nil, errors.New("core: non-positive observation period")
	}
	if cfg.MinK <= 0 {
		return nil, errors.New("core: non-positive MinK")
	}
	kBar, err := cusum.NewEWMA(cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("core: alpha: %w", err)
	}
	det, err := cusum.New(cfg.Offset, cfg.Threshold)
	if err != nil {
		return nil, fmt.Errorf("core: detector: %w", err)
	}
	return &Agent{
		cfg:      cfg,
		outbound: NewSniffer(netsim.Outbound),
		inbound:  NewSniffer(netsim.Inbound),
		kBar:     kBar,
		det:      det,
	}, nil
}

// Config returns the agent's effective configuration.
func (a *Agent) Config() Config { return a.cfg }

// Observe counts one packet crossing the given interface. SYN-dog only
// inspects the TCP flag bits: outgoing SYNs and incoming SYN/ACKs feed
// the detector; other kinds are tallied for diagnostics.
func (a *Agent) Observe(dir netsim.Direction, kind packet.Kind) {
	switch dir {
	case netsim.Outbound:
		a.outbound.Count(kind)
	case netsim.Inbound:
		a.inbound.Count(kind)
	}
}

// Tap adapts the agent to a netsim router tap.
func (a *Agent) Tap() netsim.Tap {
	return func(_ time.Duration, dir netsim.Direction, seg *packet.Segment) {
		a.Observe(dir, seg.Kind())
	}
}

// Install wires the agent onto a leaf router: it registers the packet
// tap and starts the observation-period timer on sim. The returned
// Periodic can stop the agent's clock.
func (a *Agent) Install(sim *eventsim.Sim, router *netsim.LeafRouter) (*eventsim.Periodic, error) {
	router.AddTap(a.Tap())
	return sim.NewPeriodic(a.cfg.T0, func(now time.Duration) {
		a.EndPeriod(now)
	})
}

// EndPeriod closes the current observation period: both sniffers
// report and reset, the EWMA and CUSUM update, and the period report
// is appended and returned.
func (a *Agent) EndPeriod(now time.Duration) Report {
	out := a.outbound.Drain()
	in := a.inbound.Drain()

	k := a.kBar.Update(float64(in.SYNACK))
	norm := k
	if norm < a.cfg.MinK {
		norm = a.cfg.MinK
	}
	delta := float64(out.SYN) - float64(in.SYNACK)
	x := delta / norm

	if len(a.reports) < a.cfg.WarmupPeriods {
		// Warm-up: prime K̄ only; the detector sees nothing.
		r := Report{
			Index: len(a.reports), End: now,
			OutSYN: out.SYN, InSYNACK: in.SYNACK,
			K: k, X: x,
		}
		a.reports = append(a.reports, r)
		return r
	}
	alarmed := a.det.Observe(x)

	r := Report{
		Index:    len(a.reports),
		End:      now,
		OutSYN:   out.SYN,
		InSYNACK: in.SYNACK,
		K:        k,
		X:        x,
		Y:        a.det.Statistic(),
		Alarmed:  alarmed,
	}
	a.reports = append(a.reports, r)

	if alarmed && a.alarm == nil {
		al := Alarm{Period: r.Index, At: now, Y: r.Y}
		a.alarm = &al
		if a.OnAlarm != nil {
			a.OnAlarm(al)
		}
	}
	return r
}

// LoadPeriod closes one observation period from pre-aggregated counts:
// both sniffers are loaded with the period's per-kind totals and
// EndPeriod runs as usual. Because EndPeriod consumes only the drained
// totals, this is bit-identical to Observing each record individually
// (the ProcessCounts equivalence); the streaming ingest pipeline is
// built on it.
func (a *Agent) LoadPeriod(out, in PeriodCounts, end time.Duration) Report {
	a.outbound.Load(out)
	a.inbound.Load(in)
	return a.EndPeriod(end)
}

// Reports returns all period reports so far. The returned slice is the
// agent's own backing store; callers must not modify it.
func (a *Agent) Reports() []Report { return a.reports }

// Statistics returns the yn series, one value per period — the data
// behind Figures 5, 7, 8 and 9.
func (a *Agent) Statistics() []float64 {
	ys := make([]float64, len(a.reports))
	for i, r := range a.reports {
		ys[i] = r.Y
	}
	return ys
}

// Alarmed reports whether the alarm has been raised.
func (a *Agent) Alarmed() bool { return a.alarm != nil }

// FirstAlarm returns a copy of the first alarm, or nil if none fired.
func (a *Agent) FirstAlarm() *Alarm {
	if a.alarm == nil {
		return nil
	}
	al := *a.alarm
	return &al
}

// KBar returns the current K̄ estimate.
func (a *Agent) KBar() float64 { return a.kBar.Value() }

// Reset clears the detector and the alarm but keeps K̄, modeling an
// operator acknowledging an alarm while the traffic baseline persists.
func (a *Agent) Reset() {
	a.det.Reset()
	a.alarm = nil
}

// Restart returns the agent to its freshly constructed state: sniffer
// counters, K̄, detector and alarm all cleared, accumulated reports
// dropped (only the report buffer's capacity survives). A restarted
// agent behaves identically to one just built by NewAgent with the
// same configuration, so Monte-Carlo sweeps run one agent across many
// cells instead of allocating per cell. Unlike Reset, which models an
// operator acknowledging an alarm mid-run, Restart abandons the run
// entirely.
func (a *Agent) Restart() {
	*a.outbound = Sniffer{dir: netsim.Outbound}
	*a.inbound = Sniffer{dir: netsim.Inbound}
	// Restoring the zero state cannot fail validation.
	_ = a.kBar.Restore(0, false)
	_ = a.det.Restore(0, false, 0, 0)
	a.reports = a.reports[:0]
	a.alarm = nil
}

// Design exposes the agent's parameters as a cusum.Design for the
// closed-form predictions (fmin, detection-time bound).
func (a *Agent) Design() cusum.Design {
	return cusum.Design{
		Offset:      a.cfg.Offset,
		MinIncrease: 2 * a.cfg.Offset, // paper's h = 2a design rule
		Threshold:   a.cfg.Threshold,
	}
}

// ProcessTrace replays a recorded trace through the agent: every
// record is counted, and a period boundary fires each T0. The trailing
// partial period is discarded, mirroring trace.Aggregate. It returns
// the agent's accumulated period reports.
//
// ProcessTrace is resume-aware: an agent restored from a snapshot
// already holds len(Reports()) completed periods, so replay skips that
// many leading periods of the trace — records inside them were counted
// before the snapshot and must not be appended again. A fresh agent
// has zero reports and replays from the start; an agent whose history
// already covers the whole trace returns its reports unchanged.
func (a *Agent) ProcessTrace(tr *trace.Trace) ([]Report, error) {
	if tr.Span <= 0 {
		return nil, errors.New("core: trace has no span")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	periods := int(tr.Span / a.cfg.T0)
	if periods == 0 {
		return nil, fmt.Errorf("core: trace span %v shorter than one period %v", tr.Span, a.cfg.T0)
	}
	done := len(a.reports) // resume offset: periods already reported
	if done >= periods {
		return a.reports, nil
	}
	resumed := a.cfg.T0 * time.Duration(done)
	next := resumed + a.cfg.T0 // end of the current period
	for _, r := range tr.Records {
		if r.Ts < resumed {
			continue // already counted before the snapshot
		}
		for r.Ts >= next && done < periods {
			a.EndPeriod(next)
			next += a.cfg.T0
			done++
		}
		if done >= periods {
			break
		}
		a.Observe(toNetsimDir(r.Dir), r.Kind)
	}
	for done < periods {
		a.EndPeriod(next)
		next += a.cfg.T0
		done++
	}
	return a.reports, nil
}

// ProcessCounts drives the agent directly from per-period counts: for
// each complete period it loads the sniffers with that period's
// outgoing-SYN and incoming-SYN/ACK totals and closes the period. It
// is the counts-level twin of ProcessTrace — for any trace tr,
// ProcessCounts(tr.Aggregate(t0)) produces bit-identical reports to
// ProcessTrace(tr), because EndPeriod consumes only the two totals and
// both paths feed it the same numbers. Detection is non-parametric
// (Eq. 1-4 see only per-period counts), so experiments that never need
// individual records use this path at O(periods) instead of
// O(records).
//
// Like ProcessTrace it is resume-aware: an agent restored from a
// snapshot already holds len(Reports()) completed periods, and replay
// skips that many leading periods of the counts.
func (a *Agent) ProcessCounts(pc *trace.PeriodCounts) ([]Report, error) {
	if pc == nil || pc.Periods() == 0 {
		return nil, errors.New("core: no complete periods in counts")
	}
	if pc.T0 != a.cfg.T0 {
		return nil, fmt.Errorf("core: counts period %v does not match agent period %v", pc.T0, a.cfg.T0)
	}
	if len(pc.InSYNACK) != len(pc.OutSYN) {
		return nil, fmt.Errorf("core: period counts misaligned (%d SYN vs %d SYN/ACK periods)",
			len(pc.OutSYN), len(pc.InSYNACK))
	}
	periods := pc.Periods()
	done := len(a.reports) // resume offset: periods already reported
	if done >= periods {
		return a.reports, nil
	}
	a.reports = slices.Grow(a.reports, periods-done)
	for ; done < periods; done++ {
		out, err := countAsUint(pc.OutSYN[done])
		if err != nil {
			return nil, fmt.Errorf("core: OutSYN[%d]: %w", done, err)
		}
		in, err := countAsUint(pc.InSYNACK[done])
		if err != nil {
			return nil, fmt.Errorf("core: InSYNACK[%d]: %w", done, err)
		}
		a.outbound.Load(PeriodCounts{SYN: out})
		a.inbound.Load(PeriodCounts{SYNACK: in})
		a.EndPeriod(a.cfg.T0 * time.Duration(done+1))
	}
	return a.reports, nil
}

// countAsUint converts an aggregated packet count to the sniffer's
// integer domain. Aggregated counts are tallies, so anything negative,
// fractional, non-finite, or beyond float64's exact-integer range is a
// corrupted input, not a count.
func countAsUint(v float64) (uint64, error) {
	if !(v >= 0) || v != math.Trunc(v) || v > 1<<53 {
		return 0, fmt.Errorf("invalid period count %v", v)
	}
	return uint64(v), nil
}

func toNetsimDir(d trace.Direction) netsim.Direction {
	if d == trace.DirOut {
		return netsim.Outbound
	}
	return netsim.Inbound
}
