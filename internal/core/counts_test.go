package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// TestProcessCountsMatchesProcessTrace pins the fast path's core
// contract on every site profile: aggregating a trace and replaying
// the counts produces exactly the reports a record-level replay does.
func TestProcessCountsMatchesProcessTrace(t *testing.T) {
	for _, p := range trace.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.Span = 10 * time.Minute
			tr, err := trace.Generate(p, 29)
			if err != nil {
				t.Fatal(err)
			}
			ref, _ := NewAgent(Config{})
			want, err := ref.ProcessTrace(tr)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := tr.Aggregate(ref.Config().T0)
			if err != nil {
				t.Fatal(err)
			}
			fast, _ := NewAgent(Config{})
			got, err := fast.ProcessCounts(pc)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d reports, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
				}
			}
			if fast.KBar() != ref.KBar() || fast.Alarmed() != ref.Alarmed() {
				t.Errorf("final state (K=%v alarmed=%v), want (K=%v alarmed=%v)",
					fast.KBar(), fast.Alarmed(), ref.KBar(), ref.Alarmed())
			}
		})
	}
}

// TestLastMileProcessCountsMatchesProcessTrace does the same for the
// victim-side pairing: AggregateLastMile + ProcessCounts equals a
// record-level ProcessTrace replay.
func TestLastMileProcessCountsMatchesProcessTrace(t *testing.T) {
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	bg, err := trace.Generate(p, 31)
	if err != nil {
		t.Fatal(err)
	}
	victim := bg.Flip()

	ref, err := NewLastMileAgent(Config{WarmupPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ProcessTrace(victim)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := victim.AggregateLastMile(DefaultObservationPeriod)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewLastMileAgent(Config{WarmupPeriods: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// truncateCounts returns the first k periods of pc, sharing storage
// (ProcessCounts never mutates its input).
func truncateCounts(pc *trace.PeriodCounts, k int) *trace.PeriodCounts {
	return &trace.PeriodCounts{T0: pc.T0, OutSYN: pc.OutSYN[:k], InSYNACK: pc.InSYNACK[:k]}
}

// TestProcessCountsResumeEquivalence is the property test behind the
// daemon's resume story on the fast path: snapshot after a random
// number of periods, restore, finish from the full counts — the final
// serialized snapshot must be byte-identical to an uninterrupted run's.
func TestProcessCountsResumeEquivalence(t *testing.T) {
	p := trace.UNC()
	p.Span = 10 * time.Minute
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		tr, err := trace.Generate(p, int64(100+trial))
		if err != nil {
			t.Fatal(err)
		}
		pc, err := tr.Aggregate(DefaultObservationPeriod)
		if err != nil {
			t.Fatal(err)
		}

		ref, _ := NewAgent(Config{})
		if _, err := ref.ProcessCounts(pc); err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := ref.WriteSnapshot(&want); err != nil {
			t.Fatal(err)
		}

		k := rng.Intn(pc.Periods() + 1)
		a1, _ := NewAgent(Config{})
		if k > 0 {
			if _, err := a1.ProcessCounts(truncateCounts(pc, k)); err != nil {
				t.Fatal(err)
			}
		}
		a2, err := RestoreAgent(a1.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a2.ProcessCounts(pc); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := a2.WriteSnapshot(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("trial %d (k=%d): resumed snapshot differs from uninterrupted run:\n%s\nvs\n%s",
				trial, k, got.String(), want.String())
		}
	}
}

// TestProcessCountsMixedResume crosses the two paths mid-stream: half
// the trace record by record, snapshot, then the rest from counts.
func TestProcessCountsMixedResume(t *testing.T) {
	p := trace.Auckland()
	p.Span = 8 * time.Minute
	tr, err := trace.Generate(p, 57)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := tr.Aggregate(DefaultObservationPeriod)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := NewAgent(Config{})
	want, err := ref.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}

	half := time.Duration(pc.Periods()/2) * DefaultObservationPeriod
	a1, _ := NewAgent(Config{})
	if _, err := a1.ProcessTrace(truncateTrace(tr, half)); err != nil {
		t.Fatal(err)
	}
	a2, err := RestoreAgent(a1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	got, err := a2.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestProcessCountsFullHistoryIsNoop(t *testing.T) {
	p := trace.Auckland()
	p.Span = 4 * time.Minute
	tr, err := trace.Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := tr.Aggregate(DefaultObservationPeriod)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAgent(Config{})
	first, err := a.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}
	n := len(first)
	again, err := a.ProcessCounts(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != n {
		t.Errorf("second replay grew reports %d -> %d (double count)", n, len(again))
	}
}

func TestProcessCountsValidation(t *testing.T) {
	a, _ := NewAgent(Config{})
	if _, err := a.ProcessCounts(nil); err == nil {
		t.Error("nil counts accepted")
	}
	if _, err := a.ProcessCounts(&trace.PeriodCounts{T0: DefaultObservationPeriod}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := a.ProcessCounts(&trace.PeriodCounts{
		T0: time.Second, OutSYN: []float64{1}, InSYNACK: []float64{1},
	}); err == nil {
		t.Error("mismatched T0 accepted")
	}
	if _, err := a.ProcessCounts(&trace.PeriodCounts{
		T0: DefaultObservationPeriod, OutSYN: []float64{1, 2}, InSYNACK: []float64{1},
	}); err == nil {
		t.Error("misaligned slices accepted")
	}
	for _, bad := range []float64{-1, 0.5, 1 << 60} {
		if _, err := a.ProcessCounts(&trace.PeriodCounts{
			T0: DefaultObservationPeriod, OutSYN: []float64{bad}, InSYNACK: []float64{0},
		}); err == nil {
			t.Errorf("non-count OutSYN %v accepted", bad)
		}
	}
	if len(a.Reports()) != 0 {
		t.Errorf("rejected inputs still appended %d reports", len(a.Reports()))
	}
}

// TestRestartMatchesFresh pins the sweep-pooling contract: an agent
// Restarted after a full (alarming) run is indistinguishable from a
// freshly constructed one — reports, final state and serialized
// snapshot alike.
func TestRestartMatchesFresh(t *testing.T) {
	for _, cfg := range []Config{{}, {WarmupPeriods: 3, Alpha: 0.8}} {
		p := trace.UNC()
		p.Span = 8 * time.Minute
		first, err := trace.Generate(p, 61)
		if err != nil {
			t.Fatal(err)
		}
		firstPC, err := first.Aggregate(DefaultObservationPeriod)
		if err != nil {
			t.Fatal(err)
		}
		// Push the first run into an alarm, so Restart has a latched
		// detector, a primed EWMA and a recorded alarm to clear.
		for i := range firstPC.OutSYN {
			if i >= firstPC.Periods()/2 {
				firstPC.OutSYN[i] += 5000
			}
		}
		second, err := trace.Generate(p, 62)
		if err != nil {
			t.Fatal(err)
		}
		secondPC, err := second.Aggregate(DefaultObservationPeriod)
		if err != nil {
			t.Fatal(err)
		}

		reused, _ := NewAgent(cfg)
		if _, err := reused.ProcessCounts(firstPC); err != nil {
			t.Fatal(err)
		}
		if !reused.Alarmed() {
			t.Fatal("first run did not alarm; Restart not exercised")
		}
		reused.Restart()
		got, err := reused.ProcessCounts(secondPC)
		if err != nil {
			t.Fatal(err)
		}

		fresh, _ := NewAgent(cfg)
		want, err := fresh.ProcessCounts(secondPC)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d reports, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
			}
		}
		var gotSnap, wantSnap bytes.Buffer
		if err := reused.WriteSnapshot(&gotSnap); err != nil {
			t.Fatal(err)
		}
		if err := fresh.WriteSnapshot(&wantSnap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotSnap.Bytes(), wantSnap.Bytes()) {
			t.Errorf("restarted snapshot differs from fresh:\n%s\nvs\n%s", gotSnap.String(), wantSnap.String())
		}
	}
}

// FuzzProcessCountsMatchesProcessTrace hammers the equivalence with
// arbitrary record streams: whatever trace the fuzzer builds, the
// aggregate-then-count path must replay it identically to the
// record-level path, including records landing exactly on period
// boundaries.
func FuzzProcessCountsMatchesProcessTrace(f *testing.F) {
	f.Add(uint8(3), []byte{0x00, 0x21, 0x9f, 0x44, 0xe2})
	f.Add(uint8(1), []byte{0xff, 0xff})
	f.Add(uint8(12), []byte{0x10, 0x30, 0x50, 0x70, 0x90, 0xb0, 0xd0, 0xf0})
	f.Fuzz(func(t *testing.T, nPeriods uint8, data []byte) {
		t0 := time.Second
		span := time.Duration(int(nPeriods%20)+1) * t0
		kinds := [4]packet.Kind{packet.KindSYN, packet.KindSYNACK, packet.KindFIN, packet.KindOther}
		var recs []trace.Record
		ts := time.Duration(0)
		for _, b := range data {
			// Steps are multiples of t0/16, so timestamps regularly land
			// exactly on period boundaries — the sharpest corner of the
			// binning semantics.
			ts += time.Duration(b&0x1f) * (t0 / 16)
			if ts >= span {
				break
			}
			dir := trace.DirOut
			if b&0x80 != 0 {
				dir = trace.DirIn
			}
			recs = append(recs, trace.Record{Ts: ts, Kind: kinds[(b>>5)&3], Dir: dir})
		}
		tr := &trace.Trace{Name: "fuzz", Span: span, Records: recs}

		ref, _ := NewAgent(Config{T0: t0})
		want, err := ref.ProcessTrace(tr)
		if err != nil {
			t.Fatalf("ProcessTrace: %v", err)
		}
		pc, err := tr.Aggregate(t0)
		if err != nil {
			t.Fatalf("Aggregate: %v", err)
		}
		fast, _ := NewAgent(Config{T0: t0})
		got, err := fast.ProcessCounts(pc)
		if err != nil {
			t.Fatalf("ProcessCounts: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d reports, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("report %d = %+v, want %+v", i, got[i], want[i])
			}
		}
		if fast.KBar() != ref.KBar() || fast.Alarmed() != ref.Alarmed() {
			t.Fatalf("final state diverged: (K=%v alarmed=%v) vs (K=%v alarmed=%v)",
				fast.KBar(), fast.Alarmed(), ref.KBar(), ref.Alarmed())
		}
	})
}
