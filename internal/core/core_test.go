package core

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

func TestNewAgentDefaults(t *testing.T) {
	a, err := NewAgent(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	if cfg.T0 != 20*time.Second {
		t.Errorf("T0 = %v, want 20s", cfg.T0)
	}
	if cfg.Alpha != 0.9 || cfg.Offset != 0.35 || cfg.Threshold != 1.05 || cfg.MinK != 1 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(Config{T0: -time.Second}); err == nil {
		t.Error("negative T0 accepted")
	}
	if _, err := NewAgent(Config{Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewAgent(Config{Offset: -1}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewAgent(Config{MinK: -3}); err == nil {
		t.Error("negative MinK accepted")
	}
}

func TestSnifferCountsAndDrain(t *testing.T) {
	s := NewSniffer(netsim.Outbound)
	if s.Direction() != netsim.Outbound {
		t.Error("direction lost")
	}
	kinds := []packet.Kind{
		packet.KindSYN, packet.KindSYN, packet.KindSYNACK,
		packet.KindFIN, packet.KindRST, packet.KindOther,
	}
	for _, k := range kinds {
		s.Count(k)
	}
	pc := s.Drain()
	if pc.SYN != 2 || pc.SYNACK != 1 || pc.FIN != 1 || pc.RST != 1 {
		t.Errorf("counts = %+v", pc)
	}
	if s.TotalSeen() != 6 {
		t.Errorf("TotalSeen = %d, want 6", s.TotalSeen())
	}
	// Drain resets the period counters but not the lifetime total.
	pc2 := s.Drain()
	if pc2 != (PeriodCounts{}) {
		t.Errorf("second drain = %+v, want zeros", pc2)
	}
	if s.TotalSeen() != 6 {
		t.Error("TotalSeen reset by Drain")
	}
}

// feedPeriods drives the agent with per-period (outSYN, inSYNACK)
// pairs and returns the last report.
func feedPeriods(a *Agent, pairs [][2]uint64) Report {
	var last Report
	for i, p := range pairs {
		for j := uint64(0); j < p[0]; j++ {
			a.Observe(netsim.Outbound, packet.KindSYN)
		}
		for j := uint64(0); j < p[1]; j++ {
			a.Observe(netsim.Inbound, packet.KindSYNACK)
		}
		last = a.EndPeriod(time.Duration(i+1) * a.Config().T0)
	}
	return last
}

func TestNormalTrafficKeepsStatisticAtZero(t *testing.T) {
	a, _ := NewAgent(Config{})
	pairs := make([][2]uint64, 50)
	for i := range pairs {
		pairs[i] = [2]uint64{105, 100} // small benign discrepancy
	}
	last := feedPeriods(a, pairs)
	if a.Alarmed() {
		t.Fatal("false alarm on benign traffic")
	}
	if last.Y != 0 {
		t.Errorf("yn = %v, want 0 (X=0.05 < a)", last.Y)
	}
	if math.Abs(a.KBar()-100) > 1e-6 {
		t.Errorf("K̄ = %v, want 100", a.KBar())
	}
}

func TestFloodRaisesAlarmInDesignedTime(t *testing.T) {
	a, _ := NewAgent(Config{})
	// 10 benign periods to prime K̄ at 100.
	benign := make([][2]uint64, 10)
	for i := range benign {
		benign[i] = [2]uint64{100, 100}
	}
	feedPeriods(a, benign)
	if a.Alarmed() {
		t.Fatal("premature alarm")
	}
	// Flood: +70 spoofed SYNs per period (drift h = 0.7 = 2a). The
	// designed detection time is 3 periods... the crossing requires
	// yn > 1.05, reached at the 4th flood period (4*0.35=1.4).
	flood := make([][2]uint64, 6)
	for i := range flood {
		flood[i] = [2]uint64{170, 100}
	}
	feedPeriods(a, flood)
	if !a.Alarmed() {
		t.Fatal("flood not detected")
	}
	al := a.FirstAlarm()
	if al.Period != 13 { // periods 0-9 benign; flood starts at 10; alarm at 10+3
		t.Errorf("alarm period = %d, want 13", al.Period)
	}
	// feedPeriods numbers its timestamps from its own start, so the
	// alarm lands at the 4th flood period's end: 80s into the flood.
	if al.At != 80*time.Second {
		t.Errorf("alarm at %v, want 80s", al.At)
	}
}

func TestOnAlarmFiresExactlyOnce(t *testing.T) {
	a, _ := NewAgent(Config{})
	fired := 0
	a.OnAlarm = func(Alarm) { fired++ }
	flood := make([][2]uint64, 20)
	for i := range flood {
		flood[i] = [2]uint64{200, 100}
	}
	feedPeriods(a, flood)
	if fired != 1 {
		t.Errorf("OnAlarm fired %d times, want 1", fired)
	}
}

func TestKBarUnaffectedByFlood(t *testing.T) {
	// The flood adds outgoing SYNs but no incoming SYN/ACKs, so K̄ must
	// hold its baseline — that is why normalization stays meaningful
	// during the attack.
	a, _ := NewAgent(Config{})
	benign := make([][2]uint64, 20)
	for i := range benign {
		benign[i] = [2]uint64{100, 100}
	}
	feedPeriods(a, benign)
	before := a.KBar()
	flood := make([][2]uint64, 10)
	for i := range flood {
		flood[i] = [2]uint64{5000, 100}
	}
	feedPeriods(a, flood)
	if math.Abs(a.KBar()-before) > 1e-6 {
		t.Errorf("K̄ moved from %v to %v during flood", before, a.KBar())
	}
}

func TestMinKFloorsNormalization(t *testing.T) {
	// On an idle link (zero SYN/ACKs) the normalizer must not divide
	// by zero; with MinK=1, X equals the raw SYN count.
	a, _ := NewAgent(Config{})
	r := feedPeriods(a, [][2]uint64{{5, 0}})
	if r.X != 5 {
		t.Errorf("X = %v, want 5 (Δ/MinK)", r.X)
	}
}

func TestResetClearsAlarmKeepsKBar(t *testing.T) {
	a, _ := NewAgent(Config{})
	flood := make([][2]uint64, 10)
	for i := range flood {
		flood[i] = [2]uint64{300, 100}
	}
	feedPeriods(a, flood)
	if !a.Alarmed() {
		t.Fatal("no alarm to reset")
	}
	k := a.KBar()
	a.Reset()
	if a.Alarmed() || a.FirstAlarm() != nil {
		t.Error("Reset did not clear alarm")
	}
	if a.KBar() != k {
		t.Error("Reset clobbered K̄")
	}
}

func TestStatisticsSeries(t *testing.T) {
	a, _ := NewAgent(Config{})
	feedPeriods(a, [][2]uint64{{100, 100}, {200, 100}, {300, 100}})
	ys := a.Statistics()
	if len(ys) != 3 {
		t.Fatalf("series length = %d, want 3", len(ys))
	}
	if ys[0] != 0 {
		t.Errorf("y0 = %v, want 0", ys[0])
	}
	if ys[1] <= ys[0] || ys[2] <= ys[1] {
		t.Errorf("yn not accumulating under flood: %v", ys)
	}
}

func TestWarmupSuppressesEarlyDecisions(t *testing.T) {
	a, _ := NewAgent(Config{WarmupPeriods: 5})
	// Flood-sized imbalance during warm-up must not alarm.
	for i := 0; i < 5; i++ {
		feedPeriods(a, [][2]uint64{{1000, 10}})
	}
	if a.Alarmed() {
		t.Fatal("alarm during warm-up")
	}
	for _, r := range a.Reports() {
		if r.Y != 0 || r.Alarmed {
			t.Fatalf("warm-up report fed the detector: %+v", r)
		}
	}
	// After warm-up, the same imbalance alarms promptly.
	feedPeriods(a, [][2]uint64{{1000, 10}, {1000, 10}})
	if !a.Alarmed() {
		t.Error("post-warm-up flood not detected")
	}
}

func TestDesignUsesPaperRule(t *testing.T) {
	a, _ := NewAgent(Config{})
	d := a.Design()
	if d.MinIncrease != 0.7 {
		t.Errorf("h = %v, want 2a = 0.7", d.MinIncrease)
	}
	if got := d.DetectionTime(); math.Abs(got-3) > 1e-9 {
		t.Errorf("designed detection time = %v, want 3 periods", got)
	}
}

func TestProcessTraceCountsOnlyRelevantRecords(t *testing.T) {
	inside := netip.MustParseAddr("152.2.0.1")
	outside := netip.MustParseAddr("11.0.0.1")
	mk := func(ts time.Duration, kind packet.Kind, dir trace.Direction) trace.Record {
		return trace.Record{Ts: ts, Kind: kind, Dir: dir, Src: inside, Dst: outside}
	}
	tr := &trace.Trace{Name: "t", Span: time.Minute, Records: []trace.Record{
		mk(time.Second, packet.KindSYN, trace.DirOut),
		mk(2*time.Second, packet.KindSYN, trace.DirOut),
		mk(3*time.Second, packet.KindSYNACK, trace.DirIn),
		mk(4*time.Second, packet.KindSYN, trace.DirIn),     // inbound SYN: not counted
		mk(5*time.Second, packet.KindSYNACK, trace.DirOut), // outbound SYN/ACK: not counted
		mk(25*time.Second, packet.KindSYN, trace.DirOut),
		mk(45*time.Second, packet.KindSYNACK, trace.DirIn),
	}}
	a, _ := NewAgent(Config{})
	reports, err := a.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	if reports[0].OutSYN != 2 || reports[0].InSYNACK != 1 {
		t.Errorf("period 0 = %d/%d, want 2/1", reports[0].OutSYN, reports[0].InSYNACK)
	}
	if reports[1].OutSYN != 1 || reports[1].InSYNACK != 0 {
		t.Errorf("period 1 = %d/%d, want 1/0", reports[1].OutSYN, reports[1].InSYNACK)
	}
	if reports[2].OutSYN != 0 || reports[2].InSYNACK != 1 {
		t.Errorf("period 2 = %d/%d, want 0/1", reports[2].OutSYN, reports[2].InSYNACK)
	}
}

func TestProcessTraceMatchesAggregate(t *testing.T) {
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	tr, err := trace.Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAgent(Config{})
	reports, err := a.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != pc.Periods() {
		t.Fatalf("periods: agent %d vs aggregate %d", len(reports), pc.Periods())
	}
	for i, r := range reports {
		if float64(r.OutSYN) != pc.OutSYN[i] {
			t.Errorf("period %d OutSYN: agent %d vs aggregate %v", i, r.OutSYN, pc.OutSYN[i])
		}
		if float64(r.InSYNACK) != pc.InSYNACK[i] {
			t.Errorf("period %d InSYNACK: agent %d vs aggregate %v", i, r.InSYNACK, pc.InSYNACK[i])
		}
	}
}

func TestProcessTraceValidation(t *testing.T) {
	a, _ := NewAgent(Config{})
	if _, err := a.ProcessTrace(&trace.Trace{}); err == nil {
		t.Error("spanless trace accepted")
	}
	if _, err := a.ProcessTrace(&trace.Trace{Span: time.Second}); err == nil {
		t.Error("too-short trace accepted")
	}
	bad := &trace.Trace{Span: time.Minute, Records: []trace.Record{
		{Ts: 5 * time.Second}, {Ts: time.Second},
	}}
	if _, err := a.ProcessTrace(bad); err == nil {
		t.Error("unsorted trace accepted")
	}
}

func TestNoFalseAlarmOnGeneratedTraces(t *testing.T) {
	// Figure 5's claim: on normal background traffic yn is mostly zero
	// and never approaches N = 1.05, so no false alarms.
	for _, p := range trace.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p.Span = 10 * time.Minute
			tr, err := trace.Generate(p, 23)
			if err != nil {
				t.Fatal(err)
			}
			a, _ := NewAgent(Config{})
			if _, err := a.ProcessTrace(tr); err != nil {
				t.Fatal(err)
			}
			if a.Alarmed() {
				t.Errorf("%s: false alarm on normal traffic", p.Name)
			}
		})
	}
}

func TestInstallOnRouterDetectsSimulatedFlood(t *testing.T) {
	// Full integration: event-driven leaf router, benign hosts priming
	// K̄, then a flooder inside the stub spraying spoofed SYNs.
	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	stub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.1.0.0/24"),
		Hosts:       2,
		HostDelay:   time.Millisecond,
		UplinkDelay: 5 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// External responder stub: answers every SYN with a SYN/ACK.
	ext, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix:      netip.MustParsePrefix("10.9.0.0/24"),
		Hosts:       1,
		HostDelay:   time.Millisecond,
		UplinkDelay: 5 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := ext.Hosts[0]
	server.OnPacket = func(_ time.Duration, s packet.Segment) {
		if s.Kind() == packet.KindSYN {
			server.Send(packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
				1, s.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
		}
	}

	agent, _ := NewAgent(Config{T0: time.Second})
	if _, err := agent.Install(sim, stub.Router); err != nil {
		t.Fatal(err)
	}

	// Benign load: host 0 opens 50 connections/second for 10 s.
	benign := stub.Hosts[0]
	for i := 0; i < 500; i++ {
		i := i
		sim.After(time.Duration(i)*20*time.Millisecond, func(time.Duration) {
			benign.Send(packet.Build(benign.Addr, server.Addr,
				uint16(10000+i%50000), 80, uint32(i), 0, packet.FlagSYN))
		})
	}
	sim.RunUntil(10 * time.Second)
	if agent.Alarmed() {
		t.Fatal("false alarm during benign phase")
	}

	// Flood: host 1 sprays 300 spoofed SYNs/second from t=10s.
	flooder := stub.Hosts[1]
	spoof := netip.MustParseAddr("203.0.113.1")
	for i := 0; i < 3000; i++ {
		i := i
		at := 10*time.Second + time.Duration(i)*time.Second/300
		sim.At(at, func(time.Duration) {
			flooder.Send(packet.Build(spoof, server.Addr,
				uint16(1024+i%60000), 80, uint32(i), 0, packet.FlagSYN))
		})
	}
	sim.RunUntil(25 * time.Second)
	if !agent.Alarmed() {
		t.Fatal("flood not detected by installed agent")
	}
	al := agent.FirstAlarm()
	if al.At < 10*time.Second || al.At > 20*time.Second {
		t.Errorf("alarm at %v, want shortly after flood onset at 10s", al.At)
	}
}

// truncateTrace returns the prefix of tr before span — what an agent
// saw of the trace when it stopped at that point.
func truncateTrace(tr *trace.Trace, span time.Duration) *trace.Trace {
	out := &trace.Trace{Name: tr.Name, Span: span}
	for _, r := range tr.Records {
		if r.Ts < span {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// TestProcessTraceResumeEquivalence pins the resume contract: snapshot
// after k periods, restore, finish the full trace — the report series,
// alarm and K-bar must match a single uninterrupted run exactly.
func TestProcessTraceResumeEquivalence(t *testing.T) {
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	tr, err := trace.Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}

	ref, _ := NewAgent(Config{})
	want, err := ref.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{0, 1, 13, 29, 30} {
		a1, _ := NewAgent(Config{})
		if k > 0 {
			if _, err := a1.ProcessTrace(truncateTrace(tr, time.Duration(k)*20*time.Second)); err != nil {
				t.Fatal(err)
			}
		}
		a2, err := RestoreAgent(a1.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		got, err := a2.ProcessTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d reports, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("k=%d: report %d = %+v, want %+v", k, i, got[i], want[i])
			}
		}
		if a2.KBar() != ref.KBar() {
			t.Errorf("k=%d: K-bar %v, want %v", k, a2.KBar(), ref.KBar())
		}
		if a2.Alarmed() != ref.Alarmed() {
			t.Errorf("k=%d: alarmed %v, want %v", k, a2.Alarmed(), ref.Alarmed())
		}
	}
}

// TestProcessTraceFullHistoryIsNoop: an agent whose history already
// covers the trace must not append anything on a second replay.
func TestProcessTraceFullHistoryIsNoop(t *testing.T) {
	p := trace.Auckland()
	p.Span = 4 * time.Minute
	tr, err := trace.Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewAgent(Config{})
	first, err := a.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := len(first)
	again, err := a.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != n {
		t.Errorf("second replay grew reports %d -> %d (double count)", n, len(again))
	}
}

func TestConfigNormalized(t *testing.T) {
	got := Config{}.Normalized()
	want := Config{
		T0: DefaultObservationPeriod, Alpha: DefaultAlpha,
		Offset: 0.35, Threshold: 1.05, MinK: 1,
	}
	if got != want {
		t.Errorf("Normalized() = %+v, want %+v", got, want)
	}
	// Explicit values survive normalization.
	cfg := Config{T0: 10 * time.Second, Offset: 0.2, Threshold: 0.6}
	if n := cfg.Normalized(); n.T0 != 10*time.Second || n.Offset != 0.2 || n.Threshold != 0.6 {
		t.Errorf("Normalized() clobbered explicit values: %+v", n)
	}
}
