package core

import (
	"net/netip"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

var (
	victimAddr = netip.MustParseAddr("10.9.0.1")
	clientAddr = netip.MustParseAddr("11.0.0.1")
)

// buildVictimTrace synthesizes a 10-minute victim-side trace: balanced
// inbound SYNs / outbound FINs at 2/s for 5 minutes, then an inbound
// SYN flood at 6/s with no closes.
func buildVictimTrace() *trace.Trace {
	tr := &trace.Trace{Name: "victim", Span: 10 * time.Minute}
	add := func(ts time.Duration, kind packet.Kind, dir trace.Direction) {
		src, dst := clientAddr, victimAddr
		if dir == trace.DirOut {
			src, dst = victimAddr, clientAddr
		}
		tr.Records = append(tr.Records, trace.Record{
			Ts: ts, Kind: kind, Dir: dir, Src: src, Dst: dst, SrcPort: 9, DstPort: 80,
		})
	}
	for s := 0; s < 600; s++ {
		ts := time.Duration(s) * time.Second
		for k := 0; k < 2; k++ {
			off := time.Duration(k) * 400 * time.Millisecond
			add(ts+off, packet.KindSYN, trace.DirIn)
			add(ts+off+100*time.Millisecond, packet.KindFIN, trace.DirOut)
		}
		if s >= 300 { // flood onset at 5 minutes
			for k := 0; k < 6; k++ {
				add(ts+time.Duration(k)*150*time.Millisecond, packet.KindSYN, trace.DirIn)
			}
		}
	}
	tr.Sort()
	return tr
}

func shortTrace() *trace.Trace {
	return &trace.Trace{Name: "short", Span: time.Second}
}

// feedVictimPeriods drives the last-mile agent with per-period
// (inboundSYN, outboundFIN) pairs.
func feedVictimPeriods(l *LastMileAgent, pairs [][2]uint64) Report {
	var last Report
	for i, p := range pairs {
		for j := uint64(0); j < p[0]; j++ {
			l.Observe(netsim.Inbound, packet.KindSYN)
		}
		for j := uint64(0); j < p[1]; j++ {
			l.Observe(netsim.Outbound, packet.KindFIN)
		}
		last = l.EndPeriod(time.Duration(i+1) * 20 * time.Second)
	}
	return last
}

func TestLastMileNormalOperationQuiet(t *testing.T) {
	l, err := NewLastMileAgent(Config{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]uint64, 40)
	for i := range pairs {
		pairs[i] = [2]uint64{105, 100} // opens slightly lead closes
	}
	feedVictimPeriods(l, pairs)
	if l.Alarmed() {
		t.Fatal("false alarm on balanced open/close traffic")
	}
	if l.KBar() < 99 || l.KBar() > 101 {
		t.Errorf("K̄ = %v, want ≈100", l.KBar())
	}
}

func TestLastMileDetectsAggregateFlood(t *testing.T) {
	l, _ := NewLastMileAgent(Config{})
	benign := make([][2]uint64, 10)
	for i := range benign {
		benign[i] = [2]uint64{100, 100}
	}
	feedVictimPeriods(l, benign)
	// Aggregate DDoS: +200 inbound SYNs per period never close.
	flood := make([][2]uint64, 5)
	for i := range flood {
		flood[i] = [2]uint64{300, 100}
	}
	feedVictimPeriods(l, flood)
	if !l.Alarmed() {
		t.Fatal("aggregate flood not detected at the last mile")
	}
	al := l.FirstAlarm()
	if al.Period < 10 {
		t.Errorf("alarm period %d precedes the flood", al.Period)
	}
}

func TestLastMileCountsRSTsAsCloses(t *testing.T) {
	// Reset-heavy benign traffic (e.g. crawlers aborting) must not
	// accumulate: RSTs close connections too.
	l, _ := NewLastMileAgent(Config{})
	for i := 0; i < 30; i++ {
		for j := 0; j < 100; j++ {
			l.Observe(netsim.Inbound, packet.KindSYN)
		}
		for j := 0; j < 60; j++ {
			l.Observe(netsim.Outbound, packet.KindFIN)
		}
		for j := 0; j < 40; j++ {
			l.Observe(netsim.Outbound, packet.KindRST)
		}
		l.EndPeriod(time.Duration(i+1) * 20 * time.Second)
	}
	if l.Alarmed() {
		t.Error("RST-closing traffic false-alarmed")
	}
}

func TestLastMileIgnoresIrrelevantKinds(t *testing.T) {
	l, _ := NewLastMileAgent(Config{})
	// Outbound SYNs (victim's own clients) and inbound FINs must not
	// feed the detector's counters.
	for j := 0; j < 500; j++ {
		l.Observe(netsim.Outbound, packet.KindSYN)
		l.Observe(netsim.Inbound, packet.KindFIN)
		l.Observe(netsim.Inbound, packet.KindSYNACK)
	}
	r := l.EndPeriod(20 * time.Second)
	if r.OutSYN != 0 || r.InSYNACK != 0 {
		t.Errorf("irrelevant kinds counted: %+v", r)
	}
}

func TestLastMileProcessTrace(t *testing.T) {
	// A victim-side trace: inbound SYNs at 2/s, outbound FINs at 2/s
	// for 5 minutes, then a flood of inbound SYNs with no FINs.
	tr := buildVictimTrace()
	l, _ := NewLastMileAgent(Config{})
	reports, err := l.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 30 {
		t.Fatalf("periods = %d, want 30", len(reports))
	}
	if !l.Alarmed() {
		t.Fatal("trace-driven last-mile detection failed")
	}
	if al := l.FirstAlarm(); al.Period < 15 {
		t.Errorf("alarm period %d precedes flood onset period 15", al.Period)
	}
}

func TestLastMileProcessTraceValidation(t *testing.T) {
	l, _ := NewLastMileAgent(Config{})
	if _, err := l.ProcessTrace(shortTrace()); err == nil {
		t.Error("too-short trace accepted")
	}
}

func TestLastMileTap(t *testing.T) {
	l, _ := NewLastMileAgent(Config{})
	tap := l.Tap()
	seg := packet.Build(clientAddr, victimAddr, 50000, 80, 1, 0, packet.FlagSYN)
	tap(0, netsim.Inbound, &seg)
	r := l.EndPeriod(20 * time.Second)
	if r.OutSYN != 1 {
		t.Errorf("tap did not count inbound SYN as opening: %+v", r)
	}
}

func TestFlippedFloodFeedsLastMile(t *testing.T) {
	// A source-side flood trace flipped into the victim view must
	// register as inbound SYN openings.
	src := &trace.Trace{Name: "flood", Span: time.Minute}
	for i := 0; i < 300; i++ {
		src.Records = append(src.Records, trace.Record{
			Ts: time.Duration(i) * 200 * time.Millisecond, Kind: packet.KindSYN,
			Dir: trace.DirOut, Src: clientAddr, Dst: victimAddr, DstPort: 80,
		})
	}
	flipped := src.Flip()
	l, _ := NewLastMileAgent(Config{})
	reports, err := l.ProcessTrace(flipped)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].OutSYN == 0 {
		t.Error("flipped flood not counted as openings")
	}
	if !l.Alarmed() {
		t.Error("unanswered flood did not alarm the last mile")
	}
}

// TestLastMileResumeSkipsReportedPeriods mirrors the first-mile resume
// contract: a last-mile agent with k periods of history replays only
// the remainder of the trace.
func TestLastMileResumeSkipsReportedPeriods(t *testing.T) {
	tr := buildVictimTrace()
	ref, _ := NewLastMileAgent(Config{})
	want, err := ref.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}

	const k = 12
	l1, _ := NewLastMileAgent(Config{})
	if _, err := l1.ProcessTrace(truncateTrace(tr, k*20*time.Second)); err != nil {
		t.Fatal(err)
	}
	if got := len(l1.Reports()); got != k {
		t.Fatalf("partial run = %d periods, want %d", got, k)
	}
	got, err := l1.ProcessTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed run = %d periods, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("report %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
