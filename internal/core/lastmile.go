package core

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

// LastMileAgent is the victim-side counterpart of the SYN-dog agent,
// corresponding to the "Last-mile Sniffer" of Figure 6 and the
// companion SYN-FIN detection mechanism: at the router in front of a
// server farm it pairs incoming SYNs (connections opening) against
// outgoing FINs and RSTs (connections closing). Under normal operation
// every connection that opens eventually closes, so the normalized
// difference is small; a flood opens half-connections that never
// close, so the difference accumulates exactly like the source-side
// statistic.
//
// The trade-off the two deployments embody (and the reason the paper
// champions the first mile): the last-mile agent sees the *aggregate*
// flood — high sensitivity, but the sources remain unknown and IP
// traceback is still needed; the first-mile agent sees only its own
// stub's slice V/A, but an alarm *is* the source location. The
// ablation experiment "ablation-lastmile" quantifies this.
//
// Unlike SYN-SYN/ACK pairing (matched within one RTT), a FIN trails
// its SYN by the whole connection lifetime, so {Xn} here is noisier
// at short observation periods; the same non-parametric CUSUM absorbs
// that because only the mean shift matters.
type LastMileAgent struct {
	agent *Agent
}

// NewLastMileAgent builds a victim-side agent with the same parameter
// semantics as NewAgent.
func NewLastMileAgent(cfg Config) (*LastMileAgent, error) {
	a, err := NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	return &LastMileAgent{agent: a}, nil
}

// Observe counts one packet crossing the victim-side router. The
// mapping into the underlying pair detector:
//
//   - inbound SYN       -> "opening" counter
//   - outbound FIN/RST  -> "closing" counter
//
// The inner Agent's outbound sniffer holds openings and its inbound
// sniffer holds closings, so Δn = openings − closings and K̄ tracks
// the closing rate.
func (l *LastMileAgent) Observe(dir netsim.Direction, kind packet.Kind) {
	switch {
	case dir == netsim.Inbound && kind == packet.KindSYN:
		l.agent.outbound.Count(packet.KindSYN)
	case dir == netsim.Outbound && (kind == packet.KindFIN || kind == packet.KindRST):
		// RSTs also terminate connections; counting them prevents
		// reset-heavy benign traffic from looking like a flood.
		l.agent.inbound.Count(packet.KindSYNACK)
	}
}

// Tap adapts the agent to a netsim router tap.
func (l *LastMileAgent) Tap() netsim.Tap {
	return func(_ time.Duration, dir netsim.Direction, seg *packet.Segment) {
		l.Observe(dir, seg.Kind())
	}
}

// EndPeriod closes the observation period; see Agent.EndPeriod.
func (l *LastMileAgent) EndPeriod(now time.Duration) Report {
	return l.agent.EndPeriod(now)
}

// ProcessTrace replays a victim-side trace: the trace's DirIn records
// are packets arriving at the victim stub, DirOut records leaving it.
// Like Agent.ProcessTrace it is resume-aware: periods already present
// in the report history are skipped rather than re-appended.
func (l *LastMileAgent) ProcessTrace(tr *trace.Trace) ([]Report, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	periods := int(tr.Span / l.agent.cfg.T0)
	if periods == 0 {
		return nil, errTraceTooShort(tr.Span, l.agent.cfg.T0)
	}
	done := len(l.agent.reports)
	if done >= periods {
		return l.agent.reports, nil
	}
	resumed := l.agent.cfg.T0 * time.Duration(done)
	next := resumed + l.agent.cfg.T0
	for _, r := range tr.Records {
		if r.Ts < resumed {
			continue
		}
		for r.Ts >= next && done < periods {
			l.EndPeriod(next)
			next += l.agent.cfg.T0
			done++
		}
		if done >= periods {
			break
		}
		l.Observe(toNetsimDir(r.Dir), r.Kind)
	}
	for done < periods {
		l.EndPeriod(next)
		next += l.agent.cfg.T0
		done++
	}
	return l.agent.reports, nil
}

// ProcessCounts drives the agent from victim-side per-period counts as
// produced by trace.AggregateLastMile: OutSYN holds the period's
// connection openings (incoming SYNs) and InSYNACK its closings
// (outgoing FINs/RSTs). The mapping matches Observe, so this is the
// counts-level twin of ProcessTrace, bit-identical and resume-aware
// like Agent.ProcessCounts.
func (l *LastMileAgent) ProcessCounts(pc *trace.PeriodCounts) ([]Report, error) {
	return l.agent.ProcessCounts(pc)
}

// Alarmed reports whether the alarm has been raised.
func (l *LastMileAgent) Alarmed() bool { return l.agent.Alarmed() }

// FirstAlarm returns a copy of the first alarm, or nil.
func (l *LastMileAgent) FirstAlarm() *Alarm { return l.agent.FirstAlarm() }

// Statistics returns the yn series.
func (l *LastMileAgent) Statistics() []float64 { return l.agent.Statistics() }

// Reports returns the period reports.
func (l *LastMileAgent) Reports() []Report { return l.agent.Reports() }

// KBar returns the current closing-rate estimate.
func (l *LastMileAgent) KBar() float64 { return l.agent.KBar() }

func errTraceTooShort(span, t0 time.Duration) error {
	return &traceTooShortError{span: span, t0: t0}
}

// traceTooShortError reports a trace shorter than one observation
// period.
type traceTooShortError struct {
	span, t0 time.Duration
}

func (e *traceTooShortError) Error() string {
	return "core: trace span " + e.span.String() + " shorter than one period " + e.t0.String()
}
