package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// primedAgent builds an agent with history: benign periods then a
// half-accumulated flood.
func primedAgent(t *testing.T) *Agent {
	t.Helper()
	a, err := NewAgent(Config{})
	if err != nil {
		t.Fatal(err)
	}
	benign := make([][2]uint64, 10)
	for i := range benign {
		benign[i] = [2]uint64{100, 100}
	}
	feedPeriods(a, benign)
	// Two flood periods: yn accumulates but has not crossed N yet.
	feedPeriods(a, [][2]uint64{{150, 100}, {150, 100}})
	if a.Alarmed() {
		t.Fatal("setup should stop short of the alarm")
	}
	if a.Reports()[len(a.Reports())-1].Y <= 0 {
		t.Fatal("setup should have accumulated evidence")
	}
	return a
}

func TestSnapshotRoundTripMidAccumulation(t *testing.T) {
	orig := primedAgent(t)
	var buf bytes.Buffer
	if err := orig.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.KBar() != orig.KBar() {
		t.Errorf("K̄ = %v, want %v", restored.KBar(), orig.KBar())
	}
	if len(restored.Reports()) != len(orig.Reports()) {
		t.Errorf("reports = %d, want %d", len(restored.Reports()), len(orig.Reports()))
	}
	// The restored agent must continue accumulating from where the
	// original left off: one more flood period alarms both equally.
	contOrig := feedPeriods(orig, [][2]uint64{{170, 100}, {170, 100}})
	contRest := feedPeriods(restored, [][2]uint64{{170, 100}, {170, 100}})
	if contOrig.Y != contRest.Y {
		t.Errorf("post-restore yn diverged: %v vs %v", contRest.Y, contOrig.Y)
	}
	if orig.Alarmed() != restored.Alarmed() {
		t.Error("alarm outcomes diverged after restore")
	}
}

func TestSnapshotPreservesAlarm(t *testing.T) {
	a, _ := NewAgent(Config{})
	feedPeriods(a, [][2]uint64{{500, 100}, {500, 100}})
	if !a.Alarmed() {
		t.Fatal("setup flood did not alarm")
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Alarmed() {
		t.Error("alarm lost across restore")
	}
	origAl, restAl := a.FirstAlarm(), restored.FirstAlarm()
	if restAl == nil || *restAl != *origAl {
		t.Errorf("alarm detail = %+v, want %+v", restAl, origAl)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	if _, err := RestoreAgent(Snapshot{Version: 99}); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := RestoreAgent(Snapshot{Version: 1, Config: Config{T0: -time.Second}}); err == nil {
		t.Error("bad config accepted")
	}
	if _, err := RestoreAgent(Snapshot{Version: 1, Y: -5}); err == nil {
		t.Error("negative statistic accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	a := primedAgent(t)
	s := a.Snapshot()
	// Mutating the snapshot's report slice must not touch the agent.
	if len(s.Reports) == 0 {
		t.Fatal("no reports in snapshot")
	}
	s.Reports[0].OutSYN = 999999
	if a.Reports()[0].OutSYN == 999999 {
		t.Error("snapshot shares backing store with the agent")
	}
}
