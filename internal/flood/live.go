package flood

import (
	"errors"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// Slave is a compromised host inside one stub network that emits the
// flood on the master's command, mirroring the master/slave structure
// of TFN-style tools (Section 4.2).
type Slave struct {
	host    *netsim.Host
	victim  netip.Addr
	port    uint16
	pattern Pattern
	spoof   netip.Prefix
	rng     *rand.Rand

	sent uint64
}

// NewSlave binds a slave to a simulated host.
func NewSlave(host *netsim.Host, victim netip.Addr, port uint16, pattern Pattern, seed int64) (*Slave, error) {
	if host == nil || !victim.IsValid() || pattern == nil || pattern.Peak() <= 0 {
		return nil, ErrBadConfig
	}
	return &Slave{
		host:    host,
		victim:  victim,
		port:    port,
		pattern: pattern,
		spoof:   DefaultSpoofPrefix,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// SetSpoofPrefix overrides the spoofed-source block.
func (s *Slave) SetSpoofPrefix(p netip.Prefix) { s.spoof = p }

// Sent returns how many flood SYNs this slave has emitted.
func (s *Slave) Sent() uint64 { return s.sent }

// start schedules the slave's emissions on sim from start for duration.
func (s *Slave) start(sim *eventsim.Sim, start, duration time.Duration) {
	times, err := Times(Config{
		Start:       start,
		Duration:    duration,
		Pattern:     s.pattern,
		Victim:      s.victim,
		VictimPort:  s.port,
		SpoofPrefix: s.spoof,
		Seed:        s.rng.Int63(),
	})
	if err != nil {
		// Config was validated in NewSlave; an error here is a bug.
		panic("flood: slave schedule: " + err.Error())
	}
	for _, at := range times {
		seq := s.rng.Uint32()
		sim.At(at, func(time.Duration) {
			s.sent++
			s.host.Send(packet.Build(
				SpoofedAddr(s.spoof, s.rng), s.victim,
				uint16(1024+s.rng.Intn(64000)), s.port,
				seq, 0, packet.FlagSYN))
		})
	}
}

// Master coordinates slaves: one "control message" starts every slave
// simultaneously, as the DDoS tools do.
type Master struct {
	slaves []*Slave
}

// NewMaster returns an empty coordinator.
func NewMaster() *Master { return &Master{} }

// Enlist registers a slave.
func (m *Master) Enlist(s *Slave) { m.slaves = append(m.slaves, s) }

// Slaves returns the number of enlisted slaves.
func (m *Master) Slaves() int { return len(m.slaves) }

// Launch schedules the flood on every slave.
func (m *Master) Launch(sim *eventsim.Sim, start, duration time.Duration) error {
	if len(m.slaves) == 0 {
		return errors.New("flood: master has no slaves")
	}
	if duration <= 0 {
		return ErrBadConfig
	}
	for _, s := range m.slaves {
		s.start(sim, start, duration)
	}
	return nil
}

// TotalSent sums flood SYNs across all slaves.
func (m *Master) TotalSent() uint64 {
	var total uint64
	for _, s := range m.slaves {
		total += s.Sent()
	}
	return total
}
