// Package flood generates SYN flooding traffic: spoofed-source SYN
// streams in trace form (for the paper's trace-driven experiments,
// Figure 6) and live form (scheduled onto simulated hosts for the
// end-to-end examples), plus the DDoS campaign arithmetic of
// Section 4.2.
//
// The paper's detection argument is volume-based: the CUSUM detector
// is insensitive to the flooding pattern, caring only about total
// volume per observation period. To let experiments verify that claim
// the package provides constant, bursty (ON/OFF) and ramp patterns
// behind one Pattern interface.
package flood

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/packet"
	"repro/internal/trace"
)

// Empirical flood-rate landmarks from the paper (Section 3.1, citing
// [8]): the minimum rate that overwhelms an unprotected server, and
// the rate needed against a specialized anti-SYN-flood firewall.
const (
	// MinRateUnprotected is V for an unprotected server, SYN/s.
	MinRateUnprotected = 500
	// MinRateProtected is V for a firewall-protected server, SYN/s.
	MinRateProtected = 14000
)

// Pattern gives the instantaneous flooding rate (SYN/s) at offset t
// from the flood start. Rates must be non-negative and bounded by
// Peak().
type Pattern interface {
	// Rate returns the instantaneous rate at offset t.
	Rate(t time.Duration) float64
	// Peak returns an upper bound of Rate over the flood duration.
	Peak() float64
	// Mean returns the long-run average rate.
	Mean() float64
}

// Constant floods at a fixed rate — the paper's default ("without
// loss of generality, we assume that the flooding rate is constant").
type Constant struct {
	// PerSecond is the flooding rate in SYN/s.
	PerSecond float64
}

// Rate implements Pattern.
func (c Constant) Rate(time.Duration) float64 { return c.PerSecond }

// Peak implements Pattern.
func (c Constant) Peak() float64 { return c.PerSecond }

// Mean implements Pattern.
func (c Constant) Mean() float64 { return c.PerSecond }

// Bursty alternates between PeakRate during On windows and silence
// during Off windows, modeling pulsing DDoS tools.
type Bursty struct {
	PeakRate float64
	On, Off  time.Duration
}

// Rate implements Pattern.
func (b Bursty) Rate(t time.Duration) float64 {
	cycle := b.On + b.Off
	if cycle <= 0 {
		return 0
	}
	if t%cycle < b.On {
		return b.PeakRate
	}
	return 0
}

// Peak implements Pattern.
func (b Bursty) Peak() float64 { return b.PeakRate }

// Mean implements Pattern.
func (b Bursty) Mean() float64 {
	cycle := b.On + b.Off
	if cycle <= 0 {
		return 0
	}
	return b.PeakRate * float64(b.On) / float64(cycle)
}

// Pulsing is the deterministic duty-cycled attack the evasion suite
// studies: exact-grid bursts at PeakRate during each On window,
// silence during Off. It shares Bursty's rate envelope but not its
// arrival process — Bursty Poisson-thins against the peak (a noisy
// flood tool), while Pulsing emits on a precise schedule, which is how
// an attacker exploiting the fmin (Eq. 8) and detection-delay (Eq. 7)
// bounds must behave: the evasion margins are deterministic
// guarantees, not expectations.
type Pulsing struct {
	PeakRate float64
	On, Off  time.Duration
}

// Rate implements Pattern.
func (p Pulsing) Rate(t time.Duration) float64 {
	cycle := p.On + p.Off
	if cycle <= 0 {
		return 0
	}
	if t%cycle < p.On {
		return p.PeakRate
	}
	return 0
}

// Peak implements Pattern.
func (p Pulsing) Peak() float64 { return p.PeakRate }

// Mean implements Pattern.
func (p Pulsing) Mean() float64 {
	cycle := p.On + p.Off
	if cycle <= 0 {
		return 0
	}
	return p.PeakRate * float64(p.On) / float64(cycle)
}

// Ramp grows linearly from StartRate to EndRate over Span, modeling a
// botnet spinning up slaves gradually.
type Ramp struct {
	StartRate, EndRate float64
	Span               time.Duration
}

// Rate implements Pattern.
func (r Ramp) Rate(t time.Duration) float64 {
	if r.Span <= 0 {
		return r.EndRate
	}
	if t < 0 {
		return r.StartRate
	}
	if t >= r.Span {
		return r.EndRate
	}
	frac := float64(t) / float64(r.Span)
	return r.StartRate + (r.EndRate-r.StartRate)*frac
}

// Peak implements Pattern.
func (r Ramp) Peak() float64 { return math.Max(r.StartRate, r.EndRate) }

// Mean implements Pattern.
func (r Ramp) Mean() float64 { return (r.StartRate + r.EndRate) / 2 }

// Config describes one flooding source inside one stub network.
type Config struct {
	// Start is the flood onset relative to trace start.
	Start time.Duration
	// Duration is how long the flood lasts (the paper uses 10 minutes,
	// "a typical attacking duration observed in the Internet" [18]).
	Duration time.Duration
	// Pattern shapes the rate; Constant{fi} reproduces the paper.
	Pattern Pattern
	// Victim is the target address and port.
	Victim     netip.Addr
	VictimPort uint16
	// SpoofPrefix is the block spoofed sources are drawn from. The
	// zero value selects 240.0.0.0/4 (reserved, unreachable — exactly
	// what the paper requires of spoofed sources).
	SpoofPrefix netip.Prefix
	// Seed drives source/port randomness.
	Seed int64
}

// DefaultSpoofPrefix is the reserved class-E block used for spoofed
// sources when Config.SpoofPrefix is unset: addresses from it are
// never reachable, so no RST ever comes back to the victim.
var DefaultSpoofPrefix = netip.MustParsePrefix("240.0.0.0/4")

// ErrBadConfig reports an invalid flood configuration.
var ErrBadConfig = errors.New("flood: invalid config")

func (c *Config) validate() error {
	if c.Duration <= 0 || c.Start < 0 {
		return fmt.Errorf("%w: start %v duration %v", ErrBadConfig, c.Start, c.Duration)
	}
	if c.Pattern == nil || c.Pattern.Peak() <= 0 {
		return fmt.Errorf("%w: missing or zero-rate pattern", ErrBadConfig)
	}
	if !c.Victim.IsValid() {
		return fmt.Errorf("%w: invalid victim", ErrBadConfig)
	}
	if !c.SpoofPrefix.IsValid() {
		c.SpoofPrefix = DefaultSpoofPrefix
	}
	return nil
}

// Times returns the SYN emission times (relative to trace start) for
// the configured flood. A Constant pattern emits on an exact regular
// grid — the cumulative count over any window matches rate*window to
// ±1, which is also how packet-blasting attack tools behave; other
// patterns use Poisson thinning against the peak rate.
func Times(cfg Config) ([]time.Duration, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var out []time.Duration
	switch p := cfg.Pattern.(type) {
	case Constant:
		out = make([]time.Duration, 0, int(p.PerSecond*cfg.Duration.Seconds()))
	case Pulsing:
		out = make([]time.Duration, 0, int(p.Mean()*cfg.Duration.Seconds()))
	}
	visitTimes(cfg, func(t time.Duration) {
		out = append(out, t)
	})
	return out, nil
}

// visitTimes streams the arrival process of a validated config to fn,
// in emission order. Times and CountInto both run on this one
// generator, so counting arrivals is arithmetic-for-arithmetic the
// same process as materializing them.
func visitTimes(cfg Config, fn func(time.Duration)) {
	switch p := cfg.Pattern.(type) {
	case Constant:
		constantVisit(cfg.Start, cfg.Duration, p.PerSecond, fn)
	case Pulsing:
		pulsingVisit(cfg.Start, cfg.Duration, p, fn)
	default:
		thinnedVisit(cfg, fn)
	}
}

func constantVisit(start, duration time.Duration, rate float64, fn func(time.Duration)) {
	gap := time.Duration(float64(time.Second) / rate)
	for t := start; t < start+duration; t += gap {
		fn(t)
	}
}

// pulsingVisit emits an exact constant grid inside each On window.
// The burst that straddles the flood end is truncated, never extended,
// so every arrival stays inside [start, start+duration).
func pulsingVisit(start, duration time.Duration, p Pulsing, fn func(time.Duration)) {
	cycle := p.On + p.Off
	if cycle <= 0 || p.On <= 0 {
		return
	}
	end := start + duration
	for cs := start; cs < end; cs += cycle {
		on := p.On
		if cs+on > end {
			on = end - cs
		}
		constantVisit(cs, on, p.PeakRate, fn)
	}
}

func thinnedVisit(cfg Config, fn func(time.Duration)) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	peak := cfg.Pattern.Peak()
	t := cfg.Start
	for {
		gap := rng.ExpFloat64() / peak
		t += time.Duration(gap * float64(time.Second))
		if t >= cfg.Start+cfg.Duration {
			return
		}
		if rng.Float64()*peak <= cfg.Pattern.Rate(t-cfg.Start) {
			fn(t)
		}
	}
}

// CountPerPeriod bins the flood's SYN arrival process into per-period
// counts: out[i] is the number of flood SYNs emitted during period i,
// for periods of length t0 starting at trace time zero. It draws the
// exact same arrival times as GenerateTrace (Times with the same
// config, including the thinning RNG for non-constant patterns) but
// never materializes records or spoofed addresses, so a counts-level
// experiment pays O(flood events) here instead of O(records log
// records) for generate+merge+sort. Arrivals beyond the last complete
// period are dropped, exactly as a replay clipped to the background
// span never counts them.
func CountPerPeriod(cfg Config, t0 time.Duration, periods int) ([]float64, error) {
	if periods < 0 {
		return nil, fmt.Errorf("%w: negative period count %d", ErrBadConfig, periods)
	}
	out := make([]float64, periods)
	if err := CountInto(cfg, t0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CountInto accumulates the flood's per-period SYN arrivals into out:
// out[i] gains one per arrival during period i, on top of whatever out
// already holds. It is CountPerPeriod for callers that reuse a
// counting buffer — a sweep worker copies the shared background counts
// into its scratch overlay and bins the flood straight into it,
// leaving no allocation in the per-cell loop. Arrivals beyond len(out)
// periods are dropped, exactly as in CountPerPeriod.
func CountInto(cfg Config, t0 time.Duration, out []float64) error {
	if t0 <= 0 {
		return fmt.Errorf("%w: non-positive observation period %v", ErrBadConfig, t0)
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	visitTimes(cfg, func(ts time.Duration) {
		if idx := int(ts / t0); idx >= 0 && idx < len(out) {
			out[idx]++
		}
	})
	return nil
}

// GenerateTrace renders the flood as outbound SYN records, ready to be
// merged into background traffic with trace.Merge (Figure 6's
// "flooding traffic" input). The spoofed sources never answer, so no
// SYN/ACKs accompany them.
func GenerateTrace(cfg Config) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil { // also defaults SpoofPrefix
		return nil, err
	}
	times, err := Times(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tr := &trace.Trace{
		Name: fmt.Sprintf("flood-%s", patternName(cfg.Pattern)),
		Span: cfg.Start + cfg.Duration,
	}
	tr.Records = make([]trace.Record, 0, len(times))
	for _, ts := range times {
		tr.Records = append(tr.Records, trace.Record{
			Ts:      ts,
			Kind:    packet.KindSYN,
			Dir:     trace.DirOut,
			Src:     SpoofedAddr(cfg.SpoofPrefix, rng),
			Dst:     cfg.Victim,
			SrcPort: uint16(1024 + rng.Intn(64000)),
			DstPort: cfg.VictimPort,
		})
	}
	return tr, nil
}

func patternName(p Pattern) string {
	switch p.(type) {
	case Constant:
		return "constant"
	case Bursty:
		return "bursty"
	case Pulsing:
		return "pulsing"
	case Ramp:
		return "ramp"
	default:
		return "custom"
	}
}

// SpoofedAddr samples a random address inside prefix. Sources are
// randomized per packet, as the DDoS tools of Section 4.2 do.
func SpoofedAddr(prefix netip.Prefix, rng *rand.Rand) netip.Addr {
	base := prefix.Masked().Addr().As4()
	hostBits := 32 - prefix.Bits()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	if hostBits > 0 {
		span := uint64(1) << hostBits
		v += uint32(rng.Uint64() % span)
	}
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Campaign is the distributed-attack arithmetic of Section 4.2: a
// total rate V split evenly across A stub networks, one flooding
// source per stub, so each SYN-dog sees only fi = V/A.
type Campaign struct {
	// TotalRate is V, the aggregate SYN/s needed at the victim.
	TotalRate float64
	// Stubs is A, the number of stub networks hosting one source each.
	Stubs int
}

// PerStubRate returns fi = V/A, the rate visible to each outbound
// sniffer.
func (c Campaign) PerStubRate() (float64, error) {
	if c.Stubs < 1 || c.TotalRate <= 0 {
		return 0, ErrBadConfig
	}
	return c.TotalRate / float64(c.Stubs), nil
}

// MaxHiddenStubs answers the paper's discussion question (4.2.3): how
// many stubs can the attacker spread across before each per-stub rate
// drops below the detection floor fmin? A = floor(V / fmin).
func (c Campaign) MaxHiddenStubs(fmin float64) (int, error) {
	if fmin <= 0 || c.TotalRate <= 0 {
		return 0, ErrBadConfig
	}
	return int(c.TotalRate / fmin), nil
}
