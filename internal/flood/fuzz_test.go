package flood

import (
	"testing"
	"time"
)

// FuzzPulsingCountsMatchRecords fuzzes the cross-path equivalence for
// the Pulsing pattern: binning the arrival process with CountPerPeriod
// must equal rendering records with GenerateTrace and aggregating
// them, for arbitrary duty cycles, rates, offsets and period lengths —
// including degenerate cycles, bursts straddling period boundaries and
// arrivals dropped past the last complete period.
func FuzzPulsingCountsMatchRecords(f *testing.F) {
	f.Add(uint16(90), uint8(3), uint8(7), uint16(60), uint16(600), uint8(20), int64(1))
	f.Add(uint16(7), uint8(1), uint8(0), uint16(0), uint16(90), uint8(5), int64(42))
	f.Add(uint16(250), uint8(19), uint8(1), uint16(13), uint16(301), uint8(17), int64(-9))
	f.Fuzz(func(t *testing.T, rateRaw uint16, onRaw, offRaw uint8, startRaw, durRaw uint16, t0Raw uint8, seed int64) {
		pat := Pulsing{
			PeakRate: 1 + float64(rateRaw%400),
			On:       time.Duration(onRaw%30) * time.Second,
			Off:      time.Duration(offRaw%30) * time.Second,
		}
		cfg := Config{
			Start:      time.Duration(startRaw%120) * time.Second,
			Duration:   time.Duration(1+durRaw%900) * time.Second,
			Pattern:    pat,
			Victim:     victim,
			VictimPort: 80,
			Seed:       seed,
		}
		t0 := time.Duration(1+t0Raw%40) * time.Second
		// Fewer periods than the flood spans, so both paths must drop
		// the same tail.
		periods := int((cfg.Start + cfg.Duration) / t0 / 2)
		got, err := CountPerPeriod(cfg, t0, periods)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := GenerateTrace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, periods)
		for _, r := range tr.Records {
			if idx := int(r.Ts / t0); idx < periods {
				want[idx]++
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("period %d: counts path %v, record path %v", i, got[i], want[i])
			}
		}
	})
}
