package flood

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eventsim"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/trace"
)

var victim = netip.MustParseAddr("10.9.0.1")

func baseConfig(p Pattern) Config {
	return Config{
		Start:      time.Minute,
		Duration:   10 * time.Minute,
		Pattern:    p,
		Victim:     victim,
		VictimPort: 80,
		Seed:       1,
	}
}

func TestPatternRates(t *testing.T) {
	c := Constant{PerSecond: 45}
	if c.Rate(0) != 45 || c.Peak() != 45 || c.Mean() != 45 {
		t.Error("constant pattern wrong")
	}

	b := Bursty{PeakRate: 100, On: time.Second, Off: 3 * time.Second}
	if b.Rate(500*time.Millisecond) != 100 {
		t.Error("bursty ON window wrong")
	}
	if b.Rate(2*time.Second) != 0 {
		t.Error("bursty OFF window wrong")
	}
	if b.Peak() != 100 || math.Abs(b.Mean()-25) > 1e-9 {
		t.Errorf("bursty peak/mean = %v/%v, want 100/25", b.Peak(), b.Mean())
	}
	if (Bursty{PeakRate: 100}).Rate(0) != 0 {
		t.Error("degenerate bursty cycle should be silent")
	}

	p := Pulsing{PeakRate: 100, On: time.Second, Off: 3 * time.Second}
	if p.Rate(500*time.Millisecond) != 100 || p.Rate(2*time.Second) != 0 {
		t.Error("pulsing duty cycle wrong")
	}
	if p.Peak() != 100 || math.Abs(p.Mean()-25) > 1e-9 {
		t.Errorf("pulsing peak/mean = %v/%v, want 100/25", p.Peak(), p.Mean())
	}
	if (Pulsing{PeakRate: 100}).Rate(0) != 0 || (Pulsing{PeakRate: 100}).Mean() != 0 {
		t.Error("degenerate pulsing cycle should be silent")
	}

	r := Ramp{StartRate: 0, EndRate: 100, Span: 10 * time.Second}
	if r.Rate(0) != 0 || r.Rate(5*time.Second) != 50 || r.Rate(20*time.Second) != 100 {
		t.Error("ramp interpolation wrong")
	}
	if r.Rate(-time.Second) != 0 {
		t.Error("ramp before start should hold StartRate")
	}
	if r.Peak() != 100 || r.Mean() != 50 {
		t.Errorf("ramp peak/mean = %v/%v", r.Peak(), r.Mean())
	}
	if (Ramp{StartRate: 1, EndRate: 9}).Rate(time.Second) != 9 {
		t.Error("zero-span ramp should return EndRate")
	}
}

func TestConstantTimesExactPerPeriodCounts(t *testing.T) {
	cfg := baseConfig(Constant{PerSecond: 45})
	times, err := Times(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(45 * cfg.Duration.Seconds())
	if math.Abs(float64(len(times)-want)) > 1 {
		t.Errorf("emitted %d SYNs, want ~%d", len(times), want)
	}
	// Per-20s window counts must be 900 ± 1.
	counts := map[int]int{}
	for _, ts := range times {
		if ts < cfg.Start || ts >= cfg.Start+cfg.Duration {
			t.Fatalf("emission %v outside flood window", ts)
		}
		counts[int((ts-cfg.Start)/(20*time.Second))]++
	}
	for w, c := range counts {
		if c < 899 || c > 901 {
			t.Errorf("window %d count = %d, want 900±1", w, c)
		}
	}
}

func TestBurstyTimesMatchDutyCycle(t *testing.T) {
	cfg := baseConfig(Bursty{PeakRate: 100, On: 2 * time.Second, Off: 2 * time.Second})
	times, err := Times(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 * cfg.Duration.Seconds() // mean rate 50/s
	got := float64(len(times))
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("bursty emitted %v, want ~%v", got, want)
	}
	// No emissions during OFF windows.
	for _, ts := range times {
		off := (ts - cfg.Start) % (4 * time.Second)
		if off >= 2*time.Second {
			t.Fatalf("emission at %v lies in an OFF window", ts)
		}
	}
}

// TestPulsingTimesDeterministicGrid pins the property the evasion
// suite leans on: Pulsing is an exact schedule, not a thinned draw —
// emissions land only inside On windows, every burst carries the same
// count, and the seed plays no part in the arrival times.
func TestPulsingTimesDeterministicGrid(t *testing.T) {
	pat := Pulsing{PeakRate: 50, On: 2 * time.Second, Off: 6 * time.Second}
	cfg := baseConfig(pat)
	times, err := Times(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cycle := pat.On + pat.Off
	perBurst := map[int]int{}
	for _, ts := range times {
		off := (ts - cfg.Start) % cycle
		if off >= pat.On {
			t.Fatalf("emission at %v lies in an Off window", ts)
		}
		perBurst[int((ts-cfg.Start)/cycle)]++
	}
	bursts := int(cfg.Duration / cycle)
	if len(perBurst) != bursts {
		t.Fatalf("%d bursts, want %d", len(perBurst), bursts)
	}
	want := int(pat.PeakRate * pat.On.Seconds())
	for b, n := range perBurst {
		if n != want {
			t.Errorf("burst %d emitted %d, want exactly %d", b, n, want)
		}
	}
	cfg.Seed = cfg.Seed + 999
	again, err := Times(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(times) {
		t.Fatalf("seed changed arrival count: %d vs %d", len(again), len(times))
	}
	for i := range times {
		if times[i] != again[i] {
			t.Fatalf("seed changed arrival %d: %v vs %v", i, times[i], again[i])
		}
	}
}

func TestRampTimesGrow(t *testing.T) {
	cfg := baseConfig(Ramp{StartRate: 10, EndRate: 100, Span: 10 * time.Minute})
	times, err := Times(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := cfg.Start + cfg.Duration/2
	var first, second int
	for _, ts := range times {
		if ts < mid {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Errorf("ramp second half (%d) not busier than first (%d)", second, first)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{},
		{Duration: time.Minute, Victim: victim}, // no pattern
		{Duration: time.Minute, Pattern: Constant{}, Victim: victim},                        // zero rate
		{Duration: -1, Pattern: Constant{PerSecond: 5}, Victim: victim},                     // bad duration
		{Start: -1, Duration: time.Minute, Pattern: Constant{PerSecond: 5}, Victim: victim}, // bad start
		{Duration: time.Minute, Pattern: Constant{PerSecond: 5}},                            // no victim
	}
	for i, cfg := range cases {
		if _, err := Times(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateTraceRecords(t *testing.T) {
	cfg := baseConfig(Constant{PerSecond: 5})
	cfg.Duration = time.Minute
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "flood-constant" {
		t.Errorf("name = %q", tr.Name)
	}
	if tr.Span != cfg.Start+cfg.Duration {
		t.Errorf("span = %v", tr.Span)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 300 {
		t.Errorf("records = %d, want 300", len(tr.Records))
	}
	for _, r := range tr.Records {
		if r.Kind != packet.KindSYN || r.Dir != trace.DirOut {
			t.Fatalf("bad record %+v", r)
		}
		if r.Dst != victim || r.DstPort != 80 {
			t.Fatalf("wrong victim in %+v", r)
		}
		if !DefaultSpoofPrefix.Contains(r.Src) {
			t.Fatalf("source %v outside spoof prefix", r.Src)
		}
	}
}

func TestGenerateTraceMergesWithBackground(t *testing.T) {
	p := trace.Auckland()
	p.Span = 5 * time.Minute
	bg, err := trace.Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(Constant{PerSecond: 10})
	cfg.Duration = 2 * time.Minute
	fl, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := trace.Merge("auckland+flood", bg, fl)
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mixed.Records) != len(bg.Records)+len(fl.Records) {
		t.Error("merge lost records")
	}
}

func TestSpoofedAddrStaysInPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prefix := netip.MustParsePrefix("198.18.0.0/15")
	for i := 0; i < 1000; i++ {
		a := SpoofedAddr(prefix, rng)
		if !prefix.Contains(a) {
			t.Fatalf("spoofed %v escaped %v", a, prefix)
		}
	}
	// /32 prefix always yields the same address.
	one := netip.MustParsePrefix("192.0.2.1/32")
	if got := SpoofedAddr(one, rng); got != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("/32 spoof = %v", got)
	}
}

func TestCampaignArithmetic(t *testing.T) {
	c := Campaign{TotalRate: MinRateProtected, Stubs: 378}
	fi, err := c.PerStubRate()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: V=14000 across 378 UNC-like stubs gives fi ≈ 37 — right
	// at the UNC detection floor.
	if math.Abs(fi-37.037) > 0.01 {
		t.Errorf("fi = %v, want ≈37", fi)
	}
	// Paper: with fmin = 1.75 (Auckland), A can reach 8000.
	hidden, err := c.MaxHiddenStubs(1.75)
	if err != nil {
		t.Fatal(err)
	}
	if hidden != 8000 {
		t.Errorf("MaxHiddenStubs = %d, want 8000", hidden)
	}
	// UNC floor 37: A ≈ 378.
	hidden, _ = c.MaxHiddenStubs(37)
	if hidden != 378 {
		t.Errorf("MaxHiddenStubs(37) = %d, want 378", hidden)
	}
	if _, err := (Campaign{}).PerStubRate(); err == nil {
		t.Error("empty campaign accepted")
	}
	if _, err := c.MaxHiddenStubs(0); err == nil {
		t.Error("zero fmin accepted")
	}
}

func TestSlaveValidation(t *testing.T) {
	host := netsim.NewHost(netip.MustParseAddr("10.1.0.1"))
	if _, err := NewSlave(nil, victim, 80, Constant{PerSecond: 5}, 1); err == nil {
		t.Error("nil host accepted")
	}
	if _, err := NewSlave(host, netip.Addr{}, 80, Constant{PerSecond: 5}, 1); err == nil {
		t.Error("invalid victim accepted")
	}
	if _, err := NewSlave(host, victim, 80, nil, 1); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := NewSlave(host, victim, 80, Constant{}, 1); err == nil {
		t.Error("zero-rate pattern accepted")
	}
}

func TestMasterLaunchesSlaves(t *testing.T) {
	sim := eventsim.New()
	cloud := netsim.NewInternet(sim)
	stub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.1.0.0/24"),
		Hosts:  2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	victimStub, err := netsim.BuildStub(sim, cloud, netsim.StubConfig{
		Prefix: netip.MustParsePrefix("10.9.0.0/24"),
		Hosts:  1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	received := 0
	victimHost := victimStub.Hosts[0]
	victimHost.OnPacket = func(_ time.Duration, s packet.Segment) {
		if s.Kind() == packet.KindSYN {
			received++
		}
	}

	m := NewMaster()
	for i, h := range stub.Hosts {
		sl, err := NewSlave(h, victimHost.Addr, 80, Constant{PerSecond: 50}, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		m.Enlist(sl)
	}
	if m.Slaves() != 2 {
		t.Fatalf("slaves = %d", m.Slaves())
	}
	if err := m.Launch(sim, time.Second, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// 2 slaves * 50/s * 10s = 1000.
	if m.TotalSent() != 1000 {
		t.Errorf("TotalSent = %d, want 1000", m.TotalSent())
	}
	if received != 1000 {
		t.Errorf("victim received %d, want 1000", received)
	}
}

func TestMasterLaunchValidation(t *testing.T) {
	sim := eventsim.New()
	m := NewMaster()
	if err := m.Launch(sim, 0, time.Minute); err == nil {
		t.Error("empty master launched")
	}
	host := netsim.NewHost(netip.MustParseAddr("10.1.0.1"))
	sl, _ := NewSlave(host, victim, 80, Constant{PerSecond: 1}, 1)
	m.Enlist(sl)
	if err := m.Launch(sim, 0, -time.Minute); err == nil {
		t.Error("negative duration launched")
	}
}

// Property: equal-volume patterns emit approximately equal counts —
// the precondition for the paper's pattern-insensitivity claim.
func TestEqualVolumePatternsProperty(t *testing.T) {
	f := func(rateRaw uint8, seed int64) bool {
		rate := 10 + float64(rateRaw%100)
		duration := 4 * time.Minute
		mk := func(p Pattern) int {
			cfg := Config{
				Start: 0, Duration: duration, Pattern: p,
				Victim: victim, VictimPort: 80, Seed: seed,
			}
			times, err := Times(cfg)
			if err != nil {
				return -1
			}
			return len(times)
		}
		constant := mk(Constant{PerSecond: rate})
		bursty := mk(Bursty{PeakRate: 2 * rate, On: time.Second, Off: time.Second})
		if constant < 0 || bursty < 0 {
			return false
		}
		ratio := float64(bursty) / float64(constant)
		return ratio > 0.8 && ratio < 1.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCountPerPeriodMatchesGenerateTrace pins the counts fast path at
// the flood layer: binning the arrival process directly must equal
// rendering records with GenerateTrace and aggregating them, for every
// pattern, including arrivals dropped past the last complete period.
func TestCountPerPeriodMatchesGenerateTrace(t *testing.T) {
	t0 := 20 * time.Second
	patterns := map[string]Pattern{
		"constant": Constant{PerSecond: 45},
		"bursty":   Bursty{PeakRate: 100, On: 2 * time.Second, Off: 2 * time.Second},
		"pulsing":  Pulsing{PeakRate: 90, On: 3 * time.Second, Off: 7 * time.Second},
		"ramp":     Ramp{StartRate: 0, EndRate: 80, Span: 5 * time.Minute},
	}
	for name, p := range patterns {
		p := p
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(p)
			// Fewer periods than the flood covers, so the tail is dropped
			// on both paths.
			periods := int((cfg.Start + cfg.Duration) / t0 / 2)
			got, err := CountPerPeriod(cfg, t0, periods)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := GenerateTrace(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr.Span = time.Duration(periods) * t0
			want := make([]float64, periods)
			for _, r := range tr.Records {
				if idx := int(r.Ts / t0); idx < periods {
					want[idx]++
				}
			}
			if len(got) != periods {
				t.Fatalf("%d periods, want %d", len(got), periods)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("period %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCountPerPeriodValidation(t *testing.T) {
	cfg := baseConfig(Constant{PerSecond: 5})
	if _, err := CountPerPeriod(cfg, 0, 10); err == nil {
		t.Error("zero t0 accepted")
	}
	if _, err := CountPerPeriod(cfg, 20*time.Second, -1); err == nil {
		t.Error("negative periods accepted")
	}
	out, err := CountPerPeriod(cfg, 20*time.Second, 0)
	if err != nil || len(out) != 0 {
		t.Errorf("zero periods: got %v, %v; want empty, nil", out, err)
	}
	if _, err := CountPerPeriod(Config{}, 20*time.Second, 5); err == nil {
		t.Error("invalid flood config accepted")
	}
}

// TestCountIntoAccumulates pins the overlay contract: CountInto adds
// the binned arrivals on top of whatever the buffer holds, identically
// to CountPerPeriod plus an elementwise sum.
func TestCountIntoAccumulates(t *testing.T) {
	cfg := baseConfig(Constant{PerSecond: 7})
	const t0, periods = 20 * time.Second, 12
	sep, err := CountPerPeriod(cfg, t0, periods)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, periods)
	want := make([]float64, periods)
	for i := range base {
		base[i] = float64(100 + i)
		want[i] = base[i] + sep[i]
	}
	if err := CountInto(cfg, t0, base); err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != want[i] {
			t.Errorf("period %d = %v, want %v", i, base[i], want[i])
		}
	}
	if err := CountInto(cfg, 0, base); err == nil {
		t.Error("zero t0 accepted")
	}
	if err := CountInto(Config{}, t0, base); err == nil {
		t.Error("invalid flood config accepted")
	}
}
