// Package daemon is the hardened operational core shared by the
// long-lived SYN-dog binaries (cmd/syndogd, cmd/syndogfleet): capture
// replay through an ingest pipeline — instant or paced against
// absolute wall-clock deadlines — live HTTP state, and durable
// snapshot / checkpoint handling.
//
// The package exists to make the resume/replay path provably
// equivalent to a single uninterrupted run, which is what the CUSUM
// change-point literature assumes of a continuously-running statistic:
//
//   - Replay is resume-aware: a detector restored from a snapshot with
//     N completed periods skips the first N periods of the capture
//     instead of re-appending them.
//   - Pacing derives every period boundary from one start instant, so
//     scheduler latency inside a period does not accumulate into the
//     next (no chained time.After drift).
//   - Replay failures are daemon state, surfaced via /status and
//     /healthz (503) and returned from Serve so the process exits
//     non-zero — never discarded.
//   - Snapshots are durable (fsync before rename, directory fsync) and
//     can be written periodically on a checkpoint interval, so a crash
//     loses at most one interval of evidence.
//
// Replay runs on the ingest pipeline: any ingest.Source (in-memory
// trace, streaming binary/CSV/pcap/iptrace file) feeds any
// ingest.Detector (the paper's CUSUM agent or a baseline) through an
// ingest.Aggregator, so a daemon over a multi-gigabyte pcap holds one
// record and four counters in memory, never the capture.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Options configures a Daemon beyond its detector and source.
type Options struct {
	// Name prefixes log lines (default "daemon"; cmd/syndogd passes
	// its own name so operator-facing output is unchanged).
	Name string
	// Log receives the startup banner and checkpoint notices (default
	// os.Stderr; tests redirect it).
	Log io.Writer
	// StatePath, when non-empty, is where Checkpoint and SaveState
	// persist the agent snapshot.
	StatePath string
	// CheckpointInterval enables periodic snapshots during Serve when
	// positive and StatePath is set. Zero disables checkpointing; the
	// final snapshot on shutdown is written regardless.
	CheckpointInterval time.Duration
	// Tracker, when non-nil, is the per-source attribution engine:
	// replay taps every counted record into it, /sources and the
	// keyed /metrics gauges expose it, and SaveState persists its
	// keyed snapshot alongside the agent's. Its period clock must
	// match the detector's resume offset (NewStream validates).
	Tracker *sourcetrack.Tracker
	// Monitor names this daemon in its exported summaries — the
	// identity a fusion coordinator sees (default Name). The
	// supervisor passes each agent's spec name.
	Monitor string
	// Summary shapes the exported form of the summary stream: the
	// censoring threshold λ and the top-K digest budget. It applies to
	// /summaries and the uplink; the locally-stored summaries (and so
	// /reports, /status, /metrics) always keep full fidelity.
	Summary summary.Config
	// Uplink, when non-nil, receives every closed period's summary —
	// the push half of distributed fusion. The uplink is shared
	// process-wide and never owned by the daemon; callers close it.
	Uplink *summary.Uplink
}

func (o *Options) applyDefaults() {
	if o.Name == "" {
		o.Name = "daemon"
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}
	if o.Monitor == "" {
		o.Monitor = o.Name
	}
}

// Daemon owns an ingest pipeline replaying one capture behind a mutex:
// the replay goroutine writes, HTTP handlers and checkpoints read.
type Daemon struct {
	opts Options

	mu    sync.Mutex
	det   ingest.Detector
	agent *core.Agent // non-nil only for the CUSUM detector; snapshots need it
	src   ingest.Source

	srcName    string
	srcRecords int // record count when known up front, -1 for pure streams
	t0         time.Duration
	span       time.Duration

	resumeOffset int  // periods already in the detector when the daemon started
	totalPeriods int  // complete periods the capture spans; 0 for live sources
	live         bool // live source: unbounded span, data-driven period closes
	records      int  // records replayed so far (this run)
	skipped      int  // records skipped: their period predates the resume point
	done         bool
	replayErr    error

	// summaries is the per-period summary store — the single code path
	// every per-period consumer (/reports, /status, /metrics,
	// /summaries, the uplink) reads. Resumed history is backfilled at
	// construction (digest-free: per-period tracker views no longer
	// exist); live periods append through the summarizer tap.
	summarizer *summary.Summarizer
	summaries  []summary.PeriodSummary

	periodLatency     latencyHist // agg.ClosePeriod wall time per period
	checkpointLatency latencyHist // SaveState wall time per checkpoint attempt

	checkpoints        int
	lastCheckpoint     time.Time
	checkpointFailures int
	lastCheckpointErr  error
}

// New validates the trace once at the door and builds a daemon around
// agent. If the agent was resumed from a snapshot, its existing report
// history becomes the resume offset: replay will skip that many
// leading periods. New fails on an invalid or too-short trace, or when
// the agent's history claims more periods than the trace holds (the
// snapshot cannot have come from this trace/config pairing).
//
// New is the materialized-trace convenience over NewStream: the trace
// becomes an ingest.TraceSource and the agent an ingest.AgentDetector.
func New(agent *core.Agent, tr *trace.Trace, opts Options) (*Daemon, error) {
	if tr.Span <= 0 {
		return nil, fmt.Errorf("daemon: trace %q has no span", tr.Name)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: trace %q: %w", tr.Name, err)
	}
	return NewStream(ingest.WrapAgent(agent), ingest.NewTraceSource(tr),
		ingest.Info{Name: tr.Name, Span: tr.Span, Records: len(tr.Records)},
		agent.Config().T0, opts)
}

// NewStream builds a daemon that replays src through det — the fully
// streaming constructor. info must carry the capture span (prescan a
// pcap with ingest.PcapInfo first); info.Records may be -1 when the
// count is unknown up front. t0 is the observation period — detectors
// other than the CUSUM agent carry no period of their own.
//
// Unlike New, the source's records are validated as they stream:
// unordered or out-of-span records fail the replay (surfacing via
// /healthz and Serve's error) rather than failing construction.
func NewStream(det ingest.Detector, src ingest.Source, info ingest.Info, t0 time.Duration, opts Options) (*Daemon, error) {
	opts.applyDefaults()
	if t0 <= 0 {
		return nil, fmt.Errorf("daemon: non-positive observation period %v", t0)
	}
	if info.Span <= 0 {
		return nil, fmt.Errorf("daemon: trace %q has no span", info.Name)
	}
	periods := int(info.Span / t0)
	if periods == 0 {
		return nil, fmt.Errorf("daemon: trace %q span %v shorter than one period %v", info.Name, info.Span, t0)
	}
	resume := det.Periods()
	if resume > periods {
		return nil, fmt.Errorf("daemon: snapshot holds %d periods but trace %q spans only %d — wrong trace or state file",
			resume, info.Name, periods)
	}
	if opts.Tracker != nil && opts.Tracker.Periods() != resume {
		return nil, fmt.Errorf("daemon: keyed state holds %d periods but detector holds %d — mismatched snapshot halves",
			opts.Tracker.Periods(), resume)
	}
	d := &Daemon{
		opts:         opts,
		det:          det,
		src:          src,
		srcName:      info.Name,
		srcRecords:   info.Records,
		t0:           t0,
		span:         info.Span,
		resumeOffset: resume,
		totalPeriods: periods,
	}
	if ad, ok := det.(*ingest.AgentDetector); ok {
		d.agent = ad.Agent()
	}
	d.summarizer = &summary.Summarizer{
		Monitor: opts.Monitor,
		Cfg:     opts.Summary,
		Tracker: opts.Tracker,
	}
	d.summaries = d.summarizer.Backfill(det.Reports())
	return d, nil
}

// NewLive builds a daemon over a live source — a capture.Source on an
// interface or pcap pipe, or any other ingest.Source whose span is
// unknowable up front. There is no fixed period count and no pacing:
// records arrive in real time and the aggregator closes a period when
// the first record of the next one crosses the boundary (a completely
// quiet period closes only when traffic resumes). Replay ends when the
// source does — never for an interface, at stream end for a pipe —
// with the trailing partial period closed so a finite live feed
// accounts for every record.
//
// Resume still works: a detector restored with N periods makes the
// aggregator skip records timestamped inside them, which is exactly
// right for replaying a capture file through the live path and
// meaningless-but-harmless for a freshly-rebased interface feed (whose
// operator should start with fresh state).
func NewLive(det ingest.Detector, src ingest.Source, name string, t0 time.Duration, opts Options) (*Daemon, error) {
	opts.applyDefaults()
	if t0 <= 0 {
		return nil, fmt.Errorf("daemon: non-positive observation period %v", t0)
	}
	resume := det.Periods()
	if opts.Tracker != nil && opts.Tracker.Periods() != resume {
		return nil, fmt.Errorf("daemon: keyed state holds %d periods but detector holds %d — mismatched snapshot halves",
			opts.Tracker.Periods(), resume)
	}
	d := &Daemon{
		opts:         opts,
		det:          det,
		src:          src,
		srcName:      name,
		srcRecords:   -1,
		t0:           t0,
		live:         true,
		resumeOffset: resume,
	}
	if ad, ok := det.(*ingest.AgentDetector); ok {
		d.agent = ad.Agent()
	}
	d.summarizer = &summary.Summarizer{
		Monitor: opts.Monitor,
		Cfg:     opts.Summary,
		Tracker: opts.Tracker,
	}
	d.summaries = d.summarizer.Backfill(det.Reports())
	return d, nil
}

// emitSummary appends one closed period's summary to the store and
// pushes it up the uplink. It runs inside the aggregator's period
// close, which the replay loop always executes under d.mu — no
// re-locking here (and Uplink.Send never blocks).
func (d *Daemon) emitSummary(ps summary.PeriodSummary) {
	d.summaries = append(d.summaries, ps)
	if d.opts.Uplink != nil {
		d.opts.Uplink.Send(ps)
	}
}

// Close releases the daemon's source. The supervisor (and any caller
// of BuildAgent) owns daemons whose sources it never opened itself —
// pcap-backed ones hold an open file — so teardown goes through here.
// Close does not stop a running replay; cancel its context first.
func (d *Daemon) Close() error {
	return d.src.Close()
}

// ResumeOffset returns how many periods of the capture are skipped
// because the detector already reported them before this daemon
// started.
func (d *Daemon) ResumeOffset() int { return d.resumeOffset }

// TotalPeriods returns how many complete periods the capture spans.
func (d *Daemon) TotalPeriods() int { return d.totalPeriods }

// Replay feeds the source through the detector, skipping periods
// already covered by the detector's history. speed <= 0 replays
// instantly; a positive speed replays that many trace seconds per wall
// second, pacing each period boundary against an absolute deadline
// derived from the replay start instant. The returned error is also
// recorded in daemon state (visible via /status and /healthz) unless
// it is the context's cancellation.
func (d *Daemon) Replay(ctx context.Context, speed float64) error {
	err := d.replay(ctx, speed)
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case err == nil:
		d.done = true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Interrupted, not failed: the daemon is simply not done.
	default:
		d.replayErr = err
	}
	return err
}

func (d *Daemon) replay(ctx context.Context, speed float64) error {
	if d.live {
		return d.replayLive(ctx)
	}
	// The summarizer tap is the single emission path for closed
	// periods: it folds the tracker (when present), builds the period's
	// summary from the detector's report, and hands it to emitSummary —
	// which appends to the store and feeds the uplink. The aggregator's
	// sink captures the report for the period being closed.
	var inner summary.RecordTap
	if d.opts.Tracker != nil {
		inner = d.opts.Tracker
	}
	tap := summary.NewTap(d.summarizer, inner, d.emitSummary)
	agg, err := ingest.NewAggregator(d.t0, d.span, d.det, tap.Sink)
	if err != nil {
		return err
	}
	agg.SetTap(tap)

	// Chunked lookahead over the source: records land in an arena chunk
	// and buf[pos:n] is the unconsumed window. The paced loop cuts each
	// chunk at the period boundary, so a period closes at its wall-clock
	// deadline without consuming the first record of the following one —
	// the batch generalization of the old one-record peek.
	bs := ingest.AsBatch(d.src)
	arena := ingest.NewArena(0)
	buf := arena.Get()
	defer arena.Put(buf)
	var (
		pos, n  int
		srcDone bool
	)
	// fill refills the window when it is empty; reads run without d.mu
	// held, so a slow source never stalls the HTTP plane.
	fill := func() error {
		if srcDone || pos < n {
			return nil
		}
		pos, n = 0, 0
		for !srcDone && n == 0 {
			m, err := bs.NextBatch(buf)
			n = m
			if err == io.EOF {
				srcDone = true
			} else if err != nil {
				return err
			}
		}
		return nil
	}

	// Records inside already-reported periods were counted before the
	// snapshot was taken; replaying them would double-count, so the
	// aggregator drops them. Drain them before pacing starts so the
	// skip counter is complete when the first period opens.
	resumeStart := d.t0 * time.Duration(d.resumeOffset)
	for {
		// The drain is unpaced and can cover a multi-gigabyte prefix; it
		// must stay interruptible (one check per chunk) or the daemon
		// ignores SIGTERM until every skipped record has been read.
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fill(); err != nil {
			return err
		}
		if pos >= n {
			break // source exhausted inside the resume prefix
		}
		cut := pos
		for cut < n && buf[cut].Ts < resumeStart {
			cut++
		}
		if cut > pos {
			d.mu.Lock()
			err := agg.FeedBatch(buf[pos:cut])
			d.skipped = agg.Skipped()
			d.mu.Unlock()
			if err != nil {
				return err
			}
			pos = cut
		}
		if pos < n {
			break // first live record reached; pacing takes over
		}
	}

	var (
		start     time.Time
		perPeriod time.Duration
		timer     *time.Timer
	)
	if speed > 0 {
		start = time.Now()
		perPeriod = time.Duration(float64(d.t0) / speed)
		timer = time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}

	for p := d.resumeOffset; p < d.totalPeriods; p++ {
		if speed > 0 {
			// Drift-free pacing: period p ends at an absolute deadline
			// derived from the start instant. A late wakeup shortens
			// the next wait instead of pushing every later period back
			// the way chained time.After calls do.
			deadline := start.Add(time.Duration(p-d.resumeOffset+1) * perPeriod)
			timer.Reset(time.Until(deadline))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		for {
			if err := fill(); err != nil {
				return err
			}
			if pos >= n {
				break // source exhausted; remaining periods close empty
			}
			d.mu.Lock()
			boundary := agg.NextBoundary()
			cut := pos
			for cut < n && buf[cut].Ts < boundary {
				cut++
			}
			if cut > pos {
				if err := agg.FeedBatch(buf[pos:cut]); err != nil {
					d.mu.Unlock()
					return err
				}
				pos = cut
				d.records = agg.Records() - agg.Skipped()
			}
			if pos < n {
				d.mu.Unlock()
				break // head of the next period stays in the window
			}
			d.mu.Unlock()
		}
		d.mu.Lock()
		closeStart := time.Now()
		agg.ClosePeriod()
		d.periodLatency.observe(time.Since(closeStart).Seconds())
		d.mu.Unlock()
	}
	return nil
}

// replayLive is the live-mode replay loop: no span, no pacing, no
// period count. The aggregator runs unbounded (span 0) and closes
// periods data-driven as record timestamps cross boundaries; the speed
// knob is ignored because a live source already arrives in real time.
func (d *Daemon) replayLive(ctx context.Context) error {
	var inner summary.RecordTap
	if d.opts.Tracker != nil {
		inner = d.opts.Tracker
	}
	tap := summary.NewTap(d.summarizer, inner, d.emitSummary)
	agg, err := ingest.NewAggregator(d.t0, 0, d.det, tap.Sink)
	if err != nil {
		return err
	}
	agg.SetTap(tap)

	// A live source blocks on a quiet wire; cancellation must close it
	// to unblock the read, not just set a flag the loop never reaches.
	stopClose := context.AfterFunc(ctx, func() { _ = d.src.Close() })
	defer stopClose()

	bs := ingest.AsBatch(d.src)
	arena := ingest.NewArena(0)
	buf := arena.Get()
	defer arena.Put(buf)
	for {
		n, err := bs.NextBatch(buf)
		if n > 0 {
			d.mu.Lock()
			ferr := agg.FeedBatch(buf[:n])
			d.records = agg.Records() - agg.Skipped()
			d.skipped = agg.Skipped()
			d.mu.Unlock()
			if ferr != nil {
				return ferr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// The read failed because cancellation closed the
				// source out from under it.
				return cerr
			}
			return err
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	// A finite live feed (pcap pipe at EOF): close out the complete
	// periods the stream spanned, exactly as the bounded path would
	// have for the same capture — the trailing partial period stays
	// unreported on both paths, which is what keeps live pcap replay
	// bit-identical to file replay. With no records counted beyond the
	// resume point there is nothing to close.
	d.mu.Lock()
	defer d.mu.Unlock()
	if agg.Records() <= agg.Skipped() {
		return nil
	}
	span := time.Duration(0)
	if ss, ok := d.src.(ingest.SpanSource); ok {
		span = ss.Span()
	}
	if span < d.t0 {
		// Source without a span (or shorter than one period): no
		// complete period to close.
		return nil
	}
	return agg.Finish(span)
}

// failReplay records err as the replay failure. It exists so tests can
// exercise the error-surfacing machinery (healthz 503, status field,
// Serve's non-zero return) without constructing a failing source.
func (d *Daemon) failReplay(err error) {
	d.mu.Lock()
	d.replayErr = err
	d.mu.Unlock()
}

// Serve starts the replay, the HTTP server, and (when configured) the
// checkpoint loop, returning when ctx is cancelled, the listener
// fails, or the replay fails. A replay failure shuts the server down
// and is returned — the caller's process should exit non-zero.
func (d *Daemon) Serve(ctx context.Context, listen string, speed float64) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	if d.srcRecords >= 0 {
		fmt.Fprintf(d.opts.Log, "%s: serving on http://%s (trace %q, %d records, %d/%d periods done)\n",
			d.opts.Name, ln.Addr(), d.srcName, d.srcRecords, d.resumeOffset, d.totalPeriods)
	} else {
		fmt.Fprintf(d.opts.Log, "%s: serving on http://%s (trace %q, streaming, %d/%d periods done)\n",
			d.opts.Name, ln.Addr(), d.srcName, d.resumeOffset, d.totalPeriods)
	}

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	replayDone := make(chan error, 1)
	go func() { replayDone <- d.Replay(ctx, speed) }()

	if d.opts.StatePath != "" && d.opts.CheckpointInterval > 0 {
		go d.checkpointLoop(ctx)
	}

	shutdown := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}
	for {
		select {
		case <-ctx.Done():
			shutdown()
			return ctx.Err()
		case err := <-serveErr:
			return err
		case err := <-replayDone:
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				shutdown()
				return fmt.Errorf("replay: %w", err)
			}
			// Replay finished (or was cancelled with the context, which
			// the ctx.Done arm reports): keep serving the final state.
			replayDone = nil
		}
	}
}

// Run executes the replay and, when configured, the checkpoint loop —
// Serve without the HTTP plane. The multi-agent supervisor serves many
// daemons behind one shared listener and drives each with Run.
func (d *Daemon) Run(ctx context.Context, speed float64) error {
	if d.opts.StatePath != "" && d.opts.CheckpointInterval > 0 {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		go d.checkpointLoop(cctx)
	}
	return d.Replay(ctx, speed)
}

// checkpointLoop persists the agent every CheckpointInterval until ctx
// is cancelled. Checkpoint failures are logged and counted (the
// syndog_checkpoint_failures_total metric and /status's
// lastCheckpointError), not fatal: the daemon keeps detecting even if
// its disk is briefly unhappy, and the final shutdown snapshot still
// runs.
func (d *Daemon) checkpointLoop(ctx context.Context) {
	t := time.NewTicker(d.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := d.Checkpoint(); err != nil {
				fmt.Fprintf(d.opts.Log, "%s: checkpoint: %v\n", d.opts.Name, err)
			}
		}
	}
}
