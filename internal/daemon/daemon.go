// Package daemon is the hardened operational core shared by the
// long-lived SYN-dog binaries (cmd/syndogd, cmd/syndogfleet): trace
// replay through a core.Agent — instant or paced against absolute
// wall-clock deadlines — live HTTP state, and durable snapshot /
// checkpoint handling.
//
// The package exists to make the resume/replay path provably
// equivalent to a single uninterrupted run, which is what the CUSUM
// change-point literature assumes of a continuously-running statistic:
//
//   - Replay is resume-aware: an agent restored from a snapshot with N
//     completed periods skips the first N periods of the trace instead
//     of re-appending them.
//   - Pacing derives every period boundary from one start instant, so
//     scheduler latency inside a period does not accumulate into the
//     next (no chained time.After drift).
//   - Replay failures are daemon state, surfaced via /status and
//     /healthz (503) and returned from Serve so the process exits
//     non-zero — never discarded.
//   - Snapshots are durable (fsync before rename, directory fsync) and
//     can be written periodically on a checkpoint interval, so a crash
//     loses at most one interval of evidence.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// Options configures a Daemon beyond its agent and trace.
type Options struct {
	// Name prefixes log lines (default "daemon"; cmd/syndogd passes
	// its own name so operator-facing output is unchanged).
	Name string
	// Log receives the startup banner and checkpoint notices (default
	// os.Stderr; tests redirect it).
	Log io.Writer
	// StatePath, when non-empty, is where Checkpoint and SaveState
	// persist the agent snapshot.
	StatePath string
	// CheckpointInterval enables periodic snapshots during Serve when
	// positive and StatePath is set. Zero disables checkpointing; the
	// final snapshot on shutdown is written regardless.
	CheckpointInterval time.Duration
}

func (o *Options) applyDefaults() {
	if o.Name == "" {
		o.Name = "daemon"
	}
	if o.Log == nil {
		o.Log = os.Stderr
	}
}

// Daemon owns a core.Agent replaying one trace behind a mutex: the
// replay goroutine writes, HTTP handlers and checkpoints read.
type Daemon struct {
	opts Options

	mu    sync.Mutex
	agent *core.Agent
	tr    *trace.Trace

	resumeOffset int // periods already in the agent when the daemon started
	totalPeriods int // complete periods the trace spans
	records      int // records replayed so far (this run)
	skipped      int // records skipped: their period predates the resume point
	done         bool
	replayErr    error

	checkpoints    int
	lastCheckpoint time.Time
}

// New validates the trace once at the door and builds a daemon around
// agent. If the agent was resumed from a snapshot, its existing report
// history becomes the resume offset: replay will skip that many
// leading periods. New fails on an invalid or too-short trace, or when
// the agent's history claims more periods than the trace holds (the
// snapshot cannot have come from this trace/config pairing).
func New(agent *core.Agent, tr *trace.Trace, opts Options) (*Daemon, error) {
	opts.applyDefaults()
	if tr.Span <= 0 {
		return nil, fmt.Errorf("daemon: trace %q has no span", tr.Name)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("daemon: trace %q: %w", tr.Name, err)
	}
	t0 := agent.Config().T0
	periods := int(tr.Span / t0)
	if periods == 0 {
		return nil, fmt.Errorf("daemon: trace %q span %v shorter than one period %v", tr.Name, tr.Span, t0)
	}
	resume := len(agent.Reports())
	if resume > periods {
		return nil, fmt.Errorf("daemon: snapshot holds %d periods but trace %q spans only %d — wrong trace or state file",
			resume, tr.Name, periods)
	}
	return &Daemon{
		opts:         opts,
		agent:        agent,
		tr:           tr,
		resumeOffset: resume,
		totalPeriods: periods,
	}, nil
}

// ResumeOffset returns how many periods of the trace are skipped
// because the agent already reported them before this daemon started.
func (d *Daemon) ResumeOffset() int { return d.resumeOffset }

// TotalPeriods returns how many complete periods the trace spans.
func (d *Daemon) TotalPeriods() int { return d.totalPeriods }

// Replay feeds the trace through the agent, skipping periods already
// covered by the agent's history. speed <= 0 replays instantly; a
// positive speed replays that many trace seconds per wall second,
// pacing each period boundary against an absolute deadline derived
// from the replay start instant. The returned error is also recorded
// in daemon state (visible via /status and /healthz) unless it is the
// context's cancellation.
func (d *Daemon) Replay(ctx context.Context, speed float64) error {
	err := d.replay(ctx, speed)
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case err == nil:
		d.done = true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Interrupted, not failed: the daemon is simply not done.
	default:
		d.replayErr = err
	}
	return err
}

func (d *Daemon) replay(ctx context.Context, speed float64) error {
	t0 := d.agent.Config().T0
	resumeStart := t0 * time.Duration(d.resumeOffset)

	// Records inside already-reported periods were counted before the
	// snapshot was taken; replaying them would double-count.
	idx := sort.Search(len(d.tr.Records), func(i int) bool {
		return d.tr.Records[i].Ts >= resumeStart
	})
	d.mu.Lock()
	d.skipped = idx
	d.mu.Unlock()

	var (
		start     time.Time
		perPeriod time.Duration
		timer     *time.Timer
	)
	if speed > 0 {
		start = time.Now()
		perPeriod = time.Duration(float64(t0) / speed)
		timer = time.NewTimer(0)
		if !timer.Stop() {
			<-timer.C
		}
		defer timer.Stop()
	}

	next := resumeStart + t0
	for p := d.resumeOffset; p < d.totalPeriods; p++ {
		if speed > 0 {
			// Drift-free pacing: period p ends at an absolute deadline
			// derived from the start instant. A late wakeup shortens
			// the next wait instead of pushing every later period back
			// the way chained time.After calls do.
			deadline := start.Add(time.Duration(p-d.resumeOffset+1) * perPeriod)
			timer.Reset(time.Until(deadline))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		d.mu.Lock()
		for idx < len(d.tr.Records) && d.tr.Records[idx].Ts < next {
			r := d.tr.Records[idx]
			d.agent.Observe(toDir(r.Dir), r.Kind)
			idx++
			d.records++
		}
		d.agent.EndPeriod(next)
		d.mu.Unlock()
		next += t0
	}
	return nil
}

func toDir(dir trace.Direction) netsim.Direction {
	if dir == trace.DirOut {
		return netsim.Outbound
	}
	return netsim.Inbound
}

// failReplay records err as the replay failure. It exists so tests can
// exercise the error-surfacing machinery (healthz 503, status field,
// Serve's non-zero return) without constructing a failing trace.
func (d *Daemon) failReplay(err error) {
	d.mu.Lock()
	d.replayErr = err
	d.mu.Unlock()
}

// Serve starts the replay, the HTTP server, and (when configured) the
// checkpoint loop, returning when ctx is cancelled, the listener
// fails, or the replay fails. A replay failure shuts the server down
// and is returned — the caller's process should exit non-zero.
func (d *Daemon) Serve(ctx context.Context, listen string, speed float64) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(d.opts.Log, "%s: serving on http://%s (trace %q, %d records, %d/%d periods done)\n",
		d.opts.Name, ln.Addr(), d.tr.Name, len(d.tr.Records), d.resumeOffset, d.totalPeriods)

	srv := &http.Server{Handler: d.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	replayDone := make(chan error, 1)
	go func() { replayDone <- d.Replay(ctx, speed) }()

	if d.opts.StatePath != "" && d.opts.CheckpointInterval > 0 {
		go d.checkpointLoop(ctx)
	}

	shutdown := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}
	for {
		select {
		case <-ctx.Done():
			shutdown()
			return ctx.Err()
		case err := <-serveErr:
			return err
		case err := <-replayDone:
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				shutdown()
				return fmt.Errorf("replay: %w", err)
			}
			// Replay finished (or was cancelled with the context, which
			// the ctx.Done arm reports): keep serving the final state.
			replayDone = nil
		}
	}
}

// checkpointLoop persists the agent every CheckpointInterval until ctx
// is cancelled. Checkpoint failures are logged, not fatal: the daemon
// keeps detecting even if its disk is briefly unhappy, and the final
// shutdown snapshot still runs.
func (d *Daemon) checkpointLoop(ctx context.Context) {
	t := time.NewTicker(d.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := d.Checkpoint(); err != nil {
				fmt.Fprintf(d.opts.Log, "%s: checkpoint: %v\n", d.opts.Name, err)
			}
		}
	}
}
