package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/sourcetrack"
)

// ErrConfigMismatch reports a snapshot whose parameters disagree with
// the requested configuration. Resuming such a snapshot would silently
// run parameters nobody asked for — or, worse, graft a K̄/CUSUM state
// onto a detector with different semantics — so it is a hard startup
// error.
var ErrConfigMismatch = errors.New("daemon: snapshot config disagrees with requested config")

// State is the daemon's on-disk snapshot: the aggregate agent
// snapshot plus, when source tracking is enabled, the keyed tracker
// state. With Sources nil the encoding is byte-identical to a bare
// core.Snapshot, so state files written before (or without) source
// tracking stay interchangeable with the aggregate-only format, and
// core.ReadSnapshot can still read a keyed file (ignoring the keyed
// half — use LoadOrNewState to refuse that silently-lossy path).
type State struct {
	core.Snapshot
	Sources *sourcetrack.Snapshot `json:"sources,omitempty"`
}

// Write serializes the state as indented JSON, the on-disk format.
func (st State) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// ReadStateFile loads a daemon state file without restoring it.
func ReadStateFile(path string) (State, error) {
	f, err := os.Open(path)
	if err != nil {
		return State{}, err
	}
	defer f.Close()
	var st State
	if err := json.NewDecoder(f).Decode(&st); err != nil {
		return State{}, fmt.Errorf("%w: %v", core.ErrBadSnapshot, err)
	}
	return st, nil
}

// LoadOrNewAgent resumes an agent from statePath when the file exists,
// otherwise builds a fresh agent from cfg. It returns whether the
// agent was resumed.
//
// Unlike a permissive loader, every failure is surfaced: an unreadable
// state file, a corrupt snapshot, and a snapshot whose effective
// Config differs from cfg (after defaulting) are all errors — the
// operator must either fix the flags or move the snapshot aside, not
// have one silently win over the other.
func LoadOrNewAgent(statePath string, cfg core.Config) (agent *core.Agent, resumed bool, err error) {
	if statePath == "" {
		a, err := core.NewAgent(cfg)
		return a, false, err
	}
	f, err := os.Open(statePath)
	if errors.Is(err, fs.ErrNotExist) {
		a, err := core.NewAgent(cfg)
		return a, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	a, err := core.ReadSnapshot(f)
	if err != nil {
		return nil, false, fmt.Errorf("resume from %s: %w", statePath, err)
	}
	if got, want := a.Config(), cfg.Normalized(); got != want {
		return nil, false, fmt.Errorf("%w: %s holds %+v, flags request %+v",
			ErrConfigMismatch, statePath, got, want)
	}
	return a, true, nil
}

// LoadOrNewState is the keyed-aware twin of LoadOrNewAgent: it
// resumes (or freshly builds) the aggregate agent and, when track is
// non-nil, the source tracker too. The same strictness applies, plus
// the keyed half:
//
//   - A state file carrying keyed sources is refused when tracking is
//     disabled — dropping accumulated per-key evidence must be an
//     explicit operator decision (move the file aside), never silent.
//   - Keyed keying/capacity/parameter changes fail with
//     sourcetrack.ErrConfigMismatch.
//   - Enabling tracking over an aggregate-only snapshot fast-forwards
//     an empty tracker to the agent's resume point: keyed evidence
//     starts accumulating from there.
//   - The two halves' period clocks must agree.
func LoadOrNewState(statePath string, cfg core.Config, track *sourcetrack.Config) (agent *core.Agent, tracker *sourcetrack.Tracker, resumed bool, err error) {
	fresh := func(periods int) (*sourcetrack.Tracker, error) {
		if track == nil {
			return nil, nil
		}
		tr, err := sourcetrack.New(*track)
		if err != nil {
			return nil, err
		}
		if err := tr.FastForward(periods); err != nil {
			return nil, err
		}
		return tr, nil
	}
	if statePath == "" {
		a, err := core.NewAgent(cfg)
		if err != nil {
			return nil, nil, false, err
		}
		tr, err := fresh(0)
		return a, tr, false, err
	}
	st, err := ReadStateFile(statePath)
	if errors.Is(err, fs.ErrNotExist) {
		a, err := core.NewAgent(cfg)
		if err != nil {
			return nil, nil, false, err
		}
		tr, err := fresh(0)
		return a, tr, false, err
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("resume from %s: %w", statePath, err)
	}
	a, err := core.RestoreAgent(st.Snapshot)
	if err != nil {
		return nil, nil, false, fmt.Errorf("resume from %s: %w", statePath, err)
	}
	if got, want := a.Config(), cfg.Normalized(); got != want {
		return nil, nil, false, fmt.Errorf("%w: %s holds %+v, flags request %+v",
			ErrConfigMismatch, statePath, got, want)
	}
	switch {
	case st.Sources == nil:
		// Aggregate-only snapshot: keyed evidence (if requested)
		// starts at the resume point.
		if tracker, err = fresh(len(st.Reports)); err != nil {
			return nil, nil, false, err
		}
	case track == nil:
		return nil, nil, false, fmt.Errorf("%w: %s carries keyed source state; resume with -track-sources or move the snapshot aside",
			ErrConfigMismatch, statePath)
	default:
		tracker, err = sourcetrack.Restore(*st.Sources, *track)
		if err != nil {
			return nil, nil, false, fmt.Errorf("resume from %s: %w", statePath, err)
		}
		if tracker.Periods() != len(st.Reports) {
			return nil, nil, false, fmt.Errorf("%w: %s keyed half holds %d periods but aggregate holds %d",
				core.ErrBadSnapshot, statePath, tracker.Periods(), len(st.Reports))
		}
	}
	return a, tracker, true, nil
}

// WriteSnapshotFile persists an aggregate-only snapshot durably. It
// is WriteStateFile with no keyed half; the bytes are identical to
// the pre-keyed format.
func WriteSnapshotFile(snap core.Snapshot, path string) error {
	return WriteStateFile(State{Snapshot: snap}, path)
}

// WriteStateFile persists a daemon state durably: it writes to a
// temporary file in the destination directory, fsyncs it, renames it
// over path, and fsyncs the directory so the rename itself survives a
// crash. A reader never observes a partially-written snapshot.
func WriteStateFile(st State, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	if err := st.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename durable. Some filesystems do not support fsync
	// on directories; that is not worth failing the checkpoint over.
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		df.Close()
	}
	return nil
}

// SaveState writes the agent's current snapshot to path (typically
// Options.StatePath). The snapshot is captured under the daemon lock
// and persisted outside it, so a slow disk never stalls replay. Only
// the CUSUM agent carries snapshot state; daemons running a baseline
// detector cannot persist.
func (d *Daemon) SaveState(path string) error {
	st, err := d.State()
	if err != nil {
		return err
	}
	return WriteStateFile(st, path)
}

// State captures the daemon's current persistable state under the
// daemon lock — the same snapshot SaveState writes, returned in
// memory. The supervisor's reload path migrates it instead of (or
// before) persisting. Only the CUSUM agent carries snapshot state;
// daemons running a baseline detector cannot produce one.
func (d *Daemon) State() (State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.agent == nil {
		return State{}, fmt.Errorf("daemon: detector %q has no snapshot state", d.det.Name())
	}
	st := State{Snapshot: d.agent.Snapshot()}
	if tr := d.opts.Tracker; tr != nil {
		ks := tr.Snapshot()
		st.Sources = &ks
	}
	return st, nil
}

// Checkpoint persists the agent to Options.StatePath and records the
// outcome: the checkpoint time feeds the /metrics checkpoint-age
// gauge, and failures feed syndog_checkpoint_failures_total plus
// /status's lastCheckpointError — a dying disk is visible long before
// the final shutdown snapshot is lost. A later success clears the
// error but not the failure count. It is a no-op when no state path
// is configured.
func (d *Daemon) Checkpoint() error {
	if d.opts.StatePath == "" {
		return nil
	}
	writeStart := time.Now()
	err := d.SaveState(d.opts.StatePath)
	elapsed := time.Since(writeStart).Seconds()
	d.mu.Lock()
	d.checkpointLatency.observe(elapsed)
	if err != nil {
		d.checkpointFailures++
		d.lastCheckpointErr = err
	} else {
		d.checkpoints++
		d.lastCheckpoint = time.Now()
		d.lastCheckpointErr = nil
	}
	d.mu.Unlock()
	return err
}
