package daemon

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
)

// ErrConfigMismatch reports a snapshot whose parameters disagree with
// the requested configuration. Resuming such a snapshot would silently
// run parameters nobody asked for — or, worse, graft a K̄/CUSUM state
// onto a detector with different semantics — so it is a hard startup
// error.
var ErrConfigMismatch = errors.New("daemon: snapshot config disagrees with requested config")

// LoadOrNewAgent resumes an agent from statePath when the file exists,
// otherwise builds a fresh agent from cfg. It returns whether the
// agent was resumed.
//
// Unlike a permissive loader, every failure is surfaced: an unreadable
// state file, a corrupt snapshot, and a snapshot whose effective
// Config differs from cfg (after defaulting) are all errors — the
// operator must either fix the flags or move the snapshot aside, not
// have one silently win over the other.
func LoadOrNewAgent(statePath string, cfg core.Config) (agent *core.Agent, resumed bool, err error) {
	if statePath == "" {
		a, err := core.NewAgent(cfg)
		return a, false, err
	}
	f, err := os.Open(statePath)
	if errors.Is(err, fs.ErrNotExist) {
		a, err := core.NewAgent(cfg)
		return a, false, err
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	a, err := core.ReadSnapshot(f)
	if err != nil {
		return nil, false, fmt.Errorf("resume from %s: %w", statePath, err)
	}
	if got, want := a.Config(), cfg.Normalized(); got != want {
		return nil, false, fmt.Errorf("%w: %s holds %+v, flags request %+v",
			ErrConfigMismatch, statePath, got, want)
	}
	return a, true, nil
}

// WriteSnapshotFile persists a snapshot durably: it writes to a
// temporary file in the destination directory, fsyncs it, renames it
// over path, and fsyncs the directory so the rename itself survives a
// crash. A reader never observes a partially-written snapshot.
func WriteSnapshotFile(snap core.Snapshot, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	if err := snap.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Make the rename durable. Some filesystems do not support fsync
	// on directories; that is not worth failing the checkpoint over.
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		df.Close()
	}
	return nil
}

// SaveState writes the agent's current snapshot to path (typically
// Options.StatePath). The snapshot is captured under the daemon lock
// and persisted outside it, so a slow disk never stalls replay. Only
// the CUSUM agent carries snapshot state; daemons running a baseline
// detector cannot persist.
func (d *Daemon) SaveState(path string) error {
	d.mu.Lock()
	if d.agent == nil {
		d.mu.Unlock()
		return fmt.Errorf("daemon: detector %q has no snapshot state", d.det.Name())
	}
	snap := d.agent.Snapshot()
	d.mu.Unlock()
	return WriteSnapshotFile(snap, path)
}

// Checkpoint persists the agent to Options.StatePath and records the
// checkpoint time for the /metrics checkpoint-age gauge. It is a
// no-op when no state path is configured.
func (d *Daemon) Checkpoint() error {
	if d.opts.StatePath == "" {
		return nil
	}
	if err := d.SaveState(d.opts.StatePath); err != nil {
		return err
	}
	d.mu.Lock()
	d.checkpoints++
	d.lastCheckpoint = time.Now()
	d.mu.Unlock()
	return nil
}
