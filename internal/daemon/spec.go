package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
	"repro/internal/trace"
)

// Policy says what to do when an agent's on-disk snapshot disagrees
// with its requested configuration in a way that cannot be applied in
// place (T0, key bits, detector, disabling tracking).
type Policy string

const (
	// PolicyError refuses the mismatch — the historical hard-error
	// behavior, and the default: silently dropping evidence is never
	// the default.
	PolicyError Policy = "error"
	// PolicyMigrate carries every portable piece of state across the
	// change (see MigrateState for the exact matrix) and resets only
	// what cannot be reinterpreted.
	PolicyMigrate Policy = "migrate"
	// PolicyReset discards the snapshot and starts fresh.
	PolicyReset Policy = "reset"
)

// ParsePolicy parses an on-mismatch policy name; "" means PolicyError.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyError:
		return PolicyError, nil
	case PolicyMigrate:
		return PolicyMigrate, nil
	case PolicyReset:
		return PolicyReset, nil
	}
	return "", fmt.Errorf("unknown on-mismatch policy %q (have error, migrate, reset)", s)
}

// StateAction reports how an agent's state was obtained when it was
// built or rebuilt: it is surfaced in reload results and startup
// notices so the operator always knows whether evidence was carried.
type StateAction string

const (
	// ActionFresh: no snapshot existed; the agent starts empty.
	ActionFresh StateAction = "fresh"
	// ActionResumed: the snapshot matched and was restored whole.
	ActionResumed StateAction = "resumed"
	// ActionMigrated: the snapshot was rewritten for a parameter
	// change; portable state was carried.
	ActionMigrated StateAction = "migrated"
	// ActionReset: the snapshot was discarded under PolicyReset.
	ActionReset StateAction = "reset"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("20s") and unmarshals either that form or raw nanoseconds, so config
// files stay hand-editable while remaining compatible with Go's default
// numeric encoding.
type Duration time.Duration

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("duration: want \"20s\" or nanoseconds, got %s", data)
	}
	*d = Duration(n)
	return nil
}

// AgentSpec describes one agent of a multi-agent daemon: which capture
// it watches, which detector with which parameters, and how its state
// persists. It is the unit of configuration for both the -agent flag
// and the -config file, and the unit of diffing for reloads.
type AgentSpec struct {
	// Name routes the agent's HTTP endpoints (/agents/{name}/...) and
	// labels its metrics. Letters, digits, '.', '_' and '-' only.
	Name string `json:"name"`
	// Input is the capture to replay — .trace/.bin, .csv, or .pcap —
	// or a live source: "live:IFACE" (AF_PACKET on linux with the
	// 'live' build tag) or "live:pcap:PATH" (portable pcap byte-stream,
	// file or FIFO).
	Input string `json:"input"`
	// Prefix is the stub prefix for pcap and live direction inference.
	Prefix string `json:"prefix,omitempty"`
	// Detector selects the decision rule ("" = syndog-cusum).
	Detector string `json:"detector,omitempty"`
	// T0, Alpha, Offset and Threshold are the detector parameters;
	// zero values take the core defaults (20s, 0.9, 0.35, 1.05).
	T0        Duration `json:"t0,omitempty"`
	Alpha     float64  `json:"alpha,omitempty"`
	Offset    float64  `json:"a,omitempty"`
	Threshold float64  `json:"N,omitempty"`
	// State is the agent's snapshot file; Checkpoint the periodic
	// snapshot interval (0 = only at shutdown; needs State).
	State      string   `json:"state,omitempty"`
	Checkpoint Duration `json:"checkpoint,omitempty"`
	// TrackSources enables the per-source attribution engine, keyed at
	// KeyBits with MaxSources states (zeros take sourcetrack defaults).
	TrackSources bool `json:"trackSources,omitempty"`
	KeyBits      int  `json:"keyBits,omitempty"`
	MaxSources   int  `json:"maxSources,omitempty"`
	// OnMismatch is the snapshot mismatch policy ("" = error). It is
	// execution policy, not detector configuration: changing it alone
	// never counts as a spec change.
	OnMismatch Policy `json:"onMismatch,omitempty"`
}

// cusum reports whether the spec runs the (stateful) CUSUM detector.
func (s AgentSpec) cusum() bool {
	return s.Detector == "" || s.Detector == "syndog-cusum"
}

// policy returns the effective mismatch policy.
func (s AgentSpec) policy() Policy {
	if s.OnMismatch == "" {
		return PolicyError
	}
	return s.OnMismatch
}

// coreConfig returns the aggregate detector configuration.
func (s AgentSpec) coreConfig() core.Config {
	return core.Config{
		T0:        time.Duration(s.T0),
		Alpha:     s.Alpha,
		Offset:    s.Offset,
		Threshold: s.Threshold,
	}
}

// trackConfig returns the keyed tracker configuration, nil when source
// tracking is off.
func (s AgentSpec) trackConfig() *sourcetrack.Config {
	if !s.TrackSources {
		return nil
	}
	return &sourcetrack.Config{
		KeyBits:    s.KeyBits,
		MaxSources: s.MaxSources,
		Shards:     runtime.GOMAXPROCS(0),
		Agent:      s.coreConfig(),
	}
}

// validName reports whether name is usable in a URL path segment and a
// metric label without escaping.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec without touching the filesystem, so a bad
// config file (or reload body) is rejected before any agent is
// disturbed. The error texts deliberately match the single-agent flag
// errors operators already know.
func (s AgentSpec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("agent name %q: need letters, digits, '.', '_' or '-'", s.Name)
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("agent %q: %w", s.Name, fmt.Errorf(format, args...))
	}
	if s.Input == "" {
		return fail("missing input capture")
	}
	if !slices.Contains(ingest.DetectorNames(), s.Detector) && s.Detector != "" {
		return fail("unknown detector %q (have %s)", s.Detector, strings.Join(ingest.DetectorNames(), ", "))
	}
	if s.Checkpoint > 0 && s.State == "" {
		return fail("-checkpoint needs -state")
	}
	if s.State != "" && !s.cusum() {
		return fail("-state needs the syndog-cusum detector, not %q (baselines carry no snapshot state)", s.Detector)
	}
	if s.TrackSources && !s.cusum() {
		return fail("-track-sources needs the syndog-cusum detector, not %q", s.Detector)
	}
	if !s.TrackSources && (s.KeyBits != 0 || s.MaxSources != 0) {
		return fail("-key-bits/-max-sources need -track-sources")
	}
	if s.Prefix != "" {
		if _, err := netip.ParsePrefix(s.Prefix); err != nil {
			return fail("prefix: %v", err)
		}
	}
	if rest, ok := strings.CutPrefix(s.Input, "live:"); ok {
		if s.Prefix == "" {
			return fail("live input %s needs a stub prefix for direction inference", s.Input)
		}
		if path, isPcap := strings.CutPrefix(rest, "pcap:"); isPcap {
			if path == "" {
				return fail("live:pcap: needs a path (file or FIFO)")
			}
		} else if rest == "" {
			return fail("live: needs an interface name or pcap:PATH")
		}
	} else if strings.HasSuffix(s.Input, ".pcap") && s.Prefix == "" {
		return fail("trace: %s needs a stub prefix for direction inference", s.Input)
	}
	if _, err := ParsePolicy(string(s.OnMismatch)); err != nil {
		return fail("%v", err)
	}
	return nil
}

// effective returns the spec with every default applied and the
// mismatch policy cleared — the canonical form reloads diff. Two specs
// whose effective forms are equal describe the same running agent, so
// a reload leaves that agent completely untouched.
func (s AgentSpec) effective() AgentSpec {
	if s.Detector == "" {
		s.Detector = "syndog-cusum"
	}
	cfg := s.coreConfig().Normalized()
	s.T0 = Duration(cfg.T0)
	s.Alpha = cfg.Alpha
	s.Offset = cfg.Offset
	s.Threshold = cfg.Threshold
	if s.TrackSources {
		tc := s.trackConfig().Normalized()
		s.KeyBits, s.MaxSources = tc.KeyBits, tc.MaxSources
	} else {
		s.KeyBits, s.MaxSources = 0, 0
	}
	s.OnMismatch = ""
	return s
}

// specFile is the on-disk multi-agent configuration: one spec per
// agent. The top level is an object so future daemon-wide settings can
// join without breaking existing files.
type specFile struct {
	Agents []AgentSpec `json:"agents"`
}

// ParseSpecs decodes and validates a multi-agent configuration
// document: {"agents": [...]}. Names must be unique — they route HTTP
// and label metrics.
func ParseSpecs(data []byte) ([]AgentSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f specFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if len(f.Agents) == 0 {
		return nil, errors.New("config: no agents defined")
	}
	seen := make(map[string]bool, len(f.Agents))
	for _, s := range f.Agents {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("config: duplicate agent name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return f.Agents, nil
}

// LoadSpecs reads and parses a multi-agent configuration file.
func LoadSpecs(path string) ([]AgentSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpecs(data)
}

// BuildEnv is the process-level environment agents are built into:
// log routing plus the shared summary-export shape and the optional
// fusion uplink. One env serves every agent of a supervisor; the env's
// uplink is owned by the process, never by the daemons built into it.
type BuildEnv struct {
	// ProcName prefixes log lines ("syndogd").
	ProcName string
	// Log receives resume/migration notices (nil = discard).
	Log io.Writer
	// Summary shapes each agent's exported summaries (/summaries and
	// the uplink); local stores always keep full fidelity.
	Summary summary.Config
	// Uplink, when non-nil, receives every agent's closed-period
	// summaries, stamped with the agent's spec name as monitor.
	Uplink *summary.Uplink
}

// BuildAgent constructs the daemon an AgentSpec describes: state is
// loaded (or migrated/reset per the spec's policy), the detector and
// tracker assembled, and the input opened as a streaming source. The
// daemon owns the source; Close releases it. procName prefixes log
// lines ("syndogd"); resume and migration notices go to logw in the
// same format the single-agent daemon has always printed.
//
// BuildAgent is BuildAgentEnv without an uplink — the historical
// signature, kept for callers that never export summaries.
func BuildAgent(spec AgentSpec, procName string, logw io.Writer) (*Daemon, StateAction, error) {
	return BuildAgentEnv(spec, BuildEnv{ProcName: procName, Log: logw})
}

// BuildAgentEnv is BuildAgent within an explicit process environment:
// the built daemon exports summaries shaped by env.Summary and, when
// env.Uplink is set, streams them to the fusion coordinator under the
// spec's name.
func BuildAgentEnv(spec AgentSpec, env BuildEnv) (*Daemon, StateAction, error) {
	if err := spec.Validate(); err != nil {
		return nil, "", err
	}
	if env.Log == nil {
		env.Log = io.Discard
	}
	procName, logw := env.ProcName, env.Log

	cfg := spec.coreConfig()
	action := ActionFresh
	var det ingest.Detector
	var tracker *sourcetrack.Tracker
	if spec.cusum() {
		agent, tr, act, err := LoadOrNewStateWithPolicy(spec.State, cfg, spec.trackConfig(), spec.policy())
		if err != nil {
			return nil, "", err
		}
		action, tracker = act, tr
		switch action {
		case ActionResumed:
			fmt.Fprintf(logw, "%s: resumed from %s (%d periods, K-bar %.1f)\n",
				procName, spec.State, len(agent.Reports()), agent.KBar())
			if tracker != nil {
				st := tracker.Stats()
				fmt.Fprintf(logw, "%s: keyed state: %d sources tracked, %d evicted\n",
					procName, st.Tracked, st.Evicted)
			}
		case ActionMigrated:
			fmt.Fprintf(logw, "%s: migrated %s to new parameters (%d periods, K-bar %.1f carried)\n",
				procName, spec.State, len(agent.Reports()), agent.KBar())
		case ActionReset:
			fmt.Fprintf(logw, "%s: reset: snapshot %s discarded (config mismatch, on-mismatch=reset)\n",
				procName, spec.State)
		}
		det = ingest.WrapAgent(agent)
	} else {
		var err error
		if det, err = ingest.NewDetector(spec.Detector, ingest.DetectorConfig{Agent: cfg}); err != nil {
			return nil, "", err
		}
	}

	d, err := assemble(spec, det, tracker, env)
	if err != nil {
		return nil, "", err
	}
	return d, action, nil
}

// assemble opens the spec's input as a streaming source and wires it
// to an already-built detector/tracker pair — the half of BuildAgent
// that touches the filesystem. The reload path calls it directly with
// a detector rebuilt from captured in-memory state.
func assemble(spec AgentSpec, det ingest.Detector, tracker *sourcetrack.Tracker, env BuildEnv) (*Daemon, error) {
	opts := Options{
		Name:               env.ProcName,
		Log:                env.Log,
		StatePath:          spec.State,
		CheckpointInterval: time.Duration(spec.Checkpoint),
		Tracker:            tracker,
		Monitor:            spec.Name,
		Summary:            env.Summary,
		Uplink:             env.Uplink,
	}
	effT0 := spec.coreConfig().Normalized().T0

	var prefix netip.Prefix
	if spec.Prefix != "" {
		prefix = netip.MustParsePrefix(spec.Prefix) // Validate parsed it
	}
	if rest, ok := strings.CutPrefix(spec.Input, "live:"); ok {
		return assembleLive(spec, rest, det, prefix, effT0, opts)
	}
	if strings.HasSuffix(spec.Input, ".pcap") {
		// Streaming pcap: prescan for span and record count, then
		// replay from a fresh stream — the capture never materializes.
		f, err := os.Open(spec.Input)
		if err != nil {
			return nil, err
		}
		info, err := ingest.PcapInfo(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		info.Name = spec.Input
		src, _, err := ingest.Open(spec.Input, prefix)
		if err != nil {
			return nil, err
		}
		d, err := NewStream(det, src, info, effT0, opts)
		if err != nil {
			src.Close()
			return nil, err
		}
		return d, nil
	}
	// Validate once at the door; the replay path then trusts the
	// trace's invariants.
	tr, err := trace.LoadValidated(spec.Input, prefix)
	if err != nil {
		return nil, err
	}
	if tr.Span <= 0 {
		return nil, fmt.Errorf("daemon: trace %q has no span", tr.Name)
	}
	src := ingest.NewTraceSource(tr)
	info := ingest.Info{Name: tr.Name, Span: tr.Span, Records: len(tr.Records)}
	return NewStream(det, src, info, effT0, opts)
}

// assembleLive opens a live: input. Two forms:
//
//	live:pcap:PATH — portable: PATH is a classic pcap byte-stream (a
//	    capture file or a FIFO fed by `tcpdump -w -`), read through the
//	    capture frame parser in blocking mode. Blocking keeps the path
//	    lossless — a pipe backpressures naturally — which is what makes
//	    replaying a capture file through it bit-identical to the
//	    offline .pcap path.
//	live:IFACE — an AF_PACKET socket on IFACE (linux, build tag
//	    "live", CAP_NET_RAW), in drop mode with rebased timestamps: a
//	    NIC cannot be paused, so a full ring sheds records and counts
//	    them rather than pushing the loss into the kernel.
func assembleLive(spec AgentSpec, rest string, det ingest.Detector, prefix netip.Prefix, t0 time.Duration, opts Options) (*Daemon, error) {
	var (
		fr  capture.FrameReader
		cfg capture.Config
	)
	if path, ok := strings.CutPrefix(rest, "pcap:"); ok {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		fr, err = capture.NewPcapReader(f, f)
		if err != nil {
			f.Close()
			return nil, err
		}
		cfg = capture.Config{StubPrefix: prefix, Name: spec.Input}
	} else {
		var err error
		fr, err = capture.NewAFPacketReader(rest, 0)
		if err != nil {
			return nil, err
		}
		cfg = capture.Config{StubPrefix: prefix, Name: spec.Input, Drop: true, Rebase: true}
	}
	src, err := capture.NewSource(fr, cfg)
	if err != nil {
		fr.Close()
		return nil, err
	}
	d, err := NewLive(det, src, spec.Input, t0, opts)
	if err != nil {
		src.Close()
		return nil, err
	}
	return d, nil
}
