package daemon

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// syncBuf is a goroutine-safe log sink: the supervisor, its agents and
// their checkpoint loops all write concurrently.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var bannerRE = regexp.MustCompile(`serving on http://([0-9.]+:[0-9]+)`)

// startSupervisor runs s on an ephemeral port and returns the base URL
// plus a shutdown function that cancels the run and returns its error.
func startSupervisor(t *testing.T, s *Supervisor, log *syncBuf) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, "127.0.0.1:0") }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := bannerRE.FindStringSubmatch(log.String()); m != nil {
			url := "http://" + m[1]
			return url, func() error {
				cancel()
				select {
				case err := <-done:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("supervisor did not shut down")
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("no banner; log:\n%s", log.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitReplayDone polls an agent's /status until replayDone.
func waitReplayDone(t *testing.T, base, agent string) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := httpGet(t, base+"/agents/"+agent+"/status")
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
		var st Status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.ReplayDone {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent %s never finished: %+v", agent, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func reloadBody(t *testing.T, specs []AgentSpec) string {
	t.Helper()
	b, err := json.Marshal(specFile{Agents: specs})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeResults(t *testing.T, body string) map[string]ReloadResult {
	t.Helper()
	var rs []ReloadResult
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatalf("bad reload response %q: %v", body, err)
	}
	out := make(map[string]ReloadResult, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out
}

// TestSupervisorTwoAgents pins the multi-agent HTTP plane: per-agent
// routing, aggregated status/metrics with agent labels, and the
// single-agent-only root endpoints turning 404.
func TestSupervisorTwoAgents(t *testing.T) {
	dir := t.TempDir()
	flooded := saveTestTrace(t, dir, true)
	clean := filepath.Join(dir, "clean.trace")
	if err := trace.Save(clean, testTrace(t, false)); err != nil {
		t.Fatal(err)
	}
	specs := []AgentSpec{
		{Name: "edge-a", Input: flooded, TrackSources: true, KeyBits: 8, MaxSources: 64},
		{Name: "edge-b", Input: clean},
	}
	var log syncBuf
	s, err := NewSupervisor(specs, SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)

	stA := waitReplayDone(t, base, "edge-a")
	stB := waitReplayDone(t, base, "edge-b")
	if !stA.Alarmed || stB.Alarmed {
		t.Fatalf("alarms: a=%v b=%v", stA.Alarmed, stB.Alarmed)
	}

	// /agents listing.
	code, body := httpGet(t, base+"/agents")
	if code != http.StatusOK {
		t.Fatalf("/agents: %d", code)
	}
	var sums []AgentSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Name != "edge-a" || sums[1].Name != "edge-b" {
		t.Fatalf("summaries: %s", body)
	}
	if sums[0].Generation != 1 || sums[0].LastAction != ActionFresh {
		t.Fatalf("summary a: %+v", sums[0])
	}

	// Per-agent routing, including query strings.
	if code, body := httpGet(t, base+"/agents/edge-a/sources?n=2"); code != http.StatusOK || !strings.Contains(body, `"enabled":true`) {
		t.Fatalf("a sources: %d %s", code, body)
	}
	if code, body := httpGet(t, base+"/agents/edge-b/sources"); code != http.StatusOK || !strings.Contains(body, `"enabled":false`) {
		t.Fatalf("b sources: %d %s", code, body)
	}
	if code, _ := httpGet(t, base+"/agents/nope/status"); code != http.StatusNotFound {
		t.Fatalf("unknown agent: %d", code)
	}
	if code, _ := httpGet(t, base+"/agents/edge-a"); code != http.StatusOK {
		t.Fatalf("bare agent path: %d", code)
	}

	// Aggregate status wraps per-agent statuses.
	code, body = httpGet(t, base+"/status")
	if code != http.StatusOK || !strings.Contains(body, `"agents"`) || !strings.Contains(body, `"edge-b"`) {
		t.Fatalf("multi status: %d %s", code, body)
	}

	// Labeled metrics: one TYPE line per metric, one sample per agent.
	code, body = httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.Contains(body, `syndog_alarmed{agent="edge-a"} 1`) ||
		!strings.Contains(body, `syndog_alarmed{agent="edge-b"} 0`) {
		t.Fatalf("labeled metrics missing:\n%s", body)
	}
	if strings.Count(body, "# TYPE syndog_periods_total counter") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", body)
	}

	// Root reports/summaries/sources are single-agent conveniences.
	if code, _ := httpGet(t, base+"/reports"); code != http.StatusNotFound {
		t.Fatalf("root /reports with two agents: %d", code)
	}
	if code, _ := httpGet(t, base+"/summaries"); code != http.StatusNotFound {
		t.Fatalf("root /summaries with two agents: %d", code)
	}
	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}

	if err := shutdown(); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSupervisorSingleAgentBackCompat pins that a one-agent supervisor
// speaks exactly the old daemon's root HTTP dialect.
func TestSupervisorSingleAgentBackCompat(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	var log syncBuf
	s, err := NewSupervisor([]AgentSpec{{Name: "only", Input: in}},
		SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	waitReplayDone(t, base, "only")

	// Old single-agent banner format, first line.
	first := strings.SplitN(log.String(), "\n", 2)[0]
	if !strings.Contains(first, `syndogd: serving on http://`) || !strings.Contains(first, "30 periods") {
		t.Fatalf("banner: %q", first)
	}

	// Root status: the bare Status object, not the multi-agent wrapper.
	_, body := httpGet(t, base+"/status")
	if strings.Contains(body, `"agents"`) || !strings.Contains(body, `"alarmed":true`) {
		t.Fatalf("single status: %s", body)
	}
	// Root metrics: unlabeled, same lines the golden test pins.
	_, body = httpGet(t, base+"/metrics")
	if !strings.Contains(body, "syndog_periods_total 30\n") || strings.Contains(body, "{agent=") {
		t.Fatalf("single metrics:\n%s", body)
	}
	// Root reports, summaries and sources still serve.
	if code, body := httpGet(t, base+"/reports"); code != http.StatusOK || !strings.HasPrefix(body, "[") {
		t.Fatalf("reports: %d %s", code, body)
	}
	if code, body := httpGet(t, base+"/summaries"); code != http.StatusOK || !strings.Contains(body, `"monitor":"only"`) {
		t.Fatalf("summaries: %d %s", code, body)
	}
	if code, _ := httpGet(t, base+"/sources"); code != http.StatusOK {
		t.Fatalf("sources: %d", code)
	}
	if err := shutdown(); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestReloadCompatibleLive is the headline reload test: on a live
// two-agent daemon, a compatible parameter change (threshold, plus a
// rotated input file) applies to one agent with its full state carried
// — visibly changing its behavior — while the other agent is not
// touched at all and its final state file stays byte-identical to an
// uninterrupted run's.
func TestReloadCompatibleLive(t *testing.T) {
	dir := t.TempDir()
	full := testTrace(t, true)
	t0 := core.DefaultObservationPeriod
	fullPath := saveTestTrace(t, dir, true)
	truncPath := filepath.Join(dir, "trunc.trace")
	if err := trace.Save(truncPath, truncated(full, 20*t0)); err != nil {
		t.Fatal(err)
	}

	// Control: an uninterrupted single run of agent "a"'s spec.
	ctrlState := filepath.Join(dir, "ctrl.json")
	ctrl, _, err := BuildAgent(AgentSpec{Name: "ctrl", Input: fullPath, State: ctrlState}, "syndogd", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SaveState(ctrlState); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	ctrlBytes, err := os.ReadFile(ctrlState)
	if err != nil {
		t.Fatal(err)
	}

	// Supervised pair: "a" must stay untouched; "b" starts with a
	// threshold too high to ever alarm, over the first 20 periods only.
	aState := filepath.Join(dir, "a.json")
	bState := filepath.Join(dir, "b.json")
	specA := AgentSpec{Name: "a", Input: fullPath, State: aState}
	specB := AgentSpec{Name: "b", Input: truncPath, State: bState, Threshold: 1000}
	var log syncBuf
	s, err := NewSupervisor([]AgentSpec{specA, specB}, SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	waitReplayDone(t, base, "a")
	stB := waitReplayDone(t, base, "b")
	if stB.Alarmed || stB.Periods != 20 {
		t.Fatalf("pre-reload b: %+v", stB)
	}
	aGen := s.get("a").gen
	aDaemon := s.get("a").d

	// Reload: b's capture rotates to the full trace and its threshold
	// drops to the default — a compatible change, applied live, state
	// carried. The CUSUM evidence accumulated under threshold 1000 now
	// crosses the default threshold: behavior visibly changes without
	// a process restart.
	specB2 := specB
	specB2.Input = fullPath
	specB2.Threshold = 0 // default 1.05
	code, body := httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{specA, specB2}))
	if code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	res := decodeResults(t, body)
	if res["a"].Action != "unchanged" || res["b"].Action != "updated" {
		t.Fatalf("reload results: %s", body)
	}

	stB = waitReplayDone(t, base, "b")
	if stB.Periods != 30 || stB.ResumeOffset != 20 {
		t.Fatalf("post-reload b: %+v", stB)
	}
	if !stB.Alarmed || stB.AlarmPeriod < 20 {
		t.Fatalf("reload did not change b's behavior: %+v", stB)
	}

	// Agent a was not touched: same daemon, same generation.
	if s.get("a").gen != aGen || s.get("a").d != aDaemon {
		t.Fatal("untouched agent was rebuilt")
	}
	code, body = httpGet(t, base+"/agents")
	var sums []AgentSummary
	if err := json.Unmarshal([]byte(body), &sums); err != nil {
		t.Fatalf("%d %s: %v", code, body, err)
	}
	for _, sum := range sums {
		if sum.Name == "b" && (sum.Generation != 2 || sum.LastAction != ActionMigrated) {
			t.Fatalf("b summary: %+v", sum)
		}
	}

	if err := shutdown(); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown: %v", err)
	}

	// The untouched agent's shutdown state file is byte-identical to
	// the uninterrupted control run — reloads of b cannot perturb a.
	aBytes, err := os.ReadFile(aState)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aBytes, ctrlBytes) {
		t.Fatal("untouched agent state differs from uninterrupted run")
	}

	// And resuming a from that file is still a clean resume.
	agent, _, act, err := LoadOrNewStateWithPolicy(aState, core.Config{}, nil, PolicyError)
	if err != nil || act != ActionResumed || len(agent.Reports()) != 30 {
		t.Fatalf("restart after reload: action %s err %v", act, err)
	}
}

// TestReloadIncompatiblePolicy pins the migrate-or-reset matrix over a
// live daemon: an incompatible change (t0) is refused under the
// default policy, carries the scaled baseline under migrate, and
// starts over under reset.
func TestReloadIncompatiblePolicy(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	spec := AgentSpec{Name: "x", Input: in, State: filepath.Join(dir, "x.json")}
	var log syncBuf
	s, err := NewSupervisor([]AgentSpec{spec}, SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	defer shutdown()
	waitReplayDone(t, base, "x")
	kBar := s.get("x").d.Status().KBar

	// Default policy: refused, agent untouched.
	slow := spec
	slow.T0 = Duration(40 * time.Second)
	code, body := httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{slow}))
	if code != http.StatusOK {
		t.Fatalf("reload: %d %s", code, body)
	}
	res := decodeResults(t, body)
	if res["x"].Action != "error" || !strings.Contains(res["x"].Detail, "onMismatch") {
		t.Fatalf("default policy result: %+v", res["x"])
	}
	if s.get("x").gen != 1 {
		t.Fatal("refused reload still rebuilt the agent")
	}

	// Migrate: K̄ carried (scaled 20s -> 40s), history restarted.
	slow.OnMismatch = PolicyMigrate
	_, body = httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{slow}))
	res = decodeResults(t, body)
	if res["x"].Action != "migrated" {
		t.Fatalf("migrate result: %+v", res["x"])
	}
	st := waitReplayDone(t, base, "x")
	if st.TotalPeriods != 15 || st.T0 != 40*time.Second {
		t.Fatalf("post-migrate: %+v", st)
	}
	mig := s.get("x").d
	if got := mig.agent.Snapshot().KBarPrimed; !got {
		t.Fatal("migrated baseline not primed")
	}
	// The migrated agent replayed the whole trace under t0=40s from a
	// K̄ seeded at 2x the old value; sanity-check the daemon came back
	// with a plausible baseline rather than zero.
	if st.KBar == 0 {
		t.Fatal("migrated run lost its baseline")
	}

	// Reset: start over entirely (change t0 back, policy reset).
	back := spec
	back.OnMismatch = PolicyReset
	_, body = httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{back}))
	res = decodeResults(t, body)
	if res["x"].Action != "reset" {
		t.Fatalf("reset result: %+v", res["x"])
	}
	st = waitReplayDone(t, base, "x")
	if st.TotalPeriods != 30 || st.ResumeOffset != 0 {
		t.Fatalf("post-reset: %+v", st)
	}
	_ = kBar
}

// TestReloadAddRemove: reloads can start brand-new agents and stop
// (final-saving) removed ones.
func TestReloadAddRemove(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	specA := AgentSpec{Name: "a", Input: in}
	specB := AgentSpec{Name: "b", Input: in, State: filepath.Join(dir, "b.json")}
	var log syncBuf
	s, err := NewSupervisor([]AgentSpec{specA, specB}, SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	defer shutdown()
	waitReplayDone(t, base, "b")

	specC := AgentSpec{Name: "c", Input: in}
	_, body := httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{specA, specC}))
	res := decodeResults(t, body)
	if res["c"].Action != "started" || res["b"].Action != "stopped" || res["a"].Action != "unchanged" {
		t.Fatalf("results: %s", body)
	}
	// b's shutdown snapshot was written when it was removed.
	if _, err := os.Stat(filepath.Join(dir, "b.json")); err != nil {
		t.Fatal(err)
	}
	waitReplayDone(t, base, "c")
	if code, _ := httpGet(t, base+"/agents/b/status"); code != http.StatusNotFound {
		t.Fatalf("removed agent still routed: %d", code)
	}

	// A reload with a broken new agent build is reported per-agent and
	// leaves the rest alone.
	specD := AgentSpec{Name: "d", Input: filepath.Join(dir, "missing.trace")}
	_, body = httpPost(t, base+"/reload", reloadBody(t, []AgentSpec{specA, specC, specD}))
	res = decodeResults(t, body)
	if res["d"].Action != "error" || res["a"].Action != "unchanged" {
		t.Fatalf("results: %s", body)
	}

	// Spec-level validation failures reject the whole reload.
	if code, _ := httpPost(t, base+"/reload", `{"agents":[{"name":"a"}]}`); code != http.StatusBadRequest {
		t.Fatalf("invalid reload accepted: %d", code)
	}
	if code, _ := httpPost(t, base+"/reload", `not json`); code != http.StatusBadRequest {
		t.Fatalf("garbage reload accepted: %d", code)
	}
	// Empty body without -config is a 400, not a crash.
	if code, _ := httpPost(t, base+"/reload", ""); code != http.StatusBadRequest {
		t.Fatalf("empty reload accepted: %d", code)
	}
}

// TestReloadFromConfigFile: an empty-body POST /reload re-reads the
// -config file (the HTTP face of SIGHUP).
func TestReloadFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	cfgPath := filepath.Join(dir, "agents.json")
	writeCfg := func(specs []AgentSpec) {
		t.Helper()
		b, err := json.MarshalIndent(specFile{Agents: specs}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cfgPath, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	specA := AgentSpec{Name: "a", Input: in}
	writeCfg([]AgentSpec{specA})
	specs, err := LoadSpecs(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	var log syncBuf
	s, err := NewSupervisor(specs, SupervisorOptions{ProcName: "syndogd", Log: &log, ConfigPath: cfgPath})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	defer shutdown()
	waitReplayDone(t, base, "a")

	writeCfg([]AgentSpec{specA, {Name: "b", Input: in}})
	_, body := httpPost(t, base+"/reload", "")
	res := decodeResults(t, body)
	if res["a"].Action != "unchanged" || res["b"].Action != "started" {
		t.Fatalf("config reload: %s", body)
	}
	waitReplayDone(t, base, "b")

	// ReloadFromConfig is the same path (SIGHUP handler).
	writeCfg([]AgentSpec{specA})
	rs, err := s.ReloadFromConfig()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Name == "b" && r.Action == "stopped" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SIGHUP reload results: %+v", rs)
	}
}

// TestDebugBundle: /debug/bundle streams a tar.gz with config and
// per-agent diagnostics.
func TestDebugBundle(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	specs := []AgentSpec{
		{Name: "a", Input: in, State: filepath.Join(dir, "a.json"), TrackSources: true, KeyBits: 8, MaxSources: 64},
		{Name: "b", Input: in, Detector: "static-threshold"},
	}
	var log syncBuf
	s, err := NewSupervisor(specs, SupervisorOptions{ProcName: "syndogd", Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	base, shutdown := startSupervisor(t, s, &log)
	defer shutdown()
	waitReplayDone(t, base, "a")
	waitReplayDone(t, base, "b")

	resp, err := http.Get(base + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/gzip" {
		t.Fatalf("bundle response: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries[hdr.Name] = data
	}
	for _, want := range []string{
		"bundle/config.json",
		"bundle/agents/a/status.json",
		"bundle/agents/a/reports.json",
		"bundle/agents/a/sources.json",
		"bundle/agents/a/metrics.txt",
		"bundle/agents/a/state.json", // cusum agent: snapshot included
		"bundle/agents/b/status.json",
		"bundle/agents/b/metrics.txt",
	} {
		if _, ok := entries[want]; !ok {
			t.Fatalf("bundle missing %s; have %v", want, mapKeys(entries))
		}
	}
	// The baseline agent carries no snapshot state.
	if _, ok := entries["bundle/agents/b/state.json"]; ok {
		t.Fatal("baseline agent has state.json in bundle")
	}
	var st Status
	if err := json.Unmarshal(entries["bundle/agents/a/status.json"], &st); err != nil {
		t.Fatal(err)
	}
	if !st.Alarmed || st.Periods != 30 {
		t.Fatalf("bundle status: %+v", st)
	}
	if !bytes.Contains(entries["bundle/agents/a/metrics.txt"], []byte("syndog_periods_total 30")) {
		t.Fatal("bundle metrics incomplete")
	}
	var cfg specFile
	if err := json.Unmarshal(entries["bundle/config.json"], &cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Agents) != 2 || cfg.Agents[0].Name != "a" {
		t.Fatalf("bundle config: %+v", cfg)
	}
}

func mapKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSupervisorBuildFailure: one bad agent fails the whole startup,
// and already-built agents are released.
func TestSupervisorBuildFailure(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	_, err := NewSupervisor([]AgentSpec{
		{Name: "ok", Input: in},
		{Name: "bad", Input: filepath.Join(dir, "missing.trace")},
	}, SupervisorOptions{Log: io.Discard})
	if err == nil {
		t.Fatal("supervisor built despite missing input")
	}
	if _, err := NewSupervisor(nil, SupervisorOptions{Log: io.Discard}); err == nil {
		t.Fatal("supervisor built with no agents")
	}
	if _, err := NewSupervisor([]AgentSpec{
		{Name: "dup", Input: in}, {Name: "dup", Input: in},
	}, SupervisorOptions{Log: io.Discard}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names: %v", err)
	}
}
