package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
)

// SupervisorOptions configures a Supervisor beyond its agent specs.
type SupervisorOptions struct {
	// ProcName prefixes log lines and notices (default "daemon").
	ProcName string
	// Log receives the banner, resume/migration notices and per-agent
	// checkpoint messages (default os.Stderr).
	Log io.Writer
	// Speed is the replay pacing shared by every agent (0 = instant).
	Speed float64
	// ConfigPath, when set, is re-read on an empty-body POST /reload
	// (and by ReloadFromConfig, which cmd/syndogd wires to SIGHUP).
	ConfigPath string
	// Summary shapes every agent's exported summaries: the censoring
	// threshold λ and digest budget applied to /summaries and the
	// uplink. Local state (reports, metrics, snapshots) always keeps
	// full fidelity.
	Summary summary.Config
	// Uplink, when non-nil, streams every agent's closed-period
	// summaries to a fusion coordinator, each stamped with its spec
	// name. The caller owns (and closes) the uplink; the supervisor
	// only exposes its delivery counters on /metrics.
	Uplink *summary.Uplink
	// Pprof mounts net/http/pprof under /debug/pprof on the shared mux.
	// Off by default: profiling endpoints are a diagnostic surface the
	// operator must ask for.
	Pprof bool
}

// managedAgent is one supervised daemon plus its lifecycle state. The
// daemon itself is immutable once built; reloads build a replacement
// and swap the pointer, so readers holding the old one stay safe.
type managedAgent struct {
	spec   AgentSpec
	d      *Daemon
	h      http.Handler // cached d.Handler(); one mux per build
	gen    int          // bumped on every rebuild
	action StateAction  // how its state was obtained at the last build

	cancel  context.CancelFunc
	done    chan struct{}
	running bool

	errMu  sync.Mutex
	runErr error // non-cancel replay error, set when the run goroutine exits
}

func (ma *managedAgent) setErr(err error) {
	ma.errMu.Lock()
	ma.runErr = err
	ma.errMu.Unlock()
}

func (ma *managedAgent) err() error {
	ma.errMu.Lock()
	defer ma.errMu.Unlock()
	return ma.runErr
}

// Supervisor runs N agents in one process behind one HTTP plane: each
// agent replays its own capture with its own detector and state file,
// while /agents/{name}/... routes to per-agent endpoints, the root
// endpoints aggregate, and Reload applies a new spec set to the
// running process.
type Supervisor struct {
	opts SupervisorOptions

	mu     sync.Mutex
	agents map[string]*managedAgent
	order  []string // insertion order: stable listings and metrics

	reloadMu sync.Mutex // serializes Reload; never held with mu

	// reloads is the ring-buffered audit history served by GET
	// /reloads: newest last, capped at reloadHistoryCap events.
	reloads   []ReloadEvent
	reloadSeq int // total reloads ever applied (ring positions survive eviction)

	runCtx  context.Context // set by Run; agents started later inherit it
	started bool
	exitCh  chan struct{} // poked (cap 1) whenever an agent run exits
}

// env returns the build environment shared by every agent build and
// rebuild: process naming/logging plus the summary-export shape and
// the optional fusion uplink.
func (s *Supervisor) env() BuildEnv {
	return BuildEnv{
		ProcName: s.opts.ProcName,
		Log:      s.opts.Log,
		Summary:  s.opts.Summary,
		Uplink:   s.opts.Uplink,
	}
}

// NewSupervisor validates specs and builds every agent — strictly: one
// bad spec, unreadable input or refused snapshot fails the whole
// startup, exactly like the single-agent daemon. Replay does not start
// until Run.
func NewSupervisor(specs []AgentSpec, opts SupervisorOptions) (*Supervisor, error) {
	if opts.ProcName == "" {
		opts.ProcName = "daemon"
	}
	if opts.Log == nil {
		opts.Log = os.Stderr
	}
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	s := &Supervisor{
		opts:   opts,
		agents: make(map[string]*managedAgent, len(specs)),
		exitCh: make(chan struct{}, 1),
	}
	for _, sp := range specs {
		d, act, err := BuildAgentEnv(sp, s.env())
		if err != nil {
			s.closeAll()
			return nil, err
		}
		s.agents[sp.Name] = &managedAgent{spec: sp, d: d, h: d.Handler(), gen: 1, action: act}
		s.order = append(s.order, sp.Name)
	}
	return s, nil
}

// validateSpecs checks every spec and name uniqueness.
func validateSpecs(specs []AgentSpec) error {
	if len(specs) == 0 {
		return errors.New("no agents defined")
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			return err
		}
		if seen[sp.Name] {
			return fmt.Errorf("duplicate agent name %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	return nil
}

// closeAll releases every agent's source (build-failure cleanup and
// shutdown).
func (s *Supervisor) closeAll() {
	for _, ma := range s.agents {
		_ = ma.d.Close()
	}
}

// snapshot returns the current agents in listing order.
func (s *Supervisor) snapshot() []*managedAgent {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*managedAgent, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.agents[name])
	}
	return out
}

func (s *Supervisor) get(name string) *managedAgent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.agents[name]
}

// agentRef is a race-free view of one agent for HTTP handlers: the
// fields a handler needs, copied under the supervisor lock so a
// concurrent reload swap never tears them.
type agentRef struct {
	name string
	d    *Daemon
	h    http.Handler
}

func (s *Supervisor) refs() []agentRef {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]agentRef, 0, len(s.order))
	for _, name := range s.order {
		ma := s.agents[name]
		out = append(out, agentRef{name: name, d: ma.d, h: ma.h})
	}
	return out
}

// startAgent launches ma's replay under the supervisor's run context.
func (s *Supervisor) startAgent(ma *managedAgent) {
	s.mu.Lock()
	actx, cancel := context.WithCancel(s.runCtx)
	ma.cancel = cancel
	ma.done = make(chan struct{})
	ma.running = true
	s.mu.Unlock()
	go func() {
		err := ma.d.Run(actx, s.opts.Speed)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			ma.setErr(err)
			fmt.Fprintf(s.opts.Log, "%s: agent %s: replay: %v\n", s.opts.ProcName, ma.spec.Name, err)
		}
		close(ma.done)
		select {
		case s.exitCh <- struct{}{}:
		default:
		}
	}()
}

// stopAgent cancels ma's replay and waits for it to settle. Safe on an
// agent that was never started or already finished.
func (s *Supervisor) stopAgent(ma *managedAgent) {
	s.mu.Lock()
	cancel, done := ma.cancel, ma.done
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	s.mu.Lock()
	ma.running = false
	s.mu.Unlock()
}

// finalSave writes ma's shutdown snapshot when it persists state.
func (s *Supervisor) finalSave(ma *managedAgent) error {
	if ma.spec.State == "" || !ma.spec.cusum() {
		return nil
	}
	return ma.d.SaveState(ma.spec.State)
}

// Run starts every agent's replay and serves the shared HTTP plane on
// listen, returning when ctx is cancelled (agents get final
// snapshots), the listener fails, or every agent has finished and at
// least one failed — the single-agent exit semantics, generalized.
func (s *Supervisor) Run(ctx context.Context, listen string) error {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.runCtx = ctx
	s.started = true
	agents := make([]*managedAgent, 0, len(s.order))
	for _, name := range s.order {
		agents = append(agents, s.agents[name])
	}
	s.mu.Unlock()

	s.banner(ln.Addr())
	for _, ma := range agents {
		s.startAgent(ma)
	}

	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	shutdown := func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}
	finish := func() error {
		// Reloads are done (the server is down or going down); settle
		// every agent and persist final snapshots.
		s.reloadMu.Lock()
		defer s.reloadMu.Unlock()
		var firstErr error
		for _, ma := range s.snapshot() {
			s.stopAgent(ma)
			if err := s.finalSave(ma); err != nil && firstErr == nil {
				firstErr = err
			}
			_ = ma.d.Close()
		}
		return firstErr
	}

	for {
		select {
		case <-ctx.Done():
			shutdown()
			if err := finish(); err != nil {
				return err
			}
			return ctx.Err()
		case err := <-serveErr:
			_ = finish()
			return err
		case <-s.exitCh:
			// An agent's replay exited. If every agent has now settled
			// and any failed, shut the process down non-zero — one
			// failed agent in a one-agent daemon is the historical
			// Serve behavior. While any agent still runs (or all
			// succeeded), keep serving.
			var failed error
			alive := false
			for _, ma := range s.snapshot() {
				s.mu.Lock()
				done := ma.done
				s.mu.Unlock()
				select {
				case <-done:
					if err := ma.err(); err != nil && failed == nil {
						failed = err
					}
				default:
					alive = true
				}
			}
			if failed != nil && !alive {
				shutdown()
				if err := finish(); err != nil {
					return err
				}
				return fmt.Errorf("replay: %w", failed)
			}
		}
	}
}

// banner prints the startup line. The single-agent form is unchanged
// from the pre-supervisor daemon (operators and the e2e tests parse
// it); multiple agents get a summary line.
func (s *Supervisor) banner(addr net.Addr) {
	agents := s.snapshot()
	if len(agents) == 1 {
		d := agents[0].d
		if d.srcRecords >= 0 {
			fmt.Fprintf(s.opts.Log, "%s: serving on http://%s (trace %q, %d records, %d/%d periods done)\n",
				s.opts.ProcName, addr, d.srcName, d.srcRecords, d.resumeOffset, d.totalPeriods)
		} else {
			fmt.Fprintf(s.opts.Log, "%s: serving on http://%s (trace %q, streaming, %d/%d periods done)\n",
				s.opts.ProcName, addr, d.srcName, d.resumeOffset, d.totalPeriods)
		}
		return
	}
	names := make([]string, len(agents))
	for i, ma := range agents {
		names[i] = ma.spec.Name
	}
	fmt.Fprintf(s.opts.Log, "%s: serving on http://%s (%d agents: %s)\n",
		s.opts.ProcName, addr, len(agents), strings.Join(names, ", "))
}

// ReloadResult is one agent's outcome from a Reload.
type ReloadResult struct {
	Name string `json:"name"`
	// Action: unchanged, updated (compatible change applied with full
	// state carried), migrated, reset, started, stopped, or error.
	Action string `json:"action"`
	Detail string `json:"detail,omitempty"`
}

// reloadHistoryCap bounds the /reloads audit ring. 64 reloads of
// history costs a few kilobytes and covers weeks of operation; older
// events age out, their positions preserved by Seq.
const reloadHistoryCap = 64

// ReloadEvent is one /reloads audit entry: when a reload was applied,
// a compact summary of the spec diff it carried, and every agent's
// outcome — the durable form of the per-reload log lines.
type ReloadEvent struct {
	// Seq numbers reloads from 1 across the process lifetime; it keeps
	// counting after older events age out of the ring.
	Seq int `json:"seq"`
	// At is when the reload finished applying (UTC).
	At time.Time `json:"at"`
	// Diff summarizes the spec change by outcome, e.g.
	// "2 unchanged, 1 updated, 1 started".
	Diff string `json:"diff"`
	// Results is every agent's outcome, in application order.
	Results []ReloadResult `json:"results"`
}

// recordReload appends one audit entry to the ring.
func (s *Supervisor) recordReload(results []ReloadResult) {
	counts := make(map[string]int)
	for _, r := range results {
		counts[r.Action]++
	}
	var parts []string
	for _, a := range []string{"unchanged", "updated", "migrated", "reset", "started", "stopped", "error"} {
		if n := counts[a]; n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, a))
		}
	}
	s.mu.Lock()
	s.reloadSeq++
	s.reloads = append(s.reloads, ReloadEvent{
		Seq:     s.reloadSeq,
		At:      time.Now().UTC(),
		Diff:    strings.Join(parts, ", "),
		Results: slices.Clone(results),
	})
	if len(s.reloads) > reloadHistoryCap {
		s.reloads = slices.Clone(s.reloads[len(s.reloads)-reloadHistoryCap:])
	}
	s.mu.Unlock()
}

// ReloadHistory returns the retained reload audit events, oldest
// first.
func (s *Supervisor) ReloadHistory() []ReloadEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.reloads)
}

// compatibleChange reports whether the old→new spec change can be
// applied with the full detector state carried: same detector, same
// observation period, and no keyed re-keying or tracking loss.
// Everything else — alpha, a, N, max-sources, checkpoint interval,
// state path, input file, enabling tracking — is compatible.
func compatibleChange(oldSpec, newSpec AgentSpec) bool {
	o, n := oldSpec.effective(), newSpec.effective()
	switch {
	case o.Detector != n.Detector:
		return false
	case o.T0 != n.T0:
		return false
	case o.TrackSources && !n.TrackSources:
		return false
	case o.TrackSources && n.TrackSources && o.KeyBits != n.KeyBits:
		return false
	}
	return true
}

// Reload applies a new spec set to the running supervisor:
//
//   - Agents whose effective spec is unchanged are not touched at all —
//     their replay, daemon and state keep running undisturbed (their
//     on-disk snapshots stay byte-identical).
//   - Compatible changes (alpha/a/N, max-sources, checkpoint interval,
//     state path, input) stop the agent, carry its full live state
//     through MigrateState, and restart it under the new parameters.
//   - Incompatible changes (t0, detector, key bits, disabling
//     tracking) follow the new spec's OnMismatch policy: error leaves
//     the agent running untouched; migrate carries what MigrateState
//     can; reset starts fresh.
//   - Specs with new names start new agents; running agents missing
//     from the new set are stopped, final-saved and removed.
//
// Spec-level validation failures reject the whole reload before any
// agent is disturbed. Per-agent build failures surface as "error"
// results; the reload attempts to restart such an agent under its old
// spec so one typo cannot silently kill a healthy detector.
func (s *Supervisor) Reload(specs []AgentSpec) ([]ReloadResult, error) {
	if err := validateSpecs(specs); err != nil {
		return nil, err
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil, errors.New("supervisor not running")
	}
	s.mu.Unlock()

	results := make([]ReloadResult, 0, len(specs))
	inNew := make(map[string]bool, len(specs))
	for _, sp := range specs {
		inNew[sp.Name] = true
		ma := s.get(sp.Name)
		switch {
		case ma == nil:
			results = append(results, s.reloadAdd(sp))
		default:
			results = append(results, s.reloadApply(ma, sp))
		}
	}
	// Stop agents the new set no longer mentions.
	for _, ma := range s.snapshot() {
		if inNew[ma.spec.Name] {
			continue
		}
		s.stopAgent(ma)
		res := ReloadResult{Name: ma.spec.Name, Action: "stopped"}
		if err := s.finalSave(ma); err != nil {
			res.Detail = fmt.Sprintf("final snapshot: %v", err)
		}
		_ = ma.d.Close()
		s.mu.Lock()
		delete(s.agents, ma.spec.Name)
		s.order = slices.DeleteFunc(s.order, func(n string) bool { return n == ma.spec.Name })
		s.mu.Unlock()
		results = append(results, res)
	}
	for _, r := range results {
		fmt.Fprintf(s.opts.Log, "%s: reload: agent %s: %s%s\n", s.opts.ProcName, r.Name, r.Action,
			map[bool]string{true: " (" + r.Detail + ")", false: ""}[r.Detail != ""])
	}
	s.recordReload(results)
	return results, nil
}

// reloadAdd starts a brand-new agent from sp.
func (s *Supervisor) reloadAdd(sp AgentSpec) ReloadResult {
	d, act, err := BuildAgentEnv(sp, s.env())
	if err != nil {
		return ReloadResult{Name: sp.Name, Action: "error", Detail: err.Error()}
	}
	ma := &managedAgent{spec: sp, d: d, h: d.Handler(), gen: 1, action: act}
	s.mu.Lock()
	s.agents[sp.Name] = ma
	s.order = append(s.order, sp.Name)
	s.mu.Unlock()
	s.startAgent(ma)
	return ReloadResult{Name: sp.Name, Action: "started", Detail: string(act)}
}

// reloadApply applies a changed spec to a running agent.
func (s *Supervisor) reloadApply(ma *managedAgent, sp AgentSpec) ReloadResult {
	if ma.spec.effective() == sp.effective() {
		// Same effective configuration: the agent is untouched. The
		// spec is still adopted — OnMismatch (policy, not config) may
		// have changed and should govern future reloads.
		s.mu.Lock()
		ma.spec = sp
		s.mu.Unlock()
		return ReloadResult{Name: sp.Name, Action: "unchanged"}
	}
	compatible := compatibleChange(ma.spec, sp)
	if !compatible && sp.policy() == PolicyError {
		return ReloadResult{Name: sp.Name, Action: "error",
			Detail: "incompatible change (t0, detector, key bits or tracking) needs onMismatch migrate or reset"}
	}

	// Stop the old replay and capture its live state — fresher than the
	// last on-disk checkpoint.
	s.stopAgent(ma)
	var st *State
	if ma.spec.cusum() {
		if v, err := ma.d.State(); err == nil {
			st = &v
		}
	}
	_ = ma.d.Close()

	d2, err := s.rebuild(sp, st, compatible)
	if err != nil {
		// The new spec does not build (bad input path, trace shorter
		// than the carried history, ...). Put the old agent back from
		// its captured state so a typo never kills a healthy detector.
		detail := err.Error()
		if restoreErr := s.revive(ma, st); restoreErr != nil {
			return ReloadResult{Name: sp.Name, Action: "error",
				Detail: fmt.Sprintf("%v; restoring previous spec also failed: %v (agent stopped)", detail, restoreErr)}
		}
		return ReloadResult{Name: sp.Name, Action: "error",
			Detail: detail + "; previous spec kept running"}
	}

	resAction, action := "updated", ActionMigrated
	switch {
	case st == nil || !sp.cusum():
		// Baselines carry no state across a rebuild, into or out of.
		resAction, action = "reset", ActionReset
	case !compatible && sp.policy() == PolicyReset:
		resAction, action = "reset", ActionReset
	case !compatible:
		resAction, action = "migrated", ActionMigrated
	}
	s.swap(ma, sp, d2, action)
	// Persist the rewritten state immediately: a crash right after a
	// reload must come back under the new parameters.
	if newMa := s.get(sp.Name); newMa != nil {
		if err := s.finalSave(newMa); err != nil {
			fmt.Fprintf(s.opts.Log, "%s: reload: agent %s: snapshot: %v\n", s.opts.ProcName, sp.Name, err)
		}
	}
	return ReloadResult{Name: sp.Name, Action: resAction}
}

// rebuild constructs the replacement daemon for a changed spec. st is
// the captured live state (nil for baselines). Compatible changes and
// PolicyMigrate carry state through MigrateState; everything else
// starts the detector fresh — deliberately without consulting the
// on-disk snapshot, which the reset just invalidated.
func (s *Supervisor) rebuild(sp AgentSpec, st *State, compatible bool) (*Daemon, error) {
	cfg := sp.coreConfig()
	track := sp.trackConfig()
	if st != nil && sp.cusum() && (compatible || sp.policy() == PolicyMigrate) {
		agent, tracker, err := restoreState(MigrateState(*st, cfg, track), track)
		if err != nil {
			return nil, err
		}
		return assemble(sp, ingest.WrapAgent(agent), tracker, s.env())
	}
	var det ingest.Detector
	var tracker *sourcetrack.Tracker
	if sp.cusum() {
		agent, err := core.NewAgent(cfg)
		if err != nil {
			return nil, err
		}
		if track != nil {
			if tracker, err = sourcetrack.New(*track); err != nil {
				return nil, err
			}
		}
		det = ingest.WrapAgent(agent)
	} else {
		var err error
		if det, err = ingest.NewDetector(sp.Detector, ingest.DetectorConfig{Agent: cfg}); err != nil {
			return nil, err
		}
	}
	return assemble(sp, det, tracker, s.env())
}

// revive restarts ma under its old spec after a failed rebuild.
func (s *Supervisor) revive(ma *managedAgent, st *State) error {
	var d *Daemon
	var err error
	if st != nil {
		a, tr, rerr := restoreState(*st, ma.spec.trackConfig())
		if rerr != nil {
			return rerr
		}
		d, err = assemble(ma.spec, ingest.WrapAgent(a), tr, s.env())
	} else {
		d, _, err = BuildAgentEnv(ma.spec, s.env())
	}
	if err != nil {
		s.mu.Lock()
		delete(s.agents, ma.spec.Name)
		s.order = slices.DeleteFunc(s.order, func(n string) bool { return n == ma.spec.Name })
		s.mu.Unlock()
		return err
	}
	s.swap(ma, ma.spec, d, ma.action)
	return nil
}

// swap replaces ma's daemon with d under spec and restarts its replay.
func (s *Supervisor) swap(ma *managedAgent, sp AgentSpec, d *Daemon, action StateAction) {
	s.mu.Lock()
	ma.spec = sp
	ma.d = d
	ma.h = d.Handler()
	ma.gen++
	ma.action = action
	ma.setErr(nil)
	s.mu.Unlock()
	s.startAgent(ma)
}

// ReloadFromConfig re-reads ConfigPath and applies it — the SIGHUP
// handler.
func (s *Supervisor) ReloadFromConfig() ([]ReloadResult, error) {
	if s.opts.ConfigPath == "" {
		return nil, errors.New("reload: no -config file to re-read")
	}
	specs, err := LoadSpecs(s.opts.ConfigPath)
	if err != nil {
		return nil, err
	}
	return s.Reload(specs)
}

// Specs returns the current effective spec set (reload-adopted), in
// listing order.
func (s *Supervisor) Specs() []AgentSpec {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AgentSpec, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.agents[name].spec)
	}
	return out
}

// AgentSummary is one row of the /agents listing.
type AgentSummary struct {
	Name       string      `json:"name"`
	Detector   string      `json:"detector"`
	Input      string      `json:"input"`
	Generation int         `json:"generation"`
	LastAction StateAction `json:"lastStateAction"`
	Running    bool        `json:"running"`
	Status     Status      `json:"status"`
}

func (s *Supervisor) summaries() []AgentSummary {
	agents := s.snapshot()
	out := make([]AgentSummary, 0, len(agents))
	for _, ma := range agents {
		s.mu.Lock()
		sum := AgentSummary{
			Name:       ma.spec.Name,
			Detector:   ma.spec.effective().Detector,
			Input:      ma.spec.Input,
			Generation: ma.gen,
			LastAction: ma.action,
			Running:    ma.running,
		}
		d := ma.d
		s.mu.Unlock()
		sum.Status = d.Status()
		out = append(out, sum)
	}
	return out
}

// Handler builds the shared HTTP plane:
//
//	GET  /agents                  -> JSON agent summaries
//	ANY  /agents/{name}/{rest}    -> that agent's daemon endpoints
//	GET  /healthz                 -> aggregate health (503 lists failed agents)
//	GET  /status                  -> single agent: its Status (unchanged shape);
//	                                 multiple: {"agents": {name: Status}}
//	GET  /metrics                 -> single agent: unchanged exposition;
//	                                 multiple: {agent="name"}-labeled samples
//	GET  /reports, /summaries, /sources -> single agent only (404 otherwise)
//	POST /reload                  -> apply specs (JSON body, or re-read -config
//	                                 on an empty body); JSON results
//	GET  /reloads                 -> ring-buffered reload audit history
//	GET  /debug/bundle            -> tar.gz diagnostic bundle
//	GET  /debug/pprof/...         -> net/http/pprof (only with Pprof set)
func (s *Supervisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /agents", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.summaries())
	})
	proxy := func(w http.ResponseWriter, r *http.Request, rest string) {
		name := r.PathValue("name")
		var h http.Handler
		for _, a := range s.refs() {
			if a.name == name {
				h = a.h
				break
			}
		}
		if h == nil {
			http.Error(w, "no such agent", http.StatusNotFound)
			return
		}
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/" + rest
		h.ServeHTTP(w, r2)
	}
	mux.HandleFunc("/agents/{name}/{rest...}", func(w http.ResponseWriter, r *http.Request) {
		proxy(w, r, r.PathValue("rest"))
	})
	mux.HandleFunc("GET /agents/{name}", func(w http.ResponseWriter, r *http.Request) {
		proxy(w, r, "status")
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		var failed []string
		for _, a := range s.refs() {
			if st := a.d.Status(); st.ReplayError != "" {
				failed = append(failed, fmt.Sprintf("%s: %s", a.name, st.ReplayError))
			}
		}
		if len(failed) > 0 {
			http.Error(w, "replay failed: "+strings.Join(failed, "; "), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		agents := s.refs()
		if len(agents) == 1 {
			_ = json.NewEncoder(w).Encode(agents[0].d.Status())
			return
		}
		statuses := make(map[string]Status, len(agents))
		for _, a := range agents {
			statuses[a.name] = a.d.Status()
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"agents": statuses})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		agents := s.refs()
		if len(agents) == 1 {
			writeMetrics(w, agents[0].d.Status())
		} else {
			sts := make([]agentStatus, len(agents))
			for i, a := range agents {
				sts[i] = agentStatus{Name: a.name, Status: a.d.Status()}
			}
			writeMetricsLabeled(w, sts)
		}
		// Process-wide uplink delivery counters, only when an uplink is
		// configured — the default exposition stays byte-identical.
		if u := s.opts.Uplink; u != nil {
			fmt.Fprintf(w, "# TYPE syndog_uplink_sent_total counter\nsyndog_uplink_sent_total %d\n", u.Sent())
			fmt.Fprintf(w, "# TYPE syndog_uplink_dropped_total counter\nsyndog_uplink_dropped_total %d\n", u.Dropped())
			fmt.Fprintf(w, "# TYPE syndog_uplink_failures_total counter\nsyndog_uplink_failures_total %d\n", u.Failures())
		}
	})
	mux.HandleFunc("GET /reloads", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.ReloadHistory())
	})
	single := func(w http.ResponseWriter, r *http.Request, rest string) {
		agents := s.refs()
		if len(agents) != 1 {
			http.Error(w, "multiple agents: use /agents/{name}/"+rest, http.StatusNotFound)
			return
		}
		agents[0].h.ServeHTTP(w, r)
	}
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, r *http.Request) {
		single(w, r, "reports")
	})
	mux.HandleFunc("GET /summaries", func(w http.ResponseWriter, r *http.Request) {
		single(w, r, "summaries")
	})
	mux.HandleFunc("GET /sources", func(w http.ResponseWriter, r *http.Request) {
		single(w, r, "sources")
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var specs []AgentSpec
		if len(strings.TrimSpace(string(body))) == 0 {
			if s.opts.ConfigPath == "" {
				http.Error(w, "empty body and no -config file to re-read", http.StatusBadRequest)
				return
			}
			if specs, err = LoadSpecs(s.opts.ConfigPath); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		} else if specs, err = ParseSpecs(body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results, err := s.Reload(specs)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(results)
	})
	mux.HandleFunc("GET /debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		s.serveBundle(w, r)
	})
	if s.opts.Pprof {
		// Profiling endpoints are opt-in (-pprof): a diagnostic surface
		// the operator must ask for, never on by default.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
