package daemon

import (
	"fmt"
	"io"
)

// latencyBounds are the shared upper bounds (seconds) of the daemon's
// latency histograms. Period closes and checkpoint writes both live in
// the 10µs–100ms range on healthy hosts, so a decade ladder from 10µs
// to 1s separates "fine" from "disk is unhappy" without per-metric
// tuning.
var latencyBounds = [...]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// latencyHist is a fixed-bound latency histogram in the Prometheus
// exposition shape: per-bound bin counts plus a running sum and count.
// It is not internally synchronized — the daemon mutates it under d.mu
// like the rest of its replay state.
type latencyHist struct {
	bins  [len(latencyBounds)]uint64
	over  uint64 // observations beyond the last bound (+Inf bin)
	count uint64
	sum   float64
}

// observe records one latency in seconds.
func (h *latencyHist) observe(seconds float64) {
	h.count++
	h.sum += seconds
	for i, b := range latencyBounds {
		if seconds <= b {
			h.bins[i]++
			return
		}
	}
	h.over++
}

// snapshot copies the histogram for lock-free rendering.
func (h *latencyHist) snapshot() LatencySnapshot {
	s := LatencySnapshot{Count: h.count, Sum: h.sum}
	copy(s.Bins[:], h.bins[:])
	s.Over = h.over
	return s
}

// LatencySnapshot is a point-in-time copy of a latency histogram,
// carried on Status for the metrics renderer. It is deliberately kept
// out of the /status JSON contract.
type LatencySnapshot struct {
	Bins  [len(latencyBounds)]uint64
	Over  uint64
	Count uint64
	Sum   float64
}

// writeHistogram renders one histogram family in Prometheus exposition
// format: cumulative le-labelled buckets, then _sum and _count. labels
// is rendered inside the brace set alongside le (empty for the
// single-agent plane).
func writeHistogram(w io.Writer, name, help string, extraLabel string, s LatencySnapshot) {
	writeHistogramHeader(w, name, help)
	writeHistogramSamples(w, name, extraLabel, s)
}

// writeHistogramHeader emits the family's HELP/TYPE pair — exactly
// once per family, even when the labeled exposition renders one sample
// set per agent.
func writeHistogramHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
}

// writeHistogramSamples emits one snapshot's bucket/sum/count lines.
func writeHistogramSamples(w io.Writer, name, extraLabel string, s LatencySnapshot) {
	sep, plain := "", ""
	if extraLabel != "" {
		sep = extraLabel + ","
		plain = "{" + extraLabel + "}"
	}
	var cum uint64
	for i, b := range latencyBounds {
		cum += s.Bins[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, trimFloat(b), cum)
	}
	cum += s.Over
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, plain, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, plain, s.Count)
}

// trimFloat renders a bound the way Prometheus clients conventionally
// do (1e-05 → "1e-05", 1 → "1").
func trimFloat(f float64) string {
	return fmt.Sprintf("%g", f)
}
