package daemon

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sourcetrack"
)

// keyedTrackConfig keys the flood-bearing test trace at /8: the
// spoofed 240.0.0.0/4 sources concentrate onto 16 keys (detectable
// per-key rates), while Auckland's 130.216/16 clients collapse onto
// one balanced key.
func keyedTrackConfig() *sourcetrack.Config {
	return &sourcetrack.Config{KeyBits: 8, MaxSources: 64}
}

// TestKeyedResumeEquivalence extends the headline resume invariant to
// the keyed half: stop a tracking daemon at an arbitrary period,
// resume from its state file, finish the trace — and the final state
// file and /sources payload are byte-identical to an uninterrupted
// tracking run.
func TestKeyedResumeEquivalence(t *testing.T) {
	tr := testTrace(t, true)
	t0 := core.DefaultObservationPeriod
	dir := t.TempDir()

	run := func(statePath string, full bool, k int) (stateBytes, sources string) {
		t.Helper()
		agent, tracker, _, err := LoadOrNewState(statePath, core.Config{}, keyedTrackConfig())
		if err != nil {
			t.Fatal(err)
		}
		replay := tr
		if !full {
			replay = truncated(tr, time.Duration(k)*t0)
		}
		d, err := New(agent, replay, Options{Tracker: tracker})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Replay(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if err := d.SaveState(statePath); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(statePath)
		if err != nil {
			t.Fatal(err)
		}
		_, body := get(t, d, "/sources")
		return string(b), body
	}

	refPath := filepath.Join(dir, "ref.json")
	wantState, wantSources := run(refPath, true, 0)
	if !strings.Contains(wantSources, `"alarmed":true`) {
		t.Fatalf("reference run attributed no source:\n%s", wantSources)
	}

	for _, k := range []int{1, 9, 17, 30} {
		path := filepath.Join(dir, "resume.json")
		run(path, false, k) // first boot: k periods, then stop
		gotState, gotSources := run(path, true, 0)
		if gotState != wantState {
			t.Errorf("k=%d: resumed state file differs from uninterrupted run", k)
		}
		if gotSources != wantSources {
			t.Errorf("k=%d: resumed /sources differs from uninterrupted run", k)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadOrNewState(t *testing.T) {
	dir := t.TempDir()
	tr := testTrace(t, true)

	// Empty path and missing file: fresh agent, fresh tracker.
	for _, path := range []string{"", filepath.Join(dir, "none.json")} {
		agent, tracker, resumed, err := LoadOrNewState(path, core.Config{}, keyedTrackConfig())
		if err != nil {
			t.Fatal(err)
		}
		if resumed || len(agent.Reports()) != 0 || tracker == nil || tracker.Periods() != 0 {
			t.Errorf("path %q: fresh state resumed=%v tracker=%v", path, resumed, tracker)
		}
	}
	// Tracking disabled: no tracker comes back.
	if _, tracker, _, err := LoadOrNewState("", core.Config{}, nil); err != nil || tracker != nil {
		t.Errorf("track=nil built tracker %v (err %v)", tracker, err)
	}

	// An aggregate-only snapshot resumes with keyed tracking enabled:
	// the tracker fast-forwards to the agent's period clock.
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	aggPath := filepath.Join(dir, "agg.json")
	if err := WriteSnapshotFile(agent.Snapshot(), aggPath); err != nil {
		t.Fatal(err)
	}
	a2, tracker, resumed, err := LoadOrNewState(aggPath, core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || tracker == nil || tracker.Periods() != len(a2.Reports()) {
		t.Fatalf("aggregate-only resume: resumed=%v tracker periods=%d agent periods=%d",
			resumed, tracker.Periods(), len(a2.Reports()))
	}

	// Build a keyed state file via a tracking daemon.
	agent3, tracker3, _, err := LoadOrNewState("", core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(agent3, tr, Options{Tracker: tracker3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	keyedPath := filepath.Join(dir, "keyed.json")
	if err := d.SaveState(keyedPath); err != nil {
		t.Fatal(err)
	}

	// Resuming a keyed file without tracking would silently drop the
	// per-key evidence — hard error.
	if _, _, _, err := LoadOrNewState(keyedPath, core.Config{}, nil); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("keyed file without -track-sources: err = %v, want ErrConfigMismatch", err)
	}
	// Changed keying is the keyed config mismatch.
	if _, _, _, err := LoadOrNewState(keyedPath, core.Config{}, &sourcetrack.Config{KeyBits: 16, MaxSources: 64}); !errors.Is(err, sourcetrack.ErrConfigMismatch) {
		t.Errorf("key-bits change: err = %v, want sourcetrack.ErrConfigMismatch", err)
	}
	if _, _, _, err := LoadOrNewState(keyedPath, core.Config{}, &sourcetrack.Config{KeyBits: 8, MaxSources: 32}); !errors.Is(err, sourcetrack.ErrConfigMismatch) {
		t.Errorf("max-sources change: err = %v, want sourcetrack.ErrConfigMismatch", err)
	}
	// The aggregate mismatch check still fires first.
	if _, _, _, err := LoadOrNewState(keyedPath, core.Config{T0: 30 * time.Second}, keyedTrackConfig()); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("t0 change: err = %v, want ErrConfigMismatch", err)
	}
	// Matching config resumes both halves, aligned.
	a4, tracker4, resumed, err := LoadOrNewState(keyedPath, core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || tracker4 == nil || tracker4.Periods() != len(a4.Reports()) {
		t.Fatalf("keyed resume: resumed=%v, periods %d vs %d", resumed, tracker4.Periods(), len(a4.Reports()))
	}
	if tracker4.Stats().Alarmed == 0 {
		t.Error("keyed resume lost the per-source alarms")
	}

	// Mismatched halves (keyed clock != aggregate clock) are corrupt.
	st, err := ReadStateFile(keyedPath)
	if err != nil {
		t.Fatal(err)
	}
	st.Sources.Periods--
	for i := range st.Sources.Keys {
		if st.Sources.Keys[i].Periods > st.Sources.Periods {
			st.Sources.Keys[i].Periods = st.Sources.Periods
		}
	}
	tornPath := filepath.Join(dir, "torn.json")
	if err := WriteStateFile(st, tornPath); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadOrNewState(tornPath, core.Config{}, keyedTrackConfig()); !errors.Is(err, core.ErrBadSnapshot) {
		t.Errorf("mismatched halves: err = %v, want core.ErrBadSnapshot", err)
	}
}

// TestStateFileCompatibility pins the on-disk contract: a state file
// without keyed sources is byte-identical to the pre-keyed aggregate
// snapshot format, and a keyed state file still loads through the
// aggregate-only reader (which ignores the keyed half).
func TestStateFileCompatibility(t *testing.T) {
	dir := t.TempDir()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.ProcessTrace(testTrace(t, true)); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "agg.json")
	if err := WriteSnapshotFile(agent.Snapshot(), path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var legacy bytes.Buffer
	if err := agent.WriteSnapshot(&legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.String() != string(onDisk) {
		t.Error("aggregate-only state file drifted from the core.Snapshot format")
	}

	// A keyed state file is still readable as a plain agent snapshot.
	tracker, err := sourcetrack.New(sourcetrack.Config{KeyBits: 8, MaxSources: 64, Agent: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	ks := tracker.Snapshot()
	keyedPath := filepath.Join(dir, "keyed.json")
	if err := WriteStateFile(State{Snapshot: agent.Snapshot(), Sources: &ks}, keyedPath); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(keyedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a2, err := core.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("aggregate reader rejected keyed state file: %v", err)
	}
	if len(a2.Reports()) != len(agent.Reports()) {
		t.Errorf("aggregate half lost reports: %d vs %d", len(a2.Reports()), len(agent.Reports()))
	}
}

// TestSourcesEndpoint drives /sources and the keyed /status and
// /metrics fields over a flooded replay.
func TestSourcesEndpoint(t *testing.T) {
	agent, tracker, _, err := LoadOrNewState("", core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(agent, testTrace(t, true), Options{Tracker: tracker})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	p := d.Sources(-1, 0)
	if !p.Enabled || p.KeyBits != 8 || p.MaxSources != 64 {
		t.Fatalf("payload header: %+v", p)
	}
	if p.Total != len(p.Sources) || p.Offset != 0 {
		t.Fatalf("unpaged payload total=%d offset=%d over %d rows", p.Total, p.Offset, len(p.Sources))
	}
	if p.Stats.Alarmed == 0 || len(p.Sources) == 0 {
		t.Fatalf("flooded replay attributed nothing: %+v", p.Stats)
	}
	top := p.Sources[0]
	if !top.Alarmed || top.Key.Addr().As4()[0] < 240 {
		t.Errorf("top source %+v is not an alarmed spoofed block", top)
	}
	for i := 1; i < len(p.Sources); i++ {
		if p.Sources[i-1].Alarmed == p.Sources[i].Alarmed &&
			p.Sources[i-1].Alarmed == false &&
			p.Sources[i-1].Y < p.Sources[i].Y {
			t.Errorf("sources not ranked: %d before %d", i-1, i)
		}
	}

	if status, body := get(t, d, "/sources?n=1"); status != 200 || strings.Count(body, `"key"`) != 1 {
		t.Errorf("?n=1: status %d body %s", status, body)
	}
	if status, _ := get(t, d, "/sources?n=bogus"); status != 400 {
		t.Errorf("bad n: status %d, want 400", status)
	}

	s := d.Status()
	if !s.Tracking || s.SourcesTracked == 0 || s.SourcesAlarmed == 0 {
		t.Errorf("status keyed fields: %+v", s)
	}
	if _, body := get(t, d, "/metrics"); !strings.Contains(body, "syndog_sources_tracking 1") ||
		!strings.Contains(body, "syndog_sources_alarmed") {
		t.Error("metrics missing keyed gauges")
	}

	// Without a tracker the endpoint reports disabled, not 404 — the
	// handler set is independent of configuration.
	d2 := newTestDaemon(t, false, Options{})
	if status, body := get(t, d2, "/sources"); status != 200 || !strings.Contains(body, `"enabled":false`) {
		t.Errorf("untracked /sources: status %d body %s", status, body)
	}
	if s := d2.Status(); s.Tracking || s.SourcesTracked != 0 {
		t.Errorf("untracked status keyed fields: %+v", s)
	}
}

// TestNewStreamRejectsMisalignedTracker pins the startup guard: a
// tracker whose period clock disagrees with the detector's resume
// offset means the two snapshot halves came from different runs.
func TestNewStreamRejectsMisalignedTracker(t *testing.T) {
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := sourcetrack.New(*keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tracker.FastForward(3); err != nil {
		t.Fatal(err)
	}
	if _, err := New(agent, testTrace(t, false), Options{Tracker: tracker}); err == nil {
		t.Error("misaligned tracker accepted")
	}
}

// TestSourcesPagination pins the /sources paging contract: ?n= is the
// page size with n=0 meaning "no rows" (never "all"), ?offset= walks
// the ranking, negatives clamp, and concatenating pages reproduces the
// full ranked list with a stable total.
func TestSourcesPagination(t *testing.T) {
	agent, tracker, _, err := LoadOrNewState("", core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(agent, testTrace(t, true), Options{Tracker: tracker})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	all := d.Sources(-1, 0)
	if all.Total < 3 {
		t.Fatalf("fixture too small to page: %d keys", all.Total)
	}

	// Pages concatenate back to the full ranking, each carrying the
	// same total.
	var paged []string
	for off := 0; off < all.Total; off += 2 {
		p := d.Sources(2, off)
		if p.Total != all.Total || p.Offset != off {
			t.Fatalf("page at %d: total=%d offset=%d, want %d/%d", off, p.Total, p.Offset, all.Total, off)
		}
		for _, row := range p.Sources {
			paged = append(paged, row.Key.String())
		}
	}
	if len(paged) != all.Total {
		t.Fatalf("pages yielded %d rows, want %d", len(paged), all.Total)
	}
	for i, row := range all.Sources {
		if paged[i] != row.Key.String() {
			t.Fatalf("row %d: paged %s, full list %s", i, paged[i], row.Key)
		}
	}

	// n=0: headers and stats only — explicitly not "all keys".
	p := d.Sources(0, 0)
	if len(p.Sources) != 0 || p.Total != all.Total {
		t.Errorf("n=0 returned %d rows (total %d)", len(p.Sources), p.Total)
	}
	// Offset past the population: empty page, not an error.
	if p := d.Sources(5, all.Total+10); len(p.Sources) != 0 || p.Total != all.Total {
		t.Errorf("overshot offset returned %d rows", len(p.Sources))
	}
	// Negative inputs clamp.
	if p := d.Sources(3, -7); p.Offset != 0 || len(p.Sources) != 3 {
		t.Errorf("negative offset: offset=%d rows=%d", p.Offset, len(p.Sources))
	}

	// The HTTP surface: n=0 serializes an empty array (not null), bad
	// offsets are 400, negatives clamp to 0.
	if status, body := get(t, d, "/sources?n=0"); status != 200 || !strings.Contains(body, `"sources":[]`) {
		t.Errorf("?n=0: status %d body %s", status, body)
	}
	if status, _ := get(t, d, "/sources?offset=bogus"); status != 400 {
		t.Errorf("bad offset: status %d, want 400", status)
	}
	if status, body := get(t, d, "/sources?n=-3&offset=-3"); status != 200 || !strings.Contains(body, `"sources":[]`) || !strings.Contains(body, `"offset":0`) {
		t.Errorf("negative query params: status %d body %s", status, body)
	}
	if status, body := get(t, d, "/sources?n=2&offset=1"); status != 200 || strings.Count(body, `"key"`) != 2 {
		t.Errorf("?n=2&offset=1: status %d body %s", status, body)
	}
}
