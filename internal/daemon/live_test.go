package daemon

import (
	"bytes"
	"context"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

// The live equivalence suite pins the promise the live: input makes:
// replaying a capture file through the portable capture path produces
// exactly the detector state, keyed tracker state and counters that
// the offline ingest.Open pcap path produces. Two layers:
//
//   - pipeline level (TestCaptureSourceMatchesIngestOpen): both
//     sources drained to EOF through identical aggregators — every
//     observable is bit-identical, including record counts and the
//     tracker snapshot.
//   - daemon level (TestLiveAgentMatchesFileAgent): BuildAgent with
//     "live:pcap:PATH" versus the plain .pcap input. Reports and all
//     detector metrics are byte-identical; the processed-record count
//     differs only by the trailing partial period, which the bounded
//     file replay never reads and a live source by definition must.

// writeTestPcap writes tr to a temp pcap file and returns its path.
func writeTestPcap(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "equiv.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePcap(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// drainResult is everything observable about one full drain of a
// source through a fresh detector + keyed tracker.
type drainResult struct {
	reports  []core.Report
	kbar     float64
	records  int
	skipped  int
	span     time.Duration
	snapshot []byte // tracker snapshot, canonical encoding
}

// drainThrough runs src dry through a fresh CUSUM agent and a
// single-shard tracker — the same record-at-a-time loop on both sides,
// so any difference comes from the source, not the consumer.
func drainThrough(t *testing.T, src ingest.Source) drainResult {
	t.Helper()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := sourcetrack.New(sourcetrack.Config{Shards: 1, Agent: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := ingest.NewAggregator(core.Config{}.Normalized().T0, 0, ingest.WrapAgent(agent), nil)
	if err != nil {
		t.Fatal(err)
	}
	agg.SetTap(tracker)
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Feed(r); err != nil {
			t.Fatal(err)
		}
	}
	span := src.(ingest.SpanSource).Span()
	if err := agg.Finish(span); err != nil {
		t.Fatal(err)
	}
	snap, err := tracker.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	return drainResult{
		reports:  agent.Reports(),
		kbar:     agent.KBar(),
		records:  agg.Records(),
		skipped:  agg.Skipped(),
		span:     span,
		snapshot: snap,
	}
}

// TestCaptureSourceMatchesIngestOpen: the portable capture path over a
// pcap byte-stream is bit-identical to ingest.Open on the same file —
// reports, K-bar, record counts, span and the keyed tracker snapshot.
func TestCaptureSourceMatchesIngestOpen(t *testing.T) {
	tr := testTrace(t, true)
	path := writeTestPcap(t, tr)
	prefix := netip.MustParsePrefix("130.216.0.0/16")

	fileSrc, _, err := ingest.Open(path, prefix)
	if err != nil {
		t.Fatal(err)
	}
	defer fileSrc.Close()
	file := drainThrough(t, fileSrc)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := capture.NewPcapReader(f, f)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	liveSrc, err := capture.NewSource(fr, capture.Config{StubPrefix: prefix, Name: "live"})
	if err != nil {
		fr.Close()
		t.Fatal(err)
	}
	defer liveSrc.Close()
	live := drainThrough(t, liveSrc)

	if !reflect.DeepEqual(file.reports, live.reports) {
		t.Errorf("reports diverge: file %d periods, live %d periods", len(file.reports), len(live.reports))
	}
	if file.kbar != live.kbar {
		t.Errorf("K-bar diverges: file %g, live %g", file.kbar, live.kbar)
	}
	if file.records != live.records || file.skipped != live.skipped {
		t.Errorf("counts diverge: file %d/%d, live %d/%d",
			file.records, file.skipped, live.records, live.skipped)
	}
	if file.span != live.span {
		t.Errorf("span diverges: file %v, live %v", file.span, live.span)
	}
	if !bytes.Equal(file.snapshot, live.snapshot) {
		t.Error("keyed tracker snapshots diverge")
	}
	if file.records != len(tr.Records) {
		t.Errorf("drained %d records, trace has %d", file.records, len(tr.Records))
	}
}

// equivMetrics are the metric lines that must be byte-identical
// between the live:pcap: agent and the plain .pcap agent. Excluded,
// with reasons: syndog_capture_* (the file path has no capture layer,
// so they read zero there by design), syndog_replay_progress (the live
// path has no period denominator), syndog_records_processed_total (the
// bounded replay stops at the last complete period boundary; a live
// source reads to EOF — see TestLiveAgentMatchesFileAgent), and the
// wall-clock histograms/ages.
var equivMetrics = []string{
	"syndog_periods_total",
	"syndog_kbar",
	"syndog_statistic",
	"syndog_alarmed",
	"syndog_replay_done",
	"syndog_replay_failed",
	"syndog_records_skipped_total",
	"syndog_records_dropped_total",
	"syndog_resume_offset_periods",
	"syndog_last_period_out_syn",
	"syndog_last_period_in_synack",
	"syndog_sources_tracking",
	"syndog_sources_tracked",
	"syndog_sources_alarmed",
	"syndog_sources_evicted_total",
	"syndog_checkpoints_total",
	"syndog_checkpoint_failures_total",
}

// pickMetrics returns the subset of body's lines whose metric name is
// in names, in names order, sample lines only.
func pickMetrics(t *testing.T, body string, names []string) string {
	t.Helper()
	var out strings.Builder
	for _, name := range names {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
				out.WriteString(line)
				out.WriteByte('\n')
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %s missing from exposition", name)
		}
	}
	return out.String()
}

// TestLiveAgentMatchesFileAgent: BuildAgent("live:pcap:X") and
// BuildAgent("X.pcap") converge to the same detector: byte-identical
// /reports, byte-identical detector metrics, and a processed-record
// count that differs by exactly the trailing partial period.
func TestLiveAgentMatchesFileAgent(t *testing.T) {
	tr := testTrace(t, true)
	path := writeTestPcap(t, tr)
	const prefix = "130.216.0.0/16"

	build := func(input string) *Daemon {
		d, action, err := BuildAgent(AgentSpec{Name: "agent", Input: input, Prefix: prefix}, "test", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if action != ActionFresh {
			t.Fatalf("action = %s, want fresh", action)
		}
		t.Cleanup(func() { d.Close() })
		if err := d.Replay(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return d
	}
	fileD := build(path)
	liveD := build("live:pcap:" + path)

	if _, fileReports := get(t, fileD, "/reports"); true {
		_, liveReports := get(t, liveD, "/reports")
		if fileReports != liveReports {
			t.Error("/reports bodies diverge between live:pcap: and .pcap inputs")
		}
	}
	if _, fileSums := get(t, fileD, "/summaries"); true {
		_, liveSums := get(t, liveD, "/summaries")
		if fileSums != liveSums {
			t.Error("/summaries bodies diverge between live:pcap: and .pcap inputs")
		}
	}

	_, fm := get(t, fileD, "/metrics")
	_, lm := get(t, liveD, "/metrics")
	if fp, lp := pickMetrics(t, fm, equivMetrics), pickMetrics(t, lm, equivMetrics); fp != lp {
		t.Errorf("detector metrics diverge:\nfile:\n%s\nlive:\n%s", fp, lp)
	}

	// The bounded file replay stops at the last complete period
	// boundary; the live path must read to EOF. The difference is
	// exactly the records of the trailing partial period.
	span := tr.Records[len(tr.Records)-1].Ts + 1
	boundary := time.Duration(int(span/(20*time.Second))) * 20 * time.Second
	trailing := 0
	for _, r := range tr.Records {
		if r.Ts >= boundary {
			trailing++
		}
	}
	fs, ls := fileD.Status(), liveD.Status()
	if int(ls.RecordsProcessed-fs.RecordsProcessed) != trailing {
		t.Errorf("processed records: file %d, live %d, want difference %d (trailing partial period)",
			fs.RecordsProcessed, ls.RecordsProcessed, trailing)
	}

	// Capture-layer accounting surfaces only on the live agent.
	if fs.Capture != nil {
		t.Error("file agent reports capture stats")
	}
	switch {
	case ls.Capture == nil:
		t.Error("live agent reports no capture stats")
	case ls.Capture.Parsed != uint64(len(tr.Records)):
		t.Errorf("capture parsed %d records, trace has %d", ls.Capture.Parsed, len(tr.Records))
	case ls.Capture.RingDropped != 0:
		t.Errorf("blocking pcap source dropped %d records", ls.Capture.RingDropped)
	}
}

// TestValidateLiveInputs: the spec validator catches malformed live:
// inputs before any socket or file is opened.
func TestValidateLiveInputs(t *testing.T) {
	cases := []struct {
		input, prefix, wantErr string
	}{
		{"live:eth0", "", "stub prefix"},
		{"live:pcap:feed.pcap", "", "stub prefix"},
		{"live:pcap:", "10.0.0.0/8", "needs a path"},
		{"live:", "10.0.0.0/8", "interface name"},
		{"live:eth0", "10.0.0.0/8", ""},
		{"live:pcap:feed.pcap", "10.0.0.0/8", ""},
	}
	for _, c := range cases {
		err := AgentSpec{Name: "a", Input: c.input, Prefix: c.prefix}.Validate()
		switch {
		case c.wantErr == "" && err != nil:
			t.Errorf("%s (prefix %q): unexpected error %v", c.input, c.prefix, err)
		case c.wantErr != "" && err == nil:
			t.Errorf("%s (prefix %q): no error, want %q", c.input, c.prefix, c.wantErr)
		case c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr):
			t.Errorf("%s (prefix %q): error %v, want it to mention %q", c.input, c.prefix, err, c.wantErr)
		}
	}
}

// TestBuildAgentLiveMissingFile: a live:pcap: path that does not exist
// fails at build time, not at replay time.
func TestBuildAgentLiveMissingFile(t *testing.T) {
	_, _, err := BuildAgent(AgentSpec{
		Name: "a", Input: "live:pcap:" + filepath.Join(t.TempDir(), "missing.pcap"),
		Prefix: "10.0.0.0/8",
	}, "test", io.Discard)
	if err == nil {
		t.Fatal("missing pcap accepted")
	}
}
