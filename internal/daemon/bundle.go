package daemon

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// bundleSourceRows caps the ranked keys included per agent in a debug
// bundle: enough to see who is attacking, without shipping the whole
// key population.
const bundleSourceRows = 100

// serveBundle streams a one-shot diagnostic bundle: a tar.gz holding
// the effective configuration, and per agent its status, period
// reports, top sources, metrics exposition and current snapshot state.
// Everything an operator attaches to a ticket in one request, captured
// from the live process without touching its replay.
func (s *Supervisor) serveBundle(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.writeBundle(&buf); err != nil {
		http.Error(w, "bundle: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="syndog-bundle.tar.gz"`)
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// writeBundle renders the bundle archive into w.
func (s *Supervisor) writeBundle(buf *bytes.Buffer) error {
	gz := gzip.NewWriter(buf)
	tw := tar.NewWriter(gz)
	now := time.Now()

	addFile := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	addJSON := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		return addFile(name, append(data, '\n'))
	}

	if err := addJSON("bundle/config.json", specFile{Agents: s.Specs()}); err != nil {
		return err
	}
	for _, ma := range s.snapshot() {
		s.mu.Lock()
		name, d := ma.spec.Name, ma.d
		cusum := ma.spec.cusum()
		s.mu.Unlock()
		dir := "bundle/agents/" + name + "/"
		if err := addJSON(dir+"status.json", d.Status()); err != nil {
			return err
		}
		if err := addJSON(dir+"reports.json", d.Reports()); err != nil {
			return err
		}
		if err := addJSON(dir+"sources.json", d.Sources(bundleSourceRows, 0)); err != nil {
			return err
		}
		rec := newMetricsRecorder()
		writeMetrics(rec, d.Status())
		if err := addFile(dir+"metrics.txt", rec.buf.Bytes()); err != nil {
			return err
		}
		if cusum {
			st, err := d.State()
			if err == nil {
				if err := addJSON(dir+"state.json", st); err != nil {
					return err
				}
			}
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// metricsRecorder adapts writeMetrics's http.ResponseWriter parameter
// to an in-memory buffer for the bundle.
type metricsRecorder struct {
	buf    bytes.Buffer
	header http.Header
}

func newMetricsRecorder() *metricsRecorder { return &metricsRecorder{header: make(http.Header)} }

func (m *metricsRecorder) Header() http.Header         { return m.header }
func (m *metricsRecorder) WriteHeader(int)             {}
func (m *metricsRecorder) Write(p []byte) (int, error) { return m.buf.Write(p) }
