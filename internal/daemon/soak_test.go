package daemon

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// The soak harness compresses hours of operational churn — checkpoint,
// kill, resume, reload — into a time budget. It is off by default
// (zero budget skips) and wired into `make soak` (a minute, under
// -race) and `make check` (a few seconds):
//
//	go test -race -run TestSoakChurn -soak 60s ./internal/daemon/
//
// Every cycle replays a two-agent daemon to completion through
// repeated mid-replay kills, checkpoint-truncated restarts and live
// reload churn on agent "churn", then requires agent "steady" — which
// no reload ever touches — to end with a state file byte-identical to
// an uninterrupted run's. That is the PR's headline invariant: resume
// equivalence stays byte-exact for untouched agents, no matter how the
// process around them is killed, restarted and reconfigured.
var soakBudget = flag.Duration("soak", 0, "soak test time budget (0 = skip)")

func TestSoakChurn(t *testing.T) {
	if *soakBudget <= 0 {
		t.Skip("soak disabled; run with -soak=30s (see `make soak`)")
	}
	dir := t.TempDir()
	inPath := saveTestTrace(t, dir, true)
	rng := rand.New(rand.NewSource(1))

	// Control: agent "steady"'s spec, run once, uninterrupted.
	steadySpec := func(state string) AgentSpec {
		return AgentSpec{
			Name: "steady", Input: inPath, State: state,
			TrackSources: true, KeyBits: 8, MaxSources: 64,
			Checkpoint: Duration(20 * time.Millisecond),
		}
	}
	ctrlPath := filepath.Join(dir, "ctrl.json")
	ctrl, _, err := BuildAgent(steadySpec(ctrlPath), "soak", os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SaveState(ctrlPath); err != nil {
		t.Fatal(err)
	}
	ctrl.Close()
	want, err := os.ReadFile(ctrlPath)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	cycles, kills, reloads, rewinds := 0, 0, 0, 0
	for time.Since(start) < *soakBudget {
		cycles++
		cdir := t.TempDir()
		steadyState := filepath.Join(cdir, "steady.json")
		churnState := filepath.Join(cdir, "churn.json")
		base := steadySpec(steadyState)
		churn := AgentSpec{
			Name: "churn", Input: inPath, State: churnState,
			Checkpoint: Duration(15 * time.Millisecond),
			OnMismatch: PolicyMigrate,
		}

		// Kill/resume until steady's replay completes. The replay is
		// paced (~300ms of wall clock for the whole trace) so kills
		// land mid-flight.
		for attempt := 0; ; attempt++ {
			if attempt > 500 {
				t.Fatal("soak cycle never completed")
			}
			var log syncBuf
			s, err := NewSupervisor([]AgentSpec{base, churn},
				SupervisorOptions{ProcName: "soak", Log: &log, Speed: 2000})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			runErr := make(chan error, 1)
			go func() { runErr <- s.Run(ctx, "127.0.0.1:0") }()
			for bannerRE.FindStringSubmatch(log.String()) == nil {
				time.Sleep(time.Millisecond)
			}

			// Live churn while the replay runs: flip churn's threshold
			// (compatible, state carried in place) and sometimes its
			// t0 (incompatible, migrated under its policy) — steady is
			// never part of any diff. A mid-run copy of steady's last
			// periodic checkpoint doubles as a crash artifact below.
			var staleCheckpoint []byte
			deadline := time.Now().Add(time.Duration(20+rng.Intn(120)) * time.Millisecond)
			for time.Now().Before(deadline) {
				time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
				next := churn
				switch rng.Intn(3) {
				case 0:
					next.Threshold = []float64{0, 1.5, 3, 1000}[rng.Intn(4)]
				case 1:
					next.T0 = Duration([]time.Duration{0, 40 * time.Second}[rng.Intn(2)])
				default:
					// Spec unchanged: the reload still walks the diff.
				}
				if _, err := s.Reload([]AgentSpec{base, next}); err != nil {
					t.Fatal(err)
				}
				churn = next
				reloads++
				if b, err := os.ReadFile(steadyState); err == nil {
					staleCheckpoint = b
				}
			}

			done := s.get("steady").d.Status().ReplayDone
			cancel()
			if err := <-runErr; err != nil && !errors.Is(err, context.Canceled) {
				t.Fatal(err)
			}
			if done {
				break
			}
			kills++

			// Sometimes emulate a hard crash: throw away the graceful
			// shutdown snapshot and restart from the older periodic
			// checkpoint captured mid-run. Resume equivalence must
			// hold from either file.
			if len(staleCheckpoint) > 0 && rng.Intn(3) == 0 {
				if err := os.WriteFile(steadyState, staleCheckpoint, 0o644); err != nil {
					t.Fatal(err)
				}
				rewinds++
			}
		}

		got, err := os.ReadFile(steadyState)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: steady agent's final state differs from uninterrupted run (%d kills, %d reloads, %d rewinds so far)",
				cycles, kills, reloads, rewinds)
		}
		// And the churned agent, whatever parameters it ended on, must
		// hold a restorable state — churn may rewrite it, never corrupt
		// it.
		if st, err := ReadStateFile(churnState); err != nil {
			t.Fatalf("cycle %d: churned agent state unreadable: %v", cycles, err)
		} else if _, err := core.RestoreAgent(st.Snapshot); err != nil {
			t.Fatalf("cycle %d: churned agent state unrestorable: %v", cycles, err)
		}
	}
	t.Logf("soak: %d cycles, %d mid-replay kills, %d reloads, %d checkpoint rewinds in %v",
		cycles, kills, reloads, rewinds, time.Since(start))
}
