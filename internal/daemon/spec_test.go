package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(20 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"20s"` {
		t.Fatalf("marshal = %s, want \"20s\"", b)
	}
	for _, in := range []string{`"30s"`, `30000000000`} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", in, err)
		}
		if time.Duration(d) != 30*time.Second {
			t.Fatalf("unmarshal %s = %v, want 30s", in, time.Duration(d))
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"not-a-duration"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("bool accepted as duration")
	}
}

// TestAgentSpecValidate pins the validation matrix — including the
// exact error substrings the single-agent CLI has always used, which
// cmd/syndogd's tests grep for.
func TestAgentSpecValidate(t *testing.T) {
	valid := AgentSpec{Name: "edge", Input: "edge.trace"}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*AgentSpec)
		want string // required error substring
	}{
		{"empty name", func(s *AgentSpec) { s.Name = "" }, "name"},
		{"bad name", func(s *AgentSpec) { s.Name = "a/b" }, "name"},
		{"missing input", func(s *AgentSpec) { s.Input = "" }, "input"},
		{"unknown detector", func(s *AgentSpec) { s.Detector = "psychic" }, "unknown detector"},
		{"checkpoint without state", func(s *AgentSpec) { s.Checkpoint = Duration(5 * time.Second) }, "-state"},
		{"state with baseline", func(s *AgentSpec) { s.State = "x.json"; s.Detector = "static-threshold" }, "syndog-cusum"},
		{"tracking with baseline", func(s *AgentSpec) { s.TrackSources = true; s.Detector = "adaptive-ewma" }, "syndog-cusum"},
		{"key bits without tracking", func(s *AgentSpec) { s.KeyBits = 16 }, "-track-sources"},
		{"max sources without tracking", func(s *AgentSpec) { s.MaxSources = 32 }, "-track-sources"},
		{"bad prefix", func(s *AgentSpec) { s.Prefix = "not-a-prefix" }, "prefix"},
		{"pcap without prefix", func(s *AgentSpec) { s.Input = "cap.pcap" }, "stub prefix"},
		{"bad policy", func(s *AgentSpec) { s.OnMismatch = "panic" }, "on-mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("%+v validated", s)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs([]byte(`{"agents": [
		{"name": "a", "input": "a.trace", "t0": "30s", "checkpoint": "5s", "state": "a.json"},
		{"name": "b", "input": "b.trace", "trackSources": true, "keyBits": 16, "onMismatch": "migrate"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "a" || specs[1].Name != "b" {
		t.Fatalf("specs = %+v", specs)
	}
	if time.Duration(specs[0].T0) != 30*time.Second {
		t.Fatalf("t0 = %v, want 30s", time.Duration(specs[0].T0))
	}
	if specs[1].OnMismatch != PolicyMigrate {
		t.Fatalf("onMismatch = %q", specs[1].OnMismatch)
	}

	bad := []struct{ name, doc, want string }{
		{"no agents", `{"agents": []}`, "no agents"},
		{"duplicate names", `{"agents": [{"name":"a","input":"a.trace"},{"name":"a","input":"b.trace"}]}`, "duplicate"},
		{"unknown field", `{"agents": [{"name":"a","input":"a.trace","speling":1}]}`, "speling"},
		{"invalid agent", `{"agents": [{"name":"a","input":"a.trace","checkpoint":"5s"}]}`, "-state"},
		{"garbage", `nope`, "config"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpecs([]byte(tc.doc))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSpecEffective pins the reload diffing relation: defaulted and
// explicit forms of the same configuration are effective-equal, and
// the mismatch policy never participates.
func TestSpecEffective(t *testing.T) {
	a := AgentSpec{Name: "x", Input: "x.trace"}
	b := AgentSpec{
		Name: "x", Input: "x.trace", Detector: "syndog-cusum",
		T0: Duration(20 * time.Second), Alpha: 0.9, Offset: 0.35, Threshold: 1.05,
		OnMismatch: PolicyMigrate,
	}
	if a.effective() != b.effective() {
		t.Fatalf("defaulted %+v != explicit %+v", a.effective(), b.effective())
	}
	c := b
	c.Threshold = 2
	if a.effective() == c.effective() {
		t.Fatal("threshold change not visible in effective form")
	}
	tr := AgentSpec{Name: "x", Input: "x.trace", TrackSources: true}
	tr2 := tr
	tr2.KeyBits, tr2.MaxSources = sourcetrack.DefaultKeyBits, sourcetrack.DefaultMaxSources
	if tr.effective() != tr2.effective() {
		t.Fatal("tracking defaults not normalized")
	}
	if tr.effective() == a.effective() {
		t.Fatal("tracking toggle not visible in effective form")
	}
}

// keyedRunState replays the flood trace through a keyed daemon and
// returns its final persistable state — the input to migration tests.
func keyedRunState(t *testing.T) State {
	t.Helper()
	agent, tracker, _, err := LoadOrNewState("", core.Config{}, keyedTrackConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(agent, testTrace(t, true), Options{Tracker: tracker})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	st, err := d.State()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMigrateStateCompatible(t *testing.T) {
	st := keyedRunState(t)
	if len(st.Reports) != 30 || st.Sources == nil {
		t.Fatalf("unexpected baseline state: %d reports, sources=%v", len(st.Reports), st.Sources != nil)
	}
	newCfg := core.Config{Threshold: 3, Offset: 0.5, Alpha: 0.7}
	track := keyedTrackConfig()
	track.MaxSources = 8 // shrink: keyed half must migrate, not reset
	track.Agent = newCfg

	got := MigrateState(st, newCfg, track)
	want := newCfg.Normalized()
	if got.Config != want {
		t.Fatalf("config = %+v, want %+v", got.Config, want)
	}
	if got.KBar != st.KBar || got.Y != st.Y || len(got.Reports) != len(st.Reports) {
		t.Fatal("compatible migration did not carry aggregate state")
	}
	if got.Sources == nil {
		t.Fatal("compatible migration reset the keyed half")
	}
	if got.Sources.Periods != len(got.Reports) {
		t.Fatalf("keyed clock %d != aggregate %d", got.Sources.Periods, len(got.Reports))
	}
	if len(got.Sources.Keys) > 8 {
		t.Fatalf("%d keys survive a shrink to 8", len(got.Sources.Keys))
	}
	// The rewritten state must restore through the strict loader.
	a, err := core.RestoreAgent(got.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config() != want {
		t.Fatalf("restored config %+v", a.Config())
	}
	if _, err := sourcetrack.Restore(*got.Sources, *track); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateStateT0Change(t *testing.T) {
	st := keyedRunState(t)
	newCfg := core.Config{T0: 40 * time.Second}
	track := keyedTrackConfig()
	track.Agent = newCfg

	got := MigrateState(st, newCfg, track)
	if got.Config != newCfg.Normalized() {
		t.Fatalf("config = %+v", got.Config)
	}
	if want := st.KBar * 2; got.KBar != want {
		t.Fatalf("kBar = %g, want %g (rate-scaled for 20s -> 40s)", got.KBar, want)
	}
	if !got.KBarPrimed {
		t.Fatal("primed baseline lost")
	}
	if got.Y != 0 || got.AlarmLatched || got.Observations != 0 || got.OnsetIndex != 0 {
		t.Fatal("CUSUM evidence survived a period-semantics change")
	}
	if got.Reports != nil || got.Alarm != nil {
		t.Fatal("history survived a period-semantics change")
	}
	if got.Sources != nil {
		t.Fatal("keyed state survived a T0 change")
	}
	if _, err := core.RestoreAgent(got.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Disabling tracking drops only the keyed half.
	dropped := MigrateState(st, core.Config{}, nil)
	if dropped.Sources != nil {
		t.Fatal("keyed state survived disabling tracking")
	}
	if len(dropped.Reports) != len(st.Reports) {
		t.Fatal("aggregate state lost while dropping the keyed half")
	}
}

func TestLoadOrNewStateWithPolicy(t *testing.T) {
	st := keyedRunState(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteStateFile(st, path); err != nil {
		t.Fatal(err)
	}
	track := keyedTrackConfig()

	// Matching config: plain resume under every policy.
	for _, p := range []Policy{PolicyError, PolicyMigrate, PolicyReset} {
		a, tr, act, err := LoadOrNewStateWithPolicy(path, core.Config{}, track, p)
		if err != nil || act != ActionResumed || tr == nil {
			t.Fatalf("policy %s: action %s err %v", p, act, err)
		}
		if len(a.Reports()) != 30 {
			t.Fatalf("policy %s: %d reports", p, len(a.Reports()))
		}
	}

	// Compatible-parameter mismatch: error by default, carried under
	// migrate.
	hot := core.Config{Threshold: 9}
	hotTrack := keyedTrackConfig()
	hotTrack.Agent = hot
	if _, _, _, err := LoadOrNewStateWithPolicy(path, hot, hotTrack, PolicyError); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("policy error: %v", err)
	}
	a, tr, act, err := LoadOrNewStateWithPolicy(path, hot, hotTrack, PolicyMigrate)
	if err != nil || act != ActionMigrated {
		t.Fatalf("migrate: action %s err %v", act, err)
	}
	if len(a.Reports()) != 30 || a.KBar() != st.KBar {
		t.Fatal("migrate dropped aggregate evidence")
	}
	if a.Config().Threshold != 9 {
		t.Fatalf("threshold = %g", a.Config().Threshold)
	}
	if tr == nil || tr.Periods() != 30 {
		t.Fatal("migrate dropped keyed evidence")
	}

	// T0 mismatch: migrate carries the scaled baseline and restarts the
	// history; reset starts over entirely.
	slow := core.Config{T0: 40 * time.Second}
	slowTrack := keyedTrackConfig()
	slowTrack.Agent = slow
	a, tr, act, err = LoadOrNewStateWithPolicy(path, slow, slowTrack, PolicyMigrate)
	if err != nil || act != ActionMigrated {
		t.Fatalf("migrate t0: action %s err %v", act, err)
	}
	if len(a.Reports()) != 0 || a.KBar() != st.KBar*2 {
		t.Fatalf("migrate t0: %d reports, kBar %g (want 0, %g)", len(a.Reports()), a.KBar(), st.KBar*2)
	}
	if tr == nil || tr.Periods() != 0 {
		t.Fatal("migrate t0: keyed half not restarted")
	}
	a, tr, act, err = LoadOrNewStateWithPolicy(path, slow, slowTrack, PolicyReset)
	if err != nil || act != ActionReset {
		t.Fatalf("reset: action %s err %v", act, err)
	}
	if len(a.Reports()) != 0 || a.KBar() != 0 || tr == nil || tr.Periods() != 0 {
		t.Fatal("reset did not start fresh")
	}

	// Keyed file without tracking: hard error by default, keyed half
	// dropped (aggregate kept) under migrate.
	if _, _, _, err := LoadOrNewStateWithPolicy(path, core.Config{}, nil, PolicyError); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("keyed without track: %v", err)
	}
	a, tr, act, err = LoadOrNewStateWithPolicy(path, core.Config{}, nil, PolicyMigrate)
	if err != nil || act != ActionMigrated || tr != nil {
		t.Fatalf("keyed without track migrate: action %s tracker %v err %v", act, tr, err)
	}
	if len(a.Reports()) != 30 {
		t.Fatal("aggregate evidence lost while dropping the keyed half")
	}

	// Corrupt snapshots stay fatal under every policy.
	torn := filepath.Join(dir, "torn.json")
	if err := os.WriteFile(torn, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyError, PolicyMigrate, PolicyReset} {
		if _, _, _, err := LoadOrNewStateWithPolicy(torn, core.Config{}, track, p); !errors.Is(err, core.ErrBadSnapshot) {
			t.Fatalf("policy %s accepted a corrupt snapshot: %v", p, err)
		}
	}
}

// saveTestTrace writes the standard test trace to disk so BuildAgent
// and supervisor tests can exercise the real file-opening path.
func saveTestTrace(t *testing.T, dir string, withFlood bool) string {
	t.Helper()
	path := filepath.Join(dir, "mixed.trace")
	if err := trace.Save(path, testTrace(t, withFlood)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildAgent(t *testing.T) {
	dir := t.TempDir()
	in := saveTestTrace(t, dir, true)
	spec := AgentSpec{
		Name: "edge", Input: in,
		State:        filepath.Join(dir, "edge.json"),
		TrackSources: true, KeyBits: 8, MaxSources: 64,
	}

	var log bytes.Buffer
	d, act, err := BuildAgent(spec, "syndogd", &log)
	if err != nil {
		t.Fatal(err)
	}
	if act != ActionFresh {
		t.Fatalf("action = %s", act)
	}
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveState(spec.State); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	log.Reset()
	d2, act, err := BuildAgent(spec, "syndogd", &log)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if act != ActionResumed {
		t.Fatalf("action = %s", act)
	}
	if d2.ResumeOffset() != 30 {
		t.Fatalf("resume offset = %d", d2.ResumeOffset())
	}
	if out := log.String(); !strings.Contains(out, "resumed from") || !strings.Contains(out, "keyed state") {
		t.Fatalf("resume notices missing from log: %q", out)
	}

	// Parameter change: refused by default, carried under migrate.
	hot := spec
	hot.Threshold = 9
	if _, _, err := BuildAgent(hot, "syndogd", &log); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("default policy: %v", err)
	}
	hot.OnMismatch = PolicyMigrate
	log.Reset()
	d3, act, err := BuildAgent(hot, "syndogd", &log)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if act != ActionMigrated || d3.ResumeOffset() != 30 {
		t.Fatalf("migrate: action %s offset %d", act, d3.ResumeOffset())
	}
	if !strings.Contains(log.String(), "migrated") {
		t.Fatalf("migration notice missing: %q", log.String())
	}

	// Invalid specs and missing inputs fail cleanly.
	if _, _, err := BuildAgent(AgentSpec{Name: "x"}, "syndogd", nil); err == nil {
		t.Fatal("invalid spec built")
	}
	if _, _, err := BuildAgent(AgentSpec{Name: "x", Input: filepath.Join(dir, "no.trace")}, "syndogd", nil); err == nil {
		t.Fatal("missing input built")
	}
}
