package daemon

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/sourcetrack"
)

// MigrateState rewrites a persisted daemon state so it restores
// cleanly under cfg/track, carrying every piece of evidence that keeps
// its meaning across the change and resetting the rest. The matrix:
//
//   - Alpha / Offset (a) / Threshold (N): rewritten in place, full
//     state carried. The statistics these parameters consume are
//     per-period quantities whose meaning does not change; the new
//     parameters simply apply from the next observation on.
//   - T0 / MinK / WarmupPeriods: the period semantics change, so the
//     per-period CUSUM evidence cannot be reinterpreted. The learned
//     K̄ baseline is a rate, though — it is carried, scaled by
//     newT0/oldT0, while the CUSUM statistic, alarm and report history
//     reset and replay restarts from period zero.
//   - Keyed half: delegated to sourcetrack.MigrateSnapshot (same
//     matrix per key). When the keyed change is not portable (key
//     bits, T0), or tracking is being disabled, or the aggregate reset
//     desynchronized the period clocks, the keyed half resets — the
//     loader fast-forwards a fresh tracker to the aggregate's resume
//     point.
//
// Corrupt snapshots are not MigrateState's business: it rewrites
// configuration, and restoring the result still runs every structural
// validation.
func MigrateState(st State, cfg core.Config, track *sourcetrack.Config) State {
	want := cfg.Normalized()
	old := st.Config.Normalized()
	if old.T0 != want.T0 || old.MinK != want.MinK || old.WarmupPeriods != want.WarmupPeriods {
		// K̄ is SYN/ACKs per period: the same traffic rate under a new
		// period length scales linearly.
		st.KBar *= float64(want.T0) / float64(old.T0)
		st.Y = 0
		st.AlarmLatched = false
		st.Observations = 0
		st.OnsetIndex = 0
		st.Reports = nil
		st.Alarm = nil
	}
	st.Config = want

	switch {
	case track == nil:
		st.Sources = nil
	case st.Sources == nil:
		// Stays nil: the loader fast-forwards a fresh tracker.
	default:
		ks, ok := sourcetrack.MigrateSnapshot(*st.Sources, *track)
		if ok && ks.Periods == len(st.Reports) {
			st.Sources = &ks
		} else {
			st.Sources = nil
		}
	}
	return st
}

// LoadOrNewStateWithPolicy is LoadOrNewState with a mismatch policy:
// under PolicyError it is exactly LoadOrNewState; under PolicyMigrate
// a configuration mismatch re-reads the state file, rewrites it via
// MigrateState and restores the result; under PolicyReset the
// snapshot is discarded and the agent starts fresh. Corrupt snapshots
// (core.ErrBadSnapshot, sourcetrack.ErrBadSnapshot) and I/O failures
// stay fatal under every policy — a policy decides what to do with a
// readable snapshot that asks for different parameters, never papers
// over a broken one.
func LoadOrNewStateWithPolicy(statePath string, cfg core.Config, track *sourcetrack.Config, policy Policy) (*core.Agent, *sourcetrack.Tracker, StateAction, error) {
	agent, tracker, resumed, err := LoadOrNewState(statePath, cfg, track)
	if err == nil {
		if resumed {
			return agent, tracker, ActionResumed, nil
		}
		return agent, tracker, ActionFresh, nil
	}
	mismatch := errors.Is(err, ErrConfigMismatch) || errors.Is(err, sourcetrack.ErrConfigMismatch)
	if !mismatch || policy == PolicyError {
		return nil, nil, "", err
	}

	freshTracker := func(periods int) (*sourcetrack.Tracker, error) {
		if track == nil {
			return nil, nil
		}
		tr, err := sourcetrack.New(*track)
		if err != nil {
			return nil, err
		}
		if err := tr.FastForward(periods); err != nil {
			return nil, err
		}
		return tr, nil
	}

	if policy == PolicyReset {
		a, err := core.NewAgent(cfg)
		if err != nil {
			return nil, nil, "", err
		}
		tr, err := freshTracker(0)
		if err != nil {
			return nil, nil, "", err
		}
		return a, tr, ActionReset, nil
	}

	// PolicyMigrate: rewrite the snapshot for the new configuration and
	// restore the result through the same strict path.
	st, err := ReadStateFile(statePath)
	if err != nil {
		return nil, nil, "", fmt.Errorf("migrate %s: %w", statePath, err)
	}
	a, tr, err := restoreState(MigrateState(st, cfg, track), track)
	if err != nil {
		return nil, nil, "", fmt.Errorf("migrate %s: %w", statePath, err)
	}
	return a, tr, ActionMigrated, nil
}

// restoreState rebuilds the live halves of a State: the aggregate
// agent, and either the restored keyed tracker (state present and
// tracking requested) or a fresh one fast-forwarded to the aggregate's
// resume point (tracking requested over an aggregate-only state). It
// is the in-memory twin of LoadOrNewState's restore path, used by the
// supervisor's reload to rebuild an agent from captured live state
// without a disk round-trip.
func restoreState(st State, track *sourcetrack.Config) (*core.Agent, *sourcetrack.Tracker, error) {
	a, err := core.RestoreAgent(st.Snapshot)
	if err != nil {
		return nil, nil, err
	}
	if st.Sources != nil && track != nil {
		tr, err := sourcetrack.Restore(*st.Sources, *track)
		if err != nil {
			return nil, nil, err
		}
		return a, tr, nil
	}
	if track == nil {
		return a, nil, nil
	}
	tr, err := sourcetrack.New(*track)
	if err != nil {
		return nil, nil, err
	}
	if err := tr.FastForward(len(st.Reports)); err != nil {
		return nil, nil, err
	}
	return a, tr, nil
}
