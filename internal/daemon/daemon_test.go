package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/ingest"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testTrace builds a deterministic 10-minute Auckland trace (30
// periods at the default t0 = 20 s), optionally with a 10 SYN/s flood
// from minute 3 to 8.
func testTrace(t *testing.T, withFlood bool) *trace.Trace {
	t.Helper()
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	p.OutagesPerHour = 0
	bg, err := trace.Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !withFlood {
		return bg
	}
	fl, err := flood.GenerateTrace(flood.Config{
		Start: 3 * time.Minute, Duration: 5 * time.Minute,
		Pattern: flood.Constant{PerSecond: 10},
		Victim:  netip.MustParseAddr("11.99.99.1"), VictimPort: 80, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := trace.Merge("mixed", bg, fl)
	mixed.Span = bg.Span
	return mixed
}

func newTestDaemon(t *testing.T, withFlood bool, opts Options) *Daemon {
	t.Helper()
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(agent, testTrace(t, withFlood), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// truncated returns the prefix of tr that a daemon would have seen if
// stopped at span: records with Ts < span, Span = span.
func truncated(tr *trace.Trace, span time.Duration) *trace.Trace {
	out := &trace.Trace{Name: tr.Name, Span: span}
	for _, r := range tr.Records {
		if r.Ts < span {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// get fetches path from the daemon's handler and returns the body.
func get(t *testing.T, d *Daemon, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestNewValidates(t *testing.T) {
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(agent, &trace.Trace{Name: "empty"}, Options{}); err == nil {
		t.Error("no-span trace accepted")
	}
	if _, err := New(agent, &trace.Trace{Name: "short", Span: time.Second}, Options{}); err == nil {
		t.Error("sub-period trace accepted")
	}
	unsorted := &trace.Trace{Name: "unsorted", Span: time.Hour, Records: []trace.Record{
		{Ts: 2 * time.Second}, {Ts: time.Second},
	}}
	if _, err := New(agent, unsorted, Options{}); !errors.Is(err, trace.ErrUnsorted) {
		t.Errorf("unsorted trace: err = %v, want ErrUnsorted", err)
	}

	// An agent whose snapshot history outruns the trace cannot have
	// come from it.
	long, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace(t, false)
	if _, err := long.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	shortTr := truncated(tr, 2*time.Minute)
	if _, err := New(long, shortTr, Options{}); err == nil {
		t.Error("agent with more periods than the trace accepted")
	}
}

func TestInstantReplayStatus(t *testing.T) {
	d := newTestDaemon(t, true, Options{})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	s := d.Status()
	if !s.ReplayDone {
		t.Error("replay not marked done")
	}
	if s.Periods != 30 || s.TotalPeriods != 30 {
		t.Errorf("periods = %d/%d, want 30/30", s.Periods, s.TotalPeriods)
	}
	if !s.Alarmed {
		t.Error("flooded trace did not alarm")
	}
	if s.AlarmPeriod < 9 {
		t.Errorf("alarm period %d precedes onset period 9", s.AlarmPeriod)
	}
	if s.KBar <= 0 {
		t.Error("K-bar not populated")
	}
	if s.RecordsProcessed == 0 || s.RecordsSkipped != 0 {
		t.Errorf("records processed/skipped = %d/%d", s.RecordsProcessed, s.RecordsSkipped)
	}
	if s.LastOutSYN == 0 {
		t.Error("last-period SYN count not populated")
	}
}

func TestCleanTraceStaysQuiet(t *testing.T) {
	d := newTestDaemon(t, false, Options{})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if d.Status().Alarmed {
		t.Error("benign trace alarmed")
	}
}

func TestHealthz(t *testing.T) {
	d := newTestDaemon(t, false, Options{})
	if code, body := get(t, d, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %q", code, body)
	}

	// A replay failure flips healthz to 503 and surfaces everywhere.
	d.failReplay(errors.New("boom"))
	if code, body := get(t, d, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "boom") {
		t.Errorf("failed healthz = %d %q, want 503 with the error", code, body)
	}
	if s := d.Status(); s.ReplayError != "boom" {
		t.Errorf("status.ReplayError = %q", s.ReplayError)
	}
	if _, body := get(t, d, "/metrics"); !strings.Contains(body, "syndog_replay_failed 1") {
		t.Error("metrics missing syndog_replay_failed 1")
	}
}

func TestReportsEndpoint(t *testing.T) {
	d := newTestDaemon(t, true, Options{})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, d, "/reports")
	var reports []core.Report
	if err := json.Unmarshal([]byte(body), &reports); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 30 {
		t.Errorf("reports = %d, want 30", len(reports))
	}
	sawAlarm := false
	for _, r := range reports {
		if r.Alarmed {
			sawAlarm = true
		}
	}
	if !sawAlarm {
		t.Error("no alarmed period in reports")
	}
}

// normalizeLatency rewrites the wall-clock-dependent halves of the
// latency histogram families — per-bucket counts and the running sum —
// to a fixed placeholder. The line set, family names, bounds and the
// deterministic _count totals stay pinned; only the timing-dependent
// values are masked.
var latencyValue = regexp.MustCompile(`^(syndog_\w+_seconds(?:_bucket\{[^}]*\}|_sum)) \S+$`)

func normalizeLatency(body string) string {
	lines := strings.Split(body, "\n")
	for i, ln := range lines {
		if m := latencyValue.FindStringSubmatch(ln); m != nil {
			lines[i] = m[1] + " X"
		}
	}
	return strings.Join(lines, "\n")
}

// TestMetricsGolden pins the exposition format: names, TYPE lines and
// values for a deterministic flooded replay. Histogram bucket/sum
// values are wall-clock noise and are normalized away; everything else
// — including the histograms' _count lines — is byte-pinned.
// Regenerate with -update.
func TestMetricsGolden(t *testing.T) {
	d := newTestDaemon(t, true, Options{})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	_, body := get(t, d, "/metrics")
	body = normalizeLatency(body)

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if body != string(want) {
		t.Errorf("metrics exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

// TestResumeEquivalence is the headline invariant: snapshot at an
// arbitrary period, restart against the full trace, and the final
// /reports payload is byte-identical to a single uninterrupted run.
func TestResumeEquivalence(t *testing.T) {
	tr := testTrace(t, true)
	t0 := core.DefaultObservationPeriod

	reportsBody := func(d *Daemon) string {
		_, body := get(t, d, "/reports")
		return body
	}

	// Uninterrupted reference run.
	ref, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	d0, err := New(ref, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d0.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	want := reportsBody(d0)

	for _, k := range []int{0, 1, 9, 17, 29, 30} {
		// "First boot": the daemon ran k periods, then stopped; all it
		// saw of the trace is the prefix before the stop.
		a1, err := core.NewAgent(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 {
			if _, err := a1.ProcessTrace(truncated(tr, time.Duration(k)*t0)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := a1.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}

		// "Second boot": resume the snapshot, replay the full trace.
		a2, err := core.ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := New(a2, tr, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d1.ResumeOffset() != k {
			t.Fatalf("k=%d: resume offset = %d", k, d1.ResumeOffset())
		}
		if err := d1.Replay(context.Background(), 0); err != nil {
			t.Fatal(err)
		}

		if got := reportsBody(d1); got != want {
			t.Errorf("k=%d: resumed /reports differ from uninterrupted run", k)
		}
		// Every record lands exactly once: skipped (pre-snapshot) plus
		// processed (this run) covers the whole trace.
		s := d1.Status()
		if s.RecordsSkipped+s.RecordsProcessed != len(tr.Records) {
			t.Errorf("k=%d: skipped %d + processed %d != %d records",
				k, s.RecordsSkipped, s.RecordsProcessed, len(tr.Records))
		}
		if !s.ReplayDone {
			t.Errorf("k=%d: resumed replay not done", k)
		}
	}

	// The same invariant must hold on the fully streaming path: a
	// daemon resumed over a pcap *stream* (never a materialized trace)
	// lands on the same /reports bytes as an uninterrupted streaming
	// run. A pcap carries no span header, so the span comes from an
	// O(1) prescan and covers only provably complete periods.
	prefix := netip.MustParsePrefix("130.216.0.0/16")
	pcapPath := filepath.Join(t.TempDir(), "resume.pcap")
	pf, err := os.Create(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePcap(pf, tr); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ingest.PcapInfo(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	info.Name = "resume.pcap"

	runStream := func(agent *core.Agent, inf ingest.Info) *Daemon {
		t.Helper()
		src, _, err := ingest.Open(pcapPath, prefix)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		d, err := NewStream(ingest.WrapAgent(agent), src, inf, t0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Replay(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return d
	}

	refAgent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dRef := runStream(refAgent, info)
	wantStream := reportsBody(dRef)
	streamPeriods := dRef.TotalPeriods()
	if streamPeriods < 25 {
		t.Fatalf("pcap prescan found only %d periods", streamPeriods)
	}

	for _, k := range []int{0, 1, 9, streamPeriods} {
		// First boot: the daemon ran k periods over the stream, then
		// stopped. Clipping the span to k periods makes the replay
		// close exactly k boundaries without reading past them.
		a1, err := core.NewAgent(core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if k > 0 {
			clipped := info
			clipped.Span = time.Duration(k) * t0
			runStream(a1, clipped)
		}

		// Second boot: resume the snapshot over a fresh stream.
		a2, err := core.RestoreAgent(a1.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		src, _, err := ingest.Open(pcapPath, prefix)
		if err != nil {
			t.Fatal(err)
		}
		d1, err := NewStream(ingest.WrapAgent(a2), src, info, t0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d1.ResumeOffset() != k {
			t.Fatalf("pcap k=%d: resume offset = %d", k, d1.ResumeOffset())
		}
		if err := d1.Replay(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
		if got := reportsBody(d1); got != wantStream {
			t.Errorf("pcap k=%d: resumed streaming /reports differ from uninterrupted run", k)
		}
		if !d1.Status().ReplayDone {
			t.Errorf("pcap k=%d: resumed streaming replay not done", k)
		}
	}
}

// TestPacedResumeMatchesInstant drives the timed scheduler path over a
// resumed agent and checks it lands on the identical report series.
func TestPacedResumeMatchesInstant(t *testing.T) {
	tr := testTrace(t, true)
	t0 := core.DefaultObservationPeriod

	ref, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(ref.Reports())
	if err != nil {
		t.Fatal(err)
	}

	const k = 11
	a1, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.ProcessTrace(truncated(tr, k*t0)); err != nil {
		t.Fatal(err)
	}
	a2, err := core.RestoreAgent(a1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(a2, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 19 remaining periods at one period per ~2 ms of wall time.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Replay(ctx, 10000); err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(d.Reports())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Error("paced resumed replay diverged from uninterrupted run")
	}
}

func TestPacedReplayRespectsContext(t *testing.T) {
	d := newTestDaemon(t, false, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Replay(ctx, 0.001) // absurdly slow: must rely on cancellation
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("replay did not stop on context cancellation")
	}
	s := d.Status()
	if s.ReplayDone {
		t.Error("cancelled replay claimed completion")
	}
	if s.ReplayError != "" {
		t.Errorf("cancellation recorded as failure: %q", s.ReplayError)
	}
}

func TestPacedReplayProgresses(t *testing.T) {
	d := newTestDaemon(t, false, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	// 20s periods at speed 4000: one period per 5ms of wall time.
	go d.Replay(ctx, 4000)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.Status().Periods >= 3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("paced replay stuck at %d periods", d.Status().Periods)
}

func TestLoadOrNewAgent(t *testing.T) {
	dir := t.TempDir()

	// No state path and missing file both mean a fresh agent.
	for _, path := range []string{"", dir + "/none.json"} {
		a, resumed, err := LoadOrNewAgent(path, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if resumed || len(a.Reports()) != 0 {
			t.Errorf("path %q: fresh agent resumed=%v reports=%d", path, resumed, len(a.Reports()))
		}
	}

	// Corrupt state is an error, not a silent fresh start.
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadOrNewAgent(bad, core.Config{}); err == nil {
		t.Error("corrupt snapshot silently ignored")
	}

	// A real snapshot resumes with its history intact.
	src, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.ProcessTrace(testTrace(t, true)); err != nil {
		t.Fatal(err)
	}
	good := dir + "/good.json"
	if err := WriteSnapshotFile(src.Snapshot(), good); err != nil {
		t.Fatal(err)
	}
	a, resumed, err := LoadOrNewAgent(good, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || len(a.Reports()) != 30 || !a.Alarmed() {
		t.Errorf("resumed=%v reports=%d alarmed=%v", resumed, len(a.Reports()), a.Alarmed())
	}

	// A snapshot whose config disagrees with the flags is a hard
	// error, never silently adopted.
	if _, _, err := LoadOrNewAgent(good, core.Config{T0: 30 * time.Second}); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("t0 mismatch: err = %v, want ErrConfigMismatch", err)
	}
	if _, _, err := LoadOrNewAgent(good, core.Config{Threshold: 2.5}); !errors.Is(err, ErrConfigMismatch) {
		t.Errorf("threshold mismatch: err = %v, want ErrConfigMismatch", err)
	}
	// Equivalent-after-defaulting configs are not a mismatch.
	if _, _, err := LoadOrNewAgent(good, core.Config{T0: 20 * time.Second, Alpha: 0.9}); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
}

func TestCheckpointDurableRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	d := newTestDaemon(t, true, Options{StatePath: path})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s := d.Status()
	if s.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1", s.Checkpoints)
	}
	if _, body := get(t, d, "/metrics"); !strings.Contains(body, "syndog_checkpoints_total 1") ||
		!strings.Contains(body, "syndog_checkpoint_age_seconds") {
		t.Error("metrics missing checkpoint counters")
	}

	// The file must be a complete, loadable snapshot.
	a, resumed, err := LoadOrNewAgent(path, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed || len(a.Reports()) != 30 {
		t.Errorf("checkpoint reload: resumed=%v reports=%d", resumed, len(a.Reports()))
	}

	// No leftover temp files from the atomic write.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot dir has %d entries, want just the state file", len(entries))
	}
}

// TestServeLifecycle drives the full Serve loop: banner, live
// endpoints, periodic checkpointing during a paced replay, clean
// shutdown on cancellation, and a resume that completes the run with
// the same reports as an uninterrupted one.
func TestServeLifecycle(t *testing.T) {
	tr := testTrace(t, true)
	statePath := filepath.Join(t.TempDir(), "state.json")

	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pr, pw := io.Pipe()
	d, err := New(agent, tr, Options{
		Log:                pw,
		StatePath:          statePath,
		CheckpointInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	// Speed 400: one 20 s period per 50 ms; the full trace would take
	// 1.5 s, and we cancel after a few periods.
	go func() { serveDone <- d.Serve(ctx, "127.0.0.1:0", 400) }()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no banner: %v", sc.Err())
	}
	m := regexp.MustCompile(`http://([0-9.]+:[0-9]+)`).FindStringSubmatch(sc.Text())
	if m == nil {
		t.Fatalf("banner without address: %q", sc.Text())
	}
	go io.Copy(io.Discard, pr)
	base := "http://" + m[1]

	httpGet := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("replay never progressed past 3 periods")
		}
		var s Status
		if err := json.Unmarshal([]byte(httpGet("/status")), &s); err != nil {
			t.Fatal(err)
		}
		if s.Periods >= 3 && s.Checkpoints >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-serveDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve = %v, want context.Canceled", err)
	}
	// Mid-replay shutdown: persist the final state like cmd/syndogd.
	if err := d.SaveState(statePath); err != nil {
		t.Fatal(err)
	}

	// "Reboot": resume from the checkpoint and finish the replay.
	resumedAgent, resumed, err := LoadOrNewAgent(statePath, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("state file not resumed")
	}
	d2, err := New(resumedAgent, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.ResumeOffset() == 0 {
		t.Error("resume offset is zero after mid-replay shutdown")
	}
	if err := d2.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	ref, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessTrace(tr); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ref.Reports())
	got, _ := json.Marshal(d2.Reports())
	if !bytes.Equal(got, want) {
		t.Error("resumed run diverged from uninterrupted run")
	}
}

// countingSource wraps a Source and counts how many records were read
// off it — the probe for the resume-drain cancellation test.
type countingSource struct {
	src   ingest.Source
	reads int
}

func (c *countingSource) Next() (trace.Record, error) {
	c.reads++
	return c.src.Next()
}

func (c *countingSource) Close() error { return c.src.Close() }

// TestReplayDrainRespectsContext is the regression test for the
// unkillable resume drain: a daemon resuming deep into a capture
// drains the entire skipped prefix record by record, and the pre-fix
// loop never looked at ctx — SIGTERM was ignored until the drain
// finished. A cancelled context must stop the drain after at most one
// read.
func TestReplayDrainRespectsContext(t *testing.T) {
	tr := testTrace(t, true)
	t0 := core.DefaultObservationPeriod

	// First boot: 20 of 30 periods done, then stopped.
	const k = 20
	a1, err := core.NewAgent(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.ProcessTrace(truncated(tr, k*t0)); err != nil {
		t.Fatal(err)
	}
	a2, err := core.RestoreAgent(a1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Second boot resumes over the full stream — and is killed before
	// the drain of the k skipped periods can finish.
	src := &countingSource{src: ingest.NewTraceSource(tr)}
	d, err := NewStream(ingest.WrapAgent(a2), src,
		ingest.Info{Name: tr.Name, Span: tr.Span, Records: len(tr.Records)}, t0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.ResumeOffset() != k {
		t.Fatalf("resume offset = %d, want %d", d.ResumeOffset(), k)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Replay(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Replay = %v, want context.Canceled", err)
	}
	// The skipped prefix holds thousands of records; a cancelled drain
	// must not have churned through them.
	if src.reads > 1 {
		t.Errorf("cancelled drain read %d records from the source", src.reads)
	}
	s := d.Status()
	if s.ReplayDone || s.ReplayError != "" {
		t.Errorf("cancelled drain recorded done=%v err=%q", s.ReplayDone, s.ReplayError)
	}
}

// TestCheckpointFailureObservability is the regression test for silent
// checkpoint failures: a failing checkpoint must surface in /status
// (checkpointFailures, lastCheckpointError) and /metrics
// (syndog_checkpoint_failures_total), and a later success must clear
// the error while keeping the count.
func TestCheckpointFailureObservability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "subdir", "state.json") // parent missing: writes fail
	d := newTestDaemon(t, true, Options{StatePath: path})
	if err := d.Replay(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	if err := d.Checkpoint(); err == nil {
		t.Fatal("checkpoint into a missing directory succeeded")
	}
	s := d.Status()
	if s.CheckpointFailures != 1 || s.Checkpoints != 0 {
		t.Errorf("failures=%d checkpoints=%d, want 1/0", s.CheckpointFailures, s.Checkpoints)
	}
	if s.LastCheckpointError == "" {
		t.Error("lastCheckpointError empty after a failed checkpoint")
	}
	if _, body := get(t, d, "/metrics"); !strings.Contains(body, "syndog_checkpoint_failures_total 1") {
		t.Error("metrics missing syndog_checkpoint_failures_total 1")
	}

	// The disk recovers: the next checkpoint succeeds, clears the error
	// and leaves the failure count as history.
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s = d.Status()
	if s.CheckpointFailures != 1 || s.Checkpoints != 1 {
		t.Errorf("after recovery: failures=%d checkpoints=%d, want 1/1", s.CheckpointFailures, s.Checkpoints)
	}
	if s.LastCheckpointError != "" {
		t.Errorf("lastCheckpointError %q not cleared by success", s.LastCheckpointError)
	}
	if _, body := get(t, d, "/metrics"); !strings.Contains(body, "syndog_checkpoint_failures_total 1") {
		t.Error("failure count lost from metrics after recovery")
	}
}
