package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
)

// Status is the /status payload. Field names are part of the daemon's
// HTTP contract; additions are fine, renames are not.
type Status struct {
	Trace            string `json:"trace"`
	Periods          int    `json:"periods"`
	TotalPeriods     int    `json:"totalPeriods"`
	ResumeOffset     int    `json:"resumeOffset"`
	RecordsProcessed int    `json:"recordsProcessed"`
	RecordsSkipped   int    `json:"recordsSkipped"`
	// RecordsDropped counts records the live source shed under
	// backpressure (ingest.DropCounter); 0 for file replays.
	RecordsDropped uint64 `json:"recordsDropped"`
	// Capture is the live capture accounting — frame, parse, skip and
	// drop counters from the capture.Source. Absent for file replays.
	Capture        *CaptureStatus `json:"capture,omitempty"`
	KBar           float64        `json:"kBar"`
	Statistic      float64        `json:"yn"`
	Alarmed        bool           `json:"alarmed"`
	AlarmPeriod    int            `json:"alarmPeriod,omitempty"`
	AlarmAtNanos   int64          `json:"alarmAtNanos,omitempty"`
	ReplayDone     bool           `json:"replayDone"`
	ReplayError    string         `json:"replayError,omitempty"`
	LastOutSYN     uint64         `json:"lastOutSYN"`
	LastInSYNACK   uint64         `json:"lastInSYNACK"`
	Tracking       bool           `json:"tracking"`
	SourcesTracked int            `json:"sourcesTracked"`
	SourcesAlarmed int            `json:"sourcesAlarmed"`
	SourcesEvicted uint64         `json:"sourcesEvicted"`
	Checkpoints    int            `json:"checkpoints"`
	CheckpointAge  time.Duration  `json:"checkpointAgeNanos,omitempty"`
	// CheckpointFailures counts failed checkpoint writes;
	// LastCheckpointError is the most recent failure, cleared by the
	// next success.
	CheckpointFailures  int           `json:"checkpointFailures"`
	LastCheckpointError string        `json:"lastCheckpointError,omitempty"`
	T0                  time.Duration `json:"t0Nanos"`

	// PeriodLatency and CheckpointLatency are histogram snapshots
	// backing the /metrics latency families. They ride on Status so the
	// metrics renderers stay pure functions of one consistent state
	// capture, but they are deliberately not part of the /status JSON
	// contract.
	PeriodLatency     LatencySnapshot `json:"-"`
	CheckpointLatency LatencySnapshot `json:"-"`
}

// CaptureStatus is the live capture accounting inside Status: how many
// frames the handle saw, how many became records, and where the rest
// went — every loss named, none silent.
type CaptureStatus struct {
	Frames        uint64 `json:"frames"`
	Parsed        uint64 `json:"parsed"`
	Skipped       uint64 `json:"skipped"`
	RingDropped   uint64 `json:"ringDropped"`
	KernelDropped uint64 `json:"kernelDropped"`
}

// captureStats is implemented by sources with capture accounting
// (capture.Source).
type captureStats interface {
	Stats() capture.Stats
}

// Status returns a consistent snapshot of the daemon's state.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Status{
		Trace:              d.srcName,
		Periods:            len(d.summaries),
		TotalPeriods:       d.totalPeriods,
		ResumeOffset:       d.resumeOffset,
		RecordsProcessed:   d.records,
		RecordsSkipped:     d.skipped,
		KBar:               d.det.KBar(),
		Alarmed:            d.det.Alarmed(),
		ReplayDone:         d.done,
		Checkpoints:        d.checkpoints,
		CheckpointFailures: d.checkpointFailures,
		T0:                 d.t0,
		PeriodLatency:      d.periodLatency.snapshot(),
		CheckpointLatency:  d.checkpointLatency.snapshot(),
	}
	if dc, ok := d.src.(ingest.DropCounter); ok {
		s.RecordsDropped = dc.Dropped()
	}
	if cs, ok := d.src.(captureStats); ok {
		st := cs.Stats()
		s.Capture = &CaptureStatus{
			Frames:        st.Frames,
			Parsed:        st.Parsed,
			Skipped:       st.Skipped,
			RingDropped:   st.RingDropped,
			KernelDropped: st.KernelDropped,
		}
	}
	if d.lastCheckpointErr != nil {
		s.LastCheckpointError = d.lastCheckpointErr.Error()
	}
	if d.replayErr != nil {
		s.ReplayError = d.replayErr.Error()
	}
	if n := len(d.summaries); n > 0 {
		last := d.summaries[n-1]
		s.Statistic = last.Y
		s.LastOutSYN = last.OutSYN
		s.LastInSYNACK = last.InSYNACK
	}
	if al := d.det.FirstAlarm(); al != nil {
		s.AlarmPeriod = al.Period
		s.AlarmAtNanos = int64(al.At)
	}
	if !d.lastCheckpoint.IsZero() {
		s.CheckpointAge = time.Since(d.lastCheckpoint)
	}
	if tr := d.opts.Tracker; tr != nil {
		// The tracker has its own (leaf) shard locks; reading it under
		// d.mu is deadlock-free because nothing acquires them first.
		ts := tr.Stats()
		s.Tracking = true
		s.SourcesTracked = ts.Tracked
		s.SourcesAlarmed = ts.Alarmed
		s.SourcesEvicted = ts.Evicted
	}
	return s
}

// SourcesPayload is the /sources response: the tracker's truncation
// ledger plus the ranked most-suspect keys. Enabled is false (and the
// rest zero) when the daemon runs without -track-sources.
type SourcesPayload struct {
	Enabled    bool `json:"enabled"`
	KeyBits    int  `json:"keyBits,omitempty"`
	MaxSources int  `json:"maxSources,omitempty"`
	Periods    int  `json:"periods,omitempty"`
	// Total is the full ranked population size; Offset is where the
	// returned page starts within it. Together they make truncation
	// visible and let clients page through every key.
	Total   int                        `json:"total"`
	Offset  int                        `json:"offset"`
	Stats   sourcetrack.TrackerStats   `json:"stats"`
	Sources []sourcetrack.SourceReport `json:"sources"`
}

// Sources returns the /sources payload: the page of n ranked keys
// starting at offset. n == 0 returns no rows (headers and stats only);
// n < 0 returns everything from offset on. A negative offset is
// clamped to 0, one past the population to an empty page. The period
// clock, stats and rows come from one consistent tracker view — a
// concurrent period close cannot make them disagree.
func (d *Daemon) Sources(n, offset int) SourcesPayload {
	tr := d.opts.Tracker
	if tr == nil {
		return SourcesPayload{}
	}
	cfg := tr.Config()
	v := tr.View(0)
	if offset < 0 {
		offset = 0
	}
	p := SourcesPayload{
		Enabled:    true,
		KeyBits:    cfg.KeyBits,
		MaxSources: cfg.MaxSources,
		Periods:    v.Periods,
		Total:      len(v.Sources),
		Offset:     offset,
		Stats:      v.Stats,
	}
	if offset > len(v.Sources) {
		offset = len(v.Sources)
	}
	page := v.Sources[offset:]
	if n == 0 {
		page = page[:0]
	} else if n > 0 && len(page) > n {
		page = page[:n]
	}
	p.Sources = page
	return p
}

// Reports returns the per-period reports, reconstructed from the
// summary store. Summaries censor only on export, so the
// reconstruction is exact: /reports is byte-identical to the
// pre-summary-layer extraction straight off the detector.
func (d *Daemon) Reports() []core.Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]core.Report, len(d.summaries))
	for i, ps := range d.summaries {
		out[i] = ps.Report()
	}
	return out
}

// Summaries returns the exported (wire-form) summaries for periods at
// or after from: the same objects the uplink pushes, censored and
// digest-trimmed per Options.Summary. A fusion coordinator polling
// instead of being pushed to reads this endpoint.
func (d *Daemon) Summaries(from int) []summary.PeriodSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(d.summaries) {
		from = len(d.summaries)
	}
	out := make([]summary.PeriodSummary, 0, len(d.summaries)-from)
	for _, ps := range d.summaries[from:] {
		out = append(out, ps.Censor(d.opts.Summary))
	}
	return out
}

// Handler builds the daemon's HTTP mux:
//
//	GET /healthz  -> 200 "ok", or 503 with the replay error
//	GET /status   -> JSON Status
//	GET /reports  -> JSON array of per-period reports
//	GET /summaries -> JSON array of exported (censored) summaries;
//	                 ?from= first period index, default 0
//	GET /sources  -> JSON SourcesPayload (ranked keys; ?n= page size,
//	                 default 20, 0 = headers only; ?offset= page start;
//	                 negatives clamp to 0)
//	GET /metrics  -> Prometheus-style text exposition
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s := d.Status(); s.ReplayError != "" {
			http.Error(w, "replay failed: "+s.ReplayError, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Status())
	})
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Reports())
	})
	mux.HandleFunc("GET /summaries", func(w http.ResponseWriter, r *http.Request) {
		// ?from= is the first period index wanted (default 0); the
		// response is the censored wire form, exactly what the uplink
		// would have pushed.
		from := 0
		if q := r.URL.Query().Get("from"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
				return
			}
			from = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Summaries(from))
	})
	mux.HandleFunc("GET /sources", func(w http.ResponseWriter, r *http.Request) {
		// ?n= is the page size (default 20; 0 means "no rows, headers
		// and stats only" — never "everything": an operator limiting
		// output should not be handed the full key population). ?offset=
		// pages through the ranking. Non-integers are a 400; negatives
		// clamp to 0.
		n, offset := 20, 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			n = max(v, 0)
		}
		if q := r.URL.Query().Get("offset"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad offset: "+err.Error(), http.StatusBadRequest)
				return
			}
			offset = max(v, 0)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Sources(n, offset))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, d.Status())
	})
	return mux
}

// metricDef is one exposition line pair: its TYPE header and how to
// render a Status into its sample value. present gates metrics that
// are only meaningful sometimes (checkpoint age before the first
// checkpoint would be a lie, not a zero).
type metricDef struct {
	name, typ string
	value     func(Status) string
	present   func(Status) bool // nil = always
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// capField reads one capture counter off a Status, zero when the
// source has no capture accounting (file replays).
func capField(s Status, f func(CaptureStatus) uint64) uint64 {
	if s.Capture == nil {
		return 0
	}
	return f(*s.Capture)
}

// metricDefs is the exposition, in order. Metric names and the
// rendered format are a public contract (dashboards scrape them); the
// golden test pins the single-agent form byte for byte, and the
// labeled multi-agent form renders the same table with one sample per
// agent.
var metricDefs = []metricDef{
	{"syndog_periods_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.Periods) }, nil},
	{"syndog_kbar", "gauge", func(s Status) string { return fmt.Sprintf("%g", s.KBar) }, nil},
	{"syndog_statistic", "gauge", func(s Status) string { return fmt.Sprintf("%g", s.Statistic) }, nil},
	{"syndog_alarmed", "gauge", func(s Status) string { return fmt.Sprintf("%d", b2i(s.Alarmed)) }, nil},

	// Replay progress and volume.
	{"syndog_replay_progress", "gauge", func(s Status) string {
		progress := 0.0
		if s.TotalPeriods > 0 {
			progress = float64(s.Periods) / float64(s.TotalPeriods)
		}
		return fmt.Sprintf("%g", progress)
	}, nil},
	{"syndog_replay_done", "gauge", func(s Status) string { return fmt.Sprintf("%d", b2i(s.ReplayDone)) }, nil},
	{"syndog_replay_failed", "gauge", func(s Status) string { return fmt.Sprintf("%d", b2i(s.ReplayError != "")) }, nil},
	{"syndog_records_processed_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.RecordsProcessed) }, nil},
	{"syndog_records_skipped_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.RecordsSkipped) }, nil},
	// Backpressure loss on live feeds (ChanSource drop mode); always 0
	// for file replays. Emitted unconditionally so wiring a live source
	// never changes the exposition's line set.
	{"syndog_records_dropped_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.RecordsDropped) }, nil},

	// Live capture accounting (capture.Source): frames seen, records
	// parsed, frames the classifier skipped, records shed at a full
	// ring, frames the kernel dropped before this process saw them.
	// Emitted unconditionally (zeros for file replays) so switching an
	// agent to a live: input never changes the exposition's line set.
	{"syndog_capture_frames_total", "counter", func(s Status) string {
		return fmt.Sprintf("%d", capField(s, func(c CaptureStatus) uint64 { return c.Frames }))
	}, nil},
	{"syndog_capture_records_total", "counter", func(s Status) string {
		return fmt.Sprintf("%d", capField(s, func(c CaptureStatus) uint64 { return c.Parsed }))
	}, nil},
	{"syndog_capture_skipped_total", "counter", func(s Status) string {
		return fmt.Sprintf("%d", capField(s, func(c CaptureStatus) uint64 { return c.Skipped }))
	}, nil},
	{"syndog_capture_ring_drops_total", "counter", func(s Status) string {
		return fmt.Sprintf("%d", capField(s, func(c CaptureStatus) uint64 { return c.RingDropped }))
	}, nil},
	{"syndog_capture_kernel_drops_total", "counter", func(s Status) string {
		return fmt.Sprintf("%d", capField(s, func(c CaptureStatus) uint64 { return c.KernelDropped }))
	}, nil},
	{"syndog_resume_offset_periods", "gauge", func(s Status) string { return fmt.Sprintf("%d", s.ResumeOffset) }, nil},

	// Last completed period's raw counts: the pair whose difference
	// drives the detector.
	{"syndog_last_period_out_syn", "gauge", func(s Status) string { return fmt.Sprintf("%d", s.LastOutSYN) }, nil},
	{"syndog_last_period_in_synack", "gauge", func(s Status) string { return fmt.Sprintf("%d", s.LastInSYNACK) }, nil},

	// Keyed source attribution. Emitted unconditionally (zeros when
	// tracking is off) so enabling -track-sources never changes the
	// exposition's line set.
	{"syndog_sources_tracking", "gauge", func(s Status) string { return fmt.Sprintf("%d", b2i(s.Tracking)) }, nil},
	{"syndog_sources_tracked", "gauge", func(s Status) string { return fmt.Sprintf("%d", s.SourcesTracked) }, nil},
	{"syndog_sources_alarmed", "gauge", func(s Status) string { return fmt.Sprintf("%d", s.SourcesAlarmed) }, nil},
	{"syndog_sources_evicted_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.SourcesEvicted) }, nil},

	// Durability: how stale the on-disk snapshot is. Age is only
	// meaningful once a checkpoint has been written.
	{"syndog_checkpoints_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.Checkpoints) }, nil},
	{"syndog_checkpoint_failures_total", "counter", func(s Status) string { return fmt.Sprintf("%d", s.CheckpointFailures) }, nil},
	{"syndog_checkpoint_age_seconds", "gauge", func(s Status) string { return fmt.Sprintf("%g", s.CheckpointAge.Seconds()) },
		func(s Status) bool { return s.Checkpoints > 0 }},
}

// histogramDef is one latency-histogram family, table-driven like
// metricDefs: the family name, its HELP text, and how to pull its
// snapshot off a Status. Families render after every scalar metric so
// the scalar exposition stays byte-identical to the pre-histogram
// contract.
type histogramDef struct {
	name, help string
	snap       func(Status) LatencySnapshot
}

var histogramDefs = []histogramDef{
	{"syndog_period_processing_seconds",
		"Wall time to close one observation period (detector fold, keyed tracker fold, summary emission).",
		func(s Status) LatencySnapshot { return s.PeriodLatency }},
	{"syndog_checkpoint_write_seconds",
		"Wall time to persist one checkpoint snapshot (serialize, fsync, rename).",
		func(s Status) LatencySnapshot { return s.CheckpointLatency }},
}

// writeMetrics renders the single-agent exposition: the scalar table,
// then the latency histogram families.
func writeMetrics(w http.ResponseWriter, s Status) {
	for _, m := range metricDefs {
		if m.present != nil && !m.present(s) {
			continue
		}
		fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", m.name, m.typ, m.name, m.value(s))
	}
	for _, h := range histogramDefs {
		writeHistogram(w, h.name, h.help, "", h.snap(s))
	}
}

// agentStatus pairs an agent's name with its status for the labeled
// multi-agent exposition.
type agentStatus struct {
	Name   string
	Status Status
}

// writeMetricsLabeled renders the multi-agent exposition: the same
// metric table, one TYPE header per metric and one {agent="..."}
// labeled sample per agent. A metric absent for every agent (e.g.
// checkpoint age before any checkpoint) omits its header too, matching
// the single-agent behavior.
func writeMetricsLabeled(w http.ResponseWriter, agents []agentStatus) {
	for _, m := range metricDefs {
		wrote := false
		for _, a := range agents {
			if m.present != nil && !m.present(a.Status) {
				continue
			}
			if !wrote {
				fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ)
				wrote = true
			}
			fmt.Fprintf(w, "%s{agent=%q} %s\n", m.name, a.Name, m.value(a.Status))
		}
	}
	for _, h := range histogramDefs {
		writeHistogramHeader(w, h.name, h.help)
		for _, a := range agents {
			writeHistogramSamples(w, h.name, fmt.Sprintf("agent=%q", a.Name), h.snap(a.Status))
		}
	}
}
