package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/sourcetrack"
)

// Status is the /status payload. Field names are part of the daemon's
// HTTP contract; additions are fine, renames are not.
type Status struct {
	Trace            string        `json:"trace"`
	Periods          int           `json:"periods"`
	TotalPeriods     int           `json:"totalPeriods"`
	ResumeOffset     int           `json:"resumeOffset"`
	RecordsProcessed int           `json:"recordsProcessed"`
	RecordsSkipped   int           `json:"recordsSkipped"`
	KBar             float64       `json:"kBar"`
	Statistic        float64       `json:"yn"`
	Alarmed          bool          `json:"alarmed"`
	AlarmPeriod      int           `json:"alarmPeriod,omitempty"`
	AlarmAtNanos     int64         `json:"alarmAtNanos,omitempty"`
	ReplayDone       bool          `json:"replayDone"`
	ReplayError      string        `json:"replayError,omitempty"`
	LastOutSYN       uint64        `json:"lastOutSYN"`
	LastInSYNACK     uint64        `json:"lastInSYNACK"`
	Tracking         bool          `json:"tracking"`
	SourcesTracked   int           `json:"sourcesTracked"`
	SourcesAlarmed   int           `json:"sourcesAlarmed"`
	SourcesEvicted   uint64        `json:"sourcesEvicted"`
	Checkpoints      int           `json:"checkpoints"`
	CheckpointAge    time.Duration `json:"checkpointAgeNanos,omitempty"`
	T0               time.Duration `json:"t0Nanos"`
}

// Status returns a consistent snapshot of the daemon's state.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	reports := d.det.Reports()
	s := Status{
		Trace:            d.srcName,
		Periods:          len(reports),
		TotalPeriods:     d.totalPeriods,
		ResumeOffset:     d.resumeOffset,
		RecordsProcessed: d.records,
		RecordsSkipped:   d.skipped,
		KBar:             d.det.KBar(),
		Alarmed:          d.det.Alarmed(),
		ReplayDone:       d.done,
		Checkpoints:      d.checkpoints,
		T0:               d.t0,
	}
	if d.replayErr != nil {
		s.ReplayError = d.replayErr.Error()
	}
	if len(reports) > 0 {
		last := reports[len(reports)-1]
		s.Statistic = last.Y
		s.LastOutSYN = last.OutSYN
		s.LastInSYNACK = last.InSYNACK
	}
	if al := d.det.FirstAlarm(); al != nil {
		s.AlarmPeriod = al.Period
		s.AlarmAtNanos = int64(al.At)
	}
	if !d.lastCheckpoint.IsZero() {
		s.CheckpointAge = time.Since(d.lastCheckpoint)
	}
	if tr := d.opts.Tracker; tr != nil {
		// The tracker has its own (leaf) shard locks; reading it under
		// d.mu is deadlock-free because nothing acquires them first.
		ts := tr.Stats()
		s.Tracking = true
		s.SourcesTracked = ts.Tracked
		s.SourcesAlarmed = ts.Alarmed
		s.SourcesEvicted = ts.Evicted
	}
	return s
}

// SourcesPayload is the /sources response: the tracker's truncation
// ledger plus the ranked most-suspect keys. Enabled is false (and the
// rest zero) when the daemon runs without -track-sources.
type SourcesPayload struct {
	Enabled    bool                       `json:"enabled"`
	KeyBits    int                        `json:"keyBits,omitempty"`
	MaxSources int                        `json:"maxSources,omitempty"`
	Periods    int                        `json:"periods,omitempty"`
	Stats      sourcetrack.TrackerStats   `json:"stats"`
	Sources    []sourcetrack.SourceReport `json:"sources"`
}

// Sources returns the /sources payload with at most n ranked keys
// (n <= 0 means all).
func (d *Daemon) Sources(n int) SourcesPayload {
	tr := d.opts.Tracker
	if tr == nil {
		return SourcesPayload{}
	}
	cfg := tr.Config()
	return SourcesPayload{
		Enabled:    true,
		KeyBits:    cfg.KeyBits,
		MaxSources: cfg.MaxSources,
		Periods:    tr.Periods(),
		Stats:      tr.Stats(),
		Sources:    tr.Sources(n),
	}
}

// Reports returns a copy of the detector's period reports.
func (d *Daemon) Reports() []core.Report {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]core.Report(nil), d.det.Reports()...)
}

// Handler builds the daemon's HTTP mux:
//
//	GET /healthz  -> 200 "ok", or 503 with the replay error
//	GET /status   -> JSON Status
//	GET /reports  -> JSON array of per-period reports
//	GET /sources  -> JSON SourcesPayload (ranked keys; ?n= limits, default 20)
//	GET /metrics  -> Prometheus-style text exposition
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s := d.Status(); s.ReplayError != "" {
			http.Error(w, "replay failed: "+s.ReplayError, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Status())
	})
	mux.HandleFunc("GET /reports", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Reports())
	})
	mux.HandleFunc("GET /sources", func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "bad n: "+err.Error(), http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(d.Sources(n))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, d.Status())
	})
	return mux
}

// writeMetrics renders the exposition. Metric names are a public
// contract (dashboards scrape them); the golden test pins the format.
func writeMetrics(w http.ResponseWriter, s Status) {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	progress := 0.0
	if s.TotalPeriods > 0 {
		progress = float64(s.Periods) / float64(s.TotalPeriods)
	}

	fmt.Fprintf(w, "# TYPE syndog_periods_total counter\nsyndog_periods_total %d\n", s.Periods)
	fmt.Fprintf(w, "# TYPE syndog_kbar gauge\nsyndog_kbar %g\n", s.KBar)
	fmt.Fprintf(w, "# TYPE syndog_statistic gauge\nsyndog_statistic %g\n", s.Statistic)
	fmt.Fprintf(w, "# TYPE syndog_alarmed gauge\nsyndog_alarmed %d\n", b2i(s.Alarmed))

	// Replay progress and volume.
	fmt.Fprintf(w, "# TYPE syndog_replay_progress gauge\nsyndog_replay_progress %g\n", progress)
	fmt.Fprintf(w, "# TYPE syndog_replay_done gauge\nsyndog_replay_done %d\n", b2i(s.ReplayDone))
	fmt.Fprintf(w, "# TYPE syndog_replay_failed gauge\nsyndog_replay_failed %d\n", b2i(s.ReplayError != ""))
	fmt.Fprintf(w, "# TYPE syndog_records_processed_total counter\nsyndog_records_processed_total %d\n", s.RecordsProcessed)
	fmt.Fprintf(w, "# TYPE syndog_records_skipped_total counter\nsyndog_records_skipped_total %d\n", s.RecordsSkipped)
	fmt.Fprintf(w, "# TYPE syndog_resume_offset_periods gauge\nsyndog_resume_offset_periods %d\n", s.ResumeOffset)

	// Last completed period's raw counts: the pair whose difference
	// drives the detector.
	fmt.Fprintf(w, "# TYPE syndog_last_period_out_syn gauge\nsyndog_last_period_out_syn %d\n", s.LastOutSYN)
	fmt.Fprintf(w, "# TYPE syndog_last_period_in_synack gauge\nsyndog_last_period_in_synack %d\n", s.LastInSYNACK)

	// Keyed source attribution. Emitted unconditionally (zeros when
	// tracking is off) so enabling -track-sources never changes the
	// exposition's line set.
	fmt.Fprintf(w, "# TYPE syndog_sources_tracking gauge\nsyndog_sources_tracking %d\n", b2i(s.Tracking))
	fmt.Fprintf(w, "# TYPE syndog_sources_tracked gauge\nsyndog_sources_tracked %d\n", s.SourcesTracked)
	fmt.Fprintf(w, "# TYPE syndog_sources_alarmed gauge\nsyndog_sources_alarmed %d\n", s.SourcesAlarmed)
	fmt.Fprintf(w, "# TYPE syndog_sources_evicted_total counter\nsyndog_sources_evicted_total %d\n", s.SourcesEvicted)

	// Durability: how stale the on-disk snapshot is. Age is only
	// meaningful once a checkpoint has been written.
	fmt.Fprintf(w, "# TYPE syndog_checkpoints_total counter\nsyndog_checkpoints_total %d\n", s.Checkpoints)
	if s.Checkpoints > 0 {
		fmt.Fprintf(w, "# TYPE syndog_checkpoint_age_seconds gauge\nsyndog_checkpoint_age_seconds %g\n", s.CheckpointAge.Seconds())
	}
}
