package trace

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
)

func sampleTrace() *Trace {
	tr := &Trace{Name: "sample site", Span: time.Minute, Records: []Record{
		rec(0, packet.KindSYN, DirOut),
		rec(time.Second, packet.KindSYNACK, DirIn),
		rec(2*time.Second, packet.KindFIN, DirOut),
		rec(3*time.Second, packet.KindRST, DirIn),
		rec(4*time.Second, packet.KindOther, DirOut),
	}}
	return tr
}

func assertTracesEqual(t *testing.T, got, want *Trace) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name = %q, want %q", got.Name, want.Name)
	}
	if got.Span != want.Span {
		t.Errorf("span = %v, want %v", got.Span, want.Span)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if got.Records[i] != want.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, got.Records[i], want.Records[i])
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, got, want)
}

func TestBinaryBadMagic(t *testing.T) {
	junk := make([]byte, 64)
	if _, err := ReadBinary(bytes.NewReader(junk)); err != ErrBadMagic {
		t.Errorf("error = %v, want ErrBadMagic", err)
	}
}

func TestBinaryTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, 20, len(full) - 3} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: error = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, got, want)
}

func TestCSVToleratesCommentsAndBlanks(t *testing.T) {
	in := `# trace demo span_ns=60000000000

# a comment
ts_ns,kind,dir,src,dst,sport,dport
1000000000,syn,out,152.2.1.1,11.0.0.1,1000,80
`
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.Span != time.Minute {
		t.Errorf("header parsed wrong: %q %v", tr.Name, tr.Span)
	}
	if len(tr.Records) != 1 || tr.Records[0].Kind != packet.KindSYN {
		t.Errorf("records = %+v", tr.Records)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing span", "# trace demo\n"},
		{"bad span", "# trace demo span_ns=xyz\n"},
		{"short line", "5,syn,out\n"},
		{"bad ts", "x,syn,out,1.2.3.4,5.6.7.8,1,2\n"},
		{"bad kind", "5,bogus,out,1.2.3.4,5.6.7.8,1,2\n"},
		{"bad dir", "5,syn,sideways,1.2.3.4,5.6.7.8,1,2\n"},
		{"bad src", "5,syn,out,zzz,5.6.7.8,1,2\n"},
		{"bad dst", "5,syn,out,1.2.3.4,zzz,1,2\n"},
		{"bad sport", "5,syn,out,1.2.3.4,5.6.7.8,x,2\n"},
		{"bad dport", "5,syn,out,1.2.3.4,5.6.7.8,1,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Errorf("input %q accepted", tc.in)
			}
		})
	}
}

func TestParseKindCoversAll(t *testing.T) {
	for _, k := range []packet.Kind{
		packet.KindSYN, packet.KindSYNACK, packet.KindFIN,
		packet.KindRST, packet.KindOther, packet.KindNotTCP,
	} {
		got, err := parseKind(k.String())
		if err != nil || got != k {
			t.Errorf("parseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestPcapRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := WritePcap(&buf, want); err != nil {
		t.Fatal(err)
	}
	prefix := netip.MustParsePrefix("152.2.0.0/16")
	got, err := ReadPcap(bytes.NewReader(buf.Bytes()), "sample site", prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		w, g := want.Records[i], got.Records[i]
		// Timestamps survive at microsecond resolution; ours are
		// second-aligned so they round-trip exactly.
		if g.Ts != w.Ts || g.Kind != w.Kind || g.Dir != w.Dir ||
			g.Src != w.Src || g.Dst != w.Dst ||
			g.SrcPort != w.SrcPort || g.DstPort != w.DstPort {
			t.Errorf("record %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestReadPcapDirectionInference(t *testing.T) {
	// A packet sourced outside the prefix must come back as DirIn even
	// if the original record claimed otherwise (direction is inferred,
	// not stored, in pcap form).
	tr := &Trace{Name: "x", Span: time.Minute, Records: []Record{
		{Ts: 0, Kind: packet.KindSYN, Dir: DirOut,
			Src: netip.MustParseAddr("11.9.9.9"), Dst: netip.MustParseAddr("152.2.0.1"),
			SrcPort: 5, DstPort: 80},
	}}
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(bytes.NewReader(buf.Bytes()), "x", netip.MustParsePrefix("152.2.0.0/16"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].Dir != DirIn {
		t.Errorf("inferred dir = %v, want in", got.Records[0].Dir)
	}
}

func TestGeneratedTraceSurvivesAllCodecs(t *testing.T) {
	p := Auckland()
	p.Span = 5 * time.Minute
	orig, err := Generate(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := WriteBinary(&bin, orig); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, fromBin, orig)

	var csv bytes.Buffer
	if err := WriteCSV(&csv, orig); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, fromCSV, orig)
}
