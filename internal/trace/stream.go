package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapng"
)

// This file holds the streaming record readers the ingest pipeline is
// built on: each decodes one record at a time in O(1) memory. The
// materializing readers (ReadBinary, ReadCSV, ReadPcap) are thin
// collect loops over these streams, so there is exactly one decoder
// per format.

// BinaryStream decodes the compact binary format record by record.
type BinaryStream struct {
	br    *bufio.Reader
	name  string
	span  time.Duration
	count uint32
	read  uint32
	rec   [recordWireLen]byte // record buffer, kept off the per-call stack
}

// NewBinaryStream parses the binary header and returns a stream over
// the records. The span and name are known immediately.
func NewBinaryStream(r io.Reader) (*BinaryStream, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, wrapTrunc(err)
	}
	if magic != binaryMagic {
		return nil, ErrBadMagic
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, wrapTrunc(err)
	}
	s := &BinaryStream{
		br:    br,
		span:  time.Duration(binary.LittleEndian.Uint64(hdr[0:8])),
		count: binary.LittleEndian.Uint32(hdr[8:12]),
	}
	var nameLen [2]byte
	if _, err := io.ReadFull(br, nameLen[:]); err != nil {
		return nil, wrapTrunc(err)
	}
	name := make([]byte, binary.LittleEndian.Uint16(nameLen[:]))
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, wrapTrunc(err)
	}
	s.name = string(name)
	return s, nil
}

// Span returns the header's capture span.
func (s *BinaryStream) Span() time.Duration { return s.span }

// Name returns the header's trace name.
func (s *BinaryStream) Name() string { return s.name }

// Count returns the header's record count.
func (s *BinaryStream) Count() uint32 { return s.count }

// Next returns the next record, io.EOF after the header's count has
// been delivered, or ErrTruncated when the stream ends early.
func (s *BinaryStream) Next() (Record, error) {
	if s.read >= s.count {
		return Record{}, io.EOF
	}
	rec := &s.rec
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		return Record{}, wrapTrunc(err)
	}
	s.read++
	return Record{
		Ts:      time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
		Kind:    packet.Kind(rec[8]),
		Dir:     Direction(rec[9]),
		Src:     netip.AddrFrom4([4]byte(rec[10:14])),
		Dst:     netip.AddrFrom4([4]byte(rec[14:18])),
		SrcPort: binary.LittleEndian.Uint16(rec[18:20]),
		DstPort: binary.LittleEndian.Uint16(rec[20:22]),
	}, nil
}

// NextBatch decodes up to len(buf) records into buf, returning how
// many were filled. io.EOF (possibly alongside n > 0) means the
// header's count has been delivered; ErrTruncated means the stream
// ended early. The decode loop stays inside one call, so the per-record
// cost is a ReadFull from the bufio buffer plus field extraction — no
// interface dispatch.
func (s *BinaryStream) NextBatch(buf []Record) (int, error) {
	n := 0
	rec := &s.rec
	for n < len(buf) {
		if s.read >= s.count {
			return n, io.EOF
		}
		if _, err := io.ReadFull(s.br, rec[:]); err != nil {
			return n, wrapTrunc(err)
		}
		s.read++
		buf[n] = Record{
			Ts:      time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
			Kind:    packet.Kind(rec[8]),
			Dir:     Direction(rec[9]),
			Src:     netip.AddrFrom4([4]byte(rec[10:14])),
			Dst:     netip.AddrFrom4([4]byte(rec[14:18])),
			SrcPort: binary.LittleEndian.Uint16(rec[18:20]),
			DstPort: binary.LittleEndian.Uint16(rec[20:22]),
		}
		n++
	}
	return n, nil
}

// Close implements the ingest Source contract; the stream does not own
// the underlying reader.
func (s *BinaryStream) Close() error { return nil }

// CSVStream decodes the text format line by line. The span and name
// come from the "# trace" header line, which WriteCSV emits first;
// they are known once a line at or past the header has been scanned.
type CSVStream struct {
	sc     *bufio.Scanner
	name   string
	span   time.Duration
	lineNo int
}

// NewCSVStream returns a stream over the CSV records.
func NewCSVStream(r io.Reader) *CSVStream {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &CSVStream{sc: sc}
}

// Span returns the span declared by the header line, or 0 if no header
// has been scanned yet. It is authoritative once Next has returned
// io.EOF.
func (s *CSVStream) Span() time.Duration { return s.span }

// Name returns the trace name declared by the header line, if any.
func (s *CSVStream) Name() string { return s.name }

// Next returns the next record or io.EOF at end of input.
func (s *CSVStream) Next() (Record, error) {
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# trace "):
			var hdr Trace
			if err := parseCSVHeader(&hdr, line); err != nil {
				return Record{}, fmt.Errorf("trace: line %d: %w", s.lineNo, err)
			}
			s.name, s.span = hdr.Name, hdr.Span
			continue
		case strings.HasPrefix(line, "#") || strings.HasPrefix(line, "ts_ns"):
			continue
		}
		rec, err := parseCSVRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", s.lineNo, err)
		}
		return rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

// NextBatch decodes up to len(buf) records into buf. io.EOF (possibly
// alongside n > 0) marks the end of input.
func (s *CSVStream) NextBatch(buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		r, err := s.Next()
		if err != nil {
			return n, err
		}
		buf[n] = r
		n++
	}
	return n, nil
}

// Close implements the ingest Source contract.
func (s *CSVStream) Close() error { return nil }

// PcapStream decodes a libpcap capture packet by packet: each frame
// has its link-layer header stripped (pcapng.LinkPayload — Ethernet
// MAC headers and VLAN tags never reach the classifier), is classified
// by the paper's classifier, and becomes a Record whose direction is
// inferred from the destination relative to stubPrefix. Non-TCP,
// non-IPv4, fragmented and malformed packets are skipped, exactly as
// the leaf-router classifier would ignore them.
//
// A pcap file carries no span header: Span reports lastTs+1 once the
// stream is exhausted (0 before). Records are delivered in capture
// order; captures from a single interface are time-ordered, which the
// ingest pipeline verifies — use ReadPcap to repair unordered files.
type PcapStream struct {
	pr    *pcapng.Reader
	max   time.Duration
	seen  bool
	reuse bool
	seg   packet.Segment // decode target, kept off the per-call stack
}

// NewPcapStream parses the pcap file header and returns a stream.
func NewPcapStream(r io.Reader) (*PcapStream, error) {
	pr, err := pcapng.NewReader(r)
	if err != nil {
		return nil, err
	}
	switch pr.LinkType() {
	case pcapng.LinkTypeRaw, pcapng.LinkTypeEthernet:
	default:
		return nil, fmt.Errorf("trace: unsupported link type %d", pr.LinkType())
	}
	return &PcapStream{pr: pr, reuse: true}, nil
}

// Span returns lastTs+1 after the stream is exhausted, 0 before (pcap
// files carry no span header).
func (s *PcapStream) Span() time.Duration {
	if !s.seen {
		return 0
	}
	return s.max + 1
}

// Next returns the next classified TCP record. stubPrefix-based
// direction inference happens in NextDir; Next is the common decode.
func (s *PcapStream) next() (time.Duration, *packet.Segment, error) {
	seg := &s.seg
	for {
		var (
			p   pcapng.Packet
			err error
		)
		if s.reuse {
			p, err = s.pr.NextReuse()
		} else {
			p, err = s.pr.Next()
		}
		if err != nil {
			return 0, nil, err
		}
		raw, err := pcapng.LinkPayload(s.pr.LinkType(), p.Data)
		if err != nil {
			continue // not an IPv4 frame; the classifier ignores it
		}
		if packet.Classify(raw) == packet.KindNotTCP {
			continue
		}
		if err := seg.Unmarshal(raw); err != nil {
			continue
		}
		// Span covers classified records only, matching ReadPcap's
		// historical behavior: skipped frames never extend the span.
		if p.Ts > s.max || !s.seen {
			s.max = p.Ts
			s.seen = true
		}
		return p.Ts, seg, nil
	}
}

// NextDir returns the next record with direction assigned by
// destination: packets destined inside stubPrefix are inbound,
// everything else outbound. Destination is the right discriminator
// because flood SYNs carry forged sources — a source-based rule would
// misfile the very packets SYN-dog must count.
func (s *PcapStream) NextDir(stubPrefix netip.Prefix) (Record, error) {
	ts, seg, err := s.next()
	if err != nil {
		return Record{}, err
	}
	dir := DirOut
	if stubPrefix.Contains(seg.IP.Dst) {
		dir = DirIn
	}
	return Record{
		Ts:      ts,
		Kind:    seg.Kind(),
		Dir:     dir,
		Src:     seg.IP.Src,
		Dst:     seg.IP.Dst,
		SrcPort: seg.TCP.SrcPort,
		DstPort: seg.TCP.DstPort,
	}, nil
}

// NextBatchDir decodes up to len(buf) classified records into buf with
// NextDir's destination-based direction rule. io.EOF (possibly
// alongside n > 0) marks a clean end of stream. The whole
// decode+classify loop runs inside one call against the buffered
// reader, which is what lets the batch pipeline amortize its
// per-record costs.
func (s *PcapStream) NextBatchDir(stubPrefix netip.Prefix, buf []Record) (int, error) {
	n := 0
	for n < len(buf) {
		ts, seg, err := s.next()
		if err != nil {
			return n, err
		}
		dir := DirOut
		if stubPrefix.Contains(seg.IP.Dst) {
			dir = DirIn
		}
		buf[n] = Record{
			Ts:      ts,
			Kind:    seg.Kind(),
			Dir:     dir,
			Src:     seg.IP.Src,
			Dst:     seg.IP.Dst,
			SrcPort: seg.TCP.SrcPort,
			DstPort: seg.TCP.DstPort,
		}
		n++
	}
	return n, nil
}

// Close implements the ingest Source contract.
func (s *PcapStream) Close() error { return nil }
