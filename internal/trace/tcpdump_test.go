package trace

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
)

var tcpdumpStub = netip.MustParsePrefix("10.1.0.0/16")

const tcpdumpSample = `12:00:00.000000 IP 10.1.2.3.40000 > 11.0.0.1.80: Flags [S], seq 100, win 65535, length 0
12:00:00.120000 IP 11.0.0.1.80 > 10.1.2.3.40000: Flags [S.], seq 200, ack 101, win 65535, length 0
12:00:00.240000 IP 10.1.2.3.40000 > 11.0.0.1.80: Flags [.], ack 201, win 65535, length 0
12:00:05.000000 IP 10.1.2.3.40000 > 11.0.0.1.80: Flags [F.], seq 101, ack 201, length 0
12:00:05.120000 IP 11.0.0.1.80 > 10.1.2.3.40000: Flags [R], seq 201, length 0
12:00:06.000000 ARP, Request who-has 10.1.0.1 tell 10.1.2.3, length 28
12:00:07.000000 IP 10.1.2.3.53 > 11.0.0.2.53: UDP, length 60
`

func TestReadTcpdumpBasic(t *testing.T) {
	tr, err := ReadTcpdump(strings.NewReader(tcpdumpSample), "dump", tcpdumpStub)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "dump" {
		t.Errorf("name = %q", tr.Name)
	}
	if len(tr.Records) != 5 {
		t.Fatalf("records = %d, want 5 (ARP and UDP skipped)", len(tr.Records))
	}
	wantKinds := []packet.Kind{
		packet.KindSYN, packet.KindSYNACK, packet.KindOther,
		packet.KindFIN, packet.KindRST,
	}
	wantDirs := []Direction{DirOut, DirIn, DirOut, DirOut, DirIn}
	for i, r := range tr.Records {
		if r.Kind != wantKinds[i] {
			t.Errorf("record %d kind = %v, want %v", i, r.Kind, wantKinds[i])
		}
		if r.Dir != wantDirs[i] {
			t.Errorf("record %d dir = %v, want %v", i, r.Dir, wantDirs[i])
		}
	}
	// Relative timestamps from the first packet.
	if tr.Records[0].Ts != 0 {
		t.Errorf("first ts = %v, want 0", tr.Records[0].Ts)
	}
	if tr.Records[1].Ts != 120*time.Millisecond {
		t.Errorf("second ts = %v, want 120ms", tr.Records[1].Ts)
	}
	if tr.Records[3].Ts != 5*time.Second {
		t.Errorf("fin ts = %v, want 5s", tr.Records[3].Ts)
	}
	// Addresses and ports.
	r0 := tr.Records[0]
	if r0.Src != netip.MustParseAddr("10.1.2.3") || r0.SrcPort != 40000 ||
		r0.Dst != netip.MustParseAddr("11.0.0.1") || r0.DstPort != 80 {
		t.Errorf("record 0 addressing wrong: %+v", r0)
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestReadTcpdumpMidnightRollover(t *testing.T) {
	in := `23:59:59.500000 IP 10.1.0.1.1000 > 11.0.0.1.80: Flags [S], length 0
00:00:00.500000 IP 10.1.0.1.1001 > 11.0.0.1.80: Flags [S], length 0
`
	tr, err := ReadTcpdump(strings.NewReader(in), "wrap", tcpdumpStub)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatal("rollover lost a record")
	}
	gap := tr.Records[1].Ts - tr.Records[0].Ts
	if gap != time.Second {
		t.Errorf("gap across midnight = %v, want 1s", gap)
	}
}

func TestReadTcpdumpErrors(t *testing.T) {
	cases := []string{
		"25:00:00.0 IP 10.1.0.1.1 > 11.0.0.1.80: Flags [S], length 0",  // bad hour
		"12:61:00.0 IP 10.1.0.1.1 > 11.0.0.1.80: Flags [S], length 0",  // bad minute
		"12:00:00.0 IP 10.1.0.1 > 11.0.0.1.80: Flags [S], length 0",    // missing src port
		"12:00:00.0 IP zzz.1 > 11.0.0.1.80: Flags [S], length 0",       // bad address
		"12:00:00.0 IP 10.1.0.1.xx > 11.0.0.1.80: Flags [S], length 0", // bad port
		"12:00:00.0 IP 10.1.0.1.1 > 11.0.0.1.80: Flags [Z], length 0",  // unknown flag
	}
	for _, in := range cases {
		if _, err := ReadTcpdump(strings.NewReader(in), "x", tcpdumpStub); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReadTcpdumpSkipsNoise(t *testing.T) {
	in := `garbage line
12:00:00.0 IP6 fe80::1.1 > fe80::2.2: Flags [S], length 0

continuation: 0x0000 4500 003c
`
	tr, err := ReadTcpdump(strings.NewReader(in), "noise", tcpdumpStub)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 0 {
		t.Errorf("noise produced %d records", len(tr.Records))
	}
}

func TestParseTcpdumpFlagVariants(t *testing.T) {
	cases := map[string]packet.Kind{
		"[S],":   packet.KindSYN,
		"[S.],":  packet.KindSYNACK,
		"[.],":   packet.KindOther,
		"[P.],":  packet.KindOther,
		"[F.],":  packet.KindFIN,
		"[R.],":  packet.KindRST,
		"[SEW],": packet.KindSYN, // ECN-setup SYN
	}
	for in, want := range cases {
		got, err := parseTcpdumpFlags(in)
		if err != nil {
			t.Errorf("parse %q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("flags %q = %v, want %v", in, got, want)
		}
	}
}

func TestTcpdumpFeedsDetectorEndToEnd(t *testing.T) {
	// Build a 2-minute tcpdump log: balanced handshakes, then a flood
	// of unanswered SYNs; the detector must alarm.
	var sb strings.Builder
	second := 0
	emit := func(line string) { sb.WriteString(line + "\n") }
	for ; second < 60; second++ {
		ts := formatTOD(second)
		emit(ts + " IP 10.1.0.5.40000 > 11.0.0.1.80: Flags [S], length 0")
		emit(ts + " IP 11.0.0.1.80 > 10.1.0.5.40000: Flags [S.], length 0")
	}
	for ; second < 120; second++ {
		ts := formatTOD(second)
		for k := 0; k < 10; k++ {
			emit(ts + " IP 240.0.0.9.1234 > 11.0.0.1.80: Flags [S], length 0")
		}
	}
	tr, err := ReadTcpdump(strings.NewReader(sb.String()), "e2e", tcpdumpStub)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Periods() < 5 {
		t.Fatalf("periods = %d", pc.Periods())
	}
	// Flood periods must show the SYN excess.
	if pc.OutSYN[4] <= pc.InSYNACK[4]+50 {
		t.Errorf("flood period not visible: %v vs %v", pc.OutSYN[4], pc.InSYNACK[4])
	}
}

func formatTOD(second int) string {
	h := second / 3600
	m := second / 60 % 60
	s := second % 60
	return padTwo(h) + ":" + padTwo(m) + ":" + padTwo(s) + ".000000"
}

func padTwo(v int) string {
	if v < 10 {
		return "0" + string(rune('0'+v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

// TestWriteTcpdumpRoundTrip pins the writer against the reader: a
// generated trace rendered to tcpdump text and re-imported yields the
// same records (timestamps truncated to the format's microsecond
// resolution, directions re-inferred from the stub prefix).
func TestWriteTcpdumpRoundTrip(t *testing.T) {
	p := Auckland()
	p.Span = 2 * time.Minute
	tr, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteTcpdump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	stub := netip.MustParsePrefix("130.216.0.0/16")
	got, err := ReadTcpdump(strings.NewReader(buf.String()), tr.Name, stub)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip kept %d of %d records", len(got.Records), len(tr.Records))
	}
	// The reader starts its clock at the first accepted packet, so the
	// round trip shifts every timestamp by the first record's (
	// microsecond-truncated) Ts.
	base := tr.Records[0].Ts.Truncate(time.Microsecond)
	for i, want := range tr.Records {
		g := got.Records[i]
		if g.Kind != want.Kind || g.Src != want.Src || g.Dst != want.Dst ||
			g.SrcPort != want.SrcPort || g.DstPort != want.DstPort || g.Dir != want.Dir {
			t.Fatalf("record %d = %+v, want %+v", i, g, want)
		}
		// parseTimeOfDay goes through a float64 seconds value, which
		// can sit 1ns under the exact microsecond; allow exactly that.
		diff := g.Ts - (want.Ts.Truncate(time.Microsecond) - base)
		if diff < -time.Nanosecond || diff > time.Nanosecond {
			t.Fatalf("record %d ts = %v, want %v truncated and re-based", i, g.Ts, want.Ts)
		}
	}
}

// TestWriteTcpdumpRejectsMultiDay pins the single-day clock guard.
func TestWriteTcpdumpRejectsMultiDay(t *testing.T) {
	tr := &Trace{Records: []Record{{
		Ts: 24 * time.Hour, Kind: packet.KindSYN, Dir: DirOut,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("11.0.0.1"),
	}}}
	var buf strings.Builder
	if err := WriteTcpdump(&buf, tr); err == nil {
		t.Fatal("24h timestamp accepted by the single-day text format")
	}
}
