package trace

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapng"
)

func streamTestTrace(t *testing.T) *Trace {
	t.Helper()
	p := Auckland()
	p.Name = "stream-test"
	p.Span = 2 * time.Minute
	p.OutagesPerHour = 0
	tr, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("generated trace is empty")
	}
	return tr
}

func collect(t *testing.T, next func() (Record, error)) []Record {
	t.Helper()
	var out []Record
	for {
		rec, err := next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

func TestBinaryStreamMatchesReadBinary(t *testing.T) {
	tr := streamTestTrace(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	s, err := NewBinaryStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != tr.Name || s.Span() != tr.Span {
		t.Errorf("header = (%q, %v), want (%q, %v)", s.Name(), s.Span(), tr.Name, tr.Span)
	}
	if int(s.Count()) != len(tr.Records) {
		t.Errorf("count = %d, want %d", s.Count(), len(tr.Records))
	}
	got := collect(t, s.Next)
	want, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("stream yielded %d records, ReadBinary %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d: stream %+v != materialized %+v", i, got[i], want.Records[i])
		}
	}
	// A second Next past EOF stays EOF.
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("Next past EOF = %v, want io.EOF", err)
	}
}

func TestBinaryStreamTruncated(t *testing.T) {
	tr := streamTestTrace(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	s, err := NewBinaryStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := s.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
		return
	}
}

func TestBinaryStreamBadMagic(t *testing.T) {
	if _, err := NewBinaryStream(bytes.NewReader([]byte("NOTADOG1xxxxxxxxxxxx"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestCSVStreamMatchesReadCSV(t *testing.T) {
	tr := streamTestTrace(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	s := NewCSVStream(bytes.NewReader(data))
	got := collect(t, s.Next)
	if s.Name() != tr.Name || s.Span() != tr.Span {
		t.Errorf("header = (%q, %v), want (%q, %v)", s.Name(), s.Span(), tr.Name, tr.Span)
	}
	want, err := ReadCSV(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("stream yielded %d records, ReadCSV %d", len(got), len(want.Records))
	}
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d: stream %+v != materialized %+v", i, got[i], want.Records[i])
		}
	}
}

func TestCSVStreamBadLine(t *testing.T) {
	s := NewCSVStream(bytes.NewReader([]byte("# trace x span_ns=100\n1,syn,sideways,1.2.3.4,5.6.7.8,1,2\n")))
	if _, err := s.Next(); err == nil {
		t.Fatal("want error for bad direction")
	}
}

func TestPcapStreamMatchesReadPcap(t *testing.T) {
	tr := streamTestTrace(t)
	prefix := netip.MustParsePrefix("130.216.0.0/16")
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	s, err := NewPcapStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Span() != 0 {
		t.Errorf("span before EOF = %v, want 0", s.Span())
	}
	got := collect(t, func() (Record, error) { return s.NextDir(prefix) })

	want, err := ReadPcap(bytes.NewReader(data), "stream-test", prefix)
	if err != nil {
		t.Fatal(err)
	}
	if s.Span() != want.Span {
		t.Errorf("stream span = %v, ReadPcap span = %v", s.Span(), want.Span)
	}
	if len(got) != len(want.Records) {
		t.Fatalf("stream yielded %d records, ReadPcap %d", len(got), len(want.Records))
	}
	// WritePcap preserves record order and the trace is sorted, so the
	// stream (capture order) and ReadPcap (sorted) must agree exactly.
	for i := range got {
		if got[i] != want.Records[i] {
			t.Fatalf("record %d: stream %+v != materialized %+v", i, got[i], want.Records[i])
		}
	}
}

// TestPcapStreamEthernet pins the satellite fix end to end: an
// Ethernet-framed capture (with and without VLAN tags) must classify
// identically to a raw one — the MAC header never reaches the
// classifier.
func TestPcapStreamEthernet(t *testing.T) {
	tr := streamTestTrace(t)
	prefix := netip.MustParsePrefix("130.216.0.0/16")

	for _, tc := range []struct {
		name string
		tags []uint16
	}{
		{"plain ethernet", nil},
		{"802.1q", []uint16{0x8100}},
		{"qinq", []uint16{0x88a8, 0x8100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := writeEthernetPcap(t, tr, tc.tags)
			s, err := NewPcapStream(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, func() (Record, error) { return s.NextDir(prefix) })

			var rawBuf bytes.Buffer
			if err := WritePcap(&rawBuf, tr); err != nil {
				t.Fatal(err)
			}
			want, err := ReadPcap(&rawBuf, tr.Name, prefix)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want.Records) {
				t.Fatalf("ethernet stream yielded %d records, raw %d", len(got), len(want.Records))
			}
			for i := range got {
				if got[i] != want.Records[i] {
					t.Fatalf("record %d: ethernet %+v != raw %+v", i, got[i], want.Records[i])
				}
			}
		})
	}
}

// writeEthernetPcap writes tr as a LINKTYPE_ETHERNET capture, wrapping
// each IPv4 packet in a MAC header plus the given VLAN tag TPIDs. The
// pcapng Writer only emits raw captures, so the header is patched and
// frames are hand-wrapped.
func writeEthernetPcap(t *testing.T, tr *Trace, tags []uint16) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := pcapng.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var segBuf []byte
	for _, r := range tr.Records {
		flags, ok := kindToFlags(r.Kind)
		if !ok {
			continue
		}
		seg := packet.Build(r.Src, r.Dst, r.SrcPort, r.DstPort, 0, 0, flags)
		segBuf = seg.Marshal(segBuf[:0])
		frame := make([]byte, 0, 14+4*len(tags)+len(segBuf))
		frame = append(frame, make([]byte, 12)...)
		for _, tag := range tags {
			frame = append(frame, byte(tag>>8), byte(tag), 0x00, 0x05)
		}
		frame = append(frame, 0x08, 0x00)
		frame = append(frame, segBuf...)
		if err := pw.Write(pcapng.Packet{Ts: r.Ts, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	// Patch the file header's link type from raw (101) to ethernet (1).
	data[20] = 1
	return data
}

func TestPcapStreamRejectsUnknownLink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := pcapng.NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] = 147 // some exotic link type
	if _, err := NewPcapStream(bytes.NewReader(data)); err == nil {
		t.Fatal("want error for unsupported link type")
	}
}
