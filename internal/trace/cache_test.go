package trace

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func cacheProfile() Profile {
	p := Auckland()
	p.Span = 2 * time.Minute
	return p
}

func TestCacheReturnsSameTrace(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	a, err := c.Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (profile, seed) generated twice")
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}

func TestCacheDistinguishesSeedAndProfile(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	if _, err := c.Generate(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(p, 2); err != nil {
		t.Fatal(err)
	}
	q := p
	q.Span = 3 * time.Minute
	if _, err := c.Generate(q, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("cache len = %d, want 3", c.Len())
	}
}

func TestCacheMatchesDirectGenerate(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	cached, err := c.Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Records) != len(direct.Records) {
		t.Fatalf("cached %d records, direct %d", len(cached.Records), len(direct.Records))
	}
	for i := range cached.Records {
		if cached.Records[i] != direct.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, cached.Records[i], direct.Records[i])
		}
	}
}

// TestCacheSingleflight pins the coalescing contract: concurrent
// callers racing on one key trigger exactly one underlying generation,
// and everyone shares its result. The stub generator blocks until all
// racers are running, so most callers arrive while the first
// generation is still in flight; whichever side of the insert they
// land on, a second generate call is a hard failure.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	const racers = 8
	var calls int32
	entered := make(chan struct{}, racers)
	release := make(chan struct{})
	stub := &Trace{Name: "stub", Span: time.Minute}
	c.generate = func(Profile, int64) (*Trace, error) {
		atomic.AddInt32(&calls, 1)
		<-release
		return stub, nil
	}

	var wg sync.WaitGroup
	traces := make([]*Trace, racers)
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered <- struct{}{}
			tr, err := c.Generate(p, 3)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	for i := 0; i < racers; i++ {
		<-entered
	}
	close(release)
	wg.Wait()

	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Errorf("underlying generate ran %d times, want 1", n)
	}
	for i := range traces {
		if traces[i] != stub {
			t.Fatalf("caller %d got %p, want the shared generation", i, traces[i])
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}

// TestCacheFailedGenerationRetries pins the error contract: a failed
// generation is not cached, so the next caller retries instead of
// being served the stale error forever.
func TestCacheFailedGenerationRetries(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	calls := 0
	boom := errors.New("boom")
	c.generate = func(Profile, int64) (*Trace, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &Trace{Name: "ok", Span: time.Minute}, nil
	}
	if _, err := c.Generate(p, 9); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed generation left %d cache entries", c.Len())
	}
	tr, err := c.Generate(p, 9)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if tr.Name != "ok" || calls != 2 {
		t.Fatalf("retry got %q after %d calls, want fresh generation on call 2", tr.Name, calls)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	var wg sync.WaitGroup
	traces := make([]*Trace, 8)
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Generate(p, 5)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(traces); i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent callers got different trace instances")
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}
