package trace

import (
	"sync"
	"testing"
	"time"
)

func cacheProfile() Profile {
	p := Auckland()
	p.Span = 2 * time.Minute
	return p
}

func TestCacheReturnsSameTrace(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	a, err := c.Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same (profile, seed) generated twice")
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}

func TestCacheDistinguishesSeedAndProfile(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	if _, err := c.Generate(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Generate(p, 2); err != nil {
		t.Fatal(err)
	}
	q := p
	q.Span = 3 * time.Minute
	if _, err := c.Generate(q, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 {
		t.Errorf("cache len = %d, want 3", c.Len())
	}
}

func TestCacheMatchesDirectGenerate(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	cached, err := c.Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Records) != len(direct.Records) {
		t.Fatalf("cached %d records, direct %d", len(cached.Records), len(direct.Records))
	}
	for i := range cached.Records {
		if cached.Records[i] != direct.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, cached.Records[i], direct.Records[i])
		}
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	p := cacheProfile()
	var wg sync.WaitGroup
	traces := make([]*Trace, 8)
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := c.Generate(p, 5)
			if err != nil {
				t.Error(err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(traces); i++ {
		if traces[i] != traces[0] {
			t.Fatal("concurrent callers got different trace instances")
		}
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d, want 1", c.Len())
	}
}
