// Package trace models the packet traces driving the paper's
// evaluation: the record format, per-site synthetic generators
// calibrated to the levels reported in Table 1 and Figures 3-4,
// binary/text/pcap codecs, and the per-period aggregation that feeds
// SYN-dog.
//
// The original LBL (1994), Harvard (1997), UNC (2000) and Auckland
// (2000) traces are not redistributable, so this package synthesizes
// traces whose per-observation-period SYN and SYN/ACK dynamics match
// what the paper reports (see DESIGN.md, "Substitutions"). The
// detector is non-parametric: matching the level, burstiness and
// SYN-SYN/ACK coupling of the counting process reproduces its
// operating regime.
package trace

import (
	"cmp"
	"errors"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"time"

	"repro/internal/packet"
)

// Direction classifies a record relative to the stub network whose
// leaf router recorded the trace.
type Direction uint8

// Directions. DirOut is Intranet->Internet (where outgoing SYNs are
// counted), DirIn is Internet->Intranet (incoming SYN/ACKs).
const (
	DirIn Direction = iota + 1
	DirOut
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}

// Record is one trace event: a classified TCP control segment crossing
// the leaf router at time Ts (relative to trace start).
type Record struct {
	Ts      time.Duration
	Kind    packet.Kind
	Dir     Direction
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
}

// Trace is an ordered sequence of records.
type Trace struct {
	// Name identifies the trace (site profile or file name).
	Name string
	// Span is the nominal capture duration; records all satisfy
	// 0 <= Ts < Span.
	Span time.Duration
	// Records are sorted by Ts (ties keep insertion order).
	Records []Record
}

// Errors returned by trace operations.
var (
	ErrUnsorted = errors.New("trace: records not sorted by timestamp")
	ErrEmpty    = errors.New("trace: empty trace")
)

// Validate checks the trace invariants: sorted timestamps within
// [0, Span).
func (t *Trace) Validate() error {
	var prev time.Duration
	for i, r := range t.Records {
		if r.Ts < prev {
			return fmt.Errorf("%w: record %d at %v after %v", ErrUnsorted, i, r.Ts, prev)
		}
		if r.Ts < 0 || (t.Span > 0 && r.Ts >= t.Span) {
			return fmt.Errorf("trace: record %d timestamp %v outside [0, %v)", i, r.Ts, t.Span)
		}
		prev = r.Ts
	}
	return nil
}

// Sort orders records by timestamp (stable, preserving insertion order
// of co-timed records).
func (t *Trace) Sort() {
	slices.SortStableFunc(t.Records, func(a, b Record) int {
		return cmp.Compare(a.Ts, b.Ts)
	})
}

// sortedByTs reports whether the records are already in timestamp
// order.
func sortedByTs(rs []Record) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i].Ts < rs[i-1].Ts {
			return false
		}
	}
	return true
}

// Filter returns a new trace containing only records accepted by keep.
// Name and Span are preserved. The output slice is preallocated at the
// input's length: filters usually keep most records, and a single
// over-sized allocation beats the log(n) growth copies of appending
// from nil.
func (t *Trace) Filter(keep func(Record) bool) *Trace {
	out := &Trace{Name: t.Name, Span: t.Span}
	out.Records = make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// ClipSpan truncates the trace in place to the given span: records at
// Ts >= span are dropped and Span becomes span. Records are assumed
// sorted (the Trace invariant), so the cut point is found by binary
// search and no record is copied — this is how a merged
// background+flood trace is clipped back to the background's span
// without the full Filter pass.
func (t *Trace) ClipSpan(span time.Duration) {
	n := sort.Search(len(t.Records), func(i int) bool {
		return t.Records[i].Ts >= span
	})
	t.Records = t.Records[:n]
	t.Span = span
}

// Split separates a bidirectional trace into its uni-directional
// halves, as Table 1 lists UNC-in/UNC-out and Auckland-in/Auckland-out.
func (t *Trace) Split() (in, out *Trace) {
	in = t.Filter(func(r Record) bool { return r.Dir == DirIn })
	in.Name = t.Name + "-in"
	out = t.Filter(func(r Record) bool { return r.Dir == DirOut })
	out.Name = t.Name + "-out"
	return in, out
}

// Flip returns a copy of the trace with every record's direction
// reversed: the same packets as seen from the other side of the
// Internet. A source-side flood trace (outgoing SYNs) flipped becomes
// the victim-side view (incoming SYNs) consumed by last-mile agents.
func (t *Trace) Flip() *Trace {
	out := &Trace{Name: t.Name + "-flipped", Span: t.Span}
	out.Records = make([]Record, len(t.Records))
	for i, r := range t.Records {
		r.Dir = flip(r.Dir)
		out.Records[i] = r
	}
	return out
}

// Merge combines two traces into a new sorted trace whose span is the
// larger of the two. It is how flood traffic is mixed into background
// traffic (Figure 6).
//
// Both inputs normally already satisfy the Trace sort invariant, so the
// combination is a single two-pointer pass — O(len(a)+len(b)) instead
// of the O(n log n) re-sort. Ties keep a's records before b's, exactly
// the order the append-then-stable-sort implementation produced.
// Unsorted inputs (hand-built traces) fall back to that implementation.
func Merge(name string, a, b *Trace) *Trace {
	out := &Trace{Name: name, Span: a.Span}
	if b.Span > out.Span {
		out.Span = b.Span
	}
	out.Records = make([]Record, 0, len(a.Records)+len(b.Records))
	if !sortedByTs(a.Records) || !sortedByTs(b.Records) {
		out.Records = append(out.Records, a.Records...)
		out.Records = append(out.Records, b.Records...)
		out.Sort()
		return out
	}
	i, j := 0, 0
	for i < len(a.Records) && j < len(b.Records) {
		if a.Records[i].Ts <= b.Records[j].Ts {
			out.Records = append(out.Records, a.Records[i])
			i++
		} else {
			out.Records = append(out.Records, b.Records[j])
			j++
		}
	}
	out.Records = append(out.Records, a.Records[i:]...)
	out.Records = append(out.Records, b.Records[j:]...)
	return out
}

// PeriodCounts is the per-observation-period aggregation SYN-dog
// consumes: outgoing SYNs and incoming SYN/ACKs per period of length
// t0 (Section 3.1).
type PeriodCounts struct {
	// T0 is the observation period.
	T0 time.Duration
	// OutSYN[i] counts outgoing SYNs in period i.
	OutSYN []float64
	// InSYNACK[i] counts incoming SYN/ACKs in period i.
	InSYNACK []float64
}

// Periods returns the number of complete periods.
func (p *PeriodCounts) Periods() int { return len(p.OutSYN) }

// AddFlood returns a new PeriodCounts overlaying per-period flood SYN
// counts on the receiver. The receiver is read-only and unchanged, so
// one aggregated background can back many concurrent flooded runs; the
// InSYNACK slice is shared (spoofed sources never answer, so a flood
// adds no SYN/ACKs) and only OutSYN is copied. Periods beyond the
// receiver's range are dropped, mirroring how a merged trace is clipped
// to the background span.
func (p *PeriodCounts) AddFlood(floodSYN []float64) *PeriodCounts {
	out := &PeriodCounts{
		T0:       p.T0,
		OutSYN:   make([]float64, len(p.OutSYN)),
		InSYNACK: p.InSYNACK,
	}
	copy(out.OutSYN, p.OutSYN)
	n := len(floodSYN)
	if n > len(out.OutSYN) {
		n = len(out.OutSYN)
	}
	for i := 0; i < n; i++ {
		out.OutSYN[i] += floodSYN[i]
	}
	return out
}

// Aggregate bins the trace into observation periods of length t0. The
// final partial period, if any, is dropped (the agent only acts on
// complete periods).
func (t *Trace) Aggregate(t0 time.Duration) (*PeriodCounts, error) {
	if t0 <= 0 {
		return nil, errors.New("trace: non-positive observation period")
	}
	if t.Span <= 0 {
		return nil, ErrEmpty
	}
	n := int(t.Span / t0)
	if n == 0 {
		return nil, fmt.Errorf("trace: span %v shorter than one period %v", t.Span, t0)
	}
	pc := &PeriodCounts{
		T0:       t0,
		OutSYN:   make([]float64, n),
		InSYNACK: make([]float64, n),
	}
	for _, r := range t.Records {
		idx := int(r.Ts / t0)
		if idx < 0 || idx >= n {
			continue
		}
		switch {
		case r.Dir == DirOut && r.Kind == packet.KindSYN:
			pc.OutSYN[idx]++
		case r.Dir == DirIn && r.Kind == packet.KindSYNACK:
			pc.InSYNACK[idx]++
		}
	}
	return pc, nil
}

// AggregateLastMile bins the trace into the victim-side pairing the
// last-mile agent consumes: OutSYN[i] holds the period's connection
// openings (incoming SYNs) and InSYNACK[i] its closings (outgoing FINs
// and RSTs), matching core.LastMileAgent.Observe's counter mapping.
func (t *Trace) AggregateLastMile(t0 time.Duration) (*PeriodCounts, error) {
	if t0 <= 0 {
		return nil, errors.New("trace: non-positive observation period")
	}
	if t.Span <= 0 {
		return nil, ErrEmpty
	}
	n := int(t.Span / t0)
	if n == 0 {
		return nil, fmt.Errorf("trace: span %v shorter than one period %v", t.Span, t0)
	}
	pc := &PeriodCounts{
		T0:       t0,
		OutSYN:   make([]float64, n),
		InSYNACK: make([]float64, n),
	}
	for _, r := range t.Records {
		idx := int(r.Ts / t0)
		if idx < 0 || idx >= n {
			continue
		}
		switch {
		case r.Dir == DirIn && r.Kind == packet.KindSYN:
			pc.OutSYN[idx]++
		case r.Dir == DirOut && (r.Kind == packet.KindFIN || r.Kind == packet.KindRST):
			pc.InSYNACK[idx]++
		}
	}
	return pc, nil
}

// CountKind returns how many records have the given kind and direction.
func (t *Trace) CountKind(dir Direction, kind packet.Kind) int {
	n := 0
	for _, r := range t.Records {
		if r.Dir == dir && r.Kind == kind {
			n++
		}
	}
	return n
}

// Summary describes a trace for Table 1-style reporting.
type Summary struct {
	Name        string
	Span        time.Duration
	Records     int
	OutSYN      int
	InSYNACK    int
	InSYN       int
	OutSYNACK   int
	Directional string // "Bi-directional" or "Uni-directional"
}

// Summarize computes the Table 1 row for this trace.
func (t *Trace) Summarize() Summary {
	s := Summary{
		Name:      t.Name,
		Span:      t.Span,
		Records:   len(t.Records),
		OutSYN:    t.CountKind(DirOut, packet.KindSYN),
		InSYNACK:  t.CountKind(DirIn, packet.KindSYNACK),
		InSYN:     t.CountKind(DirIn, packet.KindSYN),
		OutSYNACK: t.CountKind(DirOut, packet.KindSYNACK),
	}
	hasIn := s.InSYNACK > 0 || s.InSYN > 0
	hasOut := s.OutSYN > 0 || s.OutSYNACK > 0
	if hasIn && hasOut {
		s.Directional = "Bi-directional"
	} else {
		s.Directional = "Uni-directional"
	}
	return s
}
