package trace

import (
	"errors"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/arrival"
	"repro/internal/packet"
)

// Profile parameterizes a synthetic site trace. The four predefined
// profiles (LBL, Harvard, UNC, Auckland) are calibrated to the levels
// and durations the paper reports; see DESIGN.md for the mapping.
type Profile struct {
	// Name labels the generated trace.
	Name string
	// Span is the capture duration (Table 1).
	Span time.Duration
	// Bidirectional marks sites whose figures aggregate both directions
	// (LBL, Harvard); uni-directional pairs (UNC, Auckland) still
	// generate both directions but are reported split.
	Bidirectional bool
	// OutConnRate is the mean rate of new outbound connections per
	// second (each produces one outgoing SYN and usually one incoming
	// SYN/ACK).
	OutConnRate float64
	// InConnRate is the mean rate of inbound connections per second
	// (servers inside the stub): one incoming SYN, one outgoing
	// SYN/ACK. Zero for client-dominated stubs.
	InConnRate float64
	// Sources, Shape, MeanOn, MeanOff parameterize the self-similar
	// ON/OFF arrival superposition (see internal/arrival).
	Sources         int
	Shape           float64
	MeanOn, MeanOff float64
	// ResponseProb is the probability a SYN is answered by a SYN/ACK;
	// the remainder models server overload and forward-path congestion
	// (the paper's two discrepancy causes, Section 1).
	ResponseProb float64
	// MeanRTT is the median round-trip time for SYN -> SYN/ACK.
	MeanRTT time.Duration
	// RTTSigma is the lognormal spread of RTTs (0 = constant RTT).
	RTTSigma float64
	// DiurnalAmp, if nonzero, modulates arrival intensity sinusoidally
	// over the span (slow time-of-day drift).
	DiurnalAmp float64
	// Prefix is the stub network block client addresses come from.
	Prefix netip.Prefix
	// WithTeardown adds FIN records at connection close, exercising
	// classifiers beyond the SYN path.
	WithTeardown bool
	// OutagesPerHour, OutageMeanDur and OutageResponseProb model the
	// paper's two benign discrepancy causes (Section 1: overloaded
	// servers and congested forward paths) as rare windows during
	// which the response probability drops to OutageResponseProb.
	// They produce the isolated small yn spikes of Figure 5. Zero
	// OutagesPerHour disables outages.
	OutagesPerHour     float64
	OutageMeanDur      time.Duration
	OutageResponseProb float64
}

// outageWindow is one degraded-response interval.
type outageWindow struct {
	start, end time.Duration
}

// Predefined profiles. The calibration targets (per 20 s observation
// period): LBL ≈ 25 SYN/ACKs, Harvard ≈ 300, UNC ≈ 2114 (fmin ≈ 37
// SYN/s by Eq. 8), Auckland ≈ 100 (fmin ≈ 1.75 SYN/s).
func LBL() Profile {
	return Profile{
		Name:               "LBL",
		Span:               time.Hour,
		Bidirectional:      true,
		OutConnRate:        25.0 / 0.97 / 20, // ≈1.29 conn/s
		InConnRate:         0.6,
		Sources:            8,
		Shape:              1.5,
		MeanOn:             1.0,
		MeanOff:            2.0,
		ResponseProb:       0.97,
		MeanRTT:            120 * time.Millisecond,
		RTTSigma:           0.6,
		DiurnalAmp:         0.15,
		Prefix:             netip.MustParsePrefix("131.243.0.0/16"),
		WithTeardown:       true,
		OutagesPerHour:     1,
		OutageMeanDur:      8 * time.Second,
		OutageResponseProb: 0.85,
	}
}

// Harvard is the 1997 half-hour campus trace profile.
func Harvard() Profile {
	return Profile{
		Name:               "Harvard",
		Span:               30 * time.Minute,
		Bidirectional:      true,
		OutConnRate:        300.0 / 0.97 / 20, // ≈15.5 conn/s
		InConnRate:         3.0,
		Sources:            16,
		Shape:              1.4,
		MeanOn:             1.0,
		MeanOff:            2.0,
		ResponseProb:       0.97,
		MeanRTT:            100 * time.Millisecond,
		RTTSigma:           0.6,
		DiurnalAmp:         0.1,
		Prefix:             netip.MustParsePrefix("128.103.0.0/16"),
		WithTeardown:       true,
		OutagesPerHour:     2,
		OutageMeanDur:      10 * time.Second,
		OutageResponseProb: 0.9,
	}
}

// UNC is the 2000 OC-12 campus trace profile; its K̄ ≈ 2114 SYN/ACKs
// per 20 s sets the paper's fmin ≈ 37 SYN/s.
func UNC() Profile {
	return Profile{
		Name:               "UNC",
		Span:               30 * time.Minute,
		Bidirectional:      false,
		OutConnRate:        2114.0 / 0.97 / 20, // ≈109 conn/s
		InConnRate:         0,
		Sources:            64,
		Shape:              1.4,
		MeanOn:             1.0,
		MeanOff:            2.0,
		ResponseProb:       0.97,
		MeanRTT:            80 * time.Millisecond,
		RTTSigma:           0.5,
		DiurnalAmp:         0.08,
		Prefix:             netip.MustParsePrefix("152.2.0.0/16"),
		WithTeardown:       true,
		OutagesPerHour:     1,
		OutageMeanDur:      10 * time.Second,
		OutageResponseProb: 0.85,
	}
}

// Auckland is the 2000 three-hour access-link trace profile; its
// K̄ ≈ 100 per 20 s sets fmin = 1.75 SYN/s.
func Auckland() Profile {
	return Profile{
		Name:               "Auckland",
		Span:               3 * time.Hour,
		Bidirectional:      false,
		OutConnRate:        100.0 / 0.97 / 20, // ≈5.15 conn/s
		InConnRate:         0,
		Sources:            12,
		Shape:              1.3,
		MeanOn:             1.5,
		MeanOff:            3.0,
		ResponseProb:       0.97,
		MeanRTT:            180 * time.Millisecond,
		RTTSigma:           0.7,
		DiurnalAmp:         0.2,
		Prefix:             netip.MustParsePrefix("130.216.0.0/16"),
		WithTeardown:       true,
		OutagesPerHour:     1.5,
		OutageMeanDur:      12 * time.Second,
		OutageResponseProb: 0.8,
	}
}

// Profiles returns all predefined site profiles in the paper's order.
func Profiles() []Profile {
	return []Profile{LBL(), Harvard(), UNC(), Auckland()}
}

// clientRetransmits mirrors the client SYN retransmission schedule
// used when a SYN goes unanswered (3 s, then 9 s after the original).
var clientRetransmits = []time.Duration{3 * time.Second, 9 * time.Second}

// Generate synthesizes a trace for the profile using the given seed.
// The result is sorted and validated.
func Generate(p Profile, seed int64) (*Trace, error) {
	if p.Span <= 0 || p.OutConnRate <= 0 || p.Sources < 1 {
		return nil, errors.New("trace: invalid profile")
	}
	if p.ResponseProb <= 0 || p.ResponseProb > 1 {
		return nil, errors.New("trace: ResponseProb outside (0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: p.Name, Span: p.Span}
	outages := drawOutages(p, rng)

	outStarts, err := connectionStarts(p, p.OutConnRate, rng)
	if err != nil {
		return nil, err
	}
	for _, t := range outStarts {
		emitConnection(tr, p, rng, t, DirOut, responseProbAt(p, outages, t))
	}
	if p.InConnRate > 0 {
		inStarts, err := connectionStarts(p, p.InConnRate, rng)
		if err != nil {
			return nil, err
		}
		for _, t := range inStarts {
			emitConnection(tr, p, rng, t, DirIn, responseProbAt(p, outages, t))
		}
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// connectionStarts draws the connection start times for one direction.
func connectionStarts(p Profile, rate float64, rng *rand.Rand) ([]time.Duration, error) {
	base, err := arrival.NewParetoOnOff(arrival.ParetoConfig{
		Sources:  p.Sources,
		MeanRate: rate * diurnalOversample(p),
		Shape:    p.Shape,
		MeanOn:   p.MeanOn,
		MeanOff:  p.MeanOff,
	}, rng)
	if err != nil {
		return nil, err
	}
	var proc arrival.Process = base
	if p.DiurnalAmp > 0 {
		env := arrival.DiurnalEnvelope(p.Span, p.DiurnalAmp)
		proc, err = arrival.NewModulated(base, env, 1+p.DiurnalAmp, rng)
		if err != nil {
			return nil, err
		}
	}
	return arrival.Collect(proc, p.Span-1), nil
}

// diurnalOversample compensates the thinning loss of the diurnal
// envelope so the long-run mean stays on target.
func diurnalOversample(p Profile) float64 {
	if p.DiurnalAmp <= 0 {
		return 1
	}
	return 1 + p.DiurnalAmp
}

// drawOutages samples the degraded-response windows for one trace:
// a Poisson number of outages, exponentially distributed durations,
// uniformly placed starts.
func drawOutages(p Profile, rng *rand.Rand) []outageWindow {
	if p.OutagesPerHour <= 0 || p.OutageMeanDur <= 0 {
		return nil
	}
	expected := p.OutagesPerHour * p.Span.Hours()
	count := poissonDraw(rng, expected)
	windows := make([]outageWindow, 0, count)
	for i := 0; i < count; i++ {
		start := time.Duration(rng.Int63n(int64(p.Span)))
		dur := time.Duration(rng.ExpFloat64() * float64(p.OutageMeanDur))
		// Cap at 2.5x the mean: an uncapped exponential tail could
		// mute responses long enough to imitate a real flood, which
		// would contradict the Figure 5 zero-false-alarm calibration.
		if maxDur := 5 * p.OutageMeanDur / 2; dur > maxDur {
			dur = maxDur
		}
		windows = append(windows, outageWindow{start: start, end: start + dur})
	}
	return windows
}

// poissonDraw samples a Poisson count by inversion (small means only).
func poissonDraw(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // guard against pathological means
			return k
		}
	}
}

// responseProbAt returns the response probability for a SYN at time t,
// honoring any outage window covering t.
func responseProbAt(p Profile, outages []outageWindow, t time.Duration) float64 {
	for _, w := range outages {
		if t >= w.start && t < w.end {
			return p.OutageResponseProb
		}
	}
	return p.ResponseProb
}

// emitConnection appends the records of one connection whose SYN
// travels in synDir. For synDir == DirOut the SYN leaves the stub and
// the SYN/ACK comes back in; for DirIn the roles flip. respProb is
// the (possibly outage-degraded) probability of a SYN/ACK reply.
func emitConnection(tr *Trace, p Profile, rng *rand.Rand, start time.Duration, synDir Direction, respProb float64) {
	inside := randomAddrIn(p.Prefix, rng)
	outside := randomExternalAddr(rng)
	var src, dst netip.Addr
	if synDir == DirOut {
		src, dst = inside, outside
	} else {
		src, dst = outside, inside
	}
	srcPort := ephemeralPort(rng)
	const dstPort = 80
	replyDir := flip(synDir)

	appendRecord(tr, Record{
		Ts: start, Kind: packet.KindSYN, Dir: synDir,
		Src: src, Dst: dst, SrcPort: srcPort, DstPort: dstPort,
	})

	if rng.Float64() >= respProb {
		// Unanswered SYN: the client retransmits on the standard
		// schedule; the extra SYNs also go unanswered. This is the
		// benign source of SYN > SYN/ACK discrepancy.
		for _, delay := range clientRetransmits {
			appendRecord(tr, Record{
				Ts: start + delay, Kind: packet.KindSYN, Dir: synDir,
				Src: src, Dst: dst, SrcPort: srcPort, DstPort: dstPort,
			})
		}
		return
	}

	rtt := sampleRTT(p, rng)
	appendRecord(tr, Record{
		Ts: start + rtt, Kind: packet.KindSYNACK, Dir: replyDir,
		Src: dst, Dst: src, SrcPort: dstPort, DstPort: srcPort,
	})

	if p.WithTeardown {
		// Connection lifetime: lognormal around 15 s.
		life := time.Duration(math.Exp(math.Log(15)+rng.NormFloat64()) * float64(time.Second))
		end := start + rtt + life
		appendRecord(tr, Record{
			Ts: end, Kind: packet.KindFIN, Dir: synDir,
			Src: src, Dst: dst, SrcPort: srcPort, DstPort: dstPort,
		})
		appendRecord(tr, Record{
			Ts: end + rtt, Kind: packet.KindFIN, Dir: replyDir,
			Src: dst, Dst: src, SrcPort: dstPort, DstPort: srcPort,
		})
	}
}

// appendRecord adds r if it falls inside the trace span.
func appendRecord(tr *Trace, r Record) {
	if r.Ts >= 0 && r.Ts < tr.Span {
		tr.Records = append(tr.Records, r)
	}
}

func flip(d Direction) Direction {
	if d == DirOut {
		return DirIn
	}
	return DirOut
}

// sampleRTT draws a lognormal RTT with median MeanRTT.
func sampleRTT(p Profile, rng *rand.Rand) time.Duration {
	if p.RTTSigma <= 0 {
		return p.MeanRTT
	}
	factor := math.Exp(rng.NormFloat64() * p.RTTSigma)
	return time.Duration(float64(p.MeanRTT) * factor)
}

// randomAddrIn samples a host address inside prefix (never the
// network address itself).
func randomAddrIn(prefix netip.Prefix, rng *rand.Rand) netip.Addr {
	base := prefix.Masked().Addr().As4()
	hostBits := 32 - prefix.Bits()
	if hostBits <= 0 {
		return prefix.Addr()
	}
	span := uint64(1) << hostBits
	off := uint32(rng.Uint64()%(span-1)) + 1
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// randomExternalAddr samples an address in 11.0.0.0/8, disjoint from
// every profile prefix.
func randomExternalAddr(rng *rand.Rand) netip.Addr {
	return netip.AddrFrom4([4]byte{11, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
}

// ephemeralPort samples a client port in [32768, 61000).
func ephemeralPort(rng *rand.Rand) uint16 {
	return uint16(32768 + rng.Intn(61000-32768))
}
