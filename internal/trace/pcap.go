package trace

import (
	"io"
	"net/netip"

	"repro/internal/packet"
	"repro/internal/pcapng"
)

// WritePcap exports the trace as a libpcap capture with LINKTYPE_RAW
// packets: each record becomes a minimal IPv4+TCP segment whose flags
// encode the record kind. Records whose kind cannot be expressed as
// TCP flags (KindNotTCP) are skipped.
func WritePcap(w io.Writer, t *Trace) error {
	pw, err := pcapng.NewWriter(w, 0)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, packet.IPv4HeaderLen+packet.TCPHeaderLen)
	for _, r := range t.Records {
		flags, ok := kindToFlags(r.Kind)
		if !ok {
			continue
		}
		seg := packet.Build(r.Src, r.Dst, r.SrcPort, r.DstPort, 0, 0, flags)
		buf = seg.Marshal(buf[:0])
		data := make([]byte, len(buf))
		copy(data, buf)
		if err := pw.Write(pcapng.Packet{Ts: r.Ts, Data: data}); err != nil {
			return err
		}
	}
	return nil
}

// ReadPcap imports a libpcap capture, classifying each packet with the
// paper's classifier and assigning direction by destination: packets
// destined inside stubPrefix are inbound, everything else outbound.
// Destination is the right discriminator because flood SYNs carry
// forged sources — a source-based rule would misfile the very packets
// SYN-dog must count. Non-TCP and fragmented packets are dropped,
// exactly as the leaf-router classifier would ignore them. Ethernet
// captures are supported by skipping the MAC header.
func ReadPcap(r io.Reader, name string, stubPrefix netip.Prefix) (*Trace, error) {
	s, err := NewPcapStream(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: name}
	for {
		rec, err := s.NextDir(stubPrefix)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	t.Span = s.Span()
	t.Sort()
	return t, nil
}

// kindToFlags maps a record kind back to representative TCP flag bits.
func kindToFlags(k packet.Kind) (uint8, bool) {
	switch k {
	case packet.KindSYN:
		return packet.FlagSYN, true
	case packet.KindSYNACK:
		return packet.FlagSYN | packet.FlagACK, true
	case packet.KindFIN:
		return packet.FlagFIN | packet.FlagACK, true
	case packet.KindRST:
		return packet.FlagRST, true
	case packet.KindOther:
		return packet.FlagACK, true
	default:
		return 0, false
	}
}
