package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"
)

// Load reads a trace file, picking the codec from the extension:
//
//	.trace/.bin  binary
//	.csv         text
//	.pcap        libpcap (needs stubPrefix for direction inference)
//	.txt/.dump   tcpdump text (needs stubPrefix)
//	any + .gz    gzip-wrapped version of the inner extension
//
// Unknown extensions fall back to the binary codec.
func Load(path string, stubPrefix netip.Prefix) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var r io.Reader = f
	name := path
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: gzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
		name = strings.TrimSuffix(path, ".gz")
	}

	switch {
	case strings.HasSuffix(name, ".csv"):
		return ReadCSV(r)
	case strings.HasSuffix(name, ".pcap"):
		if !stubPrefix.IsValid() {
			return nil, fmt.Errorf("trace: %s needs a stub prefix for direction inference", path)
		}
		return ReadPcap(r, path, stubPrefix)
	case strings.HasSuffix(name, ".txt"), strings.HasSuffix(name, ".dump"):
		if !stubPrefix.IsValid() {
			return nil, fmt.Errorf("trace: %s needs a stub prefix for direction inference", path)
		}
		return ReadTcpdump(r, path, stubPrefix)
	default:
		return ReadBinary(r)
	}
}

// LoadValidated loads a trace and enforces its invariants (sorted
// timestamps within [0, Span)) once at the door, so downstream
// consumers — instant and paced replay alike — can assume a
// well-formed trace instead of each deciding whether to re-check.
// An unsorted trace mis-buckets observation periods silently, which is
// exactly the class of divergence a long-running daemon cannot afford.
func LoadValidated(path string, stubPrefix netip.Prefix) (*Trace, error) {
	tr, err := Load(path, stubPrefix)
	if err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return tr, nil
}

// Save writes a trace file, picking the codec from the extension (same
// rules as Load; pcap and tcpdump-text direction metadata is implicit
// in addresses, so all formats are writable except tcpdump text, which
// is an import-only format).
func Save(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var w io.Writer = f
	var gz *gzip.Writer
	name := path
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
		name = strings.TrimSuffix(path, ".gz")
	}

	switch {
	case strings.HasSuffix(name, ".csv"):
		err = WriteCSV(w, tr)
	case strings.HasSuffix(name, ".pcap"):
		err = WritePcap(w, tr)
	case strings.HasSuffix(name, ".txt"), strings.HasSuffix(name, ".dump"):
		err = fmt.Errorf("trace: tcpdump text is import-only")
	default:
		err = WriteBinary(w, tr)
	}
	if err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}
