package trace

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/stats"
)

var (
	insideAddr  = netip.MustParseAddr("152.2.1.1")
	outsideAddr = netip.MustParseAddr("11.0.0.1")
)

func rec(ts time.Duration, kind packet.Kind, dir Direction) Record {
	src, dst := insideAddr, outsideAddr
	if dir == DirIn {
		src, dst = outsideAddr, insideAddr
	}
	return Record{Ts: ts, Kind: kind, Dir: dir, Src: src, Dst: dst, SrcPort: 1000, DstPort: 80}
}

func TestDirectionString(t *testing.T) {
	if DirIn.String() != "in" || DirOut.String() != "out" {
		t.Error("direction strings wrong")
	}
	if Direction(7).String() != "dir(7)" {
		t.Error("unknown direction string wrong")
	}
}

func TestValidate(t *testing.T) {
	good := &Trace{Span: time.Minute, Records: []Record{
		rec(0, packet.KindSYN, DirOut),
		rec(time.Second, packet.KindSYNACK, DirIn),
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	unsorted := &Trace{Span: time.Minute, Records: []Record{
		rec(2*time.Second, packet.KindSYN, DirOut),
		rec(time.Second, packet.KindSYN, DirOut),
	}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted trace accepted")
	}
	outOfSpan := &Trace{Span: time.Second, Records: []Record{
		rec(2*time.Second, packet.KindSYN, DirOut),
	}}
	if err := outOfSpan.Validate(); err == nil {
		t.Error("out-of-span record accepted")
	}
}

func TestSortIsStable(t *testing.T) {
	tr := &Trace{Span: time.Minute}
	// Two co-timed records with distinguishable ports.
	a := rec(time.Second, packet.KindSYN, DirOut)
	a.SrcPort = 1
	b := rec(time.Second, packet.KindSYN, DirOut)
	b.SrcPort = 2
	tr.Records = []Record{rec(2*time.Second, packet.KindSYN, DirOut), a, b}
	tr.Sort()
	if tr.Records[0].SrcPort != 1 || tr.Records[1].SrcPort != 2 {
		t.Error("stable sort violated for co-timed records")
	}
}

func TestSplitAndFilter(t *testing.T) {
	tr := &Trace{Name: "X", Span: time.Minute, Records: []Record{
		rec(0, packet.KindSYN, DirOut),
		rec(1*time.Second, packet.KindSYNACK, DirIn),
		rec(2*time.Second, packet.KindSYN, DirOut),
	}}
	in, out := tr.Split()
	if in.Name != "X-in" || out.Name != "X-out" {
		t.Errorf("split names = %q/%q", in.Name, out.Name)
	}
	if len(in.Records) != 1 || len(out.Records) != 2 {
		t.Errorf("split sizes = %d/%d, want 1/2", len(in.Records), len(out.Records))
	}
	if in.Span != time.Minute || out.Span != time.Minute {
		t.Error("split lost span")
	}
}

func TestMergeSortsAndSpans(t *testing.T) {
	a := &Trace{Name: "a", Span: time.Minute, Records: []Record{
		rec(30*time.Second, packet.KindSYN, DirOut),
	}}
	b := &Trace{Name: "b", Span: 2 * time.Minute, Records: []Record{
		rec(10*time.Second, packet.KindSYN, DirOut),
		rec(90*time.Second, packet.KindSYN, DirOut),
	}}
	m := Merge("mixed", a, b)
	if m.Span != 2*time.Minute {
		t.Errorf("merged span = %v, want 2m", m.Span)
	}
	if len(m.Records) != 3 {
		t.Fatalf("merged records = %d, want 3", len(m.Records))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged trace invalid: %v", err)
	}
	if m.Records[0].Ts != 10*time.Second {
		t.Error("merge did not sort")
	}
}

func TestAggregate(t *testing.T) {
	tr := &Trace{Span: time.Minute, Records: []Record{
		rec(1*time.Second, packet.KindSYN, DirOut),
		rec(2*time.Second, packet.KindSYN, DirOut),
		rec(3*time.Second, packet.KindSYNACK, DirIn),
		rec(21*time.Second, packet.KindSYN, DirOut),
		rec(41*time.Second, packet.KindSYNACK, DirIn),
		// Records that must NOT be counted:
		rec(5*time.Second, packet.KindSYN, DirIn),     // inbound SYN
		rec(6*time.Second, packet.KindSYNACK, DirOut), // outbound SYN/ACK
		rec(7*time.Second, packet.KindFIN, DirOut),    // teardown
	}}
	tr.Sort()
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Periods() != 3 {
		t.Fatalf("periods = %d, want 3", pc.Periods())
	}
	wantSYN := []float64{2, 1, 0}
	wantACK := []float64{1, 0, 1}
	for i := range wantSYN {
		if pc.OutSYN[i] != wantSYN[i] {
			t.Errorf("OutSYN[%d] = %v, want %v", i, pc.OutSYN[i], wantSYN[i])
		}
		if pc.InSYNACK[i] != wantACK[i] {
			t.Errorf("InSYNACK[%d] = %v, want %v", i, pc.InSYNACK[i], wantACK[i])
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	tr := &Trace{Span: time.Minute}
	if _, err := tr.Aggregate(0); err == nil {
		t.Error("zero period accepted")
	}
	empty := &Trace{}
	if _, err := empty.Aggregate(time.Second); err == nil {
		t.Error("empty trace accepted")
	}
	short := &Trace{Span: time.Second}
	if _, err := short.Aggregate(time.Minute); err == nil {
		t.Error("span shorter than one period accepted")
	}
}

func TestSummarizeDirectionality(t *testing.T) {
	bi := &Trace{Name: "bi", Span: time.Minute, Records: []Record{
		rec(0, packet.KindSYN, DirOut),
		rec(time.Second, packet.KindSYNACK, DirIn),
		rec(2*time.Second, packet.KindSYN, DirIn),
	}}
	s := bi.Summarize()
	if s.Directional != "Bi-directional" {
		t.Errorf("directional = %q, want Bi-directional", s.Directional)
	}
	uni := &Trace{Name: "uni", Span: time.Minute, Records: []Record{
		rec(0, packet.KindSYN, DirOut),
		rec(time.Second, packet.KindSYN, DirOut),
	}}
	if got := uni.Summarize().Directional; got != "Uni-directional" {
		t.Errorf("directional = %q, want Uni-directional", got)
	}
	if s.OutSYN != 1 || s.InSYNACK != 1 || s.InSYN != 1 {
		t.Errorf("summary counts wrong: %+v", s)
	}
}

// --- Profile generation -------------------------------------------------

func TestGenerateValidation(t *testing.T) {
	bad := Profile{Name: "bad"}
	if _, err := Generate(bad, 1); err == nil {
		t.Error("empty profile accepted")
	}
	p := UNC()
	p.ResponseProb = 1.5
	if _, err := Generate(p, 1); err == nil {
		t.Error("bad ResponseProb accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Auckland()
	p.Span = 10 * time.Minute // trim for test speed
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("records diverge at %d", i)
		}
	}
	c, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == len(a.Records) {
		// Same length is conceivable but equality of all records is not.
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

// checkCalibration asserts the generated per-period SYN/ACK level is
// near the target K̄ and the SYN-SYN/ACK correlation is strong.
// Outages are disabled: they are rare in full-span traces but would
// dominate the correlation statistic over these short test spans.
func checkCalibration(t *testing.T, p Profile, seed int64, wantKBar, tol float64) {
	t.Helper()
	p.OutagesPerHour = 0
	tr, err := Generate(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	pc, err := tr.Aggregate(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	kBar := stats.Mean(pc.InSYNACK)
	if kBar < wantKBar*(1-tol) || kBar > wantKBar*(1+tol) {
		t.Errorf("%s: K̄ = %.1f, want %.0f ±%.0f%%", p.Name, kBar, wantKBar, tol*100)
	}
	corr := stats.CrossCorrelation(pc.OutSYN, pc.InSYNACK)
	if corr < 0.8 {
		t.Errorf("%s: SYN-SYN/ACK correlation = %.2f, want > 0.8", p.Name, corr)
	}
	// SYNs slightly exceed SYN/ACKs (drops + retransmissions) but the
	// normalized mean stays well under the offset a = 0.35.
	synMean := stats.Mean(pc.OutSYN)
	c := (synMean - kBar) / kBar
	if c < 0 || c > 0.25 {
		t.Errorf("%s: normalized mean c = %.3f, want in (0, 0.25)", p.Name, c)
	}
}

func TestUNCCalibration(t *testing.T) {
	p := UNC()
	p.Span = 10 * time.Minute
	checkCalibration(t, p, 7, 2114, 0.25)
}

func TestAucklandCalibration(t *testing.T) {
	p := Auckland()
	p.Span = 20 * time.Minute
	checkCalibration(t, p, 7, 100, 0.3)
}

func TestHarvardCalibration(t *testing.T) {
	p := Harvard()
	p.Span = 10 * time.Minute
	checkCalibration(t, p, 7, 300, 0.3)
}

func TestLBLGeneratesBidirectional(t *testing.T) {
	p := LBL()
	p.Span = 10 * time.Minute
	tr, err := Generate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Directional != "Bi-directional" {
		t.Errorf("LBL trace is %s", s.Directional)
	}
	if s.InSYN == 0 || s.OutSYNACK == 0 {
		t.Error("LBL should contain inbound connections")
	}
}

func TestProfilesCover4Sites(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("Profiles() returned %d, want 4", len(ps))
	}
	want := []string{"LBL", "Harvard", "UNC", "Auckland"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, want[i])
		}
	}
	// Paper durations (Table 1).
	if ps[0].Span != time.Hour || ps[1].Span != 30*time.Minute ||
		ps[2].Span != 30*time.Minute || ps[3].Span != 3*time.Hour {
		t.Error("profile durations do not match Table 1")
	}
}

func TestRandomAddrInStaysInPrefix(t *testing.T) {
	p := UNC()
	tr, err := Generate(withSpan(p, 2*time.Minute), 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		var inside netip.Addr
		if r.Dir == DirOut && r.Kind == packet.KindSYN {
			inside = r.Src
		} else if r.Dir == DirIn && r.Kind == packet.KindSYNACK {
			inside = r.Dst
		} else {
			continue
		}
		if !p.Prefix.Contains(inside) {
			t.Fatalf("inside address %v outside prefix %v", inside, p.Prefix)
		}
	}
}

func withSpan(p Profile, span time.Duration) Profile {
	p.Span = span
	return p
}

func TestGeneratedTrafficIsBurstierThanPoisson(t *testing.T) {
	// The background generators must be self-similar, not Poisson
	// (Section 3.2 cites the Poisson-failure literature). Check the
	// per-second SYN counts: index of dispersion must exceed the
	// Poisson value of ~1.
	p := UNC()
	p.Span = 10 * time.Minute
	p.OutagesPerHour = 0
	p.DiurnalAmp = 0 // isolate the arrival process itself
	tr, err := Generate(p, 31)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, int(p.Span/time.Second))
	for _, r := range tr.Records {
		if r.Kind == packet.KindSYN && r.Dir == DirOut {
			idx := int(r.Ts / time.Second)
			if idx < len(counts) {
				counts[idx]++
			}
		}
	}
	iod := stats.IndexOfDispersion(counts)
	if iod < 1.5 {
		t.Errorf("per-second SYN dispersion = %.2f, want clearly > 1 (bursty)", iod)
	}
}

func TestOutagesCreateBoundedSpikes(t *testing.T) {
	// Outage windows must create visible SYN-SYN/ACK discrepancy (the
	// Figure 5 spikes) without ever approaching a flood-sized signal.
	p := Auckland()
	p.Span = time.Hour
	p.OutagesPerHour = 6 // dense, so the test reliably sees some
	sawSpike := false
	for seed := int64(1); seed <= 5 && !sawSpike; seed++ {
		tr, err := Generate(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := tr.Aggregate(20 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		kBar := stats.Mean(pc.InSYNACK)
		for i := range pc.OutSYN {
			x := (pc.OutSYN[i] - pc.InSYNACK[i]) / kBar
			if x > 0.35 {
				sawSpike = true
			}
			if x > 1.0 {
				t.Fatalf("seed %d period %d: benign X = %.2f looks like a flood", seed, i, x)
			}
		}
	}
	if !sawSpike {
		t.Error("dense outages produced no X > a spikes; Figure 5 spikes unreproducible")
	}
}

func TestOutageDrawDeterministic(t *testing.T) {
	p := Auckland()
	p.Span = 30 * time.Minute
	a, err := Generate(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("outage sampling broke determinism")
	}
}

func TestPoissonDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if got := poissonDraw(rng, 0); got != 0 {
		t.Errorf("poissonDraw(0) = %d", got)
	}
	if got := poissonDraw(rng, -3); got != 0 {
		t.Errorf("poissonDraw(-3) = %d", got)
	}
	total := 0
	const n = 2000
	for i := 0; i < n; i++ {
		total += poissonDraw(rng, 4)
	}
	mean := float64(total) / n
	if mean < 3.7 || mean > 4.3 {
		t.Errorf("poisson mean = %v, want ~4", mean)
	}
}
