package trace

import (
	"io"

	"repro/internal/iptrace"
	"repro/internal/packet"
)

// WriteIPTrace exports the trace as an iptrace 2.0 capture: each
// record becomes a minimal IPv4+TCP segment like WritePcap's, but the
// record header's tx flag carries the direction natively, so reading
// the capture back needs no stub-prefix heuristic. Timestamps keep
// full nanosecond precision (unlike pcap's microseconds). KindNotTCP
// records are skipped.
func WriteIPTrace(w io.Writer, t *Trace) error {
	cw, err := iptrace.NewCaptureWriter(w)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, packet.IPv4HeaderLen+packet.TCPHeaderLen)
	for _, r := range t.Records {
		flags, ok := kindToFlags(r.Kind)
		if !ok {
			continue
		}
		seg := packet.Build(r.Src, r.Dst, r.SrcPort, r.DstPort, 0, 0, flags)
		buf = seg.Marshal(buf[:0])
		if err := cw.Write(iptrace.CapturePacket{Ts: r.Ts, Tx: r.Dir == DirOut, Data: buf}); err != nil {
			return err
		}
	}
	return nil
}
