package trace

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/packet"
)

// ReadTcpdump imports the text output of `tcpdump -n` — the format the
// original mid-1990s traces circulated in — and converts it to a
// Trace. Lines look like:
//
//	12:00:00.123456 IP 10.1.2.3.443 > 192.168.1.5.51234: Flags [S.], seq 1, ...
//
// Only TCP lines carrying a Flags field are ingested; everything else
// (ARP, UDP, ICMP, continuation lines) is skipped, mirroring how the
// leaf-router classifier ignores non-TCP traffic. Direction is
// assigned by destination relative to stubPrefix, like ReadPcap.
// Timestamps are wall-clock times of day; the trace clock starts at
// the first accepted packet, and a backward jump of more than half a
// day is treated as midnight rollover.
func ReadTcpdump(r io.Reader, name string, stubPrefix netip.Prefix) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	t := &Trace{Name: name}
	var (
		haveBase  bool
		base      time.Duration // first packet's time of day
		dayOffset time.Duration
		prevTOD   time.Duration
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, tod, ok, err := parseTcpdumpLine(sc.Text(), stubPrefix)
		if err != nil {
			return nil, fmt.Errorf("trace: tcpdump line %d: %w", lineNo, err)
		}
		if !ok {
			continue
		}
		if !haveBase {
			haveBase = true
			base = tod
			prevTOD = tod
		}
		if tod < prevTOD-12*time.Hour {
			dayOffset += 24 * time.Hour
		}
		prevTOD = tod
		rec.Ts = tod + dayOffset - base
		t.Records = append(t.Records, rec)
		if rec.Ts >= t.Span {
			t.Span = rec.Ts + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t.Sort()
	return t, nil
}

// WriteTcpdump renders a trace in the `tcpdump -n` text format
// ReadTcpdump parses — the round-trip used to build text fixtures for
// the streaming importer. Each record becomes one line:
//
//	12:00:00.123456 IP 10.1.2.3.443 > 192.168.1.5.51234: Flags [S], seq 0, win 0, length 0
//
// Timestamps render as time of day starting from the record's Ts;
// traces spanning 24h or more are rejected (the text format carries no
// date, and ReadTcpdump's midnight-rollover heuristic must not be fed
// fabricated rollovers). KindNotTCP records are skipped — they have no
// Flags field — so a round trip preserves exactly the classifiable
// records.
func WriteTcpdump(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == packet.KindNotTCP {
			continue
		}
		if r.Ts < 0 || r.Ts >= 24*time.Hour {
			return fmt.Errorf("trace: record at %v outside the text format's single-day clock", r.Ts)
		}
		var flags string
		switch r.Kind {
		case packet.KindSYN:
			flags = "S"
		case packet.KindSYNACK:
			flags = "S."
		case packet.KindFIN:
			flags = "F."
		case packet.KindRST:
			flags = "R."
		default:
			flags = "."
		}
		ts := r.Ts
		h := ts / time.Hour
		m := (ts % time.Hour) / time.Minute
		s := (ts % time.Minute) / time.Second
		us := (ts % time.Second) / time.Microsecond
		if _, err := fmt.Fprintf(bw, "%02d:%02d:%02d.%06d IP %s.%d > %s.%d: Flags [%s], seq 0, win 0, length 0\n",
			h, m, s, us, r.Src, r.SrcPort, r.Dst, r.DstPort, flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseTcpdumpLine extracts one record; ok=false means skip the line.
func parseTcpdumpLine(line string, stubPrefix netip.Prefix) (Record, time.Duration, bool, error) {
	fields := strings.Fields(line)
	// Minimal shape: ts IP src > dst: Flags [..]
	if len(fields) < 7 || fields[1] != "IP" || fields[3] != ">" {
		return Record{}, 0, false, nil
	}
	flagsIdx := -1
	for i, f := range fields {
		if f == "Flags" {
			flagsIdx = i
			break
		}
	}
	if flagsIdx < 0 || flagsIdx+1 >= len(fields) {
		return Record{}, 0, false, nil // not a TCP line
	}

	tod, err := parseTimeOfDay(fields[0])
	if err != nil {
		return Record{}, 0, false, err
	}
	src, srcPort, err := parseHostPort(fields[2])
	if err != nil {
		return Record{}, 0, false, err
	}
	dstField := strings.TrimSuffix(fields[4], ":")
	dst, dstPort, err := parseHostPort(dstField)
	if err != nil {
		return Record{}, 0, false, err
	}
	kind, err := parseTcpdumpFlags(fields[flagsIdx+1])
	if err != nil {
		return Record{}, 0, false, err
	}

	dir := DirOut
	if stubPrefix.Contains(dst) {
		dir = DirIn
	}
	return Record{
		Kind: kind, Dir: dir,
		Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
	}, tod, true, nil
}

// parseTimeOfDay parses HH:MM:SS[.frac].
func parseTimeOfDay(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("bad timestamp %q", s)
	}
	h, err := strconv.Atoi(parts[0])
	if err != nil || h < 0 || h > 23 {
		return 0, fmt.Errorf("bad hour in %q", s)
	}
	m, err := strconv.Atoi(parts[1])
	if err != nil || m < 0 || m > 59 {
		return 0, fmt.Errorf("bad minute in %q", s)
	}
	sec, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || sec < 0 || sec >= 61 {
		return 0, fmt.Errorf("bad second in %q", s)
	}
	return time.Duration(h)*time.Hour + time.Duration(m)*time.Minute +
		time.Duration(sec*float64(time.Second)), nil
}

// parseHostPort splits "a.b.c.d.port" (tcpdump joins address and port
// with a dot).
func parseHostPort(s string) (netip.Addr, uint16, error) {
	idx := strings.LastIndexByte(s, '.')
	if idx <= 0 || idx == len(s)-1 {
		return netip.Addr{}, 0, fmt.Errorf("bad host.port %q", s)
	}
	addr, err := netip.ParseAddr(s[:idx])
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("bad address in %q: %w", s, err)
	}
	port, err := strconv.ParseUint(s[idx+1:], 10, 16)
	if err != nil {
		return netip.Addr{}, 0, fmt.Errorf("bad port in %q: %w", s, err)
	}
	return addr, uint16(port), nil
}

// parseTcpdumpFlags maps tcpdump's bracket notation to a Kind:
// S=SYN, F=FIN, R=RST, P=PSH, U=URG, .=ACK (W/E/none ignored).
func parseTcpdumpFlags(s string) (packet.Kind, error) {
	s = strings.TrimSuffix(strings.TrimPrefix(s, "["), "],")
	s = strings.TrimSuffix(s, "]")
	var flags uint8
	for _, c := range s {
		switch c {
		case 'S':
			flags |= packet.FlagSYN
		case 'F':
			flags |= packet.FlagFIN
		case 'R':
			flags |= packet.FlagRST
		case 'P':
			flags |= packet.FlagPSH
		case 'U':
			flags |= packet.FlagURG
		case '.':
			flags |= packet.FlagACK
		case 'W', 'E', 'w', 'e', 'n':
			// ECN bits / "none": irrelevant to classification.
		default:
			return 0, fmt.Errorf("unknown tcpdump flag %q in %q", string(c), s)
		}
	}
	return packet.ClassifyFlags(flags), nil
}
