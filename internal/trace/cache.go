package trace

import "sync"

// Cache memoizes Generate results keyed by (profile, seed), so a
// caller that replays the same background many times — a Monte-Carlo
// sweep, an ablation running a flood-free and a flooded pass over one
// trace — generates it once. It is safe for concurrent use.
//
// Cached traces are shared: callers must treat them as read-only.
// Every trace operation that "modifies" (Filter, Flip, Merge, Sort on
// a copy) already allocates a new record slice, so the usual pipeline
// honors this for free.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry

	// generate is the generator invoked on a miss; nil means the
	// package-level Generate. Tests substitute it to observe call
	// counts and to inject slow or failing generators.
	generate func(Profile, int64) (*Trace, error)
}

// cacheKey identifies one generated trace. Profile contains only
// comparable fields, so the struct itself can key the map.
type cacheKey struct {
	profile Profile
	seed    int64
}

// cacheEntry is one singleflight slot: the first caller for a key owns
// the generation and closes ready when tr/err are set; latecomers wait
// on ready instead of generating a duplicate trace.
type cacheEntry struct {
	ready chan struct{}
	tr    *Trace
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*cacheEntry)}
}

// Generate returns the memoized trace for (p, seed), generating and
// storing it on first use. Generation happens outside the lock so a
// slow profile does not serialize unrelated lookups, and concurrent
// callers racing on the same key are coalesced: exactly one generates,
// the rest block until its result is ready and share it. A failed
// generation is not cached — its waiters get the error, and the next
// caller retries.
func (c *Cache) Generate(p Profile, seed int64) (*Trace, error) {
	key := cacheKey{profile: p, seed: seed}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.ready
		return e.tr, e.err
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.m[key] = e
	gen := c.generate
	c.mu.Unlock()

	if gen == nil {
		gen = Generate
	}
	e.tr, e.err = gen(p, seed)
	if e.err != nil {
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(e.ready)
	return e.tr, e.err
}

// Len reports how many distinct traces are cached (including any whose
// generation is still in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
