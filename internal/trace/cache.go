package trace

import "sync"

// Cache memoizes Generate results keyed by (profile, seed), so a
// caller that replays the same background many times — a Monte-Carlo
// sweep, an ablation running a flood-free and a flooded pass over one
// trace — generates it once. It is safe for concurrent use.
//
// Cached traces are shared: callers must treat them as read-only.
// Every trace operation that "modifies" (Filter, Flip, Merge, Sort on
// a copy) already allocates a new record slice, so the usual pipeline
// honors this for free.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*Trace
}

// cacheKey identifies one generated trace. Profile contains only
// comparable fields, so the struct itself can key the map.
type cacheKey struct {
	profile Profile
	seed    int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*Trace)}
}

// Generate returns the memoized trace for (p, seed), generating and
// storing it on first use. Generation happens outside the lock so a
// slow profile does not serialize unrelated lookups; if two goroutines
// race on the same key, the first stored result wins and both get it.
func (c *Cache) Generate(p Profile, seed int64) (*Trace, error) {
	key := cacheKey{profile: p, seed: seed}
	c.mu.Lock()
	if tr, ok := c.m[key]; ok {
		c.mu.Unlock()
		return tr, nil
	}
	c.mu.Unlock()

	tr, err := Generate(p, seed)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prior, ok := c.m[key]; ok {
		return prior, nil
	}
	c.m[key] = tr
	return tr, nil
}

// Len reports how many distinct traces are cached.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
