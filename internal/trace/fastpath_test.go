package trace

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/packet"
)

// mergeReference is the pre-two-pointer Merge: append both inputs and
// stable-sort. The fast path must reproduce it exactly, ties included.
func mergeReference(name string, a, b *Trace) *Trace {
	out := &Trace{Name: name, Span: a.Span}
	if b.Span > out.Span {
		out.Span = b.Span
	}
	out.Records = append(out.Records, a.Records...)
	out.Records = append(out.Records, b.Records...)
	out.Sort()
	return out
}

func randomSortedTrace(rng *rand.Rand, n int, span time.Duration) *Trace {
	tr := &Trace{Name: "rand", Span: span}
	ts := time.Duration(0)
	for i := 0; i < n; i++ {
		// Zero steps are common, so co-timed records across both inputs
		// exercise the tie-break.
		ts += time.Duration(rng.Intn(3)) * time.Second
		if ts >= span {
			break
		}
		kind := packet.KindSYN
		if rng.Intn(2) == 0 {
			kind = packet.KindSYNACK
		}
		tr.Records = append(tr.Records, Record{Ts: ts, Kind: kind, Dir: Direction(rng.Intn(2)), SrcPort: uint16(i)})
	}
	return tr
}

// TestMergeMatchesSortReference pins the two-pointer merge against the
// append-then-stable-sort implementation it replaced, across random
// sorted inputs with plenty of equal timestamps. SrcPort tags each
// record, so an order swap among co-timed records is caught.
func TestMergeMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randomSortedTrace(rng, rng.Intn(40), time.Minute)
		b := randomSortedTrace(rng, rng.Intn(40), 90*time.Second)
		got := Merge("m", a, b)
		want := mergeReference("m", a, b)
		if got.Span != want.Span || len(got.Records) != len(want.Records) {
			t.Fatalf("trial %d: span/len diverge: %v/%d vs %v/%d",
				trial, got.Span, len(got.Records), want.Span, len(want.Records))
		}
		for i := range got.Records {
			if got.Records[i] != want.Records[i] {
				t.Fatalf("trial %d: record %d = %+v, want %+v", trial, i, got.Records[i], want.Records[i])
			}
		}
	}
}

// TestMergeUnsortedFallback: hand-built unsorted inputs still come out
// sorted.
func TestMergeUnsortedFallback(t *testing.T) {
	a := &Trace{Span: time.Minute, Records: []Record{
		{Ts: 30 * time.Second}, {Ts: 10 * time.Second},
	}}
	b := &Trace{Span: time.Minute, Records: []Record{{Ts: 20 * time.Second}}}
	m := Merge("m", a, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace unsorted: %v", err)
	}
	if len(m.Records) != 3 || m.Records[0].Ts != 10*time.Second {
		t.Fatalf("merge of unsorted inputs wrong: %+v", m.Records)
	}
}

func TestClipSpan(t *testing.T) {
	tr := &Trace{Span: time.Minute, Records: []Record{
		{Ts: 10 * time.Second}, {Ts: 29 * time.Second},
		{Ts: 30 * time.Second}, {Ts: 45 * time.Second},
	}}
	tr.ClipSpan(30 * time.Second)
	if tr.Span != 30*time.Second {
		t.Errorf("span = %v, want 30s", tr.Span)
	}
	// A record at exactly the new span must go: Validate requires
	// Ts < Span.
	if len(tr.Records) != 2 {
		t.Fatalf("%d records kept, want 2", len(tr.Records))
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("clipped trace invalid: %v", err)
	}
}

func TestAddFloodOverlay(t *testing.T) {
	bg := &PeriodCounts{
		T0:       time.Second,
		OutSYN:   []float64{10, 20, 30},
		InSYNACK: []float64{9, 19, 29},
	}
	// Longer flood than background: the tail is clamped, mirroring a
	// merged trace clipped to the background span.
	got := bg.AddFlood([]float64{5, 0, 7, 100})
	if want := []float64{15, 20, 37}; len(got.OutSYN) != 3 ||
		got.OutSYN[0] != want[0] || got.OutSYN[1] != want[1] || got.OutSYN[2] != want[2] {
		t.Errorf("OutSYN = %v, want %v", got.OutSYN, want)
	}
	if bg.OutSYN[0] != 10 {
		t.Error("AddFlood mutated the shared background counts")
	}
	if &got.InSYNACK[0] != &bg.InSYNACK[0] {
		t.Error("InSYNACK not shared (flood adds no SYN/ACKs; copying wastes the sweep win)")
	}
	if got.T0 != bg.T0 || got.Periods() != bg.Periods() {
		t.Errorf("shape changed: T0 %v periods %d", got.T0, got.Periods())
	}
}

func TestAggregateLastMileMapping(t *testing.T) {
	tr := &Trace{Span: 2 * time.Second, Records: []Record{
		{Ts: 0, Kind: packet.KindSYN, Dir: DirIn},  // opening
		{Ts: 0, Kind: packet.KindSYN, Dir: DirOut}, // not victim-side opening
		{Ts: 0, Kind: packet.KindFIN, Dir: DirOut}, // closing
		{Ts: 0, Kind: packet.KindRST, Dir: DirOut}, // closing
		{Ts: 0, Kind: packet.KindFIN, Dir: DirIn},  // not a victim-side closing
		{Ts: time.Second, Kind: packet.KindSYN, Dir: DirIn},
	}}
	pc, err := tr.AggregateLastMile(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pc.OutSYN[0] != 1 || pc.InSYNACK[0] != 2 {
		t.Errorf("period 0 = %v/%v, want 1 opening / 2 closings", pc.OutSYN[0], pc.InSYNACK[0])
	}
	if pc.OutSYN[1] != 1 || pc.InSYNACK[1] != 0 {
		t.Errorf("period 1 = %v/%v, want 1/0", pc.OutSYN[1], pc.InSYNACK[1])
	}
}

// allocTrace builds a deterministic mid-sized trace for the allocation
// assertions.
func allocTrace(n int) *Trace {
	tr := &Trace{Name: "alloc", Span: time.Hour}
	for i := 0; i < n; i++ {
		kind := packet.KindSYN
		if i%2 == 0 {
			kind = packet.KindSYNACK
		}
		tr.Records = append(tr.Records, Record{
			Ts: time.Duration(i) * time.Millisecond, Kind: kind, Dir: Direction(i % 2),
		})
	}
	return tr
}

// TestFilterAllocs pins Filter to its preallocated form: one Trace
// header plus one full-capacity record slice, never append-doubling.
func TestFilterAllocs(t *testing.T) {
	tr := allocTrace(4096)
	avg := testing.AllocsPerRun(10, func() {
		tr.Filter(func(r Record) bool { return r.Kind == packet.KindSYN })
	})
	if avg > 2 {
		t.Errorf("Filter allocates %.1f times per call, want <= 2 (header + records)", avg)
	}
}

// TestFlipAllocs pins Flip similarly (header + records + the renamed
// Name string).
func TestFlipAllocs(t *testing.T) {
	tr := allocTrace(4096)
	avg := testing.AllocsPerRun(10, func() {
		tr.Flip()
	})
	if avg > 3 {
		t.Errorf("Flip allocates %.1f times per call, want <= 3 (header + records + name)", avg)
	}
}

// TestMergeAllocs: the two-pointer merge allocates the output once.
func TestMergeAllocs(t *testing.T) {
	a := allocTrace(2048)
	b := allocTrace(2048)
	avg := testing.AllocsPerRun(10, func() {
		Merge("m", a, b)
	})
	if avg > 2 {
		t.Errorf("Merge allocates %.1f times per call, want <= 2 (header + records)", avg)
	}
}
