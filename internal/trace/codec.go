package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"repro/internal/packet"
)

// Binary format:
//
//	magic   [8]byte  "SYNDOG1\n"
//	span    int64    nanoseconds
//	count   uint32   record count
//	nameLen uint16 + name bytes
//	records, each 22 bytes:
//	  ts int64 | kind uint8 | dir uint8 | src [4]byte | dst [4]byte |
//	  srcPort uint16 | dstPort uint16
var binaryMagic = [8]byte{'S', 'Y', 'N', 'D', 'O', 'G', '1', '\n'}

const recordWireLen = 8 + 1 + 1 + 4 + 4 + 2 + 2

// Codec errors.
var (
	ErrBadMagic  = errors.New("trace: bad magic")
	ErrTruncated = errors.New("trace: truncated stream")
)

// WriteBinary streams the trace in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(t.Span))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	name := []byte(t.Name)
	if len(name) > 65535 {
		name = name[:65535]
	}
	var nameLen [2]byte
	binary.LittleEndian.PutUint16(nameLen[:], uint16(len(name)))
	if _, err := bw.Write(nameLen[:]); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	var rec [recordWireLen]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(r.Ts))
		rec[8] = uint8(r.Kind)
		rec[9] = uint8(r.Dir)
		src, dst := r.Src.As4(), r.Dst.As4()
		copy(rec[10:14], src[:])
		copy(rec[14:18], dst[:])
		binary.LittleEndian.PutUint16(rec[18:20], r.SrcPort)
		binary.LittleEndian.PutUint16(rec[20:22], r.DstPort)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace stream. It is a collect loop over
// BinaryStream; use the stream directly for O(1)-memory ingestion.
func ReadBinary(r io.Reader) (*Trace, error) {
	s, err := NewBinaryStream(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: s.Name(), Span: s.Span()}
	// Pre-size from the header but cap the trust: a forged count must
	// not let a tiny input allocate gigabytes (found by FuzzReadBinary).
	preAlloc := s.Count()
	if preAlloc > 1<<16 {
		preAlloc = 1 << 16
	}
	t.Records = make([]Record, 0, preAlloc)
	for {
		rec, err := s.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
}

func wrapTrunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// WriteCSV streams the trace as text, one record per line:
//
//	# trace <name> span_ns=<span>
//	ts_ns,kind,dir,src,dst,sport,dport
func WriteCSV(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s span_ns=%d\n", t.Name, int64(t.Span)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "ts_ns,kind,dir,src,dst,sport,dport"); err != nil {
		return err
	}
	for _, r := range t.Records {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%s,%d,%d\n",
			int64(r.Ts), r.Kind, r.Dir, r.Src, r.Dst, r.SrcPort, r.DstPort); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the text format produced by WriteCSV. It is a collect
// loop over CSVStream; use the stream directly for O(1)-memory
// ingestion.
func ReadCSV(r io.Reader) (*Trace, error) {
	s := NewCSVStream(r)
	t := &Trace{}
	for {
		rec, err := s.Next()
		if err == io.EOF {
			t.Name, t.Span = s.Name(), s.Span()
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
}

func parseCSVHeader(t *Trace, line string) error {
	rest := strings.TrimPrefix(line, "# trace ")
	idx := strings.LastIndex(rest, " span_ns=")
	if idx < 0 {
		return errors.New("missing span_ns")
	}
	t.Name = rest[:idx]
	ns, err := strconv.ParseInt(rest[idx+len(" span_ns="):], 10, 64)
	if err != nil {
		return fmt.Errorf("bad span: %w", err)
	}
	t.Span = time.Duration(ns)
	return nil
}

func parseCSVRecord(line string) (Record, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 7 {
		return Record{}, fmt.Errorf("want 7 fields, got %d", len(fields))
	}
	ns, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad ts: %w", err)
	}
	kind, err := parseKind(fields[1])
	if err != nil {
		return Record{}, err
	}
	dir, err := parseDirection(fields[2])
	if err != nil {
		return Record{}, err
	}
	src, err := netip.ParseAddr(fields[3])
	if err != nil {
		return Record{}, fmt.Errorf("bad src: %w", err)
	}
	dst, err := netip.ParseAddr(fields[4])
	if err != nil {
		return Record{}, fmt.Errorf("bad dst: %w", err)
	}
	sport, err := strconv.ParseUint(fields[5], 10, 16)
	if err != nil {
		return Record{}, fmt.Errorf("bad sport: %w", err)
	}
	dport, err := strconv.ParseUint(fields[6], 10, 16)
	if err != nil {
		return Record{}, fmt.Errorf("bad dport: %w", err)
	}
	return Record{
		Ts: time.Duration(ns), Kind: kind, Dir: dir,
		Src: src, Dst: dst,
		SrcPort: uint16(sport), DstPort: uint16(dport),
	}, nil
}

func parseKind(s string) (packet.Kind, error) {
	switch s {
	case "syn":
		return packet.KindSYN, nil
	case "syn-ack":
		return packet.KindSYNACK, nil
	case "fin":
		return packet.KindFIN, nil
	case "rst":
		return packet.KindRST, nil
	case "other":
		return packet.KindOther, nil
	case "not-tcp":
		return packet.KindNotTCP, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}

func parseDirection(s string) (Direction, error) {
	switch s {
	case "in":
		return DirIn, nil
	case "out":
		return DirOut, nil
	default:
		return 0, fmt.Errorf("unknown direction %q", s)
	}
}
