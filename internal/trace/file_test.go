package trace

import (
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLoadSaveByExtension(t *testing.T) {
	want := sampleTrace()
	prefix := netip.MustParsePrefix("152.2.0.0/16")
	dir := t.TempDir()
	cases := []struct {
		name        string
		needsPrefix bool
		exact       bool // record-for-record equality expected
	}{
		{"x.trace", false, true},
		{"x.bin", false, true},
		{"x.csv", false, true},
		{"x.pcap", true, false}, // direction re-inferred; kinds preserved
		{"x.trace.gz", false, true},
		{"x.csv.gz", false, true},
		{"x.pcap.gz", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name)
			if err := Save(path, want); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path, prefix)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Records) != len(want.Records) {
				t.Fatalf("records = %d, want %d", len(got.Records), len(want.Records))
			}
			if tc.exact {
				for i := range want.Records {
					if got.Records[i] != want.Records[i] {
						t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], want.Records[i])
					}
				}
			}
		})
	}
}

func TestLoadRequiresPrefixForPcapAndTcpdump(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "x.pcap")
	if err := Save(pcap, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(pcap, netip.Prefix{}); err == nil {
		t.Error("pcap without prefix accepted")
	}
	txt := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(txt, []byte(tcpdumpSample), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(txt, netip.Prefix{}); err == nil {
		t.Error("tcpdump without prefix accepted")
	}
	if _, err := Load(txt, netip.MustParsePrefix("10.1.0.0/16")); err != nil {
		t.Errorf("tcpdump with prefix failed: %v", err)
	}
}

func TestSaveRejectsTcpdump(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "x.txt"), sampleTrace()); err == nil {
		t.Error("tcpdump text should be import-only")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/x.trace", netip.Prefix{}); err == nil {
		t.Error("missing file accepted")
	}
	// A .gz file that is not gzip.
	path := filepath.Join(t.TempDir(), "x.trace.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, netip.Prefix{}); err == nil {
		t.Error("non-gzip .gz accepted")
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	p := Auckland()
	p.Span = 10 * time.Minute
	tr, err := Generate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain := filepath.Join(dir, "x.trace")
	zipped := filepath.Join(dir, "x.trace.gz")
	if err := Save(plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := Save(zipped, tr); err != nil {
		t.Fatal(err)
	}
	ps, _ := os.Stat(plain)
	zs, _ := os.Stat(zipped)
	if zs.Size() >= ps.Size() {
		t.Errorf("gzip did not shrink: %d vs %d", zs.Size(), ps.Size())
	}
}
