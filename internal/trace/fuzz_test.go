package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/packet"
)

// FuzzReadBinary asserts the binary codec never panics and that
// whatever it accepts re-encodes and re-decodes to the same trace.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, sampleTrace())
	f.Add(buf.Bytes())
	f.Add([]byte("SYNDOG1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, tr); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Records) != len(tr.Records) || back.Span != tr.Span {
			t.Fatal("binary round-trip drifted")
		}
	})
}

// FuzzReadCSV asserts the text codec never panics and round-trips what
// it accepts.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteCSV(&buf, sampleTrace())
	f.Add(buf.String())
	f.Add("# trace x span_ns=1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Records) != len(tr.Records) {
			t.Fatal("csv round-trip drifted")
		}
	})
}

// FuzzAggregate asserts per-period aggregation never panics for any
// record layout and conserves counted records.
func FuzzAggregate(f *testing.F) {
	f.Add(int64(1), uint16(10))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16) {
		n := int(nRaw % 500)
		tr := &Trace{Name: "fz", Span: time.Minute}
		for i := 0; i < n; i++ {
			kind := packet.Kind(uint8(seed+int64(i)) % 6)
			dir := DirIn
			if i%2 == 0 {
				dir = DirOut
			}
			tr.Records = append(tr.Records, Record{
				Ts:   time.Duration(i) * 100 * time.Millisecond,
				Kind: kind,
				Dir:  dir,
			})
		}
		pc, err := tr.Aggregate(20 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var syn, ack float64
		for i := range pc.OutSYN {
			syn += pc.OutSYN[i]
			ack += pc.InSYNACK[i]
		}
		if int(syn) != tr.CountKind(DirOut, packet.KindSYN) {
			t.Fatal("aggregate lost outbound SYNs")
		}
		if int(ack) != tr.CountKind(DirIn, packet.KindSYNACK) {
			t.Fatal("aggregate lost inbound SYN/ACKs")
		}
	})
}
