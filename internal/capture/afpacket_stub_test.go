//go:build !(linux && live)

package capture

import (
	"strings"
	"testing"
)

// TestAFPacketStubError pins the portable stub's diagnostic: without
// the live build tag, callers get a message naming the tag they need
// rather than a platform-specific failure.
func TestAFPacketStubError(t *testing.T) {
	_, err := NewAFPacketReader("eth0", 0)
	if err == nil {
		t.Fatal("want error from the portable stub")
	}
	if !strings.Contains(err.Error(), "live") {
		t.Errorf("stub error %q should name the 'live' build tag", err)
	}
}
