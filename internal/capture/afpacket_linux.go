//go:build linux && live

package capture

import (
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"repro/internal/pcapng"
)

// ethPAll is ETH_P_ALL (0x0003): deliver every protocol.
const ethPAll = 0x0003

// defaultSnapLen bounds one captured frame; 65535 keeps whole packets
// on any sane MTU.
const defaultSnapLen = 65535

// readPollInterval is the SO_RCVTIMEO on the packet socket. A blocked
// Recvfrom wakes at this cadence to notice Close — the stdlib syscall
// package has no way to interrupt a raw socket read from another
// goroutine, so the reader polls a closed flag instead.
const readPollInterval = 250 * time.Millisecond

// tpacketStats mirrors the kernel's struct tpacket_stats returned by
// getsockopt(SOL_PACKET, PACKET_STATISTICS).
type tpacketStats struct {
	packets uint32
	drops   uint32
}

// afpacketReader is a FrameReader over an AF_PACKET raw socket bound
// to one interface. Frames carry Ethernet headers (LinkTypeEthernet)
// and timestamps relative to the reader's start — pair it with
// Config.Rebase in callers that care, though relative-to-start already
// begins near zero.
type afpacketReader struct {
	fd        int
	buf       []byte
	start     time.Time
	closed    atomic.Bool
	kernDrops uint64 // accumulated kernel drops; see Drops
}

// NewAFPacketReader opens an AF_PACKET/SOCK_RAW socket bound to the
// named interface, capturing every protocol at snapLen bytes per frame
// (0 means the 65535 default). Requires CAP_NET_RAW. Only built with
// `-tags live` on Linux; elsewhere the stub variant returns an error.
func NewAFPacketReader(iface string, snapLen int) (FrameReader, error) {
	if snapLen <= 0 {
		snapLen = defaultSnapLen
	}
	ifi, err := net.InterfaceByName(iface)
	if err != nil {
		return nil, fmt.Errorf("capture: interface %q: %w", iface, err)
	}
	proto := htons(ethPAll)
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(proto))
	if err != nil {
		return nil, fmt.Errorf("capture: AF_PACKET socket: %w", err)
	}
	sa := &syscall.SockaddrLinklayer{Protocol: proto, Ifindex: ifi.Index}
	if err := syscall.Bind(fd, sa); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("capture: bind %q: %w", iface, err)
	}
	tv := syscall.NsecToTimeval(readPollInterval.Nanoseconds())
	if err := syscall.SetsockoptTimeval(fd, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("capture: SO_RCVTIMEO: %w", err)
	}
	return &afpacketReader{
		fd:    fd,
		buf:   make([]byte, snapLen),
		start: time.Now(),
	}, nil
}

// htons converts a short to network byte order for the socket protocol
// argument.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// ReadFrame blocks for the next frame. The returned Data aliases the
// reader's buffer. After Close it returns io.EOF.
func (r *afpacketReader) ReadFrame() (Frame, error) {
	for {
		if r.closed.Load() {
			return Frame{}, io.EOF
		}
		n, _, err := syscall.Recvfrom(r.fd, r.buf, 0)
		if err != nil {
			// EAGAIN is the SO_RCVTIMEO poll tick, EINTR a signal;
			// both just mean "look again".
			if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK || err == syscall.EINTR {
				continue
			}
			if r.closed.Load() {
				return Frame{}, io.EOF
			}
			return Frame{}, fmt.Errorf("capture: recvfrom: %w", err)
		}
		if n <= 0 {
			continue
		}
		return Frame{Ts: time.Since(r.start), Data: r.buf[:n]}, nil
	}
}

// LinkType reports Ethernet framing — AF_PACKET/SOCK_RAW delivers the
// link-layer header.
func (r *afpacketReader) LinkType() uint32 { return pcapng.LinkTypeEthernet }

// Drops returns the cumulative kernel-side drop count. The kernel
// resets the PACKET_STATISTICS counter on every read, so the reader
// accumulates deltas; calls are expected from one stats goroutine at a
// time (the Source's Stats path).
func (r *afpacketReader) Drops() uint64 {
	if r.closed.Load() {
		return atomic.LoadUint64(&r.kernDrops)
	}
	var st tpacketStats
	l := uint32(unsafe.Sizeof(st))
	_, _, errno := syscall.Syscall6(syscall.SYS_GETSOCKOPT, uintptr(r.fd),
		uintptr(syscall.SOL_PACKET), uintptr(syscall.PACKET_STATISTICS),
		uintptr(unsafe.Pointer(&st)), uintptr(unsafe.Pointer(&l)), 0)
	if errno != 0 {
		return atomic.LoadUint64(&r.kernDrops)
	}
	return atomic.AddUint64(&r.kernDrops, uint64(st.drops))
}

// Close marks the reader closed and releases the socket; a blocked
// ReadFrame notices within readPollInterval.
func (r *afpacketReader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	return syscall.Close(r.fd)
}
