package capture

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapng"
	"repro/internal/trace"
)

// FuzzFrameParse pins the two properties the live path owes the rest
// of the system: Parse never panics on arbitrary frame bytes, and on
// every frame it accepts or rejects it agrees exactly with the offline
// pcap decoder (trace.PcapStream) fed the same bytes through a
// single-packet capture. Divergence here would let live mode and file
// replay classify the same wire bytes differently.
func FuzzFrameParse(f *testing.F) {
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("130.216.0.9")
	seg := packet.Build(src, dst, 1234, 80, 0, 0, packet.FlagSYN)
	raw := seg.Marshal(nil)
	eth := append(append(make([]byte, 0, 14+len(raw)), make([]byte, 12)...), 0x08, 0x00)
	eth = append(eth, raw...)
	vlan := append(append(make([]byte, 0, 18+len(raw)), make([]byte, 12)...), 0x81, 0x00, 0x00, 0x05, 0x08, 0x00)
	vlan = append(vlan, raw...)

	f.Add(raw, true)
	f.Add(eth, false)
	f.Add(vlan, false)
	f.Add([]byte{}, true)
	f.Add([]byte{0x45}, false)

	prefix := netip.MustParsePrefix("130.216.0.0/16")
	f.Fuzz(func(t *testing.T, data []byte, rawLink bool) {
		if len(data) > 65535 {
			data = data[:65535]
		}
		linkType := uint32(pcapng.LinkTypeEthernet)
		if rawLink {
			linkType = pcapng.LinkTypeRaw
		}
		parser, err := NewFrameParser(linkType, prefix)
		if err != nil {
			t.Fatal(err)
		}
		const ts = 3 * time.Second
		rec, ok := parser.Parse(ts, data) // must not panic

		// Reference decode: the same bytes as a one-packet capture
		// through the offline pcap stream.
		capBytes := singlePacketPcap(t, linkType, ts, data)
		s, err := trace.NewPcapStream(bytes.NewReader(capBytes))
		if err != nil {
			t.Fatalf("reference decoder rejected a well-formed capture: %v", err)
		}
		want, werr := s.NextDir(prefix)
		switch {
		case werr == io.EOF:
			if ok {
				t.Fatalf("parser accepted a frame the pcap decoder skipped: %+v", rec)
			}
		case werr != nil:
			t.Fatalf("reference decode failed: %v", werr)
		default:
			if !ok {
				t.Fatalf("parser skipped a frame the pcap decoder accepted: %+v", want)
			}
			if rec != want {
				t.Fatalf("parser %+v != pcap decoder %+v", rec, want)
			}
		}
	})
}

// singlePacketPcap hand-assembles a classic little-endian microsecond
// pcap holding one packet, so the fuzzer controls the frame bytes and
// link type exactly.
func singlePacketPcap(t *testing.T, linkType uint32, ts time.Duration, data []byte) []byte {
	t.Helper()
	buf := make([]byte, 0, 40+len(data))
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0xa1b2c3d4) // micro magic
	binary.LittleEndian.PutUint16(hdr[4:], 2)
	binary.LittleEndian.PutUint16(hdr[6:], 4)
	binary.LittleEndian.PutUint32(hdr[16:], 65535)
	binary.LittleEndian.PutUint32(hdr[20:], linkType)
	buf = append(buf, hdr[:]...)
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(data)))
	buf = append(buf, rec[:]...)
	return append(buf, data...)
}
