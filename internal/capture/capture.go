// Package capture is the live edge of the ingest pipeline: it turns
// captured link-layer frames — from an AF_PACKET socket on Linux
// (build tag "live") or from any pcap byte-stream (file, pipe, FIFO) —
// into trace.Record streams the rest of the system already speaks.
//
// The package is built from three pieces:
//
//   - FrameParser decodes one raw frame exactly the way the offline
//     pcap path does (pcapng.LinkPayload link stripping, the paper's
//     classifier, packet.Segment decoding, destination-based direction
//     inference), so a capture replayed live is bit-identical to the
//     same capture replayed through ingest.Open.
//   - FrameReader abstracts where frames come from: PcapReader wraps
//     any pcap byte-stream; the AF_PACKET reader (afpacket_linux.go,
//     behind "linux && live") reads a real interface.
//   - Source runs a producer goroutine that parses frames into a
//     bounded ring of records. The consumer side implements
//     ingest.Source/ingest.BatchSource. In blocking mode (the default)
//     a full ring backpressures the reader — lossless, right for pipes
//     and replays. In drop mode a full ring sheds the record and
//     counts it (the ingest.DropCounter contract): a NIC cannot be
//     backpressured, so blocking the capture path would only move the
//     loss into the kernel where it is harder to see.
//
// Every loss is accounted: ring drops (Dropped, Stats.RingDropped),
// kernel-side drops (Stats.KernelDropped, from PACKET_STATISTICS when
// the AF_PACKET reader is active) and parser skips (Stats.Skipped)
// surface through the daemon's /status and the syndog_capture_*
// metrics.
package capture

import (
	"errors"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapng"
	"repro/internal/trace"
)

// Frame is one captured link-layer frame. Data is only valid until the
// next ReadFrame call (readers reuse their buffers, like
// pcapng.Reader.NextReuse).
type Frame struct {
	Ts   time.Duration
	Data []byte
}

// FrameReader supplies raw frames to a Source. Read returns io.EOF at
// a clean end of stream; Close must unblock a concurrently blocked
// ReadFrame (the Source's shutdown path depends on it).
type FrameReader interface {
	// ReadFrame returns the next frame, reusing an internal buffer.
	ReadFrame() (Frame, error)
	// LinkType is the pcap link type of the frames (LinkTypeRaw or
	// LinkTypeEthernet).
	LinkType() uint32
	// Drops reports frames the capture handle itself lost (kernel
	// buffer overruns); 0 for byte-stream readers.
	Drops() uint64
	// Close releases the handle and unblocks a pending ReadFrame.
	Close() error
}

// FrameParser decodes one captured frame into a trace.Record with the
// exact pipeline the offline pcap path uses: link-layer stripping,
// classification, TCP segment decoding, and destination-based
// direction inference. Parse never panics on arbitrary bytes (pinned
// by FuzzFrameParse) and must stay in lockstep with
// trace.PcapStream.NextDir — the equivalence suite compares the two
// decode for decode.
type FrameParser struct {
	linkType uint32
	prefix   netip.Prefix
	seg      packet.Segment // decode target, kept off the per-call stack
}

// NewFrameParser builds a parser for frames of the given pcap link
// type. stubPrefix drives direction inference: packets destined inside
// it are inbound, everything else outbound (destination, not source,
// because flood SYNs carry forged sources).
func NewFrameParser(linkType uint32, stubPrefix netip.Prefix) (*FrameParser, error) {
	switch linkType {
	case pcapng.LinkTypeRaw, pcapng.LinkTypeEthernet:
	default:
		return nil, errors.New("capture: unsupported link type")
	}
	if !stubPrefix.IsValid() {
		return nil, errors.New("capture: frame parser needs a stub prefix for direction inference")
	}
	return &FrameParser{linkType: linkType, prefix: stubPrefix}, nil
}

// Parse decodes one frame captured at ts. ok is false for frames the
// classifier ignores: non-IPv4, non-TCP, fragmented or malformed — the
// same skips the offline pcap decoder applies.
func (p *FrameParser) Parse(ts time.Duration, data []byte) (rec trace.Record, ok bool) {
	raw, err := pcapng.LinkPayload(p.linkType, data)
	if err != nil {
		return trace.Record{}, false
	}
	if packet.Classify(raw) == packet.KindNotTCP {
		return trace.Record{}, false
	}
	seg := &p.seg
	if err := seg.Unmarshal(raw); err != nil {
		return trace.Record{}, false
	}
	dir := trace.DirOut
	if p.prefix.Contains(seg.IP.Dst) {
		dir = trace.DirIn
	}
	return trace.Record{
		Ts:      ts,
		Kind:    seg.Kind(),
		Dir:     dir,
		Src:     seg.IP.Src,
		Dst:     seg.IP.Dst,
		SrcPort: seg.TCP.SrcPort,
		DstPort: seg.TCP.DstPort,
	}, true
}

// PcapReader is the portable FrameReader: it reads classic libpcap
// bytes from any io.Reader — a capture file, a FIFO fed by
// `tcpdump -w -`, a network pipe — one frame at a time in O(1) memory.
type PcapReader struct {
	pr *pcapng.Reader
	c  io.Closer
}

// NewPcapReader parses the pcap file header from r and returns a
// reader over its frames. c, when non-nil, is closed by Close and must
// unblock a pending read on r (an *os.File qualifies).
func NewPcapReader(r io.Reader, c io.Closer) (*PcapReader, error) {
	pr, err := pcapng.NewReader(r)
	if err != nil {
		return nil, err
	}
	switch pr.LinkType() {
	case pcapng.LinkTypeRaw, pcapng.LinkTypeEthernet:
	default:
		return nil, errors.New("capture: unsupported pcap link type")
	}
	return &PcapReader{pr: pr, c: c}, nil
}

// ReadFrame returns the next frame; its Data aliases an internal
// buffer overwritten by the next call.
func (p *PcapReader) ReadFrame() (Frame, error) {
	pkt, err := p.pr.NextReuse()
	if err != nil {
		return Frame{}, err
	}
	return Frame{Ts: pkt.Ts, Data: pkt.Data}, nil
}

// LinkType returns the capture's link type.
func (p *PcapReader) LinkType() uint32 { return p.pr.LinkType() }

// Drops implements FrameReader; a byte stream loses nothing itself.
func (p *PcapReader) Drops() uint64 { return 0 }

// Close closes the underlying handle, if the reader owns one.
func (p *PcapReader) Close() error {
	if p.c == nil {
		return nil
	}
	return p.c.Close()
}

// Stats is a point-in-time snapshot of a Source's accounting.
type Stats struct {
	// Frames counts frames read from the capture handle.
	Frames uint64
	// Parsed counts frames that decoded into records.
	Parsed uint64
	// Skipped counts frames the parser rejected (non-IPv4, non-TCP,
	// malformed).
	Skipped uint64
	// RingDropped counts records shed because the ring was full (drop
	// mode only) — the backpressure loss Dropped also reports.
	RingDropped uint64
	// KernelDropped counts frames the capture handle itself lost
	// before this process saw them (AF_PACKET kernel buffer overruns).
	KernelDropped uint64
}

// DefaultRing is the default ring capacity in records.
const DefaultRing = 4096

// Config parameterizes a Source.
type Config struct {
	// StubPrefix drives direction inference (required).
	StubPrefix netip.Prefix
	// Ring is the record ring capacity; 0 takes DefaultRing.
	Ring int
	// Drop sheds records (counting them) instead of blocking the
	// producer when the ring is full. Off, the reader is backpressured
	// — lossless, the right mode for pipes and replays. On is the
	// right mode for an interface: the NIC cannot be paused.
	Drop bool
	// Rebase shifts timestamps so the first frame is t=0 — what a
	// detector watching a live interface wants (AF_PACKET timestamps
	// are an arbitrary monotonic epoch). Leave off for pcap replay,
	// where the capture's own timeline must be preserved bit-exactly.
	Rebase bool
	// Name labels the source in reports (default "live").
	Name string
}

// Source adapts a FrameReader to the ingest pipeline: a producer
// goroutine parses frames into a bounded ring; Next/NextBatch consume
// it. It implements ingest.Source, ingest.BatchSource,
// ingest.SpanSource, ingest.NamedSource and ingest.DropCounter.
type Source struct {
	fr     FrameReader
	parser *FrameParser
	ch     chan trace.Record
	done   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	name   string
	drop   bool
	rebase bool

	frames      atomic.Uint64
	parsed      atomic.Uint64
	skipped     atomic.Uint64
	ringDropped atomic.Uint64
	kernelFinal atomic.Uint64 // reader drops latched at producer exit
	readerDone  atomic.Bool

	maxTs atomic.Int64
	seen  atomic.Bool

	errMu   sync.Mutex
	readErr error // non-EOF reader failure, surfaced after the ring drains

	closeErr error
}

// NewSource wraps a FrameReader and starts the producer goroutine. The
// Source owns the reader: Close stops the producer and closes it.
func NewSource(fr FrameReader, cfg Config) (*Source, error) {
	if fr == nil {
		return nil, errors.New("capture: nil frame reader")
	}
	parser, err := NewFrameParser(fr.LinkType(), cfg.StubPrefix)
	if err != nil {
		return nil, err
	}
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	name := cfg.Name
	if name == "" {
		name = "live"
	}
	s := &Source{
		fr:     fr,
		parser: parser,
		ch:     make(chan trace.Record, ring),
		done:   make(chan struct{}),
		name:   name,
		drop:   cfg.Drop,
		rebase: cfg.Rebase,
	}
	s.wg.Add(1)
	go s.produce()
	return s, nil
}

// produce is the capture loop: read, parse, deliver. It owns the send
// side of the ring and closes it on exit, so consumers always see a
// clean end of stream.
func (s *Source) produce() {
	defer s.wg.Done()
	defer func() {
		s.kernelFinal.Store(s.fr.Drops())
		s.readerDone.Store(true)
		close(s.ch)
	}()
	var base time.Duration
	baseSet := false
	for {
		select {
		case <-s.done:
			return
		default:
		}
		f, err := s.fr.ReadFrame()
		if err != nil {
			if err != io.EOF {
				// A read failure after Close is just the shutdown
				// unblocking the reader, not a capture error.
				select {
				case <-s.done:
				default:
					s.errMu.Lock()
					s.readErr = err
					s.errMu.Unlock()
				}
			}
			return
		}
		s.frames.Add(1)
		ts := f.Ts
		if s.rebase {
			if !baseSet {
				base, baseSet = ts, true
			}
			ts -= base
			if ts < 0 {
				ts = 0 // non-monotonic capture clock; clamp, never go negative
			}
		}
		rec, ok := s.parser.Parse(ts, f.Data)
		if !ok {
			s.skipped.Add(1)
			continue
		}
		s.parsed.Add(1)
		// Span covers classified records only, exactly like the
		// offline pcap stream: skipped frames never extend it.
		if int64(ts) > s.maxTs.Load() || !s.seen.Load() {
			s.maxTs.Store(int64(ts))
			s.seen.Store(true)
		}
		if s.drop {
			select {
			case s.ch <- rec:
			default:
				s.ringDropped.Add(1)
			}
			continue
		}
		select {
		case s.ch <- rec:
		case <-s.done:
			return
		}
	}
}

// eof is what a drained ring means: a clean end of stream, unless the
// reader failed — then the failure is the stream's verdict.
func (s *Source) eof() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.readErr != nil {
		return s.readErr
	}
	return io.EOF
}

// Next blocks for the next record; io.EOF (or the reader's failure)
// once the producer has stopped and the ring has drained.
func (s *Source) Next() (trace.Record, error) {
	r, ok := <-s.ch
	if !ok {
		return trace.Record{}, s.eof()
	}
	return r, nil
}

// NextBatch blocks for the first record, then opportunistically drains
// whatever else is already ringed without blocking again — the same
// contract as ingest.ChanSource, so a busy feed fills whole chunks and
// an idle one degrades to one record per call with no added latency.
func (s *Source) NextBatch(buf []trace.Record) (int, error) {
	if len(buf) == 0 {
		return 0, nil
	}
	r, ok := <-s.ch
	if !ok {
		return 0, s.eof()
	}
	buf[0] = r
	n := 1
	for n < len(buf) {
		select {
		case r, ok := <-s.ch:
			if !ok {
				return n, s.eof()
			}
			buf[n] = r
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Span reports lastTs+1 over the classified records so far (0 before
// the first), matching the offline pcap stream's contract once the
// source is exhausted.
func (s *Source) Span() time.Duration {
	if !s.seen.Load() {
		return 0
	}
	return time.Duration(s.maxTs.Load()) + 1
}

// Name labels the source in reports.
func (s *Source) Name() string { return s.name }

// Dropped reports records shed under backpressure — the
// ingest.DropCounter contract the daemon's recordsDropped accounting
// reads. Always 0 outside drop mode.
func (s *Source) Dropped() uint64 { return s.ringDropped.Load() }

// Stats returns a snapshot of the capture accounting.
func (s *Source) Stats() Stats {
	kernel := s.kernelFinal.Load()
	if !s.readerDone.Load() {
		kernel = s.fr.Drops()
	}
	return Stats{
		Frames:        s.frames.Load(),
		Parsed:        s.parsed.Load(),
		Skipped:       s.skipped.Load(),
		RingDropped:   s.ringDropped.Load(),
		KernelDropped: kernel,
	}
}

// Close stops the producer and closes the reader. It is idempotent and
// never deadlocks: a producer blocked on a full ring exits via the
// done channel, one blocked in ReadFrame is unblocked by the reader's
// Close. Records already ringed stay readable until io.EOF.
func (s *Source) Close() error {
	s.once.Do(func() {
		close(s.done)
		s.closeErr = s.fr.Close()
		s.wg.Wait()
	})
	return s.closeErr
}
