//go:build !(linux && live)

package capture

import "errors"

// NewAFPacketReader is the portable stub: live interface capture needs
// Linux AF_PACKET sockets and is gated behind the "live" build tag so
// the rest of the tree stays portable. The pcap byte-stream path
// (NewPcapReader over a file or FIFO) works everywhere.
func NewAFPacketReader(iface string, snapLen int) (FrameReader, error) {
	return nil, errors.New("capture: AF_PACKET capture requires linux and the 'live' build tag (go build -tags live)")
}
