package capture

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcapng"
	"repro/internal/trace"
)

var testPrefix = netip.MustParsePrefix("130.216.0.0/16")

func captureTestTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := trace.Auckland()
	p.Name = "capture-test"
	p.Span = 2 * time.Minute
	p.OutagesPerHour = 0
	tr, err := trace.Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("generated trace is empty")
	}
	return tr
}

func writePcapBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainSource pulls src dry one record at a time.
func drainSource(t *testing.T, src *Source) []trace.Record {
	t.Helper()
	var out []trace.Record
	for {
		rec, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec)
	}
}

// newPcapSource builds a blocking Source over an in-memory pcap.
func newPcapSource(t *testing.T, data []byte, cfg Config) *Source {
	t.Helper()
	fr, err := NewPcapReader(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StubPrefix == (netip.Prefix{}) {
		cfg.StubPrefix = testPrefix
	}
	src, err := NewSource(fr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestPcapSourceMatchesPcapStream is the package-level half of the
// equivalence suite: the capture path over a pcap byte-stream must
// yield exactly the record sequence and span the offline
// trace.PcapStream decoder yields for the same bytes.
func TestPcapSourceMatchesPcapStream(t *testing.T) {
	tr := captureTestTrace(t)
	data := writePcapBytes(t, tr)

	s, err := trace.NewPcapStream(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Record
	for {
		rec, err := s.NextDir(testPrefix)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}

	src := newPcapSource(t, data, Config{})
	defer src.Close()
	got := drainSource(t, src)

	if len(got) != len(want) {
		t.Fatalf("capture yielded %d records, pcap stream %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: capture %+v != stream %+v", i, got[i], want[i])
		}
	}
	if src.Span() != s.Span() {
		t.Errorf("capture span = %v, stream span = %v", src.Span(), s.Span())
	}
	st := src.Stats()
	if st.Parsed != uint64(len(got)) {
		t.Errorf("Parsed = %d, want %d", st.Parsed, len(got))
	}
	if st.Frames != st.Parsed+st.Skipped {
		t.Errorf("Frames = %d, Parsed+Skipped = %d", st.Frames, st.Parsed+st.Skipped)
	}
	if st.RingDropped != 0 || src.Dropped() != 0 {
		t.Errorf("blocking source dropped records: %+v", st)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("Next past EOF = %v, want io.EOF", err)
	}
}

// TestEthernetVLANAgree pins the frame parser against the offline
// decoder on Ethernet and VLAN-tagged framings of the same packets.
func TestEthernetVLANAgree(t *testing.T) {
	tr := captureTestTrace(t)
	raw := writePcapBytes(t, tr)
	rawSrc := newPcapSource(t, raw, Config{})
	defer rawSrc.Close()
	want := drainSource(t, rawSrc)

	for _, tc := range []struct {
		name string
		tags []uint16
	}{
		{"plain ethernet", nil},
		{"802.1q", []uint16{0x8100}},
		{"qinq", []uint16{0x88a8, 0x8100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := newPcapSource(t, writeEthernetPcap(t, tr, tc.tags), Config{})
			defer src.Close()
			got := drainSource(t, src)
			if len(got) != len(want) {
				t.Fatalf("ethernet capture yielded %d records, raw %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d: ethernet %+v != raw %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// writeEthernetPcap writes tr as a LINKTYPE_ETHERNET capture, wrapping
// each IPv4 packet in a MAC header plus the given VLAN tag TPIDs (the
// same shape internal/trace's stream tests use).
func writeEthernetPcap(t *testing.T, tr *trace.Trace, tags []uint16) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := pcapng.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var segBuf []byte
	for _, r := range tr.Records {
		flags, ok := recordFlags(r.Kind)
		if !ok {
			continue
		}
		seg := packet.Build(r.Src, r.Dst, r.SrcPort, r.DstPort, 0, 0, flags)
		segBuf = seg.Marshal(segBuf[:0])
		frame := make([]byte, 0, 14+4*len(tags)+len(segBuf))
		frame = append(frame, make([]byte, 12)...)
		for _, tag := range tags {
			frame = append(frame, byte(tag>>8), byte(tag), 0x00, 0x05)
		}
		frame = append(frame, 0x08, 0x00)
		frame = append(frame, segBuf...)
		if err := pw.Write(pcapng.Packet{Ts: r.Ts, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	data[20] = 1 // patch file header link type raw(101) → ethernet(1)
	return data
}

func recordFlags(k packet.Kind) (uint8, bool) {
	switch k {
	case packet.KindSYN:
		return packet.FlagSYN, true
	case packet.KindSYNACK:
		return packet.FlagSYN | packet.FlagACK, true
	case packet.KindFIN:
		return packet.FlagFIN | packet.FlagACK, true
	case packet.KindRST:
		return packet.FlagRST, true
	case packet.KindOther:
		return packet.FlagACK, true
	default:
		return 0, false
	}
}

// TestNextBatchMatchesNext pins the chunked face against the
// per-record one.
func TestNextBatchMatchesNext(t *testing.T) {
	tr := captureTestTrace(t)
	data := writePcapBytes(t, tr)

	one := newPcapSource(t, data, Config{})
	defer one.Close()
	want := drainSource(t, one)

	batched := newPcapSource(t, data, Config{})
	defer batched.Close()
	var got []trace.Record
	buf := make([]trace.Record, 64)
	for {
		n, err := batched.NextBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("batched yielded %d records, single %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: batched %+v != single %+v", i, got[i], want[i])
		}
	}
}

// stubReader is an in-memory FrameReader over raw IPv4 frames.
type stubReader struct {
	frames [][]byte
	pos    int
	block  chan struct{} // when non-nil, ReadFrame blocks here after the frames run out
	closed chan struct{}
	err    error // returned after the frames run out (nil → io.EOF)
}

func newStubReader(frames [][]byte) *stubReader {
	return &stubReader{frames: frames, closed: make(chan struct{})}
}

func (r *stubReader) ReadFrame() (Frame, error) {
	if r.pos < len(r.frames) {
		f := Frame{Ts: time.Duration(r.pos) * time.Millisecond, Data: r.frames[r.pos]}
		r.pos++
		return f, nil
	}
	if r.block != nil {
		select {
		case <-r.block:
		case <-r.closed:
		}
		return Frame{}, io.EOF
	}
	if r.err != nil {
		return Frame{}, r.err
	}
	return Frame{}, io.EOF
}

func (r *stubReader) LinkType() uint32 { return pcapng.LinkTypeRaw }
func (r *stubReader) Drops() uint64    { return 7 } // fixed kernel-drop stat for Stats plumbing
func (r *stubReader) Close() error {
	select {
	case <-r.closed:
	default:
		close(r.closed)
	}
	return nil
}

func stubFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("130.216.0.9")
	frames := make([][]byte, n)
	for i := range frames {
		seg := packet.Build(src, dst, uint16(1000+i), 80, 0, 0, packet.FlagSYN)
		frames[i] = seg.Marshal(nil)
	}
	return frames
}

// TestDropModeAccounting pins the DropCounter contract: with a full
// ring and no consumer, a drop-mode source sheds records and counts
// every one — drained + Dropped always equals Parsed.
func TestDropModeAccounting(t *testing.T) {
	const n = 100
	src, err := NewSource(newStubReader(stubFrames(t, n)), Config{
		StubPrefix: testPrefix,
		Ring:       8,
		Drop:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	// Wait for the producer to finish without consuming anything: in
	// drop mode it never blocks.
	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Frames < n {
		if time.Now().After(deadline) {
			t.Fatalf("producer stalled: %+v", src.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	got := drainSource(t, src)
	st := src.Stats()
	if st.Parsed != n {
		t.Fatalf("Parsed = %d, want %d", st.Parsed, n)
	}
	if uint64(len(got))+src.Dropped() != st.Parsed {
		t.Errorf("drained %d + dropped %d != parsed %d", len(got), src.Dropped(), st.Parsed)
	}
	if src.Dropped() == 0 {
		t.Error("expected drops with ring 8 and 100 records")
	}
	if st.RingDropped != src.Dropped() {
		t.Errorf("Stats.RingDropped = %d, Dropped() = %d", st.RingDropped, src.Dropped())
	}
	if st.KernelDropped != 7 {
		t.Errorf("KernelDropped = %d, want the reader's 7", st.KernelDropped)
	}
}

// TestCloseUnblocksFullRing: a blocking producer stuck on a full ring
// must exit when Close is called, and records already ringed stay
// readable through EOF.
func TestCloseUnblocksFullRing(t *testing.T) {
	src, err := NewSource(newStubReader(stubFrames(t, 100)), Config{
		StubPrefix: testPrefix,
		Ring:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the producer time to fill the ring and block.
	deadline := time.Now().Add(5 * time.Second)
	for src.Stats().Parsed < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("producer never filled the ring: %+v", src.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { src.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against a blocked producer")
	}
	if got := drainSource(t, src); len(got) == 0 {
		t.Error("ringed records lost on Close")
	}
}

// TestCloseUnblocksBlockedRead: a producer blocked inside ReadFrame
// must be unblocked by the reader's Close.
func TestCloseUnblocksBlockedRead(t *testing.T) {
	r := newStubReader(nil)
	r.block = make(chan struct{})
	src, err := NewSource(r, Config{StubPrefix: testPrefix})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { src.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked against a blocked ReadFrame")
	}
}

// TestReaderErrorSurfaced: a mid-stream reader failure reaches the
// consumer after the ring drains, instead of masquerading as EOF.
func TestReaderErrorSurfaced(t *testing.T) {
	boom := errors.New("capture handle fell over")
	r := newStubReader(stubFrames(t, 3))
	r.err = boom
	src, err := NewSource(r, Config{StubPrefix: testPrefix})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	var got int
	for {
		_, err := src.Next()
		if err == nil {
			got++
			continue
		}
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
		break
	}
	if got != 3 {
		t.Errorf("drained %d records before the error, want 3", got)
	}
}

// TestRebase: rebased timestamps start at zero and preserve spacing.
func TestRebase(t *testing.T) {
	frames := stubFrames(t, 3)
	src, err := NewSource(newStubReader(frames), Config{
		StubPrefix: testPrefix,
		Rebase:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := drainSource(t, src)
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3", len(got))
	}
	for i, rec := range got {
		if want := time.Duration(i) * time.Millisecond; rec.Ts != want {
			t.Errorf("record %d Ts = %v, want %v", i, rec.Ts, want)
		}
	}
	if src.Span() != 2*time.Millisecond+1 {
		t.Errorf("span = %v, want %v", src.Span(), 2*time.Millisecond+1)
	}
}

func TestNewSourceValidation(t *testing.T) {
	if _, err := NewSource(nil, Config{StubPrefix: testPrefix}); err == nil {
		t.Error("want error for nil reader")
	}
	if _, err := NewSource(newStubReader(nil), Config{}); err == nil {
		t.Error("want error for missing stub prefix")
	}
	if _, err := NewFrameParser(147, testPrefix); err == nil {
		t.Error("want error for unsupported link type")
	}
}

func TestPcapReaderRejectsUnknownLink(t *testing.T) {
	var buf bytes.Buffer
	if _, err := pcapng.NewWriter(&buf, 0); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] = 147
	if _, err := NewPcapReader(bytes.NewReader(data), nil); err == nil {
		t.Fatal("want error for unsupported link type")
	}
}
