package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRunExecutesInTimestampOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Second, func(time.Duration) { order = append(order, 3) })
	s.After(1*time.Second, func(time.Duration) { order = append(order, 1) })
	s.After(2*time.Second, func(time.Duration) { order = append(order, 2) })
	n := s.Run()
	if n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v", order)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("final clock = %v, want 3s", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func(time.Duration) { order = append(order, i) })
	}
	s.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("co-timed events out of insertion order: %v", order)
		}
	}
}

func TestAtRejectsPast(t *testing.T) {
	s := New()
	s.After(5*time.Second, func(time.Duration) {})
	s.Run() // clock now at 5s
	if _, err := s.At(time.Second, func(time.Duration) {}); err != ErrPastEvent {
		t.Errorf("error = %v, want ErrPastEvent", err)
	}
	if _, err := s.At(5*time.Second, func(time.Duration) {}); err != nil {
		t.Errorf("scheduling at current time failed: %v", err)
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	s := New()
	fired := false
	s.After(-time.Second, func(now time.Duration) {
		fired = true
		if now != 0 {
			t.Errorf("fired at %v, want 0", now)
		}
	})
	s.Run()
	if !fired {
		t.Error("negative-delay event did not fire")
	}
}

func TestHandlerSchedulesMoreEvents(t *testing.T) {
	s := New()
	count := 0
	var chain Handler
	chain = func(now time.Duration) {
		count++
		if count < 5 {
			s.After(time.Second, chain)
		}
	}
	s.After(time.Second, chain)
	s.Run()
	if count != 5 {
		t.Errorf("chain executed %d times, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("clock = %v, want 5s", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func(time.Duration) { fired = true })
	if !tm.Cancel() {
		t.Error("first Cancel should return true")
	}
	if tm.Cancel() {
		t.Error("second Cancel should return false")
	}
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Processed() != 0 {
		t.Errorf("Processed = %d, want 0", s.Processed())
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	tm := s.After(time.Second, func(time.Duration) {})
	s.Run()
	if tm.Cancel() {
		t.Error("Cancel after firing should return false")
	}
}

func TestCancelZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Error("zero Timer Cancel should return false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		s.After(d, func(now time.Duration) { fired = append(fired, now) })
	}
	n := s.RunUntil(3 * time.Second)
	if n != 3 {
		t.Errorf("executed %d events, want 3", n)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Advancing to a quiet deadline moves the clock with no events.
	if n := s.RunUntil(3500 * time.Millisecond); n != 0 {
		t.Errorf("quiet advance executed %d events", n)
	}
	if s.Now() != 3500*time.Millisecond {
		t.Errorf("clock = %v, want 3.5s", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Errorf("total fired = %d, want 5", len(fired))
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	s := New()
	tm := s.After(time.Second, func(time.Duration) { t.Error("cancelled fired") })
	fired := false
	s.After(2*time.Second, func(time.Duration) { fired = true })
	tm.Cancel()
	s.RunUntil(5 * time.Second)
	if !fired {
		t.Error("live event did not fire")
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestPeriodic(t *testing.T) {
	s := New()
	var times []time.Duration
	p, err := s.NewPeriodic(20*time.Second, func(now time.Duration) {
		times = append(times, now)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(110 * time.Second)
	if len(times) != 5 {
		t.Fatalf("fired %d times, want 5: %v", len(times), times)
	}
	for i, ts := range times {
		want := time.Duration(i+1) * 20 * time.Second
		if ts != want {
			t.Errorf("tick %d at %v, want %v", i, ts, want)
		}
	}
	p.Stop()
	before := len(times)
	s.RunUntil(500 * time.Second)
	if len(times) != before {
		t.Error("periodic fired after Stop")
	}
	p.Stop() // idempotent
}

func TestPeriodicStopDuringCallback(t *testing.T) {
	s := New()
	count := 0
	var p *Periodic
	var err error
	p, err = s.NewPeriodic(time.Second, func(time.Duration) {
		count++
		if count == 3 {
			p.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100 * time.Second)
	if count != 3 {
		t.Errorf("fired %d times, want 3", count)
	}
}

func TestPeriodicBadInterval(t *testing.T) {
	s := New()
	if _, err := s.NewPeriodic(0, func(time.Duration) {}); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := s.NewPeriodic(-time.Second, func(time.Duration) {}); err == nil {
		t.Error("negative interval should fail")
	}
}

// Property: for any batch of non-negative delays, Run fires them all
// in non-decreasing time order and leaves the clock at the max delay.
func TestRunOrderProperty(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		s := New()
		var fired []time.Duration
		var maxDelay time.Duration
		for _, raw := range delaysRaw {
			d := time.Duration(raw) * time.Millisecond
			if d > maxDelay {
				maxDelay = d
			}
			s.After(d, func(now time.Duration) { fired = append(fired, now) })
		}
		s.Run()
		if len(fired) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == 0 || s.Now() == maxDelay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
