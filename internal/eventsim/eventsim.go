// Package eventsim is a small discrete-event simulation kernel: a
// virtual clock and a priority queue of timestamped events. The
// network simulator (internal/netsim) and the TCP endpoint substrate
// (internal/tcp) are built on it.
//
// The kernel is deliberately single-threaded: determinism matters more
// than parallelism for reproducing the paper's trace-driven
// experiments, so all events execute sequentially in timestamp order
// with FIFO tie-breaking (insertion order breaks timestamp ties, which
// keeps co-timed events deterministic).
package eventsim

import (
	"container/heap"
	"errors"
	"time"
)

// Handler is the callback invoked when an event fires. It runs on the
// simulation goroutine; it may schedule further events.
type Handler func(now time.Duration)

// ErrPastEvent reports an attempt to schedule an event before the
// current simulation time.
var ErrPastEvent = errors.New("eventsim: cannot schedule event in the past")

// event is one pending callback.
type event struct {
	at     time.Duration
	seq    uint64 // FIFO tie-break
	fn     Handler
	cancel bool
	index  int // heap index, maintained by heap.Interface
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event, usable to cancel it.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired
// or already-cancelled timer is a no-op returning false; otherwise
// Cancel marks the event dead and returns true.
func (t Timer) Cancel() bool {
	if t.ev == nil || t.ev.cancel || t.ev.fn == nil {
		return false
	}
	t.ev.cancel = true
	return true
}

// Sim is the simulation kernel. The zero value is ready to use; the
// clock starts at 0.
type Sim struct {
	now       time.Duration
	queue     eventQueue
	seq       uint64
	processed uint64
}

// New returns an empty simulation.
func New() *Sim { return &Sim{} }

// Now returns the current simulation time.
func (s *Sim) Now() time.Duration { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not been reaped yet.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at the absolute simulation time at. It
// returns a Timer for cancellation, and ErrPastEvent if at precedes
// the current time.
func (s *Sim) At(at time.Duration, fn Handler) (Timer, error) {
	if at < s.now {
		return Timer{}, ErrPastEvent
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return Timer{ev: ev}, nil
}

// After schedules fn to run delay after the current time. Negative
// delays are clamped to zero (fire "now", after currently queued
// co-timed events).
func (s *Sim) After(delay time.Duration, fn Handler) Timer {
	if delay < 0 {
		delay = 0
	}
	t, _ := s.At(s.now+delay, fn) // cannot fail: s.now+delay >= s.now
	return t
}

// Step executes the single earliest pending event. It returns false
// when the queue is empty. Cancelled events are skipped (and counted
// as not-run).
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancel {
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.processed++
		fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue drains. It returns the number of
// events executed.
func (s *Sim) Run() uint64 {
	start := s.processed
	for s.Step() {
	}
	return s.processed - start
}

// RunUntil executes events with timestamps <= deadline, then advances
// the clock exactly to deadline (so repeated RunUntil calls see a
// monotone clock even across empty stretches). It returns the number
// of events executed.
func (s *Sim) RunUntil(deadline time.Duration) uint64 {
	start := s.processed
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if deadline > s.now {
		s.now = deadline
	}
	return s.processed - start
}

// Periodic is a repeating timer, e.g. the SYN-dog observation-period
// tick, that can be stopped as a whole.
type Periodic struct {
	sim      *Sim
	interval time.Duration
	fn       Handler
	stopped  bool
	next     Timer
}

// NewPeriodic starts a repeating timer firing every interval starting
// at now+interval.
func (s *Sim) NewPeriodic(interval time.Duration, fn Handler) (*Periodic, error) {
	if interval <= 0 {
		return nil, errors.New("eventsim: non-positive interval")
	}
	p := &Periodic{sim: s, interval: interval, fn: fn}
	p.schedule()
	return p, nil
}

func (p *Periodic) schedule() {
	p.next = p.sim.After(p.interval, func(now time.Duration) {
		if p.stopped {
			return
		}
		p.fn(now)
		if !p.stopped {
			p.schedule()
		}
	})
}

// Stop halts the periodic timer. Idempotent.
func (p *Periodic) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.next.Cancel()
}
