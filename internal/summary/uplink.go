package summary

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Uplink defaults: small batches keep the coordinator's ingest latency
// low, a few hundred queued summaries absorb minutes of backpressure
// at one summary per period, and the flush interval bounds how stale a
// quiet monitor's frontier can look.
const (
	DefaultBatchSize     = 16
	DefaultBuffer        = 256
	DefaultFlushInterval = 500 * time.Millisecond
)

// UplinkConfig configures an uplink client.
type UplinkConfig struct {
	// URL is the coordinator base URL; batches POST to URL + "/ingest".
	URL string
	// Summary is the export shape: censoring threshold and digest
	// budget, applied to every summary on the way out.
	Summary Config
	// BatchSize caps summaries per POST (0 = DefaultBatchSize).
	BatchSize int
	// Buffer is the queue capacity (0 = DefaultBuffer). When the queue
	// is full, Send drops the summary and counts it — the ChanSource
	// drop-mode contract: a slow coordinator sheds evidence, it never
	// stalls detection.
	Buffer int
	// FlushInterval bounds how long a partial batch waits before it is
	// sent anyway (0 = DefaultFlushInterval).
	FlushInterval time.Duration
	// Client overrides the HTTP client (tests; default 5s timeout).
	Client *http.Client
}

// Uplink streams censored summaries to a fusion coordinator: bounded
// queue in front, one sender goroutine behind, batched JSON POSTs on
// the wire. Send never blocks; overflow and send failures are counted,
// not retried — the coordinator's staleness window and the summaries'
// period indices make loss recoverable (a gap fuses as a censored
// observation).
type Uplink struct {
	cfg UplinkConfig

	ch      chan PeriodSummary
	done    chan struct{} // closed by Close: stop accepting, drain, exit
	senderD chan struct{} // closed when the sender goroutine exits

	closeOnce sync.Once

	sent     atomic.Uint64 // summaries delivered in a 2xx batch
	dropped  atomic.Uint64 // summaries shed at the full queue or after Close
	failures atomic.Uint64 // summaries lost to failed POSTs
}

// NewUplink starts an uplink client; Close flushes and stops it.
func NewUplink(cfg UplinkConfig) (*Uplink, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("summary: uplink needs a coordinator URL")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = DefaultBuffer
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	u := &Uplink{
		cfg:     cfg,
		ch:      make(chan PeriodSummary, cfg.Buffer),
		done:    make(chan struct{}),
		senderD: make(chan struct{}),
	}
	go u.sender()
	return u, nil
}

// Send enqueues one summary, censored per the uplink's config. It
// never blocks: a full queue (or a closed uplink) drops the summary
// and increments Dropped.
func (u *Uplink) Send(ps PeriodSummary) {
	select {
	case <-u.done:
		u.dropped.Add(1)
		return
	default:
	}
	select {
	case u.ch <- ps.Censor(u.cfg.Summary):
	default:
		u.dropped.Add(1)
	}
}

// Sent counts summaries acknowledged by the coordinator.
func (u *Uplink) Sent() uint64 { return u.sent.Load() }

// Dropped counts summaries shed under backpressure — the DropCounter
// face of the uplink, mirroring ingest.ChanSource drop mode.
func (u *Uplink) Dropped() uint64 { return u.dropped.Load() }

// Failures counts summaries lost to failed or rejected POSTs.
func (u *Uplink) Failures() uint64 { return u.failures.Load() }

// Close stops the uplink: queued summaries are flushed (one last
// drain), later Sends drop, and the sender goroutine exits before
// Close returns. Safe to call more than once.
func (u *Uplink) Close() error {
	u.closeOnce.Do(func() { close(u.done) })
	<-u.senderD
	return nil
}

// sender is the single worker: it gathers batches from the queue and
// posts them until Close, then drains whatever is already queued.
func (u *Uplink) sender() {
	defer close(u.senderD)
	timer := time.NewTimer(u.cfg.FlushInterval)
	defer timer.Stop()
	batch := make([]PeriodSummary, 0, u.cfg.BatchSize)

	flush := func() {
		if len(batch) > 0 {
			u.post(batch)
			batch = batch[:0]
		}
	}
	for {
		select {
		case ps := <-u.ch:
			batch = append(batch, ps)
			// Opportunistically fill the batch from whatever is queued.
			for len(batch) < u.cfg.BatchSize {
				select {
				case more := <-u.ch:
					batch = append(batch, more)
				default:
					goto filled
				}
			}
		filled:
			if len(batch) >= u.cfg.BatchSize {
				flush()
			}
		case <-timer.C:
			flush()
			timer.Reset(u.cfg.FlushInterval)
		case <-u.done:
			// Drain what was queued before Close, then exit.
			for {
				select {
				case ps := <-u.ch:
					batch = append(batch, ps)
					if len(batch) >= u.cfg.BatchSize {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// post delivers one batch; failures are counted per summary and the
// batch is dropped (the coordinator treats the gap as censored).
func (u *Uplink) post(batch []PeriodSummary) {
	body, err := json.Marshal(batch)
	if err != nil {
		u.failures.Add(uint64(len(batch)))
		return
	}
	resp, err := u.cfg.Client.Post(u.cfg.URL+"/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		u.failures.Add(uint64(len(batch)))
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		u.failures.Add(uint64(len(batch)))
		return
	}
	u.sent.Add(uint64(len(batch)))
}
