package summary

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

func TestReportRoundTrip(t *testing.T) {
	r := core.Report{Index: 7, End: 160 * time.Second, OutSYN: 120, InSYNACK: 95,
		K: 88.5, X: 0.28, Y: 1.4, Alarmed: true}
	ps := FromReport("east", r)
	if ps.Monitor != "east" {
		t.Fatalf("monitor = %q", ps.Monitor)
	}
	if got := ps.Report(); got != r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
}

func TestCensor(t *testing.T) {
	base := PeriodSummary{Monitor: "m", Index: 3, OutSYN: 10, InSYNACK: 9,
		K: 50, X: 0.12, Y: 0.3,
		Sources: []SourceDigest{{Key: netip.MustParsePrefix("10.0.0.0/24"), SYNs: 4}}}

	// Below λ: statistics zeroed, digests dropped, counters kept.
	c := base.Censor(Config{Censor: 0.2})
	if !c.Censored || c.X != 0 || c.Y != 0 || c.Sources != nil {
		t.Fatalf("censored form wrong: %+v", c)
	}
	if c.OutSYN != 10 || c.InSYNACK != 9 || c.K != 50 {
		t.Fatalf("censoring must keep volume counters: %+v", c)
	}

	// At or above λ: untouched but digest-trimmed.
	u := base.Censor(Config{Censor: 0.1, TopK: 1})
	if u.Censored || u.X != base.X || len(u.Sources) != 1 {
		t.Fatalf("uncensored form wrong: %+v", u)
	}

	// λ <= 0 disables censoring even for negative X.
	neg := base
	neg.X = -0.5
	if got := neg.Censor(Config{}); got.Censored {
		t.Fatalf("zero threshold must not censor: %+v", got)
	}

	// The receiver is never modified.
	if base.Censored || base.X != 0.12 || len(base.Sources) != 1 {
		t.Fatalf("Censor mutated its receiver: %+v", base)
	}
}

func TestEffectiveTopK(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultTopK}, {-1, 0}, {3, 3}} {
		if got := (Config{TopK: tc.in}).EffectiveTopK(); got != tc.want {
			t.Errorf("EffectiveTopK(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// flooded builds a tracker that has folded one period dominated by an
// unanswered /24.
func testTracker(t *testing.T) *sourcetrack.Tracker {
	t.Helper()
	tk, err := sourcetrack.New(sourcetrack.Config{
		KeyBits: 24, MaxSources: 16, Shards: 1, Agent: core.Config{T0: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := netip.MustParseAddr("10.9.9.1")
	cold := netip.MustParseAddr("10.1.1.1")
	for i := 0; i < 50; i++ {
		tk.Observe(trace.Record{Ts: time.Second, Kind: packet.KindSYN, Dir: trace.DirOut, Src: hot})
	}
	tk.Observe(trace.Record{Ts: time.Second, Kind: packet.KindSYN, Dir: trace.DirOut, Src: cold})
	tk.Observe(trace.Record{Ts: time.Second, Kind: packet.KindSYNACK, Dir: trace.DirIn, Dst: cold})
	tk.ClosePeriod(0, 20*time.Second)
	return tk
}

func TestSummarizeDigests(t *testing.T) {
	tk := testTracker(t)
	s := &Summarizer{Monitor: "east", Cfg: Config{TopK: 1}, Tracker: tk}
	ps := s.Summarize(core.Report{Index: 0, End: 20 * time.Second, OutSYN: 51, InSYNACK: 1})
	if len(ps.Sources) != 1 {
		t.Fatalf("want 1 digest, got %+v", ps.Sources)
	}
	d := ps.Sources[0]
	if d.Key != netip.MustParsePrefix("10.9.9.0/24") {
		t.Fatalf("top digest should be the unanswered block, got %v", d.Key)
	}
	if d.SYNs != 50 {
		t.Fatalf("digest SYN count = %d, want 50", d.SYNs)
	}

	// Digest budget off: no tracker view is taken at all.
	s2 := &Summarizer{Monitor: "east", Cfg: Config{TopK: -1}, Tracker: tk}
	if ps := s2.Summarize(core.Report{}); ps.Sources != nil {
		t.Fatalf("TopK<0 must not attach digests: %+v", ps.Sources)
	}
}

func TestBackfill(t *testing.T) {
	s := &Summarizer{Monitor: "west"}
	reports := []core.Report{{Index: 0, OutSYN: 5}, {Index: 1, OutSYN: 6, Y: 0.2}}
	got := s.Backfill(reports)
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i, ps := range got {
		if ps.Monitor != "west" || ps.Report() != reports[i] {
			t.Fatalf("backfill[%d] = %+v", i, ps)
		}
	}
}

// countingTap records the order of inner-tap calls relative to Emit.
type countingTap struct {
	records int
	closed  []int
	log     *[]string
}

func (c *countingTap) Record(trace.Record) { c.records++ }
func (c *countingTap) ClosePeriod(i int, _ time.Duration) {
	c.closed = append(c.closed, i)
	*c.log = append(*c.log, "inner-close")
}

func TestTapOrdering(t *testing.T) {
	var log []string
	inner := &countingTap{log: &log}
	var got []PeriodSummary
	s := &Summarizer{Monitor: "m"}
	tap := NewTap(s, inner, func(ps PeriodSummary) {
		log = append(log, "emit")
		got = append(got, ps)
	})

	tap.Record(trace.Record{Kind: packet.KindSYN})
	tap.RecordBatch([]trace.Record{{Kind: packet.KindSYN}, {Kind: packet.KindSYNACK}})
	rep := core.Report{Index: 0, End: 20 * time.Second, OutSYN: 2, InSYNACK: 1, X: 0.4}
	tap.Sink(rep)
	tap.ClosePeriod(0, 20*time.Second)

	if inner.records != 3 {
		t.Fatalf("inner saw %d records, want 3", inner.records)
	}
	if !reflect.DeepEqual(log, []string{"inner-close", "emit"}) {
		t.Fatalf("close ordering = %v; summary must be built after the inner fold", log)
	}
	if len(got) != 1 || got[0].Report() != rep {
		t.Fatalf("emitted = %+v", got)
	}
}

func TestUplinkBatchesAndCensors(t *testing.T) {
	var mu sync.Mutex
	var batches [][]PeriodSummary
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/ingest" {
			t.Errorf("path = %q", r.URL.Path)
		}
		body, _ := io.ReadAll(r.Body)
		var b []PeriodSummary
		if err := json.Unmarshal(body, &b); err != nil {
			t.Errorf("bad batch: %v", err)
		}
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
	}))
	defer srv.Close()

	u, err := NewUplink(UplinkConfig{URL: srv.URL, Summary: Config{Censor: 0.2}, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x := 0.1
		if i%2 == 0 {
			x = 0.5
		}
		u.Send(PeriodSummary{Monitor: "m", Index: i, X: x, Y: x})
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if got := u.Sent(); got != 10 {
		t.Fatalf("sent = %d, want 10 (failures %d, dropped %d)", got, u.Failures(), u.Dropped())
	}

	mu.Lock()
	defer mu.Unlock()
	n := 0
	for _, b := range batches {
		if len(b) > 4 {
			t.Fatalf("batch of %d exceeds BatchSize", len(b))
		}
		for _, ps := range b {
			if ps.Index != n {
				t.Fatalf("out of order: got period %d at position %d", ps.Index, n)
			}
			wantCensored := n%2 != 0
			if ps.Censored != wantCensored || (ps.Censored && (ps.X != 0 || ps.Y != 0)) {
				t.Fatalf("censoring not applied on the wire: %+v", ps)
			}
			n++
		}
	}
	if n != 10 {
		t.Fatalf("delivered %d summaries, want 10", n)
	}
}

func TestUplinkDropsWhenFull(t *testing.T) {
	// A server that blocks until released: the queue must fill and Send
	// must shed, never block.
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-release
	}))
	defer srv.Close()

	u, err := NewUplink(UplinkConfig{URL: srv.URL, BatchSize: 2, Buffer: 4,
		FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		u.Send(PeriodSummary{Index: i})
	}
	if u.Dropped() == 0 {
		t.Fatal("full queue must drop and count")
	}
	close(release)
	u.Close()
	if total := u.Sent() + u.Dropped() + u.Failures(); total != 64 {
		t.Fatalf("accounting leak: sent %d + dropped %d + failed %d != 64",
			u.Sent(), u.Dropped(), u.Failures())
	}
}

func TestUplinkCountsFailures(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	u, err := NewUplink(UplinkConfig{URL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	u.Send(PeriodSummary{Index: 0})
	u.Close()
	if u.Failures() != 1 || u.Sent() != 0 {
		t.Fatalf("failures = %d sent = %d, want 1/0", u.Failures(), u.Sent())
	}

	// Sends after Close drop.
	u.Send(PeriodSummary{Index: 1})
	if u.Dropped() != 1 {
		t.Fatalf("post-Close send must drop, dropped = %d", u.Dropped())
	}
}
