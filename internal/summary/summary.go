// Package summary is the exported per-period summary layer: the one
// code path that turns a detector's period report plus the keyed
// tracker's state into a PeriodSummary — the unit every consumer of
// per-period state shares. The daemon's /reports, /status, /metrics
// and /summaries endpoints, the fleet simulator's stub reports, and
// the distributed-fusion uplink all read the same summaries instead of
// extracting state ad hoc from core.Agent, daemon plumbing and
// sourcetrack separately.
//
// The wire form is bandwidth-capped the way the censored-fusion
// literature (Lévy-Leduc & Roueff 2009; Lung-Yut-Fong, Lévy-Leduc &
// Cappé 2011) assumes: a summary whose normalized observation Xn falls
// below a configurable censoring threshold λ exports only its volume
// counters — Xn and yn are zeroed, the Censored bit is set, and the
// source digests are dropped — so a quiet monitor's uplink cost per
// period is a few dozen bytes. The fusion coordinator reconstructs
// rank information from the censoring class alone.
package summary

import (
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

// DefaultTopK is how many source digests an uncensored summary carries
// when the summarizer has a tracker and Config.TopK is zero.
const DefaultTopK = 8

// Config shapes the exported form of a summary: the censoring
// threshold and the digest budget. The zero value exports everything
// (no censoring) with the default digest budget.
type Config struct {
	// Censor is the censoring threshold λ: a summary with Xn < λ
	// exports zeroed Xn/yn, the Censored bit, and no source digests.
	// λ <= 0 disables censoring.
	Censor float64 `json:"censor,omitempty"`
	// TopK bounds the per-summary source digest list (0 = DefaultTopK,
	// negative = no digests).
	TopK int `json:"topK,omitempty"`
}

// EffectiveTopK resolves the digest budget defaults.
func (c Config) EffectiveTopK() int {
	switch {
	case c.TopK < 0:
		return 0
	case c.TopK == 0:
		return DefaultTopK
	}
	return c.TopK
}

// SourceDigest is one top-K row of a summary: the tracker's current
// evidence against one source prefix, reduced to what localization
// needs.
type SourceDigest struct {
	Key netip.Prefix `json:"key"`
	// SYNs is the Space-Saving SYN count estimate for the key.
	SYNs uint64 `json:"syns"`
	// X and Y are the key's own normalized observation and CUSUM
	// statistic after the period closed.
	X float64 `json:"x"`
	Y float64 `json:"yn"`
	// Alarmed reports the key's latched per-source alarm.
	Alarmed bool `json:"alarmed"`
}

// PeriodSummary is one monitor-period of exported state: the
// aggregate detector's report fields plus the tracker's top-K source
// digests, stamped with the monitor's name. It is the unit the fusion
// coordinator ingests and the daemon's HTTP plane serves.
type PeriodSummary struct {
	Monitor string `json:"monitor"`
	// Index and End identify the observation period (End in trace
	// nanoseconds, matching core.Report).
	Index int           `json:"period"`
	End   time.Duration `json:"endNanos"`
	// OutSYN and InSYNACK are the period's volume counters; they are
	// never censored — the coordinator needs them for liveness and
	// they cost nothing.
	OutSYN   uint64  `json:"outSYN"`
	InSYNACK uint64  `json:"inSYNACK"`
	K        float64 `json:"kBar"`
	// X and Y are the normalized observation Xn and CUSUM statistic
	// yn — zeroed on the wire when Censored.
	X float64 `json:"x"`
	Y float64 `json:"yn"`
	// Alarmed is the monitor's own local decision dN(yn).
	Alarmed bool `json:"alarmed"`
	// Censored marks a summary whose Xn fell below the monitor's
	// censoring threshold; X, Y and Sources were withheld.
	Censored bool `json:"censored,omitempty"`
	// Sources are the tracker's top-K digests at the period close,
	// most suspect first. Empty without a tracker or when censored.
	Sources []SourceDigest `json:"sources,omitempty"`
}

// FromReport builds the uncensored summary of one detector report.
func FromReport(monitor string, r core.Report) PeriodSummary {
	return PeriodSummary{
		Monitor:  monitor,
		Index:    r.Index,
		End:      r.End,
		OutSYN:   r.OutSYN,
		InSYNACK: r.InSYNACK,
		K:        r.K,
		X:        r.X,
		Y:        r.Y,
		Alarmed:  r.Alarmed,
	}
}

// Report reconstructs the core.Report the summary was built from.
// Summaries censor only on export (Censor), so a stored summary's
// reconstruction is exact — this is what keeps /reports byte-identical
// across the summary-layer refactor.
func (p PeriodSummary) Report() core.Report {
	return core.Report{
		Index:    p.Index,
		End:      p.End,
		OutSYN:   p.OutSYN,
		InSYNACK: p.InSYNACK,
		K:        p.K,
		X:        p.X,
		Y:        p.Y,
		Alarmed:  p.Alarmed,
	}
}

// Censor returns the wire form of the summary under cfg: below the
// threshold the statistics are zeroed and the digests dropped; at or
// above it the digest list is trimmed to the budget. The receiver is
// not modified.
func (p PeriodSummary) Censor(cfg Config) PeriodSummary {
	if cfg.Censor > 0 && p.X < cfg.Censor {
		p.X, p.Y = 0, 0
		p.Censored = true
		p.Sources = nil
		return p
	}
	if k := cfg.EffectiveTopK(); len(p.Sources) > k {
		p.Sources = p.Sources[:k:k]
	}
	return p
}

// Summarizer is the single extraction path from live detector and
// tracker state to summaries. It holds no period state of its own —
// callers hand it each closed period's report.
type Summarizer struct {
	// Monitor stamps every summary (the monitor's name in the fusion
	// coordinator's eyes).
	Monitor string
	// Cfg bounds the digest budget at build time. Censoring is applied
	// at export (Censor / Uplink), never here, so locally-stored
	// summaries keep full fidelity.
	Cfg Config
	// Tracker, when non-nil, supplies the top-K source digests.
	Tracker *sourcetrack.Tracker
}

// Summarize builds the summary for one closed period. With a tracker
// attached it must be called after the tracker's own ClosePeriod for
// that period (Tap guarantees the ordering).
func (s *Summarizer) Summarize(r core.Report) PeriodSummary {
	ps := FromReport(s.Monitor, r)
	k := s.Cfg.EffectiveTopK()
	if s.Tracker == nil || k == 0 {
		return ps
	}
	v := s.Tracker.View(k)
	if len(v.Sources) == 0 {
		return ps
	}
	ps.Sources = make([]SourceDigest, len(v.Sources))
	for i, src := range v.Sources {
		ps.Sources[i] = SourceDigest{
			Key:     src.Key,
			SYNs:    src.Count,
			X:       src.X,
			Y:       src.Y,
			Alarmed: src.Alarmed,
		}
	}
	return ps
}

// Backfill summarizes an already-accumulated report history — the
// resume path, where per-period tracker views no longer exist, so the
// summaries carry no digests.
func (s *Summarizer) Backfill(reports []core.Report) []PeriodSummary {
	out := make([]PeriodSummary, len(reports))
	for i, r := range reports {
		out[i] = FromReport(s.Monitor, r)
	}
	return out
}

// RecordTap is the subset of ingest.RecordTap the Tap chains to,
// declared structurally so this package does not depend on the
// pipeline package.
type RecordTap interface {
	Record(r trace.Record)
	ClosePeriod(index int, end time.Duration)
}

// BatchRecordTap mirrors ingest.BatchRecordTap.
type BatchRecordTap interface {
	RecordTap
	RecordBatch(recs []trace.Record)
}

// Tap glues a Summarizer into an ingest pipeline: install it as both
// the aggregator's Sink (via the Sink method) and its RecordTap, and
// Emit receives one summary per closed period — built after the inner
// tap (the tracker or its feeder) has folded the period, so the
// digests describe the closed period, not the one before it.
type Tap struct {
	S *Summarizer
	// Inner is the keyed demux the tap wraps (a *sourcetrack.Tracker
	// or *sourcetrack.Feeder); nil for untracked pipelines.
	Inner RecordTap
	// Emit receives each period's summary.
	Emit func(PeriodSummary)

	inner BatchRecordTap // Inner's chunked face, when it has one
	last  core.Report
}

// NewTap builds the pipeline glue around a summarizer.
func NewTap(s *Summarizer, inner RecordTap, emit func(PeriodSummary)) *Tap {
	t := &Tap{S: s, Inner: inner, Emit: emit}
	t.inner, _ = inner.(BatchRecordTap)
	return t
}

// Sink is the aggregator sink: it captures the detector's report for
// the period about to close. The aggregator calls it before
// ClosePeriod on the tap.
func (t *Tap) Sink(r core.Report) { t.last = r }

// Record forwards one counted record to the inner tap.
func (t *Tap) Record(r trace.Record) {
	if t.Inner != nil {
		t.Inner.Record(r)
	}
}

// RecordBatch forwards a counted run of records, chunked when the
// inner tap supports it.
func (t *Tap) RecordBatch(recs []trace.Record) {
	switch {
	case t.inner != nil:
		t.inner.RecordBatch(recs)
	case t.Inner != nil:
		for _, r := range recs {
			t.Inner.Record(r)
		}
	}
}

// ClosePeriod closes the inner tap's period first (the tracker's fold
// and, for a feeder, its flush barrier), then emits the summary — the
// digests are guaranteed to include the period just closed.
func (t *Tap) ClosePeriod(index int, end time.Duration) {
	if t.Inner != nil {
		t.Inner.ClosePeriod(index, end)
	}
	if t.Emit != nil {
		t.Emit(t.S.Summarize(t.last))
	}
}
