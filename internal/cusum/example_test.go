package cusum_test

import (
	"fmt"

	"repro/internal/cusum"
)

// ExampleDetector demonstrates the bare CUSUM rule on a normalized
// observation stream.
func ExampleDetector() {
	d := cusum.NewDefault() // a = 0.35, N = 1.05
	quiet := []float64{0.02, 0.05, 0.01, 0.08, 0.03}
	for _, x := range quiet {
		d.Observe(x)
	}
	fmt.Printf("quiet: yn = %.2f, alarmed = %v\n", d.Statistic(), d.Alarmed())

	// Attack: the normalized SYN excess jumps to 0.7 (= h = 2a).
	for i := 0; i < 4; i++ {
		d.Observe(0.7)
	}
	fmt.Printf("flood: yn = %.2f, alarmed = %v\n", d.Statistic(), d.Alarmed())

	// Output:
	// quiet: yn = 0.00, alarmed = false
	// flood: yn = 1.40, alarmed = true
}

// ExampleDesign shows the paper's closed-form tuning helpers.
func ExampleDesign() {
	des := cusum.DefaultDesign()
	fmt.Printf("designed detection time: %.0f periods\n", des.DetectionTime())
	fmt.Printf("UNC floor (K=2114/20s): %.0f SYN/s\n", des.MinFloodRate(2114, 20))
	fmt.Printf("Auckland floor (K=100/20s): %.2f SYN/s\n", des.MinFloodRate(100, 20))

	// Output:
	// designed detection time: 3 periods
	// UNC floor (K=2114/20s): 37 SYN/s
	// Auckland floor (K=100/20s): 1.75 SYN/s
}
