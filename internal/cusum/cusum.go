// Package cusum implements the non-parametric Cumulative Sum change
// detector at the heart of SYN-dog (Section 3.2 of the paper), plus
// the EWMA estimator used to normalize the observations and the closed
// forms the paper derives for tuning (Eqs. 5, 7 and 8).
//
// The detector watches a normalized series
//
//	Xn = Δn / K̄,  Δn = #SYN(n) − #SYNACK(n)
//
// whose mean c is small under normal operation. With an offset a > c,
// the shifted series X̃n = Xn − a has negative drift normally and
// positive drift ≥ h − a during an attack. The test statistic
//
//	yn = (y(n−1) + X̃n)+              (Eq. 2)
//
// is the maximum continuous increment of the shifted partial sums
// (Eq. 3); an alarm fires when yn > N (Eq. 4).
//
// The detector itself carries no per-connection state — just two
// floats — which is what makes SYN-dog immune to flooding.
package cusum

import (
	"errors"
	"math"
)

// Paper-recommended universal parameters (Section 3.2): chosen to be
// independent of network size and access pattern.
const (
	// DefaultOffset is a, the upper bound of E[Xn] under normal
	// operation.
	DefaultOffset = 0.35
	// DefaultMinIncrease is h, the assumed lower bound of the increase
	// in E[Xn] under attack; the paper's design rule is h = 2a.
	DefaultMinIncrease = 0.7
	// DefaultThreshold is N, chosen so the designed detection time is
	// 3 observation periods when h = 2a and c = 0.
	DefaultThreshold = 1.05
)

// ErrBadParam reports invalid detector or estimator parameters.
var ErrBadParam = errors.New("cusum: invalid parameter")

// Detector is the non-parametric CUSUM test. The zero value is not
// configured; use New or NewDefault.
type Detector struct {
	offset    float64 // a
	threshold float64 // N
	y         float64 // yn, the test statistic
	alarmed   bool
	n         uint64 // observations consumed
	onsetIdx  uint64 // observation index at which yn last left zero
}

// New builds a detector with offset a and alarm threshold N.
func New(offset, threshold float64) (*Detector, error) {
	if offset <= 0 || math.IsNaN(offset) || math.IsInf(offset, 0) {
		return nil, ErrBadParam
	}
	if threshold <= 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, ErrBadParam
	}
	return &Detector{offset: offset, threshold: threshold}, nil
}

// NewDefault builds a detector with the paper's universal parameters
// (a = 0.35, N = 1.05).
func NewDefault() *Detector {
	d, err := New(DefaultOffset, DefaultThreshold)
	if err != nil {
		panic("cusum: default parameters invalid: " + err.Error())
	}
	return d
}

// Observe consumes one normalized observation Xn and returns the
// decision dN(yn): true means the cumulative evidence crossed the
// threshold (attack). The alarm latches: once raised it stays raised
// until Reset, mirroring how the agent reports an ongoing attack.
func (d *Detector) Observe(x float64) bool {
	prev := d.y
	d.y += x - d.offset
	if d.y < 0 {
		d.y = 0
	}
	if prev == 0 && d.y > 0 {
		d.onsetIdx = d.n
	}
	d.n++
	if d.y > d.threshold {
		d.alarmed = true
	}
	return d.alarmed
}

// Statistic returns the current test statistic yn.
func (d *Detector) Statistic() float64 { return d.y }

// Alarmed reports whether the alarm has been raised.
func (d *Detector) Alarmed() bool { return d.alarmed }

// Observations returns how many samples the detector has consumed.
func (d *Detector) Observations() uint64 { return d.n }

// OnsetIndex returns the observation index at which the current
// (nonzero) accumulation began — the detector's estimate of the attack
// start. It is meaningful only while Statistic() > 0 or Alarmed().
func (d *Detector) OnsetIndex() uint64 { return d.onsetIdx }

// Offset returns the configured offset a.
func (d *Detector) Offset() float64 { return d.offset }

// Threshold returns the configured threshold N.
func (d *Detector) Threshold() float64 { return d.threshold }

// Reset clears the statistic and the alarm, e.g. after an attack has
// been handled. The observation counter keeps running.
func (d *Detector) Reset() {
	d.y = 0
	d.alarmed = false
}

// Restore overwrites the detector's mutable state; used to resume a
// persisted agent after a restart. The statistic must be non-negative.
func (d *Detector) Restore(y float64, alarmed bool, observations, onsetIdx uint64) error {
	if y < 0 || math.IsNaN(y) {
		return ErrBadParam
	}
	d.y = y
	d.alarmed = alarmed
	d.n = observations
	d.onsetIdx = onsetIdx
	return nil
}

// EWMA is the recursive estimator of Eq. 1:
//
//	K(n) = α·K(n−1) + (1−α)·v(n)
//
// used to track the average number of SYN/ACKs per observation period.
// α in (0,1) is the memory; larger α forgets more slowly.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA builds an estimator with memory alpha in (0, 1).
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha >= 1 || math.IsNaN(alpha) {
		return nil, ErrBadParam
	}
	return &EWMA{alpha: alpha}, nil
}

// Update folds one sample into the estimate and returns the new value.
// The first sample initializes the estimate directly, avoiding a long
// warm-up from zero.
func (e *EWMA) Update(v float64) float64 {
	if !e.primed {
		e.value = v
		e.primed = true
		return e.value
	}
	e.value = e.alpha*e.value + (1-e.alpha)*v
	return e.value
}

// Value returns the current estimate (0 before the first Update).
func (e *EWMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been folded in.
func (e *EWMA) Primed() bool { return e.primed }

// Restore overwrites the estimator's state; used to resume a persisted
// agent after a restart.
func (e *EWMA) Restore(value float64, primed bool) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return ErrBadParam
	}
	e.value = value
	e.primed = primed
	return nil
}

// Design captures the closed-form relationships of Section 3.2 for
// parameter selection and performance prediction.
type Design struct {
	// Offset is a, the normal-operation upper bound.
	Offset float64
	// MinIncrease is h, the assumed minimum mean increase under attack.
	MinIncrease float64
	// Threshold is N.
	Threshold float64
	// NormalMean is c = E[Xn] under normal operation (often taken 0).
	NormalMean float64
}

// DefaultDesign returns the paper's universal design: a=0.35, h=2a,
// N=1.05, c=0.
func DefaultDesign() Design {
	return Design{
		Offset:      DefaultOffset,
		MinIncrease: DefaultMinIncrease,
		Threshold:   DefaultThreshold,
		NormalMean:  0,
	}
}

// DetectionTime returns the conservative (upper-bound) detection delay
// in observation periods after an attack starts (Eq. 7):
//
//	τ − m ≈ N·γ,  γ = 1/(h − |c − a|)
//
// It returns +Inf when the attack drift h does not overcome the
// offset, i.e. the attack is below the detectable floor.
func (d Design) DetectionTime() float64 {
	drift := d.MinIncrease - math.Abs(d.NormalMean-d.Offset)
	if drift <= 0 {
		return math.Inf(1)
	}
	return d.Threshold / drift
}

// DetectionTimeFor returns the expected detection delay, in
// observation periods, for an actual per-period attack intensity
// deltaX = (flood SYNs per period)/K̄ — i.e. the paper's Eq. 7 with h
// replaced by the true drift.
func (d Design) DetectionTimeFor(deltaX float64) float64 {
	drift := deltaX - math.Abs(d.NormalMean-d.Offset)
	if drift <= 0 {
		return math.Inf(1)
	}
	return d.Threshold / drift
}

// MinFloodRate returns fmin of Eq. 8, the lower bound of detection
// sensitivity in SYN packets/second, given the average SYN/ACK count
// per observation period K̄ and the observation period in seconds:
//
//	fmin = (a − c)·K̄ / t0
//
// A flood below this rate never builds positive drift and is invisible
// to the detector (at any response time).
func (d Design) MinFloodRate(kBar, observationSeconds float64) float64 {
	if observationSeconds <= 0 {
		return math.Inf(1)
	}
	return (d.Offset - d.NormalMean) * kBar / observationSeconds
}

// FalseAlarmExponent returns the exponent factor in Eq. 5: the
// probability of a false alarm decays as c1·exp(−c2·N), so the mean
// time between false alarms grows exponentially with N. The constants
// c1, c2 depend on the marginal distribution and mixing coefficients
// of the observations and "play a secondary role"; this helper simply
// exposes the exp(−c2·N) shape for a caller-supplied c2 so tests and
// docs can reason about the trend.
func (d Design) FalseAlarmExponent(c2 float64) float64 {
	return math.Exp(-c2 * d.Threshold)
}
