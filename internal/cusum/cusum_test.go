package cusum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	bad := [][2]float64{
		{0, 1}, {-1, 1}, {math.NaN(), 1}, {math.Inf(1), 1},
		{0.35, 0}, {0.35, -2}, {0.35, math.NaN()},
	}
	for _, p := range bad {
		if _, err := New(p[0], p[1]); err != ErrBadParam {
			t.Errorf("New(%v, %v) error = %v, want ErrBadParam", p[0], p[1], err)
		}
	}
	if _, err := New(0.35, 1.05); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestNewDefaultParameters(t *testing.T) {
	d := NewDefault()
	if d.Offset() != 0.35 || d.Threshold() != 1.05 {
		t.Errorf("defaults = a=%v N=%v, want 0.35/1.05", d.Offset(), d.Threshold())
	}
}

func TestStatisticStaysZeroUnderNormalOperation(t *testing.T) {
	// Under normal traffic Xn ≈ 0 << a, so yn must pin to zero.
	d := NewDefault()
	for i := 0; i < 1000; i++ {
		x := 0.05 // small positive mean, well under a
		if d.Observe(x) {
			t.Fatalf("false alarm at step %d", i)
		}
	}
	if d.Statistic() != 0 {
		t.Errorf("yn = %v, want 0", d.Statistic())
	}
	if d.Observations() != 1000 {
		t.Errorf("Observations = %d, want 1000", d.Observations())
	}
}

func TestIterativeEqualsMaxIncrementForm(t *testing.T) {
	// Eq. 2 (iterative) must equal Eq. 3: yn = Sn - min_{k<=n} Sk
	// where Sn is the partial sum of the shifted series.
	rng := rand.New(rand.NewSource(5))
	d, _ := New(0.35, 1e18) // huge threshold so nothing latches
	var sn, minSn float64
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64() * 0.5
		d.Observe(x)
		sn += x - 0.35
		if sn < minSn {
			minSn = sn
		}
		want := sn - minSn
		if math.Abs(d.Statistic()-want) > 1e-9 {
			t.Fatalf("step %d: iterative %v != closed form %v", i, d.Statistic(), want)
		}
	}
}

func TestAlarmFiresAndLatches(t *testing.T) {
	d := NewDefault()
	// Attack drift h = 0.7: Xn = 0.7, so X̃n = 0.35/period. The alarm
	// should fire when yn > 1.05, i.e. at the 4th observation
	// (3*0.35 = 1.05 is not > N; 4*0.35 = 1.4 is).
	fired := -1
	for i := 0; i < 10; i++ {
		if d.Observe(0.7) && fired < 0 {
			fired = i
		}
	}
	if fired != 3 {
		t.Errorf("alarm at observation %d (0-based), want 3", fired)
	}
	if !d.Alarmed() {
		t.Error("alarm did not latch")
	}
	// Latching: even after traffic normalizes, Alarmed stays true.
	for i := 0; i < 100; i++ {
		d.Observe(0)
	}
	if !d.Alarmed() {
		t.Error("alarm unlatched without Reset")
	}
	d.Reset()
	if d.Alarmed() || d.Statistic() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDesignedDetectionTimeIsThreePeriods(t *testing.T) {
	// The paper chooses N so that with h = 2a and c = 0 the designed
	// detection time is 3·t0: N = 3·(h-a) = 3·0.35 = 1.05.
	des := DefaultDesign()
	if got := des.DetectionTime(); math.Abs(got-3) > 1e-9 {
		t.Errorf("designed detection time = %v periods, want 3", got)
	}
}

func TestDetectionTimeFor(t *testing.T) {
	des := DefaultDesign()
	tests := []struct {
		deltaX float64
		want   float64 // periods
	}{
		{0.70, 3},           // exactly h
		{1.40, 1},           // 1.05/1.05
		{0.35, math.Inf(1)}, // at the floor: undetectable
		{0.20, math.Inf(1)}, // below the floor
	}
	for _, tt := range tests {
		got := des.DetectionTimeFor(tt.deltaX)
		if math.IsInf(tt.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("DetectionTimeFor(%v) = %v, want +Inf", tt.deltaX, got)
			}
			continue
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("DetectionTimeFor(%v) = %v, want %v", tt.deltaX, got, tt.want)
		}
	}
}

func TestMinFloodRateMatchesPaper(t *testing.T) {
	des := DefaultDesign()
	// UNC: K̄ ≈ 2114 SYN/ACKs per 20 s gives fmin ≈ 37 SYN/s.
	if got := des.MinFloodRate(2114, 20); math.Abs(got-37) > 0.2 {
		t.Errorf("UNC fmin = %v, want ≈37", got)
	}
	// Auckland: K̄ ≈ 100 per 20 s gives fmin = 1.75 SYN/s.
	if got := des.MinFloodRate(100, 20); math.Abs(got-1.75) > 1e-9 {
		t.Errorf("Auckland fmin = %v, want 1.75", got)
	}
	// Site-tuned UNC (Section 4.2.3): a = 0.2 drops fmin to ≈15.
	tuned := Design{Offset: 0.2, MinIncrease: 0.4, Threshold: 0.6}
	if got := tuned.MinFloodRate(2114 /*K̄*/, 20); math.Abs(got-21.1) > 0.3 {
		// (a−c)K̄/t0 = 0.2*2114/20 = 21.1; the paper rounds its K̄ —
		// with K̄=1500 it is exactly 15. Check the formula, not the
		// trace constant.
		t.Errorf("tuned fmin = %v, want ≈21.1 for K̄=2114", got)
	}
	if got := tuned.MinFloodRate(1500, 20); math.Abs(got-15) > 1e-9 {
		t.Errorf("tuned fmin = %v, want 15 for K̄=1500", got)
	}
	// Degenerate observation period.
	if got := des.MinFloodRate(100, 0); !math.IsInf(got, 1) {
		t.Errorf("t0=0 fmin = %v, want +Inf", got)
	}
}

func TestFalseAlarmExponentDecreasesWithThreshold(t *testing.T) {
	low := Design{Offset: 0.35, MinIncrease: 0.7, Threshold: 0.5}
	high := Design{Offset: 0.35, MinIncrease: 0.7, Threshold: 2.0}
	if low.FalseAlarmExponent(1) <= high.FalseAlarmExponent(1) {
		t.Error("false-alarm probability should shrink as N grows")
	}
}

func TestOnsetIndexTracksAccumulationStart(t *testing.T) {
	d := NewDefault()
	// 10 quiet periods, then an attack.
	for i := 0; i < 10; i++ {
		d.Observe(0.0)
	}
	for i := 0; i < 5; i++ {
		d.Observe(0.9)
	}
	if !d.Alarmed() {
		t.Fatal("attack not detected")
	}
	if d.OnsetIndex() != 10 {
		t.Errorf("OnsetIndex = %d, want 10", d.OnsetIndex())
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewEWMA(a); err != ErrBadParam {
			t.Errorf("NewEWMA(%v) error = %v, want ErrBadParam", a, err)
		}
	}
	if _, err := NewEWMA(0.8); err != nil {
		t.Errorf("valid alpha rejected: %v", err)
	}
}

func TestEWMAFirstSamplePrimes(t *testing.T) {
	e, _ := NewEWMA(0.9)
	if e.Primed() {
		t.Error("fresh EWMA claims primed")
	}
	if got := e.Update(100); got != 100 {
		t.Errorf("first update = %v, want 100", got)
	}
	if !e.Primed() {
		t.Error("EWMA not primed after first sample")
	}
	// Second sample: 0.9*100 + 0.1*200 = 110.
	if got := e.Update(200); math.Abs(got-110) > 1e-9 {
		t.Errorf("second update = %v, want 110", got)
	}
	if e.Value() != e.Update(e.Value()) {
		t.Error("updating with the current value should be a fixed point")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.8)
	e.Update(0)
	for i := 0; i < 200; i++ {
		e.Update(50)
	}
	if math.Abs(e.Value()-50) > 1e-6 {
		t.Errorf("EWMA = %v, want ≈50", e.Value())
	}
}

// Property: yn is always non-negative, and zero whenever every
// observation so far is below the offset.
func TestStatisticNonNegativeProperty(t *testing.T) {
	f := func(xsRaw []int16) bool {
		d, err := New(0.35, 1.05)
		if err != nil {
			return false
		}
		allBelow := true
		for _, raw := range xsRaw {
			x := float64(raw) / 1000 // [-32.768, 32.767]
			if x > 0.35 {
				allBelow = false
			}
			d.Observe(x)
			if d.Statistic() < 0 {
				return false
			}
		}
		if allBelow && d.Statistic() != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling time-to-alarm. For constant drift x > a the alarm
// fires at the smallest n with n(x-a) > N — give or take one period
// where N/(x-a) lands within floating-point error of an integer (the
// iterative accumulation of Eq. 2 and the closed-form division round
// differently at exact boundaries, e.g. x=0.4, N=2.4).
func TestConstantDriftAlarmTimeProperty(t *testing.T) {
	f := func(driftRaw uint8, threshRaw uint8) bool {
		x := 0.4 + float64(driftRaw)/100 // in [0.4, 2.95]
		n := 0.2 + float64(threshRaw)/50 // in [0.2, 5.3]
		d, err := New(0.35, n)
		if err != nil {
			return false
		}
		var fired int = -1
		for i := 0; i < 10000; i++ {
			if d.Observe(x) {
				fired = i
				break
			}
		}
		if fired < 0 {
			return false
		}
		want := int(math.Floor(n / (x - 0.35))) // first i (0-based) with (i+1)(x-a) > N
		diff := fired - want
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: EWMA stays within the [min, max] hull of its inputs.
func TestEWMAHullProperty(t *testing.T) {
	f := func(alphaRaw uint8, vsRaw []uint16) bool {
		alpha := 0.01 + 0.98*float64(alphaRaw)/255
		e, err := NewEWMA(alpha)
		if err != nil {
			return false
		}
		if len(vsRaw) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, raw := range vsRaw {
			v := float64(raw)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			got := e.Update(v)
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	d := NewDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Observe(0.01)
	}
}
