package cusum

import (
	"errors"
	"math"
	"math/rand"
)

// This file implements the posterior (off-line) change detection that
// Section 3.2 contrasts with the sequential test SYN-dog uses:
// "Posterior tests are done off-line where the whole data segment is
// collected first and then a decision about homogeneity is made based
// on the analysis of all the collected data." The repository includes
// it so the ablation experiments can quantify the trade the paper
// makes — the posterior test localizes the change accurately but only
// after the whole segment is in hand, while the sequential test
// answers during the attack.
//
// The detector is the classical CUSUM-of-deviations permutation test
// (a standard non-parametric posterior test): the change-point
// estimate is the argmax of |S_k|, S_k = Σ_{i<=k}(x_i − x̄), and
// significance comes from comparing range(S) against its permutation
// distribution.

// ErrTooShort reports a series too short for posterior analysis.
var ErrTooShort = errors.New("cusum: series too short for posterior test")

// PosteriorResult is the outcome of an off-line homogeneity test.
type PosteriorResult struct {
	// Change reports whether the series is judged non-homogeneous.
	Change bool
	// Index is the estimated change point: the last index of the
	// pre-change segment (meaningful only when Change).
	Index int
	// Confidence is the bootstrap confidence that a change exists,
	// in [0, 1].
	Confidence float64
	// Magnitude is the estimated mean shift across the change point.
	Magnitude float64
}

// PosteriorConfig parameterizes PosteriorDetect.
type PosteriorConfig struct {
	// Permutations is the number of shuffles in the significance test
	// (default 500).
	Permutations int
	// Confidence is the decision threshold on bootstrap confidence
	// (default 0.95).
	Confidence float64
	// Seed drives the permutation shuffles.
	Seed int64
}

func (c *PosteriorConfig) applyDefaults() {
	if c.Permutations == 0 {
		c.Permutations = 500
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
}

// PosteriorDetect runs the off-line homogeneity test over the whole
// series.
func PosteriorDetect(xs []float64, cfg PosteriorConfig) (PosteriorResult, error) {
	cfg.applyDefaults()
	n := len(xs)
	if n < 8 {
		return PosteriorResult{}, ErrTooShort
	}

	observedRange, changeIdx := cusumRange(xs)

	// Permutation test: how often does a random shuffle produce a
	// CUSUM range at least as extreme?
	rng := rand.New(rand.NewSource(cfg.Seed))
	shuffled := make([]float64, n)
	copy(shuffled, xs)
	atLeast := 0
	for p := 0; p < cfg.Permutations; p++ {
		rng.Shuffle(n, func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		r, _ := cusumRange(shuffled)
		if r >= observedRange {
			atLeast++
		}
	}
	confidence := 1 - float64(atLeast)/float64(cfg.Permutations)

	res := PosteriorResult{
		Index:      changeIdx,
		Confidence: confidence,
		Change:     confidence >= cfg.Confidence,
	}
	if changeIdx >= 0 && changeIdx < n-1 {
		pre := mean(xs[:changeIdx+1])
		post := mean(xs[changeIdx+1:])
		res.Magnitude = post - pre
	}
	return res, nil
}

// cusumRange returns the range of the mean-adjusted cumulative sums
// and the argmax index of |S_k| (the change-point estimator).
func cusumRange(xs []float64) (r float64, argmax int) {
	m := mean(xs)
	var cum, minS, maxS, maxAbs float64
	argmax = -1
	for i, x := range xs {
		cum += x - m
		if cum < minS {
			minS = cum
		}
		if cum > maxS {
			maxS = cum
		}
		if a := math.Abs(cum); a > maxAbs {
			maxAbs = a
			argmax = i
		}
	}
	return maxS - minS, argmax
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
