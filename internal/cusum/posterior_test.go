package cusum

import (
	"math/rand"
	"testing"
)

// series builds n0 pre-change samples around mu0 and n1 post-change
// samples around mu1 with gaussian noise sigma.
func series(rng *rand.Rand, n0, n1 int, mu0, mu1, sigma float64) []float64 {
	out := make([]float64, 0, n0+n1)
	for i := 0; i < n0; i++ {
		out = append(out, mu0+sigma*rng.NormFloat64())
	}
	for i := 0; i < n1; i++ {
		out = append(out, mu1+sigma*rng.NormFloat64())
	}
	return out
}

func TestPosteriorDetectsMeanShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := series(rng, 60, 30, 0.05, 0.75, 0.1)
	res, err := PosteriorDetect(xs, PosteriorConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Change {
		t.Fatalf("obvious change not detected (confidence %.3f)", res.Confidence)
	}
	// Change-point estimate should land near index 59.
	if res.Index < 54 || res.Index > 64 {
		t.Errorf("change index = %d, want ≈59", res.Index)
	}
	if res.Magnitude < 0.5 || res.Magnitude > 0.9 {
		t.Errorf("magnitude = %v, want ≈0.7", res.Magnitude)
	}
}

func TestPosteriorQuietOnHomogeneousSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	falsePositives := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		xs := series(rng, 80, 0, 0.1, 0, 0.1)
		res, err := PosteriorDetect(xs, PosteriorConfig{Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Change {
			falsePositives++
		}
	}
	// At 95% confidence a handful of false positives in 20 trials
	// would indicate a broken test statistic.
	if falsePositives > 3 {
		t.Errorf("false positives = %d/%d at 95%% confidence", falsePositives, trials)
	}
}

func TestPosteriorTooShort(t *testing.T) {
	if _, err := PosteriorDetect(make([]float64, 5), PosteriorConfig{}); err != ErrTooShort {
		t.Errorf("error = %v, want ErrTooShort", err)
	}
}

func TestPosteriorDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := series(rng, 40, 20, 0, 0.5, 0.2)
	a, err := PosteriorDetect(xs, PosteriorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PosteriorDetect(xs, PosteriorConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestPosteriorVsSequentialTradeoff(t *testing.T) {
	// The paper's §3.2 argument, quantified: on the same flood series
	// the sequential test answers DURING the attack (a few periods
	// after onset) while the posterior test needs the full segment —
	// but localizes the onset more precisely than the sequential
	// alarm time does.
	rng := rand.New(rand.NewSource(5))
	const onset = 50
	xs := series(rng, onset, 40, 0.05, 0.8, 0.08)

	// Sequential (SYN-dog rule).
	seq := NewDefault()
	alarmAt := -1
	for i, x := range xs {
		if seq.Observe(x) && alarmAt < 0 {
			alarmAt = i
		}
	}
	if alarmAt < 0 {
		t.Fatal("sequential test missed the flood")
	}
	seqDelay := alarmAt - (onset - 1)
	if seqDelay < 1 || seqDelay > 6 {
		t.Errorf("sequential delay = %d periods, want a few", seqDelay)
	}

	// Posterior (whole segment needed).
	post, err := PosteriorDetect(xs, PosteriorConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !post.Change {
		t.Fatal("posterior test missed the flood")
	}
	postError := abs(post.Index - (onset - 1))
	if postError > seqDelay {
		t.Errorf("posterior localization error %d should beat sequential delay %d", postError, seqDelay)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
