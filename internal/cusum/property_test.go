package cusum

import (
	"math/rand"
	"testing"
)

// Property tests of the CUSUM recursion yn = (y(n-1) + Xn - a)+ that
// the detection experiments lean on. Each uses many seeded random
// input series rather than hand-picked vectors.

// TestStatisticNeverNegative: the ()+ projection keeps yn >= 0 for any
// input series, including large negative excursions.
func TestStatisticNeverNegative(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := NewDefault()
		for i := 0; i < 2000; i++ {
			// Heavy-tailed-ish mix: mostly small, occasional big swings
			// in both directions.
			x := rng.NormFloat64() * 0.3
			if rng.Intn(20) == 0 {
				x += (rng.Float64() - 0.5) * 50
			}
			d.Observe(x)
			if d.Statistic() < 0 {
				t.Fatalf("seed %d, obs %d: yn = %v < 0", seed, i, d.Statistic())
			}
		}
	}
}

// TestResetsUnderSubOffsetInput: when every observation stays below
// the offset a, the statistic drains back to exactly 0 and stays
// there — the negative-drift regime of normal operation.
func TestResetsUnderSubOffsetInput(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := NewDefault()
		// Kick the statistic up first so there is something to drain.
		d.Observe(DefaultOffset + 0.8)
		if d.Statistic() <= 0 {
			t.Fatal("setup: statistic did not rise")
		}
		drained := false
		for i := 0; i < 500; i++ {
			// Strictly sub-offset input: drift is at most -0.05 per step.
			x := rng.Float64() * (DefaultOffset - 0.05)
			d.Observe(x)
			if d.Statistic() == 0 {
				drained = true
			} else if drained {
				// Once at zero, strictly sub-offset input keeps it there.
				t.Fatalf("seed %d: statistic regrew to %v on sub-offset input", seed, d.Statistic())
			}
		}
		if !drained {
			t.Fatalf("seed %d: statistic never drained to 0 under sustained sub-offset input", seed)
		}
		if d.Alarmed() {
			t.Fatalf("seed %d: alarm on sub-offset input", seed)
		}
	}
}

// firstAlarm replays noise+flood through a fresh default detector and
// returns the first alarm index (-1 if none). The same noise series is
// used across flood rates so runs are pointwise comparable.
func firstAlarm(noise []float64, onset int, floodX float64) int {
	d := NewDefault()
	for i, x := range noise {
		if i >= onset {
			x += floodX
		}
		if d.Observe(x) {
			return i
		}
	}
	return -1
}

// TestAlarmTimeMonotoneInRate: with identical background noise, a
// stronger flood never alarms later. This is the pointwise
// monotonicity of the recursion: raising every post-onset input can
// only raise every subsequent yn.
func TestAlarmTimeMonotoneInRate(t *testing.T) {
	const periods, onset = 300, 50
	rates := []float64{0.4, 0.6, 0.9, 1.5, 3, 8}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		noise := make([]float64, periods)
		for i := range noise {
			// Mean well below the offset so the quiet prefix stays quiet.
			noise[i] = rng.Float64() * 0.3
		}
		prev := -1
		for ri, rate := range rates {
			at := firstAlarm(noise, onset, rate)
			if at >= 0 && at < onset {
				t.Fatalf("seed %d rate %v: alarm at %d before onset %d", seed, rate, at, onset)
			}
			if prev >= 0 {
				if at < 0 {
					t.Fatalf("seed %d: rate %v detected but higher rate %v did not",
						seed, rates[ri-1], rate)
				}
				if at > prev {
					t.Fatalf("seed %d: alarm time grew from %d to %d as rate rose %v -> %v",
						seed, prev, at, rates[ri-1], rate)
				}
			}
			if at >= 0 {
				prev = at
			}
		}
	}
}
