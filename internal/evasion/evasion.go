// Package evasion generates the adversarial flood scenarios the
// paper's own theory invites: Eq. 8 gives the attacker the exact
// sensitivity floor fmin below which a flood builds no CUSUM drift,
// and Eq. 7 gives the detection delay, i.e. how long a burst may run
// before the statistic reaches the threshold. Each generator here
// builds one such theory-guided attack — plus the classic
// false-positive control, a flash crowd whose SYN surge carries
// matching SYN/ACKs — as a trace overlay ready to merge into
// background traffic.
//
// Every generator is seed-deterministic: arrival schedules are exact
// grids (flood.Pulsing, or the round-robin drips below), and the only
// randomness is the choice of spoofed host bits and ephemeral ports,
// drawn from the scenario seed. The same Params therefore always
// yield byte-identical record sequences, which is what lets the
// closed-loop experiment (internal/experiment, "evasion") promise a
// reproducible scenario matrix and lets the property tests in this
// package pin the evasion margins as arithmetic facts rather than
// expectations.
package evasion

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/cusum"
	"repro/internal/flood"
	"repro/internal/packet"
	"repro/internal/trace"
)

// ChurnBase is the block many-source scenarios draw their spoofed
// keys from: the reserved class-E space, unreachable like
// flood.DefaultSpoofPrefix, with room for 2^20 distinct /24 keys.
var ChurnBase = netip.MustParsePrefix("240.0.0.0/4")

// Params fixes the shared geometry of a scenario: who is attacked,
// when, for how long, and at what detector granularity the ground
// truth is expressed.
type Params struct {
	// Victim is the flood target.
	Victim     netip.Addr
	VictimPort uint16
	// Onset is the attack start relative to trace start; Duration is
	// how long it runs.
	Onset    time.Duration
	Duration time.Duration
	// T0 is the detector's observation period (the evasion margins are
	// stated per period).
	T0 time.Duration
	// KeyBits is the attribution keying width ground-truth prefixes
	// are expressed at (e.g. 24).
	KeyBits int
	// Seed drives host-bit and port randomness.
	Seed int64
}

func (p *Params) validate() error {
	if !p.Victim.IsValid() {
		return errors.New("evasion: invalid victim")
	}
	if p.Onset < 0 || p.Duration <= 0 {
		return fmt.Errorf("evasion: onset %v duration %v", p.Onset, p.Duration)
	}
	if p.T0 <= 0 {
		return errors.New("evasion: non-positive observation period")
	}
	if p.KeyBits < 1 || p.KeyBits > 32 {
		return fmt.Errorf("evasion: key bits %d outside [1,32]", p.KeyBits)
	}
	return nil
}

// Scenario is one adversarial workload: the attack overlay trace plus
// the ground truth the closed-loop experiment scores attribution
// against.
type Scenario struct {
	// Name identifies the scenario in the matrix table.
	Name string
	// Attack is the overlay trace (sorted, Span = Onset+Duration).
	Attack *trace.Trace
	// Truth holds the attack's source keys at Params.KeyBits width.
	// Empty for the flash crowd, whose sources are legitimate.
	Truth []netip.Prefix
	// Hostile distinguishes attacks (an alarm is a detection) from the
	// flash-crowd control (an alarm is a false positive).
	Hostile bool
	// MeanRate is the designed mean attack SYN rate in SYN/s.
	MeanRate float64
}

// TruthSet returns the ground-truth keys as a membership set.
func (s *Scenario) TruthSet() map[netip.Prefix]bool {
	m := make(map[netip.Prefix]bool, len(s.Truth))
	for _, k := range s.Truth {
		m[k] = true
	}
	return m
}

// fminTruth is the single spoofed /24-equivalent block the pulsing
// scenarios concentrate on: evasion needs no source spreading, so the
// ground truth is one key.
var fminTruth = netip.MustParsePrefix("240.66.77.0/24")

// PulsingUnderFmin builds the Eq. 8 evasion: a duty-cycled flood whose
// per-period volume stays strictly under the sensitivity floor
// fmin·t0 = (a−c)·K̄, so the normalized statistic never exceeds the
// CUSUM offset and no drift accumulates — the flood is invisible at
// any observation length. The pulse cycle equals t0 and the peak runs
// at peakMult·fmin, so the attack is very visible instantaneously
// (packet bursts at many times the floor) yet never per period:
// exactly the attacker Eq. 8 describes. frac < 1 scales the per-period
// volume against the floor; the property tests pin that every period's
// count lands below it.
func PulsingUnderFmin(p Params, design cusum.Design, kbar, frac, peakMult float64) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if kbar <= 0 || frac <= 0 || frac >= 1 || peakMult <= frac {
		return nil, fmt.Errorf("evasion: fmin pulsing needs kbar>0, 0<frac<1, peakMult>frac (got %v, %v, %v)", kbar, frac, peakMult)
	}
	fmin := design.MinFloodRate(kbar, p.T0.Seconds())
	pat := flood.Pulsing{
		PeakRate: peakMult * fmin,
		On:       time.Duration(frac / peakMult * float64(p.T0)),
	}
	pat.Off = p.T0 - pat.On
	tr, err := flood.GenerateTrace(flood.Config{
		Start:       alignUp(p.Onset, p.T0),
		Duration:    p.Duration,
		Pattern:     pat,
		Victim:      p.Victim,
		VictimPort:  p.VictimPort,
		SpoofPrefix: fminTruth,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr.Name = "pulse-under-fmin"
	return &Scenario{
		Name:     "pulse-under-fmin",
		Attack:   tr,
		Truth:    []netip.Prefix{truthKey(fminTruth.Addr(), p.KeyBits)},
		Hostile:  true,
		MeanRate: pat.Mean(),
	}, nil
}

// PulsingUnderDelay builds the Eq. 7 evasion: bursts well above fmin
// (burstMult·fmin for one full period) kept shorter than the detection
// delay N/(X−a), separated by quiet periods long enough for the CUSUM
// reflection at zero to drain the accumulated drift. Per burst the
// statistic climbs by (burstMult−1)·a < N and then decays by a per
// quiet period, so it never reaches the threshold even though the
// burst rate is a multiple of the floor.
func PulsingUnderDelay(p Params, design cusum.Design, kbar, burstMult float64) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if kbar <= 0 || burstMult <= 1 {
		return nil, fmt.Errorf("evasion: delay pulsing needs kbar>0 and burstMult>1 (got %v, %v)", kbar, burstMult)
	}
	drift := (burstMult - 1) * (design.Offset - design.NormalMean)
	if drift >= design.Threshold {
		return nil, fmt.Errorf("evasion: one-period drift %.3f reaches threshold %.3f — burst would be detected", drift, design.Threshold)
	}
	// Quiet periods drain the offset a each; one extra period of
	// margin keeps background noise from stacking across bursts.
	offPeriods := int(math.Ceil(drift/(design.Offset-design.NormalMean))) + 1
	fmin := design.MinFloodRate(kbar, p.T0.Seconds())
	pat := flood.Pulsing{
		PeakRate: burstMult * fmin,
		On:       p.T0,
		Off:      time.Duration(offPeriods) * p.T0,
	}
	tr, err := flood.GenerateTrace(flood.Config{
		Start:       alignUp(p.Onset, p.T0),
		Duration:    p.Duration,
		Pattern:     pat,
		Victim:      p.Victim,
		VictimPort:  p.VictimPort,
		SpoofPrefix: fminTruth,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr.Name = "pulse-under-delay"
	return &Scenario{
		Name:     "pulse-under-delay",
		Attack:   tr,
		Truth:    []netip.Prefix{truthKey(fminTruth.Addr(), p.KeyBits)},
		Hostile:  true,
		MeanRate: pat.Mean(),
	}, nil
}

// SingleSource builds the non-evasive baseline the matrix calibrates
// against: a constant flood well above fmin spoofing one key, the
// attack the paper evaluates and the attribution engine names. Against
// it, detection must be prompt, attribution exact, and mitigation can
// scope to the one attributed prefix with zero collateral.
func SingleSource(p Params, rate float64) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if rate <= 0 {
		return nil, fmt.Errorf("evasion: single source needs a positive rate (got %v)", rate)
	}
	tr, err := flood.GenerateTrace(flood.Config{
		Start:       p.Onset,
		Duration:    p.Duration,
		Pattern:     flood.Constant{PerSecond: rate},
		Victim:      p.Victim,
		VictimPort:  p.VictimPort,
		SpoofPrefix: fminTruth,
		Seed:        p.Seed,
	})
	if err != nil {
		return nil, err
	}
	tr.Name = "single-source"
	return &Scenario{
		Name:     "single-source",
		Attack:   tr,
		Truth:    []netip.Prefix{truthKey(fminTruth.Addr(), p.KeyBits)},
		Hostile:  true,
		MeanRate: rate,
	}, nil
}

// SlowDrip builds the many-source flood that stresses Space-Saving
// admission: totalRate SYN/s spread round-robin over nKeys distinct
// source keys, each key persisting for the whole attack at a trickle
// far below any per-key floor. Size nKeys above the tracker's
// MaxSources and admission must recycle state continuously — the
// eviction counters, not silent truncation, are what the scenario
// verifies downstream.
func SlowDrip(p Params, totalRate float64, nKeys int) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if totalRate <= 0 || nKeys < 1 {
		return nil, fmt.Errorf("evasion: slow drip needs positive rate and keys (got %v, %d)", totalRate, nKeys)
	}
	if nKeys > keySpace(p.KeyBits) {
		return nil, fmt.Errorf("evasion: %d keys exceed the churn block's %d-key space", nKeys, keySpace(p.KeyBits))
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tr := &trace.Trace{Name: "slow-drip", Span: p.Onset + p.Duration}
	truth := make([]netip.Prefix, nKeys)
	for i := range truth {
		truth[i] = nthKey(i, p.KeyBits)
	}
	gap := time.Duration(float64(time.Second) / totalRate)
	i := 0
	for ts := p.Onset; ts < p.Onset+p.Duration; ts += gap {
		key := truth[i%nKeys]
		tr.Records = append(tr.Records, trace.Record{
			Ts:      ts,
			Kind:    packet.KindSYN,
			Dir:     trace.DirOut,
			Src:     hostIn(key, rng),
			Dst:     p.Victim,
			SrcPort: ephemeral(rng),
			DstPort: p.VictimPort,
		})
		i++
	}
	return &Scenario{
		Name:     "slow-drip",
		Attack:   tr,
		Truth:    truth,
		Hostile:  true,
		MeanRate: totalRate,
	}, nil
}

// SpoofChurn builds the keying-defeat flood: every SYN spoofs a source
// in a fresh key, walking the churn block sequentially and never
// returning. No key ever sees a second period of pressure, so no
// per-key CUSUM can accumulate drift — attribution at any -key-bits
// width comes up empty while the aggregate detector still sees the
// full volume.
func SpoofChurn(p Params, totalRate float64) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if totalRate <= 0 {
		return nil, fmt.Errorf("evasion: spoof churn needs a positive rate (got %v)", totalRate)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	tr := &trace.Trace{Name: "spoof-churn", Span: p.Onset + p.Duration}
	var truth []netip.Prefix
	space := keySpace(p.KeyBits)
	gap := time.Duration(float64(time.Second) / totalRate)
	i := 0
	for ts := p.Onset; ts < p.Onset+p.Duration; ts += gap {
		key := nthKey(i%space, p.KeyBits)
		if i < space {
			truth = append(truth, key)
		}
		tr.Records = append(tr.Records, trace.Record{
			Ts:      ts,
			Kind:    packet.KindSYN,
			Dir:     trace.DirOut,
			Src:     hostIn(key, rng),
			Dst:     p.Victim,
			SrcPort: ephemeral(rng),
			DstPort: p.VictimPort,
		})
		i++
	}
	return &Scenario{
		Name:     "spoof-churn",
		Attack:   tr,
		Truth:    truth,
		Hostile:  true,
		MeanRate: totalRate,
	}, nil
}

// FlashCrowd builds the false-positive control: a legitimate SYN surge
// from inside the stub toward one popular external destination, every
// SYN answered by a SYN/ACK one RTT later. The SYN-SYN/ACK balance the
// detector keys on is preserved, so a correct detector raises no alarm
// no matter how large the surge — the survey literature's classic
// failure mode for raw SYN-count detectors.
func FlashCrowd(p Params, stub netip.Prefix, surgeRate float64, rtt time.Duration) (*Scenario, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if !stub.IsValid() || surgeRate <= 0 || rtt <= 0 {
		return nil, fmt.Errorf("evasion: flash crowd needs a stub prefix, positive rate and RTT")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	hot := netip.MustParseAddr("198.51.100.80") // the suddenly-popular server
	tr := &trace.Trace{Name: "flash-crowd", Span: p.Onset + p.Duration}
	gap := time.Duration(float64(time.Second) / surgeRate)
	for ts := p.Onset; ts < p.Onset+p.Duration; ts += gap {
		src := hostIn(stub, rng)
		sport := ephemeral(rng)
		tr.Records = append(tr.Records, trace.Record{
			Ts: ts, Kind: packet.KindSYN, Dir: trace.DirOut,
			Src: src, Dst: hot, SrcPort: sport, DstPort: 80,
		})
		if back := ts + rtt; back < tr.Span {
			tr.Records = append(tr.Records, trace.Record{
				Ts: back, Kind: packet.KindSYNACK, Dir: trace.DirIn,
				Src: hot, Dst: src, SrcPort: 80, DstPort: sport,
			})
		}
	}
	tr.Sort()
	return &Scenario{
		Name:     "flash-crowd",
		Attack:   tr,
		Hostile:  false,
		MeanRate: surgeRate,
	}, nil
}

// Handshake is one legitimate victim-bound connection attempt: the
// accept-queue scoring replays these against the victim's TCP server
// and counts how many complete their handshakes while mitigation is
// active.
type Handshake struct {
	Ts      time.Duration
	Src     netip.Addr
	SrcPort uint16
}

// VictimClients builds the legitimate client stream against the
// victim: rate conn/s from distinct in-stub hosts over [0, span),
// each rendered in the sniffer trace as an outgoing SYN answered by
// the victim's SYN/ACK one RTT later. The returned handshake list is
// the ground truth the accept-queue simulation scores survival
// against; the trace overlay keeps the detection pass consistent with
// what the egress sniffer would see.
func VictimClients(p Params, stub netip.Prefix, rate float64, rtt time.Duration, span time.Duration) (*trace.Trace, []Handshake, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	if !stub.IsValid() || rate <= 0 || rtt <= 0 || span <= 0 {
		return nil, nil, errors.New("evasion: victim clients need a stub prefix, positive rate, RTT and span")
	}
	rng := rand.New(rand.NewSource(p.Seed + 0x5eed))
	tr := &trace.Trace{Name: "victim-clients", Span: span}
	var hs []Handshake
	gap := time.Duration(float64(time.Second) / rate)
	for ts := time.Duration(0); ts < span; ts += gap {
		src := hostIn(stub, rng)
		sport := ephemeral(rng)
		hs = append(hs, Handshake{Ts: ts, Src: src, SrcPort: sport})
		tr.Records = append(tr.Records, trace.Record{
			Ts: ts, Kind: packet.KindSYN, Dir: trace.DirOut,
			Src: src, Dst: p.Victim, SrcPort: sport, DstPort: p.VictimPort,
		})
		if back := ts + rtt; back < span {
			tr.Records = append(tr.Records, trace.Record{
				Ts: back, Kind: packet.KindSYNACK, Dir: trace.DirIn,
				Src: p.Victim, Dst: src, SrcPort: p.VictimPort, DstPort: sport,
			})
		}
	}
	tr.Sort()
	return tr, hs, nil
}

// alignUp snaps the attack onset to the next period boundary. The
// pulsing evasions duty-cycle against the detector's period grid, so
// their per-period guarantees hold only when bursts and periods stay
// in phase.
func alignUp(d, t0 time.Duration) time.Duration {
	if rem := d % t0; rem != 0 {
		return d + t0 - rem
	}
	return d
}

// keySpace returns how many distinct keys of the given width fit in
// the churn block.
func keySpace(keyBits int) int {
	bits := keyBits - ChurnBase.Bits()
	if bits <= 0 {
		return 1
	}
	if bits > 20 {
		bits = 20 // cap the enumeration; 1M keys dwarf any tracker
	}
	return 1 << bits
}

// nthKey enumerates distinct keys of the given width inside the churn
// block: key i occupies the i-th aligned sub-block.
func nthKey(i, keyBits int) netip.Prefix {
	base := ChurnBase.Masked().Addr().As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	v += uint32(i) << (32 - keyBits)
	addr := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	p, _ := addr.Prefix(keyBits)
	return p
}

// truthKey masks an address to the ground-truth key width.
func truthKey(a netip.Addr, keyBits int) netip.Prefix {
	p, _ := a.Prefix(keyBits)
	return p
}

// hostIn draws a random host inside the prefix.
func hostIn(prefix netip.Prefix, rng *rand.Rand) netip.Addr {
	return flood.SpoofedAddr(prefix, rng)
}

// ephemeral draws an ephemeral source port.
func ephemeral(rng *rand.Rand) uint16 {
	return uint16(1024 + rng.Intn(64000))
}
