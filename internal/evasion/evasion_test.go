package evasion

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/packet"
	"repro/internal/trace"
)

var testVictim = netip.MustParseAddr("11.99.99.1")

func baseParams() Params {
	return Params{
		Victim:     testVictim,
		VictimPort: 80,
		Onset:      4 * time.Minute,
		Duration:   8 * time.Minute,
		T0:         20 * time.Second,
		KeyBits:    24,
		Seed:       7,
	}
}

// binAttack bins an overlay trace into absolute per-period SYN and
// SYN/ACK counts over the given number of periods.
func binAttack(tr *trace.Trace, t0 time.Duration, periods int) (syn, synAck []float64) {
	syn = make([]float64, periods)
	synAck = make([]float64, periods)
	for _, r := range tr.Records {
		idx := int(r.Ts / t0)
		if idx < 0 || idx >= periods {
			continue
		}
		switch {
		case r.Dir == trace.DirOut && r.Kind == packet.KindSYN:
			syn[idx]++
		case r.Dir == trace.DirIn && r.Kind == packet.KindSYNACK:
			synAck[idx]++
		}
	}
	return syn, synAck
}

// agentOverBalanced runs the default agent over a synthetic balanced
// background (OutSYN = InSYNACK = kbar every period) with the attack
// overlaid, and returns the agent. This isolates the evasion margin:
// the background contributes exactly zero drift, so any alarm is the
// attack's own doing and any silence is the guarantee under test.
func agentOverBalanced(t *testing.T, sc *Scenario, t0 time.Duration, kbar float64, periods int) *core.Agent {
	t.Helper()
	syn, synAck := binAttack(sc.Attack, t0, periods)
	pc := &trace.PeriodCounts{
		T0:       t0,
		OutSYN:   make([]float64, periods),
		InSYNACK: make([]float64, periods),
	}
	for i := 0; i < periods; i++ {
		pc.OutSYN[i] = kbar + syn[i]
		pc.InSYNACK[i] = kbar + synAck[i]
	}
	agent, err := core.NewAgent(core.Config{T0: t0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.ProcessCounts(pc); err != nil {
		t.Fatal(err)
	}
	return agent
}

// TestPulsingUnderFminBelowFloorEveryPeriod pins the Eq. 8 evasion as
// arithmetic: for several baselines and duty fractions, every single
// observation period's flood volume lands strictly under the
// sensitivity floor fmin*t0 = a*kbar, and a detector watching the
// attack over a drift-free background never alarms.
func TestPulsingUnderFminBelowFloorEveryPeriod(t *testing.T) {
	design := cusum.DefaultDesign()
	p := baseParams()
	periods := int((p.Onset + p.Duration) / p.T0)
	for _, kbar := range []float64{50, 100, 2114} {
		for _, frac := range []float64{0.5, 0.8, 0.9} {
			sc, err := PulsingUnderFmin(p, design, kbar, frac, 10)
			if err != nil {
				t.Fatal(err)
			}
			floor := design.MinFloodRate(kbar, p.T0.Seconds()) * p.T0.Seconds()
			syn, _ := binAttack(sc.Attack, p.T0, periods)
			for i, n := range syn {
				if n >= floor {
					t.Errorf("kbar=%v frac=%v: period %d volume %v >= floor %v", kbar, frac, i, n, floor)
				}
			}
			if agent := agentOverBalanced(t, sc, p.T0, kbar, periods); agent.Alarmed() {
				t.Errorf("kbar=%v frac=%v: sub-fmin pulsing raised an alarm", kbar, frac)
			}
			if sc.MeanRate >= design.MinFloodRate(kbar, p.T0.Seconds()) {
				t.Errorf("kbar=%v frac=%v: mean rate %v not under fmin", kbar, frac, sc.MeanRate)
			}
		}
	}
}

// TestPulsingUnderDelayDrainsBetweenBursts pins the Eq. 7 evasion:
// each one-period burst accrues (burstMult-1)*a of drift — strictly
// under the threshold N — and the scheduled quiet periods fully drain
// it, so the statistic saw-tooths below N forever. The burst rate
// itself is a multiple of fmin: detectable if sustained, invisible
// when paced by the detection-delay bound.
func TestPulsingUnderDelayDrainsBetweenBursts(t *testing.T) {
	design := cusum.DefaultDesign()
	p := baseParams()
	periods := int((p.Onset + p.Duration) / p.T0)
	for _, burstMult := range []float64{2, 2.5, 3.5} {
		sc, err := PulsingUnderDelay(p, design, 100, burstMult)
		if err != nil {
			t.Fatal(err)
		}
		drift := (burstMult - 1) * design.Offset
		if drift >= design.Threshold {
			t.Fatalf("burstMult=%v: per-burst drift %v reaches threshold", burstMult, drift)
		}
		// The burst length (one period) must undercut Eq. 7's
		// detection delay for the burst's own intensity.
		if delay := design.DetectionTimeFor(burstMult * design.Offset); delay <= 1 {
			t.Fatalf("burstMult=%v: detection delay %v periods does not allow a 1-period burst", burstMult, delay)
		}
		agent := agentOverBalanced(t, sc, p.T0, 100, periods)
		if agent.Alarmed() {
			t.Errorf("burstMult=%v: delay-bounded pulsing raised an alarm", burstMult)
		}
		maxY := 0.0
		for _, y := range agent.Statistics() {
			maxY = math.Max(maxY, y)
		}
		if maxY >= design.Threshold {
			t.Errorf("burstMult=%v: statistic reached %v >= N", burstMult, maxY)
		}
		if maxY > drift+0.1 {
			t.Errorf("burstMult=%v: statistic %v exceeds single-burst drift %v — bursts are stacking", burstMult, maxY, drift)
		}
	}
}

// TestPulsingRejectsDetectableBurst pins the guard: a burst multiple
// whose one-period drift already reaches N cannot be built as a
// delay evasion.
func TestPulsingRejectsDetectableBurst(t *testing.T) {
	design := cusum.DefaultDesign() // a=0.35, N=1.05: drift >= N at mult >= 4
	if _, err := PulsingUnderDelay(baseParams(), design, 100, 4.1); err == nil {
		t.Fatal("detectable burst accepted as a delay evasion")
	}
}

// TestSlowDripSpreadsBelowPerKeyPressure pins the many-source shape:
// exactly nKeys distinct ground-truth keys, every record inside one of
// them, and per-key per-period pressure far below one SYN — no keyed
// CUSUM floor can see an individual drip.
func TestSlowDripSpreadsBelowPerKeyPressure(t *testing.T) {
	p := baseParams()
	const rate, nKeys = 8.0, 512
	sc, err := SlowDrip(p, rate, nKeys)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Truth) != nKeys {
		t.Fatalf("%d truth keys, want %d", len(sc.Truth), nKeys)
	}
	truth := sc.TruthSet()
	if len(truth) != nKeys {
		t.Fatalf("truth keys not distinct: %d unique of %d", len(truth), nKeys)
	}
	perKey := map[netip.Prefix]int{}
	for _, r := range sc.Attack.Records {
		key, err := r.Src.Prefix(p.KeyBits)
		if err != nil {
			t.Fatal(err)
		}
		if !truth[key] {
			t.Fatalf("record source %v outside the ground-truth key set", r.Src)
		}
		perKey[key]++
	}
	floodPeriods := float64(p.Duration / p.T0)
	for key, n := range perKey {
		if perPeriod := float64(n) / floodPeriods; perPeriod >= 1 {
			t.Errorf("key %v gets %.2f SYN/period — not a trickle", key, perPeriod)
		}
	}
}

// TestSpoofChurnNeverReusesKeys pins the keying defeat: every SYN
// lands in a fresh key, so no key accumulates two packets, let alone
// periods of drift.
func TestSpoofChurnNeverReusesKeys(t *testing.T) {
	p := baseParams()
	sc, err := SpoofChurn(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[netip.Prefix]bool{}
	for _, r := range sc.Attack.Records {
		key, err := r.Src.Prefix(p.KeyBits)
		if err != nil {
			t.Fatal(err)
		}
		if seen[key] {
			t.Fatalf("key %v reused", key)
		}
		seen[key] = true
	}
	if len(sc.Truth) != len(sc.Attack.Records) {
		t.Fatalf("%d truth keys for %d records", len(sc.Truth), len(sc.Attack.Records))
	}
}

// TestFlashCrowdBalancedAndSilent pins the false-positive control: the
// surge's SYNs carry matching SYN/ACKs (up to RTT straddle at period
// edges), and the detector over a drift-free background stays silent.
func TestFlashCrowdBalancedAndSilent(t *testing.T) {
	p := baseParams()
	stub := netip.MustParsePrefix("130.216.0.0/16")
	const rate = 25.0
	rtt := 200 * time.Millisecond
	sc, err := FlashCrowd(p, stub, rate, rtt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Hostile {
		t.Fatal("flash crowd marked hostile")
	}
	if len(sc.Truth) != 0 {
		t.Fatal("flash crowd has attack truth keys")
	}
	periods := int((p.Onset + p.Duration) / p.T0)
	syn, synAck := binAttack(sc.Attack, p.T0, periods)
	straddle := math.Ceil(rate*rtt.Seconds()) + 1
	for i := range syn {
		if diff := math.Abs(syn[i] - synAck[i]); diff > straddle {
			t.Errorf("period %d: |SYN-SYNACK| = %v exceeds RTT straddle %v", i, diff, straddle)
		}
	}
	if agent := agentOverBalanced(t, sc, p.T0, 100, periods); agent.Alarmed() {
		t.Error("flash crowd raised an alarm over a drift-free background")
	}
}

// TestVictimClientsMatchTrace pins that the handshake list and the
// sniffer overlay describe the same connections.
func TestVictimClientsMatchTrace(t *testing.T) {
	p := baseParams()
	stub := netip.MustParsePrefix("130.216.0.0/16")
	tr, hs, err := VictimClients(p, stub, 1, 200*time.Millisecond, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var syns int
	for _, r := range tr.Records {
		if r.Kind == packet.KindSYN {
			if r.Dst != p.Victim || r.Dir != trace.DirOut {
				t.Fatalf("client SYN not aimed at the victim: %+v", r)
			}
			syns++
		}
	}
	if syns != len(hs) {
		t.Fatalf("%d trace SYNs for %d handshakes", syns, len(hs))
	}
	for _, h := range hs {
		if !stub.Contains(h.Src) {
			t.Fatalf("client %v outside the stub", h.Src)
		}
	}
}

// TestScenarioDeterminism pins the reproducibility contract: the same
// Params yield byte-identical record sequences for every generator.
func TestScenarioDeterminism(t *testing.T) {
	design := cusum.DefaultDesign()
	p := baseParams()
	stub := netip.MustParsePrefix("130.216.0.0/16")
	gens := map[string]func() (*Scenario, error){
		"pulse-under-fmin":  func() (*Scenario, error) { return PulsingUnderFmin(p, design, 100, 0.8, 10) },
		"pulse-under-delay": func() (*Scenario, error) { return PulsingUnderDelay(p, design, 100, 2.5) },
		"single-source":     func() (*Scenario, error) { return SingleSource(p, 12) },
		"slow-drip":         func() (*Scenario, error) { return SlowDrip(p, 8, 512) },
		"spoof-churn":       func() (*Scenario, error) { return SpoofChurn(p, 8) },
		"flash-crowd":       func() (*Scenario, error) { return FlashCrowd(p, stub, 25, 200*time.Millisecond) },
	}
	for name, gen := range gens {
		a, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Attack.Records) != len(b.Attack.Records) {
			t.Fatalf("%s: record counts differ: %d vs %d", name, len(a.Attack.Records), len(b.Attack.Records))
		}
		for i := range a.Attack.Records {
			if a.Attack.Records[i] != b.Attack.Records[i] {
				t.Fatalf("%s: record %d differs: %+v vs %+v", name, i, a.Attack.Records[i], b.Attack.Records[i])
			}
		}
	}
}

// TestParamValidation pins the constructor guards.
func TestParamValidation(t *testing.T) {
	design := cusum.DefaultDesign()
	good := baseParams()
	bad := []Params{
		{},
		{Victim: testVictim, VictimPort: 80, Duration: time.Minute, T0: 20 * time.Second},               // KeyBits 0
		{Victim: testVictim, VictimPort: 80, Duration: -time.Minute, T0: 20 * time.Second, KeyBits: 24}, // negative duration
		{Victim: testVictim, VictimPort: 80, Duration: time.Minute, KeyBits: 24},                        // T0 0
	}
	for i, p := range bad {
		if _, err := PulsingUnderFmin(p, design, 100, 0.8, 10); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := PulsingUnderFmin(good, design, 100, 1.5, 10); err == nil {
		t.Error("frac >= 1 accepted: that flood is not under fmin")
	}
	if _, err := SlowDrip(good, 8, 1<<21); err == nil {
		t.Error("key count beyond the churn space accepted")
	}
	if _, err := SpoofChurn(good, 0); err == nil {
		t.Error("zero-rate churn accepted")
	}
	if _, err := FlashCrowd(good, netip.Prefix{}, 25, time.Millisecond); err == nil {
		t.Error("invalid stub prefix accepted")
	}
	if _, _, err := VictimClients(good, netip.Prefix{}, 1, time.Millisecond, time.Minute); err == nil {
		t.Error("invalid client stub accepted")
	}
}
