package experiment

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// renderAll renders an experiment's artifacts (text + CSV) into one
// byte slice so two executions can be compared exactly.
func renderAll(t *testing.T, id string, opts Options) []byte {
	t.Helper()
	e, ok := LookupAny(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	arts, err := e.Func(opts)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	for _, a := range arts {
		if err := a.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelMatchesSequential is the determinism contract of the
// worker pool: the same seed must produce byte-identical artifacts at
// Parallelism 1 and Parallelism 8, for the Monte-Carlo tables and the
// sensitivity figures alike.
func TestParallelMatchesSequential(t *testing.T) {
	for _, id := range []string{"table2", "table3", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			seq := renderAll(t, id, Options{Seed: 5, Runs: 2, Fast: true, Parallelism: 1})
			par := renderAll(t, id, Options{Seed: 5, Runs: 2, Fast: true, Parallelism: 8})
			if !bytes.Equal(seq, par) {
				t.Errorf("parallel output diverges from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
			}
		})
	}
}

func TestForEachRunsEveryItem(t *testing.T) {
	for _, parallelism := range []int{0, 1, 3, 16} {
		const n = 37
		var hits [n]atomic.Int64
		err := ForEach(parallelism, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("parallelism %d: item %d ran %d times", parallelism, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := ForEach(4, 10, func(i int) error {
		switch i {
		case 2:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("err = %v, want the lowest-index error", err)
	}
	if err := ForEach(4, 10, func(int) error { return nil }); err != nil {
		t.Errorf("clean pool returned %v", err)
	}
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("empty pool returned %v", err)
	}
}

func TestForEachRunsAllItemsDespiteError(t *testing.T) {
	// No early cancellation: a failing item must not stop later items
	// (the completed set would otherwise depend on scheduling).
	var ran atomic.Int64
	err := ForEach(2, 20, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("first item fails")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 20 {
		t.Errorf("ran %d items, want all 20", got)
	}
}

func TestCollectPreservesIndexOrder(t *testing.T) {
	out, err := collect(8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if _, err := collect(8, 4, func(i int) (int, error) {
		return 0, fmt.Errorf("item %d", i)
	}); err == nil {
		t.Error("collect swallowed error")
	}
}

func TestSeedForStableAndDistinct(t *testing.T) {
	a := seedFor(1, "sweep", 42, 7)
	if b := seedFor(1, "sweep", 42, 7); a != b {
		t.Errorf("same identity, different seeds: %d vs %d", a, b)
	}
	seen := map[int64]string{}
	for base := int64(0); base < 3; base++ {
		for _, label := range []string{"sweep", "traceback"} {
			for v := uint64(0); v < 20; v++ {
				id := fmt.Sprintf("(%d,%s,%d)", base, label, v)
				s := seedFor(base, label, v)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both map to %d", prev, id, s)
				}
				seen[s] = id
			}
		}
	}
}

func TestNormalizeParallelism(t *testing.T) {
	if got := normalizeParallelism(0); got != DefaultParallelism() {
		t.Errorf("normalize(0) = %d, want %d", got, DefaultParallelism())
	}
	if got := normalizeParallelism(-3); got != DefaultParallelism() {
		t.Errorf("normalize(-3) = %d", got)
	}
	if got := normalizeParallelism(5); got != 5 {
		t.Errorf("normalize(5) = %d", got)
	}
}
