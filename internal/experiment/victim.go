package experiment

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/eventsim"
	"repro/internal/flood"
	"repro/internal/packet"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// This file scores the detector against the victim it is supposed to
// protect: the paper argues fmin = a*Kbar/t0 is the smallest flood the
// SYN-dog can see, and that anything below it "can be tolerated by the
// victim server". The victim experiment checks both halves with a real
// kernel model — the two-queue (SYN queue + accept queue) server from
// internal/tcp — by replaying the same flood into a detection run and
// into an event-driven victim simulation, then comparing the alarm
// time against the first legitimate connection that actually fails.

// victimSite is one deployment row: a background profile plus the
// victim kernel's queue sizing. The backlogs are scaled to the site
// (a campus OC-12 server farm vs a small access link) so the victim's
// steady-state absorption rate Backlog/HalfOpenTimeout clears 2x fmin:
// at 2x the detector needs ~3 observation periods, which is about how
// long a just-overflowing queue takes to hurt, so a victim sized to
// the marginal band turns the 2x row into "no outage" and leaves the
// damaging 4x/8x floods — where detection is a period or less — to
// lose the race decisively.
type victimSite struct {
	name    string
	profile trace.Profile
	// backlog is the victim's SYN-queue capacity; acceptBacklog bounds
	// the second (accept) queue drained by the application.
	backlog       int
	acceptBacklog int
	// onset is the flood start, aligned to a period boundary so alarm
	// delay converts exactly to seconds after onset.
	onset time.Duration
}

// victimMultiples are the flood rates evaluated, as multiples of the
// site's empirical fmin. Below 1x the paper predicts silence on both
// sides (no alarm, no failure); above it the alarm must win the race.
var victimMultiples = []float64{0.5, 1, 2, 4, 8}

func victimSites(opts Options) []victimSite {
	unc := trace.UNC() // 30 min span
	auck := trace.Auckland()
	if opts.Fast {
		unc.Span = 15 * time.Minute
		auck.Span = 40 * time.Minute
	} else {
		auck.Span = 80 * time.Minute
	}
	return []victimSite{
		{name: "UNC", profile: unc, backlog: 8192, acceptBacklog: 64, onset: 5 * time.Minute},
		{name: "Auckland", profile: auck, backlog: 512, acceptBacklog: 64, onset: 15 * time.Minute},
	}
}

func victimFloodDuration(opts Options) time.Duration {
	if opts.Fast {
		return 6 * time.Minute
	}
	return 10 * time.Minute
}

// victimCell is one (site, rate) outcome: the detection side and both
// victim passes, reduced to the quantities the table and the pinned
// test consume.
type victimCell struct {
	site string
	mult float64 // rate as a multiple of fmin
	rate float64 // SYN/s
	fmin float64 // empirical a*Kbar/t0 for this site

	// Detection side.
	detected   bool
	falseAlarm bool
	alarmAfter time.Duration // alarm time after onset; -1 when silent

	// Victim side, cookies off.
	firstFail       time.Duration // first legit failure after onset; -1 when none
	synDrops        uint64        // SYN-queue overflow drops
	listenOverflows uint64        // accept-queue overflow drops
	// Victim side, tcp_syncookies=1 rerun of the same flood.
	cookies uint64 // stateless cookies sent once the SYN queue filled
}

// victimPrep is the per-site shared state: background counts for the
// detection fast path and the empirical fmin derived from a flood-free
// pass of the same detector configuration.
type victimPrep struct {
	site   victimSite
	counts *trace.PeriodCounts
	fmin   float64
}

func victimPrepare(opts Options) ([]victimPrep, error) {
	sites := victimSites(opts)
	return collect(opts.Parallelism, len(sites), func(i int) (victimPrep, error) {
		s := sites[i]
		bg, err := trace.Generate(s.profile, seedFor(opts.Seed, "victim-bg:"+s.name))
		if err != nil {
			return victimPrep{}, err
		}
		cfg := core.Config{}.Normalized()
		counts, err := bg.Aggregate(cfg.T0)
		if err != nil {
			return victimPrep{}, err
		}
		// fmin comes from the detector's own flood-free Kbar, not the
		// paper's nominal site constant: the test must hold for the
		// traffic actually generated, not the traffic the paper saw.
		agent, err := core.NewAgent(core.Config{})
		if err != nil {
			return victimPrep{}, err
		}
		if _, err := agent.ProcessCounts(counts); err != nil {
			return victimPrep{}, err
		}
		if agent.Alarmed() {
			return victimPrep{}, fmt.Errorf("experiment: victim baseline at %s false-alarmed", s.name)
		}
		fmin := cfg.Offset * agent.KBar() / cfg.T0.Seconds()
		return victimPrep{site: s, counts: counts, fmin: fmin}, nil
	})
}

// victimOutcome is one event-driven victim pass.
type victimOutcome struct {
	firstFail time.Duration // absolute sim time; -1 when no legit attempt failed
	stats     tcp.ServerStats
}

// victimReplay drives the two-queue victim kernel with the attack SYN
// stream plus a steady stream of legitimate clients (one attempt every
// 500 ms, each a real tcp.Client with the kernel's SYN retransmission
// schedule, so a failure takes the genuine 3+6+12 s to surface).
// Spoofed attack sources are drawn from 240.0.0.0/4 and never answer
// the SYN/ACK — which is exactly how they pin down backlog entries.
func victimReplay(attack []trace.Record, site victimSite, floodDur time.Duration, cookies bool) (victimOutcome, error) {
	sim := eventsim.New()
	const rtt = 5 * time.Millisecond

	type peerKey struct {
		addr netip.Addr
		port uint16
	}
	clients := make(map[peerKey]*tcp.Client)

	var server *tcp.Server
	serverSend := func(seg packet.Segment) {
		cl, ok := clients[peerKey{addr: seg.IP.Dst, port: seg.TCP.DstPort}]
		if !ok {
			return // spoofed source: no host there to answer
		}
		sim.After(rtt, func(now time.Duration) { cl.Deliver(now, seg) })
	}
	server, err := tcp.NewServer(sim, victimAddr, 80, serverSend, tcp.ServerConfig{
		Backlog:          site.backlog,
		AcceptBacklog:    site.acceptBacklog,
		CookieOnOverflow: cookies,
		CookieSecret:     0x59_d0_9 ^ uint64(site.backlog),
	})
	if err != nil {
		return victimOutcome{}, err
	}

	out := victimOutcome{firstFail: -1}

	// Legitimate attempts start half a minute before the flood (to
	// show the healthy baseline) and run through it. SYN times are
	// strictly increasing and every failure fires at synTime + 21 s,
	// so the first OnFailed is the earliest.
	start := site.onset - 30*time.Second
	end := site.onset + floodDur
	i := 0
	for ts := start; ts < end; ts += 500 * time.Millisecond {
		addr := netip.AddrFrom4([4]byte{10, 77, byte(i >> 8), byte(i)})
		port := uint16(20000 + i)
		cl, err := tcp.NewClient(sim, addr, port, victimAddr, 80, uint32(7000+i),
			func(seg packet.Segment) {
				sim.After(rtt, func(now time.Duration) { server.Deliver(now, seg) })
			}, tcp.ClientConfig{})
		if err != nil {
			return victimOutcome{}, err
		}
		cl.OnFailed = func(now time.Duration) {
			if out.firstFail < 0 || now < out.firstFail {
				out.firstFail = now
			}
		}
		clients[peerKey{addr: addr, port: port}] = cl
		connect := cl
		if _, err := sim.At(ts, func(time.Duration) { connect.Connect() }); err != nil {
			return victimOutcome{}, err
		}
		i++
	}

	for _, r := range attack {
		if r.Kind != packet.KindSYN || r.Dst != victimAddr {
			continue
		}
		syn := packet.Build(r.Src, victimAddr, r.SrcPort, 80, 1, 0, packet.FlagSYN)
		if _, err := sim.At(r.Ts, func(now time.Duration) { server.Deliver(now, syn) }); err != nil {
			return victimOutcome{}, err
		}
	}
	sim.Run()
	out.stats = server.Stats()
	return out, nil
}

// victimCells runs the full grid: per (site, multiple) cell, one
// detection pass over the shared background counts and two victim
// passes over the identical flood realization (RunConfig and the
// replay derive the flood from the same seed, so the detector and the
// victim see the same attack).
func victimCells(opts Options) ([]victimCell, error) {
	opts.applyDefaults()
	preps, err := victimPrepare(opts)
	if err != nil {
		return nil, err
	}
	floodDur := victimFloodDuration(opts)
	n := len(preps) * len(victimMultiples)
	return collect(opts.Parallelism, n, func(i int) (victimCell, error) {
		prep := preps[i/len(victimMultiples)]
		mult := victimMultiples[i%len(victimMultiples)]
		site := prep.site
		rate := mult * prep.fmin
		seed := seedFor(opts.Seed, "victim-cell:"+site.name, math.Float64bits(mult))

		cell := victimCell{
			site: site.name, mult: mult, rate: rate, fmin: prep.fmin,
			alarmAfter: -1, firstFail: -1,
		}

		res, err := Run(RunConfig{
			Agent:            core.Config{},
			BackgroundCounts: prep.counts,
			Rate:             rate,
			Onset:            site.onset,
			FloodDuration:    floodDur,
			Seed:             seed,
		})
		if err != nil {
			return victimCell{}, err
		}
		cell.detected = res.Detected
		cell.falseAlarm = res.FalseAlarm
		if res.AlarmPeriod >= 0 && !res.FalseAlarm {
			// The alarm latches when the period closes; onset sits on a
			// period boundary, so this is exact.
			t0 := core.Config{}.Normalized().T0
			cell.alarmAfter = time.Duration(res.AlarmPeriod+1)*t0 - site.onset
		}

		// The victim passes replay the same flood realization Run used:
		// RunConfig.floodConfig derives its seed as Seed+7919.
		fl, err := flood.GenerateTrace(flood.Config{
			Start:      site.onset,
			Duration:   floodDur,
			Pattern:    flood.Constant{PerSecond: rate},
			Victim:     victimAddr,
			VictimPort: 80,
			Seed:       seed + 7919,
		})
		if err != nil {
			return victimCell{}, err
		}
		stateful, err := victimReplay(fl.Records, site, floodDur, false)
		if err != nil {
			return victimCell{}, err
		}
		if stateful.firstFail >= 0 {
			cell.firstFail = stateful.firstFail - site.onset
		}
		cell.synDrops = stateful.stats.SynDropped
		cell.listenOverflows = stateful.stats.ListenOverflows

		withCookies, err := victimReplay(fl.Records, site, floodDur, true)
		if err != nil {
			return victimCell{}, err
		}
		cell.cookies = withCookies.stats.CookieActivations
		return cell, nil
	})
}

// AblationVictim renders the race the deployment story depends on:
// does the first-mile alarm fire before the victim's first legitimate
// connection dies? Rates at and below fmin must be harmless on both
// sides; above it the alarm must come first, leaving time to trigger
// ingress filtering before users notice.
func AblationVictim(opts Options) ([]Artifact, error) {
	cells, err := victimCells(opts)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "victim",
		Title: "Victim two-queue model: alarm time vs first legitimate connection failure" +
			" (fmin = a*Kbar/t0, empirical per site)",
		Columns: []string{"Site", "fi/fmin", "fi (SYN/s)", "Alarm (s after onset)",
			"First legit failure (s)", "SYN-queue drops", "Listen overflows", "Cookies sent", "Alarm first?"},
	}
	for _, c := range cells {
		alarm, fail, verdict := "-", "-", "no outage"
		if c.alarmAfter >= 0 {
			alarm = fmt.Sprintf("%.0f", c.alarmAfter.Seconds())
		}
		if c.falseAlarm {
			alarm = "FALSE ALARM"
		}
		if c.firstFail >= 0 {
			fail = fmt.Sprintf("%.0f", c.firstFail.Seconds())
			if c.detected && c.alarmAfter >= 0 && c.alarmAfter < c.firstFail {
				verdict = "yes"
			} else {
				verdict = "NO"
			}
		}
		t.Rows = append(t.Rows, []string{
			c.site,
			trimFloat(c.mult),
			trimFloat(c.rate),
			alarm,
			fail,
			fmt.Sprintf("%d", c.synDrops),
			fmt.Sprintf("%d", c.listenOverflows),
			fmt.Sprintf("%d", c.cookies),
			verdict,
		})
	}
	return []Artifact{t}, nil
}
