// Package experiment reproduces every table and figure of the paper's
// evaluation (Section 4): the trace-feature summary (Table 1), the
// SYN-SYN/ACK dynamics (Figures 3-4), the CUSUM statistic under normal
// operation (Figure 5), the detection-performance tables at UNC and
// Auckland (Tables 2-3), the flood-sensitivity figures (Figures 7-8)
// and the site-tuned sensitivity improvement (Figure 9).
//
// Experiments are addressed by id ("table2", "fig5", ...) through
// Registry, which cmd/experiment and the benchmarks share, so the
// binary and `go test -bench` regenerate identical artifacts.
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a rendered result table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Series is one labeled line of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a rendered result figure: one or more series over a common
// axis semantic.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteCSV writes the figure's data in long form:
// series,x,y — directly consumable by any plotting tool.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range f.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// plotWidth/plotHeight size the ASCII rendering.
const (
	plotWidth  = 72
	plotHeight = 16
)

// Render writes a compact ASCII plot of every series plus a data
// summary, enough to eyeball the shape the paper's figure shows.
func (f *Figure) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "  y: %s, x: %s\n", f.YLabel, f.XLabel)

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		sb.WriteString("  (no data)\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	marks := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(plotWidth-1))
			row := plotHeight - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(plotHeight-1))
			if col >= 0 && col < plotWidth && row >= 0 && row < plotHeight {
				grid[row][col] = mark
			}
		}
	}
	for i, line := range grid {
		yAxis := ymax - (ymax-ymin)*float64(i)/float64(plotHeight-1)
		fmt.Fprintf(&sb, "  %10.3f |%s\n", yAxis, string(line))
	}
	fmt.Fprintf(&sb, "  %10s +%s\n", "", strings.Repeat("-", plotWidth))
	fmt.Fprintf(&sb, "  %10s  %-10.3f%*s\n", "", xmin, plotWidth-10, fmt.Sprintf("%.3f", xmax))
	for si, s := range f.Series {
		ymaxS := math.Inf(-1)
		for _, y := range s.Y {
			ymaxS = math.Max(ymaxS, y)
		}
		fmt.Fprintf(&sb, "  [%c] %-24s n=%-5d max(y)=%.4g\n",
			marks[si%len(marks)], s.Label, len(s.X), ymaxS)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	_ = f.Render(&sb)
	return sb.String()
}
