package experiment

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

func runnerFixture(t testing.TB) (*trace.Trace, *trace.PeriodCounts) {
	t.Helper()
	p := trace.UNC()
	p.Span = 12 * time.Minute
	bg, err := trace.Generate(p, 17)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := bg.Aggregate(core.DefaultObservationPeriod)
	if err != nil {
		t.Fatal(err)
	}
	return bg, counts
}

// TestRunnerMatchesRun pins the pooling contract behind Sweep: one
// Runner reused across many cells produces exactly what a fresh Run
// with the same shared counts produces, scalars and all. The series
// are intentionally nil — that is the Runner's documented trade.
func TestRunnerMatchesRun(t *testing.T) {
	_, counts := runnerFixture(t)
	r, err := NewRunner(core.Config{}, counts)
	if err != nil {
		t.Fatal(err)
	}
	cells := []RunConfig{
		{Rate: 60, Onset: 3 * time.Minute, FloodDuration: 8 * time.Minute, Seed: 7},
		{Rate: 5, Onset: 5 * time.Minute, FloodDuration: 4 * time.Minute, Seed: 8},
		{Rate: 200, Onset: time.Minute, FloodDuration: 10 * time.Minute, Seed: 9},
		{Pattern: flood.Bursty{PeakRate: 40, On: 30 * time.Second, Off: 30 * time.Second},
			Onset: 2 * time.Minute, FloodDuration: 6 * time.Minute, Seed: 10},
	}
	// Two passes over the cells, so every cell also runs on a Runner
	// dirtied by a different cell before it.
	for pass := 0; pass < 2; pass++ {
		for i, cell := range cells {
			got, err := r.Run(cell)
			if err != nil {
				t.Fatal(err)
			}
			cell.BackgroundCounts = counts
			want, err := Run(cell)
			if err != nil {
				t.Fatal(err)
			}
			if got.Statistic != nil || got.X != nil {
				t.Errorf("pass %d cell %d: Runner materialized series", pass, i)
			}
			want.Statistic, want.X = nil, nil
			equalRunResults(t, got, want)
		}
	}
}

// TestRunnerAllocs is the per-cell loop allocation pin: a cell on a
// reused Runner stays within a couple of small allocations (pattern
// boxing, the alarm copy) — against ~30 for a record-level cell.
func TestRunnerAllocs(t *testing.T) {
	_, counts := runnerFixture(t)
	r, err := NewRunner(core.Config{}, counts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Rate: 60, Onset: 3 * time.Minute, FloodDuration: 8 * time.Minute, Seed: 7}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 3 {
		t.Errorf("Runner.Run allocates %.1f times per cell, want <= 3", avg)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(core.Config{}, nil); err == nil {
		t.Error("nil counts accepted")
	}
	if _, err := NewRunner(core.Config{}, &trace.PeriodCounts{T0: time.Second}); err == nil {
		t.Error("empty counts accepted")
	}
	if _, err := NewRunner(core.Config{}, &trace.PeriodCounts{
		T0: time.Second, OutSYN: []float64{1}, InSYNACK: []float64{1},
	}); err == nil {
		t.Error("counts with mismatched T0 accepted")
	}
	_, counts := runnerFixture(t)
	r, err := NewRunner(core.Config{}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(RunConfig{Onset: time.Minute, FloodDuration: time.Minute}); err == nil {
		t.Error("cell without rate or pattern accepted")
	}
}

// TestSweepPresetBackground: handing Sweep the very trace it would
// have generated changes nothing, on either path.
func TestSweepPresetBackground(t *testing.T) {
	p := trace.UNC()
	p.Span = 12 * time.Minute
	cfg := SweepConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rates:         []float64{60},
		Runs:          2,
		OnsetMin:      2 * time.Minute,
		OnsetMax:      4 * time.Minute,
		FloodDuration: 8 * time.Minute,
		Seed:          5,
		Parallelism:   2,
	}
	for _, recordLevel := range []bool{false, true} {
		cfg.RecordLevel = recordLevel
		cfg.Background = nil
		want, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := trace.Generate(p, seedFor(cfg.Seed, "sweep-background:"+p.Name))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Background = bg
		got, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) || got[0] != want[0] {
			t.Errorf("recordLevel=%v: preset background diverged: %+v vs %+v", recordLevel, got, want)
		}
	}
}
