package experiment

import (
	"bytes"
	"testing"
)

// evasionRows renders the evasion matrix once and returns the raw
// bytes plus the rows indexed by scenario name.
func evasionRows(t *testing.T, opts Options) ([]byte, map[string][]string) {
	t.Helper()
	arts, err := AblationEvasion(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("expected 1 artifact, got %d", len(arts))
	}
	tab, ok := arts[0].(*Table)
	if !ok {
		t.Fatalf("artifact is %T, want *Table", arts[0])
	}
	rows := make(map[string][]string, len(tab.Rows))
	for _, r := range tab.Rows {
		rows[r[0]] = r
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rows
}

// TestEvasionMatrixDeterministic pins the reproducibility contract:
// the same seed renders the scenario matrix byte-identically (text and
// CSV), including across different parallelism settings, and a
// different seed still produces the full scenario set.
func TestEvasionMatrixDeterministic(t *testing.T) {
	opts := Options{Seed: 1, Fast: true, Parallelism: 4}
	first, _ := evasionRows(t, opts)
	second, _ := evasionRows(t, opts)
	if !bytes.Equal(first, second) {
		t.Errorf("same seed diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}
	opts.Parallelism = 1
	serial, _ := evasionRows(t, opts)
	if !bytes.Equal(first, serial) {
		t.Errorf("parallelism changed the matrix:\n--- par=4 ---\n%s\n--- par=1 ---\n%s", first, serial)
	}
}

// TestEvasionMatrixOutcomes pins the qualitative shape of the matrix
// that the issue demands: the flash crowd must raise zero alarms and
// lose no legitimate handshakes; the theory-guided pulsing attacks
// must evade; every hostile detected scenario must carry a
// time-to-detect, an attribution verdict and a survival score; and the
// single-source flood must be attributed precisely enough that keyed
// mitigation passes almost no attack traffic.
func TestEvasionMatrixOutcomes(t *testing.T) {
	_, rows := evasionRows(t, Options{Seed: 1, Fast: true, Parallelism: 4})
	for _, name := range []string{"single-source", "pulse-under-fmin", "pulse-under-delay",
		"slow-drip", "spoof-churn", "flash-crowd"} {
		if _, ok := rows[name]; !ok {
			t.Fatalf("scenario %q missing from matrix", name)
		}
	}
	const (
		colAlarm    = 2
		colTTD      = 3
		colPrec     = 4
		colRecall   = 5
		colMode     = 6
		colPass     = 7
		colSurvival = 8
	)

	fc := rows["flash-crowd"]
	if fc[colAlarm] != "no" {
		t.Errorf("flash crowd alarmed: %v", fc)
	}
	if fc[colSurvival] != "1.00" {
		t.Errorf("flash crowd lost legitimate handshakes: %v", fc)
	}
	if fc[colMode] != "none" {
		t.Errorf("flash crowd triggered mitigation: %v", fc)
	}

	for _, name := range []string{"pulse-under-fmin", "pulse-under-delay"} {
		if r := rows[name]; r[colAlarm] != "no" {
			t.Errorf("%s should evade detection: %v", name, r)
		}
	}

	for _, name := range []string{"single-source", "slow-drip", "spoof-churn"} {
		r := rows[name]
		if r[colAlarm] != "yes" {
			t.Errorf("%s should be detected at the aggregate: %v", name, r)
			continue
		}
		if r[colTTD] == "-" {
			t.Errorf("%s detected but no time-to-detect: %v", name, r)
		}
		if r[colRecall] == "-" {
			t.Errorf("%s detected but no attribution verdict: %v", name, r)
		}
		if r[colPass] == "-" || r[colSurvival] == "" {
			t.Errorf("%s detected but mitigation unscored: %v", name, r)
		}
	}

	ss := rows["single-source"]
	if ss[colPrec] != "1.00" || ss[colRecall] != "1.00" {
		t.Errorf("single source should be attributed exactly: %v", ss)
	}
	if ss[colMode] != "keyed" {
		t.Errorf("attributed flood should get keyed mitigation: %v", ss)
	}

	// The many-source scenarios defeat /24 attribution by design; the
	// loop must fall back to blanket throttling rather than silently
	// doing nothing.
	for _, name := range []string{"slow-drip", "spoof-churn"} {
		r := rows[name]
		if r[colMode] != "blanket" {
			t.Errorf("%s should force the blanket fallback: %v", name, r)
		}
		if r[colRecall] != "0.00" {
			t.Errorf("%s should report zero keyed recall, got: %v", name, r)
		}
	}
}
