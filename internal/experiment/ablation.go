package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/detect"
	"repro/internal/eventsim"
	"repro/internal/flood"
	"repro/internal/ingest"
	"repro/internal/iptrace"
	"repro/internal/mitigate"
	"repro/internal/packet"
	"repro/internal/trace"
)

// This file implements the ablation studies DESIGN.md section 5 calls
// out: claims the paper makes in prose but does not tabulate. Each
// returns artifacts through the same interface as the paper
// experiments and is registered in AblationRegistry.

// AblationRegistry lists the ablation studies (beyond the paper's own
// tables and figures).
func AblationRegistry() []Experiment {
	return []Experiment{
		{"ablation-pattern", "Flood-pattern insensitivity (constant vs bursty vs ramp)", AblationPattern},
		{"ablation-t0", "Observation-period (t0) insensitivity", AblationT0},
		{"ablation-alpha", "EWMA memory (alpha) sensitivity of the K-bar estimate", AblationAlpha},
		{"ablation-h2a", "The h = 2a design rule: threshold vs delay and false alarms", AblationH2A},
		{"ablation-baselines", "SYN-dog CUSUM vs baseline detectors", AblationBaselines},
		{"ablation-state", "Stateless agent vs per-connection defense state under flood", AblationState},
		{"ablation-traceback", "Source location cost: SYN-dog vs PPM IP traceback", AblationTraceback},
		{"ablation-lastmile", "First-mile (SYN-SYN/ACK) vs last-mile (SYN-FIN) deployment", AblationLastMile},
		{"ablation-deployment", "Incremental deployability: partial SYN-dog coverage", AblationDeployment},
		{"ablation-posterior", "Sequential vs posterior change detection", AblationPosterior},
		{"attribution", "Per-source attribution: keyed recall/precision vs aggregate detection", AblationAttribution},
		{"evasion", "Adversarial evasion matrix with closed-loop mitigation scoring", AblationEvasion},
		{"victim", "Victim two-queue model: alarm time vs first real connection failure", AblationVictim},
		{"distributed", "Distributed detection: fusing censored summaries from 4 monitors", AblationDistributed},
	}
}

// LookupAny searches the paper registry first, then the ablations.
func LookupAny(id string) (Experiment, bool) {
	if e, ok := Lookup(id); ok {
		return e, true
	}
	for _, e := range AblationRegistry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ablationProfile is the shared background: Auckland-like, fast spans
// in fast mode.
func ablationProfile(opts Options) trace.Profile {
	p := trace.Auckland()
	if opts.Fast {
		p.Span = 40 * time.Minute
	} else {
		p.Span = 80 * time.Minute
	}
	return p
}

// mcOutcome is the reduced result of one Monte-Carlo repetition:
// everything the ablation tables aggregate. Detected and FalseAlarm
// are mutually exclusive (Run never reports both).
type mcOutcome struct {
	detected   bool
	periods    float64
	falseAlarm bool
}

// outcomeOf reduces a RunResult to its aggregable core.
func outcomeOf(res RunResult) mcOutcome {
	return mcOutcome{
		detected:   res.Detected,
		periods:    float64(res.DetectionPeriods),
		falseAlarm: res.FalseAlarm,
	}
}

// mcRuns fans opts.Runs repetitions of body out over the worker pool
// and returns the outcomes in run order.
func mcRuns(opts Options, body func(run int) (mcOutcome, error)) ([]mcOutcome, error) {
	return collect(opts.Parallelism, opts.Runs, body)
}

// mcAggregate folds outcomes into the three table statistics.
func mcAggregate(outs []mcOutcome) (detected int, totalDelay float64, falseAlarms int) {
	for _, o := range outs {
		if o.falseAlarm {
			falseAlarms++
			continue
		}
		if o.detected {
			detected++
			totalDelay += o.periods
		}
	}
	return detected, totalDelay, falseAlarms
}

// AblationPattern verifies the paper's claim (Section 4.2) that
// detection depends only on flood volume, not its transient shape:
// constant, bursty and ramp floods of equal mean rate should be
// detected with comparable delay.
func AblationPattern(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	const meanRate = 8.0 // SYN/s, ≈4.5x the Auckland floor
	patterns := []struct {
		name string
		pat  flood.Pattern
	}{
		{"constant", flood.Constant{PerSecond: meanRate}},
		{"bursty 50% duty", flood.Bursty{PeakRate: 2 * meanRate, On: 30 * time.Second, Off: 30 * time.Second}},
		{"ramp 0->2x", flood.Ramp{StartRate: 0, EndRate: 2 * meanRate, Span: 10 * time.Minute}},
	}
	t := &Table{
		ID:      "ablation-pattern",
		Title:   fmt.Sprintf("Equal-volume floods (mean %.0f SYN/s): pattern does not matter", meanRate),
		Columns: []string{"Pattern", "Detection Prob.", "Mean Detection Time (t0)", "Runs"},
	}
	for _, pc := range patterns {
		pc := pc
		outs, err := mcRuns(opts, func(run int) (mcOutcome, error) {
			res, err := Run(RunConfig{
				Profile:       p,
				Agent:         core.Config{},
				Pattern:       pc.pat,
				Onset:         15 * time.Minute,
				FloodDuration: 10 * time.Minute,
				Seed:          opts.Seed + int64(run)*13,
			})
			if err != nil {
				return mcOutcome{}, err
			}
			return outcomeOf(res), nil
		})
		if err != nil {
			return nil, err
		}
		detected, totalDelay, _ := mcAggregate(outs)
		mean := "-"
		if detected > 0 {
			mean = fmt.Sprintf("%.2f", totalDelay/float64(detected))
		}
		t.Rows = append(t.Rows, []string{
			pc.name,
			fmt.Sprintf("%.2f", float64(detected)/float64(opts.Runs)),
			mean,
			fmt.Sprintf("%d", opts.Runs),
		})
	}
	return []Artifact{t}, nil
}

// AblationT0 verifies the Section 3.1 claim that the algorithm is
// insensitive to the observation-period choice: sweeping t0 should
// leave detection intact (wall-clock delay scales with t0, the floor
// fmin = a·K̄(t0)/t0 stays put because K̄ scales with t0 too).
func AblationT0(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	t := &Table{
		ID:      "ablation-t0",
		Title:   "Observation-period sweep, 8 SYN/s flood at Auckland-like site",
		Columns: []string{"t0", "Detection Prob.", "Mean delay (periods)", "Mean delay (wall)", "False alarms"},
	}
	for _, t0 := range []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second, 40 * time.Second} {
		t0 := t0
		outs, err := mcRuns(opts, func(run int) (mcOutcome, error) {
			res, err := Run(RunConfig{
				Profile:       p,
				Agent:         core.Config{T0: t0},
				Rate:          8,
				Onset:         15 * time.Minute,
				FloodDuration: 10 * time.Minute,
				Seed:          opts.Seed + int64(run)*17,
			})
			if err != nil {
				return mcOutcome{}, err
			}
			return outcomeOf(res), nil
		})
		if err != nil {
			return nil, err
		}
		detected, totalDelay, falseAlarms := mcAggregate(outs)
		prob := float64(detected) / float64(opts.Runs)
		meanPeriods, meanWall := "-", "-"
		if detected > 0 {
			mp := totalDelay / float64(detected)
			meanPeriods = fmt.Sprintf("%.2f", mp)
			meanWall = (time.Duration(mp * float64(t0))).Round(time.Second).String()
		}
		t.Rows = append(t.Rows, []string{
			t0.String(),
			fmt.Sprintf("%.2f", prob),
			meanPeriods,
			meanWall,
			fmt.Sprintf("%d", falseAlarms),
		})
	}
	return []Artifact{t}, nil
}

// AblationAlpha sweeps the EWMA memory of the K-bar estimator. The
// paper leaves alpha open; the result shows the detector is flat
// across a wide band because the flood never touches the SYN/ACK
// stream that K-bar tracks.
func AblationAlpha(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	t := &Table{
		ID:      "ablation-alpha",
		Title:   "EWMA memory sweep, 5 SYN/s flood at Auckland-like site",
		Columns: []string{"alpha", "Detection Prob.", "Mean Detection Time (t0)", "False alarms"},
	}
	for _, alpha := range []float64{0.5, 0.7, 0.9, 0.98} {
		alpha := alpha
		outs, err := mcRuns(opts, func(run int) (mcOutcome, error) {
			res, err := Run(RunConfig{
				Profile:       p,
				Agent:         core.Config{Alpha: alpha},
				Rate:          5,
				Onset:         15 * time.Minute,
				FloodDuration: 10 * time.Minute,
				Seed:          opts.Seed + int64(run)*19,
			})
			if err != nil {
				return mcOutcome{}, err
			}
			return outcomeOf(res), nil
		})
		if err != nil {
			return nil, err
		}
		detected, totalDelay, falseAlarms := mcAggregate(outs)
		mean := "-"
		if detected > 0 {
			mean = fmt.Sprintf("%.2f", totalDelay/float64(detected))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.2f", float64(detected)/float64(opts.Runs)),
			mean,
			fmt.Sprintf("%d", falseAlarms),
		})
	}
	return []Artifact{t}, nil
}

// AblationH2A examines the h = 2a design rule by scaling the
// threshold N = k·(h−a)·3 for k around the paper's operating point:
// lower thresholds detect faster but erode the false-alarm margin on
// flood-free traffic (Eq. 5: margin shrinks exponentially).
func AblationH2A(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	t := &Table{
		ID:      "ablation-h2a",
		Title:   "Threshold scaling around the h=2a rule (a=0.35), 5 SYN/s flood",
		Columns: []string{"N", "designed delay (t0)", "Detection Prob.", "Mean Detection Time (t0)", "False alarms", "max benign yn"},
	}
	// One background per run, generated through the singleflight cache
	// and aggregated to per-period counts exactly once; the counts then
	// back the flood-free pass and the flooded pass of all four
	// threshold scales without touching the records again.
	bgCache := trace.NewCache()
	type h2aBG struct {
		bg     *trace.Trace
		counts *trace.PeriodCounts
	}
	bgs, err := collect(opts.Parallelism, opts.Runs, func(run int) (h2aBG, error) {
		bg, err := bgCache.Generate(p, opts.Seed+int64(run)*23)
		if err != nil {
			return h2aBG{}, err
		}
		counts, err := bg.Aggregate(core.DefaultObservationPeriod)
		if err != nil {
			return h2aBG{}, err
		}
		return h2aBG{bg: bg, counts: counts}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, scale := range []float64{0.5, 1, 2, 4} {
		n := 1.05 * scale
		type h2aOutcome struct {
			detected   bool
			periods    float64
			quietAlarm bool
			maxBenign  float64
		}
		outs, err := collect(opts.Parallelism, opts.Runs, func(run int) (h2aOutcome, error) {
			seed := opts.Seed + int64(run)*23

			// Flood-free pass for the false-alarm margin, driven from
			// the shared per-period counts.
			quiet, err := core.NewAgent(core.Config{Threshold: n})
			if err != nil {
				return h2aOutcome{}, err
			}
			if _, err := quiet.ProcessCounts(bgs[run].counts); err != nil {
				return h2aOutcome{}, err
			}
			o := h2aOutcome{quietAlarm: quiet.Alarmed()}
			for _, y := range quiet.Statistics() {
				o.maxBenign = math.Max(o.maxBenign, y)
			}

			// Flooded pass over the same background counts.
			res, err := Run(RunConfig{
				Profile:          p,
				Background:       bgs[run].bg,
				BackgroundCounts: bgs[run].counts,
				Agent:            core.Config{Threshold: n},
				Rate:             5,
				Onset:            15 * time.Minute,
				FloodDuration:    10 * time.Minute,
				Seed:             seed,
			})
			if err != nil {
				return h2aOutcome{}, err
			}
			o.detected = res.Detected && !res.FalseAlarm
			o.periods = float64(res.DetectionPeriods)
			return o, nil
		})
		if err != nil {
			return nil, err
		}
		detected, totalDelay, falseAlarms := 0, 0.0, 0
		maxBenign := 0.0
		for _, o := range outs {
			if o.quietAlarm {
				falseAlarms++
			}
			maxBenign = math.Max(maxBenign, o.maxBenign)
			if o.detected {
				detected++
				totalDelay += o.periods
			}
		}
		mean := "-"
		if detected > 0 {
			mean = fmt.Sprintf("%.2f", totalDelay/float64(detected))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", n),
			fmt.Sprintf("%.1f", n/0.35),
			fmt.Sprintf("%.2f", float64(detected)/float64(opts.Runs)),
			mean,
			fmt.Sprintf("%d", falseAlarms),
			fmt.Sprintf("%.3f", maxBenign),
		})
	}
	return []Artifact{t}, nil
}

// AblationBaselines runs SYN-dog's CUSUM rule head-to-head against
// the baseline detectors of internal/detect on identical per-period
// observations: a slow-onset flood plus flood-free false-alarm trials.
// Every rule runs behind the unified ingest.Detector interface, driven
// by ReplayCounts — the counts fast path of the streaming pipeline.
func AblationBaselines(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	t0 := core.DefaultObservationPeriod

	// All four rules — including the CUSUM — wrap the detect-level
	// implementations so the comparison stays exactly period-for-period
	// (the agent-level CUSUM adds warmup semantics the baselines lack).
	mkDetectors := func(kBarGuess float64) ([]ingest.Detector, error) {
		cus, err := detect.NewCusumDetector(0.35, 1.05, 0.9)
		if err != nil {
			return nil, err
		}
		static, err := detect.NewStaticThreshold(2.5 * kBarGuess)
		if err != nil {
			return nil, err
		}
		ratio, err := detect.NewRatioDetector(2, 1)
		if err != nil {
			return nil, err
		}
		ada, err := detect.NewAdaptiveEWMA(0.9, 6, 10)
		if err != nil {
			return nil, err
		}
		return []ingest.Detector{
			ingest.WrapBaseline(cus), ingest.WrapBaseline(static),
			ingest.WrapBaseline(ratio), ingest.WrapBaseline(ada),
		}, nil
	}

	// Build per-period count series from one aggregated background: the
	// flood-free pass shares the flooded pass's counts, and the flood
	// rides in as an AddFlood overlay instead of a record-level merge.
	series := func(pc *trace.PeriodCounts, seed int64, rate float64) (*trace.PeriodCounts, int, error) {
		onset := 15 * time.Minute
		if rate > 0 {
			floodSYN, err := flood.CountPerPeriod(flood.Config{
				Start: onset, Duration: 10 * time.Minute,
				Pattern: flood.Constant{PerSecond: rate},
				Victim:  victimAddr, VictimPort: 80, Seed: seed + 3,
			}, pc.T0, pc.Periods())
			if err != nil {
				return nil, 0, err
			}
			pc = pc.AddFlood(floodSYN)
		}
		return pc, int(onset / t0), nil
	}

	table := &Table{
		ID:      "ablation-baselines",
		Title:   "Decision rules on identical observations (stealthy 3 SYN/s flood; Auckland-like site)",
		Columns: []string{"Detector", "Detection Prob.", "Mean delay (t0)", "False alarms (flood-free)"},
	}
	type detOutcome struct {
		name       string
		detected   bool
		delay      float64
		falseAlarm bool
	}
	perRun, err := collect(opts.Parallelism, opts.Runs, func(run int) ([]detOutcome, error) {
		seed := opts.Seed + int64(run)*29
		bg, err := trace.Generate(p, seed)
		if err != nil {
			return nil, err
		}
		pc, err := bg.Aggregate(t0)
		if err != nil {
			return nil, err
		}
		flooded, onsetPeriod, err := series(pc, seed, 3)
		if err != nil {
			return nil, err
		}
		quiet, _, err := series(pc, seed, 0)
		if err != nil {
			return nil, err
		}
		dets, err := mkDetectors(100)
		if err != nil {
			return nil, err
		}
		outs := make([]detOutcome, len(dets))
		for i, d := range dets {
			o := detOutcome{name: d.Name()}
			if err := ingest.ReplayCounts(d, flooded); err != nil {
				return nil, err
			}
			if al := d.FirstAlarm(); al != nil && al.Period >= onsetPeriod {
				o.detected = true
				o.delay = float64(al.Period - onsetPeriod)
			}
			outs[i] = o
		}
		// Fresh detectors for the flood-free pass.
		dets, err = mkDetectors(100)
		if err != nil {
			return nil, err
		}
		for i, d := range dets {
			if err := ingest.ReplayCounts(d, quiet); err != nil {
				return nil, err
			}
			outs[i].falseAlarm = d.FirstAlarm() != nil
		}
		return outs, nil
	})
	if err != nil {
		return nil, err
	}

	type agg struct {
		detected, falseAlarms int
		delay                 float64
	}
	results := map[string]*agg{}
	order := []string{}
	for _, outs := range perRun {
		for _, o := range outs {
			r, ok := results[o.name]
			if !ok {
				r = &agg{}
				results[o.name] = r
				order = append(order, o.name)
			}
			if o.detected {
				r.detected++
				r.delay += o.delay
			}
			if o.falseAlarm {
				r.falseAlarms++
			}
		}
	}
	for _, name := range order {
		r := results[name]
		mean := "-"
		if r.detected > 0 {
			mean = fmt.Sprintf("%.2f", r.delay/float64(r.detected))
		}
		table.Rows = append(table.Rows, []string{
			name,
			fmt.Sprintf("%.2f", float64(r.detected)/float64(opts.Runs)),
			mean,
			fmt.Sprintf("%d", r.falseAlarms),
		})
	}
	return []Artifact{table}, nil
}

// AblationState contrasts the memory a stateless SYN-dog needs with
// the per-connection state a Synkill-style defense accumulates under
// the same flood — the reason the paper insists on statelessness
// (Section 1: stateful defenses are themselves floodable).
func AblationState(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	t := &Table{
		ID:      "ablation-state",
		Title:   "Defense memory under a 10-minute flood (entries tracked)",
		Columns: []string{"Flood rate (SYN/s)", "SYN-dog state (words)", "Per-connection defense (entries)", "Ratio"},
	}
	// SYN-dog per-agent state: two period counters, K-bar, yn, config
	// — a handful of machine words regardless of load.
	const syndogWords = 8
	t.Columns = append(t.Columns, "SYN-proxy peak entries (measured)")
	rates := []float64{100, 1000, 14000}
	rows, err := collect(opts.Parallelism, len(rates), func(i int) ([]string, error) {
		rate := rates[i]
		// A stateful monitor must track each half-open connection for
		// its 75 s lifetime: steady state = rate * 75 entries.
		entries := int(rate * 75)
		measured := "-"
		if rate <= 1000 {
			// Empirical check against the SYN-proxy substrate: bots
			// that validate cookies and then stall grow its pending
			// table at exactly rate x lifetime.
			peak, err := proxyPeakState(rate)
			if err != nil {
				return nil, err
			}
			measured = fmt.Sprintf("%d", peak)
		}
		return []string{
			trimFloat(rate),
			fmt.Sprintf("%d", syndogWords),
			fmt.Sprintf("%d", entries),
			fmt.Sprintf("%.0fx", float64(entries)/syndogWords),
			measured,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []Artifact{t}, nil
}

// proxyPeakState floods a SYN proxy with cookie-validating bots whose
// server-side handshake stalls, at the given connection rate for 80
// simulated seconds, and returns the proxy state high-water mark.
func proxyPeakState(rate float64) (int, error) {
	sim := eventsim.New()
	proxyAddr := netip.MustParseAddr("10.9.0.1")
	var proxy *mitigate.SynProxy
	var lastSynAck packet.Segment
	proxy, err := mitigate.NewSynProxy(sim, proxyAddr, 80, 7,
		func(seg packet.Segment) { lastSynAck = seg },
		func(packet.Segment) { /* stalled server */ },
	)
	if err != nil {
		return 0, err
	}
	total := int(rate * 80)
	gap := time.Duration(float64(time.Second) / rate)
	for i := 0; i < total; i++ {
		i := i
		sim.At(time.Duration(i)*gap, func(now time.Duration) {
			// Spread bots over addresses so (addr, port) keys never
			// collide and every validation creates a fresh entry.
			botAddr := netip.AddrFrom4([4]byte{11, 0, byte(i / 60000), 1})
			port := uint16(1024 + i%60000)
			proxy.DeliverFromClient(now, packet.Build(botAddr, proxyAddr, port, 80,
				uint32(i), 0, packet.FlagSYN))
			proxy.DeliverFromClient(now, packet.Build(botAddr, proxyAddr, port, 80,
				uint32(i)+1, lastSynAck.TCP.Seq+1, packet.FlagACK))
		})
	}
	sim.RunUntil(80 * time.Second)
	return proxy.Stats().PeakPending, nil
}

// AblationTraceback quantifies the paper's "without resorting to
// expensive IP traceback" claim: a victim using edge-sampling
// probabilistic packet marking (Savage et al., the canonical p = 1/25)
// needs hundreds-to-thousands of attack packets AND marking support at
// every router on the path before it can name the attack's entry
// point; the source-side SYN-dog names its stub immediately at alarm
// time, after its fixed ≈3-observation-period detection delay, with
// zero infrastructure beyond the one leaf router.
func AblationTraceback(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	const markProb = 1.0 / 25
	t := &Table{
		ID:    "ablation-traceback",
		Title: "Packets a victim needs to locate the source: PPM / iTrace traceback vs SYN-dog",
		Columns: []string{
			"Path length (routers)",
			"PPM packets (bound)",
			"PPM packets (measured)",
			"iTrace packets (bound, p=1/20000)",
			"Routers that must participate",
			"SYN-dog packets needed at victim",
		},
	}
	for _, hops := range []int{5, 10, 15, 20, 25} {
		hops := hops
		path, err := iptrace.LinearPath(hops)
		if err != nil {
			return nil, err
		}
		type tbOutcome struct {
			n  int
			ok bool
		}
		// Each campaign draws from its own (hops, run)-derived stream,
		// so the measured column is schedule-independent.
		outs, err := collect(opts.Parallelism, opts.Runs, func(run int) (tbOutcome, error) {
			rng := rand.New(rand.NewSource(seedFor(opts.Seed, "traceback", uint64(hops), uint64(run))))
			campaign, err := iptrace.NewCampaign(path, markProb, rng)
			if err != nil {
				return tbOutcome{}, err
			}
			n, succeeded := campaign.PacketsToReconstruct(2_000_000)
			return tbOutcome{n: n, ok: succeeded}, nil
		})
		if err != nil {
			return nil, err
		}
		total, ok := 0, true
		for _, o := range outs {
			if !o.ok {
				ok = false
				break
			}
			total += o.n
		}
		measured := "-"
		if ok {
			measured = fmt.Sprintf("%d", total/opts.Runs)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", hops),
			fmt.Sprintf("%.0f", iptrace.ExpectedPackets(hops, markProb)),
			measured,
			fmt.Sprintf("%.0f", iptrace.ITraceExpectedPackets(hops, iptrace.DefaultITraceProbability)),
			fmt.Sprintf("%d", hops),
			"0 (located at the source router)",
		})
	}
	return []Artifact{t}, nil
}

// AblationLastMile contrasts the two Figure 6 deployments during one
// distributed attack of total rate V split evenly over A stubs:
//
//   - each first-mile SYN-dog sees only V/A outgoing SYNs but an
//     alarm directly names the flooding stub;
//   - the last-mile (victim-side) SYN-FIN agent sees the whole V and
//     detects almost immediately, but learns nothing about where the
//     flood comes from (spoofed sources - IP traceback still needed).
//
// The sweep over A shows the attacker's dilution strategy: spreading
// wider slows (and below fmin, defeats) the first mile while the last
// mile is indifferent - and conversely only the first mile ever
// locates the sources.
func AblationLastMile(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	const totalRate = 200.0 // V in SYN/s
	stubProfile := ablationProfile(opts)
	t := &Table{
		ID:    "ablation-lastmile",
		Title: fmt.Sprintf("Distributed flood of V=%.0f SYN/s split over A stubs", totalRate),
		Columns: []string{
			"A (stubs)", "fi=V/A seen per first mile",
			"First-mile prob", "First-mile delay (t0)",
			"Last-mile prob", "Last-mile delay (t0)",
			"Who can name the source",
		},
	}
	for _, stubs := range []int{10, 40, 200} {
		fi := totalRate / float64(stubs)

		// First mile: standard Run at rate fi.
		fmOuts, err := mcRuns(opts, func(run int) (mcOutcome, error) {
			res, err := Run(RunConfig{
				Profile:       stubProfile,
				Agent:         core.Config{},
				Rate:          fi,
				Onset:         15 * time.Minute,
				FloodDuration: 10 * time.Minute,
				Seed:          opts.Seed + int64(run)*31,
			})
			if err != nil {
				return mcOutcome{}, err
			}
			return outcomeOf(res), nil
		})
		if err != nil {
			return nil, err
		}
		fmDetected, fmDelay, _ := mcAggregate(fmOuts)

		// Last mile: victim-side agent sees the aggregate V regardless
		// of A. Build the victim view: benign open/close pairs plus
		// the flipped aggregate flood.
		lmOuts, err := mcRuns(opts, func(run int) (mcOutcome, error) {
			seed := opts.Seed + int64(run)*37
			onset := 15 * time.Minute
			victimCounts, onsetPeriod, err := victimView(stubProfile, totalRate, onset, seed)
			if err != nil {
				return mcOutcome{}, err
			}
			agent, err := core.NewLastMileAgent(core.Config{WarmupPeriods: 10})
			if err != nil {
				return mcOutcome{}, err
			}
			if _, err := agent.ProcessCounts(victimCounts); err != nil {
				return mcOutcome{}, err
			}
			var o mcOutcome
			if al := agent.FirstAlarm(); al != nil && al.Period >= onsetPeriod {
				o.detected = true
				o.periods = float64(al.Period - onsetPeriod)
			}
			return o, nil
		})
		if err != nil {
			return nil, err
		}
		lmDetected, lmDelay, _ := mcAggregate(lmOuts)

		fmt1 := func(detected int, delay float64) (string, string) {
			prob := fmt.Sprintf("%.2f", float64(detected)/float64(opts.Runs))
			if detected == 0 {
				return prob, "-"
			}
			return prob, fmt.Sprintf("%.2f", delay/float64(detected))
		}
		fmProb, fmMean := fmt1(fmDetected, fmDelay)
		lmProb, lmMean := fmt1(lmDetected, lmDelay)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", stubs),
			trimFloat(fi),
			fmProb, fmMean,
			lmProb, lmMean,
			"first mile only",
		})
	}
	return []Artifact{t}, nil
}

// victimView builds the victim-side per-period counts for the
// last-mile agent: the stub profile's own traffic reinterpreted as a
// server farm's balanced open/close load (by flipping directions),
// plus the aggregate flood overlaid as extra openings. Equivalent to
// merging the flipped traces and replaying them record by record, at
// the cost of one pass over the background.
func victimView(p trace.Profile, totalRate float64, onset time.Duration, seed int64) (*trace.PeriodCounts, int, error) {
	bg, err := trace.Generate(p, seed)
	if err != nil {
		return nil, 0, err
	}
	// Reinterpret: the profile's outbound connections become inbound
	// client connections at the victim (SYN in, FIN out) by flipping.
	counts, err := bg.Flip().AggregateLastMile(core.DefaultObservationPeriod)
	if err != nil {
		return nil, 0, err
	}
	// The flood's spoofed SYNs arrive at the victim as openings that
	// never close; CountPerPeriod draws the same arrival times the
	// flipped flood trace would carry.
	floodSYN, err := flood.CountPerPeriod(flood.Config{
		Start:      onset,
		Duration:   10 * time.Minute,
		Pattern:    flood.Constant{PerSecond: totalRate},
		Victim:     victimAddr,
		VictimPort: 80,
		Seed:       seed + 11,
	}, counts.T0, counts.Periods())
	if err != nil {
		return nil, 0, err
	}
	return counts.AddFlood(floodSYN), int(onset / core.DefaultObservationPeriod), nil
}

// AblationDeployment tests the paper's incremental-deployability claim
// ("works without requiring a wide installation of SYN-dogs"): with a
// fraction q of flooding stubs covered by a SYN-dog, the chance that
// at least one alarm fires — and hence one source is located and the
// campaign exposed — is 1-(1-p)^(q*A) for per-stub detection
// probability p. Partial deployment already yields near-certain
// exposure because each covered stub detects independently.
func AblationDeployment(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	const floodingStubs = 10
	const perStubRate = 8.0 // comfortably above the Auckland floor

	// Measure the per-stub detection probability once.
	outs, err := mcRuns(opts, func(run int) (mcOutcome, error) {
		res, err := Run(RunConfig{
			Profile:       p,
			Agent:         core.Config{},
			Rate:          perStubRate,
			Onset:         15 * time.Minute,
			FloodDuration: 10 * time.Minute,
			Seed:          opts.Seed + int64(run)*41,
		})
		if err != nil {
			return mcOutcome{}, err
		}
		return outcomeOf(res), nil
	})
	if err != nil {
		return nil, err
	}
	detected, _, _ := mcAggregate(outs)
	perStub := float64(detected) / float64(opts.Runs)

	t := &Table{
		ID: "ablation-deployment",
		Title: fmt.Sprintf("Incremental deployment: %d flooding stubs, per-stub detection prob %.2f",
			floodingStubs, perStub),
		Columns: []string{
			"Deployed fraction", "Covered flooding stubs",
			"P(at least one alarm)", "E[sources located]",
		},
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 1.0} {
		covered := int(frac * floodingStubs)
		pAny := 1 - math.Pow(1-perStub, float64(covered))
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprintf("%d", covered),
			fmt.Sprintf("%.3f", pAny),
			fmt.Sprintf("%.1f", perStub*float64(covered)),
		})
	}
	return []Artifact{t}, nil
}

// AblationPosterior contrasts the sequential CUSUM with the off-line
// posterior test on identical flood series (the §3.2 design choice):
// the sequential test raises its alarm a few periods after onset,
// while the posterior test must wait for the whole segment — its
// "delay" is the remainder of the capture — but pinpoints the onset
// more accurately after the fact.
func AblationPosterior(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := ablationProfile(opts)
	t := &Table{
		ID:    "ablation-posterior",
		Title: "Sequential (on-line) vs posterior (off-line) change detection, 8 SYN/s flood",
		Columns: []string{
			"Run", "Onset period",
			"Sequential alarm period", "Sequential delay (t0)",
			"Posterior change estimate", "Posterior |error| (t0)",
			"Posterior answers after",
		},
	}
	rows, err := collect(opts.Parallelism, opts.Runs, func(run int) ([]string, error) {
		res, err := Run(RunConfig{
			Profile:       p,
			Agent:         core.Config{},
			Rate:          8,
			Onset:         15 * time.Minute,
			FloodDuration: 10 * time.Minute,
			Seed:          opts.Seed + int64(run)*43,
		})
		if err != nil {
			return nil, err
		}
		// The posterior test analyzes the normalized observation series
		// Xn (the CUSUM input), exactly what an off-line analyst would
		// have collected — up to the end of the attack (a pulse has two
		// change points; the single-change-point estimator is applied
		// to the segment that contains only the onset).
		floodEnd := res.OnsetPeriod + int((10*time.Minute)/core.DefaultObservationPeriod)
		xs := res.X
		if floodEnd < len(xs) {
			xs = xs[:floodEnd]
		}
		post, err := cusum.PosteriorDetect(xs, cusum.PosteriorConfig{Seed: opts.Seed + int64(run)})
		if err != nil {
			return nil, err
		}
		seqDelay := "-"
		if res.Detected {
			seqDelay = fmt.Sprintf("%d", res.DetectionPeriods)
		}
		postIdx, postErr := "-", "-"
		if post.Change {
			postIdx = fmt.Sprintf("%d", post.Index)
			diff := post.Index - res.OnsetPeriod
			if diff < 0 {
				diff = -diff
			}
			postErr = fmt.Sprintf("%d", diff)
		}
		alarmPeriod := "-"
		if res.AlarmPeriod >= 0 {
			alarmPeriod = fmt.Sprintf("%d", res.AlarmPeriod)
		}
		return []string{
			fmt.Sprintf("%d", run),
			fmt.Sprintf("%d", res.OnsetPeriod),
			alarmPeriod,
			seqDelay,
			postIdx,
			postErr,
			fmt.Sprintf("%d periods (full capture)", len(xs)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return []Artifact{t}, nil
}
