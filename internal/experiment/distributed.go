package experiment

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/fusion"
	"repro/internal/ingest"
	"repro/internal/sourcetrack"
	"repro/internal/summary"
	"repro/internal/trace"
)

// This file measures what the fusion layer (internal/fusion) adds over
// independent per-site SYN-dogs: one flood split across M of 4
// heterogeneous sites, each flooded site receiving ~0.5x its own local
// sensitivity floor fmin_i = a·K̄_i/t0 — below every local detector's
// reach by construction — while the coordinator fuses the sites'
// censored per-period summaries through rank-based quantile
// normalization and recovers both the detection and the localization
// (which monitors, which spoofed /24s) that no single vantage can see.

// distCensor is the uplink censoring threshold λ for the experiment.
// The sites' quiet Xn sits near +0.1 (background SYNs that never get a
// SYN/ACK), while a flooded site adds ≈ 0.5·a = 0.175 on top, so
// λ = 0.08 censors a large share of quiet periods (counters-only on
// the wire — the bandwidth-capped regime the censored-fusion
// literature assumes) while flood periods always export in full.
const distCensor = 0.08

// distTruth returns the spoofed-source /24 for flooded site i; the
// blocks are disjoint so localization has an exact per-site answer.
func distTruth(i int) netip.Prefix {
	return netip.MustParsePrefix(fmt.Sprintf("198.18.%d.0/24", i))
}

// distSite is one vantage: its background trace and measured floor.
type distSite struct {
	name string
	bg   *trace.Trace
	fmin float64
}

// distOutcome reduces one M-cell to what the table reports.
type distOutcome struct {
	localAlarms int
	detected    bool
	falseAlarm  bool
	delay       int
	monitors    []string
	truthFound  int
}

// distReplaySite runs one site's (possibly flooded) trace through the
// streaming pipeline with a summary tap — the same construction the
// live fleet uses — and returns the local agent's verdict plus the
// full-fidelity summary series.
func distReplaySite(name string, tr *trace.Trace, t0 time.Duration) (bool, []summary.PeriodSummary, error) {
	agent, err := core.NewAgent(core.Config{T0: t0})
	if err != nil {
		return false, nil, err
	}
	tracker, err := sourcetrack.New(sourcetrack.Config{
		KeyBits:    24,
		MaxSources: 4096,
		Shards:     1,
		Agent:      core.Config{T0: t0},
	})
	if err != nil {
		return false, nil, err
	}
	var sums []summary.PeriodSummary
	tap := summary.NewTap(&summary.Summarizer{Monitor: name, Tracker: tracker}, tracker,
		func(ps summary.PeriodSummary) { sums = append(sums, ps) })
	p := &ingest.Pipeline{
		Source:   ingest.NewTraceSource(tr),
		Detector: ingest.WrapAgent(agent),
		T0:       t0,
		Sink:     tap.Sink,
		Tap:      tap,
	}
	if err := p.Run(); err != nil {
		return false, nil, err
	}
	return agent.Alarmed(), sums, nil
}

// AblationDistributed runs the distributed-detection experiment: a
// flood split across the first M of 4 sites (LBL, Harvard, UNC,
// Auckland backgrounds) at 0.5x each flooded site's own floor, per-site
// pipelines producing censored summaries, and a fusion coordinator
// ingesting all four streams in period order. For each M it reports
// the local alarm count (must stay 0 — the whole point), whether the
// fused statistic detected, the detection delay in periods, and the
// localized monitor set and spoofed /24 prefixes against ground truth.
func AblationDistributed(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	t0 := core.DefaultObservationPeriod
	span := 30 * time.Minute
	onset := 10 * time.Minute
	if opts.Fast {
		span = 12 * time.Minute
		onset = 4 * time.Minute
	}
	onsetP := int(onset / t0)

	// The four site backgrounds, generated once; every M-cell replays
	// them read-only and merges its own flood copies.
	profiles := []trace.Profile{trace.LBL(), trace.Harvard(), trace.UNC(), trace.Auckland()}
	sites, err := collect(opts.Parallelism, len(profiles), func(i int) (distSite, error) {
		p := profiles[i]
		p.Span = span
		bg, err := trace.Generate(p, seedFor(opts.Seed, "distributed-bg:"+p.Name))
		if err != nil {
			return distSite{}, err
		}
		counts, err := bg.Aggregate(t0)
		if err != nil {
			return distSite{}, err
		}
		var kbar float64
		for _, v := range counts.InSYNACK {
			kbar += v
		}
		kbar /= float64(counts.Periods())
		cfg := core.Config{T0: t0}.Normalized()
		return distSite{
			name: p.Name,
			bg:   bg,
			fmin: cfg.Offset * kbar / t0.Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	ms := []int{1, 2, 3, 4}
	wire := summary.Config{Censor: distCensor}
	// Each M-cell holds flooded copies of up to four site traces; cap
	// the fan-out like attribution does so memory stays flat.
	par := normalizeParallelism(opts.Parallelism)
	if par > 2 {
		par = 2
	}
	outs, err := collect(par, len(ms), func(mi int) (distOutcome, error) {
		m := ms[mi]
		// A slightly stiffer rule than the library defaults: with only
		// onset/t0 quiet periods of rank history the early quantiles are
		// coarse, so a longer neutral warmup and a higher threshold keep
		// the quiet prefix alarm-free while the dispersed flood — a
		// persistent positive shift of M/4 · ~0.9 — still crosses fast.
		// History is capped so the references mature (History/2 obs, the
		// point where they freeze during excursions instead of absorbing
		// the flood) within the quiet prefix even in the fast run.
		coord, err := fusion.NewCoordinator(fusion.Config{
			Expect:     len(sites),
			History:    20,
			MinHistory: 8,
			Offset:     0.35,
			Threshold:  1.4,
		})
		if err != nil {
			return distOutcome{}, err
		}
		var o distOutcome
		perSite := make([][]summary.PeriodSummary, len(sites))
		for i, site := range sites {
			tr := site.bg
			if i < m {
				fl, err := flood.GenerateTrace(flood.Config{
					Start:       onset,
					Duration:    span - onset,
					Pattern:     flood.Constant{PerSecond: 0.5 * site.fmin},
					Victim:      victimAddr,
					VictimPort:  80,
					SpoofPrefix: distTruth(i),
					Seed:        seedFor(opts.Seed, "distributed-flood", uint64(m), uint64(i)),
				})
				if err != nil {
					return distOutcome{}, err
				}
				tr = trace.Merge(site.bg.Name+"+flood", site.bg, fl)
				if tr.Span > span {
					tr.ClipSpan(span)
				}
			}
			alarmed, sums, err := distReplaySite(site.name, tr, t0)
			if err != nil {
				return distOutcome{}, err
			}
			if alarmed {
				o.localAlarms++
			}
			perSite[i] = sums
		}

		// Deliver in period order round-robin — each summary censored
		// to its wire form, exactly what the uplink would POST.
		periods := len(perSite[0])
		for p := 0; p < periods; p++ {
			for i := range sites {
				if p < len(perSite[i]) {
					coord.Ingest([]summary.PeriodSummary{perSite[i][p].Censor(wire)})
				}
			}
		}

		if al := coord.FirstAlarm(); al != nil {
			if al.Index < onsetP {
				o.falseAlarm = true
				return o, nil
			}
			o.detected = true
			o.delay = al.Index - onsetP
			if loc := coord.AlarmLocalization(); loc != nil {
				o.monitors = loc.Monitors
				for i := 0; i < m; i++ {
					for _, pfx := range loc.Prefixes {
						if pfx == distTruth(i).String() {
							o.truthFound++
							break
						}
					}
				}
			}
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}

	fmins := make([]string, len(sites))
	for i, s := range sites {
		fmins[i] = fmt.Sprintf("%s %.1f", s.name, s.fmin)
	}
	t := &Table{
		ID: "distributed",
		Title: fmt.Sprintf("Distributed detection: flood split over M of 4 sites at 0.5x local fmin (λ=%.2f; fmin: %s)",
			distCensor, strings.Join(fmins, ", ")),
		Columns: []string{"M (flooded sites)", "fi per site (SYN/s)", "Local alarms",
			"Fusion detects", "Delay (t0)", "Localized monitors", "Truth /24s found"},
	}
	for mi, m := range ms {
		o := outs[mi]
		rates := make([]string, m)
		for i := 0; i < m; i++ {
			rates[i] = fmt.Sprintf("%.1f", 0.5*sites[i].fmin)
		}
		detected, delay, mons, truth := "no", "-", "-", "-"
		if o.falseAlarm {
			detected = "FALSE ALARM"
		}
		if o.detected {
			detected = "yes"
			delay = fmt.Sprintf("%d", o.delay)
			sorted := append([]string(nil), o.monitors...)
			sort.Strings(sorted)
			mons = strings.Join(sorted, ", ")
			truth = fmt.Sprintf("%d/%d", o.truthFound, m)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			strings.Join(rates, ", "),
			fmt.Sprintf("%d", o.localAlarms),
			detected,
			delay,
			mons,
			truth,
		})
	}
	return []Artifact{t}, nil
}
