package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/sourcetrack"
	"repro/internal/trace"
)

// This file measures what the keyed engine (internal/sourcetrack)
// adds over the paper's aggregate detector: not just "a flood left
// this network" but *which* source prefix it left from. One flooding
// stub hides inside a merged four-site background; the aggregate
// SYN-dog must clear the pooled sensitivity floor fmin_agg = a·K̄/t0
// over the *combined* SYN/ACK volume, while each /24 key only has to
// clear its own (tiny) floor — so attribution detects floods the
// aggregate cannot see, and names the source when both see it.

// attributionTruth is the spoofed-source block of the attribution
// flood: a /24 inside the UNC site, so at /24 keying the ground-truth
// answer is exactly this prefix.
var attributionTruth = netip.MustParsePrefix("152.2.77.0/24")

// attrOutcome is one Monte-Carlo repetition of the attribution
// experiment, reduced to what the table aggregates.
type attrOutcome struct {
	// aggDetected/aggFalse mirror RunResult for the aggregate agent.
	aggDetected bool
	aggFalse    bool
	// predicted is the number of keys alarmed inside the flood window;
	// truthIn reports whether the truth key is among them.
	predicted int
	truthIn   bool
	// rank is the truth key's 1-based position in the ranked source
	// list (0 when not tracked at all).
	rank int
	// delay is the truth key's detection delay in periods (valid only
	// when truthIn).
	delay float64
}

// AblationAttribution runs the per-source attribution experiment: a
// constant-rate flood spoofing sources from one /24 inside UNC,
// buried in the merged LBL+Harvard+UNC+Auckland background. For each
// rate (expressed against the aggregate floor fmin_agg) it reports
// the aggregate detector's detection probability next to the keyed
// engine's recall (truth /24 alarmed inside the flood window),
// precision (alarmed keys that are the truth key), the truth key's
// rank in the Sources() ordering, and its detection delay.
func AblationAttribution(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	// Every repetition merges and replays the ~0.5M-record four-site
	// mix twice (aggregate agent + tracker); cap the repetitions so
	// `-run all` stays tractable.
	runs := opts.Runs
	if runs > 8 {
		runs = 8
	}
	span := 20 * time.Minute
	onsetMin, onsetMax := 6*time.Minute, 9*time.Minute
	floodDur := 8 * time.Minute
	if opts.Fast {
		span = 8 * time.Minute
		onsetMin, onsetMax = 2*time.Minute, 3*time.Minute
		floodDur = 4 * time.Minute
	}

	// The four site backgrounds at a unified span, generated once and
	// merged once; every cell replays the merge read-only.
	profiles := []trace.Profile{trace.LBL(), trace.Harvard(), trace.UNC(), trace.Auckland()}
	bgs, err := collect(opts.Parallelism, len(profiles), func(i int) (*trace.Trace, error) {
		p := profiles[i]
		p.Span = span
		return trace.Generate(p, seedFor(opts.Seed, "attribution-bg:"+p.Name))
	})
	if err != nil {
		return nil, err
	}
	merged := bgs[0]
	for _, bg := range bgs[1:] {
		merged = trace.Merge("4-site", merged, bg)
	}

	// The aggregate floor over the pooled background, from Eq. 8:
	// fmin_agg = a·K̄_agg/t0 where K̄_agg is the mean per-period
	// SYN/ACK volume of the merged trace. Measured, not assumed, so
	// the rate multipliers stay honest in fast mode too.
	agentCfg := core.Config{}.Normalized()
	counts, err := merged.Aggregate(agentCfg.T0)
	if err != nil {
		return nil, err
	}
	var kbar float64
	for _, v := range counts.InSYNACK {
		kbar += v
	}
	kbar /= float64(counts.Periods())
	fminAgg := agentCfg.Offset * kbar / agentCfg.T0.Seconds()

	mults := []float64{0.5, 2, 8}
	cells := len(mults) * runs
	// Each in-flight cell holds its own flooded copy of the merged
	// trace; bound the fan-out so memory stays flat regardless of the
	// machine's CPU count (determinism never depends on parallelism).
	par := normalizeParallelism(opts.Parallelism)
	if par > 4 {
		par = 4
	}
	outs, err := collect(par, cells, func(i int) (attrOutcome, error) {
		mult := mults[i/runs]
		run := i % runs
		rng := rand.New(rand.NewSource(seedFor(opts.Seed, "attribution-cell",
			math.Float64bits(mult), uint64(run))))
		onset := onsetMin + time.Duration(rng.Int63n(int64(onsetMax-onsetMin)))
		fl, err := flood.GenerateTrace(flood.Config{
			Start:       onset,
			Duration:    floodDur,
			Pattern:     flood.Constant{PerSecond: mult * fminAgg},
			Victim:      victimAddr,
			VictimPort:  80,
			SpoofPrefix: attributionTruth,
			Seed:        rng.Int63(),
		})
		if err != nil {
			return attrOutcome{}, err
		}
		mixed := trace.Merge(merged.Name+"+flood", merged, fl)
		if mixed.Span > merged.Span {
			mixed.ClipSpan(merged.Span)
		}

		agent, err := core.NewAgent(core.Config{})
		if err != nil {
			return attrOutcome{}, err
		}
		if _, err := agent.ProcessTrace(mixed); err != nil {
			return attrOutcome{}, err
		}
		res := resultFromAgent(agent, RunConfig{Onset: onset, FloodDuration: floodDur}, false)

		tk, err := sourcetrack.New(sourcetrack.Config{
			KeyBits:    24,
			MaxSources: 4096,
			Shards:     1,
			Agent:      core.Config{},
		})
		if err != nil {
			return attrOutcome{}, err
		}
		if err := tk.ProcessTrace(mixed); err != nil {
			return attrOutcome{}, err
		}

		t0 := agent.Config().T0
		onsetP := int(onset / t0)
		endP := int((onset + floodDur) / t0)
		out := attrOutcome{aggDetected: res.Detected, aggFalse: res.FalseAlarm}
		for ri, s := range tk.Sources(0) {
			if s.Key == attributionTruth {
				out.rank = ri + 1
			}
			if !s.Alarmed || s.AlarmPeriod < onsetP || s.AlarmPeriod > endP+1 {
				continue
			}
			out.predicted++
			if s.Key == attributionTruth {
				out.truthIn = true
				out.delay = float64(s.AlarmPeriod - onsetP)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "attribution",
		Title: fmt.Sprintf("Per-source attribution in a 4-site background (truth %v, fmin_agg = %.1f SYN/s)",
			attributionTruth, fminAgg),
		Columns: []string{"fi/fmin_agg", "fi (SYN/s)", "Aggregate Det.", "Keyed Recall",
			"Keyed Precision", "Truth Rank", "Keyed Delay (t0)", "Runs"},
	}
	for mi, mult := range mults {
		var aggDet, recall, precision, rankSum, delaySum float64
		ranked, hits := 0, 0
		for run := 0; run < runs; run++ {
			o := outs[mi*runs+run]
			if o.aggDetected && !o.aggFalse {
				aggDet++
			}
			if o.truthIn {
				recall++
				delaySum += o.delay
				hits++
			}
			if o.predicted == 0 {
				precision++ // vacuously precise: nothing accused
			} else if o.truthIn {
				precision += 1 / float64(o.predicted)
			}
			if o.rank > 0 {
				rankSum += float64(o.rank)
				ranked++
			}
		}
		n := float64(runs)
		rank, delay := "-", "-"
		if ranked > 0 {
			rank = fmt.Sprintf("%.1f", rankSum/float64(ranked))
		}
		if hits > 0 {
			if d := delaySum / float64(hits); d < 1 {
				delay = "<1"
			} else {
				delay = fmt.Sprintf("%.2f", d)
			}
		}
		t.Rows = append(t.Rows, []string{
			trimFloat(mult),
			fmt.Sprintf("%.1f", mult*fminAgg),
			fmt.Sprintf("%.2f", aggDet/n),
			fmt.Sprintf("%.2f", recall/n),
			fmt.Sprintf("%.2f", precision/n),
			rank,
			delay,
			fmt.Sprintf("%d", runs),
		})
	}
	return []Artifact{t}, nil
}
