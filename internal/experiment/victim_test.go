package experiment

import (
	"strings"
	"testing"
)

// TestVictimCells pins the deployment claim end to end on the fast
// grid: at rates the detector is designed for (>= fmin), every flood
// strong enough to cause a real legitimate-connection failure must be
// alarmed strictly before that first failure; at and below fmin the
// victim's queues must not overflow at all, so the undetectable band
// is also the harmless band.
func TestVictimCells(t *testing.T) {
	cells, err := victimCells(Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(victimSites(Options{Fast: true})) * len(victimMultiples); len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	raced := 0
	for _, c := range cells {
		label := c.site + " " + trimFloat(c.mult) + "x"
		if c.fmin <= 0 {
			t.Fatalf("%s: nonpositive empirical fmin %v", label, c.fmin)
		}
		if c.falseAlarm {
			t.Errorf("%s: false alarm before onset", label)
		}
		if c.mult <= 1 && (c.synDrops > 0 || c.listenOverflows > 0) {
			t.Errorf("%s: queue overflow below the detectable floor (syn %d, listen %d)",
				label, c.synDrops, c.listenOverflows)
		}
		if c.mult <= 1 && c.firstFail >= 0 {
			t.Errorf("%s: legit connection failed at %v under a sub-fmin flood", label, c.firstFail)
		}
		if c.firstFail >= 0 {
			// The race the table exists for: alarm strictly before the
			// first legitimate failure.
			raced++
			if c.mult < 1 {
				continue // guarded above; don't double-report
			}
			if !c.detected {
				t.Errorf("%s: victim failed at %v but the flood went undetected", label, c.firstFail)
				continue
			}
			if c.alarmAfter < 0 || c.alarmAfter >= c.firstFail {
				t.Errorf("%s: alarm at %v did not precede first failure at %v",
					label, c.alarmAfter, c.firstFail)
			}
		}
		// The syncookies rerun of the same flood must have activated
		// whenever the stateful run overflowed: the overflow SYNs are
		// answered statelessly instead of dropped.
		if c.synDrops > 0 && c.cookies == 0 {
			t.Errorf("%s: %d SYN-queue drops but no cookie activations in the syncookies rerun",
				label, c.synDrops)
		}
		if c.synDrops == 0 && c.cookies > 0 {
			t.Errorf("%s: cookies sent (%d) without stateful overflow", label, c.cookies)
		}
	}
	if raced == 0 {
		t.Error("no cell produced a real connection failure; the race was never exercised")
	}
}

// TestAblationVictimTable smoke-renders the artifact and checks the
// registry routes to it.
func TestAblationVictimTable(t *testing.T) {
	if _, ok := LookupAny("victim"); !ok {
		t.Fatal("victim experiment not registered")
	}
	arts, err := AblationVictim(Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 {
		t.Fatalf("got %d artifacts, want 1", len(arts))
	}
	tab, ok := arts[0].(*Table)
	if !ok {
		t.Fatalf("artifact is %T, want *Table", arts[0])
	}
	if len(tab.Rows) != len(victimSites(Options{Fast: true}))*len(victimMultiples) {
		t.Errorf("table has %d rows", len(tab.Rows))
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"UNC", "Auckland", "no outage", "yes"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, sb.String())
		}
	}
}
