package experiment

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Artifact is a renderable experiment output (Table or Figure).
type Artifact interface {
	Render(w io.Writer) error
	WriteCSV(w io.Writer) error
}

// Compile-time checks.
var (
	_ Artifact = (*Table)(nil)
	_ Artifact = (*Figure)(nil)
)

// Options tune experiment execution.
type Options struct {
	// Seed drives all randomness; the same seed reproduces the same
	// artifacts bit-for-bit.
	Seed int64
	// Runs is the Monte-Carlo repetition count for Tables 2-3
	// (default 20).
	Runs int
	// Fast shrinks spans and run counts for smoke tests and CI; the
	// shapes survive, the statistics get noisier.
	Fast bool
	// Parallelism bounds how many workers fan out Monte-Carlo
	// repetitions and sweep cells; 0 means one worker per CPU
	// (runtime.GOMAXPROCS). Artifacts are bit-identical across all
	// Parallelism values for the same Seed: each work item derives its
	// own RNG from a stable hash of its identity, never a shared
	// stream.
	Parallelism int
	// RecordLevel routes every detection run through the record-level
	// merge-and-replay path instead of the default counts fast path.
	// The two produce bit-identical artifacts; record level exists for
	// equivalence testing and for inputs that only exist as records.
	RecordLevel bool
}

func (o *Options) applyDefaults() {
	if o.Runs == 0 {
		o.Runs = 20
		if o.Fast {
			o.Runs = 3
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Experiment couples an artifact id with its generator.
type Experiment struct {
	ID    string
	Title string
	Func  func(Options) ([]Artifact, error)
}

// Registry lists every reproducible artifact in the paper's order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Summary of the trace features", Table1},
		{"fig3", "Dynamics of SYN and SYN/ACK packets at LBL and Harvard", Fig3},
		{"fig4", "Dynamics of SYN and SYN/ACK packets at UNC and Auckland", Fig4},
		{"fig5", "CUSUM test statistics under normal operation", Fig5},
		{"fig6", "The trace-simulation flooding attack experiment (structural)", Fig6},
		{"table2", "Detection performance of the SYN-dog at UNC", Table2},
		{"fig7", "SYN flooding detection sensitivity at the SYN-dog of UNC", Fig7},
		{"table3", "Detection performance of the SYN-dog at Auckland", Table3},
		{"fig8", "SYN flooding detection sensitivity at the SYN-dog of Auckland", Fig8},
		{"fig9", "The improvement of flooding detection sensitivity", Fig9},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// shrinkSpan reduces a profile's span in fast mode, keeping at least
// minSpan.
func shrinkSpan(p trace.Profile, fast bool, minSpan time.Duration) trace.Profile {
	if !fast {
		return p
	}
	span := p.Span / 6
	if span < minSpan {
		span = minSpan
	}
	p.Span = span
	return p
}

// Table1 regenerates the trace-feature summary. LBL and Harvard are
// bi-directional captures; UNC and Auckland are reported as
// uni-directional halves, exactly as Table 1 lists them.
func Table1(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	t := &Table{
		ID:      "table1",
		Title:   "A summary of the trace features",
		Columns: []string{"Trace", "Duration", "Traffic type", "Records", "SYN", "SYN/ACK"},
	}
	row := func(tr *trace.Trace, traffic string, syn, synack int) []string {
		return []string{
			tr.Name,
			tr.Span.String(),
			traffic,
			fmt.Sprintf("%d", len(tr.Records)),
			fmt.Sprintf("%d", syn),
			fmt.Sprintf("%d", synack),
		}
	}
	profiles := trace.Profiles()
	groups, err := collect(opts.Parallelism, len(profiles), func(i int) ([][]string, error) {
		p := shrinkSpan(profiles[i], opts.Fast, 5*time.Minute)
		tr, err := trace.Generate(p, opts.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		s := tr.Summarize()
		if p.Bidirectional {
			return [][]string{row(tr, "Bi-directional", s.OutSYN+s.InSYN, s.InSYNACK+s.OutSYNACK)}, nil
		}
		in, out := tr.Split()
		inS, outS := in.Summarize(), out.Summarize()
		return [][]string{
			row(in, "Uni-directional", inS.InSYN, inS.InSYNACK),
			row(out, "Uni-directional", outS.OutSYN, outS.OutSYNACK),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		t.Rows = append(t.Rows, g...)
	}
	return []Artifact{t}, nil
}

// dynamicsFigure plots per-period SYN and SYN/ACK counts for one site
// (the building block of Figures 3 and 4). For bidirectional sites
// both directions are pooled, matching the paper's note that the LBL
// and Harvard figures aggregate both directions.
func dynamicsFigure(id string, p trace.Profile, seed int64) (*Figure, error) {
	tr, err := trace.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	const bin = 20 * time.Second
	n := int(tr.Span / bin)
	syn := make([]float64, n)
	ack := make([]float64, n)
	for _, r := range tr.Records {
		idx := int(r.Ts / bin)
		if idx >= n {
			continue
		}
		pool := p.Bidirectional
		switch {
		case r.Kind == packet.KindSYN && (pool || r.Dir == trace.DirOut):
			syn[idx]++
		case r.Kind == packet.KindSYNACK && (pool || r.Dir == trace.DirIn):
			ack[idx]++
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * bin.Minutes()
	}
	synLabel, ackLabel := "SYN", "SYN/ACK"
	if !p.Bidirectional {
		synLabel, ackLabel = "Outgoing SYN", "Incoming SYN/ACK"
	}
	return &Figure{
		ID:     id,
		Title:  fmt.Sprintf("The dynamics of SYN and SYN/ACK packets at %s", p.Name),
		XLabel: "Time (minutes)",
		YLabel: "Number of packets per 20 s",
		Series: []Series{
			{Label: synLabel, X: x, Y: syn},
			{Label: ackLabel, X: x, Y: ack},
		},
	}, nil
}

// dynamicsPanels renders the two dynamics panels of Figure 3 or 4,
// one worker per site.
func dynamicsPanels(opts Options, ids [2]string, profiles [2]trace.Profile, seeds [2]int64) ([]Artifact, error) {
	figs, err := collect(opts.Parallelism, len(ids), func(i int) (*Figure, error) {
		return dynamicsFigure(ids[i], shrinkSpan(profiles[i], opts.Fast, 5*time.Minute), seeds[i])
	})
	if err != nil {
		return nil, err
	}
	return []Artifact{figs[0], figs[1]}, nil
}

// Fig3 regenerates the LBL and Harvard dynamics.
func Fig3(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	return dynamicsPanels(opts,
		[2]string{"fig3a", "fig3b"},
		[2]trace.Profile{trace.LBL(), trace.Harvard()},
		[2]int64{opts.Seed, opts.Seed + 1})
}

// Fig4 regenerates the UNC and Auckland dynamics.
func Fig4(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	return dynamicsPanels(opts,
		[2]string{"fig4a", "fig4b"},
		[2]trace.Profile{trace.UNC(), trace.Auckland()},
		[2]int64{opts.Seed + 2, opts.Seed + 3})
}

// normalOperationFigure runs the detector over flood-free background
// traffic and plots yn (one panel of Figure 5). The trace is reduced
// to per-period counts first; ProcessCounts yields the same statistic
// stream as a record-level replay.
func normalOperationFigure(id string, p trace.Profile, seed int64, recordLevel bool) (*Figure, error) {
	tr, err := trace.Generate(p, seed)
	if err != nil {
		return nil, err
	}
	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		return nil, err
	}
	if recordLevel {
		_, err = agent.ProcessTrace(tr)
	} else {
		var counts *trace.PeriodCounts
		if counts, err = tr.Aggregate(agent.Config().T0); err == nil {
			_, err = agent.ProcessCounts(counts)
		}
	}
	if err != nil {
		return nil, err
	}
	ys := agent.Statistics()
	x := make([]float64, len(ys))
	for i := range x {
		x[i] = float64(i+1) * agent.Config().T0.Minutes()
	}
	title := fmt.Sprintf("CUSUM test statistics under normal operation at %s", p.Name)
	if agent.Alarmed() {
		title += " [FALSE ALARM]"
	}
	return &Figure{
		ID:     id,
		Title:  title,
		XLabel: "Time (minutes)",
		YLabel: "yn",
		Series: []Series{{Label: p.Name, X: x, Y: ys}},
	}, nil
}

// Fig5 regenerates the normal-operation statistic at Harvard, UNC and
// Auckland. The expected outcome: yn mostly zero, isolated spikes far
// below N = 1.05, zero false alarms.
func Fig5(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	sites := []trace.Profile{trace.Harvard(), trace.UNC(), trace.Auckland()}
	ids := []string{"fig5a", "fig5b", "fig5c"}
	out := make([]Artifact, len(sites))
	err := ForEach(opts.Parallelism, len(sites), func(i int) error {
		fig, err := normalOperationFigure(ids[i], shrinkSpan(sites[i], opts.Fast, 5*time.Minute), opts.Seed+int64(i)*11, opts.RecordLevel)
		if err != nil {
			return err
		}
		out[i] = fig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// uncSweepConfig returns the Table 2 methodology: UNC background,
// 10-minute constant flood, onset uniform in 3-9 minutes.
func uncSweepConfig(opts Options) SweepConfig {
	return SweepConfig{
		Profile:       trace.UNC(),
		Agent:         core.Config{},
		Rates:         []float64{37, 40, 45, 60, 80, 120},
		Runs:          opts.Runs,
		OnsetMin:      3 * time.Minute,
		OnsetMax:      9 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          opts.Seed,
		Parallelism:   opts.Parallelism,
		RecordLevel:   opts.RecordLevel,
	}
}

// Table2 regenerates the UNC detection-performance table.
func Table2(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	cfg := uncSweepConfig(opts)
	if opts.Fast {
		cfg.Profile.Span = 15 * time.Minute
		cfg.OnsetMin, cfg.OnsetMax = 2*time.Minute, 4*time.Minute
		cfg.FloodDuration = 8 * time.Minute
	}
	perfs, err := Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return []Artifact{PerformanceTable("table2",
		"Detection performance of the SYN-dog at UNC", perfs)}, nil
}

// sensitivityFigure plots yn for one run per rate (Figures 7 and 8),
// one worker per rate.
func sensitivityFigure(id, site string, p trace.Profile, agentCfg core.Config, rates []float64, onset time.Duration, seed int64, parallelism int, recordLevel bool) (*Figure, error) {
	series, err := collect(parallelism, len(rates), func(i int) (Series, error) {
		res, err := Run(RunConfig{
			Profile:       p,
			Agent:         agentCfg,
			Rate:          rates[i],
			Onset:         onset,
			FloodDuration: 10 * time.Minute,
			Seed:          seed + int64(i)*101,
			RecordLevel:   recordLevel,
		})
		if err != nil {
			return Series{}, err
		}
		t0 := agentCfg.T0
		if t0 == 0 {
			t0 = core.DefaultObservationPeriod
		}
		x := make([]float64, len(res.Statistic))
		for j := range x {
			x[j] = float64(j+1) * t0.Minutes()
		}
		return Series{
			Label: fmt.Sprintf("fi=%s SYN/s", trimFloat(rates[i])),
			X:     x,
			Y:     res.Statistic,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID:     id,
		Title:  fmt.Sprintf("SYN flooding detection sensitivity at the SYN-dog of %s", site),
		XLabel: "Time (minutes)",
		YLabel: "yn",
		Series: series,
	}, nil
}

// Fig7 regenerates the UNC sensitivity curves at fi = 45, 60, 80.
func Fig7(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := trace.UNC()
	if opts.Fast {
		p.Span = 15 * time.Minute
	}
	fig, err := sensitivityFigure("fig7", "UNC",
		p, core.Config{}, []float64{45, 60, 80}, 5*time.Minute, opts.Seed, opts.Parallelism, opts.RecordLevel)
	if err != nil {
		return nil, err
	}
	return []Artifact{fig}, nil
}

// aucklandSweepConfig returns the Table 3 methodology: Auckland
// background, onset uniform in 3-136 minutes.
func aucklandSweepConfig(opts Options) SweepConfig {
	return SweepConfig{
		Profile:       trace.Auckland(),
		Agent:         core.Config{},
		Rates:         []float64{1.5, 1.75, 2, 5, 10},
		Runs:          opts.Runs,
		OnsetMin:      3 * time.Minute,
		OnsetMax:      136 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          opts.Seed,
		Parallelism:   opts.Parallelism,
		RecordLevel:   opts.RecordLevel,
	}
}

// Table3 regenerates the Auckland detection-performance table.
func Table3(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	cfg := aucklandSweepConfig(opts)
	if opts.Fast {
		cfg.OnsetMax = 20 * time.Minute
		cfg.Profile.Span = 40 * time.Minute
	}
	perfs, err := Sweep(cfg)
	if err != nil {
		return nil, err
	}
	return []Artifact{PerformanceTable("table3",
		"Detection performance of the SYN-dog at Auckland", perfs)}, nil
}

// Fig8 regenerates the Auckland sensitivity curves at fi = 2, 5, 10.
func Fig8(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := trace.Auckland()
	if opts.Fast {
		p.Span = 40 * time.Minute
	}
	fig, err := sensitivityFigure("fig8", "Auckland",
		p, core.Config{}, []float64{2, 5, 10}, 20*time.Minute, opts.Seed, opts.Parallelism, opts.RecordLevel)
	if err != nil {
		return nil, err
	}
	return []Artifact{fig}, nil
}

// Fig9 regenerates the site-tuned sensitivity improvement: with
// a = 0.2 and N = 0.6 the UNC SYN-dog detects a 15 SYN/s flood that
// the universal parameters cannot see, without extra false alarms.
func Fig9(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	p := trace.UNC()
	if opts.Fast {
		p.Span = 15 * time.Minute
	}
	tuned := core.Config{Offset: 0.2, Threshold: 0.6}
	fig, err := sensitivityFigure("fig9", "UNC (tuned: a=0.2, N=0.6)",
		p, tuned, []float64{15}, 5*time.Minute, opts.Seed, opts.Parallelism, opts.RecordLevel)
	if err != nil {
		return nil, err
	}
	fig.Title = "The improvement of flooding detection sensitivity (fi = 15 SYN/s)"

	// Contrast series: the universal parameters on the same flood.
	res, err := Run(RunConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rate:          15,
		Onset:         5 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          opts.Seed,
		RecordLevel:   opts.RecordLevel,
	})
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(res.Statistic))
	for j := range x {
		x[j] = float64(j+1) * core.DefaultObservationPeriod.Minutes()
	}
	fig.Series = append(fig.Series, Series{
		Label: "default a=0.35, N=1.05",
		X:     x,
		Y:     res.Statistic,
	})
	return []Artifact{fig}, nil
}

// FalseAlarmSummary counts false alarms over the flood-free site
// traces with given parameters; it backs the Fig 9 claim "without
// incurring additional false alarms" and the fig5 numbers. Every
// (profile, seed) pair is an independent work item fanned out over
// parallelism workers (0 = one per CPU).
func FalseAlarmSummary(agentCfg core.Config, seeds []int64, profiles []trace.Profile, parallelism int) (*Table, error) {
	t := &Table{
		ID:      "false-alarms",
		Title:   "False alarms and peak yn on flood-free traces",
		Columns: []string{"Trace", "Seeds", "False alarms", "max yn"},
	}
	type cell struct {
		alarmed bool
		peak    float64
	}
	cellsCount := len(profiles) * len(seeds)
	cells, err := collect(parallelism, cellsCount, func(i int) (cell, error) {
		p := profiles[i/len(seeds)]
		seed := seeds[i%len(seeds)]
		tr, err := trace.Generate(p, seed)
		if err != nil {
			return cell{}, err
		}
		agent, err := core.NewAgent(agentCfg)
		if err != nil {
			return cell{}, err
		}
		counts, err := tr.Aggregate(agent.Config().T0)
		if err != nil {
			return cell{}, err
		}
		if _, err := agent.ProcessCounts(counts); err != nil {
			return cell{}, err
		}
		c := cell{alarmed: agent.Alarmed()}
		if m, err := stats.Max(agent.Statistics()); err == nil {
			c.peak = m
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range profiles {
		alarms := 0
		peak := 0.0
		for si := range seeds {
			c := cells[pi*len(seeds)+si]
			if c.alarmed {
				alarms++
			}
			if c.peak > peak {
				peak = c.peak
			}
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", len(seeds)),
			fmt.Sprintf("%d", alarms),
			fmt.Sprintf("%.4f", peak),
		})
	}
	return t, nil
}

// SortedIDs returns the registry ids, sorted, for CLI help.
func SortedIDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}
