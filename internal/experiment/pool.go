package experiment

import (
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel execution engine behind every Monte-Carlo
// experiment: a bounded worker pool whose work items are fully
// independent, plus the deterministic seed derivation that makes
// parallel and sequential schedules produce bit-identical artifacts.
//
// The contract every caller follows:
//
//   - each work item derives its own RNG from seedFor (never shares a
//     *rand.Rand with another item), so randomness depends only on the
//     item's identity, not on which worker ran it first;
//   - each item writes only results[i] for its own index i;
//   - aggregation happens after the pool drains, in index order.
//
// Under that contract the artifact bytes are a pure function of the
// experiment seed, whatever Parallelism is.

// DefaultParallelism is the worker count used when a config leaves
// Parallelism at zero: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// normalizeParallelism maps the "unset" zero (and nonsense negatives)
// to DefaultParallelism.
func normalizeParallelism(p int) int {
	if p <= 0 {
		return DefaultParallelism()
	}
	return p
}

// ForEach runs fn(0), ..., fn(n-1) across at most parallelism workers
// (0 means DefaultParallelism) and returns the lowest-index error, if
// any. All items run even when one fails — results must not depend on
// scheduling, and an early cancel would make the set of completed
// items racy.
func ForEach(parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	parallelism = normalizeParallelism(parallelism)
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collect runs fn for each index in parallel and returns the results
// in index order — the worker-pool shape of a Monte-Carlo repetition
// loop whose per-run outcomes are aggregated afterwards.
func collect[T any](parallelism, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(parallelism, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// seedFor derives a stable RNG seed for one unit of work from the
// experiment master seed and the item's identity (a label plus any
// distinguishing values, e.g. math.Float64bits(rate) and the run
// index). FNV-1a folds the identity; a splitmix64 finalizer
// decorrelates neighboring items so adjacent runs do not get
// correlated rand.Source streams.
func seedFor(base int64, label string, vals ...uint64) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(label))
	for _, v := range vals {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
