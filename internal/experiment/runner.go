package experiment

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

// Runner executes trace-driven flooding cells on the counts fast path
// with no steady-state allocation: one agent and one overlay buffer
// are reused across calls, restarted between cells. Sweep pools
// Runners so its per-cell loop costs O(periods + flood events) and
// touches the allocator only for the cell's RNG. A Runner is not safe
// for concurrent use; results are identical to Run with
// BackgroundCounts set to the runner's counts (pinned by
// TestRunnerMatchesRun), so pooling cannot change a sweep's output.
type Runner struct {
	counts *trace.PeriodCounts
	agent  *core.Agent
	// overlay is the per-cell input: OutSYN is scratch the background
	// counts are copied into before the flood is binned on top;
	// InSYNACK aliases the shared background (floods add no SYN/ACKs).
	overlay trace.PeriodCounts
}

// NewRunner builds a Runner over pre-aggregated, read-only background
// counts. The counts' period length must match the agent
// configuration's observation period.
func NewRunner(agentCfg core.Config, counts *trace.PeriodCounts) (*Runner, error) {
	if counts == nil || counts.Periods() == 0 {
		return nil, errors.New("experiment: runner needs non-empty background counts")
	}
	agent, err := core.NewAgent(agentCfg)
	if err != nil {
		return nil, err
	}
	if counts.T0 != agent.Config().T0 {
		return nil, fmt.Errorf("experiment: counts period %v does not match agent period %v",
			counts.T0, agent.Config().T0)
	}
	return &Runner{
		counts: counts,
		agent:  agent,
		overlay: trace.PeriodCounts{
			T0:       counts.T0,
			OutSYN:   make([]float64, counts.Periods()),
			InSYNACK: counts.InSYNACK,
		},
	}, nil
}

// Run executes one cell, equivalent to the package-level Run with
// BackgroundCounts set to the runner's counts — except the returned
// Statistic and X series are left nil, since materializing them would
// put two allocations back into the per-cell loop. Use the
// package-level Run when the series are needed. cfg's background
// fields (Profile, Background, BackgroundCounts) and RecordLevel are
// ignored.
func (r *Runner) Run(cfg RunConfig) (RunResult, error) {
	floodCfg, err := cfg.floodConfig()
	if err != nil {
		return RunResult{}, err
	}
	copy(r.overlay.OutSYN, r.counts.OutSYN)
	if err := flood.CountInto(floodCfg, r.overlay.T0, r.overlay.OutSYN); err != nil {
		return RunResult{}, fmt.Errorf("experiment: flood: %w", err)
	}
	r.agent.Restart()
	if _, err := r.agent.ProcessCounts(&r.overlay); err != nil {
		return RunResult{}, err
	}
	return resultFromAgent(r.agent, cfg, false), nil
}
