package experiment

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cusum"
	"repro/internal/evasion"
	"repro/internal/eventsim"
	"repro/internal/ingest"
	"repro/internal/mitigate"
	"repro/internal/packet"
	"repro/internal/sourcetrack"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// This file closes the loop the paper's Section 4.2.3 sketches but
// never measures: alarm → attribute → mitigate → score. Each
// adversarial scenario from internal/evasion is replayed through the
// ingest pipeline with the keyed tracker tapped in; the aggregate
// alarm triggers mitigation at the stub egress — token buckets scoped
// to the attributed prefixes when attribution produced any, a blanket
// bucket over all victim-bound SYNs when the attacker defeated keying
// — and the outcome is scored where it matters: the victim's TCP
// accept queue, as the fraction of legitimate handshakes that still
// complete, next to the fraction of attack SYNs that still pass.
//
// Everything is seed-deterministic (exact-grid attacks, Shards=1
// tracking, event-driven victim), so the emitted matrix is
// byte-identical across runs of the same seed: a regression battery
// over the detector's own blind spots.

// Tracker sizing for the matrix: small enough that the many-source
// scenarios overflow Space-Saving admission by design.
const evasionMaxSources = 128

// evasionMitigation fixes the response policy: attributed keys are
// squeezed to nearly nothing (they are named attack prefixes), while
// the blanket fallback throttles all victim-bound SYNs to the
// detection floor — the softest response that still caps the flood.
const (
	evasionPerKeyRate   = 0.1
	evasionPerKeyBurst  = 1
	evasionBlanketBurst = 5
)

// attrStep is one post-alarm attribution snapshot: the alarmed key set
// as of the period closing at End. Alarms latch, so successive steps
// only grow — the mitigation gate consults the newest step at or
// before each packet's timestamp, making the loop closed in simulated
// time rather than oracle-fed.
type attrStep struct {
	end  time.Duration
	keys map[netip.Prefix]bool
}

// evasionTap wires the keyed tracker into the aggregator and records
// the attribution timeline. The aggregator folds the aggregate
// detector before calling ClosePeriod, so each snapshot sees detector
// and tracker state through the same period boundary.
type evasionTap struct {
	tracker *sourcetrack.Tracker
	det     ingest.Detector
	steps   []attrStep
}

func (t *evasionTap) Record(r trace.Record) { t.tracker.Record(r) }

func (t *evasionTap) ClosePeriod(index int, end time.Duration) {
	t.tracker.ClosePeriod(index, end)
	if !t.det.Alarmed() {
		return
	}
	keys := make(map[netip.Prefix]bool)
	for _, s := range t.tracker.Sources(0) {
		if s.Alarmed {
			keys[s.Key] = true
		}
	}
	t.steps = append(t.steps, attrStep{end: end, keys: keys})
}

// egressGate is the leaf router's post-alarm response: it decides each
// outbound victim-bound SYN against the attribution timeline.
type egressGate struct {
	alarmed bool
	alarmAt time.Duration
	steps   []attrStep
	keyBits int

	perKey  map[netip.Prefix]*mitigate.TokenBucket
	blanket *mitigate.TokenBucket
}

func newEgressGate(alarm *core.Alarm, steps []attrStep, keyBits int, blanketRate float64) (*egressGate, error) {
	g := &egressGate{
		steps:   steps,
		keyBits: keyBits,
		perKey:  make(map[netip.Prefix]*mitigate.TokenBucket),
	}
	if alarm != nil {
		g.alarmed = true
		g.alarmAt = alarm.At
	}
	var err error
	g.blanket, err = mitigate.NewTokenBucket(blanketRate, evasionBlanketBurst)
	return g, err
}

// mode names the response the gate settled on once the alarm fired.
func (g *egressGate) mode() string {
	if !g.alarmed {
		return "none"
	}
	if len(g.steps) > 0 && len(g.steps[0].keys) > 0 {
		return "keyed"
	}
	return "blanket"
}

// allow decides one outbound SYN toward the victim.
func (g *egressGate) allow(now time.Duration, src netip.Addr) bool {
	if !g.alarmed || now < g.alarmAt {
		return true
	}
	keys := map[netip.Prefix]bool(nil)
	for i := len(g.steps) - 1; i >= 0; i-- {
		if g.steps[i].end <= now {
			keys = g.steps[i].keys
			break
		}
	}
	if len(keys) == 0 && len(g.steps) > 0 {
		keys = g.steps[0].keys
	}
	if len(keys) > 0 {
		key, err := src.Prefix(g.keyBits)
		if err != nil || !keys[key] {
			return true // unattributed sources pass untouched
		}
		b, ok := g.perKey[key]
		if !ok {
			b, err = mitigate.NewTokenBucket(evasionPerKeyRate, evasionPerKeyBurst)
			if err != nil {
				return true
			}
			g.perKey[key] = b
		}
		return b.Allow(now)
	}
	return g.blanket.Allow(now)
}

// victimSYN is one outbound SYN aimed at the victim, as the egress
// gate and the accept-queue simulation see it.
type victimSYN struct {
	ts      time.Duration
	src     netip.Addr
	srcPort uint16
	legit   bool
}

// evasionOutcome is one scenario's scored row.
type evasionOutcome struct {
	name       string
	meanRate   float64
	detected   bool
	falseAlarm bool
	ttd        int // periods after onset; valid when detected
	precision  float64
	recall     float64
	attributed int
	mode       string
	attackSeen int // attack SYNs inside the mitigation window
	attackPass float64
	attempted  int
	survival   float64
	evicted    uint64
}

// evasionScenarioSpec binds a scenario name to its generator so the
// matrix rows stay in a fixed, documented order.
type evasionScenarioSpec struct {
	name string
	gen  func() (*evasion.Scenario, error)
}

// AblationEvasion runs the adversarial scenario matrix: each scenario
// merged into the same Auckland-like background plus a legitimate
// victim-bound client stream, detected by the aggregate agent with the
// keyed tracker attached, mitigated at the egress from the moment the
// alarm fires, and scored at the victim's accept queue. One
// deterministic run per scenario (Options.Runs does not apply): the
// scenarios are exact schedules and the point of the matrix is a
// reproducible regression battery, not a Monte-Carlo average.
func AblationEvasion(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	span := 20 * time.Minute
	onset := 8 * time.Minute
	attackDur := 8 * time.Minute
	if opts.Fast {
		span = 10 * time.Minute
		onset = 4 * time.Minute
		attackDur = 4 * time.Minute
	}
	agentCfg := core.Config{}.Normalized()
	design := cusum.Design{
		Offset:      agentCfg.Offset,
		MinIncrease: 2 * agentCfg.Offset,
		Threshold:   agentCfg.Threshold,
	}

	p := trace.Auckland()
	p.Span = span
	bg, err := trace.Generate(p, seedFor(opts.Seed, "evasion-bg"))
	if err != nil {
		return nil, err
	}
	counts, err := bg.Aggregate(agentCfg.T0)
	if err != nil {
		return nil, err
	}
	var kbar float64
	for _, v := range counts.InSYNACK {
		kbar += v
	}
	kbar /= float64(counts.Periods())
	fmin := design.MinFloodRate(kbar, agentCfg.T0.Seconds())

	params := evasion.Params{
		Victim:     victimAddr,
		VictimPort: 80,
		Onset:      onset,
		Duration:   attackDur,
		T0:         agentCfg.T0,
		KeyBits:    sourcetrack.DefaultKeyBits,
		Seed:       seedFor(opts.Seed, "evasion-scenarios"),
	}
	rtt := p.MeanRTT
	clients, handshakes, err := evasion.VictimClients(params, p.Prefix, 1, rtt, span)
	if err != nil {
		return nil, err
	}
	base := trace.Merge(bg.Name+"+clients", bg, clients)

	surge := 5 * kbar / agentCfg.T0.Seconds()
	specs := []evasionScenarioSpec{
		{"single-source", func() (*evasion.Scenario, error) {
			return evasion.SingleSource(params, 6*fmin)
		}},
		{"pulse-under-fmin", func() (*evasion.Scenario, error) {
			return evasion.PulsingUnderFmin(params, design, kbar, 0.7, 10)
		}},
		{"pulse-under-delay", func() (*evasion.Scenario, error) {
			return evasion.PulsingUnderDelay(params, design, kbar, 2.5)
		}},
		{"slow-drip", func() (*evasion.Scenario, error) {
			return evasion.SlowDrip(params, 6*fmin, 4*evasionMaxSources)
		}},
		{"spoof-churn", func() (*evasion.Scenario, error) {
			return evasion.SpoofChurn(params, 6*fmin)
		}},
		{"flash-crowd", func() (*evasion.Scenario, error) {
			return evasion.FlashCrowd(params, p.Prefix, surge, rtt)
		}},
	}

	outs, err := collect(opts.Parallelism, len(specs), func(i int) (evasionOutcome, error) {
		sc, err := specs[i].gen()
		if err != nil {
			return evasionOutcome{}, err
		}
		return scoreEvasionScenario(sc, base, handshakes, agentCfg, params, span, onset, attackDur, rtt, fmin)
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "evasion",
		Title: fmt.Sprintf("Adversarial scenario matrix with closed-loop mitigation (Auckland background, fmin = %.2f SYN/s, K = %d tracked keys)",
			fmin, evasionMaxSources),
		Columns: []string{"Scenario", "Attack SYN/s", "Alarm", "TTD (t0)", "Attr. Precision",
			"Attr. Recall", "Mitigation", "Attack Pass", "Legit Survival", "Evictions"},
	}
	for _, o := range outs {
		alarm := "no"
		ttd := "-"
		switch {
		case o.falseAlarm:
			alarm = "false"
		case o.detected:
			alarm = "yes"
			if o.ttd < 1 {
				ttd = "<1"
			} else {
				ttd = fmt.Sprintf("%d", o.ttd)
			}
		}
		prec, rec := "-", "-"
		if o.detected || o.falseAlarm {
			if o.attributed > 0 {
				prec = fmt.Sprintf("%.2f", o.precision)
			}
			rec = fmt.Sprintf("%.2f", o.recall)
		}
		pass := "-"
		if o.attackSeen > 0 && (o.detected || o.falseAlarm) {
			pass = fmt.Sprintf("%.2f", o.attackPass)
		}
		t.Rows = append(t.Rows, []string{
			o.name,
			fmt.Sprintf("%.2f", o.meanRate),
			alarm,
			ttd,
			prec,
			rec,
			o.mode,
			pass,
			fmt.Sprintf("%.2f", o.survival),
			fmt.Sprintf("%d", o.evicted),
		})
	}
	return []Artifact{t}, nil
}

// scoreEvasionScenario runs one scenario through detection,
// attribution, mitigation and the victim's accept queue.
func scoreEvasionScenario(sc *evasion.Scenario, base *trace.Trace, handshakes []evasion.Handshake,
	agentCfg core.Config, params evasion.Params, span, onset, attackDur time.Duration,
	rtt time.Duration, fmin float64) (evasionOutcome, error) {

	mixed := trace.Merge(base.Name+"+"+sc.Name, base, sc.Attack)
	if mixed.Span > span {
		mixed.ClipSpan(span)
	}

	// Detection + attribution pass: the streaming pipeline with the
	// keyed tracker tapped in, snapshotting alarmed keys at every
	// period boundary after the aggregate alarm.
	det, err := ingest.NewAgentDetector(core.Config{})
	if err != nil {
		return evasionOutcome{}, err
	}
	tracker, err := sourcetrack.New(sourcetrack.Config{
		KeyBits:    params.KeyBits,
		MaxSources: evasionMaxSources,
		Shards:     1,
		Agent:      core.Config{},
	})
	if err != nil {
		return evasionOutcome{}, err
	}
	tap := &evasionTap{tracker: tracker, det: det}
	pipe := &ingest.Pipeline{
		Source:   ingest.NewTraceSource(mixed),
		Detector: det,
		T0:       agentCfg.T0,
		Span:     span,
		Tap:      tap,
	}
	if err := pipe.Run(); err != nil {
		return evasionOutcome{}, err
	}

	out := evasionOutcome{name: sc.Name, meanRate: sc.MeanRate, evicted: tracker.Stats().Evicted}
	onsetP := int(onset / agentCfg.T0)
	endP := int((onset + attackDur) / agentCfg.T0)
	alarm := det.FirstAlarm()
	if alarm != nil {
		switch {
		case alarm.Period < onsetP:
			out.falseAlarm = true
		case alarm.Period <= endP+1:
			out.detected = true
			out.ttd = alarm.Period - onsetP
		}
	}

	// Attribution scored on the snapshot the operator acts on: the
	// alarmed key set at the moment the aggregate alarm latched.
	truth := sc.TruthSet()
	if alarm != nil && len(tap.steps) > 0 {
		acted := tap.steps[0].keys
		out.attributed = len(acted)
		hits := 0
		for k := range acted {
			if truth[k] {
				hits++
			}
		}
		if out.attributed > 0 {
			out.precision = float64(hits) / float64(out.attributed)
		}
		if len(truth) > 0 {
			out.recall = float64(hits) / float64(len(truth))
		}
	}

	// Mitigation + accept-queue pass.
	gate, err := newEgressGate(alarm, tap.steps, params.KeyBits, fmin)
	if err != nil {
		return evasionOutcome{}, err
	}
	out.mode = gate.mode()

	events := make([]victimSYN, 0, len(handshakes)+len(sc.Attack.Records))
	for _, h := range handshakes {
		events = append(events, victimSYN{ts: h.Ts, src: h.Src, srcPort: h.SrcPort, legit: true})
	}
	for _, r := range sc.Attack.Records {
		if r.Kind == packet.KindSYN && r.Dst == victimAddr && r.Ts < span {
			events = append(events, victimSYN{ts: r.Ts, src: r.Src, srcPort: r.SrcPort})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].ts < events[j].ts })

	survival, attempted, attackPass, attackSeen, err := acceptQueueScore(events, gate, onset, onset+attackDur, rtt)
	if err != nil {
		return evasionOutcome{}, err
	}
	out.survival = survival
	out.attempted = attempted
	out.attackPass = attackPass
	out.attackSeen = attackSeen
	return out, nil
}

// acceptQueueScore replays the victim-bound SYN stream against a real
// TCP accept queue under the egress gate. Legitimate clients complete
// their handshakes (ACK one RTT after the SYN/ACK); spoofed attack
// sources are unreachable and never answer, which is exactly how they
// exhaust the backlog. Survival is the fraction of legitimate attempts
// inside the attack window that reach ESTABLISHED; attack pass is the
// fraction of attack SYNs inside the mitigation window that the gate
// let through to the victim.
func acceptQueueScore(events []victimSYN, gate *egressGate, windowStart, windowEnd time.Duration,
	rtt time.Duration) (survival float64, attempted int, attackPass float64, attackSeen int, err error) {

	sim := eventsim.New()
	type peerKey struct {
		addr netip.Addr
		port uint16
	}
	legitAt := make(map[peerKey]time.Duration)
	established := 0

	var server *tcp.Server
	send := func(seg packet.Segment) {
		if seg.Kind() != packet.KindSYNACK {
			return
		}
		peer := peerKey{addr: seg.IP.Dst, port: seg.TCP.DstPort}
		if _, ok := legitAt[peer]; !ok {
			return // spoofed source: no host there to answer
		}
		ack := packet.Build(seg.IP.Dst, seg.IP.Src, seg.TCP.DstPort, seg.TCP.SrcPort,
			seg.TCP.Ack, seg.TCP.Seq+1, packet.FlagACK)
		sim.After(rtt, func(now time.Duration) {
			server.Deliver(now, ack)
		})
	}
	server, err = tcp.NewServer(sim, victimAddr, 80, send, tcp.ServerConfig{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	server.OnEstablished = func(now time.Duration, peer netip.Addr, peerPort uint16) {
		ts, ok := legitAt[peerKey{addr: peer, port: peerPort}]
		if ok && ts >= windowStart && ts < windowEnd {
			established++
		}
	}

	attackAllowed := 0
	for _, e := range events {
		e := e
		if e.legit {
			legitAt[peerKey{addr: e.src, port: e.srcPort}] = e.ts
			if e.ts >= windowStart && e.ts < windowEnd {
				attempted++
			}
		}
		if _, err := sim.At(e.ts, func(now time.Duration) {
			if !gate.allow(now, e.src) {
				return
			}
			if !e.legit && gate.alarmed && now >= gate.alarmAt {
				attackAllowed++
			}
			syn := packet.Build(e.src, victimAddr, e.srcPort, 80, 1, 0, packet.FlagSYN)
			server.Deliver(now, syn)
		}); err != nil {
			return 0, 0, 0, 0, err
		}
		if !e.legit && gate.alarmed && e.ts >= gate.alarmAt {
			attackSeen++
		}
	}
	sim.Run()

	if attempted > 0 {
		survival = float64(established) / float64(attempted)
	} else {
		survival = 1
	}
	if attackSeen > 0 {
		attackPass = float64(attackAllowed) / float64(attackSeen)
	}
	return survival, attempted, attackPass, attackSeen, nil
}
