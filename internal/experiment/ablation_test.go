package experiment

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	reg := AblationRegistry()
	if len(reg) != 14 {
		t.Fatalf("ablation registry has %d entries, want 14", len(reg))
	}
	for _, e := range reg {
		if !strings.HasPrefix(e.ID, "ablation-") && e.ID != "attribution" && e.ID != "evasion" && e.ID != "distributed" && e.ID != "victim" {
			t.Errorf("ablation id %q missing prefix", e.ID)
		}
		if e.Func == nil {
			t.Errorf("%s has no generator", e.ID)
		}
	}
	if _, ok := LookupAny("ablation-pattern"); !ok {
		t.Error("LookupAny misses ablations")
	}
	if _, ok := LookupAny("table2"); !ok {
		t.Error("LookupAny misses paper artifacts")
	}
	if _, ok := LookupAny("nope"); ok {
		t.Error("LookupAny invents experiments")
	}
}

func TestEveryAblationRunsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are Monte-Carlo heavy")
	}
	for _, e := range AblationRegistry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			arts, err := e.Func(fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(arts) == 0 {
				t.Fatal("no artifacts")
			}
			for _, a := range arts {
				var buf bytes.Buffer
				if err := a.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestAblationPatternInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo heavy")
	}
	arts, err := AblationPattern(Options{Seed: 3, Runs: 3, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 patterns", len(tbl.Rows))
	}
	// The paper's claim: every equal-volume pattern is detected.
	for _, row := range tbl.Rows {
		prob, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if prob < 1 {
			t.Errorf("pattern %q detection prob = %v, want 1.0", row[0], prob)
		}
	}
}

func TestAblationStateGrowsLinearly(t *testing.T) {
	arts, err := AblationState(Options{Seed: 1, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// SYN-dog state must be constant while the stateful defense grows.
	var prevEntries int
	for _, row := range tbl.Rows {
		if row[1] != "8" {
			t.Errorf("SYN-dog state = %s words, want constant 8", row[1])
		}
		entries, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if entries <= prevEntries {
			t.Errorf("stateful entries not growing: %d after %d", entries, prevEntries)
		}
		prevEntries = entries
	}
}
