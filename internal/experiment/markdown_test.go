package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:      "t1",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x|y"}, {"2", "z"}},
	}
	var buf bytes.Buffer
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"**t1 — demo**",
		"| a | b |",
		"|---|---|",
		"| 1 | x\\|y |", // pipe escaped
		"| 2 | z |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdownPadsShortRows(t *testing.T) {
	tbl := &Table{ID: "t", Title: "x", Columns: []string{"a", "b", "c"},
		Rows: [][]string{{"only"}}}
	var buf bytes.Buffer
	if err := tbl.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| only |  |  |") {
		t.Errorf("short row not padded:\n%s", buf.String())
	}
}

func TestFigureMarkdown(t *testing.T) {
	fig := &Figure{
		ID: "f1", Title: "demo fig", XLabel: "t", YLabel: "y",
		Series: []Series{
			{Label: "s1", X: []float64{0, 1, 2}, Y: []float64{0, 2, 1}},
			{Label: "empty"},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| s1 | 3 | 0 | 2 | 1 |") {
		t.Errorf("series summary wrong:\n%s", out)
	}
	if !strings.Contains(out, "| empty | 0 | NaN | NaN | NaN |") {
		t.Errorf("empty series summary wrong:\n%s", out)
	}
}

func TestEveryArtifactHasMarkdown(t *testing.T) {
	// Every registered experiment's artifacts must render as markdown
	// (the -md flag promises this).
	arts, err := Table1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		ma, ok := a.(MarkdownArtifact)
		if !ok {
			t.Fatalf("%T lacks markdown", a)
		}
		var buf bytes.Buffer
		if err := ma.WriteMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Error("empty markdown")
		}
	}
}
