package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

func fastOpts() Options { return Options{Seed: 5, Runs: 2, Fast: true} }

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "333") {
		t.Errorf("render missing content:\n%s", out)
	}
	var csv bytes.Buffer
	if err := tbl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,long-column\n1,2\n") {
		t.Errorf("csv = %q", csv.String())
	}
	if tbl.String() == "" {
		t.Error("String empty")
	}
}

func TestFigureRendering(t *testing.T) {
	fig := &Figure{
		ID: "f", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "s1", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
			{Label: "s2", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "s1") || !strings.Contains(out, "max(y)=4") {
		t.Errorf("figure render missing content:\n%s", out)
	}
	var csv bytes.Buffer
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "s1,1,1\n") {
		t.Errorf("csv = %q", csv.String())
	}
	empty := &Figure{ID: "e"}
	var eb bytes.Buffer
	if err := empty.Render(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.String(), "(no data)") {
		t.Error("empty figure should say so")
	}
}

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{"table1", "fig3", "fig4", "fig5", "fig6", "table2", "fig7", "table3", "fig8", "fig9"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Func == nil {
			t.Errorf("%s has no generator", id)
		}
	}
	if _, ok := Lookup("table2"); !ok {
		t.Error("Lookup(table2) failed")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup(nonsense) succeeded")
	}
	ids := SortedIDs()
	if len(ids) != len(want) {
		t.Error("SortedIDs wrong length")
	}
}

func TestRunDetectsFloodAboveFloor(t *testing.T) {
	p := trace.Auckland()
	p.Span = 30 * time.Minute
	res, err := Run(RunConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rate:          10,
		Onset:         10 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseAlarm {
		t.Fatal("false alarm before onset")
	}
	if !res.Detected {
		t.Fatal("10 SYN/s flood not detected at Auckland (floor 1.75)")
	}
	if res.DetectionPeriods > 2 {
		t.Errorf("detection took %d periods, want <=2 at fi=10", res.DetectionPeriods)
	}
	if res.OnsetPeriod != 30 {
		t.Errorf("onset period = %d, want 30", res.OnsetPeriod)
	}
	if len(res.Statistic) != int(p.Span/(20*time.Second)) {
		t.Errorf("statistic length = %d", len(res.Statistic))
	}
}

func TestRunMissesFloodBelowFloor(t *testing.T) {
	p := trace.Auckland()
	p.Span = 30 * time.Minute
	res, err := Run(RunConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rate:          0.2, // far below the 1.75 floor
		Onset:         10 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("sub-floor flood detected — normalization broken?")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(RunConfig{Rate: 5}); err == nil {
		t.Error("missing duration accepted")
	}
}

func TestRunPatternOverride(t *testing.T) {
	p := trace.Auckland()
	p.Span = 30 * time.Minute
	res, err := Run(RunConfig{
		Profile: p,
		Agent:   core.Config{},
		Pattern: flood.Bursty{PeakRate: 20, On: 10 * time.Second, Off: 10 * time.Second},
		Onset:   10 * time.Minute, FloodDuration: 10 * time.Minute,
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("bursty flood (mean 10/s) not detected")
	}
}

func TestRunClipsFloodBeyondBackground(t *testing.T) {
	p := trace.Auckland()
	p.Span = 20 * time.Minute
	// Flood runs past the end of the background capture: the run must
	// clip and still detect, not fail validation.
	res, err := Run(RunConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rate:          10,
		Onset:         15 * time.Minute,
		FloodDuration: 30 * time.Minute,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("clipped flood not detected")
	}
	if len(res.Statistic) != 60 { // 20 min / 20 s
		t.Errorf("periods = %d, want 60", len(res.Statistic))
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []SweepConfig{
		{},
		{Rates: []float64{5}, Runs: 0},
		{Rates: []float64{5}, Runs: 1, OnsetMin: -1, FloodDuration: time.Minute},
		{Rates: []float64{5}, Runs: 1, OnsetMin: 2, OnsetMax: 1, FloodDuration: time.Minute},
		{Rates: []float64{5}, Runs: 1},
	}
	for i, cfg := range bad {
		if _, err := Sweep(cfg); err == nil {
			t.Errorf("bad sweep %d accepted", i)
		}
	}
}

func TestSweepMonotoneInRate(t *testing.T) {
	p := trace.Auckland()
	p.Span = 40 * time.Minute
	perfs, err := Sweep(SweepConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rates:         []float64{2, 10},
		Runs:          3,
		OnsetMin:      3 * time.Minute,
		OnsetMax:      20 * time.Minute,
		FloodDuration: 10 * time.Minute,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(perfs) != 2 {
		t.Fatalf("perfs = %d", len(perfs))
	}
	if perfs[1].DetectionProb < perfs[0].DetectionProb {
		t.Errorf("higher rate has lower prob: %v vs %v",
			perfs[1].DetectionProb, perfs[0].DetectionProb)
	}
	if perfs[0].DetectionProb > 0 && perfs[1].DetectionProb > 0 &&
		perfs[1].MeanDetectionPeriods > perfs[0].MeanDetectionPeriods {
		t.Errorf("higher rate detected slower: %v vs %v periods",
			perfs[1].MeanDetectionPeriods, perfs[0].MeanDetectionPeriods)
	}
	tbl := PerformanceTable("t", "x", perfs)
	if len(tbl.Rows) != 2 {
		t.Error("performance table rows wrong")
	}
}

func TestEveryExperimentRunsFast(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			arts, err := e.Func(fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			if len(arts) == 0 {
				t.Fatal("no artifacts")
			}
			for _, a := range arts {
				var buf bytes.Buffer
				if err := a.Render(&buf); err != nil {
					t.Fatal(err)
				}
				if buf.Len() == 0 {
					t.Error("empty render")
				}
				var csv bytes.Buffer
				if err := a.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

func TestFig5NoFalseAlarms(t *testing.T) {
	arts, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range arts {
		fig := a.(*Figure)
		if strings.Contains(fig.Title, "FALSE ALARM") {
			t.Errorf("%s reports a false alarm", fig.ID)
		}
		for _, s := range fig.Series {
			for _, y := range s.Y {
				if y > 1.05 {
					t.Errorf("%s: yn = %v exceeds N", fig.ID, y)
				}
			}
		}
	}
}

func TestFig9TunedDetectsDefaultDoesNot(t *testing.T) {
	arts, err := Fig9(Options{Seed: 2, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	fig := arts[0].(*Figure)
	if len(fig.Series) != 2 {
		t.Fatalf("fig9 series = %d, want 2 (tuned + default)", len(fig.Series))
	}
	maxOf := func(ys []float64) float64 {
		m := 0.0
		for _, y := range ys {
			if y > m {
				m = y
			}
		}
		return m
	}
	tuned := maxOf(fig.Series[0].Y)
	deflt := maxOf(fig.Series[1].Y)
	if tuned <= 0.6 {
		t.Errorf("tuned parameters did not cross their threshold: max yn = %v", tuned)
	}
	if deflt > 1.05 {
		t.Errorf("default parameters detected a 15 SYN/s flood (max yn = %v) — floor should be ≈27+", deflt)
	}
}

func TestFalseAlarmSummary(t *testing.T) {
	p := trace.Auckland()
	p.Span = 10 * time.Minute
	tbl, err := FalseAlarmSummary(core.Config{}, []int64{1, 2}, []trace.Profile{p}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][2] != "0" {
		t.Errorf("false alarms = %s, want 0", tbl.Rows[0][2])
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		37:    "37",
		1.75:  "1.75",
		1.5:   "1.5",
		2:     "2",
		120.0: "120",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
