package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// TestDistributedAcceptance pins the headline claim of the fusion
// layer: a flood split across all four sites at half each site's local
// floor raises no local alarm anywhere, yet the coordinator detects it
// within a bounded delay and localizes only genuinely flooded monitors.
func TestDistributedAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("replays four site traces per cell")
	}
	arts, err := AblationDistributed(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := arts[0].(*Table)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (M=1..4)", len(tbl.Rows))
	}
	sites := map[string]bool{"LBL": true, "Harvard": true, "UNC": true, "Auckland": true}
	for _, row := range tbl.Rows {
		if row[2] != "0" {
			t.Errorf("M=%s: %s local alarms, want 0 — per-site rates must stay under fmin", row[0], row[2])
		}
		if row[3] == "FALSE ALARM" {
			t.Errorf("M=%s: fused alarm before flood onset", row[0])
		}
	}

	// The M=4 row is the acceptance row: detected, fast, and localized
	// to a subset of the flooded monitors (no false accusations).
	m4 := tbl.Rows[3]
	if m4[3] != "yes" {
		t.Fatalf("M=4 fusion detects = %q, want yes", m4[3])
	}
	delay, err := strconv.Atoi(m4[4])
	if err != nil || delay > 10 {
		t.Errorf("M=4 delay = %q periods, want <= 10", m4[4])
	}
	mons := strings.Split(m4[5], ", ")
	if len(mons) < 2 {
		t.Errorf("M=4 localized %q, want at least two monitors", m4[5])
	}
	for _, mon := range mons {
		if !sites[mon] {
			t.Errorf("M=4 localized unknown monitor %q", mon)
		}
	}
	truth := strings.SplitN(m4[6], "/", 2)
	if n, err := strconv.Atoi(truth[0]); err != nil || n < 2 {
		t.Errorf("M=4 truth prefixes found = %q, want >= 2 of 4", m4[6])
	}
}
