package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WriteMarkdown renders the table as a GitHub-flavored markdown table,
// ready to paste into EXPERIMENTS.md-style documents.
func (t *Table) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**%s — %s**\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(t.Columns))
		for i := range cells {
			if i < len(row) {
				cells[i] = escapeMarkdown(row[i])
			}
		}
		sb.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteMarkdown renders the figure as a markdown section: a per-series
// summary table (n, min, max, last) over the plotted data. The full
// series stays in the CSV output; markdown gets the shape summary a
// reader can check at a glance.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**%s — %s**\n\n", f.ID, f.Title)
	fmt.Fprintf(&sb, "x: %s, y: %s\n\n", f.XLabel, f.YLabel)
	sb.WriteString("| series | points | min y | max y | final y |\n")
	sb.WriteString("|---|---|---|---|---|\n")
	for _, s := range f.Series {
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, y := range s.Y {
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		last := math.NaN()
		if len(s.Y) > 0 {
			last = s.Y[len(s.Y)-1]
		}
		if len(s.Y) == 0 {
			minY, maxY = math.NaN(), math.NaN()
		}
		fmt.Fprintf(&sb, "| %s | %d | %.4g | %.4g | %.4g |\n",
			escapeMarkdown(s.Label), len(s.X), minY, maxY, last)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// escapeMarkdown protects table-breaking characters in cell content.
func escapeMarkdown(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// MarkdownArtifact is implemented by artifacts that can render
// themselves as markdown.
type MarkdownArtifact interface {
	Artifact
	WriteMarkdown(w io.Writer) error
}

// Compile-time checks.
var (
	_ MarkdownArtifact = (*Table)(nil)
	_ MarkdownArtifact = (*Figure)(nil)
)
