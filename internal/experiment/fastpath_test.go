package experiment

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

// equalRunResults compares two RunResults field by field, including
// the full per-period series.
func equalRunResults(t *testing.T, got, want RunResult) {
	t.Helper()
	if got.Detected != want.Detected || got.DetectionPeriods != want.DetectionPeriods ||
		got.AlarmPeriod != want.AlarmPeriod || got.OnsetPeriod != want.OnsetPeriod ||
		got.FalseAlarm != want.FalseAlarm {
		t.Errorf("scalar results diverge:\ncounts: %+v\nrecord: %+v", got, want)
	}
	if len(got.Statistic) != len(want.Statistic) || len(got.X) != len(want.X) {
		t.Fatalf("series lengths diverge: yn %d vs %d, X %d vs %d",
			len(got.Statistic), len(want.Statistic), len(got.X), len(want.X))
	}
	for i := range got.Statistic {
		if got.Statistic[i] != want.Statistic[i] {
			t.Fatalf("yn[%d] = %v (counts) vs %v (record)", i, got.Statistic[i], want.Statistic[i])
		}
	}
	for i := range got.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d] = %v (counts) vs %v (record)", i, got.X[i], want.X[i])
		}
	}
}

// TestRunCrossPathIdentical is the Run-level equivalence matrix: every
// site profile, two rates, random onsets and two seeds, the counts
// fast path against the record-level replay. Floods regularly outlast
// the 12-minute background, so the span-clip semantics are covered
// too.
func TestRunCrossPathIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, p := range trace.Profiles() {
		p := p
		p.Span = 12 * time.Minute
		for _, rate := range []float64{5, 40} {
			for _, seed := range []int64{3, 11} {
				onset := 2*time.Minute + time.Duration(rng.Int63n(int64(4*time.Minute)))
				cfg := RunConfig{
					Profile:       p,
					Agent:         core.Config{},
					Rate:          rate,
					Onset:         onset,
					FloodDuration: 10 * time.Minute,
					Seed:          seed,
				}
				t.Run(fmt.Sprintf("%s/fi=%v/seed=%d", p.Name, rate, seed), func(t *testing.T) {
					fast, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.RecordLevel = true
					rec, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					equalRunResults(t, fast, rec)
				})
			}
		}
	}
}

// TestRunCrossPathPatterns extends the equivalence to the non-constant
// flood patterns, whose arrival times come from the thinning RNG: both
// paths must draw the identical arrival process.
func TestRunCrossPathPatterns(t *testing.T) {
	p := trace.Auckland()
	p.Span = 15 * time.Minute
	patterns := map[string]flood.Pattern{
		"bursty":  flood.Bursty{PeakRate: 16, On: 30 * time.Second, Off: 30 * time.Second},
		"pulsing": flood.Pulsing{PeakRate: 24, On: 10 * time.Second, Off: 30 * time.Second},
		"ramp":    flood.Ramp{StartRate: 0, EndRate: 16, Span: 5 * time.Minute},
	}
	for name, pat := range patterns {
		pat := pat
		t.Run(name, func(t *testing.T) {
			cfg := RunConfig{
				Profile:       p,
				Agent:         core.Config{},
				Pattern:       pat,
				Onset:         4 * time.Minute,
				FloodDuration: 8 * time.Minute,
				Seed:          21,
			}
			fast, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.RecordLevel = true
			rec, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			equalRunResults(t, fast, rec)
		})
	}
}

// TestSweepCrossPathSharedCounts pins that the shared-counts sweep (one
// Aggregate, AddFlood overlays per cell) equals a record-level sweep
// cell for cell.
func TestSweepCrossPathSharedCounts(t *testing.T) {
	p := trace.UNC()
	p.Span = 15 * time.Minute
	cfg := SweepConfig{
		Profile:       p,
		Agent:         core.Config{},
		Rates:         []float64{40, 80},
		Runs:          2,
		OnsetMin:      2 * time.Minute,
		OnsetMax:      4 * time.Minute,
		FloodDuration: 8 * time.Minute,
		Seed:          5,
		Parallelism:   4,
	}
	fast, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RecordLevel = true
	rec, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(rec) {
		t.Fatalf("%d rates vs %d", len(fast), len(rec))
	}
	for i := range fast {
		if fast[i] != rec[i] {
			t.Errorf("rate %v: counts %+v vs record %+v", cfg.Rates[i], fast[i], rec[i])
		}
	}
}

// TestArtifactsCrossPathIdentical is the artifact-level pin: the
// Monte-Carlo tables and sensitivity figures render byte-identically
// (text and CSV) whether produced by the counts fast path or the
// record-level path.
func TestArtifactsCrossPathIdentical(t *testing.T) {
	for _, id := range []string{"table2", "table3", "fig7", "fig8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			opts := Options{Seed: 5, Runs: 2, Fast: true, Parallelism: 4}
			fast := renderAll(t, id, opts)
			opts.RecordLevel = true
			rec := renderAll(t, id, opts)
			if !bytes.Equal(fast, rec) {
				t.Errorf("artifacts diverge across paths:\n--- counts ---\n%s\n--- record ---\n%s", fast, rec)
			}
		})
	}
}
