package experiment

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

// Diagram is a structural artifact: Figure 6 of the paper is the
// experiment architecture itself, so its reproduction is the harness
// diagram plus a live smoke run proving each labeled component exists
// and is wired the way the figure draws it.
type Diagram struct {
	ID    string
	Title string
	Body  string
	// Checks lists the structural assertions the smoke run verified.
	Checks []string
}

// Render writes the diagram and its verified checks.
func (d *Diagram) Render(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n%s\n", d.ID, d.Title, d.Body)
	sb.WriteString("verified structure:\n")
	for _, c := range d.Checks {
		fmt.Fprintf(&sb, "  [x] %s\n", c)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes the checks as CSV (the diagram has no series data).
func (d *Diagram) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "check"); err != nil {
		return err
	}
	for _, c := range d.Checks {
		if _, err := fmt.Fprintf(w, "%q\n", c); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the diagram fenced, with a check list.
func (d *Diagram) WriteMarkdown(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "**%s — %s**\n\n```\n%s\n```\n\n", d.ID, d.Title, d.Body)
	for _, c := range d.Checks {
		fmt.Fprintf(&sb, "- [x] %s\n", c)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

var (
	_ Artifact         = (*Diagram)(nil)
	_ MarkdownArtifact = (*Diagram)(nil)
)

const fig6Body = `
                      Incoming normal traffic
                    ==========================>  -----------------
    ----------------                             |  Leaf Router  |
    |  background  | ---- outgoing normal -----> |   ---------   |
    |  site trace  |                             | Last-mile /   |
    ----------------                             | First-mile    |
    ----------------                             |   Sniffers    |
    |   flooding   | ---- spoofed SYNs --------> |  (SYN-dog)    |
    |    trace     |                             -----------------
    ----------------                                     |
        trace.Merge (Figure 6 mixing)            CUSUM yn -> alarm`

// Fig6 reproduces the trace-simulation flooding-attack architecture:
// the mixing harness itself, smoke-run end to end so each box in the
// figure corresponds to a living component.
func Fig6(opts Options) ([]Artifact, error) {
	opts.applyDefaults()
	d := &Diagram{
		ID:    "fig6",
		Title: "The trace-simulation flooding attack experiment",
		Body:  fig6Body,
	}

	// Smoke-run every box: background trace, flood trace, merge, agent.
	// The two source boxes of the figure are independent generators, so
	// they run as two pool work items; the checks are appended in
	// figure order afterwards, keeping the artifact deterministic.
	p := trace.Auckland()
	p.Span = 20 * time.Minute
	var bg, fl *trace.Trace
	err := ForEach(opts.Parallelism, 2, func(i int) error {
		var err error
		if i == 0 {
			bg, err = trace.Generate(p, opts.Seed)
			return err
		}
		fl, err = flood.GenerateTrace(flood.Config{
			Start: 8 * time.Minute, Duration: 10 * time.Minute,
			Pattern: flood.Constant{PerSecond: 10},
			Victim:  victimAddr, VictimPort: 80, Seed: opts.Seed,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	d.Checks = append(d.Checks,
		fmt.Sprintf("background site trace generated (%d records over %v)", len(bg.Records), bg.Span))
	d.Checks = append(d.Checks,
		fmt.Sprintf("flooding trace generated (%d spoofed SYNs)", len(fl.Records)))

	mixed := trace.Merge("fig6-mix", bg, fl)
	mixed.Span = bg.Span
	if err := mixed.Validate(); err != nil {
		return nil, err
	}
	d.Checks = append(d.Checks,
		fmt.Sprintf("traces merged chronologically (%d records)", len(mixed.Records)))

	agent, err := core.NewAgent(core.Config{})
	if err != nil {
		return nil, err
	}
	if _, err := agent.ProcessTrace(mixed); err != nil {
		return nil, err
	}
	if !agent.Alarmed() {
		return nil, fmt.Errorf("fig6 smoke run: sniffer did not alarm on the mixed trace")
	}
	al := agent.FirstAlarm()
	d.Checks = append(d.Checks,
		fmt.Sprintf("leaf-router sniffers + CUSUM alarmed at period %d (flood onset period %d)",
			al.Period, int((8*time.Minute)/agent.Config().T0)))
	return []Artifact{d}, nil
}
