package experiment

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenTable/goldenFigure/goldenDiagram are fixed artifacts whose
// rendered forms are pinned under testdata/. They exercise every
// renderer branch the experiments rely on: column alignment, markdown
// escaping, the ASCII plot grid, multi-series legends, and the diagram
// check list.
func goldenTable() *Table {
	return &Table{
		ID:      "golden-table",
		Title:   "detection performance at a fixed site",
		Columns: []string{"fi (SYN/s)", "Detection Prob.", "Detection Time (t0)"},
		Rows: [][]string{
			{"2", "0.40", "3.25"},
			{"10", "1.00", "<1"},
			{"120", "1.00", "<1"},
			{"edge|case", "0.00", "-"},
		},
	}
}

func goldenFigure() *Figure {
	f := &Figure{
		ID:     "golden-fig",
		Title:  "CUSUM statistic under a two-rate flood",
		XLabel: "time (min)",
		YLabel: "yn",
	}
	ramp := Series{Label: "ramp"}
	step := Series{Label: "step"}
	for i := 0; i < 40; i++ {
		x := float64(i) / 3
		ramp.X = append(ramp.X, x)
		ramp.Y = append(ramp.Y, float64(i)*0.05)
		step.X = append(step.X, x)
		y := 0.1
		if i >= 20 {
			y = 1.4
		}
		step.Y = append(step.Y, y)
	}
	f.Series = []Series{ramp, step}
	return f
}

func goldenDiagram() *Diagram {
	return &Diagram{
		ID:    "golden-diagram",
		Title: "harness wiring",
		Body:  "[source] --> [mixer] --> [sniffer]",
		Checks: []string{
			"source produced records",
			"mixer preserved span",
		},
	}
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiment -run Golden -update`): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenRenderers(t *testing.T) {
	type renderer struct {
		name string
		fn   func(w *bytes.Buffer) error
	}
	tbl, fig, dia := goldenTable(), goldenFigure(), goldenDiagram()
	cases := []renderer{
		{"table-render", func(w *bytes.Buffer) error { return tbl.Render(w) }},
		{"table-csv", func(w *bytes.Buffer) error { return tbl.WriteCSV(w) }},
		{"table-markdown", func(w *bytes.Buffer) error { return tbl.WriteMarkdown(w) }},
		{"figure-render", func(w *bytes.Buffer) error { return fig.Render(w) }},
		{"figure-csv", func(w *bytes.Buffer) error { return fig.WriteCSV(w) }},
		{"figure-markdown", func(w *bytes.Buffer) error { return fig.WriteMarkdown(w) }},
		{"diagram-render", func(w *bytes.Buffer) error { return dia.Render(w) }},
		{"diagram-markdown", func(w *bytes.Buffer) error { return dia.WriteMarkdown(w) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.fn(&buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, c.name, buf.Bytes())
		})
	}
}

// TestGoldenPerformanceTable pins the Table 2/3 formatting rules:
// "<1" for sub-period mean delay, "-" when nothing was detected, and
// trailing-zero trimming of the rate column.
func TestGoldenPerformanceTable(t *testing.T) {
	perfs := []Performance{
		{Rate: 1.5, DetectionProb: 0, Runs: 20},
		{Rate: 5, DetectionProb: 0.55, MeanDetectionPeriods: 2.4, FalseAlarms: 1, Runs: 20},
		{Rate: 120, DetectionProb: 1, MeanDetectionPeriods: 0.2, Runs: 20},
	}
	tbl := PerformanceTable("golden-perf", "formatting pin", perfs)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "performance-table", buf.Bytes())
}

// TestGoldenExperimentArtifact pins a real end-to-end artifact: fig5's
// fast-mode render at a fixed seed. Any unintended change to trace
// generation, the agent, or the renderer shows up as a diff here.
func TestGoldenExperimentArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("generates traces")
	}
	arts, err := Fig5(Options{Seed: 5, Runs: 2, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, a := range arts {
		if err := a.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "fig5-fast-seed5", buf.Bytes())
}
