package experiment

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/trace"
)

// victimAddr is the flood target used across experiments; any external
// address works since detection happens at the source-side router.
var victimAddr = netip.MustParseAddr("11.99.99.1")

// RunConfig describes one trace-driven flooding run (Figure 6): a
// background profile, an agent configuration, and a flood.
type RunConfig struct {
	// Profile generates the background traffic.
	Profile trace.Profile
	// Background, when non-nil, is replayed as the background traffic
	// instead of generating one from Profile+Seed. Sweeps use it to
	// generate the per-site trace once and replay it across every
	// Monte-Carlo repetition. The trace is treated as read-only, so one
	// instance may back many concurrent runs.
	Background *trace.Trace
	// BackgroundCounts, when non-nil, is the pre-aggregated background
	// for the counts fast path: sweeps aggregate the per-site trace
	// once and share the read-only counts across every Monte-Carlo
	// repetition, making each cell O(periods + flood events) instead of
	// O(records). Ignored when RecordLevel is set. Its T0 must match
	// the agent's observation period.
	BackgroundCounts *trace.PeriodCounts
	// Agent configures the SYN-dog under test.
	Agent core.Config
	// Rate is fi, the flood rate seen by this stub's outbound sniffer,
	// in SYN/s.
	Rate float64
	// Onset is the flood start time.
	Onset time.Duration
	// FloodDuration is the attack length (paper: 10 minutes).
	FloodDuration time.Duration
	// Pattern overrides the flood pattern; nil means Constant{Rate}.
	Pattern flood.Pattern
	// Seed drives both background and flood randomness.
	Seed int64
	// RecordLevel forces the record-level path: materialize the flood
	// as spoofed-source records, merge it into the background trace and
	// replay every record through the agent. The default counts fast
	// path is bit-identical for trace-driven runs (pinned by the
	// cross-path equivalence suite); record level remains for inputs
	// that only exist as records (pcap captures, eventsim taps) and for
	// equivalence testing itself.
	RecordLevel bool
}

// RunResult is the outcome of one run.
type RunResult struct {
	// Detected reports whether the alarm fired during the flood (one
	// trailing period of slack is allowed for boundary effects).
	Detected bool
	// DetectionPeriods is the delay from the period containing the
	// onset to the alarm period, in observation periods. 0 means the
	// alarm fired at the end of the very period the flood started in
	// (the paper prints this as "<1").
	DetectionPeriods int
	// AlarmPeriod and OnsetPeriod are the raw period indices
	// (AlarmPeriod is -1 when not detected).
	AlarmPeriod int
	OnsetPeriod int
	// FalseAlarm reports an alarm before the onset.
	FalseAlarm bool
	// Statistic is the full yn series of the run.
	Statistic []float64
	// X is the full normalized-observation series Xn of the run (the
	// CUSUM input), one value per period.
	X []float64
}

// Run executes one trace-driven flooding experiment. By default it
// takes the counts fast path — aggregate (or reuse pre-aggregated)
// background period counts, bin the flood arrival process on top, and
// drive the agent with core.Agent.ProcessCounts — which produces
// bit-identical results to the record-level merge-and-replay path at a
// fraction of the cost. Set RecordLevel to force the record path.
func Run(cfg RunConfig) (RunResult, error) {
	floodCfg, err := cfg.floodConfig()
	if err != nil {
		return RunResult{}, err
	}
	agent, err := core.NewAgent(cfg.Agent)
	if err != nil {
		return RunResult{}, err
	}
	if cfg.RecordLevel {
		err = runRecordLevel(cfg, agent, floodCfg)
	} else {
		err = runCounts(cfg, agent, floodCfg)
	}
	if err != nil {
		return RunResult{}, err
	}
	return resultFromAgent(agent, cfg, true), nil
}

// floodConfig validates the flood parameters and translates them into
// the flood.Config both execution paths feed from — one derivation, so
// the paths cannot disagree on pattern or seed.
func (cfg *RunConfig) floodConfig() (flood.Config, error) {
	if cfg.Rate <= 0 && cfg.Pattern == nil {
		return flood.Config{}, errors.New("experiment: flood rate must be positive")
	}
	if cfg.FloodDuration <= 0 {
		return flood.Config{}, errors.New("experiment: flood duration must be positive")
	}
	pattern := cfg.Pattern
	if pattern == nil {
		pattern = flood.Constant{PerSecond: cfg.Rate}
	}
	return flood.Config{
		Start:      cfg.Onset,
		Duration:   cfg.FloodDuration,
		Pattern:    pattern,
		Victim:     victimAddr,
		VictimPort: 80,
		Seed:       cfg.Seed + 7919,
	}, nil
}

// resultFromAgent reads one finished run off the agent. With series
// set the full yn and Xn series are copied out; sweeps skip them, as
// the Monte-Carlo aggregation consumes only the scalar outcome.
func resultFromAgent(agent *core.Agent, cfg RunConfig, series bool) RunResult {
	t0 := agent.Config().T0
	res := RunResult{
		AlarmPeriod: -1,
		OnsetPeriod: int(cfg.Onset / t0),
	}
	if series {
		reports := agent.Reports()
		xs := make([]float64, len(reports))
		for i, r := range reports {
			xs[i] = r.X
		}
		res.Statistic = agent.Statistics()
		res.X = xs
	}
	al := agent.FirstAlarm()
	if al == nil {
		return res
	}
	res.AlarmPeriod = al.Period
	if al.Period < res.OnsetPeriod {
		res.FalseAlarm = true
		return res
	}
	floodEndPeriod := int((cfg.Onset + cfg.FloodDuration) / t0)
	if al.Period <= floodEndPeriod+1 {
		res.Detected = true
		res.DetectionPeriods = al.Period - res.OnsetPeriod
	}
	return res
}

// runCounts is the fast path: per-period background counts (aggregated
// once per sweep, or on demand) plus the binned flood arrival process,
// fed straight to the detector. No record is materialized, merged, or
// replayed.
func runCounts(cfg RunConfig, agent *core.Agent, floodCfg flood.Config) error {
	counts := cfg.BackgroundCounts
	if counts == nil {
		bg := cfg.Background
		if bg == nil {
			var err error
			bg, err = trace.Generate(cfg.Profile, cfg.Seed)
			if err != nil {
				return fmt.Errorf("experiment: background: %w", err)
			}
		}
		var err error
		counts, err = bg.Aggregate(agent.Config().T0)
		if err != nil {
			return fmt.Errorf("experiment: background: %w", err)
		}
	}
	floodSYN, err := flood.CountPerPeriod(floodCfg, counts.T0, counts.Periods())
	if err != nil {
		return fmt.Errorf("experiment: flood: %w", err)
	}
	_, err = agent.ProcessCounts(counts.AddFlood(floodSYN))
	return err
}

// runRecordLevel materializes the flood as spoofed-source records,
// merges them into the background trace and replays every record — the
// Figure 6 pipeline verbatim. Retained for pcap-driven inputs and as
// the reference the fast path is pinned against.
func runRecordLevel(cfg RunConfig, agent *core.Agent, floodCfg flood.Config) error {
	bg := cfg.Background
	if bg == nil {
		var err error
		bg, err = trace.Generate(cfg.Profile, cfg.Seed)
		if err != nil {
			return fmt.Errorf("experiment: background: %w", err)
		}
	}
	fl, err := flood.GenerateTrace(floodCfg)
	if err != nil {
		return fmt.Errorf("experiment: flood: %w", err)
	}
	// The mixed trace keeps the background span: the paper's attack
	// always ends within the trace. If a caller configures a flood
	// outlasting the background, the surplus is clipped rather than
	// failing validation. Merge output is sorted, so the clip is a
	// binary-search truncation, not a filtering copy.
	mixed := trace.Merge(bg.Name+"+flood", bg, fl)
	if mixed.Span > bg.Span {
		mixed.ClipSpan(bg.Span)
	}
	_, err = agent.ProcessTrace(mixed)
	return err
}

// Performance aggregates Monte-Carlo runs at one flood rate.
type Performance struct {
	// Rate is fi in SYN/s.
	Rate float64
	// DetectionProb is the fraction of runs that detected the flood.
	DetectionProb float64
	// MeanDetectionPeriods averages the detection delay over detected
	// runs, in observation periods (NaN if none detected).
	MeanDetectionPeriods float64
	// FalseAlarms counts runs that alarmed before the onset.
	FalseAlarms int
	// Runs is the number of Monte-Carlo repetitions.
	Runs int
}

// SweepConfig parameterizes a detection-performance sweep (Tables 2-3).
type SweepConfig struct {
	Profile trace.Profile
	// Background, when non-nil, is replayed as the per-site background
	// instead of generating one from Profile — for callers that already
	// hold the trace (pcap loads, repeated sweeps over one site) and
	// for benchmarks that amortize generation outside the measured
	// loop. Treated as read-only.
	Background *trace.Trace
	Agent      core.Config
	// Rates are the fi values to evaluate.
	Rates []float64
	// Runs is the Monte-Carlo repetition count per rate.
	Runs int
	// OnsetMin/OnsetMax bound the uniformly random flood start (the
	// paper: 3-9 min at UNC, 3-136 min at Auckland).
	OnsetMin, OnsetMax time.Duration
	// FloodDuration is the attack length (paper: 10 min).
	FloodDuration time.Duration
	// Seed drives run randomization.
	Seed int64
	// Parallelism bounds the worker count fanning the (rate, run)
	// cells out; 0 means one worker per CPU. Any value produces
	// bit-identical results: every cell derives its own RNG from
	// (Seed, site, rate, run).
	Parallelism int
	// RecordLevel forces every cell through the record-level
	// merge-and-replay path instead of the counts fast path; see
	// RunConfig.RecordLevel. Either way the artifacts are identical.
	RecordLevel bool
}

func (c *SweepConfig) validate() error {
	if len(c.Rates) == 0 || c.Runs < 1 {
		return errors.New("experiment: sweep needs rates and runs")
	}
	if c.OnsetMin < 0 || c.OnsetMax < c.OnsetMin {
		return errors.New("experiment: bad onset window")
	}
	if c.FloodDuration <= 0 {
		return errors.New("experiment: bad flood duration")
	}
	return nil
}

// Sweep measures detection probability and mean detection time per
// rate, reproducing the methodology behind Tables 2 and 3. The
// background trace is generated (or taken from cfg.Background) — and,
// on the default fast path, aggregated into per-period counts —
// exactly once, then shared read-only across every cell; cells run on
// pooled Runners, so each cell costs O(periods + flood events) with
// no per-cell allocation, rather than O(records log records). The
// (rate, run) cells fan out over cfg.Parallelism workers, each
// deriving its own RNG so the result is independent of scheduling.
func Sweep(cfg SweepConfig) ([]Performance, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bg := cfg.Background
	if bg == nil {
		var err error
		bg, err = trace.Generate(cfg.Profile, seedFor(cfg.Seed, "sweep-background:"+cfg.Profile.Name))
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep background: %w", err)
		}
	}
	var counts *trace.PeriodCounts
	if !cfg.RecordLevel {
		var err error
		counts, err = bg.Aggregate(cfg.Agent.Normalized().T0)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep background: %w", err)
		}
	}
	// Fast-path cells run on pooled Runners: each worker grabs one,
	// restarts its agent and bins the flood into its scratch overlay,
	// so the per-cell loop never touches the allocator. Which runner
	// serves which cell cannot matter — a restarted agent is
	// indistinguishable from a fresh one — so pooling preserves the
	// bit-identical-at-any-Parallelism guarantee.
	var runners sync.Pool
	cells := len(cfg.Rates) * cfg.Runs
	results := make([]RunResult, cells)
	err := ForEach(cfg.Parallelism, cells, func(i int) error {
		rate := cfg.Rates[i/cfg.Runs]
		run := i % cfg.Runs
		rng := rand.New(rand.NewSource(seedFor(cfg.Seed, "sweep-cell:"+cfg.Profile.Name,
			math.Float64bits(rate), uint64(run))))
		onset := cfg.OnsetMin
		if cfg.OnsetMax > cfg.OnsetMin {
			onset += time.Duration(rng.Int63n(int64(cfg.OnsetMax - cfg.OnsetMin)))
		}
		cellCfg := RunConfig{
			Agent:         cfg.Agent,
			Rate:          rate,
			Onset:         onset,
			FloodDuration: cfg.FloodDuration,
			Seed:          rng.Int63(),
		}
		if cfg.RecordLevel {
			cellCfg.Profile = cfg.Profile
			cellCfg.Background = bg
			cellCfg.RecordLevel = true
			res, err := Run(cellCfg)
			if err != nil {
				return err
			}
			results[i] = res
			return nil
		}
		r, _ := runners.Get().(*Runner)
		if r == nil {
			var err error
			r, err = NewRunner(cfg.Agent, counts)
			if err != nil {
				return err
			}
		}
		res, err := r.Run(cellCfg)
		if err != nil {
			return err
		}
		runners.Put(r)
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]Performance, 0, len(cfg.Rates))
	for ri, rate := range cfg.Rates {
		perf := Performance{Rate: rate, Runs: cfg.Runs}
		detected := 0
		totalDelay := 0.0
		for run := 0; run < cfg.Runs; run++ {
			res := results[ri*cfg.Runs+run]
			if res.FalseAlarm {
				perf.FalseAlarms++
				continue
			}
			if res.Detected {
				detected++
				totalDelay += float64(res.DetectionPeriods)
			}
		}
		perf.DetectionProb = float64(detected) / float64(cfg.Runs)
		if detected > 0 {
			perf.MeanDetectionPeriods = totalDelay / float64(detected)
		}
		out = append(out, perf)
	}
	return out, nil
}

// PerformanceTable renders a sweep as a Table 2/3-style table.
func PerformanceTable(id, title string, perfs []Performance) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"fi (SYN/s)", "Detection Prob.", "Detection Time (t0)", "Runs"},
	}
	for _, p := range perfs {
		dt := "-"
		if p.DetectionProb > 0 {
			if p.MeanDetectionPeriods < 1 {
				dt = "<1"
			} else {
				dt = fmt.Sprintf("%.2f", p.MeanDetectionPeriods)
			}
		}
		t.Rows = append(t.Rows, []string{
			trimFloat(p.Rate),
			fmt.Sprintf("%.2f", p.DetectionProb),
			dt,
			fmt.Sprintf("%d", p.Runs),
		})
	}
	return t
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
