package arrival

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestNewPoissonValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoisson(rate, rng); err != ErrBadParam {
			t.Errorf("NewPoisson(%v) error = %v, want ErrBadParam", rate, err)
		}
	}
	if _, err := NewPoisson(10, rng); err != nil {
		t.Errorf("NewPoisson(10) error = %v", err)
	}
}

func TestPoissonMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewPoisson(100, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(-1)
	for i := 0; i < 10000; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival %d not strictly increasing: %v <= %v", i, next, prev)
		}
		prev = next
	}
}

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rate = 50.0
	p, err := NewPoisson(rate, rng)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := Collect(p, 200*time.Second)
	got := float64(len(arrivals)) / 200
	if math.Abs(got-rate) > 0.05*rate {
		t.Errorf("empirical rate = %v, want ~%v", got, rate)
	}
	if p.Rate() != rate {
		t.Errorf("Rate() = %v, want %v", p.Rate(), rate)
	}
}

func TestPoissonInterArrivalCV(t *testing.T) {
	// Exponential inter-arrivals have coefficient of variation 1.
	rng := rand.New(rand.NewSource(4))
	p, _ := NewPoisson(200, rng)
	arrivals := Collect(p, 100*time.Second)
	gaps := make([]float64, 0, len(arrivals)-1)
	for i := 1; i < len(arrivals); i++ {
		gaps = append(gaps, (arrivals[i] - arrivals[i-1]).Seconds())
	}
	cv := stats.StdDev(gaps) / stats.Mean(gaps)
	if math.Abs(cv-1) > 0.1 {
		t.Errorf("Poisson inter-arrival CV = %v, want ~1", cv)
	}
}

func TestNewParetoOnOffValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bad := []ParetoConfig{
		{Sources: 0, MeanRate: 10, Shape: 1.4, MeanOn: 1, MeanOff: 2},
		{Sources: 4, MeanRate: 0, Shape: 1.4, MeanOn: 1, MeanOff: 2},
		{Sources: 4, MeanRate: 10, Shape: 1.0, MeanOn: 1, MeanOff: 2},
		{Sources: 4, MeanRate: 10, Shape: 1.4, MeanOn: 0, MeanOff: 2},
		{Sources: 4, MeanRate: 10, Shape: 1.4, MeanOn: 1, MeanOff: 0},
	}
	for i, cfg := range bad {
		if _, err := NewParetoOnOff(cfg, rng); err != ErrBadParam {
			t.Errorf("case %d: error = %v, want ErrBadParam", i, err)
		}
	}
}

func TestParetoOnOffMonotoneAndRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := ParetoConfig{Sources: 16, MeanRate: 100, Shape: 1.5, MeanOn: 1, MeanOff: 2}
	p, err := NewParetoOnOff(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 300 * time.Second
	arrivals := Collect(p, horizon)
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] < arrivals[i-1] {
			t.Fatalf("merged arrivals not sorted at %d", i)
		}
	}
	got := float64(len(arrivals)) / horizon.Seconds()
	// Heavy tails converge slowly; accept a wide band around the target.
	if got < 0.5*cfg.MeanRate || got > 1.8*cfg.MeanRate {
		t.Errorf("empirical rate = %v, want within [50,180] for target %v", got, cfg.MeanRate)
	}
}

func TestParetoOnOffBurstierThanPoisson(t *testing.T) {
	// The index of dispersion (var/mean of per-bin counts) of the
	// ON/OFF superposition must exceed the Poisson value of ~1.
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	const rate, horizon = 100.0, 400 * time.Second
	bin := time.Second

	poisson, _ := NewPoisson(rate, rngA)
	pCounts := BinCounts(Collect(poisson, horizon), horizon, bin)
	pIdx := stats.Variance(pCounts) / stats.Mean(pCounts)

	onoff, _ := NewParetoOnOff(ParetoConfig{
		Sources: 8, MeanRate: rate, Shape: 1.3, MeanOn: 2, MeanOff: 4,
	}, rngB)
	oCounts := BinCounts(Collect(onoff, horizon), horizon, bin)
	oIdx := stats.Variance(oCounts) / stats.Mean(oCounts)

	if pIdx > 1.5 {
		t.Errorf("Poisson dispersion index = %v, want ~1", pIdx)
	}
	if oIdx < 2*pIdx {
		t.Errorf("ON/OFF dispersion %v not clearly burstier than Poisson %v", oIdx, pIdx)
	}
}

func TestParetoSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 1000; i++ {
		x := paretoSample(rng, 1.5, 2.0)
		if x < 2.0 {
			t.Fatalf("Pareto sample %v below scale 2.0", x)
		}
	}
}

func TestMMPPValidationAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := NewMMPP(0, 1, 1, 1, rng); err != ErrBadParam {
		t.Errorf("zero rate1: error = %v, want ErrBadParam", err)
	}
	if _, err := NewMMPP(1, 1, 0, 1, rng); err != ErrBadParam {
		t.Errorf("zero mean1: error = %v, want ErrBadParam", err)
	}
	m, err := NewMMPP(20, 200, 5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := time.Duration(-1)
	for i := 0; i < 5000; i++ {
		next := m.Next()
		if next <= prev {
			t.Fatalf("MMPP arrival %d not increasing", i)
		}
		prev = next
	}
}

func TestMMPPMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Equal sojourn means: long-run rate = (20+200)/2 = 110.
	m, _ := NewMMPP(20, 200, 5, 5, rng)
	const horizon = 500 * time.Second
	arrivals := Collect(m, horizon)
	got := float64(len(arrivals)) / horizon.Seconds()
	if math.Abs(got-110) > 20 {
		t.Errorf("MMPP empirical rate = %v, want ~110", got)
	}
}

func TestWeibullValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	if _, err := NewWeibull(0, 1, rng); err != ErrBadParam {
		t.Errorf("zero rate error = %v", err)
	}
	if _, err := NewWeibull(10, 0, rng); err != ErrBadParam {
		t.Errorf("zero shape error = %v", err)
	}
	if _, err := NewWeibull(math.NaN(), 1, rng); err != ErrBadParam {
		t.Errorf("NaN rate error = %v", err)
	}
}

func TestWeibullMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, shape := range []float64{0.6, 1.0, 2.0} {
		w, err := NewWeibull(100, shape, rng)
		if err != nil {
			t.Fatal(err)
		}
		arrivals := Collect(w, 200*time.Second)
		got := float64(len(arrivals)) / 200
		if math.Abs(got-100) > 8 {
			t.Errorf("shape %v: empirical rate = %v, want ~100", shape, got)
		}
	}
}

func TestWeibullShapeControlsBurstiness(t *testing.T) {
	// Shape < 1 gives inter-arrival CV > 1 (burstier than Poisson);
	// shape > 1 gives CV < 1 (more regular).
	cv := func(shape float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		w, _ := NewWeibull(200, shape, rng)
		arrivals := Collect(w, 100*time.Second)
		gaps := make([]float64, 0, len(arrivals)-1)
		for i := 1; i < len(arrivals); i++ {
			gaps = append(gaps, (arrivals[i] - arrivals[i-1]).Seconds())
		}
		return stats.StdDev(gaps) / stats.Mean(gaps)
	}
	heavy := cv(0.5, 33)
	poissonish := cv(1.0, 34)
	regular := cv(3.0, 35)
	if heavy <= poissonish {
		t.Errorf("shape 0.5 CV %v should exceed shape 1 CV %v", heavy, poissonish)
	}
	if regular >= poissonish {
		t.Errorf("shape 3 CV %v should be below shape 1 CV %v", regular, poissonish)
	}
	if math.Abs(poissonish-1) > 0.15 {
		t.Errorf("shape 1 CV = %v, want ~1 (Poisson)", poissonish)
	}
}

func TestDiurnalEnvelope(t *testing.T) {
	env := DiurnalEnvelope(24*time.Hour, 0.5)
	if got := env(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("env(0) = %v, want 1", got)
	}
	if got := env(6 * time.Hour); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("env(6h) = %v, want 1.5", got)
	}
	if got := env(18 * time.Hour); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("env(18h) = %v, want 0.5", got)
	}
}

func TestModulatedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := NewPoisson(10, rng)
	env := DiurnalEnvelope(time.Hour, 0.2)
	if _, err := NewModulated(nil, env, 1.2, rng); err != ErrBadParam {
		t.Errorf("nil base: error = %v, want ErrBadParam", err)
	}
	if _, err := NewModulated(p, nil, 1.2, rng); err != ErrBadParam {
		t.Errorf("nil env: error = %v, want ErrBadParam", err)
	}
	if _, err := NewModulated(p, env, 0, rng); err != ErrBadParam {
		t.Errorf("zero peak: error = %v, want ErrBadParam", err)
	}
}

func TestModulatedFollowsEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Base runs at 2x target so a peak multiplier of 2 preserves the mean.
	base, _ := NewPoisson(400, rng)
	period := 100 * time.Second
	env := DiurnalEnvelope(period, 0.8)
	m, err := NewModulated(base, env, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := Collect(m, period)
	// First half of the sine period has multiplier > 1, second half < 1.
	var firstHalf, secondHalf int
	for _, a := range arrivals {
		if a < period/2 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	if firstHalf <= secondHalf {
		t.Errorf("modulation not visible: first=%d second=%d", firstHalf, secondHalf)
	}
}

func TestCollectHorizon(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, _ := NewPoisson(100, rng)
	horizon := 10 * time.Second
	arrivals := Collect(p, horizon)
	if len(arrivals) == 0 {
		t.Fatal("no arrivals collected")
	}
	for _, a := range arrivals {
		if a > horizon {
			t.Fatalf("arrival %v beyond horizon %v", a, horizon)
		}
	}
}

func TestBinCounts(t *testing.T) {
	arrivals := []time.Duration{
		0, time.Second / 2, time.Second, 3 * time.Second, 9 * time.Second,
		10 * time.Second, // at horizon: ignored
	}
	counts := BinCounts(arrivals, 10*time.Second, time.Second)
	if len(counts) != 10 {
		t.Fatalf("len = %d, want 10", len(counts))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[3] != 1 || counts[9] != 1 {
		t.Errorf("counts = %v", counts)
	}
	total := stats.Sum(counts)
	if total != 5 {
		t.Errorf("total binned = %v, want 5 (horizon arrival excluded)", total)
	}
	if got := BinCounts(arrivals, 0, time.Second); got != nil {
		t.Errorf("zero horizon should yield nil, got %v", got)
	}
	if got := BinCounts(arrivals, 10*time.Second, 0); got != nil {
		t.Errorf("zero width should yield nil, got %v", got)
	}
}

func TestSecondsToDurationGuards(t *testing.T) {
	if got := secondsToDuration(-5); got != time.Nanosecond {
		t.Errorf("negative seconds -> %v, want 1ns", got)
	}
	if got := secondsToDuration(math.NaN()); got != time.Nanosecond {
		t.Errorf("NaN seconds -> %v, want 1ns", got)
	}
	if got := secondsToDuration(0); got != time.Nanosecond {
		t.Errorf("zero seconds -> %v, want 1ns", got)
	}
	if got := secondsToDuration(1.5); got != 1500*time.Millisecond {
		t.Errorf("1.5s -> %v", got)
	}
	// Huge values are clamped, not overflowed.
	if got := secondsToDuration(1e12); got <= 0 {
		t.Errorf("huge seconds overflowed to %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	// Two processes with the same seed must produce identical streams.
	mk := func() []time.Duration {
		rng := rand.New(rand.NewSource(99))
		p, _ := NewParetoOnOff(ParetoConfig{
			Sources: 4, MeanRate: 50, Shape: 1.4, MeanOn: 1, MeanOff: 2,
		}, rng)
		return Collect(p, 30*time.Second)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
