// Package arrival models the connection-request arrival processes used
// to synthesize background traffic for the SYN-dog reproduction.
//
// The paper stresses (Section 3.2) that there is no consensus on
// whether TCP connection arrivals are Poisson or self-similar, which
// is exactly why the detector is non-parametric. To validate that the
// detector is insensitive to the arrival model, this package provides
// several generators behind a single Process interface:
//
//   - Poisson: memoryless arrivals at a fixed rate.
//   - ParetoOnOff: a superposition of heavy-tailed ON/OFF sources,
//     the standard construction of self-similar traffic.
//   - MMPP: a two-state Markov-modulated Poisson process for
//     regime-switching burstiness.
//   - Modulated: wraps any Process with a deterministic rate envelope
//     (diurnal drift, trends).
//
// All processes draw randomness from an explicit *rand.Rand so that
// every experiment is reproducible from a seed.
package arrival

import (
	"errors"
	"math"
	"math/rand"
	"time"
)

// Process produces a monotonically non-decreasing sequence of arrival
// times. Implementations are single-goroutine objects: wrap with
// external locking if shared.
type Process interface {
	// Next returns the time of the next arrival. The sequence returned
	// by successive calls is non-decreasing and unbounded.
	Next() time.Duration
}

// ErrBadParam reports an invalid generator parameter.
var ErrBadParam = errors.New("arrival: invalid parameter")

// Poisson is a homogeneous Poisson process with the given rate
// (arrivals per second). Inter-arrival times are i.i.d. exponential.
type Poisson struct {
	rate float64
	now  time.Duration
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process with the given positive rate.
func NewPoisson(rate float64, rng *rand.Rand) (*Poisson, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, ErrBadParam
	}
	return &Poisson{rate: rate, rng: rng}, nil
}

// Next implements Process.
func (p *Poisson) Next() time.Duration {
	gap := p.rng.ExpFloat64() / p.rate
	p.now += secondsToDuration(gap)
	return p.now
}

// Rate returns the configured arrival rate in arrivals/second.
func (p *Poisson) Rate() float64 { return p.rate }

// paretoSource is one ON/OFF source: during ON it emits arrivals at
// peakRate; ON and OFF period lengths are Pareto distributed with the
// given shape, producing long-range dependence for 1 < shape < 2.
type paretoSource struct {
	peakRate   float64
	onShape    float64
	offShape   float64
	onScale    float64 // minimum ON duration, seconds
	offScale   float64 // minimum OFF duration, seconds
	on         bool
	periodEnds time.Duration
	now        time.Duration
	rng        *rand.Rand
}

func (s *paretoSource) advancePeriod() {
	s.on = !s.on
	var length float64
	if s.on {
		length = paretoSample(s.rng, s.onShape, s.onScale)
	} else {
		length = paretoSample(s.rng, s.offShape, s.offScale)
	}
	s.periodEnds += secondsToDuration(length)
}

// next returns the next arrival time of this single source.
func (s *paretoSource) next() time.Duration {
	for {
		if s.on {
			gap := s.rng.ExpFloat64() / s.peakRate
			candidate := s.now + secondsToDuration(gap)
			if candidate <= s.periodEnds {
				s.now = candidate
				return s.now
			}
			// The arrival would land after the ON period: skip to the
			// end of the period and flip to OFF.
			s.now = s.periodEnds
			s.advancePeriod()
			continue
		}
		// OFF: jump to the end of the silence.
		s.now = s.periodEnds
		s.advancePeriod()
	}
}

// paretoSample draws from a Pareto distribution with the given shape
// (alpha) and scale (minimum value).
func paretoSample(rng *rand.Rand, shape, scale float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale / math.Pow(u, 1/shape)
}

// ParetoOnOff superposes n heavy-tailed ON/OFF sources. With ON/OFF
// durations Pareto(shape in (1,2)) the aggregate is asymptotically
// self-similar with Hurst exponent H = (3-shape)/2 (Willinger et al.),
// matching the burstiness of measured wide-area TCP arrivals.
type ParetoOnOff struct {
	sources []*paretoSource
	heads   []time.Duration
}

// ParetoConfig parameterizes a ParetoOnOff process.
type ParetoConfig struct {
	// Sources is the number of superposed ON/OFF sources.
	Sources int
	// MeanRate is the target aggregate arrival rate (arrivals/second).
	MeanRate float64
	// Shape is the Pareto tail index of ON and OFF durations; values in
	// (1, 2) yield long-range dependence. Typical: 1.4.
	Shape float64
	// MeanOn and MeanOff are the mean ON and OFF period durations in
	// seconds. Typical: 1.0 and 2.0.
	MeanOn, MeanOff float64
}

// NewParetoOnOff builds the superposition. The per-source peak rate is
// chosen so the aggregate long-run mean equals cfg.MeanRate.
func NewParetoOnOff(cfg ParetoConfig, rng *rand.Rand) (*ParetoOnOff, error) {
	if cfg.Sources < 1 || cfg.MeanRate <= 0 || cfg.Shape <= 1 ||
		cfg.MeanOn <= 0 || cfg.MeanOff <= 0 {
		return nil, ErrBadParam
	}
	// Pareto mean = shape*scale/(shape-1), so scale = mean*(shape-1)/shape.
	onScale := cfg.MeanOn * (cfg.Shape - 1) / cfg.Shape
	offScale := cfg.MeanOff * (cfg.Shape - 1) / cfg.Shape
	dutyCycle := cfg.MeanOn / (cfg.MeanOn + cfg.MeanOff)
	perSource := cfg.MeanRate / (float64(cfg.Sources) * dutyCycle)

	p := &ParetoOnOff{
		sources: make([]*paretoSource, cfg.Sources),
		heads:   make([]time.Duration, cfg.Sources),
	}
	for i := range p.sources {
		src := &paretoSource{
			peakRate: perSource,
			onShape:  cfg.Shape,
			offShape: cfg.Shape,
			onScale:  onScale,
			offScale: offScale,
			on:       rng.Float64() < dutyCycle, // random initial phase
			rng:      rng,
		}
		// Random residual time in the initial period.
		var length float64
		if src.on {
			length = paretoSample(rng, src.onShape, src.onScale)
		} else {
			length = paretoSample(rng, src.offShape, src.offScale)
		}
		src.periodEnds = secondsToDuration(length * rng.Float64())
		p.sources[i] = src
		p.heads[i] = src.next()
	}
	return p, nil
}

// Next implements Process by merging the per-source arrival streams.
func (p *ParetoOnOff) Next() time.Duration {
	best := 0
	for i := 1; i < len(p.heads); i++ {
		if p.heads[i] < p.heads[best] {
			best = i
		}
	}
	t := p.heads[best]
	p.heads[best] = p.sources[best].next()
	return t
}

// MMPP is a two-state Markov-modulated Poisson process: the arrival
// rate alternates between Rate1 and Rate2, with exponentially
// distributed sojourn times Mean1 and Mean2 (seconds).
type MMPP struct {
	rate      [2]float64
	meanStay  [2]float64
	state     int
	stateEnds time.Duration
	now       time.Duration
	rng       *rand.Rand
}

// NewMMPP builds a two-state MMPP.
func NewMMPP(rate1, rate2, mean1, mean2 float64, rng *rand.Rand) (*MMPP, error) {
	if rate1 <= 0 || rate2 <= 0 || mean1 <= 0 || mean2 <= 0 {
		return nil, ErrBadParam
	}
	m := &MMPP{
		rate:     [2]float64{rate1, rate2},
		meanStay: [2]float64{mean1, mean2},
		rng:      rng,
	}
	m.stateEnds = secondsToDuration(rng.ExpFloat64() * mean1)
	return m, nil
}

// Next implements Process.
func (m *MMPP) Next() time.Duration {
	for {
		gap := m.rng.ExpFloat64() / m.rate[m.state]
		candidate := m.now + secondsToDuration(gap)
		if candidate <= m.stateEnds {
			m.now = candidate
			return m.now
		}
		m.now = m.stateEnds
		m.state = 1 - m.state
		stay := m.rng.ExpFloat64() * m.meanStay[m.state]
		m.stateEnds += secondsToDuration(stay)
	}
}

// Weibull is a renewal process with Weibull-distributed inter-arrival
// times. Feldmann's measurements of TCP connection arrivals found
// Weibull inter-arrivals with shape < 1 (heavier than exponential),
// the middle ground between Poisson and the ON/OFF superposition.
// Shape 1 reduces exactly to Poisson.
type Weibull struct {
	shape float64
	scale float64 // chosen so the mean rate matches
	now   time.Duration
	rng   *rand.Rand
}

// NewWeibull builds a renewal process with the given mean rate
// (arrivals/second) and Weibull shape (> 0; < 1 is burstier than
// Poisson). The scale derives from rate via the Weibull mean
// scale·Γ(1+1/shape).
func NewWeibull(rate, shape float64, rng *rand.Rand) (*Weibull, error) {
	if rate <= 0 || shape <= 0 || math.IsNaN(rate) || math.IsNaN(shape) {
		return nil, ErrBadParam
	}
	meanGap := 1 / rate
	scale := meanGap / math.Gamma(1+1/shape)
	return &Weibull{shape: shape, scale: scale, rng: rng}, nil
}

// Next implements Process by Weibull inversion sampling:
// X = scale·(−ln U)^(1/shape).
func (w *Weibull) Next() time.Duration {
	u := w.rng.Float64()
	for u == 0 {
		u = w.rng.Float64()
	}
	gap := w.scale * math.Pow(-math.Log(u), 1/w.shape)
	w.now += secondsToDuration(gap)
	return w.now
}

// Envelope maps an absolute time to a rate multiplier (>= 0). It is
// used to impose slow deterministic variation, such as time-of-day
// drift, on top of a stochastic process.
type Envelope func(t time.Duration) float64

// DiurnalEnvelope returns a sinusoidal envelope with the given period
// and relative amplitude in [0, 1): multiplier = 1 + amp*sin(2πt/period).
func DiurnalEnvelope(period time.Duration, amp float64) Envelope {
	return func(t time.Duration) float64 {
		phase := 2 * math.Pi * float64(t) / float64(period)
		return 1 + amp*math.Sin(phase)
	}
}

// Modulated thins a base Process with an Envelope, implementing
// time-varying rates: an arrival at time t survives with probability
// envelope(t)/peak.
type Modulated struct {
	base Process
	env  Envelope
	peak float64
	rng  *rand.Rand
}

// NewModulated wraps base. peak must be an upper bound of the envelope
// over all times; the base process should run at peak times the target
// mean rate for correct thinning.
func NewModulated(base Process, env Envelope, peak float64, rng *rand.Rand) (*Modulated, error) {
	if base == nil || env == nil || peak <= 0 {
		return nil, ErrBadParam
	}
	return &Modulated{base: base, env: env, peak: peak, rng: rng}, nil
}

// Next implements Process.
func (m *Modulated) Next() time.Duration {
	for {
		t := m.base.Next()
		if m.rng.Float64()*m.peak <= m.env(t) {
			return t
		}
	}
}

// Collect drains arrivals from p up to horizon and returns them as a
// slice. It is a convenience for tests and trace generation.
func Collect(p Process, horizon time.Duration) []time.Duration {
	var out []time.Duration
	for {
		t := p.Next()
		if t > horizon {
			return out
		}
		out = append(out, t)
	}
}

// BinCounts buckets arrival times into fixed-width bins covering
// [0, horizon) and returns the per-bin counts. Arrivals at or beyond
// the horizon are ignored.
func BinCounts(arrivals []time.Duration, horizon, width time.Duration) []float64 {
	if width <= 0 || horizon <= 0 {
		return nil
	}
	n := int(horizon / width)
	if n == 0 {
		return nil
	}
	counts := make([]float64, n)
	for _, t := range arrivals {
		idx := int(t / width)
		if idx >= 0 && idx < n {
			counts[idx]++
		}
	}
	return counts
}

// secondsToDuration converts a float seconds value to time.Duration,
// guarding against pathological values. Gaps are clamped to at least
// one nanosecond so that arrival sequences strictly advance.
func secondsToDuration(s float64) time.Duration {
	if s < 0 || math.IsNaN(s) {
		return time.Nanosecond
	}
	if s > 1e9 { // ~31 years; treat as effectively unbounded
		s = 1e9
	}
	d := time.Duration(s * float64(time.Second))
	if d < time.Nanosecond {
		return time.Nanosecond
	}
	return d
}
