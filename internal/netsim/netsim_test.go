package netsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

type sink struct {
	segs  []packet.Segment
	times []time.Duration
}

func (s *sink) Deliver(now time.Duration, seg packet.Segment) {
	s.segs = append(s.segs, seg)
	s.times = append(s.times, now)
}

func seg(src, dst string, flags uint8) packet.Segment {
	return packet.Build(
		netip.MustParseAddr(src), netip.MustParseAddr(dst),
		1234, 80, 1, 0, flags,
	)
}

func TestDirectionString(t *testing.T) {
	if Inbound.String() != "inbound" || Outbound.String() != "outbound" {
		t.Error("direction strings wrong")
	}
	if Direction(9).String() != "direction(9)" {
		t.Error("unknown direction string wrong")
	}
}

func TestLinkDelayAndDelivery(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	l, err := NewLink(sim, &dst, 5*time.Millisecond, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
	sim.Run()
	if len(dst.segs) != 1 {
		t.Fatalf("delivered %d, want 1", len(dst.segs))
	}
	if dst.times[0] != 5*time.Millisecond {
		t.Errorf("delivered at %v, want 5ms", dst.times[0])
	}
	sent, delivered, dropped := l.Stats()
	if sent != 1 || delivered != 1 || dropped != 0 {
		t.Errorf("stats = %d/%d/%d", sent, delivered, dropped)
	}
}

func TestLinkValidation(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	if _, err := NewLink(sim, &dst, 0, -0.1, nil); err != ErrBadLoss {
		t.Errorf("negative loss error = %v, want ErrBadLoss", err)
	}
	if _, err := NewLink(sim, &dst, 0, 1.0, nil); err != ErrBadLoss {
		t.Errorf("loss=1 error = %v, want ErrBadLoss", err)
	}
	if _, err := NewLink(sim, &dst, 0, 0.5, nil); err == nil {
		t.Error("lossy link without rng should fail")
	}
	if _, err := NewLink(sim, &dst, -time.Second, 0, nil); err != nil {
		t.Errorf("negative delay should clamp, got error %v", err)
	}
}

func TestLinkLossRate(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	rng := rand.New(rand.NewSource(42))
	l, err := NewLink(sim, &dst, 0, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
	}
	sim.Run()
	_, delivered, dropped := l.Stats()
	lossRate := float64(dropped) / n
	if lossRate < 0.27 || lossRate > 0.33 {
		t.Errorf("loss rate = %v, want ~0.3", lossRate)
	}
	if delivered+dropped != n {
		t.Errorf("delivered+dropped = %d, want %d", delivered+dropped, n)
	}
}

func TestHostUnconnectedSendDoesNotPanic(t *testing.T) {
	h := NewHost(netip.MustParseAddr("10.0.0.1"))
	h.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN)) // no uplink: dropped
	if h.Received() != 0 {
		t.Error("nothing was delivered")
	}
}

// buildTwoStubTopology wires two stub networks through one cloud:
// stub A (10.1.0.0/24, 2 hosts) and stub B (10.2.0.0/24, 1 host).
func buildTwoStubTopology(t *testing.T) (*eventsim.Sim, *Internet, *StubNetwork, *StubNetwork) {
	t.Helper()
	sim := eventsim.New()
	cloud := NewInternet(sim)
	a, err := BuildStub(sim, cloud, StubConfig{
		Prefix:      netip.MustParsePrefix("10.1.0.0/24"),
		Hosts:       2,
		HostDelay:   time.Millisecond,
		UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStub(sim, cloud, StubConfig{
		Prefix:      netip.MustParsePrefix("10.2.0.0/24"),
		Hosts:       1,
		HostDelay:   time.Millisecond,
		UplinkDelay: 10 * time.Millisecond,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sim, cloud, a, b
}

func TestCrossStubDelivery(t *testing.T) {
	sim, cloud, a, b := buildTwoStubTopology(t)
	var got []packet.Segment
	b.Hosts[0].OnPacket = func(_ time.Duration, s packet.Segment) {
		got = append(got, s)
	}
	src := a.Hosts[0]
	dst := b.Hosts[0]
	src.Send(packet.Build(src.Addr, dst.Addr, 1000, 80, 7, 0, packet.FlagSYN))
	sim.Run()
	if len(got) != 1 {
		t.Fatalf("victim received %d packets, want 1", len(got))
	}
	if got[0].IP.Src != src.Addr || got[0].TCP.Seq != 7 {
		t.Errorf("wrong packet delivered: %+v", got[0])
	}
	routed, unroutable := cloud.Counters()
	if routed != 1 || unroutable != 0 {
		t.Errorf("cloud counters = %d/%d, want 1/0", routed, unroutable)
	}
	// End-to-end delay: host(1ms) + uplink(10ms) + downlink(10ms) + host(1ms).
	if sim.Now() != 22*time.Millisecond {
		t.Errorf("final time = %v, want 22ms", sim.Now())
	}
}

func TestIntraStubTrafficSkipsTaps(t *testing.T) {
	sim, _, a, _ := buildTwoStubTopology(t)
	tapped := 0
	a.Router.AddTap(func(time.Duration, Direction, *packet.Segment) { tapped++ })
	var delivered int
	a.Hosts[1].OnPacket = func(time.Duration, packet.Segment) { delivered++ }
	a.Hosts[0].Send(packet.Build(a.Hosts[0].Addr, a.Hosts[1].Addr, 1, 2, 3, 0, packet.FlagSYN))
	sim.Run()
	if delivered != 1 {
		t.Fatalf("intra-stub delivery failed: %d", delivered)
	}
	if tapped != 0 {
		t.Errorf("taps fired %d times on local traffic, want 0", tapped)
	}
	_, _, local, _ := a.Router.Counters()
	if local != 1 {
		t.Errorf("localSwitched = %d, want 1", local)
	}
}

func TestTapsObserveDirections(t *testing.T) {
	sim, _, a, b := buildTwoStubTopology(t)
	var events []Direction
	var kinds []packet.Kind
	a.Router.AddTap(func(_ time.Duration, dir Direction, s *packet.Segment) {
		events = append(events, dir)
		kinds = append(kinds, s.Kind())
	})
	// Host in A sends SYN to B; host in B replies SYN/ACK.
	b.Hosts[0].OnPacket = func(_ time.Duration, s packet.Segment) {
		reply := packet.Build(s.IP.Dst, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
			100, s.TCP.Seq+1, packet.FlagSYN|packet.FlagACK)
		b.Hosts[0].Send(reply)
	}
	a.Hosts[0].Send(packet.Build(a.Hosts[0].Addr, b.Hosts[0].Addr, 9, 80, 1, 0, packet.FlagSYN))
	sim.Run()
	if len(events) != 2 {
		t.Fatalf("tap fired %d times, want 2 (SYN out, SYN/ACK in)", len(events))
	}
	if events[0] != Outbound || kinds[0] != packet.KindSYN {
		t.Errorf("first crossing = %v/%v, want outbound/syn", events[0], kinds[0])
	}
	if events[1] != Inbound || kinds[1] != packet.KindSYNACK {
		t.Errorf("second crossing = %v/%v, want inbound/syn-ack", events[1], kinds[1])
	}
}

func TestSpoofedSourceStillForwarded(t *testing.T) {
	// A flooder inside stub A spoofs a source outside the stub. The
	// stateless router must forward it (and the outbound tap sees it).
	sim, cloud, a, b := buildTwoStubTopology(t)
	outbound := 0
	a.Router.AddTap(func(_ time.Duration, dir Direction, _ *packet.Segment) {
		if dir == Outbound {
			outbound++
		}
	})
	received := 0
	b.Hosts[0].OnPacket = func(time.Duration, packet.Segment) { received++ }
	spoofed := packet.Build(netip.MustParseAddr("203.0.113.7"), b.Hosts[0].Addr,
		666, 80, 1, 0, packet.FlagSYN)
	a.Hosts[0].Send(spoofed)
	sim.Run()
	if outbound != 1 {
		t.Errorf("outbound tap fired %d, want 1", outbound)
	}
	if received != 1 {
		t.Errorf("victim received %d, want 1", received)
	}
	routed, _ := cloud.Counters()
	if routed != 1 {
		t.Errorf("cloud routed = %d, want 1", routed)
	}
}

func TestUnroutableDestinations(t *testing.T) {
	sim, cloud, a, _ := buildTwoStubTopology(t)
	// Destination outside every stub: vanishes in the cloud. This is
	// the fate of SYN/ACKs toward spoofed, unallocated addresses.
	a.Hosts[0].Send(packet.Build(a.Hosts[0].Addr,
		netip.MustParseAddr("198.51.100.1"), 1, 2, 3, 0, packet.FlagSYN))
	sim.Run()
	_, unroutable := cloud.Counters()
	if unroutable != 1 {
		t.Errorf("cloud unroutable = %d, want 1", unroutable)
	}
	// Destination inside the stub but not an attached host: router drops.
	ext := packet.Build(netip.MustParseAddr("10.2.0.1"),
		netip.MustParseAddr("10.1.0.99"), 1, 2, 3, 0, packet.FlagSYN)
	a.Router.Deliver(sim.Now(), ext)
	sim.Run()
	_, _, _, unroutableRtr := a.Router.Counters()
	if unroutableRtr != 1 {
		t.Errorf("router unroutable = %d, want 1", unroutableRtr)
	}
}

func TestAttachHostValidation(t *testing.T) {
	r := NewLeafRouter(netip.MustParsePrefix("10.1.0.0/24"))
	sim := eventsim.New()
	l, _ := NewLink(sim, &sink{}, 0, 0, nil)
	outside := netip.MustParseAddr("10.9.0.1")
	if err := r.AttachHost(outside, l); err != ErrNotInPrefix {
		t.Errorf("outside prefix error = %v, want ErrNotInPrefix", err)
	}
	inside := netip.MustParseAddr("10.1.0.5")
	if err := r.AttachHost(inside, l); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachHost(inside, l); err != ErrDuplicateHost {
		t.Errorf("duplicate error = %v, want ErrDuplicateHost", err)
	}
}

func TestInternetDuplicatePrefix(t *testing.T) {
	sim := eventsim.New()
	cloud := NewInternet(sim)
	l, _ := NewLink(sim, &sink{}, 0, 0, nil)
	p := netip.MustParsePrefix("10.1.0.0/24")
	if err := cloud.Attach(p, l); err != nil {
		t.Fatal(err)
	}
	if err := cloud.Attach(p, l); err != ErrDuplicatePrefix {
		t.Errorf("duplicate prefix error = %v, want ErrDuplicatePrefix", err)
	}
}

func TestBuildStubValidation(t *testing.T) {
	sim := eventsim.New()
	cloud := NewInternet(sim)
	if _, err := BuildStub(sim, cloud, StubConfig{
		Prefix: netip.MustParsePrefix("10.1.0.0/24"),
		Hosts:  0,
	}, nil); err == nil {
		t.Error("zero hosts should fail")
	}
	// /30 has 3 usable successor addresses at most; 10 hosts cannot fit.
	if _, err := BuildStub(sim, cloud, StubConfig{
		Prefix: netip.MustParsePrefix("10.1.0.0/30"),
		Hosts:  10,
	}, nil); err == nil {
		t.Error("prefix overflow should fail")
	}
}

func TestBuildStubHostAddressing(t *testing.T) {
	sim := eventsim.New()
	cloud := NewInternet(sim)
	stub, err := BuildStub(sim, cloud, StubConfig{
		Prefix: netip.MustParsePrefix("10.5.0.0/24"),
		Hosts:  3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.5.0.1", "10.5.0.2", "10.5.0.3"}
	for i, h := range stub.Hosts {
		if h.Addr != netip.MustParseAddr(want[i]) {
			t.Errorf("host %d addr = %v, want %v", i, h.Addr, want[i])
		}
	}
}
