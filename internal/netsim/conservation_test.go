package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

// TestPacketConservationProperty builds random multi-stub topologies,
// fires random packets (some to valid hosts, some to void), and checks
// global packet conservation: every sent packet is eventually
// delivered to a host, dropped by a router for lack of a local route,
// or swallowed by the cloud as unroutable. Nothing may vanish or
// duplicate.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := eventsim.New()
		cloud := NewInternet(sim)

		nStubs := 2 + rng.Intn(4)
		stubs := make([]*StubNetwork, nStubs)
		var allHosts []*Host
		for i := range stubs {
			var err error
			stubs[i], err = BuildStub(sim, cloud, StubConfig{
				Prefix:      netip.MustParsePrefix(fmt.Sprintf("10.%d.0.0/24", i+1)),
				Hosts:       1 + rng.Intn(3),
				HostDelay:   time.Duration(rng.Intn(5)) * time.Millisecond,
				UplinkDelay: time.Duration(rng.Intn(10)) * time.Millisecond,
			}, nil)
			if err != nil {
				return false
			}
			allHosts = append(allHosts, stubs[i].Hosts...)
		}

		received := 0
		for _, h := range allHosts {
			h.OnPacket = func(time.Duration, packet.Segment) { received++ }
		}

		sent := 0
		nPackets := 50 + rng.Intn(200)
		for p := 0; p < nPackets; p++ {
			src := allHosts[rng.Intn(len(allHosts))]
			var dst netip.Addr
			switch rng.Intn(4) {
			case 0: // valid host anywhere
				dst = allHosts[rng.Intn(len(allHosts))].Addr
			case 1: // inside a stub but no such host
				dst = netip.AddrFrom4([4]byte{10, byte(1 + rng.Intn(nStubs)), 0, 200})
			case 2: // outside every stub
				dst = netip.AddrFrom4([4]byte{203, 0, 113, byte(rng.Intn(255))})
			default: // spoofed source to a valid host
				dst = allHosts[rng.Intn(len(allHosts))].Addr
			}
			src.Send(packet.Build(src.Addr, dst, 1000, 80, uint32(p), 0, packet.FlagSYN))
			sent++
		}
		sim.Run()

		// Account: host deliveries + router unroutable drops + cloud
		// unroutable drops must equal packets sent (self-addressed
		// packets loop through the router back to the host).
		var routerDrops uint64
		for _, s := range stubs {
			_, _, _, unroutable := s.Router.Counters()
			routerDrops += unroutable
		}
		_, cloudDrops := cloud.Counters()
		total := received + int(routerDrops) + int(cloudDrops)
		return total == sent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTapSeesExactlyCrossingPackets checks the tap-count invariant on
// a random workload: outbound taps fire exactly once per packet that
// leaves the stub, inbound taps once per packet that enters.
func TestTapSeesExactlyCrossingPackets(t *testing.T) {
	sim := eventsim.New()
	cloud := NewInternet(sim)
	a, err := BuildStub(sim, cloud, StubConfig{
		Prefix: netip.MustParsePrefix("10.1.0.0/24"), Hosts: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildStub(sim, cloud, StubConfig{
		Prefix: netip.MustParsePrefix("10.2.0.0/24"), Hosts: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tapOut, tapIn int
	a.Router.AddTap(func(_ time.Duration, dir Direction, _ *packet.Segment) {
		if dir == Outbound {
			tapOut++
		} else {
			tapIn++
		}
	})
	rng := rand.New(rand.NewSource(5))
	wantOut, wantIn, wantLocal := 0, 0, 0
	for i := 0; i < 300; i++ {
		src := a.Hosts[rng.Intn(2)]
		var dst netip.Addr
		switch rng.Intn(3) {
		case 0:
			dst = b.Hosts[0].Addr
			wantOut++
			// b replies; nothing comes back into a here.
		case 1:
			dst = a.Hosts[1-rng.Intn(2)].Addr // may be self
			wantLocal++
		default:
			dst = netip.MustParseAddr("203.0.113.9")
			wantOut++
		}
		src.Send(packet.Build(src.Addr, dst, 1, 2, uint32(i), 0, packet.FlagSYN))
	}
	// b's host answers each received SYN, generating inbound arrivals
	// at a.
	bHost := b.Hosts[0]
	// Re-send answers for packets already queued: set handler before Run.
	bHost.OnPacket = func(_ time.Duration, s packet.Segment) {
		if s.Kind() == packet.KindSYN && s.IP.Src != bHost.Addr {
			bHost.Send(packet.Build(bHost.Addr, s.IP.Src, s.TCP.DstPort, s.TCP.SrcPort,
				9, s.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
			wantIn++
		}
	}
	sim.Run()
	if tapOut != wantOut {
		t.Errorf("outbound tap fired %d, want %d", tapOut, wantOut)
	}
	if tapIn != wantIn {
		t.Errorf("inbound tap fired %d, want %d", tapIn, wantIn)
	}
	_, _, local, _ := a.Router.Counters()
	if int(local) != wantLocal {
		t.Errorf("local switched %d, want %d", local, wantLocal)
	}
}
