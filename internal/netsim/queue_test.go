package netsim

import (
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

func TestNewQueuedLinkValidation(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	if _, err := NewQueuedLink(sim, &dst, 0, 0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewQueuedLink(sim, &dst, 0, -5, 10); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewQueuedLink(sim, &dst, 0, 100, 0); err == nil {
		t.Error("zero buffer accepted")
	}
	if _, err := NewQueuedLink(sim, &dst, -time.Second, 100, 10); err != nil {
		t.Errorf("negative delay should clamp: %v", err)
	}
}

func TestQueuedLinkServiceSpacing(t *testing.T) {
	// 10 packets at 100 pkt/s: delivery times 10ms, 20ms, ..., 100ms
	// (plus zero propagation).
	sim := eventsim.New()
	var dst sink
	l, err := NewQueuedLink(sim, &dst, 0, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
	}
	sim.Run()
	if len(dst.times) != 10 {
		t.Fatalf("delivered %d, want 10", len(dst.times))
	}
	for i, ts := range dst.times {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if ts != want {
			t.Errorf("packet %d delivered at %v, want %v", i, ts, want)
		}
	}
}

func TestQueuedLinkPropagationAfterService(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	l, _ := NewQueuedLink(sim, &dst, 50*time.Millisecond, 100, 10)
	l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
	sim.Run()
	if dst.times[0] != 60*time.Millisecond { // 10ms service + 50ms prop
		t.Errorf("delivered at %v, want 60ms", dst.times[0])
	}
}

func TestQueuedLinkTailDrop(t *testing.T) {
	sim := eventsim.New()
	var dst sink
	// Buffer 4: a burst of 20 co-timed packets keeps 1 in service +
	// 4 queued at each step, dropping the overflow.
	l, _ := NewQueuedLink(sim, &dst, 0, 1000, 4)
	for i := 0; i < 20; i++ {
		l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
	}
	sim.Run()
	sent, served, dropped := l.Stats()
	if sent != 20 {
		t.Errorf("sent = %d", sent)
	}
	if served+dropped != 20 {
		t.Errorf("served %d + dropped %d != 20", served, dropped)
	}
	if dropped == 0 {
		t.Error("no drops despite tiny buffer")
	}
	if l.MaxQueueDepth() > 4 {
		t.Errorf("queue exceeded buffer: %d", l.MaxQueueDepth())
	}
	if len(dst.segs) != int(served) {
		t.Errorf("delivered %d != served %d", len(dst.segs), served)
	}
}

func TestQueuedLinkSustainableLoadNoDrops(t *testing.T) {
	// Offered 50 pkt/s against a 100 pkt/s server: no loss.
	sim := eventsim.New()
	var dst sink
	l, _ := NewQueuedLink(sim, &dst, 0, 100, 8)
	for i := 0; i < 100; i++ {
		i := i
		sim.After(time.Duration(i)*20*time.Millisecond, func(time.Duration) {
			l.Send(seg("10.0.0.1", "10.0.0.2", packet.FlagSYN))
		})
	}
	sim.Run()
	_, served, dropped := l.Stats()
	if dropped != 0 {
		t.Errorf("dropped %d under sustainable load", dropped)
	}
	if served != 100 {
		t.Errorf("served = %d, want 100", served)
	}
	if l.QueueDepth() != 0 {
		t.Errorf("queue not drained: %d", l.QueueDepth())
	}
}

func TestCongestionCausesBenignSYNLoss(t *testing.T) {
	// The paper's second discrepancy cause, end to end: SYNs crossing
	// a congested uplink are partially lost, so SYN/ACK counts lag SYN
	// counts — but the resulting normalized discrepancy must stay
	// under the CUSUM offset for sensibly provisioned links.
	sim := eventsim.New()
	var answered sink
	// 120 SYN/s offered into a 100 pkt/s bottleneck: ~17% loss.
	bottleneck, _ := NewQueuedLink(sim, &answered, time.Millisecond, 100, 16)
	const offered = 1200 // 120/s for 10s
	for i := 0; i < offered; i++ {
		i := i
		sim.After(time.Duration(i)*time.Second/120, func(time.Duration) {
			bottleneck.Send(seg("10.0.0.1", "11.0.0.1", packet.FlagSYN))
		})
	}
	sim.Run()
	_, served, dropped := bottleneck.Stats()
	lossRate := float64(dropped) / offered
	if lossRate < 0.1 || lossRate > 0.25 {
		t.Errorf("loss rate = %.2f, want ≈0.17", lossRate)
	}
	if served+dropped != offered {
		t.Error("packet conservation violated")
	}
}
