// Package netsim is a deterministic, event-driven network simulator
// used to emulate the paper's deployment: stub networks connected to
// the Internet through leaf routers, with SYN-dog taps on the leaf
// router's inbound and outbound interfaces (Figure 2 of the paper).
//
// Topology model:
//
//	Host --link--> LeafRouter --link--> Internet <--link-- LeafRouter ...
//
// Every leaf router owns a stub prefix. Packets from a stub host to an
// external destination cross the router's outbound interface (firing
// outbound taps), traverse the Internet cloud, and descend through the
// destination router's inbound interface (firing inbound taps there).
// Intra-stub traffic is switched locally and never fires taps, exactly
// as interface-attached sniffers would observe.
//
// The simulator is single-threaded on top of eventsim and fully
// deterministic given a seed.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

// Direction distinguishes the two leaf-router interfaces of the paper:
// inbound carries Internet->Intranet traffic, outbound carries
// Intranet->Internet traffic.
type Direction uint8

// Directions.
const (
	Inbound Direction = iota + 1
	Outbound
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Inbound:
		return "inbound"
	case Outbound:
		return "outbound"
	default:
		return fmt.Sprintf("direction(%d)", uint8(d))
	}
}

// Tap observes packets crossing a router interface. Taps must not
// modify the segment.
type Tap func(now time.Duration, dir Direction, seg *packet.Segment)

// Endpoint is anything that can accept a delivered segment.
type Endpoint interface {
	Deliver(now time.Duration, seg packet.Segment)
}

// Errors returned by topology construction.
var (
	ErrDuplicateHost   = errors.New("netsim: host address already attached")
	ErrDuplicatePrefix = errors.New("netsim: stub prefix already attached")
	ErrNotInPrefix     = errors.New("netsim: host address outside stub prefix")
	ErrBadLoss         = errors.New("netsim: loss probability outside [0,1)")
)

// Link is a unidirectional delivery path with fixed propagation delay
// and i.i.d. packet loss. Bidirectional connectivity uses two links.
type Link struct {
	sim   *eventsim.Sim
	to    Endpoint
	delay time.Duration
	loss  float64
	rng   *rand.Rand

	sent      uint64
	dropped   uint64
	delivered uint64
}

// NewLink builds a link. loss must be in [0, 1); rng may be nil when
// loss is zero.
func NewLink(sim *eventsim.Sim, to Endpoint, delay time.Duration, loss float64, rng *rand.Rand) (*Link, error) {
	if loss < 0 || loss >= 1 {
		return nil, ErrBadLoss
	}
	if loss > 0 && rng == nil {
		return nil, errors.New("netsim: lossy link needs an rng")
	}
	if delay < 0 {
		delay = 0
	}
	return &Link{sim: sim, to: to, delay: delay, loss: loss, rng: rng}, nil
}

// Send schedules delivery of seg after the link delay, subject to
// random loss.
func (l *Link) Send(seg packet.Segment) {
	l.sent++
	if l.loss > 0 && l.rng.Float64() < l.loss {
		l.dropped++
		return
	}
	l.sim.After(l.delay, func(now time.Duration) {
		l.delivered++
		l.to.Deliver(now, seg)
	})
}

// Stats returns (sent, delivered, dropped) counts. Packets in flight
// are counted in sent but not yet in delivered.
func (l *Link) Stats() (sent, delivered, dropped uint64) {
	return l.sent, l.delivered, l.dropped
}

// Host is a leaf node with an IPv4 address. Inbound segments are
// passed to OnPacket; outbound segments go through SetUplink's link.
type Host struct {
	Addr     netip.Addr
	uplink   *Link
	OnPacket func(now time.Duration, seg packet.Segment)

	received uint64
}

// NewHost returns a host with the given address and no handler.
func NewHost(addr netip.Addr) *Host {
	return &Host{Addr: addr}
}

// SetUplink wires the host's outbound path (normally to its router).
func (h *Host) SetUplink(l *Link) { h.uplink = l }

// Send transmits seg over the host's uplink. Segments sent before an
// uplink is attached are silently dropped (the host is disconnected).
func (h *Host) Send(seg packet.Segment) {
	if h.uplink != nil {
		h.uplink.Send(seg)
	}
}

// Deliver implements Endpoint.
func (h *Host) Deliver(now time.Duration, seg packet.Segment) {
	h.received++
	if h.OnPacket != nil {
		h.OnPacket(now, seg)
	}
}

// Received returns how many segments the host has accepted.
func (h *Host) Received() uint64 { return h.received }

// LeafRouter connects one stub network to the Internet and hosts the
// SYN-dog taps. It switches by destination address: stub-internal
// destinations go to the attached host links, everything else goes to
// the uplink.
type LeafRouter struct {
	Prefix netip.Prefix

	hostLinks map[netip.Addr]*Link
	uplink    *Link
	taps      []Tap

	inboundSeen   uint64
	outboundSeen  uint64
	localSwitched uint64
	unroutable    uint64
}

// NewLeafRouter builds a router owning the given stub prefix.
func NewLeafRouter(prefix netip.Prefix) *LeafRouter {
	return &LeafRouter{
		Prefix:    prefix.Masked(),
		hostLinks: make(map[netip.Addr]*Link),
	}
}

// AttachHost registers the downlink used to reach a stub host. The
// address must be inside the router's prefix and not yet attached.
func (r *LeafRouter) AttachHost(addr netip.Addr, down *Link) error {
	if !r.Prefix.Contains(addr) {
		return ErrNotInPrefix
	}
	if _, dup := r.hostLinks[addr]; dup {
		return ErrDuplicateHost
	}
	r.hostLinks[addr] = down
	return nil
}

// SetUplink wires the router's path toward the Internet cloud.
func (r *LeafRouter) SetUplink(l *Link) { r.uplink = l }

// AddTap registers a tap that observes both interfaces; the tap's dir
// argument says which interface the packet crossed.
func (r *LeafRouter) AddTap(t Tap) { r.taps = append(r.taps, t) }

// Deliver implements Endpoint. It classifies the crossing direction,
// fires taps, and forwards.
func (r *LeafRouter) Deliver(now time.Duration, seg packet.Segment) {
	dstInside := r.Prefix.Contains(seg.IP.Dst)
	srcInside := r.Prefix.Contains(seg.IP.Src)

	switch {
	case dstInside && srcInside:
		// Intra-stub: switched locally, crosses no sniffed interface.
		r.localSwitched++
		r.forwardLocal(seg)
	case dstInside:
		// Internet -> Intranet: inbound interface.
		r.inboundSeen++
		r.fireTaps(now, Inbound, &seg)
		r.forwardLocal(seg)
	default:
		// Intranet -> Internet (or transit): outbound interface.
		// Spoofed sources are forwarded regardless of srcInside — the
		// stateless router does not validate sources (that is exactly
		// the weakness the paper exploits for detection rather than
		// prevention).
		r.outboundSeen++
		r.fireTaps(now, Outbound, &seg)
		if r.uplink != nil {
			r.uplink.Send(seg)
		}
	}
}

func (r *LeafRouter) forwardLocal(seg packet.Segment) {
	if link, ok := r.hostLinks[seg.IP.Dst]; ok {
		link.Send(seg)
		return
	}
	r.unroutable++
}

func (r *LeafRouter) fireTaps(now time.Duration, dir Direction, seg *packet.Segment) {
	for _, t := range r.taps {
		t(now, dir, seg)
	}
}

// Counters returns the router's packet counters: packets that crossed
// the inbound interface, the outbound interface, were switched
// locally, and were dropped for lack of a route.
func (r *LeafRouter) Counters() (inbound, outbound, local, unroutable uint64) {
	return r.inboundSeen, r.outboundSeen, r.localSwitched, r.unroutable
}

// Internet is the core cloud: it routes packets between attached leaf
// routers by longest-prefix-wins (prefixes here are disjoint, so the
// first containing prefix is used).
type Internet struct {
	sim     *eventsim.Sim
	entries []cloudEntry

	routed     uint64
	unroutable uint64
}

type cloudEntry struct {
	prefix netip.Prefix
	link   *Link
}

// NewInternet returns an empty cloud on the given simulation.
func NewInternet(sim *eventsim.Sim) *Internet {
	return &Internet{sim: sim}
}

// Attach registers a route: packets destined to prefix are sent down
// link (normally toward that prefix's leaf router).
func (n *Internet) Attach(prefix netip.Prefix, link *Link) error {
	prefix = prefix.Masked()
	for _, e := range n.entries {
		if e.prefix == prefix {
			return ErrDuplicatePrefix
		}
	}
	n.entries = append(n.entries, cloudEntry{prefix: prefix, link: link})
	return nil
}

// Deliver implements Endpoint.
func (n *Internet) Deliver(_ time.Duration, seg packet.Segment) {
	for _, e := range n.entries {
		if e.prefix.Contains(seg.IP.Dst) {
			n.routed++
			e.link.Send(seg)
			return
		}
	}
	// Destinations outside every stub (e.g. spoofed-victim RSTs toward
	// unreachable addresses) vanish here, exactly like packets to
	// unallocated space.
	n.unroutable++
}

// Counters returns (routed, unroutable) packet counts.
func (n *Internet) Counters() (routed, unroutable uint64) {
	return n.routed, n.unroutable
}

// StubNetwork bundles a leaf router, its hosts, and the two links
// connecting it to the Internet cloud — one building block per stub
// network in the flooding experiments.
type StubNetwork struct {
	Router *LeafRouter
	Hosts  []*Host
}

// StubConfig parameterizes BuildStub.
type StubConfig struct {
	// Prefix is the stub's address block.
	Prefix netip.Prefix
	// Hosts is how many hosts to create, addressed sequentially from
	// the first usable address in the prefix.
	Hosts int
	// HostDelay is the one-way host<->router link delay.
	HostDelay time.Duration
	// UplinkDelay is the one-way router<->Internet link delay.
	UplinkDelay time.Duration
	// Loss is the i.i.d. loss probability applied on the uplink pair.
	Loss float64
}

// BuildStub wires a complete stub network onto the cloud.
func BuildStub(sim *eventsim.Sim, cloud *Internet, cfg StubConfig, rng *rand.Rand) (*StubNetwork, error) {
	if cfg.Hosts < 1 {
		return nil, errors.New("netsim: stub needs at least one host")
	}
	router := NewLeafRouter(cfg.Prefix)

	// Router <-> Internet.
	up, err := NewLink(sim, cloud, cfg.UplinkDelay, cfg.Loss, rng)
	if err != nil {
		return nil, err
	}
	router.SetUplink(up)
	down, err := NewLink(sim, router, cfg.UplinkDelay, cfg.Loss, rng)
	if err != nil {
		return nil, err
	}
	if err := cloud.Attach(cfg.Prefix, down); err != nil {
		return nil, err
	}

	stub := &StubNetwork{Router: router}
	addr := cfg.Prefix.Masked().Addr().Next() // skip network address
	for i := 0; i < cfg.Hosts; i++ {
		if !cfg.Prefix.Contains(addr) {
			return nil, fmt.Errorf("netsim: prefix %v too small for %d hosts", cfg.Prefix, cfg.Hosts)
		}
		h := NewHost(addr)
		hostUp, err := NewLink(sim, router, cfg.HostDelay, 0, nil)
		if err != nil {
			return nil, err
		}
		h.SetUplink(hostUp)
		hostDown, err := NewLink(sim, h, cfg.HostDelay, 0, nil)
		if err != nil {
			return nil, err
		}
		if err := router.AttachHost(addr, hostDown); err != nil {
			return nil, err
		}
		stub.Hosts = append(stub.Hosts, h)
		addr = addr.Next()
	}
	return stub, nil
}
