package netsim

import (
	"errors"
	"math"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
)

// QueuedLink is a link with a finite drop-tail buffer draining at a
// fixed service rate — the congested forwarding path of the paper's
// second benign discrepancy cause ("the forwarding path of SYNs is
// congested, and as a result, some SYNs are dropped before they reach
// their destinations"). When the offered load exceeds the service
// rate the buffer fills and the tail drops, so some SYNs silently
// vanish without SYN/ACKs, exactly the asymmetry the CUSUM offset a
// must absorb.
//
// The model is M/D/1-like: deterministic per-packet service time
// 1/rate, propagation delay added after service completes.
type QueuedLink struct {
	sim     *eventsim.Sim
	to      Endpoint
	delay   time.Duration
	service time.Duration // per-packet transmission time
	buffer  int           // max queued packets (excluding the one in service)

	queue   []packet.Segment
	busy    bool
	sent    uint64
	dropped uint64
	served  uint64
	// maxDepth tracks the high-water mark of the queue.
	maxDepth int
}

// NewQueuedLink builds a congested link: rate is the service rate in
// packets/second, buffer the queue capacity.
func NewQueuedLink(sim *eventsim.Sim, to Endpoint, delay time.Duration, rate float64, buffer int) (*QueuedLink, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, errors.New("netsim: queued link needs a positive service rate")
	}
	if buffer < 1 {
		return nil, errors.New("netsim: queued link needs a positive buffer")
	}
	if delay < 0 {
		delay = 0
	}
	return &QueuedLink{
		sim:     sim,
		to:      to,
		delay:   delay,
		service: time.Duration(float64(time.Second) / rate),
		buffer:  buffer,
	}, nil
}

// Send enqueues seg for transmission, dropping at the tail when the
// buffer is full.
func (l *QueuedLink) Send(seg packet.Segment) {
	l.sent++
	if len(l.queue) >= l.buffer {
		l.dropped++
		return
	}
	l.queue = append(l.queue, seg)
	if len(l.queue) > l.maxDepth {
		l.maxDepth = len(l.queue)
	}
	if !l.busy {
		l.busy = true
		l.serveNext()
	}
}

// serveNext transmits the head-of-line packet.
func (l *QueuedLink) serveNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	seg := l.queue[0]
	l.queue = l.queue[1:]
	l.sim.After(l.service, func(time.Duration) {
		l.served++
		// Propagation after transmission completes.
		l.sim.After(l.delay, func(now time.Duration) {
			l.to.Deliver(now, seg)
		})
		l.serveNext()
	})
}

// Stats returns (sent, served, dropped) counters.
func (l *QueuedLink) Stats() (sent, served, dropped uint64) {
	return l.sent, l.served, l.dropped
}

// QueueDepth returns the current backlog (excluding any packet in
// service).
func (l *QueuedLink) QueueDepth() int { return len(l.queue) }

// MaxQueueDepth returns the high-water mark.
func (l *QueuedLink) MaxQueueDepth() int { return l.maxDepth }
