// Package pcapng reads and writes the classic libpcap capture format
// (the .pcap container, magic 0xa1b2c3d4) using only the standard
// library. The SYN-dog tooling uses it so synthetic traces round-trip
// through tcpdump/wireshark-compatible files.
//
// Both microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants
// are supported for reading, in either byte order; writing always
// emits the little-endian microsecond variant with LINKTYPE_RAW
// (packets start directly at the IPv4 header), which matches how the
// simulator produces packets: there is no Ethernet layer.
package pcapng

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Link types relevant to this repository.
const (
	// LinkTypeRaw means packets begin with the IP header (DLT_RAW=101).
	LinkTypeRaw = 101
	// LinkTypeEthernet is accepted on read; use LinkPayload to strip
	// the 14-byte MAC header (and any VLAN tags) so classification
	// never parses a MAC address as an IP header.
	LinkTypeEthernet = 1
)

// Ethernet framing constants for LinkPayload.
const (
	ethHeaderLen  = 14
	vlanTagLen    = 4
	etherTypeIPv4 = 0x0800
	etherTypeVLAN = 0x8100 // 802.1Q
	etherTypeQinQ = 0x88a8 // 802.1ad service tag
)

// LinkPayload errors.
var (
	ErrUnknownLink = errors.New("pcapng: unsupported link type")
	ErrShortFrame  = errors.New("pcapng: frame shorter than its link header")
	ErrNotIPv4     = errors.New("pcapng: frame does not carry IPv4")
)

// LinkPayload returns the network-layer (IPv4) payload of one captured
// frame given the capture's link type. LINKTYPE_RAW frames are returned
// unchanged; Ethernet frames have the 14-byte MAC header and any 802.1Q
// / 802.1ad VLAN tags stripped, and frames whose final EtherType is not
// IPv4 yield ErrNotIPv4. The returned slice aliases data.
func LinkPayload(linkType uint32, data []byte) ([]byte, error) {
	switch linkType {
	case LinkTypeRaw:
		return data, nil
	case LinkTypeEthernet:
		if len(data) < ethHeaderLen {
			return nil, ErrShortFrame
		}
		etherType := uint16(data[12])<<8 | uint16(data[13])
		off := ethHeaderLen
		for etherType == etherTypeVLAN || etherType == etherTypeQinQ {
			if len(data) < off+vlanTagLen {
				return nil, ErrShortFrame
			}
			etherType = uint16(data[off+2])<<8 | uint16(data[off+3])
			off += vlanTagLen
		}
		if etherType != etherTypeIPv4 {
			return nil, ErrNotIPv4
		}
		return data[off:], nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownLink, linkType)
	}
}

const (
	magicMicro        = 0xa1b2c3d4
	magicNano         = 0xa1b23c4d
	magicMicroSwapped = 0xd4c3b2a1
	magicNanoSwapped  = 0x4d3cb2a1
	versionMajor      = 2
	versionMinor      = 4
	fileHeaderLen     = 24
	recordHeaderLen   = 16
)

// Errors returned by the codec.
var (
	ErrBadMagic  = errors.New("pcapng: bad magic number")
	ErrTruncated = errors.New("pcapng: truncated file")
	ErrTooLarge  = errors.New("pcapng: packet exceeds snap length")
)

// Packet is one captured packet: a timestamp relative to an arbitrary
// epoch and the raw bytes starting at the link layer.
type Packet struct {
	// Ts is the capture timestamp. Readers express it as a Duration
	// since the Unix epoch of the capture; the SYN-dog pipeline only
	// uses differences, so the epoch is irrelevant.
	Ts time.Duration
	// Data is the captured bytes (snap-length truncated, like libpcap).
	Data []byte
}

// Writer emits a pcap stream. Construct with NewWriter, Add packets,
// and check the error of every call (Writer is a thin shim over an
// io.Writer and performs no buffering of its own).
type Writer struct {
	w       io.Writer
	snapLen uint32
	scratch []byte
}

// NewWriter writes the pcap file header and returns a Writer. snapLen
// bounds stored packet size; 0 selects the conventional 65535.
func NewWriter(w io.Writer, snapLen uint32) (*Writer, error) {
	if snapLen == 0 {
		snapLen = 65535
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:20], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapng: write header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// Write appends one packet record. Packets longer than the snap length
// are rejected rather than silently truncated: the simulator controls
// its packet sizes, so truncation would be a bug.
func (w *Writer) Write(p Packet) error {
	if uint32(len(p.Data)) > w.snapLen {
		return ErrTooLarge
	}
	need := recordHeaderLen + len(p.Data)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	sec := uint32(p.Ts / time.Second)
	usec := uint32((p.Ts % time.Second) / time.Microsecond)
	binary.LittleEndian.PutUint32(buf[0:4], sec)
	binary.LittleEndian.PutUint32(buf[4:8], usec)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(p.Data)))
	copy(buf[recordHeaderLen:], p.Data)
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("pcapng: write record: %w", err)
	}
	return nil
}

// Reader decodes a pcap stream.
type Reader struct {
	r        io.Reader
	order    binary.ByteOrder
	nano     bool
	linkType uint32
	snapLen  uint32
	scratch  []byte                // NextReuse buffer
	hdr      [recordHeaderLen]byte // record-header buffer, kept off the per-call stack
}

// NewReader parses the file header and returns a Reader.
//
// Each packet record costs two small reads (header, then data). Over a
// raw *os.File those are two syscalls per packet and dominate streaming
// ingest, so readers that do not already buffer — detected by the
// absence of io.ByteReader, which bufio.Reader, bytes.Reader and
// bytes.Buffer all provide — are wrapped in a 64 KiB bufio.Reader.
func NewReader(r io.Reader) (*Reader, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReaderSize(r, 1<<16)
	}
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcapng: read header: %w", errTrunc(err))
	}
	rd := &Reader{r: r}
	magic := binary.LittleEndian.Uint32(hdr[0:4])
	switch magic {
	case magicMicro:
		rd.order = binary.LittleEndian
	case magicNano:
		rd.order, rd.nano = binary.LittleEndian, true
	case magicMicroSwapped:
		rd.order = binary.BigEndian
	case magicNanoSwapped:
		rd.order, rd.nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	rd.snapLen = rd.order.Uint32(hdr[16:20])
	rd.linkType = rd.order.Uint32(hdr[20:24])
	return rd, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// SnapLen returns the capture's snap length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next packet, or io.EOF at a clean end of stream.
// A partially written trailing record yields ErrTruncated. The packet's
// Data is freshly allocated and remains valid indefinitely.
func (r *Reader) Next() (Packet, error) {
	return r.next(false)
}

// NextReuse is Next with an amortized-zero-allocation contract: the
// returned Packet's Data aliases an internal scratch buffer that the
// following NextReuse (or Next) call overwrites. Streaming consumers
// that classify and drop each packet before pulling the next one — the
// ingest pipeline — use it to keep per-record allocation O(1).
func (r *Reader) NextReuse() (Packet, error) {
	return r.next(true)
}

func (r *Reader) next(reuse bool) (Packet, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, errTrunc(err)
	}
	sec := r.order.Uint32(r.hdr[0:4])
	frac := r.order.Uint32(r.hdr[4:8])
	capLen := r.order.Uint32(r.hdr[8:12])
	if r.snapLen > 0 && capLen > r.snapLen {
		return Packet{}, fmt.Errorf("pcapng: record length %d exceeds snaplen %d", capLen, r.snapLen)
	}
	// Absolute sanity cap independent of the (attacker-controlled)
	// snaplen field: no real capture stores 16 MiB frames, and a
	// forged length must not drive allocation.
	const maxRecord = 16 << 20
	if capLen > maxRecord {
		return Packet{}, fmt.Errorf("pcapng: record length %d exceeds sanity cap", capLen)
	}
	var data []byte
	if reuse {
		if cap(r.scratch) < int(capLen) {
			r.scratch = make([]byte, capLen)
		}
		data = r.scratch[:capLen]
	} else {
		data = make([]byte, capLen)
	}
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, errTrunc(err)
	}
	ts := time.Duration(sec) * time.Second
	if r.nano {
		ts += time.Duration(frac) * time.Nanosecond
	} else {
		ts += time.Duration(frac) * time.Microsecond
	}
	return Packet{Ts: ts, Data: data}, nil
}

// ReadAll drains the stream into a slice.
func ReadAll(r io.Reader) ([]Packet, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var out []Packet
	for {
		p, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}

func errTrunc(err error) error {
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return ErrTruncated
	}
	return err
}
