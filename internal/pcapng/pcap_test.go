package pcapng

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	packets := []Packet{
		{Ts: 0, Data: []byte{1, 2, 3}},
		{Ts: 1500 * time.Millisecond, Data: []byte{4}},
		{Ts: 2*time.Second + 999999*time.Microsecond, Data: []byte{5, 6}},
	}
	for _, p := range packets {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(packets) {
		t.Fatalf("read %d packets, want %d", len(got), len(packets))
	}
	for i, p := range packets {
		if got[i].Ts != p.Ts {
			t.Errorf("packet %d ts = %v, want %v", i, got[i].Ts, p.Ts)
		}
		if !bytes.Equal(got[i].Data, p.Data) {
			t.Errorf("packet %d data = %v, want %v", i, got[i].Data, p.Data)
		}
	}
}

func TestWriterHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 256); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != fileHeaderLen {
		t.Fatalf("header length = %d, want %d", len(hdr), fileHeaderLen)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicro {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint16(hdr[4:6]) != versionMajor ||
		binary.LittleEndian.Uint16(hdr[6:8]) != versionMinor {
		t.Error("bad version")
	}
	if binary.LittleEndian.Uint32(hdr[16:20]) != 256 {
		t.Error("bad snaplen")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeRaw {
		t.Error("bad link type")
	}
}

func TestReaderMetadata(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, 4096); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("LinkType = %d, want %d", r.LinkType(), LinkTypeRaw)
	}
	if r.SnapLen() != 4096 {
		t.Errorf("SnapLen = %d, want 4096", r.SnapLen())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty capture Next = %v, want EOF", err)
	}
}

func TestSnapLenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Packet{Data: []byte{1, 2, 3, 4, 5}}); err != ErrTooLarge {
		t.Errorf("oversize write error = %v, want ErrTooLarge", err)
	}
	if err := w.Write(Packet{Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Errorf("exact-size write error = %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	junk := make([]byte, fileHeaderLen)
	if _, err := NewReader(bytes.NewReader(junk)); err != ErrBadMagic {
		t.Errorf("error = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrTruncated) {
		t.Errorf("error = %v, want ErrTruncated", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	if err := w.Write(Packet{Ts: time.Second, Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record (header present, data cut short).
	cut := full[:len(full)-2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("error = %v, want ErrTruncated", err)
	}
	// Chop mid-record-header.
	cut = full[:fileHeaderLen+5]
	r, err = NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("header-cut error = %v, want ErrTruncated", err)
	}
}

func TestBigEndianAndNanoVariants(t *testing.T) {
	// Hand-construct a big-endian nanosecond capture with one packet.
	var buf bytes.Buffer
	hdr := make([]byte, fileHeaderLen)
	binary.BigEndian.PutUint32(hdr[0:4], magicNano)
	binary.BigEndian.PutUint16(hdr[4:6], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:8], versionMinor)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], LinkTypeEthernet)
	buf.Write(hdr)

	rec := make([]byte, recordHeaderLen)
	binary.BigEndian.PutUint32(rec[0:4], 7)   // sec
	binary.BigEndian.PutUint32(rec[4:8], 123) // nanoseconds
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec)
	buf.Write([]byte{0xaa, 0xbb})

	// The swapped magic as read little-endian: verify detection works.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("LinkType = %d, want ethernet", r.LinkType())
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := 7*time.Second + 123*time.Nanosecond
	if p.Ts != want {
		t.Errorf("ts = %v, want %v", p.Ts, want)
	}
	if !bytes.Equal(p.Data, []byte{0xaa, 0xbb}) {
		t.Errorf("data = %v", p.Data)
	}
}

func TestRecordExceedingSnapLenRejected(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, fileHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicro)
	binary.LittleEndian.PutUint32(hdr[16:20], 8) // snaplen 8
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeRaw)
	buf.Write(hdr)
	rec := make([]byte, recordHeaderLen)
	binary.LittleEndian.PutUint32(rec[8:12], 100) // capLen 100 > snaplen
	binary.LittleEndian.PutUint32(rec[12:16], 100)
	buf.Write(rec)
	buf.Write(make([]byte, 100))
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("oversized record should be rejected")
	}
}

// Property: any packet sequence with valid sizes round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, tsSeeds []uint32) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			return false
		}
		var want []Packet
		for i, data := range payloads {
			if len(data) > 65535 {
				data = data[:65535]
			}
			var ts time.Duration
			if i < len(tsSeeds) {
				// Microsecond-resolution timestamps survive the format.
				ts = time.Duration(tsSeeds[i]) * time.Microsecond
			}
			p := Packet{Ts: ts, Data: data}
			if err := w.Write(p); err != nil {
				return false
			}
			want = append(want, p)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Ts != want[i].Ts || !bytes.Equal(got[i].Data, want[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
