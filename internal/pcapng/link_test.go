package pcapng

import (
	"bytes"
	"errors"
	"testing"
)

// ipv4Frame is a minimal IPv4 header (version 4, IHL 5) that the
// classifier would accept as the start of a packet.
var ipv4Frame = []byte{0x45, 0x00, 0x00, 0x14, 0, 0, 0, 0, 64, 6, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2}

func ethFrame(etherType uint16, tags []uint16, payload []byte) []byte {
	frame := make([]byte, 0, 14+4*len(tags)+len(payload))
	frame = append(frame, make([]byte, 12)...) // dst+src MAC
	for _, tag := range tags {
		frame = append(frame, byte(tag>>8), byte(tag)) // TPID
		frame = append(frame, 0x00, 0x01)              // TCI
	}
	frame = append(frame, byte(etherType>>8), byte(etherType))
	return append(frame, payload...)
}

func TestLinkPayloadRaw(t *testing.T) {
	got, err := LinkPayload(LinkTypeRaw, ipv4Frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ipv4Frame) {
		t.Error("raw payload altered")
	}
}

// TestLinkPayloadEthernet is the regression test for the Ethernet
// footgun: the MAC header must be stripped so classification never
// parses a MAC address as an IP header.
func TestLinkPayloadEthernet(t *testing.T) {
	frame := ethFrame(0x0800, nil, ipv4Frame)
	got, err := LinkPayload(LinkTypeEthernet, frame)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ipv4Frame) {
		t.Errorf("ethernet payload = % x, want the IPv4 header", got)
	}
	if got[0]>>4 != 4 {
		t.Error("payload does not start at the IP version nibble")
	}
}

func TestLinkPayloadVLAN(t *testing.T) {
	cases := []struct {
		name string
		tags []uint16
	}{
		{"single 802.1Q", []uint16{0x8100}},
		{"QinQ", []uint16{0x88a8, 0x8100}},
		{"double 802.1Q", []uint16{0x8100, 0x8100}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := ethFrame(0x0800, tc.tags, ipv4Frame)
			got, err := LinkPayload(LinkTypeEthernet, frame)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, ipv4Frame) {
				t.Errorf("VLAN payload = % x, want the IPv4 header", got)
			}
		})
	}
}

func TestLinkPayloadRejects(t *testing.T) {
	if _, err := LinkPayload(LinkTypeEthernet, ethFrame(0x0806, nil, []byte{0, 0})); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("ARP frame: err = %v, want ErrNotIPv4", err)
	}
	if _, err := LinkPayload(LinkTypeEthernet, make([]byte, 10)); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short frame: err = %v, want ErrShortFrame", err)
	}
	// A truncated frame that ends inside a VLAN tag.
	trunc := ethFrame(0x8100, nil, nil)
	if _, err := LinkPayload(LinkTypeEthernet, trunc); !errors.Is(err, ErrShortFrame) {
		t.Errorf("truncated VLAN tag: err = %v, want ErrShortFrame", err)
	}
	if _, err := LinkPayload(147, ipv4Frame); !errors.Is(err, ErrUnknownLink) {
		t.Errorf("unknown link: err = %v, want ErrUnknownLink", err)
	}
}
