package pcapng

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzReader asserts the pcap reader never panics and that any capture
// it fully accepts survives a write/read round trip.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	_ = w.Write(Packet{Ts: time.Second, Data: []byte{1, 2, 3}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, fileHeaderLen))
	f.Fuzz(func(t *testing.T, raw []byte) {
		pkts, err := ReadAll(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, 0)
		if err != nil {
			t.Fatal(err)
		}
		kept := 0
		for _, p := range pkts {
			if len(p.Data) > 65535 {
				continue // snaplen of the re-written capture
			}
			// Timestamps round to microseconds in the container.
			p.Ts = p.Ts.Truncate(time.Microsecond)
			if err := w.Write(p); err != nil {
				t.Fatalf("re-write failed: %v", err)
			}
			kept++
		}
		back, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != kept {
			t.Fatalf("round trip kept %d of %d packets", len(back), kept)
		}
	})
}

// FuzzReaderStreaming asserts incremental Next calls terminate and
// never return both a packet and an error.
func FuzzReaderStreaming(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 64)
	_ = w.Write(Packet{Data: []byte{9}})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for i := 0; i < 100000; i++ {
			_, err := r.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate")
	})
}
