package iptrace

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewITraceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	path, _ := LinearPath(4)
	if _, err := NewITraceRouterSet(nil, 0.01, rng); err != ErrEmptyPath {
		t.Errorf("empty path error = %v", err)
	}
	for _, p := range []float64{0, 1, -1} {
		if _, err := NewITraceRouterSet(path, p, rng); err != ErrBadProbability {
			t.Errorf("p=%v error = %v", p, err)
		}
	}
}

func TestITraceMessagesIdentifyAdjacency(t *testing.T) {
	// With p ≈ 1 every router reports on every packet.
	rng := rand.New(rand.NewSource(2))
	path, _ := LinearPath(4)
	s, err := NewITraceRouterSet(path, 0.999999, rng)
	if err != nil {
		t.Fatal(err)
	}
	msgs := s.Forward()
	if len(msgs) != 4 {
		t.Fatalf("messages = %d, want 4", len(msgs))
	}
	for i, m := range msgs {
		if m.Router != path[i] {
			t.Errorf("msg %d router = %v, want %v", i, m.Router, path[i])
		}
		wantNext := RouterID(0)
		if i+1 < len(path) {
			wantNext = path[i+1]
		}
		if m.Next != wantNext {
			t.Errorf("msg %d next = %v, want %v", i, m.Next, wantNext)
		}
	}
	if s.Emitted() != 4 {
		t.Errorf("Emitted = %d", s.Emitted())
	}
}

func TestITraceReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	path, _ := LinearPath(10)
	// High sampling rate keeps the test fast; correctness is the point.
	n, ok, err := ITracePacketsToReconstruct(path, 0.01, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("reconstruction failed in %d packets", n)
	}
	if n < 50 {
		t.Errorf("reconstruction in %d packets is implausibly cheap at p=0.01", n)
	}
}

func TestITraceCollectorIncompleteAndCycles(t *testing.T) {
	c := NewITraceCollector()
	if _, err := c.Reconstruct(); err != ErrIncomplete {
		t.Errorf("empty error = %v", err)
	}
	// Two fragments: R1->R2 and R4->R5 (R3 never reported).
	c.IngestPacket([]ITraceMessage{{Router: 1, Next: 2}})
	c.IngestPacket([]ITraceMessage{{Router: 4, Next: 5}})
	if _, err := c.Reconstruct(); err != ErrIncomplete {
		t.Errorf("fragmented error = %v", err)
	}
	// A cycle must be rejected, not loop forever.
	cyc := NewITraceCollector()
	cyc.IngestPacket([]ITraceMessage{{Router: 1, Next: 2}, {Router: 2, Next: 1}})
	if _, err := cyc.Reconstruct(); err != ErrIncomplete {
		t.Errorf("cycle error = %v", err)
	}
}

func TestITraceExpectedPackets(t *testing.T) {
	// d=1: 1/p.
	if got := ITraceExpectedPackets(1, 0.01); math.Abs(got-100) > 1e-9 {
		t.Errorf("d=1 = %v, want 100", got)
	}
	// Grows with path length but only harmonically.
	e5 := ITraceExpectedPackets(5, 0.001)
	e25 := ITraceExpectedPackets(25, 0.001)
	if e25 <= e5 {
		t.Error("expected packets should grow with path length")
	}
	if e25 > 5*e5 {
		t.Errorf("iTrace growth should be harmonic, got %v vs %v", e25, e5)
	}
	if ITraceExpectedPackets(0, 0.01) < 1e300 {
		t.Error("degenerate path should be ~inf")
	}
	if ITraceExpectedPackets(5, 0) < 1e300 {
		t.Error("p=0 should be ~inf")
	}
}

func TestITraceVsPPMContrast(t *testing.T) {
	// At their canonical settings, both need hundreds-plus of attack
	// packets; at the draft 1/20000 sampling iTrace needs tens of
	// thousands more than PPM at p=1/25 — either way the victim waits,
	// which is the paper's point.
	ppm := ExpectedPackets(15, 1.0/25)
	itrace := ITraceExpectedPackets(15, DefaultITraceProbability)
	if itrace < ppm {
		t.Errorf("iTrace at 1/20000 (%v) should cost more packets than PPM (%v)", itrace, ppm)
	}
	if itrace < 20000 {
		t.Errorf("iTrace estimate %v implausibly small", itrace)
	}
}

func TestITraceEmittedOverheadScales(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	path, _ := LinearPath(8)
	s, _ := NewITraceRouterSet(path, 0.05, rng)
	const packets = 10000
	for i := 0; i < packets; i++ {
		s.Forward()
	}
	// Expected emissions: packets * pathLen * p = 4000.
	got := float64(s.Emitted())
	if got < 3400 || got > 4600 {
		t.Errorf("emitted = %v, want ≈4000", got)
	}
}
