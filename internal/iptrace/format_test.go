package iptrace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func sampleCapture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewCaptureWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []CapturePacket{
		{Ts: 100 * time.Millisecond, Tx: true, Data: []byte{0x45, 1, 2, 3}},
		{Ts: 1500 * time.Millisecond, Tx: false, Data: []byte{0x45, 9}},
		{Ts: 2 * time.Second, Tx: true, Data: nil},
	}
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestCaptureRoundTrip(t *testing.T) {
	data := sampleCapture(t)
	got, err := ReadAllCapture(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	want := []CapturePacket{
		{Ts: 100 * time.Millisecond, Tx: true, Data: []byte{0x45, 1, 2, 3}},
		{Ts: 1500 * time.Millisecond, Tx: false, Data: []byte{0x45, 9}},
		{Ts: 2 * time.Second, Tx: true, Data: []byte{}},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Ts != want[i].Ts || got[i].Tx != want[i].Tx || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("packet %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCaptureReaderReuseSemantics(t *testing.T) {
	data := sampleCapture(t)
	r, err := NewCaptureReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), first.Data...)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	// first.Data aliases the internal buffer and is documented to be
	// overwritten; the copy must still hold the original bytes.
	if !bytes.Equal(saved, []byte{0x45, 1, 2, 3}) {
		t.Errorf("saved copy corrupted: % x", saved)
	}
}

func TestCaptureBadMagic(t *testing.T) {
	if _, err := NewCaptureReader(bytes.NewReader([]byte("iptrace 9.9xxxx"))); !errors.Is(err, ErrCaptureBadMagic) {
		t.Errorf("err = %v, want ErrCaptureBadMagic", err)
	}
	if _, err := NewCaptureReader(bytes.NewReader([]byte("ipt"))); !errors.Is(err, ErrCaptureTruncated) {
		t.Errorf("short magic: err = %v, want ErrCaptureTruncated", err)
	}
}

func TestCaptureTruncatedRecord(t *testing.T) {
	data := sampleCapture(t)
	for cut := len(captureMagic) + 1; cut < len(data); cut += 7 {
		r, err := NewCaptureReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, err := r.Next()
			if err == nil {
				continue
			}
			if err != io.EOF && !errors.Is(err, ErrCaptureTruncated) {
				t.Fatalf("cut %d: err = %v", cut, err)
			}
			break
		}
	}
}

func TestCaptureRejectsBogusLengths(t *testing.T) {
	// recLen shorter than the fixed header.
	short := append([]byte(captureMagic), 0, 0, 0, 4)
	if _, err := ReadAllCapture(bytes.NewReader(short)); err == nil {
		t.Error("want error for recLen < fixed header")
	}
	// recLen above the sanity cap must error before allocating.
	huge := append([]byte(captureMagic), 0xff, 0xff, 0xff, 0xff)
	if _, err := ReadAllCapture(bytes.NewReader(huge)); err == nil {
		t.Error("want error for oversized recLen")
	}
}
