package iptrace

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzCaptureReader mirrors pcapng's FuzzReader: the capture parser
// must never panic, and any stream it fully accepts must survive a
// write/read round trip.
func FuzzCaptureReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewCaptureWriter(&buf)
	_ = w.Write(CapturePacket{Ts: time.Second, Tx: true, Data: []byte{0x45, 1, 2}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte(captureMagic))
	f.Fuzz(func(t *testing.T, raw []byte) {
		pkts, err := ReadAllCapture(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w, err := NewCaptureWriter(&out)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			if err := w.Write(p); err != nil {
				t.Fatalf("re-write failed: %v", err)
			}
		}
		back, err := ReadAllCapture(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(back) != len(pkts) {
			t.Fatalf("round trip kept %d of %d packets", len(back), len(pkts))
		}
	})
}

// FuzzCaptureReaderStreaming asserts incremental Next calls terminate.
func FuzzCaptureReaderStreaming(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewCaptureWriter(&buf)
	_ = w.Write(CapturePacket{Data: []byte{9}})
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewCaptureReader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for i := 0; i < 100000; i++ {
			_, err := r.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
		t.Fatal("reader did not terminate")
	})
}
