// Package iptrace implements probabilistic packet marking (PPM) IP
// traceback in the style of Savage et al. [23] — the "expensive IP
// traceback" that victim-side defenses must fall back on and that
// SYN-dog's source-side placement renders unnecessary (Section 1).
//
// The package exists to quantify that comparison: the ablation
// experiment "ablation-traceback" measures how many attack packets a
// victim must collect before edge-sampling PPM reconstructs the attack
// path, versus SYN-dog's fixed three-observation-period detection at
// the source.
//
// Edge sampling (Savage et al., SIGCOMM 2000): every router, with
// probability p, overwrites the mark with (start=self, distance=0);
// otherwise, if the mark's distance is 0 it writes itself as the edge
// end; in all no-mark cases it increments distance. The victim
// collects (start, end, distance) samples; sorting edges by distance
// reconstructs the router path. The expected number of packets for a
// path of length d is bounded by E[X] < ln(d) / (p(1-p)^(d-1)).
package iptrace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RouterID identifies a router on the attack path.
type RouterID uint32

// Mark is the marking field an IP packet would carry (squeezed into
// the 16-bit ID field plus overloaded fragment bits in the real
// scheme; modeled as a struct here).
type Mark struct {
	Start    RouterID
	End      RouterID
	Distance uint8
	// valid distinguishes "never marked" packets.
	valid bool
}

// Valid reports whether any router marked the packet.
func (m Mark) Valid() bool { return m.valid }

// Path is an ordered sequence of routers from the attacker's first
// hop to the victim's last hop.
type Path []RouterID

// Errors.
var (
	ErrBadProbability = errors.New("iptrace: marking probability outside (0,1)")
	ErrEmptyPath      = errors.New("iptrace: empty path")
	ErrIncomplete     = errors.New("iptrace: reconstruction incomplete")
)

// Marker simulates the routers of one attack path applying edge
// sampling to every packet traversing them.
type Marker struct {
	path Path
	p    float64
	rng  *rand.Rand
}

// NewMarker builds a marker for the path with marking probability p.
func NewMarker(path Path, p float64, rng *rand.Rand) (*Marker, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return nil, ErrBadProbability
	}
	return &Marker{path: append(Path(nil), path...), p: p, rng: rng}, nil
}

// Forward passes one packet along the whole path and returns the mark
// it arrives with at the victim.
func (m *Marker) Forward() Mark {
	var mark Mark
	var sinceMark uint8
	for _, router := range m.path {
		if m.rng.Float64() < m.p {
			mark = Mark{Start: router, Distance: 0, valid: true}
			sinceMark = 0
			continue
		}
		if mark.valid {
			if sinceMark == 0 {
				mark.End = router
			}
			sinceMark++
			if mark.Distance < math.MaxUint8 {
				mark.Distance++
			}
		}
	}
	return mark
}

// PathLength returns the number of routers on the path.
func (m *Marker) PathLength() int { return len(m.path) }

// Collector is the victim-side reconstruction state.
type Collector struct {
	// edges[distance] -> set of (start,end) pairs seen at that distance.
	edges map[uint8]map[[2]RouterID]int
	seen  uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{edges: make(map[uint8]map[[2]RouterID]int)}
}

// Ingest folds one received mark into the collector.
func (c *Collector) Ingest(m Mark) {
	c.seen++
	if !m.Valid() {
		return
	}
	byEdge, ok := c.edges[m.Distance]
	if !ok {
		byEdge = make(map[[2]RouterID]int)
		c.edges[m.Distance] = byEdge
	}
	byEdge[[2]RouterID{m.Start, m.End}]++
}

// Packets returns how many packets have been ingested.
func (c *Collector) Packets() uint64 { return c.seen }

// Reconstruct attempts to rebuild the attack path. It returns
// ErrIncomplete until every hop distance from 0 to the farthest seen
// is covered by a sampled edge; spurious duplicates at one distance
// are resolved toward the most frequently sampled edge (the true edge
// dominates in expectation).
func (c *Collector) Reconstruct() (Path, error) {
	if len(c.edges) == 0 {
		return nil, ErrIncomplete
	}
	distances := make([]int, 0, len(c.edges))
	for d := range c.edges {
		distances = append(distances, int(d))
	}
	sort.Ints(distances)
	// Every distance from 0..max must be present, else a hop is
	// missing and the chain cannot be stitched.
	maxD := distances[len(distances)-1]
	if len(distances) != maxD+1 || distances[0] != 0 {
		return nil, ErrIncomplete
	}
	// The farthest mark (distance maxD) identifies the attacker-side
	// edge; distance 0 the victim-side edge. Walk far to near.
	path := make(Path, 0, maxD+2)
	for d := maxD; d >= 0; d-- {
		start, end := c.dominantEdge(uint8(d))
		if len(path) == 0 {
			path = append(path, start)
		} else if path[len(path)-1] != start {
			// Chain mismatch: the dominant edge does not continue the
			// path; reconstruction is not yet trustworthy.
			return nil, ErrIncomplete
		}
		if end != 0 {
			path = append(path, end)
		}
	}
	return path, nil
}

// dominantEdge returns the most sampled (start, end) at a distance.
func (c *Collector) dominantEdge(d uint8) (RouterID, RouterID) {
	var best [2]RouterID
	bestN := -1
	for edge, n := range c.edges[d] {
		if n > bestN {
			best = edge
			bestN = n
		}
	}
	return best[0], best[1]
}

// ExpectedPackets returns Savage et al.'s bound on the expected number
// of packets the victim needs for full path reconstruction:
//
//	E[X] < ln(d) / (p (1-p)^(d-1))
func ExpectedPackets(pathLen int, p float64) float64 {
	if pathLen < 1 || p <= 0 || p >= 1 {
		return math.Inf(1)
	}
	d := float64(pathLen)
	if pathLen == 1 {
		// ln(1) = 0 underestimates; one marked packet suffices on
		// average after 1/p tries.
		return 1 / p
	}
	return math.Log(d) / (p * math.Pow(1-p, d-1))
}

// Campaign measures the packets-to-reconstruction for one simulated
// attack path.
type Campaign struct {
	Marker    *Marker
	Collector *Collector
}

// NewCampaign wires a marker and fresh collector.
func NewCampaign(path Path, p float64, rng *rand.Rand) (*Campaign, error) {
	m, err := NewMarker(path, p, rng)
	if err != nil {
		return nil, err
	}
	return &Campaign{Marker: m, Collector: NewCollector()}, nil
}

// PacketsToReconstruct runs packets through the path until the
// collector reconstructs it exactly, or budget packets have been
// spent. It returns the packet count and whether reconstruction
// succeeded.
func (c *Campaign) PacketsToReconstruct(budget int) (int, bool) {
	want := c.Marker.path
	for i := 1; i <= budget; i++ {
		c.Collector.Ingest(c.Marker.Forward())
		// Reconstruction attempts are cheap relative to the simulated
		// network cost; check every 10 packets once the minimum
		// possible sample set exists.
		if i%10 != 0 && i != budget {
			continue
		}
		got, err := c.Collector.Reconstruct()
		if err != nil {
			continue
		}
		if pathsEqual(got, want) {
			return i, true
		}
	}
	return budget, false
}

func pathsEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LinearPath builds the path r1 -> r2 -> ... -> rn.
func LinearPath(n int) (Path, error) {
	if n < 1 {
		return nil, ErrEmptyPath
	}
	p := make(Path, n)
	for i := range p {
		p[i] = RouterID(i + 1)
	}
	return p, nil
}

// String renders the path.
func (p Path) String() string {
	s := ""
	for i, r := range p {
		if i > 0 {
			s += "->"
		}
		s += fmt.Sprintf("R%d", r)
	}
	return s
}
