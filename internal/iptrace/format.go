package iptrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// This file implements a capture container in the AIX iptrace 2.0
// style (the format tcpdump/wireshark call "iptrace"): an 11-byte
// ASCII magic followed by length-prefixed records whose fixed header
// carries the timestamp, interface type and — unlike pcap — a
// transmit/receive flag, which lets SYN-dog recover packet direction
// without a stub-prefix heuristic. Only the subset the pipeline needs
// is modeled: big-endian fields, raw IPv4 payloads.
//
//	magic   [11]byte "iptrace 2.0"
//	records, each:
//	  recLen  uint32  bytes after this field (fixedHeaderLen + payload)
//	  tv_sec  uint32
//	  tv_nsec uint32
//	  if_type uint8
//	  tx_flag uint8   1 = transmitted (outbound), 0 = received
//	  _       uint16  reserved
//	  if_loop uint32
//	  payload raw IPv4 bytes

const (
	captureMagic   = "iptrace 2.0"
	fixedHeaderLen = 16
	// maxCaptureRecord caps per-record allocation: a forged length
	// field must not drive memory use (same guard as pcapng).
	maxCaptureRecord = 16 << 20
)

// Capture-format errors, mirroring the pcapng codec's.
var (
	ErrCaptureBadMagic  = errors.New("iptrace: bad magic")
	ErrCaptureTruncated = errors.New("iptrace: truncated capture")
)

// CapturePacket is one record of an iptrace capture.
type CapturePacket struct {
	// Ts is the capture timestamp relative to an arbitrary epoch.
	Ts time.Duration
	// Tx reports whether the interface transmitted the packet
	// (outbound); false means it was received (inbound).
	Tx bool
	// Data is the raw IPv4 packet.
	Data []byte
}

// CaptureWriter emits an iptrace capture stream.
type CaptureWriter struct {
	w       io.Writer
	scratch []byte
}

// NewCaptureWriter writes the magic and returns a writer.
func NewCaptureWriter(w io.Writer) (*CaptureWriter, error) {
	if _, err := io.WriteString(w, captureMagic); err != nil {
		return nil, fmt.Errorf("iptrace: write magic: %w", err)
	}
	return &CaptureWriter{w: w}, nil
}

// Write appends one record.
func (w *CaptureWriter) Write(p CapturePacket) error {
	if len(p.Data) > maxCaptureRecord-fixedHeaderLen {
		return fmt.Errorf("iptrace: packet of %d bytes exceeds record cap", len(p.Data))
	}
	need := 4 + fixedHeaderLen + len(p.Data)
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	binary.BigEndian.PutUint32(buf[0:4], uint32(fixedHeaderLen+len(p.Data)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(p.Ts/time.Second))
	binary.BigEndian.PutUint32(buf[8:12], uint32(p.Ts%time.Second))
	buf[12] = 1 // if_type: ethernet-ish; informational only
	if p.Tx {
		buf[13] = 1
	} else {
		buf[13] = 0
	}
	buf[14], buf[15] = 0, 0                   // reserved
	binary.BigEndian.PutUint32(buf[16:20], 0) // if_loop
	copy(buf[20:], p.Data)
	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("iptrace: write record: %w", err)
	}
	return nil
}

// CaptureReader decodes an iptrace capture stream.
type CaptureReader struct {
	r       io.Reader
	scratch []byte
}

// NewCaptureReader checks the magic and returns a reader. Unbuffered
// readers (no io.ByteReader, e.g. a raw *os.File) are wrapped in a
// bufio.Reader so the two small reads per record do not become two
// syscalls per record.
func NewCaptureReader(r io.Reader) (*CaptureReader, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReaderSize(r, 1<<16)
	}
	var magic [len(captureMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, captureTrunc(err)
	}
	if string(magic[:]) != captureMagic {
		return nil, ErrCaptureBadMagic
	}
	return &CaptureReader{r: r}, nil
}

// Next returns the next record, io.EOF at a clean end of stream, or
// ErrCaptureTruncated when the stream ends inside a record. The
// packet's Data aliases an internal buffer that the next call
// overwrites; copy it to retain.
func (r *CaptureReader) Next() (CapturePacket, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r.r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return CapturePacket{}, io.EOF
		}
		return CapturePacket{}, captureTrunc(err)
	}
	recLen := binary.BigEndian.Uint32(lenBuf[:])
	if recLen < fixedHeaderLen {
		return CapturePacket{}, fmt.Errorf("iptrace: record length %d shorter than fixed header", recLen)
	}
	if recLen > maxCaptureRecord {
		return CapturePacket{}, fmt.Errorf("iptrace: record length %d exceeds sanity cap", recLen)
	}
	if cap(r.scratch) < int(recLen) {
		r.scratch = make([]byte, recLen)
	}
	buf := r.scratch[:recLen]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return CapturePacket{}, captureTrunc(err)
	}
	sec := binary.BigEndian.Uint32(buf[0:4])
	nsec := binary.BigEndian.Uint32(buf[4:8])
	if nsec >= 1e9 {
		return CapturePacket{}, fmt.Errorf("iptrace: tv_nsec %d out of range", nsec)
	}
	return CapturePacket{
		Ts:   time.Duration(sec)*time.Second + time.Duration(nsec),
		Tx:   buf[9] == 1,
		Data: buf[fixedHeaderLen:],
	}, nil
}

// ReadAllCapture drains the stream into a slice, copying each payload.
func ReadAllCapture(r io.Reader) ([]CapturePacket, error) {
	cr, err := NewCaptureReader(r)
	if err != nil {
		return nil, err
	}
	var out []CapturePacket
	for {
		p, err := cr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		p.Data = append([]byte(nil), p.Data...)
		out = append(out, p)
	}
}

func captureTrunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrCaptureTruncated
	}
	return err
}
