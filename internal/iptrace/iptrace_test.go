package iptrace

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearPath(t *testing.T) {
	p, err := LinearPath(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Errorf("path = %v", p)
	}
	if p.String() != "R1->R2->R3" {
		t.Errorf("String = %q", p.String())
	}
	if _, err := LinearPath(0); err != ErrEmptyPath {
		t.Errorf("error = %v, want ErrEmptyPath", err)
	}
}

func TestNewMarkerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	path, _ := LinearPath(5)
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewMarker(path, p, rng); err != ErrBadProbability {
			t.Errorf("p=%v error = %v, want ErrBadProbability", p, err)
		}
	}
	if _, err := NewMarker(nil, 0.04, rng); err != ErrEmptyPath {
		t.Errorf("empty path error = %v", err)
	}
}

func TestForwardMarkDistances(t *testing.T) {
	// With p ≈ 1 every router marks, so the surviving mark is always
	// from the LAST router with distance 0 and no end.
	rng := rand.New(rand.NewSource(2))
	path, _ := LinearPath(6)
	m, err := NewMarker(path, 0.999999, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		mark := m.Forward()
		if !mark.Valid() {
			t.Fatal("no mark with p≈1")
		}
		if mark.Start != 6 || mark.Distance != 0 {
			t.Fatalf("mark = %+v, want last router at distance 0", mark)
		}
	}
}

func TestForwardUnmarkedPossible(t *testing.T) {
	// With tiny p most packets arrive unmarked.
	rng := rand.New(rand.NewSource(3))
	path, _ := LinearPath(3)
	m, _ := NewMarker(path, 0.001, rng)
	unmarked := 0
	for i := 0; i < 1000; i++ {
		if !m.Forward().Valid() {
			unmarked++
		}
	}
	if unmarked < 900 {
		t.Errorf("unmarked = %d/1000, want ~997", unmarked)
	}
}

func TestReconstructExactPath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	path, _ := LinearPath(8)
	c, err := NewCampaign(path, 0.04, rng) // Savage's recommended p
	if err != nil {
		t.Fatal(err)
	}
	n, ok := c.PacketsToReconstruct(200000)
	if !ok {
		t.Fatal("reconstruction failed within budget")
	}
	got, err := c.Collector.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != path.String() {
		t.Errorf("reconstructed %v, want %v", got, path)
	}
	// Sanity: reconstruction needs hundreds-to-thousands of packets —
	// the cost SYN-dog avoids entirely.
	if n < 50 {
		t.Errorf("reconstruction in %d packets is implausibly cheap", n)
	}
	if c.Collector.Packets() == 0 {
		t.Error("collector did not count packets")
	}
}

func TestReconstructIncompleteEarly(t *testing.T) {
	c := NewCollector()
	if _, err := c.Reconstruct(); err != ErrIncomplete {
		t.Errorf("empty collector error = %v, want ErrIncomplete", err)
	}
	// Only a distance-2 edge: hop coverage is broken.
	c.Ingest(Mark{Start: 1, End: 2, Distance: 2, valid: true})
	if _, err := c.Reconstruct(); err != ErrIncomplete {
		t.Errorf("gapped distances error = %v, want ErrIncomplete", err)
	}
}

func TestReconstructSingleRouterPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	path, _ := LinearPath(1)
	c, err := NewCampaign(path, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := c.PacketsToReconstruct(1000)
	if !ok {
		t.Fatalf("single-hop reconstruction failed in %d packets", n)
	}
}

func TestExpectedPacketsFormula(t *testing.T) {
	// d=25, p=1/25: the canonical Savage example, E < ln(25)/(p(1-p)^24)
	// ≈ 25*ln(25)/ (1-1/25)^24 ≈ 80.49/0.375 ≈ 214.6... compute directly.
	got := ExpectedPackets(25, 1.0/25)
	want := math.Log(25) / ((1.0 / 25) * math.Pow(1-1.0/25, 24))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedPackets = %v, want %v", got, want)
	}
	if got < 100 || got > 500 {
		t.Errorf("canonical case = %v, expected a few hundred packets", got)
	}
	// Degenerate inputs.
	if !math.IsInf(ExpectedPackets(0, 0.04), 1) {
		t.Error("pathLen 0 should be +Inf")
	}
	if !math.IsInf(ExpectedPackets(5, 0), 1) {
		t.Error("p=0 should be +Inf")
	}
	if got := ExpectedPackets(1, 0.1); math.Abs(got-10) > 1e-9 {
		t.Errorf("single hop = %v, want 1/p = 10", got)
	}
}

func TestExpectedPacketsGrowsWithPathLength(t *testing.T) {
	prev := 0.0
	for d := 2; d <= 30; d += 4 {
		e := ExpectedPackets(d, 0.04)
		if e <= prev {
			t.Fatalf("E[X] not growing at d=%d: %v <= %v", d, e, prev)
		}
		prev = e
	}
}

func TestEmpiricalMatchesBoundOrder(t *testing.T) {
	// The measured packets-to-reconstruction should be the same order
	// of magnitude as the analytic bound.
	rng := rand.New(rand.NewSource(6))
	path, _ := LinearPath(10)
	bound := ExpectedPackets(10, 0.04)
	total := 0
	const trials = 5
	for i := 0; i < trials; i++ {
		c, err := NewCampaign(path, 0.04, rng)
		if err != nil {
			t.Fatal(err)
		}
		n, ok := c.PacketsToReconstruct(500000)
		if !ok {
			t.Fatal("reconstruction failed")
		}
		total += n
	}
	mean := float64(total) / trials
	if mean > 20*bound {
		t.Errorf("empirical %v wildly above bound %v", mean, bound)
	}
}
