package iptrace

import (
	"math"
	"math/rand"
	"sort"
)

// This file implements ICMP traceback ("iTrace", Bellovin [2] and the
// intention-driven variant [32]) — the other traceback family the
// paper's introduction cites. Instead of marking passing packets,
// every router independently samples forwarded packets with a small
// probability (the drafts suggest ~1/20000) and emits a separate ICMP
// traceback message to the packet's destination, identifying itself
// and its adjacency. The victim reconstructs the path from collected
// messages.
//
// Compared with packet marking, iTrace needs no header bits but adds
// traffic, and the victim needs at least one sample from *every*
// router on the path — a coupon-collector problem that makes long
// paths expensive at low sampling rates.

// DefaultITraceProbability is the draft-suggested sampling rate.
const DefaultITraceProbability = 1.0 / 20000

// ITraceMessage is one emitted traceback message: the router and its
// downstream neighbor (0 for the last hop).
type ITraceMessage struct {
	Router RouterID
	Next   RouterID
}

// ITraceRouterSet simulates the routers of one path emitting iTrace
// messages.
type ITraceRouterSet struct {
	path Path
	p    float64
	rng  *rand.Rand

	emitted uint64
}

// NewITraceRouterSet builds the router set with sampling probability p.
func NewITraceRouterSet(path Path, p float64, rng *rand.Rand) (*ITraceRouterSet, error) {
	if len(path) == 0 {
		return nil, ErrEmptyPath
	}
	if p <= 0 || p >= 1 {
		return nil, ErrBadProbability
	}
	return &ITraceRouterSet{path: append(Path(nil), path...), p: p, rng: rng}, nil
}

// Forward passes one attack packet down the path; each router may
// independently emit a traceback message. The returned slice is
// usually empty.
func (s *ITraceRouterSet) Forward() []ITraceMessage {
	var out []ITraceMessage
	for i, router := range s.path {
		if s.rng.Float64() >= s.p {
			continue
		}
		var next RouterID
		if i+1 < len(s.path) {
			next = s.path[i+1]
		}
		out = append(out, ITraceMessage{Router: router, Next: next})
		s.emitted++
	}
	return out
}

// Emitted returns the total traceback messages generated — the
// overhead traffic iTrace adds to the network.
func (s *ITraceRouterSet) Emitted() uint64 { return s.emitted }

// ITraceCollector reconstructs the path from received messages.
type ITraceCollector struct {
	// edges maps router -> downstream neighbor.
	edges   map[RouterID]RouterID
	packets uint64
}

// NewITraceCollector returns an empty collector.
func NewITraceCollector() *ITraceCollector {
	return &ITraceCollector{edges: make(map[RouterID]RouterID)}
}

// IngestPacket records that one attack packet arrived along with any
// traceback messages it triggered.
func (c *ITraceCollector) IngestPacket(msgs []ITraceMessage) {
	c.packets++
	for _, m := range msgs {
		c.edges[m.Router] = m.Next
	}
}

// Packets returns attack packets observed so far.
func (c *ITraceCollector) Packets() uint64 { return c.packets }

// RoutersHeard returns how many distinct routers have reported.
func (c *ITraceCollector) RoutersHeard() int { return len(c.edges) }

// Reconstruct stitches the edges into a path. It succeeds only when
// every router on the true path has reported (otherwise the chain has
// a gap and ErrIncomplete is returned).
func (c *ITraceCollector) Reconstruct() (Path, error) {
	if len(c.edges) == 0 {
		return nil, ErrIncomplete
	}
	// The head is the router nobody points to.
	pointedTo := make(map[RouterID]bool, len(c.edges))
	for _, next := range c.edges {
		if next != 0 {
			pointedTo[next] = true
		}
	}
	var heads []RouterID
	for r := range c.edges {
		if !pointedTo[r] {
			heads = append(heads, r)
		}
	}
	if len(heads) != 1 {
		return nil, ErrIncomplete // gap in the chain: multiple fragments
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	path := Path{heads[0]}
	seen := map[RouterID]bool{heads[0]: true}
	cur := heads[0]
	for {
		next, ok := c.edges[cur]
		if !ok || next == 0 {
			break
		}
		if seen[next] {
			return nil, ErrIncomplete // cycle: corrupted evidence
		}
		path = append(path, next)
		seen[next] = true
		cur = next
	}
	return path, nil
}

// ITracePacketsToReconstruct runs attack packets through the routers
// until the collector reconstructs the exact path or budget is spent.
func ITracePacketsToReconstruct(path Path, p float64, rng *rand.Rand, budget int) (int, bool, error) {
	routers, err := NewITraceRouterSet(path, p, rng)
	if err != nil {
		return 0, false, err
	}
	col := NewITraceCollector()
	for i := 1; i <= budget; i++ {
		col.IngestPacket(routers.Forward())
		if col.RoutersHeard() < len(path) {
			continue
		}
		got, err := col.Reconstruct()
		if err == nil && pathsEqual(got, path) {
			return i, true, nil
		}
	}
	return budget, false, nil
}

// ITraceExpectedPackets returns the coupon-collector estimate of the
// packets needed: each router reports per packet with probability p,
// so E[X] ≈ H(d)/p where H is the harmonic number — dominated by the
// slowest router, 1/p for the last coupon.
func ITraceExpectedPackets(pathLen int, p float64) float64 {
	if pathLen < 1 || p <= 0 || p >= 1 {
		return math.Inf(1)
	}
	h := 0.0
	for i := 1; i <= pathLen; i++ {
		h += 1 / float64(i)
	}
	return h / p
}
