// Package packet implements the IPv4 and TCP header encoding, decoding
// and classification that a SYN-dog leaf router performs on the wire.
//
// Section 2 of the paper describes the classification procedure the
// router applies to every IP packet:
//
//  1. check that the packet carries a TCP header (protocol 6) with
//     zero fragmentation offset (a fragmented payload cannot contain
//     the TCP flags);
//  2. compute the offset of the TCP flag bits from the IP header
//     length field;
//  3. read the six TCP flag bits to determine the segment type.
//
// Classify implements exactly that path directly on raw bytes without
// allocation, because it sits on the per-packet fast path of the
// simulated router. Full header structs with Marshal/Unmarshal are
// also provided for trace tooling and the TCP endpoint substrate.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// TCP flag bits, as found in the 13th byte of the TCP header.
const (
	FlagFIN = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// ProtocolTCP is the IPv4 protocol number of TCP.
const ProtocolTCP = 6

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// TCPHeaderLen is the length of a TCP header without options.
const TCPHeaderLen = 20

// Kind is the classification of a TCP segment by its flag bits, the
// granularity SYN-dog needs: it counts SYNs and SYN/ACKs; FIN and RST
// are classified too for the companion detectors in internal/detect.
type Kind uint8

// Classification outcomes.
const (
	// KindNotTCP marks packets that are not classifiable TCP segments
	// (non-TCP protocol, fragments, truncated headers).
	KindNotTCP Kind = iota
	// KindSYN is a connection request: SYN set, ACK clear.
	KindSYN
	// KindSYNACK is the server's handshake reply: SYN and ACK set.
	KindSYNACK
	// KindFIN is a teardown segment: FIN set.
	KindFIN
	// KindRST is a reset segment: RST set.
	KindRST
	// KindOther is any other valid TCP segment (pure ACK, data, ...).
	KindOther
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNotTCP:
		return "not-tcp"
	case KindSYN:
		return "syn"
	case KindSYNACK:
		return "syn-ack"
	case KindFIN:
		return "fin"
	case KindRST:
		return "rst"
	case KindOther:
		return "other"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ClassifyFlags maps raw TCP flag bits to a Kind. Precedence follows
// the detector's needs: SYN/ACK before SYN, RST before FIN, so that a
// pathological segment with several control bits lands in the bucket
// the paper's counters would use.
func ClassifyFlags(flags uint8) Kind {
	switch {
	case flags&FlagSYN != 0 && flags&FlagACK != 0:
		return KindSYNACK
	case flags&FlagSYN != 0:
		return KindSYN
	case flags&FlagRST != 0:
		return KindRST
	case flags&FlagFIN != 0:
		return KindFIN
	default:
		return KindOther
	}
}

// Classify performs the paper's three-step packet classification on a
// raw IPv4 packet. It never allocates and tolerates malformed input by
// returning KindNotTCP.
func Classify(raw []byte) Kind {
	if len(raw) < IPv4HeaderLen {
		return KindNotTCP
	}
	if raw[0]>>4 != 4 { // IPv4 only
		return KindNotTCP
	}
	ihl := int(raw[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(raw) < ihl+14 {
		// Need at least up to the TCP flags byte (offset 13 in the TCP
		// header).
		return KindNotTCP
	}
	if raw[9] != ProtocolTCP {
		return KindNotTCP
	}
	// Fragment check: flags+offset live in bytes 6-7. A packet with a
	// nonzero fragment offset, or with MF set, cannot be classified by
	// TCP flags (only the first fragment carries the TCP header, and
	// the paper requires zero fragmentation offset).
	fragField := binary.BigEndian.Uint16(raw[6:8])
	if fragField&0x1fff != 0 || fragField&0x2000 != 0 {
		return KindNotTCP
	}
	return ClassifyFlags(raw[ihl+13])
}

// Errors returned by the header codecs.
var (
	ErrTruncated  = errors.New("packet: buffer too short")
	ErrNotIPv4    = errors.New("packet: not an IPv4 packet")
	ErrBadHdrLen  = errors.New("packet: bad header length")
	ErrNotTCP     = errors.New("packet: not a TCP packet")
	ErrFragmented = errors.New("packet: fragmented packet")
)

// IPv4Header is a decoded IPv4 header (options unsupported: the
// simulated routers never emit them, and Unmarshal rejects them
// explicitly rather than mis-parsing).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	DontFrag bool
	MoreFrag bool
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
}

// Marshal appends the 20-byte wire encoding of h to dst and returns
// the extended slice. The checksum is computed over the header.
func (h *IPv4Header) Marshal(dst []byte) []byte {
	start := len(dst)
	var buf [IPv4HeaderLen]byte
	buf[0] = 4<<4 | 5 // version 4, IHL 5
	buf[1] = h.TOS
	binary.BigEndian.PutUint16(buf[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(buf[4:6], h.ID)
	frag := h.FragOff & 0x1fff
	if h.DontFrag {
		frag |= 0x4000
	}
	if h.MoreFrag {
		frag |= 0x2000
	}
	binary.BigEndian.PutUint16(buf[6:8], frag)
	buf[8] = h.TTL
	buf[9] = h.Protocol
	src := h.Src.As4()
	dstAddr := h.Dst.As4()
	copy(buf[12:16], src[:])
	copy(buf[16:20], dstAddr[:])
	sum := Checksum(buf[:], 0)
	binary.BigEndian.PutUint16(buf[10:12], sum)
	return append(dst[:start], buf[:]...)
}

// Unmarshal decodes an IPv4 header from raw. Headers with options
// (IHL > 5) are rejected with ErrBadHdrLen.
func (h *IPv4Header) Unmarshal(raw []byte) error {
	if len(raw) < IPv4HeaderLen {
		return ErrTruncated
	}
	if raw[0]>>4 != 4 {
		return ErrNotIPv4
	}
	if raw[0]&0x0f != 5 {
		return ErrBadHdrLen
	}
	h.TOS = raw[1]
	h.TotalLen = binary.BigEndian.Uint16(raw[2:4])
	h.ID = binary.BigEndian.Uint16(raw[4:6])
	frag := binary.BigEndian.Uint16(raw[6:8])
	h.DontFrag = frag&0x4000 != 0
	h.MoreFrag = frag&0x2000 != 0
	h.FragOff = frag & 0x1fff
	h.TTL = raw[8]
	h.Protocol = raw[9]
	h.Src = netip.AddrFrom4([4]byte(raw[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(raw[16:20]))
	return nil
}

// TCPHeader is a decoded TCP header without options.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Urgent  uint16
}

// Marshal appends the 20-byte wire encoding of t to dst and returns
// the extended slice. The checksum field is left zero; WriteChecksum
// fills it in when a pseudo-header is available.
func (t *TCPHeader) Marshal(dst []byte) []byte {
	var buf [TCPHeaderLen]byte
	binary.BigEndian.PutUint16(buf[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], t.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], t.Seq)
	binary.BigEndian.PutUint32(buf[8:12], t.Ack)
	buf[12] = 5 << 4 // data offset 5 words
	buf[13] = t.Flags
	binary.BigEndian.PutUint16(buf[14:16], t.Window)
	binary.BigEndian.PutUint16(buf[18:20], t.Urgent)
	return append(dst, buf[:]...)
}

// Unmarshal decodes a TCP header from raw. TCP options, if present,
// are skipped (only the fixed 20 bytes are interpreted).
func (t *TCPHeader) Unmarshal(raw []byte) error {
	if len(raw) < TCPHeaderLen {
		return ErrTruncated
	}
	dataOff := int(raw[12]>>4) * 4
	if dataOff < TCPHeaderLen || dataOff > len(raw) {
		return ErrBadHdrLen
	}
	t.SrcPort = binary.BigEndian.Uint16(raw[0:2])
	t.DstPort = binary.BigEndian.Uint16(raw[2:4])
	t.Seq = binary.BigEndian.Uint32(raw[4:8])
	t.Ack = binary.BigEndian.Uint32(raw[8:12])
	t.Flags = raw[13]
	t.Window = binary.BigEndian.Uint16(raw[14:16])
	t.Urgent = binary.BigEndian.Uint16(raw[18:20])
	return nil
}

// Kind classifies the header's flag bits.
func (t *TCPHeader) Kind() Kind { return ClassifyFlags(t.Flags) }

// Segment is a full decoded TCP/IPv4 packet as used by the simulator
// and the trace tooling.
type Segment struct {
	IP  IPv4Header
	TCP TCPHeader
}

// Build constructs a Segment with the given addressing and flags,
// filling in sensible defaults (TTL 64, window 65535).
func Build(src, dst netip.Addr, srcPort, dstPort uint16, seq, ack uint32, flags uint8) Segment {
	return Segment{
		IP: IPv4Header{
			TotalLen: IPv4HeaderLen + TCPHeaderLen,
			TTL:      64,
			Protocol: ProtocolTCP,
			Src:      src,
			Dst:      dst,
		},
		TCP: TCPHeader{
			SrcPort: srcPort,
			DstPort: dstPort,
			Seq:     seq,
			Ack:     ack,
			Flags:   flags,
			Window:  65535,
		},
	}
}

// Marshal appends the full wire encoding (IP header + TCP header with
// checksum) to dst and returns the extended slice.
func (s *Segment) Marshal(dst []byte) []byte {
	ipStart := len(dst)
	dst = s.IP.Marshal(dst)
	tcpStart := len(dst)
	dst = s.TCP.Marshal(dst)
	// TCP checksum over pseudo-header + TCP header.
	sum := pseudoHeaderSum(s.IP.Src, s.IP.Dst, uint16(len(dst)-tcpStart))
	csum := Checksum(dst[tcpStart:], sum)
	binary.BigEndian.PutUint16(dst[tcpStart+16:tcpStart+18], csum)
	_ = ipStart
	return dst
}

// Unmarshal decodes a full segment from raw, validating the protocol
// and fragmentation constraints the classifier requires.
func (s *Segment) Unmarshal(raw []byte) error {
	if err := s.IP.Unmarshal(raw); err != nil {
		return err
	}
	if s.IP.Protocol != ProtocolTCP {
		return ErrNotTCP
	}
	if s.IP.FragOff != 0 || s.IP.MoreFrag {
		return ErrFragmented
	}
	return s.TCP.Unmarshal(raw[IPv4HeaderLen:])
}

// Kind classifies the segment.
func (s *Segment) Kind() Kind { return s.TCP.Kind() }

// Checksum computes the ones-complement Internet checksum of data,
// seeded with an initial partial sum (use 0 for plain headers, or the
// pseudo-header sum for TCP).
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum returns the partial checksum of the TCP/IPv4
// pseudo-header (src, dst, zero, protocol, TCP length).
func pseudoHeaderSum(src, dst netip.Addr, tcpLen uint16) uint32 {
	var sum uint32
	s4, d4 := src.As4(), dst.As4()
	sum += uint32(s4[0])<<8 | uint32(s4[1])
	sum += uint32(s4[2])<<8 | uint32(s4[3])
	sum += uint32(d4[0])<<8 | uint32(d4[1])
	sum += uint32(d4[2])<<8 | uint32(d4[3])
	sum += ProtocolTCP
	sum += uint32(tcpLen)
	return sum
}

// VerifyTCPChecksum reports whether the TCP checksum of a marshaled
// segment (IP header options-free) is valid.
func VerifyTCPChecksum(raw []byte) bool {
	var ip IPv4Header
	if err := ip.Unmarshal(raw); err != nil {
		return false
	}
	tcpBytes := raw[IPv4HeaderLen:]
	if len(tcpBytes) < TCPHeaderLen {
		return false
	}
	sum := pseudoHeaderSum(ip.Src, ip.Dst, uint16(len(tcpBytes)))
	return Checksum(tcpBytes, sum) == 0
}
