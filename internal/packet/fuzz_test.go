package packet

import (
	"net/netip"
	"testing"
)

// FuzzClassify asserts the classifier is total: any byte string gets a
// verdict, no panics, and valid marshaled segments round-trip to their
// flag classification.
func FuzzClassify(f *testing.F) {
	seg := Build(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		1, 2, 3, 4, FlagSYN)
	f.Add(seg.Marshal(nil))
	f.Add([]byte{})
	f.Add(make([]byte, 19))
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, raw []byte) {
		kind := Classify(raw)
		if kind > KindOther {
			t.Fatalf("impossible kind %d", kind)
		}
		// If it classified as TCP, Unmarshal must also succeed and
		// agree, except for packets with IP options (IHL > 5), which
		// Classify handles but the fixed-header codec rejects.
		if kind != KindNotTCP && raw[0]&0x0f == 5 {
			var s Segment
			if err := s.Unmarshal(raw[:min(len(raw), 40)]); err == nil {
				if got := s.Kind(); got != kind {
					t.Fatalf("Classify = %v but Segment.Kind = %v", kind, got)
				}
			}
		}
	})
}

// FuzzSegmentUnmarshal asserts the segment codec never panics and that
// successfully decoded segments re-marshal to a classifiable packet.
func FuzzSegmentUnmarshal(f *testing.F) {
	good := Build(netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("192.0.2.2"),
		80, 443, 7, 9, FlagSYN|FlagACK)
	f.Add(good.Marshal(nil))
	f.Add(make([]byte, 40))
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s Segment
		if err := s.Unmarshal(raw); err != nil {
			return
		}
		out := s.Marshal(nil)
		if Classify(out) != s.Kind() {
			t.Fatalf("re-marshaled segment classifies differently")
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
