package packet

import (
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("10.1.0.5")
	addrB = netip.MustParseAddr("192.168.7.9")
)

func TestClassifyFlags(t *testing.T) {
	tests := []struct {
		name  string
		flags uint8
		want  Kind
	}{
		{"pure syn", FlagSYN, KindSYN},
		{"syn-ack", FlagSYN | FlagACK, KindSYNACK},
		{"pure ack", FlagACK, KindOther},
		{"fin", FlagFIN, KindFIN},
		{"fin-ack", FlagFIN | FlagACK, KindFIN},
		{"rst", FlagRST, KindRST},
		{"rst-ack", FlagRST | FlagACK, KindRST},
		{"rst beats fin", FlagRST | FlagFIN, KindRST},
		{"syn beats rst", FlagSYN | FlagRST, KindSYN},
		{"nothing", 0, KindOther},
		{"psh-ack data", FlagPSH | FlagACK, KindOther},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyFlags(tt.flags); got != tt.want {
				t.Errorf("ClassifyFlags(%#x) = %v, want %v", tt.flags, got, tt.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	pairs := map[Kind]string{
		KindNotTCP: "not-tcp",
		KindSYN:    "syn",
		KindSYNACK: "syn-ack",
		KindFIN:    "fin",
		KindRST:    "rst",
		KindOther:  "other",
		Kind(200):  "kind(200)",
	}
	for k, want := range pairs {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := Build(addrA, addrB, 1234, 80, 1000, 0, FlagSYN)
	raw := seg.Marshal(nil)
	if len(raw) != IPv4HeaderLen+TCPHeaderLen {
		t.Fatalf("marshaled length = %d, want 40", len(raw))
	}
	var back Segment
	if err := back.Unmarshal(raw); err != nil {
		t.Fatal(err)
	}
	if back.IP.Src != addrA || back.IP.Dst != addrB {
		t.Errorf("addresses = %v -> %v", back.IP.Src, back.IP.Dst)
	}
	if back.TCP.SrcPort != 1234 || back.TCP.DstPort != 80 {
		t.Errorf("ports = %d -> %d", back.TCP.SrcPort, back.TCP.DstPort)
	}
	if back.TCP.Seq != 1000 || back.TCP.Flags != FlagSYN {
		t.Errorf("seq/flags = %d/%#x", back.TCP.Seq, back.TCP.Flags)
	}
	if back.Kind() != KindSYN {
		t.Errorf("Kind = %v, want syn", back.Kind())
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	seg := Build(addrA, addrB, 5, 6, 7, 8, FlagACK)
	raw := seg.Marshal(nil)
	// Recomputing the checksum over the header including the stored
	// checksum must give zero (i.e. Checksum returns 0xffff-complement).
	if got := Checksum(raw[:IPv4HeaderLen], 0); got != 0 {
		t.Errorf("IP header checksum residue = %#x, want 0", got)
	}
}

func TestTCPChecksumValid(t *testing.T) {
	seg := Build(addrA, addrB, 443, 55555, 42, 99, FlagSYN|FlagACK)
	raw := seg.Marshal(nil)
	if !VerifyTCPChecksum(raw) {
		t.Error("TCP checksum did not verify")
	}
	// Corrupt one byte of the TCP header: verification must fail.
	raw[IPv4HeaderLen+4] ^= 0xff
	if VerifyTCPChecksum(raw) {
		t.Error("corrupted packet still verified")
	}
}

func TestClassifyRawPackets(t *testing.T) {
	mk := func(flags uint8) []byte {
		seg := Build(addrA, addrB, 1, 2, 3, 4, flags)
		return seg.Marshal(nil)
	}
	tests := []struct {
		name string
		raw  []byte
		want Kind
	}{
		{"syn", mk(FlagSYN), KindSYN},
		{"synack", mk(FlagSYN | FlagACK), KindSYNACK},
		{"rst", mk(FlagRST), KindRST},
		{"fin", mk(FlagFIN | FlagACK), KindFIN},
		{"data", mk(FlagACK | FlagPSH), KindOther},
		{"empty", nil, KindNotTCP},
		{"short", make([]byte, 10), KindNotTCP},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Classify(tt.raw); got != tt.want {
				t.Errorf("Classify = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestClassifyRejectsNonTCP(t *testing.T) {
	seg := Build(addrA, addrB, 1, 2, 3, 4, FlagSYN)
	raw := seg.Marshal(nil)
	raw[9] = 17 // UDP
	// Fix the IP checksum so only the protocol distinguishes it.
	raw[10], raw[11] = 0, 0
	if got := Classify(raw); got != KindNotTCP {
		t.Errorf("UDP packet classified as %v", got)
	}
}

func TestClassifyRejectsFragments(t *testing.T) {
	seg := Build(addrA, addrB, 1, 2, 3, 4, FlagSYN)
	seg.IP.FragOff = 8
	raw := seg.Marshal(nil)
	if got := Classify(raw); got != KindNotTCP {
		t.Errorf("offset fragment classified as %v", got)
	}
	seg.IP.FragOff = 0
	seg.IP.MoreFrag = true
	raw = seg.Marshal(nil)
	if got := Classify(raw); got != KindNotTCP {
		t.Errorf("MF fragment classified as %v", got)
	}
}

func TestClassifyRejectsIPv6Version(t *testing.T) {
	seg := Build(addrA, addrB, 1, 2, 3, 4, FlagSYN)
	raw := seg.Marshal(nil)
	raw[0] = 6<<4 | 5
	if got := Classify(raw); got != KindNotTCP {
		t.Errorf("version-6 packet classified as %v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var ip IPv4Header
	if err := ip.Unmarshal(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short IP: %v, want ErrTruncated", err)
	}
	bad := make([]byte, 20)
	bad[0] = 6<<4 | 5
	if err := ip.Unmarshal(bad); err != ErrNotIPv4 {
		t.Errorf("v6: %v, want ErrNotIPv4", err)
	}
	bad[0] = 4<<4 | 6 // IHL 6: options present
	if err := ip.Unmarshal(bad); err != ErrBadHdrLen {
		t.Errorf("options: %v, want ErrBadHdrLen", err)
	}

	var tcp TCPHeader
	if err := tcp.Unmarshal(make([]byte, 19)); err != ErrTruncated {
		t.Errorf("short TCP: %v, want ErrTruncated", err)
	}
	badTCP := make([]byte, 20)
	badTCP[12] = 4 << 4 // data offset 16 bytes < 20
	if err := tcp.Unmarshal(badTCP); err != ErrBadHdrLen {
		t.Errorf("small data offset: %v, want ErrBadHdrLen", err)
	}

	var seg Segment
	built := Build(addrA, addrB, 1, 2, 3, 4, 0)
	raw := built.Marshal(nil)
	raw[9] = 17 // UDP
	if err := seg.Unmarshal(raw); err != ErrNotTCP {
		t.Errorf("UDP segment: %v, want ErrNotTCP", err)
	}
	raw[9] = ProtocolTCP
	raw[6] = 0x20 // MF
	if err := seg.Unmarshal(raw); err != ErrFragmented {
		t.Errorf("fragment: %v, want ErrFragmented", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 style example: checksum of {0x00,0x01,0xf2,0x03,0xf4,0xf5,0xf6,0xf7}.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	// Odd-length input pads with a zero byte.
	odd := []byte{0xab}
	if got := Checksum(odd, 0); got != ^uint16(0xab00) {
		t.Errorf("odd checksum = %#x, want %#x", got, ^uint16(0xab00))
	}
}

// Property: Marshal/Unmarshal round-trips every header field.
func TestSegmentRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, seq, ack uint32, flags uint8, a, b [4]byte) bool {
		src := netip.AddrFrom4(a)
		dst := netip.AddrFrom4(b)
		seg := Build(src, dst, srcPort, dstPort, seq, ack, flags)
		raw := seg.Marshal(nil)
		var back Segment
		if err := back.Unmarshal(raw); err != nil {
			return false
		}
		return back.IP.Src == src && back.IP.Dst == dst &&
			back.TCP.SrcPort == srcPort && back.TCP.DstPort == dstPort &&
			back.TCP.Seq == seq && back.TCP.Ack == ack &&
			back.TCP.Flags == flags && VerifyTCPChecksum(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Classify on marshaled segments agrees with ClassifyFlags.
func TestClassifyAgreesWithFlagsProperty(t *testing.T) {
	f := func(flags uint8) bool {
		seg := Build(addrA, addrB, 1, 2, 3, 4, flags)
		raw := seg.Marshal(nil)
		return Classify(raw) == ClassifyFlags(flags)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Classify never panics on arbitrary bytes.
func TestClassifyRobustProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_ = Classify(raw) // must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	syn := Build(addrA, addrB, 1234, 80, 1, 0, FlagSYN)
	raw := syn.Marshal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Classify(raw) != KindSYN {
			b.Fatal("misclassified")
		}
	}
}

func BenchmarkSegmentMarshal(b *testing.B) {
	seg := Build(addrA, addrB, 1234, 80, 1, 0, FlagSYN)
	buf := make([]byte, 0, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = seg.Marshal(buf[:0])
	}
}
