// Package mitigate implements the response actions Section 4.2.3
// sketches for the moment SYN-dog raises its alarm: because the
// flooding source is inside the stub network, the leaf router can act
// locally instead of invoking IP traceback.
//
//   - IngressFilter is RFC 2267 network ingress filtering: outbound
//     packets whose source address lies outside the stub prefix are
//     spoofed by construction and can be dropped at the leaf router.
//   - Locator attributes spoofed packets to the layer-2 station (MAC
//     address / switch port) they physically entered from, pinpointing
//     the compromised host no matter what source address it forges.
//   - TokenBucket rate-limits outbound SYNs as a softer response when
//     dropping everything is too blunt.
//
// (The other classic mitigation, SYN cookies, lives with the TCP
// endpoint substrate in internal/tcp, since it is a server-side
// behavior.)
package mitigate

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// StationID is a layer-2 station identity (a MAC address). The leaf
// router sees which station every frame entered from regardless of
// the forged IP source — that is why the paper can "check the MAC
// addresses of IP packets whose source addresses are spoofed".
type StationID [6]byte

// String formats the station as a MAC address.
func (s StationID) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", s[0], s[1], s[2], s[3], s[4], s[5])
}

// StationFromAddr derives the deterministic pseudo-MAC the simulator
// assigns to a host: a locally-administered address embedding the
// IPv4 address.
func StationFromAddr(addr netip.Addr) StationID {
	a := addr.As4()
	// 0x02 = locally administered, unicast.
	return StationID{0x02, 0x5d, a[0], a[1], a[2], a[3]}
}

// IngressFilter drops outbound packets with out-of-prefix sources
// (RFC 2267). The zero value is not usable; construct with
// NewIngressFilter.
type IngressFilter struct {
	prefix  netip.Prefix
	enabled bool

	passed  uint64
	dropped uint64
}

// NewIngressFilter builds a filter for the stub prefix. It starts
// disabled: the paper's flow is detect first (SYN-dog), then trigger
// filtering.
func NewIngressFilter(prefix netip.Prefix) (*IngressFilter, error) {
	if !prefix.IsValid() {
		return nil, errors.New("mitigate: invalid prefix")
	}
	return &IngressFilter{prefix: prefix.Masked()}, nil
}

// Enable switches the filter on (idempotent).
func (f *IngressFilter) Enable() { f.enabled = true }

// Disable switches the filter off (idempotent).
func (f *IngressFilter) Disable() { f.enabled = false }

// Enabled reports the filter state.
func (f *IngressFilter) Enabled() bool { return f.enabled }

// Allow decides one outbound packet by its source address: true means
// forward. Disabled filters allow everything (but still count).
func (f *IngressFilter) Allow(src netip.Addr) bool {
	if !f.enabled || f.prefix.Contains(src) {
		f.passed++
		return true
	}
	f.dropped++
	return false
}

// Stats returns (passed, dropped) counts.
func (f *IngressFilter) Stats() (passed, dropped uint64) {
	return f.passed, f.dropped
}

// Suspect is one station observed emitting spoofed traffic.
type Suspect struct {
	Station StationID
	// Spoofed counts packets with out-of-prefix sources from this
	// station.
	Spoofed uint64
	// DistinctSources counts distinct forged source addresses seen.
	DistinctSources int
	// FirstSeen is when the station first emitted a spoofed packet.
	FirstSeen time.Duration
}

// Locator attributes spoofed outbound packets to stations. It is the
// paper's post-alarm source-location step: spoofing requires a raw
// socket, so the station emitting out-of-prefix sources is the
// compromised host.
type Locator struct {
	prefix   netip.Prefix
	suspects map[StationID]*suspectState
}

type suspectState struct {
	spoofed   uint64
	sources   map[netip.Addr]struct{}
	firstSeen time.Duration
}

// NewLocator builds a locator for the stub prefix.
func NewLocator(prefix netip.Prefix) (*Locator, error) {
	if !prefix.IsValid() {
		return nil, errors.New("mitigate: invalid prefix")
	}
	return &Locator{
		prefix:   prefix.Masked(),
		suspects: make(map[StationID]*suspectState),
	}, nil
}

// Observe records one outbound packet: the station it entered from and
// its claimed IP source. In-prefix sources are legitimate and ignored.
// It returns true when the packet was spoofed.
func (l *Locator) Observe(now time.Duration, station StationID, src netip.Addr) bool {
	if l.prefix.Contains(src) {
		return false
	}
	st, ok := l.suspects[station]
	if !ok {
		st = &suspectState{sources: make(map[netip.Addr]struct{}), firstSeen: now}
		l.suspects[station] = st
	}
	st.spoofed++
	st.sources[src] = struct{}{}
	return true
}

// Suspects returns all stations caught spoofing, most prolific first.
func (l *Locator) Suspects() []Suspect {
	out := make([]Suspect, 0, len(l.suspects))
	for id, st := range l.suspects {
		out = append(out, Suspect{
			Station:         id,
			Spoofed:         st.spoofed,
			DistinctSources: len(st.sources),
			FirstSeen:       st.firstSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Spoofed != out[j].Spoofed {
			return out[i].Spoofed > out[j].Spoofed
		}
		return out[i].Station.String() < out[j].Station.String()
	})
	return out
}

// TokenBucket rate-limits a packet class (outbound SYNs, say) to a
// sustained rate with a burst allowance. Time is supplied by the
// caller (simulation time), making the limiter deterministic.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration

	allowed uint64
	denied  uint64
}

// NewTokenBucket builds a limiter; rate and burst must be positive.
// The bucket starts full.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, errors.New("mitigate: rate and burst must be positive")
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Allow decides one packet at the given (non-decreasing) time.
func (b *TokenBucket) Allow(now time.Duration) bool {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		b.allowed++
		return true
	}
	b.denied++
	return false
}

// Stats returns (allowed, denied) counts.
func (b *TokenBucket) Stats() (allowed, denied uint64) {
	return b.allowed, b.denied
}
