package mitigate

import (
	"errors"
	"net/netip"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
	"repro/internal/tcp"
)

// SynProxy is the classic stateful victim-side defense the paper's
// introduction contrasts SYN-dog with (SynDefender / Syn proxying /
// Synkill): a middlebox in front of the server that answers every
// inbound SYN itself with a cookie-protected SYN/ACK and only opens a
// connection to the real server once the client's final ACK validates.
// Spoofed floods therefore never reach the server's backlog — but the
// proxy must remember every half-validated client while it splices the
// two connection halves, and that per-connection state is exactly the
// resource a flood can aim at instead. The ablation "ablation-state"
// uses this type to measure that growth empirically.
type SynProxy struct {
	sim    *eventsim.Sim
	addr   netip.Addr
	port   uint16
	secret uint64

	// toClient transmits toward the Internet side.
	toClient tcp.SendFunc
	// toServer transmits toward the protected server.
	toServer tcp.SendFunc

	// pending holds validated clients whose server-side handshake is
	// still in flight — the proxy's per-connection state.
	pending map[proxyKey]*splice
	// stateTimeout reaps pending entries (the proxy's own 75 s analog).
	stateTimeout time.Duration

	stats ProxyStats
}

type proxyKey struct {
	addr netip.Addr
	port uint16
}

type splice struct {
	clientISN uint32
	expiry    eventsim.Timer
}

// ProxyStats are the proxy's counters.
type ProxyStats struct {
	// SynAnswered counts inbound SYNs answered with cookie SYN/ACKs
	// (stateless phase — unbounded floods land here harmlessly).
	SynAnswered uint64
	// Validated counts client ACKs that carried a valid cookie and
	// created proxy state.
	Validated uint64
	// BadCookies counts ACKs with invalid cookies (flood remnants).
	BadCookies uint64
	// Spliced counts connections successfully opened to the server.
	Spliced uint64
	// Expired counts pending entries reaped by the state timeout.
	Expired uint64
	// PeakPending is the high-water mark of per-connection state.
	PeakPending int
}

// NewSynProxy builds a proxy guarding addr:port.
func NewSynProxy(sim *eventsim.Sim, addr netip.Addr, port uint16, secret uint64, toClient, toServer tcp.SendFunc) (*SynProxy, error) {
	if sim == nil || toClient == nil || toServer == nil {
		return nil, errors.New("mitigate: proxy needs sim and both send paths")
	}
	if !addr.IsValid() {
		return nil, errors.New("mitigate: invalid proxy address")
	}
	return &SynProxy{
		sim:          sim,
		addr:         addr,
		port:         port,
		secret:       secret,
		toClient:     toClient,
		toServer:     toServer,
		pending:      make(map[proxyKey]*splice),
		stateTimeout: 75 * time.Second,
	}, nil
}

// Stats returns a copy of the counters.
func (p *SynProxy) Stats() ProxyStats { return p.stats }

// Pending returns the current per-connection state size.
func (p *SynProxy) Pending() int { return len(p.pending) }

// DeliverFromClient handles one Internet-side segment.
func (p *SynProxy) DeliverFromClient(now time.Duration, seg packet.Segment) {
	if seg.IP.Dst != p.addr || seg.TCP.DstPort != p.port {
		return
	}
	switch seg.Kind() {
	case packet.KindSYN:
		// Stateless cookie reply; nothing stored.
		p.stats.SynAnswered++
		cookie := tcp.MakeCookie(p.secret, seg.IP.Src, p.addr,
			seg.TCP.SrcPort, p.port, seg.TCP.Seq)
		p.toClient(packet.Build(p.addr, seg.IP.Src, p.port, seg.TCP.SrcPort,
			cookie, seg.TCP.Seq+1, packet.FlagSYN|packet.FlagACK))
	case packet.KindOther:
		if seg.TCP.Flags&packet.FlagACK == 0 {
			return
		}
		want := tcp.MakeCookie(p.secret, seg.IP.Src, p.addr,
			seg.TCP.SrcPort, p.port, seg.TCP.Seq-1)
		if seg.TCP.Ack-1 != want {
			p.stats.BadCookies++
			return
		}
		key := proxyKey{addr: seg.IP.Src, port: seg.TCP.SrcPort}
		if _, dup := p.pending[key]; dup {
			return
		}
		// Legitimate client: open the server-side half. THIS is the
		// state a flood of valid-looking clients would bloat.
		sp := &splice{clientISN: seg.TCP.Seq - 1}
		sp.expiry = p.sim.After(p.stateTimeout, func(time.Duration) {
			if p.pending[key] == sp {
				delete(p.pending, key)
				p.stats.Expired++
			}
		})
		p.pending[key] = sp
		p.stats.Validated++
		if len(p.pending) > p.stats.PeakPending {
			p.stats.PeakPending = len(p.pending)
		}
		p.toServer(packet.Build(seg.IP.Src, p.addr, seg.TCP.SrcPort, p.port,
			sp.clientISN, 0, packet.FlagSYN))
	}
}

// DeliverFromServer handles one server-side segment (the protected
// server answering the proxy's SYN).
func (p *SynProxy) DeliverFromServer(now time.Duration, seg packet.Segment) {
	if seg.Kind() != packet.KindSYNACK {
		return
	}
	key := proxyKey{addr: seg.IP.Dst, port: seg.TCP.DstPort}
	sp, ok := p.pending[key]
	if !ok {
		return
	}
	// Complete the server handshake; the splice is established and the
	// per-connection entry can be released (a full proxy would keep
	// sequence-translation state for the data phase; connection
	// establishment is what matters to this study).
	p.toServer(packet.Build(seg.IP.Dst, p.addr, seg.TCP.DstPort, p.port,
		sp.clientISN+1, seg.TCP.Seq+1, packet.FlagACK))
	sp.expiry.Cancel()
	delete(p.pending, key)
	p.stats.Spliced++
}
