package mitigate

import (
	"net/netip"
	"testing"
	"time"
)

var (
	stubPrefix = netip.MustParsePrefix("10.1.0.0/24")
	insideSrc  = netip.MustParseAddr("10.1.0.5")
	spoofedSrc = netip.MustParseAddr("240.1.2.3")
)

func TestStationString(t *testing.T) {
	s := StationID{0x02, 0x5d, 0x0a, 0x01, 0x00, 0x05}
	if got := s.String(); got != "02:5d:0a:01:00:05" {
		t.Errorf("String = %q", got)
	}
}

func TestStationFromAddrDeterministic(t *testing.T) {
	a := StationFromAddr(insideSrc)
	b := StationFromAddr(insideSrc)
	if a != b {
		t.Error("pseudo-MAC not deterministic")
	}
	c := StationFromAddr(netip.MustParseAddr("10.1.0.6"))
	if a == c {
		t.Error("distinct hosts share a pseudo-MAC")
	}
	if a[0]&0x02 == 0 {
		t.Error("pseudo-MAC not locally administered")
	}
}

func TestIngressFilterLifecycle(t *testing.T) {
	f, err := NewIngressFilter(stubPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if f.Enabled() {
		t.Error("filter should start disabled")
	}
	// Disabled: everything passes, even spoofed.
	if !f.Allow(spoofedSrc) {
		t.Error("disabled filter dropped a packet")
	}
	f.Enable()
	if !f.Enabled() {
		t.Error("Enable failed")
	}
	if f.Allow(spoofedSrc) {
		t.Error("enabled filter passed a spoofed source")
	}
	if !f.Allow(insideSrc) {
		t.Error("enabled filter dropped a legitimate source")
	}
	passed, dropped := f.Stats()
	if passed != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d, want 2/1", passed, dropped)
	}
	f.Disable()
	if f.Enabled() {
		t.Error("Disable failed")
	}
}

func TestNewIngressFilterValidation(t *testing.T) {
	if _, err := NewIngressFilter(netip.Prefix{}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestLocatorPinpointsSpoofer(t *testing.T) {
	l, err := NewLocator(stubPrefix)
	if err != nil {
		t.Fatal(err)
	}
	legit := StationFromAddr(insideSrc)
	attacker := StationFromAddr(netip.MustParseAddr("10.1.0.66"))

	// Legit host: in-prefix sources, never suspected.
	for i := 0; i < 100; i++ {
		if l.Observe(time.Duration(i)*time.Millisecond, legit, insideSrc) {
			t.Fatal("legitimate packet flagged as spoofed")
		}
	}
	// Attacker: rotating spoofed sources.
	base := netip.MustParseAddr("240.0.0.1")
	src := base
	for i := 0; i < 50; i++ {
		if !l.Observe(time.Second+time.Duration(i)*time.Millisecond, attacker, src) {
			t.Fatal("spoofed packet not flagged")
		}
		src = src.Next()
	}

	suspects := l.Suspects()
	if len(suspects) != 1 {
		t.Fatalf("suspects = %d, want 1", len(suspects))
	}
	s := suspects[0]
	if s.Station != attacker {
		t.Errorf("suspect = %v, want %v", s.Station, attacker)
	}
	if s.Spoofed != 50 {
		t.Errorf("spoofed count = %d, want 50", s.Spoofed)
	}
	if s.DistinctSources != 50 {
		t.Errorf("distinct sources = %d, want 50", s.DistinctSources)
	}
	if s.FirstSeen != time.Second {
		t.Errorf("first seen = %v, want 1s", s.FirstSeen)
	}
}

func TestLocatorOrdersByVolume(t *testing.T) {
	l, _ := NewLocator(stubPrefix)
	heavy := StationFromAddr(netip.MustParseAddr("10.1.0.2"))
	light := StationFromAddr(netip.MustParseAddr("10.1.0.3"))
	for i := 0; i < 10; i++ {
		l.Observe(0, heavy, spoofedSrc)
	}
	l.Observe(0, light, spoofedSrc)
	suspects := l.Suspects()
	if len(suspects) != 2 {
		t.Fatalf("suspects = %d, want 2", len(suspects))
	}
	if suspects[0].Station != heavy {
		t.Error("heaviest spoofer not first")
	}
}

func TestNewLocatorValidation(t *testing.T) {
	if _, err := NewLocator(netip.Prefix{}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(10, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestTokenBucketBurstThenRefill(t *testing.T) {
	b, err := NewTokenBucket(10, 5) // 10/s, burst 5
	if err != nil {
		t.Fatal(err)
	}
	// Burst: 5 immediate packets pass, the 6th is denied.
	for i := 0; i < 5; i++ {
		if !b.Allow(0) {
			t.Fatalf("burst packet %d denied", i)
		}
	}
	if b.Allow(0) {
		t.Error("packet beyond burst allowed")
	}
	// After 100ms one token (10/s * 0.1s) has refilled.
	if !b.Allow(100 * time.Millisecond) {
		t.Error("refilled token not granted")
	}
	if b.Allow(100 * time.Millisecond) {
		t.Error("second packet granted from a single refilled token")
	}
	allowed, denied := b.Stats()
	if allowed != 6 || denied != 2 {
		t.Errorf("stats = %d/%d, want 6/2", allowed, denied)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b, _ := NewTokenBucket(1000, 3)
	// A long quiet interval must not accumulate more than burst.
	if !b.Allow(time.Hour) {
		t.Fatal("first packet denied")
	}
	count := 1
	for b.Allow(time.Hour) {
		count++
		if count > 10 {
			break
		}
	}
	if count != 3 {
		t.Errorf("burst after idle = %d, want 3", count)
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	b, _ := NewTokenBucket(50, 5)
	allowed := 0
	// Offer 100 packets/s for 10 s: only ~50/s should pass.
	for i := 0; i < 1000; i++ {
		if b.Allow(time.Duration(i) * 10 * time.Millisecond) {
			allowed++
		}
	}
	if allowed < 480 || allowed > 520 {
		t.Errorf("sustained allowed = %d, want ≈500", allowed)
	}
}
