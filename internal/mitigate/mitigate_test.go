package mitigate

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"testing"
	"time"
)

var (
	stubPrefix = netip.MustParsePrefix("10.1.0.0/24")
	insideSrc  = netip.MustParseAddr("10.1.0.5")
	spoofedSrc = netip.MustParseAddr("240.1.2.3")
)

func TestStationString(t *testing.T) {
	s := StationID{0x02, 0x5d, 0x0a, 0x01, 0x00, 0x05}
	if got := s.String(); got != "02:5d:0a:01:00:05" {
		t.Errorf("String = %q", got)
	}
}

func TestStationFromAddrDeterministic(t *testing.T) {
	a := StationFromAddr(insideSrc)
	b := StationFromAddr(insideSrc)
	if a != b {
		t.Error("pseudo-MAC not deterministic")
	}
	c := StationFromAddr(netip.MustParseAddr("10.1.0.6"))
	if a == c {
		t.Error("distinct hosts share a pseudo-MAC")
	}
	if a[0]&0x02 == 0 {
		t.Error("pseudo-MAC not locally administered")
	}
}

func TestIngressFilterLifecycle(t *testing.T) {
	f, err := NewIngressFilter(stubPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if f.Enabled() {
		t.Error("filter should start disabled")
	}
	// Disabled: everything passes, even spoofed.
	if !f.Allow(spoofedSrc) {
		t.Error("disabled filter dropped a packet")
	}
	f.Enable()
	if !f.Enabled() {
		t.Error("Enable failed")
	}
	if f.Allow(spoofedSrc) {
		t.Error("enabled filter passed a spoofed source")
	}
	if !f.Allow(insideSrc) {
		t.Error("enabled filter dropped a legitimate source")
	}
	passed, dropped := f.Stats()
	if passed != 2 || dropped != 1 {
		t.Errorf("stats = %d/%d, want 2/1", passed, dropped)
	}
	f.Disable()
	if f.Enabled() {
		t.Error("Disable failed")
	}
}

func TestNewIngressFilterValidation(t *testing.T) {
	if _, err := NewIngressFilter(netip.Prefix{}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestLocatorPinpointsSpoofer(t *testing.T) {
	l, err := NewLocator(stubPrefix)
	if err != nil {
		t.Fatal(err)
	}
	legit := StationFromAddr(insideSrc)
	attacker := StationFromAddr(netip.MustParseAddr("10.1.0.66"))

	// Legit host: in-prefix sources, never suspected.
	for i := 0; i < 100; i++ {
		if l.Observe(time.Duration(i)*time.Millisecond, legit, insideSrc) {
			t.Fatal("legitimate packet flagged as spoofed")
		}
	}
	// Attacker: rotating spoofed sources.
	base := netip.MustParseAddr("240.0.0.1")
	src := base
	for i := 0; i < 50; i++ {
		if !l.Observe(time.Second+time.Duration(i)*time.Millisecond, attacker, src) {
			t.Fatal("spoofed packet not flagged")
		}
		src = src.Next()
	}

	suspects := l.Suspects()
	if len(suspects) != 1 {
		t.Fatalf("suspects = %d, want 1", len(suspects))
	}
	s := suspects[0]
	if s.Station != attacker {
		t.Errorf("suspect = %v, want %v", s.Station, attacker)
	}
	if s.Spoofed != 50 {
		t.Errorf("spoofed count = %d, want 50", s.Spoofed)
	}
	if s.DistinctSources != 50 {
		t.Errorf("distinct sources = %d, want 50", s.DistinctSources)
	}
	if s.FirstSeen != time.Second {
		t.Errorf("first seen = %v, want 1s", s.FirstSeen)
	}
}

func TestLocatorOrdersByVolume(t *testing.T) {
	l, _ := NewLocator(stubPrefix)
	heavy := StationFromAddr(netip.MustParseAddr("10.1.0.2"))
	light := StationFromAddr(netip.MustParseAddr("10.1.0.3"))
	for i := 0; i < 10; i++ {
		l.Observe(0, heavy, spoofedSrc)
	}
	l.Observe(0, light, spoofedSrc)
	suspects := l.Suspects()
	if len(suspects) != 2 {
		t.Fatalf("suspects = %d, want 2", len(suspects))
	}
	if suspects[0].Station != heavy {
		t.Error("heaviest spoofer not first")
	}
}

func TestNewLocatorValidation(t *testing.T) {
	if _, err := NewLocator(netip.Prefix{}); err == nil {
		t.Error("invalid prefix accepted")
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 10); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(10, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestTokenBucketBurstThenRefill(t *testing.T) {
	b, err := NewTokenBucket(10, 5) // 10/s, burst 5
	if err != nil {
		t.Fatal(err)
	}
	// Burst: 5 immediate packets pass, the 6th is denied.
	for i := 0; i < 5; i++ {
		if !b.Allow(0) {
			t.Fatalf("burst packet %d denied", i)
		}
	}
	if b.Allow(0) {
		t.Error("packet beyond burst allowed")
	}
	// After 100ms one token (10/s * 0.1s) has refilled.
	if !b.Allow(100 * time.Millisecond) {
		t.Error("refilled token not granted")
	}
	if b.Allow(100 * time.Millisecond) {
		t.Error("second packet granted from a single refilled token")
	}
	allowed, denied := b.Stats()
	if allowed != 6 || denied != 2 {
		t.Errorf("stats = %d/%d, want 6/2", allowed, denied)
	}
}

func TestTokenBucketCapsAtBurst(t *testing.T) {
	b, _ := NewTokenBucket(1000, 3)
	// A long quiet interval must not accumulate more than burst.
	if !b.Allow(time.Hour) {
		t.Fatal("first packet denied")
	}
	count := 1
	for b.Allow(time.Hour) {
		count++
		if count > 10 {
			break
		}
	}
	if count != 3 {
		t.Errorf("burst after idle = %d, want 3", count)
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	b, _ := NewTokenBucket(50, 5)
	allowed := 0
	// Offer 100 packets/s for 10 s: only ~50/s should pass.
	for i := 0; i < 1000; i++ {
		if b.Allow(time.Duration(i) * 10 * time.Millisecond) {
			allowed++
		}
	}
	if allowed < 480 || allowed > 520 {
		t.Errorf("sustained allowed = %d, want ≈500", allowed)
	}
}

// mixedLoad is a deterministic interleave of a legitimate SYN stream
// and a sustained attack stream: the attack rides an exact grid while
// the legitimate arrivals carry seeded jitter, so the sparse stream
// samples the bucket at effectively random phases instead of
// phase-locking to the attack grid.
type mixedEvent struct {
	ts    time.Duration
	legit bool
}

func mixedLoad(dur time.Duration, legitRate, attackRate float64) []mixedEvent {
	var evs []mixedEvent
	rng := rand.New(rand.NewSource(42))
	legitGap := time.Duration(float64(time.Second) / legitRate)
	for ts := time.Duration(0); ts < dur; ts += legitGap {
		jitter := time.Duration(rng.Int63n(int64(legitGap)))
		if ts+jitter < dur {
			evs = append(evs, mixedEvent{ts: ts + jitter, legit: true})
		}
	}
	attackGap := time.Duration(float64(time.Second) / attackRate)
	for ts := time.Duration(0); ts < dur; ts += attackGap {
		evs = append(evs, mixedEvent{ts: ts})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].ts < evs[j].ts })
	return evs
}

// TestTokenBucketBlanketFractions is the collateral-damage table: one
// class-blind bucket over an interleaved legit (2 SYN/s) + attack
// (50 SYN/s) load, at several bucket rates. A blanket bucket cannot
// discriminate — and under sustained contention it is worse than
// proportional for the sparse stream, because the dense attack grid
// grabs each refilled token the instant it appears while a legitimate
// arrival at a random phase rarely finds one waiting. This is the
// quantitative case for scoping mitigation to attributed sources
// whenever attribution succeeds.
func TestTokenBucketBlanketFractions(t *testing.T) {
	const (
		dur        = 60 * time.Second
		legitRate  = 2.0
		attackRate = 50.0
	)
	cases := []struct {
		rate                 float64
		legitMin, legitMax   float64
		attackMin, attackMax float64
	}{
		// Far below the offered load: almost everything dies, legit
		// hardest — the attack grid drains every refilled token.
		{1, 0, 0.06, 0.01, 0.04},
		// At a tenth of the offered load the classes pass ≈10% each.
		{5, 0.03, 0.25, 0.07, 0.13},
		// At half the offered load the attack passes ≈50% but the
		// sparse legit stream is squeezed well below its share.
		{26, 0.05, 0.40, 0.42, 0.60},
		// Above the offered load the bucket is invisible.
		{100, 1.0, 1.0, 1.0, 1.0},
	}
	evs := mixedLoad(dur, legitRate, attackRate)
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("rate=%v", tc.rate), func(t *testing.T) {
			b, err := NewTokenBucket(tc.rate, 5)
			if err != nil {
				t.Fatal(err)
			}
			var legitIn, legitOK, attackIn, attackOK int
			for _, e := range evs {
				ok := b.Allow(e.ts)
				if e.legit {
					legitIn++
					if ok {
						legitOK++
					}
				} else {
					attackIn++
					if ok {
						attackOK++
					}
				}
			}
			legitFrac := float64(legitOK) / float64(legitIn)
			attackFrac := float64(attackOK) / float64(attackIn)
			if legitFrac < tc.legitMin || legitFrac > tc.legitMax {
				t.Errorf("legit pass-through = %.3f, want in [%v, %v]",
					legitFrac, tc.legitMin, tc.legitMax)
			}
			if attackFrac < tc.attackMin || attackFrac > tc.attackMax {
				t.Errorf("attack pass-through = %.3f, want in [%v, %v]",
					attackFrac, tc.attackMin, tc.attackMax)
			}
			allowed, denied := b.Stats()
			if int(allowed) != legitOK+attackOK || int(allowed+denied) != len(evs) {
				t.Errorf("stats %d/%d inconsistent with tallies %d+%d of %d",
					allowed, denied, legitOK, attackOK, len(evs))
			}
		})
	}
}

// TestTokenBucketKeyedScopingSparesLegit is the counterpart: the same
// mixed load, but the bucket throttles only the (attributed) attack
// class. Legitimate pass-through is exactly 1.0 at every bucket rate —
// the payoff attribution buys, at any rate tight enough to matter.
func TestTokenBucketKeyedScopingSparesLegit(t *testing.T) {
	evs := mixedLoad(60*time.Second, 2, 50)
	for _, rate := range []float64{0.1, 1, 5} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			b, err := NewTokenBucket(rate, 1)
			if err != nil {
				t.Fatal(err)
			}
			var legitIn, legitOK, attackIn, attackOK int
			for _, e := range evs {
				if e.legit {
					legitIn++
					legitOK++ // unattributed traffic never enters the bucket
					continue
				}
				attackIn++
				if b.Allow(e.ts) {
					attackOK++
				}
			}
			if legitOK != legitIn {
				t.Errorf("keyed mitigation dropped legit traffic: %d/%d", legitOK, legitIn)
			}
			attackFrac := float64(attackOK) / float64(attackIn)
			// rate·dur + burst admitted out of 3000 offered, ±rounding.
			wantMax := (rate*60 + 2) / 3000
			if attackFrac > wantMax {
				t.Errorf("attack pass-through = %.4f, want ≤ %.4f", attackFrac, wantMax)
			}
		})
	}
}
