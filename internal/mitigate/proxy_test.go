package mitigate

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/eventsim"
	"repro/internal/packet"
	"repro/internal/tcp"
)

var (
	proxyAddr  = netip.MustParseAddr("10.9.0.1")
	clientAddr = netip.MustParseAddr("11.0.0.5")
)

// proxyHarness wires a proxy to a recorded client side and a real
// tcp.Server behind it.
type proxyHarness struct {
	sim      *eventsim.Sim
	proxy    *SynProxy
	server   *tcp.Server
	toClient []packet.Segment
}

func newProxyHarness(t *testing.T) *proxyHarness {
	t.Helper()
	h := &proxyHarness{sim: eventsim.New()}
	var err error
	// The protected server lives "behind" the proxy; proxy->server
	// segments are delivered directly, server replies come back into
	// DeliverFromServer.
	h.server, err = tcp.NewServer(h.sim, proxyAddr, 80,
		func(seg packet.Segment) { h.proxy.DeliverFromServer(0, seg) },
		tcp.ServerConfig{Backlog: 64})
	if err != nil {
		t.Fatal(err)
	}
	h.proxy, err = NewSynProxy(h.sim, proxyAddr, 80, 12345,
		func(seg packet.Segment) { h.toClient = append(h.toClient, seg) },
		func(seg packet.Segment) { h.server.Deliver(0, seg) },
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewSynProxyValidation(t *testing.T) {
	sim := eventsim.New()
	send := func(packet.Segment) {}
	if _, err := NewSynProxy(nil, proxyAddr, 80, 1, send, send); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewSynProxy(sim, netip.Addr{}, 80, 1, send, send); err == nil {
		t.Error("invalid addr accepted")
	}
	if _, err := NewSynProxy(sim, proxyAddr, 80, 1, nil, send); err == nil {
		t.Error("nil client path accepted")
	}
	if _, err := NewSynProxy(sim, proxyAddr, 80, 1, send, nil); err == nil {
		t.Error("nil server path accepted")
	}
}

func TestProxyLegitimateHandshakeSplices(t *testing.T) {
	h := newProxyHarness(t)
	// 1. Client SYN.
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, proxyAddr, 40000, 80,
		1000, 0, packet.FlagSYN))
	if len(h.toClient) != 1 || h.toClient[0].Kind() != packet.KindSYNACK {
		t.Fatalf("no cookie SYN/ACK: %v", h.toClient)
	}
	if h.proxy.Pending() != 0 {
		t.Fatal("stateless phase created state")
	}
	// 2. Client final ACK echoing the cookie.
	synAck := h.toClient[0]
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, proxyAddr, 40000, 80,
		1001, synAck.TCP.Seq+1, packet.FlagACK))
	h.sim.Run()
	st := h.proxy.Stats()
	if st.Validated != 1 {
		t.Errorf("Validated = %d, want 1", st.Validated)
	}
	if st.Spliced != 1 {
		t.Errorf("Spliced = %d, want 1", st.Spliced)
	}
	if h.proxy.Pending() != 0 {
		t.Errorf("pending = %d after splice, want 0", h.proxy.Pending())
	}
	if h.server.Stats().Established != 1 {
		t.Errorf("server established = %d, want 1", h.server.Stats().Established)
	}
}

func TestProxyAbsorbsSpoofedFloodStatelessly(t *testing.T) {
	h := newProxyHarness(t)
	src := netip.MustParseAddr("240.0.0.1")
	for i := 0; i < 10000; i++ {
		h.proxy.DeliverFromClient(0, packet.Build(src, proxyAddr, uint16(1024+i%60000), 80,
			uint32(i), 0, packet.FlagSYN))
		src = src.Next()
	}
	st := h.proxy.Stats()
	if st.SynAnswered != 10000 {
		t.Errorf("SynAnswered = %d", st.SynAnswered)
	}
	if h.proxy.Pending() != 0 || st.PeakPending != 0 {
		t.Error("spoofed SYNs created proxy state")
	}
	if h.server.Stats().SynReceived != 0 {
		t.Error("flood leaked past the proxy")
	}
}

func TestProxyRejectsForgedAcks(t *testing.T) {
	h := newProxyHarness(t)
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, proxyAddr, 40000, 80,
		7, 999999, packet.FlagACK))
	if h.proxy.Stats().BadCookies != 1 {
		t.Errorf("BadCookies = %d, want 1", h.proxy.Stats().BadCookies)
	}
	if h.proxy.Pending() != 0 {
		t.Error("forged ACK created state")
	}
}

func TestProxyStateIsTheNewTarget(t *testing.T) {
	// An attacker with real (non-spoofed) bots completes cookie
	// validation and aims at the proxy's pending table: state grows
	// with attack size — the structural weakness the paper's stateless
	// design avoids. (The server never answers because the bots ACK
	// but the server-side handshake hangs when we drop its replies.)
	sim := eventsim.New()
	var proxy *SynProxy
	var toClient []packet.Segment
	proxy, err := NewSynProxy(sim, proxyAddr, 80, 9,
		func(seg packet.Segment) { toClient = append(toClient, seg) },
		func(packet.Segment) { /* server-side black hole */ },
	)
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("11.0.0.1")
	const bots = 3000
	for i := 0; i < bots; i++ {
		port := uint16(1024 + i)
		proxy.DeliverFromClient(0, packet.Build(src, proxyAddr, port, 80,
			uint32(i), 0, packet.FlagSYN))
		cookie := toClient[len(toClient)-1].TCP.Seq
		proxy.DeliverFromClient(0, packet.Build(src, proxyAddr, port, 80,
			uint32(i)+1, cookie+1, packet.FlagACK))
	}
	if proxy.Pending() != bots {
		t.Errorf("pending = %d, want %d (state grows with attack)", proxy.Pending(), bots)
	}
	if proxy.Stats().PeakPending != bots {
		t.Errorf("peak = %d, want %d", proxy.Stats().PeakPending, bots)
	}
	// The 75 s reaper eventually clears it.
	sim.RunUntil(80 * time.Second)
	if proxy.Pending() != 0 {
		t.Errorf("pending = %d after timeout, want 0", proxy.Pending())
	}
	if proxy.Stats().Expired != bots {
		t.Errorf("expired = %d, want %d", proxy.Stats().Expired, bots)
	}
}

func TestProxyIgnoresUnrelatedTraffic(t *testing.T) {
	h := newProxyHarness(t)
	other := netip.MustParseAddr("10.9.0.99")
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, other, 1, 80, 1, 0, packet.FlagSYN))
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, proxyAddr, 1, 8080, 1, 0, packet.FlagSYN))
	h.proxy.DeliverFromClient(0, packet.Build(clientAddr, proxyAddr, 1, 80, 1, 0, packet.FlagFIN))
	if h.proxy.Stats().SynAnswered != 0 {
		t.Error("unrelated traffic answered")
	}
	// Server SYN/ACK for an unknown splice is dropped quietly.
	h.proxy.DeliverFromServer(0, packet.Build(proxyAddr, clientAddr, 80, 1,
		1, 2, packet.FlagSYN|packet.FlagACK))
	if h.proxy.Stats().Spliced != 0 {
		t.Error("phantom splice")
	}
}

// TestProxySustainedFloodFractions drives the proxy with a sustained
// spoofed flood interleaved with legitimate clients arriving at 1
// conn/s, at several flood rates. The stateless cookie phase must
// absorb the whole flood (zero attack SYNs reach the server), every
// legitimate client must splice (pass-through 1.0), and the proxy's
// per-connection state must stay at the in-flight handful rather than
// scaling with the flood.
func TestProxySustainedFloodFractions(t *testing.T) {
	for _, floodRate := range []float64{50, 200} {
		floodRate := floodRate
		t.Run(fmt.Sprintf("flood=%v", floodRate), func(t *testing.T) {
			const dur = 30 * time.Second
			rtt := 40 * time.Millisecond
			sim := eventsim.New()
			var proxy *SynProxy
			var server *tcp.Server
			legitPorts := make(map[uint16]bool)
			toClient := func(seg packet.Segment) {
				if seg.Kind() != packet.KindSYNACK {
					return
				}
				if seg.IP.Dst != clientAddr || !legitPorts[seg.TCP.DstPort] {
					return // spoofed target: nobody home to echo the cookie
				}
				ack := packet.Build(clientAddr, proxyAddr, seg.TCP.DstPort, 80,
					seg.TCP.Ack, seg.TCP.Seq+1, packet.FlagACK)
				sim.After(rtt, func(now time.Duration) {
					proxy.DeliverFromClient(now, ack)
				})
			}
			server, err := tcp.NewServer(sim, proxyAddr, 80,
				func(seg packet.Segment) { proxy.DeliverFromServer(0, seg) },
				tcp.ServerConfig{Backlog: 32})
			if err != nil {
				t.Fatal(err)
			}
			proxy, err = NewSynProxy(sim, proxyAddr, 80, 77, toClient,
				func(seg packet.Segment) { server.Deliver(0, seg) })
			if err != nil {
				t.Fatal(err)
			}

			floodSYNs := 0
			src := netip.MustParseAddr("240.0.0.1")
			gap := time.Duration(float64(time.Second) / floodRate)
			for ts := time.Duration(0); ts < dur; ts += gap {
				s, seq := src, uint32(floodSYNs)
				if _, err := sim.At(ts, func(now time.Duration) {
					proxy.DeliverFromClient(now, packet.Build(s, proxyAddr, 2000, 80,
						seq, 0, packet.FlagSYN))
				}); err != nil {
					t.Fatal(err)
				}
				src = src.Next()
				floodSYNs++
			}
			legit := 0
			for ts := 500 * time.Millisecond; ts < dur; ts += time.Second {
				port := uint16(40000 + legit)
				legitPorts[port] = true
				isn := uint32(1000 + legit)
				if _, err := sim.At(ts, func(now time.Duration) {
					proxy.DeliverFromClient(now, packet.Build(clientAddr, proxyAddr, port, 80,
						isn, 0, packet.FlagSYN))
				}); err != nil {
					t.Fatal(err)
				}
				legit++
			}
			sim.Run()

			st := proxy.Stats()
			if st.SynAnswered != uint64(floodSYNs+legit) {
				t.Errorf("SynAnswered = %d, want %d", st.SynAnswered, floodSYNs+legit)
			}
			if st.BadCookies != 0 {
				t.Errorf("BadCookies = %d, want 0", st.BadCookies)
			}
			if st.Validated != uint64(legit) || st.Spliced != uint64(legit) {
				t.Errorf("Validated/Spliced = %d/%d, want %d/%d",
					st.Validated, st.Spliced, legit, legit)
			}
			// Legit pass-through 1.0; attack pass-through to the server 0.
			ss := server.Stats()
			if int(ss.Established) != legit {
				t.Errorf("legit established = %d of %d", ss.Established, legit)
			}
			if int(ss.SynReceived) != legit {
				t.Errorf("server saw %d SYNs, want %d (flood must not leak)",
					ss.SynReceived, legit)
			}
			// Splices complete synchronously, so state never accumulates.
			if st.PeakPending > 2 {
				t.Errorf("PeakPending = %d, want ≤2 at any flood rate", st.PeakPending)
			}
		})
	}
}
