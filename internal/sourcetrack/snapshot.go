package sourcetrack

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"slices"

	"repro/internal/core"
	"repro/internal/cusum"
)

// snapshotVersion guards the keyed wire format independently of the
// aggregate core.Snapshot version.
const snapshotVersion = 1

// ErrBadSnapshot reports an unusable keyed snapshot.
var ErrBadSnapshot = errors.New("sourcetrack: invalid snapshot")

// ErrConfigMismatch reports a snapshot whose keying, capacity or
// per-key detector parameters disagree with the requested
// configuration. Resuming it would graft per-key CUSUM evidence onto
// detectors with different semantics, so it is a hard error — the
// operator fixes the flags or moves the snapshot aside. The shard
// count is deliberately NOT part of the match: like experiment
// Parallelism it is an execution detail.
var ErrConfigMismatch = errors.New("sourcetrack: snapshot keying disagrees with requested config")

// KeySnapshot is one key's persisted state.
type KeySnapshot struct {
	Key netip.Prefix `json:"key"`
	// Count and Err are the Space-Saving admission counters.
	Count uint64 `json:"count"`
	Err   uint64 `json:"err"`
	// KBar/KBarPrimed capture the per-key EWMA; Y, AlarmLatched,
	// Observations and OnsetIndex the per-key CUSUM detector —
	// mirroring core.Snapshot field for field.
	KBar         float64 `json:"kBar"`
	KBarPrimed   bool    `json:"kBarPrimed"`
	Y            float64 `json:"y"`
	AlarmLatched bool    `json:"alarmLatched"`
	Observations uint64  `json:"observations"`
	OnsetIndex   uint64  `json:"onsetIndex"`
	// Periods is the key's completed-period clock; Last its most
	// recent period report (keys keep no history — O(1) memory each).
	Periods int         `json:"periods"`
	Last    core.Report `json:"last"`
	Alarm   *core.Alarm `json:"alarm,omitempty"`
}

// Snapshot is the tracker's complete persistable state. Keys are
// sorted by key so the encoding is deterministic regardless of shard
// layout or map iteration order; counts inside the current partial
// period are NOT persisted, matching the aggregate snapshot's
// at-most-one-t0 loss semantics.
type Snapshot struct {
	Version    int           `json:"version"`
	KeyBits    int           `json:"keyBits"`
	MaxSources int           `json:"maxSources"`
	Agent      core.Config   `json:"agent"`
	Periods    int           `json:"periods"`
	Stats      TrackerStats  `json:"stats"`
	Keys       []KeySnapshot `json:"keys"`
}

// Snapshot captures the tracker's state.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{
		Version:    snapshotVersion,
		KeyBits:    t.cfg.KeyBits,
		MaxSources: t.cfg.MaxSources,
		Agent:      t.cfg.Agent,
		Periods:    t.Periods(),
		Stats:      t.Stats(),
	}
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, st := range sh.heap {
			ks := KeySnapshot{
				Key: st.key, Count: st.count, Err: st.errc,
				KBar: st.kBar.Value(), KBarPrimed: st.kBar.Primed(),
				Y: st.det.Statistic(), AlarmLatched: st.det.Alarmed(),
				Observations: st.det.Observations(), OnsetIndex: st.det.OnsetIndex(),
				Periods: st.periods, Last: st.last,
			}
			if st.alarm != nil {
				al := *st.alarm
				ks.Alarm = &al
			}
			s.Keys = append(s.Keys, ks)
		}
		sh.mu.Unlock()
	}
	slices.SortFunc(s.Keys, func(a, b KeySnapshot) int {
		if c := a.Key.Addr().Compare(b.Key.Addr()); c != 0 {
			return c
		}
		return a.Key.Bits() - b.Key.Bits()
	})
	return s
}

// Restore rebuilds a tracker from a snapshot under cfg. cfg's
// normalized KeyBits, MaxSources and Agent must match the snapshot
// (ErrConfigMismatch otherwise); cfg.Shards may differ — keys rehash
// onto the new stripe layout and the final states are unchanged.
func Restore(s Snapshot, cfg Config) (*Tracker, error) {
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, s.Version, snapshotVersion)
	}
	cfg = cfg.Normalized()
	if s.KeyBits != cfg.KeyBits || s.MaxSources != cfg.MaxSources || s.Agent.Normalized() != cfg.Agent {
		return nil, fmt.Errorf("%w: snapshot holds /%d keys, %d max sources, agent %+v; requested /%d, %d, %+v",
			ErrConfigMismatch, s.KeyBits, s.MaxSources, s.Agent.Normalized(),
			cfg.KeyBits, cfg.MaxSources, cfg.Agent)
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if s.Periods < 0 {
		return nil, fmt.Errorf("%w: negative period count %d", ErrBadSnapshot, s.Periods)
	}
	if len(s.Keys) > s.MaxSources {
		return nil, fmt.Errorf("%w: %d keys exceed max sources %d", ErrBadSnapshot, len(s.Keys), s.MaxSources)
	}
	t.periods.Store(int64(s.Periods))
	t.unkeyed.Store(s.Stats.Unkeyed)
	// Volume counters persist as totals; they live on shard 0 and are
	// only ever reported summed.
	t.shards[0].syns = s.Stats.SYNs
	t.shards[0].synAcks = s.Stats.SYNACKs
	t.shards[0].untracked = s.Stats.UntrackedSYNACKs
	t.shards[0].evicted = s.Stats.Evicted
	for i, ks := range s.Keys {
		want, ok := t.keyOf(ks.Key.Addr())
		if !ok || want != ks.Key {
			return nil, fmt.Errorf("%w: key %v is not a /%d key", ErrBadSnapshot, ks.Key, cfg.KeyBits)
		}
		if ks.Periods < 0 || ks.Periods > s.Periods {
			return nil, fmt.Errorf("%w: key %v period clock %d outside [0,%d]", ErrBadSnapshot, ks.Key, ks.Periods, s.Periods)
		}
		if ks.Err > ks.Count {
			return nil, fmt.Errorf("%w: key %v error bound %d exceeds count %d", ErrBadSnapshot, ks.Key, ks.Err, ks.Count)
		}
		// K̄ averages SYN/ACK counts; negative is structurally
		// impossible (the generic EWMA would accept it).
		if ks.KBar < 0 {
			return nil, fmt.Errorf("%w: key %v negative kBar %g", ErrBadSnapshot, ks.Key, ks.KBar)
		}
		kb, _ := cusum.NewEWMA(cfg.Agent.Alpha)
		dt, _ := cusum.New(cfg.Agent.Offset, cfg.Agent.Threshold)
		if err := kb.Restore(ks.KBar, ks.KBarPrimed); err != nil {
			return nil, fmt.Errorf("%w: key %v kBar: %v", ErrBadSnapshot, ks.Key, err)
		}
		if err := dt.Restore(ks.Y, ks.AlarmLatched, ks.Observations, ks.OnsetIndex); err != nil {
			return nil, fmt.Errorf("%w: key %v detector: %v", ErrBadSnapshot, ks.Key, err)
		}
		st := &keyState{
			key: ks.Key, count: ks.Count, errc: ks.Err,
			kBar: kb, det: dt,
			periods: ks.Periods, last: ks.Last,
		}
		if ks.Alarm != nil {
			al := *ks.Alarm
			st.alarm = &al
		}
		sh := t.shardFor(ks.Key)
		if _, dup := sh.states[ks.Key]; dup {
			return nil, fmt.Errorf("%w: duplicate key %v (entry %d)", ErrBadSnapshot, ks.Key, i)
		}
		sh.insert(st)
		if st.alarm != nil {
			sh.alarmed++
		}
	}
	return t, nil
}

// MigrateSnapshot rewrites a keyed snapshot so it restores cleanly
// under cfg, carrying all portable per-key evidence. It handles the
// snapshot-compatible half of the daemon's migrate-or-reset matrix:
//
//   - Alpha / Offset / Threshold: rewritten in place. Accumulated K̄
//     and CUSUM statistics are carried unchanged — new parameters apply
//     from the next observation on. Latched alarms stay latched even if
//     the new threshold would not have fired them; an alarm is a
//     historical event, not a re-evaluated predicate.
//   - MaxSources: resized. Shrinking keeps the top keys by Space-Saving
//     count (ties broken by key so the cut is deterministic) and counts
//     the dropped states as evictions — truncation is never silent.
//
// It returns ok=false when cfg changes the keying or period semantics
// (KeyBits, T0, MinK, WarmupPeriods): per-key evidence measured under
// those cannot be reinterpreted, so the caller must reset instead.
func MigrateSnapshot(s Snapshot, cfg Config) (Snapshot, bool) {
	cfg = cfg.Normalized()
	old := s.Agent.Normalized()
	if s.KeyBits != cfg.KeyBits ||
		old.T0 != cfg.Agent.T0 ||
		old.MinK != cfg.Agent.MinK ||
		old.WarmupPeriods != cfg.Agent.WarmupPeriods {
		return Snapshot{}, false
	}
	s.Agent = cfg.Agent
	s.Keys = slices.Clone(s.Keys)
	if cfg.MaxSources < len(s.Keys) {
		drop := slices.Clone(s.Keys)
		slices.SortFunc(drop, func(a, b KeySnapshot) int {
			if a.Count != b.Count {
				if a.Count > b.Count {
					return -1
				}
				return 1
			}
			if c := a.Key.Addr().Compare(b.Key.Addr()); c != 0 {
				return c
			}
			return a.Key.Bits() - b.Key.Bits()
		})
		keep := make(map[netip.Prefix]bool, cfg.MaxSources)
		for _, ks := range drop[:cfg.MaxSources] {
			keep[ks.Key] = true
		}
		s.Stats.Evicted += uint64(len(s.Keys) - cfg.MaxSources)
		s.Keys = slices.DeleteFunc(s.Keys, func(ks KeySnapshot) bool {
			return !keep[ks.Key]
		})
	}
	s.MaxSources = cfg.MaxSources
	s.Stats.Tracked = len(s.Keys)
	alarmed := 0
	for _, ks := range s.Keys {
		if ks.Alarm != nil {
			alarmed++
		}
	}
	s.Stats.Alarmed = alarmed
	return s, true
}

// Encode serializes the snapshot as indented JSON.
func (s Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot deserializes a snapshot without restoring it —
// structural validation happens in Restore. It never panics on
// arbitrary input (the fuzz target pins this).
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return s, nil
}
