package sourcetrack

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/trace"
)

// feederConfig builds two identically-configured trackers so a direct
// feed and a Feeder-mediated feed can be compared state-for-state.
func feederConfig() Config {
	return Config{
		KeyBits:    24,
		MaxSources: 64,
		Shards:     4,
		Agent:      core.Config{T0: time.Second},
	}
}

// TestFeederMatchesDirectTap pins the SPSC feeder's exactness
// contract: pushing records through the per-shard rings and closing
// periods through the barrier yields a tracker state bit-identical to
// feeding the same tracker directly, period by period.
func TestFeederMatchesDirectTap(t *testing.T) {
	tr := mixedTrace(t, trace.Auckland(), 11, netip.MustParsePrefix("240.0.0.0/28"), 40)

	direct, err := New(feederConfig())
	if err != nil {
		t.Fatal(err)
	}
	fed, err := New(feederConfig())
	if err != nil {
		t.Fatal(err)
	}
	feeder := NewFeeder(fed)
	defer feeder.Close()

	t0 := feederConfig().Agent.T0
	boundary := t0
	flushAt := func(end time.Duration) {
		direct.ClosePeriod(0, end)
		feeder.ClosePeriod(0, end)
	}
	for i := range tr.Records {
		r := tr.Records[i]
		for r.Ts >= boundary {
			flushAt(boundary)
			boundary += t0
		}
		direct.Record(r)
		// Alternate the feeder's two producer faces so both are covered.
		if i%2 == 0 {
			feeder.Record(r)
		} else {
			feeder.RecordBatch(tr.Records[i : i+1])
		}
	}
	flushAt(boundary)

	if direct.Periods() != fed.Periods() {
		t.Fatalf("periods: direct %d, feeder %d", direct.Periods(), fed.Periods())
	}
	dv, fv := direct.View(0), fed.View(0)
	if !reflect.DeepEqual(dv, fv) {
		t.Fatalf("state divergence:\n direct %+v\n feeder %+v", dv, fv)
	}
}

// TestFeederClosePeriodBarrier pins the barrier semantics: every
// record enqueued before ClosePeriod must be applied before the
// period closes, even when far fewer than a ring chunk is pending.
func TestFeederClosePeriodBarrier(t *testing.T) {
	tk, err := New(feederConfig())
	if err != nil {
		t.Fatal(err)
	}
	feeder := NewFeeder(tk)
	defer feeder.Close()

	rec := trace.Record{
		Ts: 0, Kind: packet.KindSYN, Dir: trace.DirOut,
		Src: netip.MustParseAddr("130.216.1.1"),
		Dst: netip.MustParseAddr("11.0.0.1"),
	}
	for p := 0; p < 5; p++ {
		// 3 records per period: far below the 256-op push threshold, so
		// only the barrier's flush can get them applied in time.
		for i := 0; i < 3; i++ {
			feeder.Record(rec)
		}
		feeder.ClosePeriod(p, time.Duration(p+1)*time.Second)
	}
	if got := tk.Periods(); got != 5 {
		t.Fatalf("periods = %d, want 5", got)
	}
	if got := tk.Stats().SYNs; got != 15 {
		t.Errorf("keyed SYNs = %d, want 15 (3 per period × 5, none lost at barriers)", got)
	}
	srcs := tk.Sources(1)
	if len(srcs) != 1 {
		t.Fatalf("tracked sources = %d, want 1", len(srcs))
	}
	if got := srcs[0].Count; got != 15 {
		t.Errorf("Space-Saving count = %d, want 15", got)
	}
}
