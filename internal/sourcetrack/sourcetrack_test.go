package sourcetrack

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flood"
	"repro/internal/ingest"
	"repro/internal/packet"
	"repro/internal/trace"
)

// mix builds a background-plus-flood trace for one site profile. The
// spoof prefix is kept narrow so the equivalence tests stay below the
// tracker's capacity (eviction-free), which is the regime where the
// per-key-agent equivalence is exact.
func mixedTrace(t *testing.T, p trace.Profile, seed int64, spoof netip.Prefix, rate float64) *trace.Trace {
	t.Helper()
	bg, err := trace.Generate(p, seed)
	if err != nil {
		t.Fatalf("generate %s: %v", p.Name, err)
	}
	fl, err := flood.GenerateTrace(flood.Config{
		Start:       p.Span / 3,
		Duration:    p.Span / 3,
		Pattern:     flood.Constant{PerSecond: rate},
		Victim:      netip.MustParseAddr("11.9.9.9"),
		VictimPort:  80,
		SpoofPrefix: spoof,
		Seed:        seed + 1,
	})
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	return trace.Merge(p.Name+"+flood", bg, fl)
}

// filterForKey extracts exactly the records the tracker routes to key:
// outgoing SYNs whose source masks to it, incoming SYN/ACKs whose
// destination does. The span is preserved so period boundaries match.
func filterForKey(tr *trace.Trace, tk *Tracker, key netip.Prefix) *trace.Trace {
	out := &trace.Trace{Name: tr.Name + "@" + key.String(), Span: tr.Span}
	for _, r := range tr.Records {
		switch {
		case r.Dir == trace.DirOut && r.Kind == packet.KindSYN:
			if k, ok := tk.keyOf(r.Src); ok && k == key {
				out.Records = append(out.Records, r)
			}
		case r.Dir == trace.DirIn && r.Kind == packet.KindSYNACK:
			if k, ok := tk.keyOf(r.Dst); ok && k == key {
				out.Records = append(out.Records, r)
			}
		}
	}
	return out
}

// TestKeyedEquivalencePerKeyAgents pins the package's core claim: a
// single-shard keyed run is bit-identical to running one core.Agent
// per key over the key's pre-filtered records — including keys first
// admitted mid-trace (the flood keys), which exercises the
// fast-forward closed form in keyState.reset.
func TestKeyedEquivalencePerKeyAgents(t *testing.T) {
	cases := []struct {
		profile trace.Profile
		keyBits int
		spoof   netip.Prefix
		rate    float64
	}{
		{trace.LBL(), 24, netip.MustParsePrefix("240.0.0.0/24"), 30},
		{trace.Harvard(), 16, netip.MustParsePrefix("240.1.0.0/16"), 60},
	}
	for _, tc := range cases {
		t.Run(tc.profile.Name, func(t *testing.T) {
			tr := mixedTrace(t, tc.profile, 11, tc.spoof, tc.rate)
			cfg := Config{
				KeyBits:    tc.keyBits,
				MaxSources: 4096,
				Shards:     1,
				Agent:      core.Config{T0: 20 * time.Second},
			}
			tk, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			perKey := make(map[netip.Prefix][]core.Report)
			tk.OnReport = func(key netip.Prefix, r core.Report) {
				perKey[key] = append(perKey[key], r)
			}
			if err := tk.ProcessTrace(tr); err != nil {
				t.Fatal(err)
			}
			if st := tk.Stats(); st.Evicted != 0 {
				t.Fatalf("equivalence run must be eviction-free, got %d evictions", st.Evicted)
			}

			ranked := tk.Sources(0)
			byKey := make(map[netip.Prefix]SourceReport, len(ranked))
			for _, s := range ranked {
				byKey[s.Key] = s
			}
			floodKey := netip.PrefixFrom(tc.spoof.Addr(), tc.keyBits)
			if !byKey[floodKey].Alarmed {
				t.Fatalf("flood key %v did not alarm", floodKey)
			}

			for key, reports := range perKey {
				agent, err := core.NewAgent(tk.Config().Agent)
				if err != nil {
					t.Fatal(err)
				}
				want, err := agent.ProcessTrace(filterForKey(tr, tk, key))
				if err != nil {
					t.Fatalf("key %v: %v", key, err)
				}
				for _, got := range reports {
					if got.Index >= len(want) {
						t.Fatalf("key %v: report index %d beyond agent's %d periods", key, got.Index, len(want))
					}
					if got != want[got.Index] {
						t.Fatalf("key %v period %d:\n tracker %+v\n agent   %+v", key, got.Index, got, want[got.Index])
					}
				}
				sr := byKey[key]
				al := agent.FirstAlarm()
				if sr.Alarmed != (al != nil) {
					t.Fatalf("key %v: tracker alarmed=%v, agent alarm=%v", key, sr.Alarmed, al)
				}
				if al != nil && (sr.AlarmPeriod != al.Period || sr.AlarmAtNanos != int64(al.At) || sr.AlarmY != al.Y) {
					t.Fatalf("key %v: tracker alarm %+v, agent alarm %+v", key, sr, *al)
				}
			}

			// A background key under MinK-floored normalization must not
			// alarm from ordinary retransmissions: only the flood key(s)
			// inside the spoof block may latch.
			for _, s := range ranked {
				if s.Alarmed && !tc.spoof.Contains(s.Key.Addr()) {
					t.Fatalf("background key %v alarmed: %+v", s.Key, s)
				}
			}

			// Sharded execution is an execution detail: same trace, same
			// config, eight stripes — identical final snapshot.
			sharded, err := New(Config{
				KeyBits:    tc.keyBits,
				MaxSources: 4096,
				Shards:     8,
				Agent:      core.Config{T0: 20 * time.Second},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sharded.ProcessTrace(tr); err != nil {
				t.Fatal(err)
			}
			if a, b := tk.Snapshot(), sharded.Snapshot(); !reflect.DeepEqual(a, b) {
				t.Fatalf("sharded snapshot differs from single-shard snapshot")
			}
		})
	}
}

// TestBoundedMemoryMillionSources pins the Space-Saving bound: a
// stream with 2^20 distinct sources leaves exactly MaxSources CUSUM
// states behind, reports every recycling in Stats.Evicted, and the
// steady-state admission path allocates nothing per record.
func TestBoundedMemoryMillionSources(t *testing.T) {
	const n = 1 << 20
	tk, err := New(Config{
		KeyBits:    32,
		MaxSources: 256,
		Shards:     4,
		Agent:      core.Config{T0: 20 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(i uint32) trace.Record {
		return trace.Record{
			Ts:   time.Duration(i),
			Kind: packet.KindSYN,
			Dir:  trace.DirOut,
			Src:  netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:  netip.MustParseAddr("11.9.9.9"),
		}
	}
	for i := uint32(0); i < n; i++ {
		tk.Observe(rec(i))
		if i%(1<<18) == 0 && i > 0 {
			tk.ClosePeriod(0, time.Duration(i))
		}
	}
	st := tk.Stats()
	if st.SYNs != n {
		t.Fatalf("SYNs = %d, want %d", st.SYNs, n)
	}
	if st.Tracked != 256 {
		t.Fatalf("Tracked = %d, want 256", st.Tracked)
	}
	if st.Evicted != n-256 {
		t.Fatalf("Evicted = %d, want %d — truncation must be fully accounted", st.Evicted, n-256)
	}
	for i, sh := range tk.shards {
		if len(sh.heap) != sh.cap || len(sh.states) != len(sh.heap) {
			t.Fatalf("shard %d: %d heap / %d states, cap %d", i, len(sh.heap), len(sh.states), sh.cap)
		}
	}
	if got := len(tk.Sources(10)); got != 10 {
		t.Fatalf("Sources(10) returned %d entries", got)
	}

	// Steady state — every record admits a brand-new key by recycling
	// the minimum — must not allocate.
	next := uint32(n)
	avg := testing.AllocsPerRun(1000, func() {
		tk.Observe(rec(next))
		next++
	})
	if avg > 0 {
		t.Fatalf("steady-state Observe allocates %.2f objects/record, want 0", avg)
	}
}

// TestConcurrentChanSourceFeeds drives one sharded tracker from four
// stub-style producer/consumer pairs over ingest.ChanSource — the
// fleet topology — and checks, against a sequentially-fed single-shard
// tracker, that the final state is independent of both interleaving
// and stripe layout. Run under -race this is the locking exercise.
func TestConcurrentChanSourceFeeds(t *testing.T) {
	const (
		stubs   = 4
		records = 4000
		periods = 3
	)
	cfg := Config{
		KeyBits:    24,
		MaxSources: 64,
		Shards:     8,
		Agent:      core.Config{T0: time.Second},
	}
	tk, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := New(Config{KeyBits: 24, MaxSources: 64, Shards: 1, Agent: cfg.Agent})
	if err != nil {
		t.Fatal(err)
	}

	stubRecords := func(stub, period int) []trace.Record {
		out := make([]trace.Record, 0, records)
		for j := 0; j < records; j++ {
			host := netip.AddrFrom4([4]byte{10, byte(stub + 1), 0, byte(1 + j%50)})
			r := trace.Record{
				Ts:   time.Duration(period)*time.Second + time.Duration(j),
				Kind: packet.KindSYN,
				Dir:  trace.DirOut,
				Src:  host,
				Dst:  netip.MustParseAddr("11.9.9.9"),
			}
			if j%2 == 1 { // answered half: SYN/ACK back to the host
				r.Kind = packet.KindSYNACK
				r.Dir = trace.DirIn
				r.Src, r.Dst = r.Dst, r.Src
			}
			out = append(out, r)
		}
		return out
	}

	for period := 0; period < periods; period++ {
		var wg sync.WaitGroup
		for stub := 0; stub < stubs; stub++ {
			src := ingest.NewChanSource(256)
			wg.Add(2)
			go func(recs []trace.Record) {
				defer wg.Done()
				for _, r := range recs {
					src.Send(r)
				}
				src.CloseSend()
			}(stubRecords(stub, period))
			go func() {
				defer wg.Done()
				for {
					r, err := src.Next()
					if err != nil {
						return
					}
					tk.Record(r)
				}
			}()
		}
		wg.Wait() // quiesce: ClosePeriod requires no Observe in flight
		end := time.Duration(period+1) * time.Second
		tk.ClosePeriod(period, end)

		for stub := 0; stub < stubs; stub++ {
			for _, r := range stubRecords(stub, period) {
				seq.Record(r)
			}
		}
		seq.ClosePeriod(period, end)
	}

	st := tk.Stats()
	if want := uint64(stubs * records * periods / 2); st.SYNs != want || st.SYNACKs != want {
		t.Fatalf("counts not conserved: %+v, want %d SYNs and SYN/ACKs", st, want)
	}
	if a, b := tk.Snapshot(), seq.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("concurrent sharded state differs from sequential single-shard state:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSpaceSavingAdversarialChurn drives the tracker with the workload
// Space-Saving admission exists for: an attacker rotating spoofed
// sources across fresh /24s faster than the table can hold them, on
// top of one persistent heavy flooder and a population of balanced
// legitimate keys. Bounded memory must degrade loudly, never silently:
// every recycled state is counted in Evicted, churn survivors carry a
// non-zero CountErr, SYN/ACKs landing on untracked keys are tallied
// exactly, and the heavy flooder — the key attribution actually needs
// — survives the churn and stays alarmed.
func TestSpaceSavingAdversarialChurn(t *testing.T) {
	const (
		maxSources = 16
		steadyKeys = maxSources - 1
		churnKeys  = 400
	)
	tk, err := New(Config{KeyBits: 24, MaxSources: maxSources, Shards: 1,
		Agent: core.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	t0 := 20 * time.Second
	victim := netip.MustParseAddr("11.9.9.9")
	syn := func(ts time.Duration, src netip.Addr) trace.Record {
		return trace.Record{Ts: ts, Kind: packet.KindSYN, Dir: trace.DirOut,
			Src: src, Dst: victim, DstPort: 80}
	}
	synack := func(ts time.Duration, dst netip.Addr) trace.Record {
		return trace.Record{Ts: ts, Kind: packet.KindSYNACK, Dir: trace.DirIn,
			Src: victim, Dst: dst}
	}
	attacker := netip.MustParseAddr("240.9.9.1")
	attackerKey := netip.PrefixFrom(netip.MustParseAddr("240.9.9.0"), 24)
	steady := make([]netip.Addr, steadyKeys)
	for i := range steady {
		steady[i] = netip.AddrFrom4([4]byte{10, 1, byte(i), 5})
	}

	// Phase A: the attacker floods (SYNs, never answered) while the
	// steady keys stay balanced. Exactly MaxSources keys exist, so no
	// admission pressure yet.
	periods := 0
	for p := 0; p < 4; p++ {
		base := time.Duration(p) * t0
		for i := 0; i < 50; i++ {
			tk.Record(syn(base+time.Duration(i)*100*time.Millisecond, attacker))
		}
		for _, s := range steady {
			tk.Record(syn(base+time.Second, s))
			tk.Record(synack(base+time.Second+50*time.Millisecond, s))
			tk.Record(syn(base+2*time.Second, s))
			tk.Record(synack(base+2*time.Second+50*time.Millisecond, s))
		}
		tk.ClosePeriod(periods, base+t0)
		periods++
	}
	st := tk.Stats()
	if st.Evicted != 0 {
		t.Fatalf("evictions before capacity pressure: %d", st.Evicted)
	}
	if st.Tracked != maxSources {
		t.Fatalf("tracked = %d, want %d", st.Tracked, maxSources)
	}

	// Phase B: spoof churn — churnKeys fresh /24s, one SYN each, all
	// inside one period. Every arrival is a new key hitting a full
	// table, so every admission recycles exactly one state.
	churnBase := time.Duration(periods) * t0
	for i := 0; i < churnKeys; i++ {
		src := netip.AddrFrom4([4]byte{241, byte(i >> 8), byte(i), 7})
		tk.Record(syn(churnBase+time.Duration(i)*time.Millisecond, src))
	}
	// The attacker keeps flooding through the churn period.
	for i := 0; i < 50; i++ {
		tk.Record(syn(churnBase+time.Second+time.Duration(i)*100*time.Millisecond, attacker))
	}
	tk.ClosePeriod(periods, churnBase+t0)
	periods++

	st = tk.Stats()
	if st.Evicted != churnKeys {
		t.Errorf("Evicted = %d, want exactly %d (one recycle per fresh key)",
			st.Evicted, churnKeys)
	}
	if st.Tracked > maxSources {
		t.Errorf("tracked = %d exceeds MaxSources = %d", st.Tracked, maxSources)
	}

	// The heavy flooder must survive admission churn (its count dwarfs
	// every candidate minimum) and must be alarmed: per-key X ≈ 50/MinK
	// with zero SYN/ACKs, far past the threshold.
	var attackerRow *SourceReport
	churnErrs := 0
	churnRows := 0
	for _, s := range tk.Sources(0) {
		s := s
		if s.Key == attackerKey {
			attackerRow = &s
		}
		if s.Key.Addr().As4()[0] == 241 {
			churnRows++
			if s.CountErr > 0 {
				churnErrs++
			}
		}
	}
	if attackerRow == nil {
		t.Fatal("heavy flooder evicted by one-shot churn keys")
	}
	if !attackerRow.Alarmed {
		t.Error("heavy flooder not alarmed after churn")
	}
	if attackerRow.CountErr != 0 {
		t.Errorf("pre-capacity key carries CountErr = %d", attackerRow.CountErr)
	}
	// Degradation is visible: churn survivors occupy recycled slots and
	// every one of them advertises its overestimation bound.
	if churnRows == 0 {
		t.Fatal("no churn keys tracked at all")
	}
	if churnErrs != churnRows {
		t.Errorf("%d of %d churn rows carry CountErr > 0; recycled state must not look exact",
			churnErrs, churnRows)
	}

	// UntrackedSYNACKs is an exact ledger: SYN/ACKs keyed to evicted or
	// never-seen keys never admit and are counted one for one.
	u0 := tk.Stats().UntrackedSYNACKs
	tailBase := time.Duration(periods) * t0
	for i := 0; i < 7; i++ {
		dst := netip.AddrFrom4([4]byte{242, 0, byte(i), 9})
		tk.Record(synack(tailBase+time.Duration(i)*time.Millisecond, dst))
	}
	// The steady keys were the admission casualties (their counts were
	// the table minimum), so a SYN/ACK for one of them is untracked
	// too; the surviving attacker key is the tracked control.
	tk.Record(synack(tailBase+time.Second, attacker))
	st = tk.Stats()
	if st.UntrackedSYNACKs != u0+7 {
		t.Errorf("UntrackedSYNACKs = %d, want %d", st.UntrackedSYNACKs, u0+7)
	}
	if st.Tracked > maxSources {
		t.Errorf("SYN/ACKs admitted keys: tracked = %d", st.Tracked)
	}
}

// TestViewConsistentAcrossPeriodClose is the regression test for the
// /sources consistency bug: reading Periods(), Stats() and Sources()
// as three separate calls can straddle a ClosePeriod sweep, returning
// a period clock that disagrees with the per-key reports. View must
// never do that — every row it returns carries the view's own period
// count. On the pre-fix code (no sweep lock) dozens of the views below
// catch a half-swept tracker.
func TestViewConsistentAcrossPeriodClose(t *testing.T) {
	tk, err := New(Config{
		KeyBits:    32,
		MaxSources: 256,
		Shards:     16,
		Agent:      core.Config{T0: time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Admit keys spread across all shards at period 0, so every key's
	// period clock advances with every ClosePeriod and each sweep is
	// wide enough for a view to land inside it.
	const keys = 256
	for k := 0; k < keys; k++ {
		tk.Observe(trace.Record{
			Kind: packet.KindSYN, Dir: trace.DirOut,
			Src: netip.AddrFrom4([4]byte{10, 0, byte(k), 1}),
			Dst: netip.MustParseAddr("11.9.9.9"),
		})
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := 0; ; p++ {
			select {
			case <-stop:
				return
			default:
			}
			tk.ClosePeriod(p, time.Duration(p+1)*time.Second)
		}
	}()

	const views = 3000
	for i := 0; i < views; i++ {
		v := tk.View(0)
		if len(v.Sources) != keys || v.Stats.Tracked != keys {
			t.Fatalf("view lost keys: %d sources, stats %+v", len(v.Sources), v.Stats)
		}
		for _, row := range v.Sources {
			if row.Periods != v.Periods {
				t.Fatalf("inconsistent view %d: key %v at period %d inside a view claiming period %d",
					i, row.Key, row.Periods, v.Periods)
			}
		}
	}
	close(stop)
	<-done
}

// TestViewMatchesSeparateCalls pins that a quiescent View agrees with
// the three individual accessors, including the ranking and limit.
func TestViewMatchesSeparateCalls(t *testing.T) {
	tk := busyTracker(t)
	for _, limit := range []int{0, 2, 100} {
		v := tk.View(limit)
		if v.Periods != tk.Periods() {
			t.Errorf("limit=%d: View periods %d != %d", limit, v.Periods, tk.Periods())
		}
		if v.Stats != tk.Stats() {
			t.Errorf("limit=%d: View stats %+v != %+v", limit, v.Stats, tk.Stats())
		}
		if !reflect.DeepEqual(v.Sources, tk.Sources(limit)) {
			t.Errorf("limit=%d: View sources differ from Sources(%d)", limit, limit)
		}
	}
}
