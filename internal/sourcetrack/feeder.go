package sourcetrack

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// This file is the concurrent front end of the tracker: a Feeder owns
// one single-producer/single-consumer ring per shard and a worker
// goroutine per shard, so a live feed's record stream is keyed once on
// the producer side and folded into shard state off the hot path. The
// producer (the aggregator's single Feed goroutine) never touches a
// shard lock; workers contend with nothing but /sources snapshots.
//
// Period semantics are preserved exactly: ClosePeriod flushes the
// producer's pending chunks and waits until every pushed op has been
// applied (a per-shard pushed==applied barrier) before closing the
// period on the tracker — so a period close still observes precisely
// the records that preceded it in the stream, and the per-key reports
// are bit-identical to feeding the tracker directly.

// feedOp is one pre-keyed observation: a SYN for key (synAck=false)
// or a SYN/ACK toward key (synAck=true).
type feedOp struct {
	key    netip.Prefix
	synAck bool
}

// feederChunk is how many ops the producer accumulates per shard
// before handing the chunk to the shard's ring — big enough to
// amortize the ring's atomics, small enough to keep worker latency
// low on sparse feeds.
const feederChunk = 256

// ringSlots is the per-shard ring capacity in chunks (power of two).
// 64 chunks × 256 ops ≈ 16k in-flight ops per shard before the
// producer spins.
const ringSlots = 64

// spscRing is a fixed-capacity single-producer/single-consumer queue
// of op chunks. Only head (consumer) and tail (producer) are shared,
// each written by exactly one side, so two atomic loads and one store
// bound the cost of a push or pop.
type spscRing struct {
	slots [ringSlots][]feedOp
	head  atomic.Uint64 // next slot to pop (consumer-owned)
	tail  atomic.Uint64 // next slot to push (producer-owned)
}

// push enqueues a chunk, spinning (with Gosched) while the ring is
// full — the feeder's backpressure: a producer outrunning a worker
// slows to the worker's pace rather than growing without bound.
func (r *spscRing) push(ops []feedOp) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < ringSlots {
			r.slots[t%ringSlots] = ops
			r.tail.Store(t + 1)
			return
		}
		runtime.Gosched()
	}
}

// pop dequeues a chunk, or returns false when the ring is empty.
func (r *spscRing) pop() ([]feedOp, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	ops := r.slots[h%ringSlots]
	r.slots[h%ringSlots] = nil
	r.head.Store(h + 1)
	return ops, true
}

// Feeder pumps records into a Tracker through per-shard SPSC rings.
// It implements the same tap interfaces as the tracker itself
// (ingest.RecordTap / ingest.BatchRecordTap), so it drops into any
// Pipeline.Tap slot. The producer side (Record, RecordBatch,
// ClosePeriod) must be a single goroutine — the discipline the
// aggregator already has. Close when done; an unclosed feeder leaks
// its workers.
type Feeder struct {
	t       *Tracker
	rings   []*spscRing
	pending [][]feedOp      // producer-side chunk per shard, being filled
	pushed  []uint64        // producer-side op count handed to each ring
	applied []atomic.Uint64 // consumer-side op count folded per shard
	pool    sync.Pool       // recycled op chunks (*[]feedOp)
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  bool
}

// NewFeeder starts one worker per tracker shard and returns the
// feeder. The tracker must not receive Observe/ObserveBatch calls from
// elsewhere while the feeder runs (reads — Stats, Sources, View — are
// fine; ClosePeriod must come through the feeder so the drain barrier
// holds).
func NewFeeder(t *Tracker) *Feeder {
	n := len(t.shards)
	f := &Feeder{
		t:       t,
		rings:   make([]*spscRing, n),
		pending: make([][]feedOp, n),
		pushed:  make([]uint64, n),
		applied: make([]atomic.Uint64, n),
		stop:    make(chan struct{}),
	}
	f.pool.New = func() any {
		ops := make([]feedOp, 0, feederChunk)
		return &ops
	}
	for i := range f.rings {
		f.rings[i] = &spscRing{}
		f.wg.Add(1)
		go f.worker(i)
	}
	return f
}

// Tracker returns the tracker the feeder feeds.
func (f *Feeder) Tracker() *Tracker { return f.t }

func (f *Feeder) worker(si int) {
	defer f.wg.Done()
	ring := f.rings[si]
	for {
		ops, ok := ring.pop()
		if !ok {
			select {
			case <-f.stop:
				// Drain anything raced in between the last pop and
				// the stop signal.
				for {
					ops, ok := ring.pop()
					if !ok {
						return
					}
					f.apply(si, ops)
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		f.apply(si, ops)
	}
}

// apply folds one chunk into its shard under a single lock hold, then
// recycles the chunk and publishes progress for the drain barrier.
func (f *Feeder) apply(si int, ops []feedOp) {
	s := f.t.shards[si]
	done := int(f.t.periods.Load())
	s.mu.Lock()
	for _, op := range ops {
		s.applyLocked(op, done, &f.t.cfg)
	}
	s.mu.Unlock()
	f.applied[si].Add(uint64(len(ops)))
	ops = ops[:0]
	f.pool.Put(&ops)
}

// enqueue appends one op to its shard's pending chunk, handing the
// chunk to the ring when full.
func (f *Feeder) enqueue(op feedOp) {
	si := f.t.shardIndex(op.key)
	ops := f.pending[si]
	if ops == nil {
		ops = (*f.pool.Get().(*[]feedOp))[:0]
	}
	ops = append(ops, op)
	if len(ops) >= feederChunk {
		f.pushed[si] += uint64(len(ops))
		f.rings[si].push(ops)
		ops = nil
	}
	f.pending[si] = ops
}

// Record implements ingest.RecordTap: key on the producer side, queue
// for the shard worker.
func (f *Feeder) Record(r trace.Record) {
	op, ok := f.t.keyRecord(&r)
	if !ok {
		return
	}
	f.enqueue(op)
}

// RecordBatch implements ingest.BatchRecordTap: one keying pass over
// the chunk on the producer side, shard work queued for the workers.
func (f *Feeder) RecordBatch(recs []trace.Record) {
	for i := range recs {
		op, ok := f.t.keyRecord(&recs[i])
		if !ok {
			continue
		}
		f.enqueue(op)
	}
}

// ClosePeriod flushes all pending chunks, waits until every queued op
// has been folded, and then closes the period on the tracker — the
// barrier that keeps period boundaries exact under concurrency.
func (f *Feeder) ClosePeriod(index int, end time.Duration) {
	f.flush()
	for si := range f.rings {
		for f.applied[si].Load() != f.pushed[si] {
			runtime.Gosched()
		}
	}
	f.t.ClosePeriod(index, end)
}

// flush hands every non-empty pending chunk to its ring.
func (f *Feeder) flush() {
	for si, ops := range f.pending {
		if len(ops) == 0 {
			continue
		}
		f.pushed[si] += uint64(len(ops))
		f.rings[si].push(ops)
		f.pending[si] = nil
	}
}

// Close flushes, drains and stops the workers. The feeder must not be
// used after Close; the tracker remains valid.
func (f *Feeder) Close() {
	if f.closed {
		return
	}
	f.closed = true
	f.flush()
	for si := range f.rings {
		for f.applied[si].Load() != f.pushed[si] {
			runtime.Gosched()
		}
	}
	close(f.stop)
	f.wg.Wait()
}
